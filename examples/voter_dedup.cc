// Voter-roll deduplication with uncertain semantic attributes: gender and
// race carry 'u' (unknown) values, so the example uses a w-way OR semantic
// hash and shows the PC / PQ trade-off as w varies — the decision
// procedure of Section 5.3 step (iii).
//
// Usage: ./build/examples/voter_dedup [records]

#include <cstdio>
#include <cstdlib>

#include "common/string_util.h"
#include "core/domains.h"
#include "core/lsh_blocker.h"
#include "data/voter_generator.h"
#include "eval/harness.h"

using sablock::core::LshBlocker;
using sablock::core::LshParams;
using sablock::core::SemanticAwareLshBlocker;
using sablock::core::SemanticMode;
using sablock::core::SemanticParams;

int main(int argc, char** argv) {
  size_t records =
      argc > 1 ? static_cast<size_t>(std::atol(argv[1])) : 30000;

  sablock::data::VoterGeneratorConfig config;
  config.num_records = records;
  config.seed = 97;
  sablock::data::Dataset d = GenerateVoterLike(config);
  std::printf("dataset: %zu records, %llu true match pairs\n\n", d.size(),
              static_cast<unsigned long long>(d.CountTrueMatchPairs()));

  // The voter domain: person taxonomy over gender × race (12 leaves) and
  // a value-based semantic function that sends 'u' values to internal
  // nodes (uncertainty = generality).
  sablock::core::Domain domain = sablock::core::MakeVoterDomain();

  LshParams lsh;
  lsh.k = 9;
  lsh.l = 15;
  lsh.q = 2;
  lsh.attributes = {"first_name", "last_name"};

  sablock::eval::TablePrinter table(
      {"technique", "PC", "PQ", "RR", "FM", "pairs", "time(s)"});
  auto row = [&table](const sablock::eval::TechniqueResult& r) {
    table.AddRow({r.name, sablock::FormatDouble(r.metrics.pc, 4),
                  sablock::FormatDouble(r.metrics.pq, 4),
                  sablock::FormatDouble(r.metrics.rr, 4),
                  sablock::FormatDouble(r.metrics.fm, 4),
                  std::to_string(r.metrics.distinct_pairs),
                  sablock::FormatDouble(r.seconds, 3)});
  };

  row(sablock::eval::RunTechnique(LshBlocker(lsh), d));
  // Sweep the OR width: small w drops uncertain matches (low PC), large w
  // approaches the semantic-compatibility filter (the paper's preferred
  // setting for uncertain features).
  for (int w : {1, 3, 5, 9, 12}) {
    SemanticParams sem;
    sem.w = w;
    sem.mode = SemanticMode::kOr;
    row(sablock::eval::RunTechnique(
        SemanticAwareLshBlocker(lsh, sem, domain.semantics), d));
  }
  table.Print();

  std::printf(
      "\nReading the sweep: with uncertain features, small w is too\n"
      "aggressive (PC loss); w >= ~half the signature width recovers PC\n"
      "while still improving PQ over plain LSH — the paper's guidance for\n"
      "noisy/uncertain semantic features (Section 5.3, step iii).\n");
  return 0;
}
