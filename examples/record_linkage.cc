// Record linkage across two data sources: link two snapshots of a voter
// roll (A = older snapshot, B = newer snapshot with re-registered voters).
// Unlike deduplication, only cross-source pairs are candidates; the
// example shows the merge → block → cross-restrict workflow and compares
// plain LSH with SA-LSH on the linkage task.
//
// Usage: ./build/examples/record_linkage [records_a] [records_b]

#include <cstdio>
#include <cstdlib>

#include "core/domains.h"
#include "core/linkage.h"
#include "core/lsh_blocker.h"
#include "data/voter_generator.h"
#include "eval/metrics.h"

using sablock::core::BlockCollection;
using sablock::core::CrossSourceBlocks;
using sablock::core::LinkageDataset;
using sablock::core::LshBlocker;
using sablock::core::LshParams;
using sablock::core::SemanticAwareLshBlocker;
using sablock::core::SemanticMode;
using sablock::core::SemanticParams;

namespace {

void Report(const char* label, const LinkageDataset& link,
            const BlockCollection& blocks) {
  BlockCollection cross = CrossSourceBlocks(blocks, link.boundary);
  sablock::PairSet pairs = cross.DistinctPairs();
  uint64_t true_cross = CountCrossTrueMatches(link);
  uint64_t found = 0;
  pairs.ForEach([&](uint32_t x, uint32_t y) {
    if (link.merged.IsMatch(x, y)) ++found;
  });
  double pc = true_cross > 0
                  ? static_cast<double>(found) /
                        static_cast<double>(true_cross)
                  : 0.0;
  double pq = pairs.size() > 0 ? static_cast<double>(found) /
                                     static_cast<double>(pairs.size())
                               : 0.0;
  double rr = 1.0 - static_cast<double>(pairs.size()) /
                        static_cast<double>(TotalCrossPairs(link));
  std::printf("%-10s PC=%.4f PQ=%.4f RR=%.6f candidates=%zu (of %llu "
              "cross pairs)\n",
              label, pc, pq, rr, pairs.size(),
              static_cast<unsigned long long>(TotalCrossPairs(link)));
}

}  // namespace

int main(int argc, char** argv) {
  size_t records_a =
      argc > 1 ? static_cast<size_t>(std::atol(argv[1])) : 5000;
  size_t records_b =
      argc > 2 ? static_cast<size_t>(std::atol(argv[2])) : 4000;

  // Two snapshots: 45% of B re-describes a voter from A (typos, nicknames,
  // surname changes and uncertain gender/race included).
  sablock::data::VoterGeneratorConfig config;
  config.seed = 23;
  sablock::data::Dataset a;
  sablock::data::Dataset b;
  GenerateVoterLinkagePair(config, records_a, records_b, 0.45, &a, &b);
  LinkageDataset link = sablock::core::MergeForLinkage(a, b);
  std::printf("source A: %zu records, source B: %zu records, "
              "true cross matches: %llu\n\n",
              a.size(), b.size(),
              static_cast<unsigned long long>(CountCrossTrueMatches(link)));

  LshParams lsh;
  lsh.k = 6;
  lsh.l = 15;
  lsh.q = 2;
  lsh.attributes = {"first_name", "last_name"};

  sablock::core::BlockCollection lsh_blocks;  // collecting sink
  LshBlocker(lsh).Run(link.merged, lsh_blocks);
  Report("LSH", link, lsh_blocks);

  sablock::core::Domain domain = sablock::core::MakeVoterDomain();
  SemanticParams sem;
  sem.w = 12;
  sem.mode = SemanticMode::kOr;
  sablock::core::BlockCollection sa_blocks;
  SemanticAwareLshBlocker(lsh, sem, domain.semantics)
      .Run(link.merged, sa_blocks);
  Report("SA-LSH", link, sa_blocks);

  std::printf(
      "\nThe semantic dimension pays off in linkage exactly as in\n"
      "deduplication: voters whose names collide textually but whose\n"
      "gender/race disagree are never proposed as link candidates.\n");
  return 0;
}
