// Quickstart: the paper's running example (Fig. 1) in ~60 lines of API.
//
// Six citation records r1..r6; r1, r2 and r6 cite the same paper, r4/r5
// are technical reports. Textual LSH alone puts the textually identical
// tech report r4 next to r1; adding the semantic dimension removes it.
//
// Build & run:  ./build/examples/quickstart

#include <cstdio>

#include "core/domains.h"
#include "core/lsh_blocker.h"
#include "eval/metrics.h"

using sablock::core::LshBlocker;
using sablock::core::LshParams;
using sablock::core::SemanticAwareLshBlocker;
using sablock::core::SemanticMode;
using sablock::core::SemanticParams;
using sablock::data::Dataset;
using sablock::data::Record;
using sablock::data::Schema;

int main() {
  // 1. A dataset is a schema plus records (+ optional ground truth).
  Dataset d{Schema({"title", "authors", "journal", "booktitle",
                    "institution", "publisher", "year"})};
  auto add = [&d](const char* title, const char* authors,
                  const char* journal, const char* booktitle,
                  const char* institution, sablock::data::EntityId entity) {
    Record r;
    r.values = {title, authors, journal, booktitle, institution, "", ""};
    d.Add(std::move(r), entity);
  };
  add("The cascade-correlation learning architecture",
      "E. Fahlman and C. Lebiere", "", "NISPS Proceedings", "", 0);
  add("Cascade correlation learning architecture",
      "E. Fahlman & C. Lebiere", "Neural Information Systems",
      "Neural Information Systems", "", 0);
  add("A genetic cascade correlation learning algorithm", "", "",
      "Proceedings on Neural Ntw.", "", 1);
  add("The cascade corelation learning architecture",
      "Fahlman, S., & Lebiere, C.", "", "", "TR", 2);
  add("Controlled growth of cascade correlation nets", "", "", "",
      "Technical Report (TR)", 3);
  add("The cascade-correlation learn architecture",
      "Lebiere, C. and Fahlman, S.", "", "", "", 0);

  // 2. The bibliographic domain bundles the Fig. 3 taxonomy tree with the
  //    Table 1 missing-value-pattern semantic function.
  sablock::core::Domain domain = sablock::core::MakeBibliographicDomain();

  // 3. Configure the LSH family: l tables of k minhash rows over q-gram
  //    shingles of the chosen attributes.
  LshParams lsh;
  lsh.k = 2;
  lsh.l = 24;
  lsh.q = 3;
  lsh.attributes = {"authors", "title"};

  // 4. Plain textual LSH blocking ("B1" of Fig. 1).
  sablock::core::BlockCollection textual = LshBlocker(lsh).Run(d);

  // 5. Semantic-aware LSH blocking ("B3"): a full-width OR semantic hash
  //    keeps only candidates sharing at least one semantic feature.
  SemanticParams sem;
  sem.w = 5;
  sem.mode = SemanticMode::kOr;
  sablock::core::BlockCollection combined =
      SemanticAwareLshBlocker(lsh, sem, domain.semantics).Run(d);

  // 6. Compare.
  sablock::eval::Metrics m_text = sablock::eval::Evaluate(d, textual);
  sablock::eval::Metrics m_comb = sablock::eval::Evaluate(d, combined);
  std::printf("textual LSH : %s\n", sablock::eval::Summary(m_text).c_str());
  std::printf("SA-LSH      : %s\n", sablock::eval::Summary(m_comb).c_str());

  std::printf("\nr1 vs r4 (same text, different semantics):\n");
  std::printf("  co-blocked by LSH    : %s\n",
              textual.InSameBlock(0, 3) ? "yes" : "no");
  std::printf("  co-blocked by SA-LSH : %s\n",
              combined.InSameBlock(0, 3) ? "yes" : "no");
  std::printf("r1 vs r2 (true duplicates):\n");
  std::printf("  co-blocked by LSH    : %s\n",
              textual.InSameBlock(0, 1) ? "yes" : "no");
  std::printf("  co-blocked by SA-LSH : %s\n",
              combined.InSameBlock(0, 1) ? "yes" : "no");
  return 0;
}
