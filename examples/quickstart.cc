// Quickstart: the paper's running example (Fig. 1) in ~60 lines of API.
//
// Six citation records r1..r6; r1, r2 and r6 cite the same paper, r4/r5
// are technical reports. Textual LSH alone puts the textually identical
// tech report r4 next to r1; adding the semantic dimension removes it.
//
// Techniques are built from registry spec strings — the same strings the
// CLI and benches accept ("name:key=val,key=val").
//
// Build & run:  ./build/quickstart

#include <cstdio>
#include <memory>

#include "api/registry.h"
#include "eval/metrics.h"
#include "pipeline/pipeline.h"

using sablock::data::Dataset;
using sablock::data::Record;
using sablock::data::Schema;

namespace {

// Builds a technique from its spec string (aborting on typos — this is a
// demo; real callers inspect the Status).
std::unique_ptr<sablock::core::BlockingTechnique> MustCreate(
    const char* spec) {
  std::unique_ptr<sablock::core::BlockingTechnique> technique;
  sablock::Status status =
      sablock::api::BlockerRegistry::Global().Create(spec, &technique);
  if (!status.ok()) {
    std::fprintf(stderr, "bad spec '%s': %s\n", spec,
                 status.message().c_str());
    std::exit(1);
  }
  return technique;
}

}  // namespace

int main() {
  // 1. A dataset is a schema plus records (+ optional ground truth).
  Dataset d{Schema({"title", "authors", "journal", "booktitle",
                    "institution", "publisher", "year"})};
  auto add = [&d](const char* title, const char* authors,
                  const char* journal, const char* booktitle,
                  const char* institution, sablock::data::EntityId entity) {
    Record r;
    r.values = {title, authors, journal, booktitle, institution, "", ""};
    d.Add(std::move(r), entity);
  };
  add("The cascade-correlation learning architecture",
      "E. Fahlman and C. Lebiere", "", "NISPS Proceedings", "", 0);
  add("Cascade correlation learning architecture",
      "E. Fahlman & C. Lebiere", "Neural Information Systems",
      "Neural Information Systems", "", 0);
  add("A genetic cascade correlation learning algorithm", "", "",
      "Proceedings on Neural Ntw.", "", 1);
  add("The cascade corelation learning architecture",
      "Fahlman, S., & Lebiere, C.", "", "", "TR", 2);
  add("Controlled growth of cascade correlation nets", "", "", "",
      "Technical Report (TR)", 3);
  add("The cascade-correlation learn architecture",
      "Lebiere, C. and Fahlman, S.", "", "", "", 0);

  // 2. Plain textual LSH blocking ("B1" of Fig. 1): l tables of k minhash
  //    rows over q-gram shingles of the chosen attributes.
  sablock::core::BlockCollection textual;  // a BlockCollection is a sink
  MustCreate("lsh:k=2,l=24,q=3,attrs=authors+title")->Run(d, textual);

  // 3. Semantic-aware LSH blocking ("B3"): the bib domain bundles the
  //    Fig. 3 taxonomy with the Table 1 semantic function; a full-width OR
  //    semantic hash keeps only candidates sharing a semantic feature.
  sablock::core::BlockCollection combined;
  MustCreate("sa-lsh:k=2,l=24,q=3,attrs=authors+title,w=5,mode=or,"
             "domain=bib")
      ->Run(d, combined);

  // 4. Compare.
  sablock::eval::Metrics m_text = sablock::eval::Evaluate(d, textual);
  sablock::eval::Metrics m_comb = sablock::eval::Evaluate(d, combined);
  std::printf("textual LSH : %s\n", sablock::eval::Summary(m_text).c_str());
  std::printf("SA-LSH      : %s\n", sablock::eval::Summary(m_comb).c_str());

  std::printf("\nr1 vs r4 (same text, different semantics):\n");
  std::printf("  co-blocked by LSH    : %s\n",
              textual.InSameBlock(0, 3) ? "yes" : "no");
  std::printf("  co-blocked by SA-LSH : %s\n",
              combined.InSameBlock(0, 3) ? "yes" : "no");
  std::printf("r1 vs r2 (true duplicates):\n");
  std::printf("  co-blocked by LSH    : %s\n",
              textual.InSameBlock(0, 1) ? "yes" : "no");
  std::printf("  co-blocked by SA-LSH : %s\n",
              combined.InSameBlock(0, 1) ? "yes" : "no");

  // 5. Pipelines: any blocker composes with post-processing stages via
  //    '|' — here SA-LSH, then block purging (drop oversized blocks),
  //    then a comparison budget that stops the generator early. Stage
  //    names resolve against the StageRegistry (sablock_cli
  //    --list-stages shows all of them).
  std::unique_ptr<sablock::pipeline::PipelinedBlocker> pipelined;
  sablock::Status status = sablock::pipeline::Build(
      "sa-lsh:k=2,l=24,q=3,attrs=authors+title,w=5,mode=or,domain=bib"
      " | purge:max_size=4 | cap:budget=6",
      &pipelined);
  if (!status.ok()) {
    std::fprintf(stderr, "bad pipeline: %s\n", status.message().c_str());
    return 1;
  }
  sablock::core::BlockCollection budgeted;
  pipelined->Run(d, budgeted);
  sablock::eval::Metrics m_pipe = sablock::eval::Evaluate(d, budgeted);
  std::printf("\npipeline %s:\n  %s\n", pipelined->name().c_str(),
              sablock::eval::Summary(m_pipe).c_str());

  // 6. Progressive blocking: the `progressive` barrier stage scores every
  //    candidate pair (here by ew-cbs edge weight — co-occurrence across
  //    blocks) and re-emits best-first, so a pair budget keeps the
  //    likeliest matches. On real data the budget would be something like
  //    pairs=50000; this toy set only has a handful of pairs.
  std::unique_ptr<sablock::pipeline::PipelinedBlocker> progressive;
  status = sablock::pipeline::Build(
      "sa-lsh:k=2,l=24,q=3,attrs=authors+title,w=5,mode=or,domain=bib"
      " | purge:max_size=4 | progressive:sched=ew-cbs,pairs=3",
      &progressive);
  if (!status.ok()) {
    std::fprintf(stderr, "bad pipeline: %s\n", status.message().c_str());
    return 1;
  }
  sablock::core::BlockCollection best_first;  // one 2-record block per pair
  progressive->Run(d, best_first);
  std::printf("\n%s\n  top pairs:", progressive->name().c_str());
  for (const sablock::core::Block& b : best_first.blocks()) {
    std::printf("  (r%u, r%u)", b[0] + 1, b[1] + 1);
  }
  std::printf("\n");
  return 0;
}
