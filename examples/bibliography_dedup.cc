// Bibliography deduplication, end to end: generate a dirty Cora-like
// citation dataset, learn the LSH parameters from the data (Section 5.3),
// then block with LSH and SA-LSH and compare against two classic
// baselines. Demonstrates the full tuning + blocking workflow a user
// would run on their own bibliographic data.
//
// Usage: ./build/examples/bibliography_dedup [records]

#include <cstdio>
#include <cstdlib>

#include "baselines/sorted_neighbourhood.h"
#include "baselines/standard_blocking.h"
#include "core/collision.h"
#include "common/string_util.h"
#include "core/domains.h"
#include "core/lsh_blocker.h"
#include "core/tuning.h"
#include "data/cora_generator.h"
#include "eval/harness.h"

using sablock::core::LshBlocker;
using sablock::core::LshParams;
using sablock::core::SemanticAwareLshBlocker;
using sablock::core::SemanticMode;
using sablock::core::SemanticParams;

int main(int argc, char** argv) {
  size_t records = argc > 1 ? static_cast<size_t>(std::atol(argv[1])) : 1879;

  // 1. A dirty citation dataset (stand-in for Cora; see DESIGN.md §2).
  sablock::data::CoraGeneratorConfig config;
  config.num_records = records;
  config.num_entities = records / 10;
  config.seed = 42;
  sablock::data::Dataset d = GenerateCoraLike(config);
  std::printf("dataset: %zu records, %llu true match pairs\n\n", d.size(),
              static_cast<unsigned long long>(d.CountTrueMatchPairs()));

  // 2. Learn the similarity distribution of true matches on a training
  //    sample and derive s_h for a 5% error budget (Section 5.3 step i).
  sablock::core::DistributionOptions options;
  options.attributes = {"authors", "title"};
  options.q = 4;
  options.max_pairs = 20000;
  sablock::core::SimilarityDistribution dist =
      MeasureTrueMatchSimilarity(d, options);
  double sh = dist.ThresholdForErrorRatio(0.05);
  double sl = sh > 0.1 ? sh - 0.1 : sh * 0.5;
  std::printf("learned thresholds: s_h=%.2f (eps=5%%), s_l=%.2f\n", sh, sl);

  // 3. Solve for the smallest (k, l) meeting the collision targets
  //    (step ii): p(s_h) >= 0.4, p(s_l) <= 0.1.
  sablock::core::LshTuning tuning = sablock::core::TuneKL(sh, 0.4, sl, 0.1);
  if (!tuning.feasible) {
    std::printf("tuning infeasible; falling back to k=4, l=63\n");
    tuning.k = 4;
    tuning.l = 63;
  }
  std::printf("tuned parameters: k=%d, l=%d\n\n", tuning.k, tuning.l);

  LshParams lsh;
  lsh.k = tuning.k;
  lsh.l = tuning.l;
  lsh.q = 4;
  lsh.attributes = {"authors", "title"};

  // 4. Blocking: semantic machinery from the bibliographic domain, w-way
  //    OR over the full 5-bit signature (step iii: noisy semantics -> OR).
  sablock::core::Domain domain = sablock::core::MakeBibliographicDomain();
  SemanticParams sem;
  sem.w = 5;
  sem.mode = SemanticMode::kOr;

  sablock::baselines::BlockingKeyDef key =
      sablock::baselines::ExactKey({"authors", "title"});

  sablock::eval::TablePrinter table(
      {"technique", "PC", "PQ", "RR", "FM", "pairs", "time(s)"});
  auto row = [&table](const sablock::eval::TechniqueResult& r) {
    table.AddRow({r.name, sablock::FormatDouble(r.metrics.pc, 4),
                  sablock::FormatDouble(r.metrics.pq, 4),
                  sablock::FormatDouble(r.metrics.rr, 4),
                  sablock::FormatDouble(r.metrics.fm, 4),
                  std::to_string(r.metrics.distinct_pairs),
                  sablock::FormatDouble(r.seconds, 3)});
  };
  row(sablock::eval::RunTechnique(
      sablock::baselines::StandardBlocking(key), d));
  row(sablock::eval::RunTechnique(
      sablock::baselines::SortedNeighbourhoodArray(key, 5), d));
  row(sablock::eval::RunTechnique(LshBlocker(lsh), d));
  row(sablock::eval::RunTechnique(
      SemanticAwareLshBlocker(lsh, sem, domain.semantics), d));
  table.Print();

  std::printf(
      "\nSA-LSH should dominate pair quality (PQ): semantically\n"
      "incompatible candidates (e.g. a journal article vs a technical\n"
      "report with near-identical titles) never share a block.\n");
  return 0;
}
