// Bring-your-own domain: build a custom taxonomy and semantic function for
// a product-catalogue deduplication task and plug them into SA-LSH. Shows
// the three extension points a downstream user touches:
//   1. core::Taxonomy          — the domain's concept tree(s),
//   2. core::RuleSemanticFunction (or LambdaSemanticFunction) — how a
//      record maps to concepts,
//   3. core::SemanticAwareLshBlocker — the blocker itself.
//
// Usage: ./build/examples/custom_taxonomy

#include <cstdio>
#include <memory>

#include "core/lsh_blocker.h"
#include "core/semantic.h"
#include "eval/metrics.h"

using sablock::core::AttributePredicate;
using sablock::core::RuleSemanticFunction;
using sablock::core::SemanticRule;
using sablock::core::Taxonomy;

int main() {
  // 1. A product taxonomy: electronics vs clothing, with subtypes.
  Taxonomy taxonomy;
  auto product = taxonomy.AddConcept("product");
  auto electronics = taxonomy.AddConcept("electronics", product);
  taxonomy.AddConcept("phone", electronics);
  taxonomy.AddConcept("laptop", electronics);
  taxonomy.AddConcept("camera", electronics);
  auto clothing = taxonomy.AddConcept("clothing", product);
  taxonomy.AddConcept("shoes", clothing);
  taxonomy.AddConcept("jacket", clothing);
  taxonomy.Finalize();

  // 2. A semantic function over the catalogue's `category` column; unknown
  //    or missing categories fall back to broader concepts.
  std::vector<SemanticRule> rules = {
      {{AttributePredicate::Equals("category", "phone")}, {"phone"}},
      {{AttributePredicate::Equals("category", "laptop")}, {"laptop"}},
      {{AttributePredicate::Equals("category", "camera")}, {"camera"}},
      {{AttributePredicate::Equals("category", "shoes")}, {"shoes"}},
      {{AttributePredicate::Equals("category", "jacket")}, {"jacket"}},
      {{AttributePredicate::Equals("category", "electronics")},
       {"electronics"}},
      {{AttributePredicate::Equals("category", "clothing")}, {"clothing"}},
      {{}, {"product"}},  // catch-all: unknown category
  };
  auto semantics = std::make_shared<RuleSemanticFunction>(
      taxonomy, std::move(rules));

  // 3. A small catalogue with listing-style duplicates: same item sold
  //    under slightly different names, sometimes with a missing category.
  sablock::data::Dataset d{
      sablock::data::Schema({"name", "brand", "category"})};
  auto add = [&d](const char* name, const char* brand, const char* category,
                  sablock::data::EntityId e) {
    d.Add({{name, brand, category}}, e);
  };
  add("galaxy s9 smartphone 64gb black", "samsung", "phone", 0);
  add("galaxy s9 smart phone 64 gb, black", "samsung", "phone", 0);
  add("galaxy s9 phone case black", "generic", "jacket", 1);  // accessory!
  add("thinkpad x1 carbon laptop 14in", "lenovo", "laptop", 2);
  add("thinkpad x1 carbon 14 inch laptop", "lenovo", "", 2);
  add("trail running shoes x1 carbon black", "salomon", "shoes", 3);

  sablock::core::LshParams lsh;
  lsh.k = 1;  // permissive bands: moderately similar names collide
  lsh.l = 12;
  lsh.q = 3;
  lsh.attributes = {"name", "brand"};

  sablock::core::LshBlocker textual(lsh);
  sablock::core::BlockCollection text_blocks;  // collecting sink
  textual.Run(d, text_blocks);

  sablock::core::SemanticParams sem;
  sem.w = 5;  // full signature width
  sem.mode = sablock::core::SemanticMode::kOr;
  sablock::core::SemanticAwareLshBlocker sa(lsh, sem, semantics);
  sablock::core::BlockCollection sa_blocks;
  sa.Run(d, sa_blocks);

  std::printf(
      "textual LSH : %s\n",
      sablock::eval::Summary(sablock::eval::Evaluate(d, text_blocks))
          .c_str());
  std::printf(
      "SA-LSH      : %s\n\n",
      sablock::eval::Summary(sablock::eval::Evaluate(d, sa_blocks))
          .c_str());

  // The phone-case listing (id 2) is textually close to the phones but
  // semantically a clothing-side item; SA-LSH keeps it apart. The laptop
  // with missing category (id 4) still matches its duplicate because the
  // catch-all concept subsumes 'laptop'.
  std::printf("phone vs phone-case  — LSH: %s, SA-LSH: %s\n",
              text_blocks.InSameBlock(0, 2) ? "co-blocked" : "apart",
              sa_blocks.InSameBlock(0, 2) ? "co-blocked" : "apart");
  std::printf("laptop vs laptop(?)  — LSH: %s, SA-LSH: %s\n",
              text_blocks.InSameBlock(3, 4) ? "co-blocked" : "apart",
              sa_blocks.InSameBlock(3, 4) ? "co-blocked" : "apart");
  return 0;
}
