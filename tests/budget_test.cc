// Tests for the unified Budget grammar and the shared atomic BudgetMeter
// countdown — the one budget type every layer (pipeline stage, sharded
// engine, service verbs, CLI flags) accounts against.

#include <gtest/gtest.h>

#include <chrono>
#include <memory>
#include <thread>
#include <vector>

#include "core/block_sink.h"
#include "core/blocking.h"
#include "core/budget.h"
#include "core/pair_sink.h"

namespace sablock::core {
namespace {

Budget MustParse(const std::string& text) {
  StatusOr<Budget> parsed = Budget::Parse(text);
  EXPECT_TRUE(parsed.ok()) << parsed.status().message();
  return *parsed;
}

std::string ParseError(const std::string& text) {
  StatusOr<Budget> parsed = Budget::Parse(text);
  EXPECT_FALSE(parsed.ok()) << "'" << text << "' should not parse";
  return parsed.ok() ? "" : parsed.status().message();
}

TEST(BudgetTest, DefaultAndEmptySpecAreUnlimited) {
  EXPECT_TRUE(Budget{}.unlimited());
  EXPECT_TRUE(MustParse("").unlimited());
  EXPECT_TRUE(MustParse("   ").unlimited());
  EXPECT_EQ(Budget{}.ToString(), "");
}

TEST(BudgetTest, ParsesEveryTermInAnyOrder) {
  Budget b = MustParse("seconds=1.5, recall-target=0.9 ,pairs=50000");
  EXPECT_EQ(b.pairs, 50000u);
  EXPECT_DOUBLE_EQ(b.seconds, 1.5);
  EXPECT_DOUBLE_EQ(b.recall_target, 0.9);
  EXPECT_FALSE(b.unlimited());

  EXPECT_EQ(MustParse("pairs=inf").pairs, Budget::kUnlimitedPairs);
  EXPECT_EQ(MustParse("pairs=unlimited").pairs, Budget::kUnlimitedPairs);
  EXPECT_EQ(MustParse("PAIRS=7").pairs, 7u);  // keys are case-insensitive
}

TEST(BudgetTest, ToStringRoundTrips) {
  for (const char* spec :
       {"pairs=123", "seconds=0.250", "recall-target=0.900",
        "pairs=9,seconds=2.000", "pairs=1,seconds=0.500,recall-target=1.000"}) {
    Budget b = MustParse(spec);
    EXPECT_EQ(b.ToString(), spec);
    Budget again = MustParse(b.ToString());
    EXPECT_EQ(again.pairs, b.pairs);
    EXPECT_DOUBLE_EQ(again.seconds, b.seconds);
    EXPECT_DOUBLE_EQ(again.recall_target, b.recall_target);
  }
}

TEST(BudgetTest, DiagnosticsNameTheOffendingTerm) {
  EXPECT_NE(ParseError("pairs=0").find("'pairs': must be >= 1"),
            std::string::npos);
  EXPECT_NE(ParseError("pairs=-3").find("non-negative integer"),
            std::string::npos);
  EXPECT_NE(ParseError("pairs=abc").find("non-negative integer"),
            std::string::npos);
  EXPECT_NE(ParseError("seconds=0").find("'seconds': must be > 0"),
            std::string::npos);
  EXPECT_NE(ParseError("seconds=nope").find("expected a number"),
            std::string::npos);
  EXPECT_NE(ParseError("recall-target=1.5").find("must be in (0, 1]"),
            std::string::npos);
  EXPECT_NE(ParseError("recall-target=0").find("must be in (0, 1]"),
            std::string::npos);
  EXPECT_NE(ParseError("budget=5").find("unknown term 'budget'"),
            std::string::npos);
  EXPECT_NE(ParseError("pairs").find("expected key=value"),
            std::string::npos);
  EXPECT_NE(ParseError("pairs=1,,seconds=1").find("empty term"),
            std::string::npos);
}

TEST(BudgetMeterTest, CrossingSpendIsAcceptedThenExhausted) {
  BudgetMeter meter(MustParse("pairs=10"));
  EXPECT_FALSE(meter.Exhausted());
  for (int i = 0; i < 10; ++i) {
    EXPECT_TRUE(meter.Spend(1)) << "spend " << i;
  }
  // The 10th spend crossed the limit; the budget is now exhausted and
  // further spends are refused.
  EXPECT_TRUE(meter.Exhausted());
  EXPECT_FALSE(meter.Spend(1));
  EXPECT_EQ(meter.Spent(), 10u);
  EXPECT_STREQ(meter.ExhaustedReason(), "pairs");
}

TEST(BudgetMeterTest, OversizedSpendIsAcceptedOnce) {
  // CappedSink semantics: the block that crosses the budget is still
  // forwarded, however large.
  BudgetMeter meter(MustParse("pairs=5"));
  EXPECT_TRUE(meter.Spend(100));
  EXPECT_TRUE(meter.Exhausted());
  EXPECT_FALSE(meter.Spend(1));
  EXPECT_EQ(meter.Spent(), 100u);
}

TEST(BudgetMeterTest, UnlimitedNeverExhaustsNorOverflows) {
  BudgetMeter meter(Budget{});
  for (int i = 0; i < 1000; ++i) EXPECT_TRUE(meter.Spend(1u << 20));
  EXPECT_FALSE(meter.Exhausted());
  EXPECT_STREQ(meter.ExhaustedReason(), "");
}

TEST(BudgetMeterTest, SecondsDeadlineTrips) {
  BudgetMeter meter(MustParse("seconds=0.02"));
  EXPECT_FALSE(meter.Exhausted());
  std::this_thread::sleep_for(std::chrono::milliseconds(40));
  EXPECT_TRUE(meter.Exhausted());
  EXPECT_FALSE(meter.Spend(1));
  EXPECT_STREQ(meter.ExhaustedReason(), "seconds");
}

TEST(BudgetMeterTest, RecallTargetTripsAtTheConfiguredFraction) {
  BudgetMeter meter(MustParse("recall-target=0.5"));
  meter.ConfigureRecall(/*total_true_matches=*/10);
  for (int i = 0; i < 4; ++i) {
    EXPECT_TRUE(meter.Spend(1));
    meter.NoteMatch();
  }
  EXPECT_FALSE(meter.Exhausted());  // 4/10 < 0.5
  EXPECT_TRUE(meter.Spend(1));
  meter.NoteMatch();  // 5/10 == 0.5
  EXPECT_TRUE(meter.Exhausted());
  EXPECT_EQ(meter.Matches(), 5u);
  EXPECT_STREQ(meter.ExhaustedReason(), "recall");
}

TEST(BudgetMeterTest, UnconfiguredRecallNeverTrips) {
  BudgetMeter meter(MustParse("recall-target=0.1"));
  for (int i = 0; i < 100; ++i) {
    EXPECT_TRUE(meter.Spend(1));
    meter.NoteMatch();  // no ConfigureRecall: no ground truth, no trip
  }
  EXPECT_FALSE(meter.Exhausted());
}

// The concurrency contract that replaces ConcurrentSink-wrapped
// CappedSinks: many threads share one meter with no external lock, and
// the accepted total overshoots by at most one crossing spend per thread.
TEST(BudgetMeterTest, SharedMeterAcrossThreadsBoundsOvershoot) {
  constexpr int kThreads = 8;
  constexpr uint64_t kBudget = 1000;
  auto meter = std::make_shared<BudgetMeter>(MustParse("pairs=1000"));
  std::vector<uint64_t> accepted(kThreads, 0);
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      while (meter->Spend(1)) ++accepted[t];
    });
  }
  for (std::thread& thread : threads) thread.join();
  uint64_t total = 0;
  for (uint64_t a : accepted) total += a;
  EXPECT_GE(total, kBudget);
  EXPECT_LE(total, kBudget + kThreads);
  EXPECT_TRUE(meter->Exhausted());
  EXPECT_STREQ(meter->ExhaustedReason(), "pairs");
}

TEST(BudgetedSinkTest, SharesOneMeterAcrossSinks) {
  auto meter = std::make_shared<BudgetMeter>(MustParse("pairs=6"));
  BlockCollection out_a;
  BlockCollection out_b;
  BudgetedSink a(out_a, meter);
  BudgetedSink b(out_b, meter);
  a.Consume(Block{0, 1, 2});  // 3 comparisons
  b.Consume(Block{3, 4, 5});  // 3 more: crossing spend, still forwarded
  EXPECT_TRUE(a.Done());
  EXPECT_TRUE(b.Done());
  b.Consume(Block{6, 7});  // refused
  EXPECT_EQ(out_a.NumBlocks(), 1u);
  EXPECT_EQ(out_b.NumBlocks(), 1u);
  EXPECT_EQ(b.dropped_blocks(), 1u);
  EXPECT_EQ(meter->Spent(), 6u);
}

TEST(BudgetedPairSinkTest, GatesThePairStream) {
  auto meter = std::make_shared<BudgetMeter>(MustParse("pairs=3"));
  PairCollector collected;
  BudgetedPairSink gated(collected, meter);
  for (uint32_t i = 0; i < 5; ++i) {
    gated.Emit({i, i + 1, 1.0 / (i + 1)});
  }
  EXPECT_EQ(collected.pairs().size(), 3u);
  EXPECT_EQ(gated.dropped_pairs(), 2u);
  EXPECT_TRUE(gated.Done());
}

TEST(CappedSinkShimTest, MatchesTheOldComparisonCapBehaviour) {
  BlockCollection out;
  CappedSink capped(out, /*comparison_budget=*/3);
  capped.Consume(Block{0, 1});      // 1 comparison
  capped.Consume(Block{2, 3, 4});   // 3 more: crossing, forwarded
  EXPECT_TRUE(capped.Done());
  capped.Consume(Block{5, 6});      // refused
  EXPECT_EQ(out.NumBlocks(), 2u);
  EXPECT_EQ(capped.comparisons(), 4u);
  EXPECT_EQ(capped.comparisons(), capped.meter()->Spent());
  EXPECT_EQ(capped.dropped_blocks(), 1u);
}

}  // namespace
}  // namespace sablock::core
