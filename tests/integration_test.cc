// End-to-end integration tests: the full paper pipeline on generated
// Cora-like and Voter-like data, plus cross-technique sanity orderings.

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>

#include "baselines/adaptive_sorted_neighbourhood.h"
#include "baselines/canopy.h"
#include "baselines/meta_blocking.h"
#include "baselines/qgram_indexing.h"
#include "baselines/sorted_neighbourhood.h"
#include "baselines/standard_blocking.h"
#include "baselines/stringmap.h"
#include "baselines/suffix_array.h"
#include "core/domains.h"
#include "core/lsh_blocker.h"
#include "core/tuning.h"
#include "data/cora_generator.h"
#include "data/voter_generator.h"
#include "eval/harness.h"

namespace sablock {
namespace {

using namespace sablock::baselines;  // NOLINT
using core::Domain;
using core::LshBlocker;
using core::LshParams;
using core::SemanticAwareLshBlocker;
using core::SemanticMode;
using core::SemanticParams;
using data::Dataset;

Dataset MakeCora() {
  data::CoraGeneratorConfig config;
  config.num_entities = 60;
  config.num_records = 450;
  config.seed = 71;
  return GenerateCoraLike(config);
}

Dataset MakeVoter() {
  data::VoterGeneratorConfig config;
  config.num_records = 1200;
  config.seed = 72;
  return GenerateVoterLike(config);
}

LshParams CoraLsh() {
  LshParams p;
  p.k = 3;
  p.l = 20;
  p.q = 3;
  p.attributes = {"authors", "title"};
  p.seed = 5;
  return p;
}

LshParams VoterLsh() {
  LshParams p;
  p.k = 6;
  p.l = 15;
  p.q = 2;
  p.attributes = {"first_name", "last_name"};
  p.seed = 5;
  return p;
}

TEST(IntegrationTest, TunedPipelineOnCora) {
  Dataset d = MakeCora();

  // Step (i): learn the true-match similarity distribution.
  core::DistributionOptions options;
  options.attributes = {"authors", "title"};
  options.q = 3;
  core::SimilarityDistribution dist =
      core::MeasureTrueMatchSimilarity(d, options);
  ASSERT_GT(dist.count(), 0u);
  double sh = dist.ThresholdForErrorRatio(0.05);
  double sl = sh > 0.1 ? sh - 0.1 : sh / 2.0;

  // Step (ii): solve for (k, l).
  core::LshTuning tuning = core::TuneKL(sh, 0.4, sl, 0.1);
  ASSERT_TRUE(tuning.feasible);
  EXPECT_GE(tuning.k, 1);
  EXPECT_GE(tuning.l, 1);

  // Step (iii): run SA-LSH with the tuned textual parameters.
  LshParams p;
  p.k = tuning.k;
  p.l = std::min(tuning.l, 80);  // cap for test runtime
  p.attributes = {"authors", "title"};
  Domain domain = core::MakeBibliographicDomain();
  SemanticParams sp;
  sp.w = 5;
  sp.mode = SemanticMode::kOr;
  eval::TechniqueResult result = eval::RunTechnique(
      SemanticAwareLshBlocker(p, sp, domain.semantics), d);
  EXPECT_GT(result.metrics.pc, 0.6);
  EXPECT_GT(result.metrics.fm, 0.1);
}

TEST(IntegrationTest, SaLshImprovesPqOverLshOnCora) {
  Dataset d = MakeCora();
  Domain domain = core::MakeBibliographicDomain();
  SemanticParams sp;
  sp.w = 5;
  sp.mode = SemanticMode::kOr;

  eval::Metrics lsh = eval::RunTechnique(LshBlocker(CoraLsh()), d).metrics;
  eval::Metrics sa =
      eval::RunTechnique(
          SemanticAwareLshBlocker(CoraLsh(), sp, domain.semantics), d)
          .metrics;

  // The paper's central claim (Fig. 9): semantic filtering improves PQ and
  // RR; PC may dip slightly because Cora-like semantics are noisy.
  EXPECT_GT(sa.pq, lsh.pq);
  EXPECT_GE(sa.rr, lsh.rr);
  EXPECT_GE(sa.pc, lsh.pc - 0.15);
  EXPECT_LT(sa.distinct_pairs, lsh.distinct_pairs);
}

TEST(IntegrationTest, SaLshImprovesPqOverLshOnVoter) {
  Dataset d = MakeVoter();
  Domain domain = core::MakeVoterDomain();
  SemanticParams sp;
  sp.w = 9;
  sp.mode = SemanticMode::kOr;

  eval::Metrics lsh = eval::RunTechnique(LshBlocker(VoterLsh()), d).metrics;
  eval::Metrics sa =
      eval::RunTechnique(
          SemanticAwareLshBlocker(VoterLsh(), sp, domain.semantics), d)
          .metrics;
  EXPECT_GE(sa.pq, lsh.pq);
  EXPECT_GE(sa.rr, lsh.rr);
  // Voter semantics are uncertain but only mildly noisy (the generator
  // flips gender/race on ~2% of duplicates): PC moves only slightly.
  EXPECT_GE(sa.pc, lsh.pc - 0.07);
}

TEST(IntegrationTest, AllBaselinesRunOnCora) {
  Dataset d = MakeCora();
  BlockingKeyDef key = ExactKey({"authors", "title"});

  std::vector<std::unique_ptr<core::BlockingTechnique>> techniques;
  techniques.push_back(std::make_unique<StandardBlocking>(key));
  techniques.push_back(std::make_unique<SortedNeighbourhoodArray>(key, 3));
  techniques.push_back(
      std::make_unique<SortedNeighbourhoodInvertedIndex>(key, 3));
  techniques.push_back(std::make_unique<AdaptiveSortedNeighbourhood>(
      key, "jaro_winkler", 0.8));
  techniques.push_back(std::make_unique<QGramIndexing>(key, 2, 0.9));
  techniques.push_back(std::make_unique<CanopyThreshold>(
      key, CanopySimilarity::kJaccard, 0.4, 0.7));
  techniques.push_back(std::make_unique<CanopyNearestNeighbour>(
      key, CanopySimilarity::kTfIdfCosine, 10, 5));
  techniques.push_back(
      std::make_unique<StringMapThreshold>(key, 0.8, 100, 8));
  techniques.push_back(
      std::make_unique<StringMapNearestNeighbour>(key, 5, 100, 8));
  techniques.push_back(std::make_unique<SuffixArrayBlocking>(key, 5, 20));
  techniques.push_back(
      std::make_unique<SuffixArrayAllSubstrings>(key, 7, 20));
  techniques.push_back(std::make_unique<RobustSuffixArrayBlocking>(
      key, 5, 20, "edit", 0.85));
  techniques.push_back(std::make_unique<MetaBlocking>(
      std::vector<std::string>{"authors", "title"}, MetaWeighting::kJs,
      MetaPruning::kWep));

  std::vector<eval::TechniqueResult> results = eval::RunAll(techniques, d);
  ASSERT_EQ(results.size(), techniques.size());
  for (const auto& r : results) {
    // Every technique must find at least some true matches on this dirty
    // but small dataset, within sane metric bounds.
    EXPECT_GE(r.metrics.pc, 0.0) << r.name;
    EXPECT_LE(r.metrics.pc, 1.0) << r.name;
    EXPECT_GE(r.seconds, 0.0) << r.name;
    EXPECT_GT(r.metrics.distinct_pairs, 0u) << r.name;
  }

  // LSH-family results participate in the same harness.
  eval::TechniqueResult lsh = eval::RunTechnique(LshBlocker(CoraLsh()), d);
  EXPECT_GT(lsh.metrics.pc, 0.5);
}

TEST(IntegrationTest, MetaBlockingSweepOnCora) {
  Dataset d = MakeCora();
  core::BlockCollection input = TokenBlocking(d, {"authors", "title"}, 200);
  eval::Metrics initial = eval::Evaluate(d, input);
  EXPECT_GT(initial.pc, 0.8);  // token blocking is high-recall

  for (MetaPruning pruning : {MetaPruning::kWep, MetaPruning::kCep,
                              MetaPruning::kWnp, MetaPruning::kCnp}) {
    MetaBlocking meta({"authors", "title"}, MetaWeighting::kArcs, pruning);
    eval::Metrics pruned = eval::Evaluate(d, meta.Prune(d, input));
    EXPECT_GE(pruned.pq_star, initial.pq_star)
        << MetaPruningName(pruning);
    EXPECT_LE(pruned.pc, initial.pc + 1e-12) << MetaPruningName(pruning);
  }
}

TEST(IntegrationTest, ScalabilityPrefixesPreserveQualityShape) {
  data::VoterGeneratorConfig config;
  config.num_records = 3000;
  config.seed = 90;
  Dataset full = GenerateVoterLike(config);
  Domain domain = core::MakeVoterDomain();
  SemanticParams sp;
  sp.w = 9;
  sp.mode = SemanticMode::kOr;

  for (size_t n : {1000u, 2000u, 3000u}) {
    Dataset subset = full.Prefix(n);
    eval::Metrics m =
        eval::RunTechnique(
            SemanticAwareLshBlocker(VoterLsh(), sp, domain.semantics),
            subset)
            .metrics;
    EXPECT_GT(m.pc, 0.5) << n;
    EXPECT_GT(m.rr, 0.9) << n;
  }
}

}  // namespace
}  // namespace sablock
