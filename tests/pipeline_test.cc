// Tests for the streaming block-pipeline subsystem: the stage registry,
// the pipeline spec grammar, the built-in stages (purge / filter / cap /
// meta), flush semantics at chain boundaries, and the sharded engine
// feeding one global stage chain (the TSan target for concurrent
// producers into a pipeline).

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <string>
#include <vector>

#include "api/pipeline_spec.h"
#include "core/blocking.h"
#include "data/cora_generator.h"
#include "engine/sharded_executor.h"
#include "eval/harness.h"
#include "pipeline/pipeline.h"
#include "pipeline/stage_registry.h"
#include "pipeline/stages.h"

namespace sablock::pipeline {
namespace {

using core::Block;
using core::BlockCollection;

std::unique_ptr<PipelineStage> CreateStageOk(const std::string& spec) {
  std::unique_ptr<PipelineStage> stage;
  Status status = StageRegistry::Global().Create(spec, &stage);
  EXPECT_TRUE(status.ok()) << spec << ": " << status.message();
  return stage;
}

Status CreateStageErr(const std::string& spec) {
  std::unique_ptr<PipelineStage> stage;
  Status status = StageRegistry::Global().Create(spec, &stage);
  EXPECT_FALSE(status.ok()) << spec << " unexpectedly succeeded";
  EXPECT_EQ(stage, nullptr);
  return status;
}

/// Feeds `input` through a freshly attached `stage` into a collection
/// and flushes.
BlockCollection RunStage(PipelineStage& stage, std::vector<Block> input,
                         const data::Dataset& dataset) {
  BlockCollection out;
  stage.Attach(dataset, out);
  for (Block& b : input) {
    if (stage.Done()) break;
    stage.Consume(std::move(b));
  }
  stage.Flush();
  return out;
}

data::Dataset TinyDataset(size_t records = 8) {
  data::Dataset d{data::Schema({"name"})};
  for (size_t i = 0; i < records; ++i) {
    d.Add({{"r" + std::to_string(i)}}, static_cast<data::EntityId>(i));
  }
  return d;
}

data::Dataset SmallCora() {
  data::CoraGeneratorConfig config;
  config.num_records = 200;
  config.num_entities = 25;
  return data::GenerateCoraLike(config);
}

// ---------------------------------------------------------------- registry

TEST(StageRegistryTest, ListsBuiltinStagesWithParamDocs) {
  std::vector<StageInfo> infos = StageRegistry::Global().List();
  std::vector<std::string> names;
  for (const StageInfo& info : infos) {
    names.push_back(info.name);
    EXPECT_FALSE(info.summary.empty()) << info.name;
    EXPECT_FALSE(info.params.empty()) << info.name;
    for (const api::ParamDoc& param : info.params) {
      EXPECT_FALSE(param.help.empty()) << info.name << "." << param.name;
    }
  }
  EXPECT_EQ(names, (std::vector<std::string>{"cap", "filter", "meta",
                                             "progressive",
                                             "purge"}));  // sorted
  EXPECT_TRUE(StageRegistry::Global().Contains("PURGE"));  // any case
  EXPECT_TRUE(StageRegistry::Global().Contains("block-purging"));  // alias
  EXPECT_FALSE(StageRegistry::Global().Contains("nope"));
}

TEST(StageRegistryTest, CreateAndErrors) {
  EXPECT_EQ(CreateStageOk("purge:max_size=10")->name(),
            "purge(max_size=10)");
  EXPECT_EQ(CreateStageOk("meta:weight=ejs,prune=cnp")->name(),
            "meta(CNP+EJS)");
  EXPECT_EQ(CreateStageOk("cap")->spec_name(), "cap");  // defaults apply

  EXPECT_NE(CreateStageErr("warp").message().find("unknown stage"),
            std::string::npos);
  // Unknown key, bad enum value, out-of-range value, duplicate key.
  CreateStageErr("purge:max_block=10");
  CreateStageErr("meta:weight=bogus");
  CreateStageErr("filter:top_frac=1.5");
  EXPECT_NE(CreateStageErr("purge:max_size=1,max_size=2")
                .message()
                .find("more than once"),
            std::string::npos);
}

// ------------------------------------------------------------ spec grammar

TEST(PipelineSpecTest, ParsesBlockerAndStages) {
  api::PipelineSpec spec;
  ASSERT_TRUE(api::PipelineSpec::Parse(
                  "token-blocking:attrs=a+b | purge:max_size=500 | "
                  "meta:weight=cbs,prune=wep",
                  &spec)
                  .ok());
  EXPECT_EQ(spec.blocker.name, "token-blocking");
  ASSERT_EQ(spec.stages.size(), 2u);
  EXPECT_EQ(spec.stages[0].name, "purge");
  EXPECT_EQ(spec.stages[1].name, "meta");
  EXPECT_EQ(spec.stages[1].params.GetString("weight", ""), "cbs");
}

TEST(PipelineSpecTest, BareBlockerIsZeroStagePipeline) {
  api::PipelineSpec spec;
  ASSERT_TRUE(api::PipelineSpec::Parse("tblo:attrs=a", &spec).ok());
  EXPECT_EQ(spec.blocker.name, "tblo");
  EXPECT_TRUE(spec.stages.empty());
}

TEST(PipelineSpecTest, RejectsMalformedSpecs) {
  api::PipelineSpec spec;
  EXPECT_FALSE(api::PipelineSpec::Parse("", &spec).ok());
  EXPECT_FALSE(api::PipelineSpec::Parse("tblo | | purge", &spec).ok());
  EXPECT_FALSE(api::PipelineSpec::Parse("tblo |", &spec).ok());
  EXPECT_FALSE(api::PipelineSpec::Parse("| purge", &spec).ok());
  EXPECT_FALSE(api::PipelineSpec::Parse("tblo | purge:max_size", &spec).ok());
}

TEST(PipelineBuildTest, UnknownNamesFailWithContext) {
  std::unique_ptr<PipelinedBlocker> p;
  EXPECT_NE(Build("warp-drive:attrs=a | purge", &p).message().find(
                "unknown technique"),
            std::string::npos);
  EXPECT_NE(
      Build("tblo:attrs=a | warp", &p).message().find("unknown stage"),
      std::string::npos);
  EXPECT_EQ(p, nullptr);
}

TEST(PipelineBuildTest, NameComposesBlockerAndStages) {
  std::unique_ptr<PipelinedBlocker> p;
  ASSERT_TRUE(
      Build("tblo:attrs=name | purge:max_size=9 | cap:budget=5", &p).ok());
  EXPECT_EQ(p->name(), "TBlo | purge(max_size=9) | cap(budget=5)");
}

// ----------------------------------------------------------------- stages

TEST(PurgeStageTest, DropsOversizedBlocks) {
  data::Dataset d = TinyDataset();
  PurgeStage purge(3);
  BlockCollection out =
      RunStage(purge, {{0, 1}, {0, 1, 2, 3}, {4, 5, 6}}, d);
  ASSERT_EQ(out.NumBlocks(), 2u);
  EXPECT_EQ(out.blocks()[0], (Block{0, 1}));
  EXPECT_EQ(out.blocks()[1], (Block{4, 5, 6}));
  EXPECT_EQ(purge.purged_blocks(), 1u);
}

TEST(FilterStageTest, MinSizeStreams) {
  data::Dataset d = TinyDataset();
  FilterStage filter(3, 1.0);
  EXPECT_EQ(filter.kind(), PipelineStage::Kind::kStreaming);
  BlockCollection out =
      RunStage(filter, {{0, 1}, {0, 1, 2}, {3, 4}, {4, 5, 6, 7}}, d);
  ASSERT_EQ(out.NumBlocks(), 2u);
  EXPECT_EQ(out.blocks()[0], (Block{0, 1, 2}));
  EXPECT_EQ(out.blocks()[1], (Block{4, 5, 6, 7}));
}

TEST(FilterStageTest, TopFracKeepsSmallestInArrivalOrder) {
  data::Dataset d = TinyDataset();
  FilterStage filter(2, 0.5);
  EXPECT_EQ(filter.kind(), PipelineStage::Kind::kBarrier);
  // 4 blocks, keep floor(0.5*4) = 2 smallest; the two pairs win over the
  // triple and quad, in arrival order.
  BlockCollection out =
      RunStage(filter, {{0, 1, 2}, {3, 4}, {0, 1, 2, 3}, {5, 6}}, d);
  ASSERT_EQ(out.NumBlocks(), 2u);
  EXPECT_EQ(out.blocks()[0], (Block{3, 4}));
  EXPECT_EQ(out.blocks()[1], (Block{5, 6}));
}

TEST(FilterStageTest, TopFracTieBreaksFirstCome) {
  data::Dataset d = TinyDataset();
  FilterStage filter(2, 0.5);
  // All same size: keep the first floor(0.5*4) = 2 arrivals.
  BlockCollection out =
      RunStage(filter, {{4, 5}, {0, 1}, {2, 3}, {6, 7}}, d);
  ASSERT_EQ(out.NumBlocks(), 2u);
  EXPECT_EQ(out.blocks()[0], (Block{4, 5}));
  EXPECT_EQ(out.blocks()[1], (Block{0, 1}));
}

TEST(CapStageTest, StopsProducerAtBudget) {
  data::Dataset d = TinyDataset();
  BlockCollection out;
  CapStage cap(4);  // pairs carry 1 comparison, triples 3
  cap.Attach(d, out);
  EXPECT_FALSE(cap.Done());
  cap.Consume({0, 1, 2});  // 3 comparisons
  EXPECT_FALSE(cap.Done());
  cap.Consume({3, 4});  // crosses the budget; still forwarded
  EXPECT_TRUE(cap.Done());
  cap.Consume({5, 6});  // dropped
  cap.Flush();
  EXPECT_EQ(out.NumBlocks(), 2u);
  EXPECT_EQ(cap.comparisons(), 4u);
  EXPECT_EQ(cap.dropped_blocks(), 1u);
}

TEST(MetaStageTest, BuffersUntilFlushAndIgnoresDownstreamDone) {
  data::Dataset d = TinyDataset(4);
  BlockCollection out;
  MetaStage meta(MetaWeighting::kCbs, MetaPruning::kWep);
  meta.Attach(d, out);
  // Records 0-1 share two blocks, 2-3 one: WEP keeps the 0-1 edge.
  meta.Consume({0, 1});
  meta.Consume({0, 1, 2, 3});
  EXPECT_FALSE(meta.Done());  // barrier: never propagates backpressure up
  EXPECT_EQ(out.NumBlocks(), 0u);  // nothing emitted before the flush
  meta.Flush();
  EXPECT_GE(out.NumBlocks(), 1u);
  EXPECT_TRUE(out.InSameBlock(0, 1));
  EXPECT_FALSE(out.InSameBlock(1, 2));
}

// ------------------------------------------------ chains, flush semantics

TEST(PipelineTest, RunFlushesBarrierStagesButNotTheCallerSink) {
  // A sink that records whether its Flush was ever invoked.
  class FlushProbe : public core::BlockSink {
   public:
    void Consume(Block block) override { blocks.Consume(std::move(block)); }
    void Flush() override { flushed = true; }
    BlockCollection blocks;
    bool flushed = false;
  };

  data::Dataset d = SmallCora();
  std::unique_ptr<PipelinedBlocker> p;
  ASSERT_TRUE(Build("token-blocking:attrs=authors+title | "
                    "purge:max_size=100 | meta:weight=cbs,prune=wep",
                    &p)
                  .ok());
  FlushProbe probe;
  p->Run(d, probe);
  // The barrier stage fired (blocks arrived), yet the flush stopped at
  // the chain boundary — a technique never flushes its caller's sink.
  EXPECT_GT(probe.blocks.NumBlocks(), 0u);
  EXPECT_FALSE(probe.flushed);
}

TEST(PipelineTest, PipelinedBlockerIsReusableAndConcurrencySafe) {
  // Clone-per-run: two Run() calls on one const pipeline must not share
  // barrier buffers.
  data::Dataset d = SmallCora();
  std::unique_ptr<PipelinedBlocker> p;
  ASSERT_TRUE(Build("token-blocking:attrs=authors+title | "
                    "purge:max_size=100 | meta:weight=cbs,prune=wep",
                    &p)
                  .ok());
  BlockCollection first;
  BlockCollection second;
  p->Run(d, first);
  p->Run(d, second);
  EXPECT_EQ(first.blocks(), second.blocks());
}

TEST(PipelineTest, CapBackpressureReachesTheProducerThroughTheChain) {
  data::Dataset d = SmallCora();
  std::unique_ptr<PipelinedBlocker> p;
  ASSERT_TRUE(
      Build("token-blocking:attrs=authors+title | cap:budget=50", &p).ok());
  BlockCollection capped;
  p->Run(d, capped);
  // The producer stopped early: well under the uncapped comparison count,
  // over by at most one block.
  BlockCollection uncapped;
  std::unique_ptr<PipelinedBlocker> plain;
  ASSERT_TRUE(Build("token-blocking:attrs=authors+title", &plain).ok());
  plain->Run(d, uncapped);
  EXPECT_LT(capped.TotalComparisons(), uncapped.TotalComparisons());
  EXPECT_GE(capped.TotalComparisons(), 50u);
}

// --------------------------------------------------- eval instrumentation

TEST(RunPipelineTest, ReportsPerStageCounts) {
  data::Dataset d = SmallCora();
  std::unique_ptr<PipelinedBlocker> p;
  ASSERT_TRUE(Build("token-blocking:attrs=authors+title | "
                    "purge:max_size=50 | meta:weight=cbs,prune=wep",
                    &p)
                  .ok());
  eval::PipelineResult result =
      eval::RunPipeline(p->blocker(), p->stages(), d);
  ASSERT_EQ(result.stages.size(), 3u);
  EXPECT_EQ(result.stages[0].name, "TokenBlocking");
  EXPECT_EQ(result.stages[1].name, "purge(max_size=50)");
  EXPECT_EQ(result.stages[2].name, "meta(WEP+CBS)");
  // Purging never adds blocks; its output max obeys the bound.
  EXPECT_LE(result.stages[1].blocks, result.stages[0].blocks);
  EXPECT_LE(result.stages[1].max_block_size, 50u);
  // Meta emits pair blocks; the final collection is what stage 2 emitted.
  EXPECT_EQ(result.stages[2].max_block_size, 2u);
  EXPECT_EQ(result.blocks.NumBlocks(), result.stages[2].blocks);
  EXPECT_EQ(result.metrics.distinct_pairs,
            result.blocks.DistinctPairs().size());
  // The run is byte-identical to the uninstrumented pipeline.
  BlockCollection direct;
  p->Run(d, direct);
  EXPECT_EQ(direct.blocks(), result.blocks.blocks());
}

// ------------------------------------------- sharded engine into pipeline

/// Canonical multiset fingerprint (stream mode reorders blocks).
std::vector<Block> Canonical(const BlockCollection& c) {
  std::vector<Block> blocks = c.blocks();
  std::sort(blocks.begin(), blocks.end());
  return blocks;
}

TEST(PipelineShardedTest, GlobalStagesCollectIsDeterministicAcrossThreads) {
  data::CoraGeneratorConfig config;
  config.num_records = 240;
  config.num_entities = 30;
  data::Dataset d = data::GenerateCoraLike(config);
  std::unique_ptr<PipelinedBlocker> p;
  ASSERT_TRUE(Build("token-blocking:attrs=authors+title | "
                    "purge:max_size=80 | meta:weight=js,prune=wnp",
                    &p)
                  .ok());
  auto run = [&](const char* spec_text) {
    engine::ExecutionSpec spec;
    EXPECT_TRUE(engine::ExecutionSpec::Parse(spec_text, &spec).ok());
    BlockCollection out;
    engine::ShardedExecutor(spec).ExecutePipeline(p->blocker(), p->stages(),
                                                  d, out);
    return out;
  };
  BlockCollection one = run("threads=1,shards=4,merge=collect");
  BlockCollection four = run("threads=4,shards=4,merge=collect");
  // collect: byte-identical at any thread count.
  EXPECT_EQ(one.blocks(), four.blocks());
  // stream: same multiset of pruned pairs, order scheduling-dependent —
  // the barrier stage ran once, at merge, over the full cross-shard
  // stream (this is the TSan target for concurrent producers feeding
  // one pipeline chain).
  BlockCollection streamed = run("threads=4,shards=4,merge=stream");
  EXPECT_EQ(Canonical(streamed), Canonical(one));
}

TEST(PipelineShardedTest, PerShardPipelineMatchesEngineRunOfWrappedBlocker) {
  // Running the PipelinedBlocker *as a technique* applies the whole
  // pipeline inside every shard — one meta graph per shard.
  data::CoraGeneratorConfig config;
  config.num_records = 240;
  config.num_entities = 30;
  data::Dataset d = data::GenerateCoraLike(config);
  std::unique_ptr<PipelinedBlocker> p;
  ASSERT_TRUE(Build("token-blocking:attrs=authors+title | "
                    "purge:max_size=80 | meta:weight=cbs,prune=cep",
                    &p)
                  .ok());
  engine::ExecutionSpec spec;
  ASSERT_TRUE(
      engine::ExecutionSpec::Parse("threads=2,shards=3", &spec).ok());
  engine::ShardedExecutor executor(spec);
  BlockCollection sharded = executor.ExecuteCollect(*p, d);
  // Reference: run the chain manually per shard range.
  BlockCollection expected;
  for (const engine::ShardRange& range :
       engine::MakeShardRanges(d.size(), 3)) {
    data::Dataset shard = d.Slice(range.begin, range.end);
    BlockCollection local;
    p->Run(shard, local);
    for (const Block& b : local.blocks()) {
      Block global = b;
      for (data::RecordId& id : global) id += range.begin;
      expected.Add(std::move(global));
    }
  }
  EXPECT_EQ(sharded.blocks(), expected.blocks());
}

}  // namespace
}  // namespace sablock::pipeline
