// Tests for the blocker registry: spec parsing, the round trip from every
// registered name to a constructed technique, and error reporting for
// malformed specs.

#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "api/blocker_spec.h"
#include "api/registry.h"

namespace sablock::api {
namespace {

using core::BlockingTechnique;

std::unique_ptr<BlockingTechnique> CreateOk(const std::string& spec) {
  std::unique_ptr<BlockingTechnique> technique;
  Status status = BlockerRegistry::Global().Create(spec, &technique);
  EXPECT_TRUE(status.ok()) << spec << ": " << status.message();
  return technique;
}

Status CreateErr(const std::string& spec) {
  std::unique_ptr<BlockingTechnique> technique;
  Status status = BlockerRegistry::Global().Create(spec, &technique);
  EXPECT_FALSE(status.ok()) << spec << " unexpectedly succeeded";
  EXPECT_EQ(technique, nullptr);
  return status;
}

TEST(BlockerSpecTest, ParsesNameAndParams) {
  BlockerSpec spec;
  ASSERT_TRUE(
      BlockerSpec::Parse("sa-lsh:k=4,l=63,w=2,mode=or", &spec).ok());
  EXPECT_EQ(spec.name, "sa-lsh");
  EXPECT_TRUE(spec.params.Has("k"));
  EXPECT_EQ(spec.params.GetInt("k", 0), 4);
  EXPECT_EQ(spec.params.GetInt("l", 0), 63);
}

TEST(BlockerSpecTest, NameOnlyAndWhitespaceTolerance) {
  BlockerSpec spec;
  ASSERT_TRUE(BlockerSpec::Parse("tblo", &spec).ok());
  EXPECT_EQ(spec.name, "tblo");

  ASSERT_TRUE(BlockerSpec::Parse("  LSH : k = 4 , l = 2 ", &spec).ok());
  EXPECT_EQ(spec.name, "lsh");  // names are lowercased
  EXPECT_EQ(spec.params.GetInt("k", 0), 4);
  EXPECT_EQ(spec.params.GetInt("l", 0), 2);
}

TEST(ParamMapTest, RejectsDuplicateKeysWithClearError) {
  // Silent last-write-wins would make "k=4,k=9" run with k=9 and no
  // warning; the parse must fail and name the offending key instead.
  ParamMap params;
  Status status = ParamMap::Parse("k=4,l=2,k=9", &params);
  EXPECT_FALSE(status.ok());
  EXPECT_NE(status.message().find("'k'"), std::string::npos);
  EXPECT_NE(status.message().find("more than once"), std::string::npos);
  // Same key with the same value is still a duplicate.
  EXPECT_FALSE(ParamMap::Parse("k=4,k=4", &params).ok());
  // Whitespace around the key does not disguise the duplicate.
  EXPECT_FALSE(ParamMap::Parse("k=4, k =9", &params).ok());
}

TEST(BlockerSpecTest, RejectsMalformedSpecs) {
  BlockerSpec spec;
  EXPECT_FALSE(BlockerSpec::Parse("", &spec).ok());
  EXPECT_FALSE(BlockerSpec::Parse(":k=1", &spec).ok());
  EXPECT_FALSE(BlockerSpec::Parse("lsh:k", &spec).ok());
  EXPECT_FALSE(BlockerSpec::Parse("lsh:=4", &spec).ok());
  EXPECT_FALSE(BlockerSpec::Parse("lsh:k=1,k=2", &spec).ok());
}

TEST(RegistryTest, EveryRegisteredNameRoundTrips) {
  const BlockerRegistry& registry = BlockerRegistry::Global();
  std::vector<BlockerInfo> infos = registry.List();
  ASSERT_GE(infos.size(), 18u);
  for (const BlockerInfo& info : infos) {
    // Constructing from the bare name (all defaults; sor-mp needs at least
    // one attribute) must succeed...
    std::string spec = info.name;
    if (info.name == "sor-mp") spec += ":attrs=a+b";
    std::unique_ptr<BlockingTechnique> technique = CreateOk(spec);
    ASSERT_NE(technique, nullptr) << info.name;
    // ...with a non-empty, stable display name.
    std::string display = technique->name();
    EXPECT_FALSE(display.empty()) << info.name;
    EXPECT_EQ(CreateOk(spec)->name(), display) << info.name;
    // Aliases resolve to the same factory.
    for (const std::string& alias : info.aliases) {
      EXPECT_TRUE(registry.Contains(alias)) << alias;
      std::string alias_spec = alias;
      if (info.name == "sor-mp") alias_spec += ":attrs=a+b";
      EXPECT_EQ(CreateOk(alias_spec)->name(), display) << alias;
    }
  }
}

TEST(RegistryTest, NamesAreCaseInsensitive) {
  EXPECT_EQ(CreateOk("TBLO")->name(), CreateOk("tblo")->name());
  EXPECT_TRUE(BlockerRegistry::Global().Contains("SA-LSH"));

  // A programmatically built spec (bypassing Parse's lowercasing) must
  // resolve too.
  BlockerSpec spec;
  spec.name = "SA-LSH";
  std::unique_ptr<BlockingTechnique> technique;
  EXPECT_TRUE(
      BlockerRegistry::Global().Create(std::move(spec), &technique).ok());
  ASSERT_NE(technique, nullptr);
}

TEST(RegistryTest, UnknownTechniqueListsKnownNames) {
  Status status = CreateErr("definitely-not-a-blocker");
  EXPECT_NE(status.message().find("unknown technique"), std::string::npos)
      << status.message();
  EXPECT_NE(status.message().find("sa-lsh"), std::string::npos)
      << "error should list the known names: " << status.message();
}

TEST(RegistryTest, TypeErrorsNameTheParamAndValue) {
  Status status = CreateErr("sa-lsh:k=banana");
  EXPECT_NE(status.message().find("'k'"), std::string::npos)
      << status.message();
  EXPECT_NE(status.message().find("banana"), std::string::npos)
      << status.message();

  status = CreateErr("cath:loose=warm");
  EXPECT_NE(status.message().find("'loose'"), std::string::npos)
      << status.message();
}

TEST(RegistryTest, UnknownKeysAreReported) {
  Status status = CreateErr("lsh:k=4,bogus=1");
  EXPECT_NE(status.message().find("bogus"), std::string::npos)
      << status.message();
}

TEST(RegistryTest, LayeredDefaultsAreExemptFromUnknownKeyErrors) {
  // The CLI folds legacy flags under the spec with SetIfAbsent; a
  // technique that does not consume such a key must still construct
  // (tblo has no 'k'), while a literal spec key stays strict.
  BlockerSpec spec;
  ASSERT_TRUE(BlockerSpec::Parse("tblo:attrs=name", &spec).ok());
  spec.params.SetIfAbsent("k", "4");
  std::unique_ptr<BlockingTechnique> technique;
  Status status =
      BlockerRegistry::Global().Create(std::move(spec), &technique);
  EXPECT_TRUE(status.ok()) << status.message();
  CreateErr("tblo:attrs=name,k=4");
}

TEST(RegistryTest, IntParamsRejectOutOfRangeValues) {
  Status status = CreateErr("lsh:l=4294967297");  // 2^32 + 1
  EXPECT_NE(status.message().find("'l'"), std::string::npos)
      << status.message();
}

TEST(RegistryTest, EnumParamsRejectBadSpellings) {
  Status status = CreateErr("sa-lsh:mode=xor");
  EXPECT_NE(status.message().find("'mode'"), std::string::npos)
      << status.message();
  EXPECT_NE(status.message().find("or|and"), std::string::npos)
      << status.message();
  CreateErr("cath:sim=cosine");
  CreateErr("asor:sim=nope");
}

TEST(RegistryTest, RangeErrorsAreDescriptive) {
  EXPECT_NE(CreateErr("sor-a:window=1").message().find("window"),
            std::string::npos);
  EXPECT_NE(CreateErr("qgram:threshold=1.5").message().find("threshold"),
            std::string::npos);
  EXPECT_NE(CreateErr("cann:n1=2,n2=5").message().find("n2"),
            std::string::npos);
  EXPECT_NE(CreateErr("harra:iterations=0").message().find("iterations"),
            std::string::npos);
}

TEST(RegistryTest, SpecParamsDriveTheTechnique) {
  EXPECT_EQ(CreateOk("lsh:k=9,l=15")->name(), "LSH(k=9,l=15)");
  EXPECT_EQ(CreateOk("sor-a:window=7")->name(), "SorA(w=7)");
  EXPECT_EQ(CreateOk("sa-lsh:k=4,l=63,w=2,mode=and")->name(),
            "SA-LSH(k=4,l=63,w=2,AND)");
}

TEST(RegistryTest, SaLshDefaultsAttrsFromDomain) {
  // The paper's blocking attributes come with the domain; an sa-lsh spec
  // without attrs= must still construct and run.
  std::unique_ptr<BlockingTechnique> technique =
      CreateOk("sa-lsh:domain=voter,w=12");
  ASSERT_NE(technique, nullptr);
  EXPECT_NE(technique->name().find("SA-LSH"), std::string::npos);
}

}  // namespace
}  // namespace sablock::api
