// Tests for semantic functions: the Table 1 missing-value patterns
// (bibliographic domain), the voter gender/race rules, fallback handling
// for taxonomy variants, and the Specificity property of Definition 4.2.

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "core/domains.h"
#include "core/semantic.h"

namespace sablock::core {
namespace {

using data::Dataset;
using data::Record;
using data::Schema;

// Builds a bibliographic record with the given presence pattern.
Dataset BibDataset() {
  Dataset d{Schema({"title", "authors", "journal", "booktitle",
                    "institution", "publisher", "year"})};
  auto add = [&d](const char* journal, const char* booktitle,
                  const char* institution) {
    Record r;
    r.values = {"a title", "an author", journal, booktitle, institution,
                "", "1995"};
    d.Add(std::move(r));
  };
  add("J", "B", "I");  // pattern 1
  add("J", "B", "");   // pattern 2
  add("J", "", "I");   // pattern 3
  add("J", "", "");    // pattern 4
  add("", "B", "I");   // pattern 5
  add("", "B", "");    // pattern 6
  add("", "", "I");    // pattern 7
  add("", "", "");     // pattern 8
  return d;
}

std::vector<std::string> Names(const Taxonomy& t,
                               const std::vector<ConceptId>& ids) {
  std::vector<std::string> names;
  for (ConceptId c : ids) names.push_back(t.name(c));
  std::sort(names.begin(), names.end());
  return names;
}

TEST(BibliographicDomainTest, Table1PatternsMapToConcepts) {
  Domain domain = MakeBibliographicDomain();
  Dataset d = BibDataset();
  const Taxonomy& t = domain.taxonomy();

  using V = std::vector<std::string>;
  EXPECT_EQ(Names(t, domain.semantics->Interpret(d, 0)),
            (V{"C3", "C4", "C6"}));
  EXPECT_EQ(Names(t, domain.semantics->Interpret(d, 1)), (V{"C3", "C4"}));
  EXPECT_EQ(Names(t, domain.semantics->Interpret(d, 2)), (V{"C3", "C6"}));
  EXPECT_EQ(Names(t, domain.semantics->Interpret(d, 3)), (V{"C3"}));
  EXPECT_EQ(Names(t, domain.semantics->Interpret(d, 4)),
            (V{"C4", "C7", "C8"}));
  EXPECT_EQ(Names(t, domain.semantics->Interpret(d, 5)), (V{"C4"}));
  EXPECT_EQ(Names(t, domain.semantics->Interpret(d, 6)), (V{"C7", "C8"}));
  EXPECT_EQ(Names(t, domain.semantics->Interpret(d, 7)), (V{"C1"}));
}

TEST(BibliographicDomainTest, PatternsAreCompleteOverAllRecords) {
  // Every record matches exactly one pattern (the 8 patterns partition the
  // presence combinations), so no interpretation is empty.
  Domain domain = MakeBibliographicDomain();
  Dataset d = BibDataset();
  for (data::RecordId id = 0; id < d.size(); ++id) {
    EXPECT_FALSE(domain.semantics->Interpret(d, id).empty()) << id;
  }
}

TEST(BibliographicDomainTest, NoJournalVariantFallsBackToParent) {
  // In t_(bib,3) the Journal concept C3 is missing; pattern-4 records fall
  // back to its parent C2 (Section 6.3.3 behaviour).
  Domain domain = MakeBibliographicDomain(BibVariant::kNoJournal);
  Dataset d = BibDataset();
  const Taxonomy& t = domain.taxonomy();
  EXPECT_EQ(Names(t, domain.semantics->Interpret(d, 3)),
            (std::vector<std::string>{"C2"}));
  // Pattern 2 {C3, C4}: C3 -> C2 which subsumes C4; Specificity keeps C4.
  EXPECT_EQ(Names(t, domain.semantics->Interpret(d, 1)),
            (std::vector<std::string>{"C4"}));
}

TEST(BibliographicDomainTest, NoReviewLevelVariantResolvesC6) {
  // In t_(bib,1) C6 is missing; pattern-1 records {C3, C4, C6} resolve C6
  // to its parent C1, which subsumes C3/C4 — Specificity keeps {C3, C4}.
  Domain domain = MakeBibliographicDomain(BibVariant::kNoReviewLevel);
  Dataset d = BibDataset();
  const Taxonomy& t = domain.taxonomy();
  EXPECT_EQ(Names(t, domain.semantics->Interpret(d, 0)),
            (std::vector<std::string>{"C3", "C4"}));
}

TEST(RuleSemanticFunctionTest, SpecificityPrunesAncestors) {
  Taxonomy t = MakeBibliographicTaxonomy();
  std::vector<SemanticRule> rules = {
      {{}, {"C0", "C3"}},  // deliberately includes an ancestor
  };
  RuleSemanticFunction fn(std::move(t), std::move(rules));
  Dataset d{Schema({"x"})};
  d.Add({{"v"}});
  std::vector<ConceptId> zeta = fn.Interpret(d, 0);
  ASSERT_EQ(zeta.size(), 1u);
  EXPECT_EQ(fn.taxonomy().name(zeta[0]), "C3");
}

TEST(RuleSemanticFunctionTest, FirstMatchWins) {
  Taxonomy t = MakeBibliographicTaxonomy();
  std::vector<SemanticRule> rules = {
      {{AttributePredicate::Equals("x", "a")}, {"C3"}},
      {{}, {"C9"}},  // catch-all
  };
  RuleSemanticFunction fn(std::move(t), std::move(rules));
  Dataset d{Schema({"x"})};
  d.Add({{"a"}});
  d.Add({{"b"}});
  EXPECT_EQ(fn.taxonomy().name(fn.Interpret(d, 0)[0]), "C3");
  EXPECT_EQ(fn.taxonomy().name(fn.Interpret(d, 1)[0]), "C9");
}

TEST(RuleSemanticFunctionTest, AccumulateMatchesUnionsConcepts) {
  Taxonomy t = MakeBibliographicTaxonomy();
  std::vector<SemanticRule> rules = {
      {{AttributePredicate::Present("x")}, {"C3"}},
      {{AttributePredicate::Present("y")}, {"C9"}},
  };
  RuleSemanticFunction fn(std::move(t), std::move(rules), {},
                          /*accumulate_matches=*/true);
  Dataset d{Schema({"x", "y"})};
  d.Add({{"v", "w"}});
  std::vector<ConceptId> zeta = fn.Interpret(d, 0);
  EXPECT_EQ(zeta.size(), 2u);
}

TEST(RuleSemanticFunctionTest, NoMatchingRuleYieldsEmpty) {
  Taxonomy t = MakeBibliographicTaxonomy();
  std::vector<SemanticRule> rules = {
      {{AttributePredicate::Equals("x", "never")}, {"C3"}},
  };
  RuleSemanticFunction fn(std::move(t), std::move(rules));
  Dataset d{Schema({"x"})};
  d.Add({{"other"}});
  EXPECT_TRUE(fn.Interpret(d, 0).empty());
}

TEST(RuleSemanticFunctionTest, UnknownConceptWithoutFallbackIsDropped) {
  Taxonomy t = MakeBibliographicTaxonomyNoBook();
  std::vector<SemanticRule> rules = {
      {{}, {"C5", "C4"}},  // C5 absent, no fallback map
  };
  RuleSemanticFunction fn(std::move(t), std::move(rules));
  Dataset d{Schema({"x"})};
  d.Add({{"v"}});
  std::vector<ConceptId> zeta = fn.Interpret(d, 0);
  ASSERT_EQ(zeta.size(), 1u);
  EXPECT_EQ(fn.taxonomy().name(zeta[0]), "C4");
}

Dataset VoterDataset() {
  Dataset d{Schema({"first_name", "last_name", "gender", "race", "city",
                    "street", "age"})};
  auto add = [&d](const char* gender, const char* race) {
    Record r;
    r.values = {"ann", "li", gender, race, "cary", "1 oak st", "40"};
    d.Add(std::move(r));
  };
  add("f", "w");  // 0: fully known
  add("m", "u");  // 1: race uncertain
  add("u", "b");  // 2: gender uncertain
  add("u", "u");  // 3: fully uncertain
  add("f", "");   // 4: race missing
  return d;
}

TEST(VoterDomainTest, TwelveLeafConcepts) {
  Domain domain = MakeVoterDomain();
  EXPECT_EQ(domain.taxonomy().TotalLeaves(), 12u);
  EXPECT_EQ(domain.blocking_attributes,
            (std::vector<std::string>{"first_name", "last_name"}));
}

TEST(VoterDomainTest, InterpretationsByUncertainty) {
  Domain domain = MakeVoterDomain();
  Dataset d = VoterDataset();
  const Taxonomy& t = domain.taxonomy();

  using V = std::vector<std::string>;
  EXPECT_EQ(Names(t, domain.semantics->Interpret(d, 0)), (V{"female_w"}));
  EXPECT_EQ(Names(t, domain.semantics->Interpret(d, 1)), (V{"male"}));
  EXPECT_EQ(Names(t, domain.semantics->Interpret(d, 2)),
            (V{"female_b", "male_b"}));
  EXPECT_EQ(Names(t, domain.semantics->Interpret(d, 3)), (V{"person"}));
  EXPECT_EQ(Names(t, domain.semantics->Interpret(d, 4)), (V{"female"}));
}

TEST(VoterDomainTest, SemanticSimilarityReflectsAgreement) {
  Domain domain = MakeVoterDomain();
  Dataset d = VoterDataset();
  const Taxonomy& t = domain.taxonomy();
  auto z = [&](data::RecordId id) {
    return domain.semantics->Interpret(d, id);
  };
  // female_w vs male (disjoint branches): 0.
  EXPECT_DOUBLE_EQ(t.RecordSimilarity(z(0), z(1)), 0.0);
  // female_w vs female: contained -> positive.
  EXPECT_GT(t.RecordSimilarity(z(0), z(4)), 0.0);
  // fully uncertain (root) relates to everything.
  EXPECT_GT(t.RecordSimilarity(z(0), z(3)), 0.0);
  EXPECT_GT(t.RecordSimilarity(z(1), z(3)), 0.0);
}

TEST(LambdaSemanticFunctionTest, WrapsCallableAndPrunes) {
  Taxonomy t = MakeBibliographicTaxonomy();
  ConceptId c0 = t.Require("C0");
  ConceptId c3 = t.Require("C3");
  LambdaSemanticFunction fn(
      t, [c0, c3](const Dataset&, data::RecordId) {
        return std::vector<ConceptId>{c0, c3};
      });
  Dataset d{Schema({"x"})};
  d.Add({{"v"}});
  std::vector<ConceptId> zeta = fn.Interpret(d, 0);
  ASSERT_EQ(zeta.size(), 1u);
  EXPECT_EQ(zeta[0], c3);
}

TEST(SemanticFunctionTest, InterpretAllCoversDataset) {
  Domain domain = MakeBibliographicDomain();
  Dataset d = BibDataset();
  auto all = domain.semantics->InterpretAll(d);
  EXPECT_EQ(all.size(), d.size());
}

}  // namespace
}  // namespace sablock::core
