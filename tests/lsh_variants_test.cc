// Tests for the related-work LSH variants: multi-probe LSH and LSH forest
// (Section 2 / DESIGN.md extension E13).

#include <gtest/gtest.h>

#include "run_streaming.h"

#include "core/lsh_variants.h"
#include "core/minhash.h"
#include "data/cora_generator.h"
#include "eval/metrics.h"

namespace sablock::core {
namespace {

using data::Dataset;
using data::Schema;

Dataset SmallTextDataset() {
  Dataset d{Schema({"text"})};
  d.Add({{"the cascade correlation learning architecture"}}, 0);
  d.Add({{"the cascade correlation learning architecture"}}, 0);
  d.Add({{"the cascade corelation learning architecture"}}, 0);
  d.Add({{"support vector machines for text classification"}}, 1);
  d.Add({{"support vector machine for text classification"}}, 1);
  d.Add({{"completely unrelated gibberish record xyzzy"}}, 2);
  return d;
}

LshParams SmallParams() {
  LshParams p;
  p.k = 3;
  p.l = 4;
  p.q = 3;
  p.attributes = {"text"};
  p.seed = 5;
  return p;
}

TEST(Top2SignaturesTest, SecondMinIsDistinctAndLarger) {
  Dataset d = SmallTextDataset();
  std::vector<std::vector<uint64_t>> min1;
  std::vector<std::vector<uint64_t>> min2;
  ComputeTop2MinhashSignatures(d, SmallParams(), &min1, &min2);
  ASSERT_EQ(min1.size(), d.size());
  for (data::RecordId id = 0; id < d.size(); ++id) {
    for (size_t i = 0; i < min1[id].size(); ++i) {
      EXPECT_LT(min1[id][i], MinHasher::kEmptySlot);
      if (min2[id][i] != MinHasher::kEmptySlot) {
        EXPECT_LT(min1[id][i], min2[id][i]);
      }
    }
  }
}

TEST(Top2SignaturesTest, Min1MatchesPlainSignature) {
  Dataset d = SmallTextDataset();
  LshParams p = SmallParams();
  std::vector<std::vector<uint64_t>> min1;
  std::vector<std::vector<uint64_t>> min2;
  ComputeTop2MinhashSignatures(d, p, &min1, &min2);
  std::vector<std::vector<uint64_t>> plain =
      ComputeMinhashSignatures(d, p);
  for (data::RecordId id = 0; id < d.size(); ++id) {
    EXPECT_EQ(min1[id], plain[id]) << id;
  }
}

TEST(MultiProbeLshTest, ZeroProbesEqualsPlainLsh) {
  Dataset d = SmallTextDataset();
  LshParams p = SmallParams();
  PairSet plain = RunStreaming(LshBlocker(p), d).DistinctPairs();
  PairSet mp = RunStreaming(MultiProbeLshBlocker(p, 0), d).DistinctPairs();
  EXPECT_EQ(plain.size(), mp.size());
  mp.ForEach([&plain](uint32_t a, uint32_t b) {
    EXPECT_TRUE(plain.Contains(a, b));
  });
}

TEST(MultiProbeLshTest, ProbingOnlyAddsCandidates) {
  Dataset d = SmallTextDataset();
  LshParams p = SmallParams();
  size_t prev = RunStreaming(LshBlocker(p), d).DistinctPairs().size();
  for (int probes : {1, 2, 3}) {
    PairSet pairs = RunStreaming(MultiProbeLshBlocker(p, probes), d).DistinctPairs();
    EXPECT_GE(pairs.size(), prev);
    prev = pairs.size();
  }
}

TEST(MultiProbeLshTest, IdenticalTextAlwaysCoBlocked) {
  Dataset d = SmallTextDataset();
  MultiProbeLshBlocker blocker(SmallParams(), 2);
  EXPECT_TRUE(RunStreaming(blocker, d).InSameBlock(0, 1));
}

TEST(MultiProbeLshTest, RecallWithFewerTablesApproachesPlainLsh) {
  // The variant's selling point: l/2 tables + probes ≈ recall of l tables.
  data::CoraGeneratorConfig config;
  config.num_entities = 30;
  config.num_records = 250;
  config.seed = 77;
  Dataset d = GenerateCoraLike(config);

  LshParams full = SmallParams();
  full.attributes = {"authors", "title"};
  full.k = 3;
  full.l = 16;
  LshParams half = full;
  half.l = 8;

  double pc_full =
      eval::Evaluate(d, RunStreaming(LshBlocker(full), d)).pc;
  double pc_half =
      eval::Evaluate(d, RunStreaming(LshBlocker(half), d)).pc;
  double pc_half_probed =
      eval::Evaluate(d, RunStreaming(MultiProbeLshBlocker(half, 3), d)).pc;
  EXPECT_GT(pc_half_probed, pc_half);
  EXPECT_GE(pc_half_probed, pc_full - 0.05);
}

TEST(MultiProbeLshTest, NameEncodesParameters) {
  EXPECT_EQ(MultiProbeLshBlocker(SmallParams(), 2).name(),
            "MP-LSH(k=3,l=4,p=2)");
}

TEST(LshForestTest, IdenticalTextAlwaysCoBlocked) {
  Dataset d = SmallTextDataset();
  LshForestBlocker forest(SmallParams(), /*max_depth=*/8,
                          /*max_block_size=*/3);
  EXPECT_TRUE(RunStreaming(forest, d).InSameBlock(0, 1));
}

TEST(LshForestTest, BlocksRespectSizeCapExceptAtMaxDepth) {
  data::CoraGeneratorConfig config;
  config.num_entities = 20;
  config.num_records = 200;
  config.seed = 78;
  Dataset d = GenerateCoraLike(config);
  LshParams p = SmallParams();
  p.attributes = {"authors", "title"};
  const size_t cap = 10;
  LshForestBlocker forest(p, /*max_depth=*/12, cap);
  BlockCollection blocks = RunStreaming(forest, d);
  // Oversized leaves can only occur when the full depth failed to split
  // (identical signatures); they should be rare.
  size_t oversized = 0;
  for (const auto& b : blocks.blocks()) {
    if (b.size() > cap) ++oversized;
  }
  EXPECT_LE(oversized, blocks.NumBlocks() / 5);
  EXPECT_GT(blocks.NumBlocks(), 0u);
}

TEST(LshForestTest, SeparatesDissimilarRecords) {
  Dataset d = SmallTextDataset();
  LshForestBlocker forest(SmallParams(), 8, 3);
  BlockCollection blocks = RunStreaming(forest, d);
  EXPECT_FALSE(blocks.InSameBlock(0, 5));
}

TEST(LshForestTest, SelfTuningFindsClusters) {
  // Near-duplicates should co-block without choosing any k.
  Dataset d = SmallTextDataset();
  LshForestBlocker forest(SmallParams(), 10, 3);
  eval::Metrics m = eval::Evaluate(d, RunStreaming(forest, d));
  EXPECT_GT(m.pc, 0.5);
}

TEST(LshForestTest, DeterministicAcrossRuns) {
  Dataset d = SmallTextDataset();
  LshForestBlocker forest(SmallParams(), 8, 3);
  EXPECT_EQ(RunStreaming(forest, d).TotalComparisons(),
            RunStreaming(forest, d).TotalComparisons());
}

TEST(LshForestTest, NameEncodesParameters) {
  EXPECT_EQ(LshForestBlocker(SmallParams(), 8, 4).name(),
            "LSHForest(l=4,d=8,max=4)");
}

}  // namespace
}  // namespace sablock::core
