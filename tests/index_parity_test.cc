// Index/batch parity goldens: every registered incremental index, after
// one-by-one insertion of a dataset, must reproduce the blocks of the
// batch technique built from the *same spec string* — as a multiset for
// the hash-table indexes, byte-identically (sequence included) for the
// key-ordered ones. This is the equivalence bridge the serving layer
// rests on: a warm index answers exactly the batch technique's blocking.

#include <gtest/gtest.h>

#include <memory>
#include <set>
#include <string>
#include <vector>

#include "api/registry.h"
#include "core/blocking.h"
#include "data/cora_generator.h"
#include "data/voter_generator.h"
#include "index/incremental_index.h"
#include "index/index_registry.h"

namespace sablock::index {
namespace {

data::Dataset CoraDataset(size_t records = 300) {
  data::CoraGeneratorConfig config;
  config.num_records = records;
  config.num_entities = std::max<size_t>(records / 10, 1);
  config.seed = 42;
  return GenerateCoraLike(config);
}

data::Dataset VoterDataset(size_t records = 400) {
  data::VoterGeneratorConfig config;
  config.num_records = records;
  config.seed = 97;
  return GenerateVoterLike(config);
}

core::BlockCollection RunBatch(const std::string& spec,
                               const data::Dataset& dataset) {
  std::unique_ptr<core::BlockingTechnique> technique;
  Status s = api::BlockerRegistry::Global().Create(spec, &technique);
  EXPECT_TRUE(s.ok()) << spec << ": " << s.message();
  core::BlockCollection blocks;
  technique->Run(dataset, blocks);
  return blocks;
}

std::unique_ptr<IncrementalIndex> LoadIndex(const std::string& spec,
                                            const data::Dataset& dataset) {
  std::unique_ptr<IncrementalIndex> index;
  Status s = IndexRegistry::Global().Create(spec, &index);
  EXPECT_TRUE(s.ok()) << spec << ": " << s.message();
  LoadDataset(*index, dataset);
  return index;
}

/// One (spec, dataset) parity case. The spec string drives both
/// registries; `byte_exact` additionally pins the emission sequence.
struct ParityCase {
  std::string spec;
  const data::Dataset* dataset;
  bool byte_exact;
};

std::vector<ParityCase> Cases(const data::Dataset& cora,
                              const data::Dataset& voter) {
  // l is reduced from the paper's operating points to keep the golden
  // fast; parity does not depend on the table count.
  return {
      {"token-blocking:attrs=authors+title", &cora, true},
      {"token-blocking:attrs=first_name+last_name", &voter, true},
      {"sor-a:window=3,attrs=authors+title", &cora, true},
      {"sor-a:window=5,attrs=first_name+last_name", &voter, true},
      {"lsh:k=4,l=12,q=4,attrs=authors+title", &cora, false},
      {"lsh:k=9,l=8,q=2,attrs=first_name+last_name", &voter, false},
      {"sa-lsh:k=4,l=12,q=4,w=5,mode=or,domain=bib", &cora, false},
      {"sa-lsh:k=4,l=12,q=4,w=3,mode=and,domain=bib", &cora, false},
      {"sa-lsh:k=9,l=8,q=2,w=4,mode=or,domain=voter", &voter, false},
  };
}

TEST(IndexParityGolden, CasesCoverEveryRegisteredIndex) {
  data::Dataset cora = CoraDataset(10);
  data::Dataset voter = VoterDataset(10);
  std::set<std::string> covered;
  for (const ParityCase& c : Cases(cora, voter)) {
    covered.insert(c.spec.substr(0, c.spec.find(':')));
  }
  for (const api::BlockerInfo& info : IndexRegistry::Global().List()) {
    EXPECT_TRUE(covered.count(info.name))
        << "registered index '" << info.name
        << "' has no parity case — add one to Cases()";
  }
}

TEST(IndexParityGolden, IncrementalLoadMatchesBatchBlocks) {
  data::Dataset cora = CoraDataset();
  data::Dataset voter = VoterDataset();
  for (const ParityCase& c : Cases(cora, voter)) {
    SCOPED_TRACE(c.spec);
    core::BlockCollection batch = RunBatch(c.spec, *c.dataset);
    std::unique_ptr<IncrementalIndex> index = LoadIndex(c.spec, *c.dataset);
    core::BlockCollection incremental = CollectBlocks(*index);
    EXPECT_EQ(CanonicalBlockBytes(incremental), CanonicalBlockBytes(batch));
    if (c.byte_exact) {
      // Key-ordered indexes pin the full emission sequence, not just the
      // multiset: block order and intra-block id order must match.
      EXPECT_EQ(incremental.blocks(), batch.blocks());
    }
  }
}

TEST(IndexParityGolden, RemovalMatchesFreshSubsetLoad) {
  // Removing records must leave the index indistinguishable from one
  // that only ever saw the surviving records. (sa-lsh is exempt by
  // contract: its semantic feature space never shrinks on Remove.)
  data::Dataset cora = CoraDataset(200);
  const std::vector<std::string> specs = {
      "token-blocking:attrs=authors+title",
      "sor-a:window=3,attrs=authors+title",
      "lsh:k=4,l=12,q=4,attrs=authors+title",
  };
  for (const std::string& spec : specs) {
    SCOPED_TRACE(spec);
    std::unique_ptr<IncrementalIndex> full = LoadIndex(spec, cora);
    std::unique_ptr<IncrementalIndex> subset;
    Status s = IndexRegistry::Global().Create(spec, &subset);
    ASSERT_TRUE(s.ok()) << s.message();
    ASSERT_TRUE(subset->Bind(cora.schema()).ok());
    for (data::RecordId id = 0; id < cora.size(); ++id) {
      if (id % 3 == 0) {
        EXPECT_TRUE(full->Remove(id));
      } else {
        subset->Insert(id, cora.Values(id));
      }
    }
    EXPECT_EQ(full->size(), subset->size());
    EXPECT_EQ(CanonicalBlockBytes(CollectBlocks(*full)),
              CanonicalBlockBytes(CollectBlocks(*subset)));
  }
}

}  // namespace
}  // namespace sablock::index
