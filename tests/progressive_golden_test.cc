// Golden equivalence for progressive blocking: with an unlimited budget,
// appending `| progressive:sched=ew-cbs` to any registered technique must
// re-emit exactly the batch run's distinct candidate pairs — progressive
// blocking reorders comparisons, it never invents or loses any. The spec
// grid below is the same 19-technique registry sweep the snapshot-io
// bench pins, so every blocker family (sorted-neighbourhood, suffix,
// string-map, canopy, meta, LSH variants) is covered.
//
// A second test pins thread-count determinism: at a fixed shard count the
// sharded engine's global stage chain (merge=collect) must produce a
// byte-identical progressive stream regardless of how many threads run
// the shards.

#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "common/pair_set.h"
#include "core/blocking.h"
#include "data/cora_generator.h"
#include "data/record.h"
#include "engine/sharded_executor.h"
#include "pipeline/pipeline.h"

namespace sablock {
namespace {

using core::Block;
using core::BlockCollection;

// Mirrors bench/bench_snapshot_io.cc's registry sweep: one spec per
// registered technique, smallish parameters so the grid stays fast.
const char* const kRegistrySpecs[] = {
    "tblo:attrs=authors+title",
    "sor-a:window=3,attrs=authors+title",
    "sor-ii:window=3,attrs=authors+title",
    "sor-mp:window=3,attrs=authors+title",
    "asor:sim=jaro_winkler,threshold=0.8,max-block=50,attrs=authors+title",
    "qgram:q=2,threshold=0.8,max-keys=64,attrs=title",
    "sua:min-suffix=4,max-block=20,attrs=authors+title",
    "suas:min-suffix=4,max-block=20,attrs=title",
    "rsua:min-suffix=4,max-block=20,sim=jaro_winkler,threshold=0.9,"
    "attrs=authors+title",
    "stmt:threshold=0.9,grid=100,dim=15,seed=73,attrs=authors+title",
    "stmnn:nn=5,grid=100,dim=15,seed=73,attrs=authors+title",
    "cath:sim=jaccard,loose=0.4,tight=0.8,seed=31,attrs=authors+title",
    "cann:sim=tfidf,n1=10,n2=5,seed=31,attrs=authors+title",
    "meta:weighting=cbs,pruning=wep,max-block=500,attrs=authors+title",
    "lsh:k=2,l=8,q=3,seed=7,attrs=authors+title",
    "sa-lsh:k=2,l=8,q=3,seed=7,w=5,mode=or,domain=bib,sem-seed=11,"
    "attrs=authors+title",
    "mp-lsh:k=2,l=8,q=3,seed=7,probes=2,attrs=authors+title",
    "forest:k=2,l=8,q=3,seed=7,depth=10,max-block=25,attrs=authors+title",
    "harra:k=2,l=8,q=3,seed=7,merge-threshold=0.5,iterations=2,"
    "attrs=authors+title",
};

data::Dataset GoldenDataset() {
  data::CoraGeneratorConfig config;
  config.num_entities = 40;
  config.num_records = 400;
  config.seed = 42;
  return data::GenerateCoraLike(config);
}

std::unique_ptr<pipeline::PipelinedBlocker> BuildOrDie(
    const std::string& spec) {
  std::unique_ptr<pipeline::PipelinedBlocker> pipelined;
  Status status = pipeline::Build(spec, &pipelined);
  EXPECT_TRUE(status.ok()) << spec << ": " << status.message();
  return pipelined;
}

PairSet PairsOfProgressiveOutput(const BlockCollection& out) {
  PairSet pairs;
  for (const Block& b : out.blocks()) {
    EXPECT_EQ(b.size(), 2u);
    pairs.Insert(b[0], b[1]);
  }
  return pairs;
}

TEST(ProgressiveGoldenTest, UnlimitedBudgetMatchesBatchForEveryTechnique) {
  data::Dataset d = GoldenDataset();
  for (const char* spec : kRegistrySpecs) {
    std::unique_ptr<pipeline::PipelinedBlocker> batch = BuildOrDie(spec);
    ASSERT_NE(batch, nullptr) << spec;
    BlockCollection batch_out;
    batch->Run(d, batch_out);
    PairSet expected = batch_out.DistinctPairs();
    ASSERT_GT(expected.size(), 0u) << spec;

    std::unique_ptr<pipeline::PipelinedBlocker> progressive =
        BuildOrDie(std::string(spec) + " | progressive:sched=ew-cbs");
    ASSERT_NE(progressive, nullptr) << spec;
    BlockCollection progressive_out;
    progressive->Run(d, progressive_out);

    // One two-record block per distinct pair, each pair exactly once.
    EXPECT_EQ(progressive_out.NumBlocks(), expected.size()) << spec;
    PairSet emitted = PairsOfProgressiveOutput(progressive_out);
    EXPECT_EQ(emitted.size(), expected.size()) << spec;
    bool all_expected = true;
    emitted.ForEach([&](uint32_t a, uint32_t b) {
      if (!expected.Contains(a, b)) all_expected = false;
    });
    EXPECT_TRUE(all_expected) << spec << ": emitted a pair batch never saw";
  }
}

TEST(ProgressiveGoldenTest, ShardedOutputIsThreadCountInvariant) {
  data::Dataset d = GoldenDataset();
  std::unique_ptr<pipeline::PipelinedBlocker> pipelined = BuildOrDie(
      "tblo:attrs=authors+title | purge:max_size=200 | "
      "progressive:sched=ew-cbs");
  ASSERT_NE(pipelined, nullptr);

  // Same shard count (part of the computation's definition), different
  // thread counts (which must not be): the global stage chain under
  // merge=collect has to emit the identical best-first stream.
  BlockCollection reference;
  for (int threads : {1, 2, 4}) {
    engine::ExecutionSpec spec;
    ASSERT_TRUE(engine::ExecutionSpec::Parse(
                    "threads=" + std::to_string(threads) +
                        ",shards=3,merge=collect",
                    &spec)
                    .ok());
    engine::ShardedExecutor executor(spec);
    BlockCollection out;
    executor.ExecutePipeline(pipelined->blocker(), pipelined->stages(), d,
                             out);
    ASSERT_GT(out.NumBlocks(), 0u);
    if (threads == 1) {
      reference = std::move(out);
    } else {
      EXPECT_EQ(out.blocks(), reference.blocks()) << threads << " threads";
    }
  }
}

}  // namespace
}  // namespace sablock
