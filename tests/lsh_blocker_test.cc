// Tests for the LSH and SA-LSH blockers, including Propositions 5.2/5.3.

#include <gtest/gtest.h>

#include "run_streaming.h"

#include <memory>
#include <string>
#include <vector>

#include "core/domains.h"
#include "core/lsh_blocker.h"

namespace sablock::core {
namespace {

using data::Dataset;
using data::Record;
using data::Schema;

LshParams SmallParams() {
  LshParams p;
  p.k = 2;
  p.l = 8;
  p.q = 3;
  p.attributes = {"title", "authors"};
  p.seed = 7;
  return p;
}

Dataset TinyBibDataset() {
  Dataset d{Schema({"title", "authors", "journal", "booktitle",
                    "institution", "publisher", "year"})};
  auto add = [&d](const char* title, const char* authors,
                  const char* journal, const char* booktitle,
                  const char* institution, data::EntityId e) {
    Record r;
    r.values = {title, authors, journal, booktitle, institution, "", ""};
    d.Add(std::move(r), e);
  };
  // Two textually identical conference papers (journal-less, booktitle set).
  add("the cascade correlation learning architecture", "fahlman lebiere",
      "", "nips", "", 0);
  add("the cascade correlation learning architecture", "fahlman lebiere",
      "", "nips proceedings", "", 0);
  // The same text but a technical report (institution only).
  add("the cascade correlation learning architecture", "fahlman lebiere",
      "", "", "cmu", 1);
  // A different paper.
  add("support vector machines for classification", "vapnik", "ml journal",
      "", "", 2);
  return d;
}

TEST(LshBlockerTest, NameEncodesParameters) {
  LshBlocker blocker(SmallParams());
  EXPECT_EQ(blocker.name(), "LSH(k=2,l=8)");
}

// Proposition 5.2 (1): textually identical records are always co-blocked.
TEST(LshBlockerTest, IdenticalTextAlwaysCoBlocked) {
  Dataset d = TinyBibDataset();
  LshBlocker blocker(SmallParams());
  BlockCollection blocks = RunStreaming(blocker, d);
  // Records 0 and 2 have identical title+authors.
  EXPECT_TRUE(blocks.InSameBlock(0, 2));
}

TEST(LshBlockerTest, DissimilarRecordsUsuallySeparated) {
  Dataset d = TinyBibDataset();
  LshParams p = SmallParams();
  p.k = 4;  // selective bands
  LshBlocker blocker(p);
  BlockCollection blocks = RunStreaming(blocker, d);
  EXPECT_FALSE(blocks.InSameBlock(0, 3));
}

TEST(LshBlockerTest, EmptyRecordsAreExcluded) {
  Dataset d{Schema({"title", "authors"})};
  d.Add({{"", ""}});
  d.Add({{"", ""}});
  d.Add({{"some text here", "author"}});
  LshParams p;
  p.k = 1;
  p.l = 2;
  p.attributes = {"title", "authors"};
  LshBlocker blocker(p);
  BlockCollection blocks = RunStreaming(blocker, d);
  EXPECT_FALSE(blocks.InSameBlock(0, 1));
  EXPECT_EQ(blocks.NumBlocks(), 0u);
}

TEST(LshBlockerTest, DeterministicAcrossRuns) {
  Dataset d = TinyBibDataset();
  LshBlocker blocker(SmallParams());
  BlockCollection b1 = RunStreaming(blocker, d);
  BlockCollection b2 = RunStreaming(blocker, d);
  EXPECT_EQ(b1.TotalComparisons(), b2.TotalComparisons());
  EXPECT_EQ(b1.NumBlocks(), b2.NumBlocks());
}

TEST(LshBlockerTest, MoreTablesNeverReduceCandidates) {
  Dataset d = TinyBibDataset();
  LshParams p1 = SmallParams();
  p1.l = 2;
  LshParams p16 = SmallParams();
  p16.l = 16;
  size_t pairs_small = RunStreaming(LshBlocker(p1), d).DistinctPairs().size();
  size_t pairs_large = RunStreaming(LshBlocker(p16), d).DistinctPairs().size();
  EXPECT_GE(pairs_large, pairs_small);
}

TEST(LshBlockerTest, EmptyDatasetYieldsNoBlocks) {
  Dataset d{Schema({"title", "authors"})};
  LshBlocker blocker(SmallParams());
  EXPECT_EQ(RunStreaming(blocker, d).NumBlocks(), 0u);
}

std::shared_ptr<const SemanticFunction> BibSemantics() {
  return MakeBibliographicDomain().semantics;
}

SemanticParams FullOr(int dim = 5) {
  SemanticParams sp;
  sp.w = dim;
  sp.mode = SemanticMode::kOr;
  sp.seed = 3;
  return sp;
}

TEST(SaLshBlockerTest, NameEncodesParameters) {
  SemanticAwareLshBlocker blocker(SmallParams(), FullOr(), BibSemantics());
  EXPECT_EQ(blocker.name(), "SA-LSH(k=2,l=8,w=5,OR)");
  SemanticParams sp;
  sp.w = 2;
  sp.mode = SemanticMode::kAnd;
  SemanticAwareLshBlocker and_blocker(SmallParams(), sp, BibSemantics());
  EXPECT_EQ(and_blocker.name(), "SA-LSH(k=2,l=8,w=2,AND)");
}

// Proposition 5.3 (1): semantically dissimilar records are never
// co-blocked by SA-LSH (full-width OR), even when textually identical.
TEST(SaLshBlockerTest, SemanticallyDissimilarNeverCoBlocked) {
  Dataset d = TinyBibDataset();
  // Records 0 (proceedings {C3,C4}-ish pattern) and 2 (tech report
  // {C7,C8}) are textually identical but semantically disjoint.
  Domain domain = MakeBibliographicDomain();
  auto z0 = domain.semantics->Interpret(d, 0);
  auto z2 = domain.semantics->Interpret(d, 2);
  ASSERT_DOUBLE_EQ(domain.taxonomy().RecordSimilarity(z0, z2), 0.0);

  SemanticAwareLshBlocker blocker(SmallParams(), FullOr(), BibSemantics());
  BlockCollection blocks = RunStreaming(blocker, d);
  EXPECT_FALSE(blocks.InSameBlock(0, 2));
  // But records 0 and 1 (both proceedings, textually near-identical) stay.
  EXPECT_TRUE(blocks.InSameBlock(0, 1));
}

TEST(SaLshBlockerTest, SubsetOfLshCandidates) {
  // SA-LSH can only remove candidates relative to LSH with the same
  // textual parameters.
  Dataset d = TinyBibDataset();
  LshParams p = SmallParams();
  PairSet lsh_pairs = RunStreaming(LshBlocker(p), d).DistinctPairs();
  SemanticAwareLshBlocker sa(p, FullOr(), BibSemantics());
  PairSet sa_pairs = RunStreaming(sa, d).DistinctPairs();
  EXPECT_LE(sa_pairs.size(), lsh_pairs.size());
  sa_pairs.ForEach([&lsh_pairs](uint32_t a, uint32_t b) {
    EXPECT_TRUE(lsh_pairs.Contains(a, b));
  });
}

TEST(SaLshBlockerTest, AndModeIsStricterThanOrMode) {
  Dataset d = TinyBibDataset();
  LshParams p = SmallParams();
  SemanticParams and_params;
  and_params.w = 2;
  and_params.mode = SemanticMode::kAnd;
  and_params.seed = 5;
  SemanticParams or_params = and_params;
  or_params.mode = SemanticMode::kOr;

  size_t and_pairs = RunStreaming(SemanticAwareLshBlocker(p, and_params, BibSemantics()), d)
                         .DistinctPairs()
                         .size();
  size_t or_pairs = RunStreaming(SemanticAwareLshBlocker(p, or_params, BibSemantics()), d)
                        .DistinctPairs()
                        .size();
  EXPECT_LE(and_pairs, or_pairs);
}

TEST(SaLshBlockerTest, WIsClampedToSignatureWidth) {
  Dataset d = TinyBibDataset();
  SemanticParams sp;
  sp.w = 100;  // far beyond the 5-bit signature
  sp.mode = SemanticMode::kOr;
  SemanticAwareLshBlocker blocker(SmallParams(), sp, BibSemantics());
  BlockCollection blocks = RunStreaming(blocker, d);  // must not abort
  EXPECT_TRUE(blocks.InSameBlock(0, 1));
}

TEST(SaLshBlockerTest, DeterministicAcrossRuns) {
  Dataset d = TinyBibDataset();
  SemanticAwareLshBlocker blocker(SmallParams(), FullOr(), BibSemantics());
  EXPECT_EQ(RunStreaming(blocker, d).TotalComparisons(),
            RunStreaming(blocker, d).TotalComparisons());
}

TEST(ComputeMinhashSignaturesTest, OnePerRecord) {
  Dataset d = TinyBibDataset();
  auto sigs = ComputeMinhashSignatures(d, SmallParams());
  ASSERT_EQ(sigs.size(), d.size());
  for (const auto& s : sigs) {
    EXPECT_EQ(s.size(), 16u);  // k*l
  }
}

}  // namespace
}  // namespace sablock::core
