#include "engine/thread_pool.h"

#include <atomic>
#include <vector>

#include "gtest/gtest.h"

namespace sablock::engine {
namespace {

TEST(ThreadPoolTest, RunsEverySubmittedTask) {
  ThreadPool pool(4);
  std::atomic<int> count{0};
  for (int i = 0; i < 1000; ++i) {
    pool.Submit([&count] { count.fetch_add(1, std::memory_order_relaxed); });
  }
  pool.Wait();
  EXPECT_EQ(count.load(), 1000);
}

TEST(ThreadPoolTest, ClampsThreadCountToAtLeastOne) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.num_threads(), 1);
  std::atomic<int> count{0};
  pool.Submit([&count] { ++count; });
  pool.Wait();
  EXPECT_EQ(count.load(), 1);
}

TEST(ThreadPoolTest, WaitWithNoTasksReturnsImmediately) {
  ThreadPool pool(2);
  pool.Wait();
  SUCCEED();
}

TEST(ThreadPoolTest, PoolIsReusableAfterWait) {
  ThreadPool pool(3);
  std::atomic<int> count{0};
  for (int round = 0; round < 5; ++round) {
    for (int i = 0; i < 50; ++i) {
      pool.Submit([&count] { ++count; });
    }
    pool.Wait();
    EXPECT_EQ(count.load(), (round + 1) * 50);
  }
}

TEST(ThreadPoolTest, TasksMaySubmitMoreTasks) {
  ThreadPool pool(2);
  std::atomic<int> count{0};
  pool.Submit([&pool, &count] {
    ++count;
    for (int i = 0; i < 10; ++i) {
      pool.Submit([&count] { ++count; });
    }
  });
  pool.Wait();
  EXPECT_EQ(count.load(), 11);
}

TEST(ThreadPoolTest, DestructorDrainsPendingTasks) {
  std::atomic<int> count{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 200; ++i) {
      pool.Submit([&count] { ++count; });
    }
    // No Wait(): the destructor must finish everything already submitted.
  }
  EXPECT_EQ(count.load(), 200);
}

TEST(ThreadPoolTest, DefaultThreadsIsPositive) {
  EXPECT_GE(ThreadPool::DefaultThreads(), 1);
}

TEST(ThreadPoolTest, ParallelWritesToDistinctSlotsAreVisibleAfterWait) {
  // The ShardedExecutor contract: each task writes one element of a
  // pre-sized vector, Wait() publishes all of them to the submitter.
  ThreadPool pool(4);
  std::vector<int> slots(64, 0);
  for (size_t i = 0; i < slots.size(); ++i) {
    int* slot = &slots[i];
    pool.Submit([slot, i] { *slot = static_cast<int>(i) + 1; });
  }
  pool.Wait();
  for (size_t i = 0; i < slots.size(); ++i) {
    EXPECT_EQ(slots[i], static_cast<int>(i) + 1);
  }
}

}  // namespace
}  // namespace sablock::engine
