// Unit tests for the snapshot store layer: varint/byte primitives, the
// self-framing codec sub-blocks, and the writer/loader roundtrip over
// hand-built datasets (core sections, both encodings, zero-copy adoption
// and copy-on-write mutation after load).

#include <unistd.h>

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <iterator>
#include <limits>
#include <string>
#include <vector>

#include "data/record.h"
#include "features/feature_store.h"
#include "gtest/gtest.h"
#include "store/bytes.h"
#include "store/codec.h"
#include "store/format.h"
#include "store/snapshot.h"
#include "store/snapshot_writer.h"

namespace sablock::store {
namespace {

std::string TmpPath(const char* tag) {
  return "/tmp/sablock-store-test-" + std::to_string(::getpid()) + "-" +
         tag + ".sab";
}

// ---------------------------------------------------------------- bytes

TEST(BytesTest, VarintRoundtripsEdgeValues) {
  const uint64_t cases[] = {0,
                            1,
                            127,
                            128,
                            16383,
                            16384,
                            (1ULL << 32) - 1,
                            1ULL << 32,
                            std::numeric_limits<uint64_t>::max()};
  for (uint64_t v : cases) {
    std::string buf;
    ByteWriter writer(&buf);
    writer.PutVarint(v);
    ByteReader reader(buf.data(), buf.size());
    uint64_t got = 0;
    ASSERT_TRUE(reader.ReadVarint(&got)) << v;
    EXPECT_EQ(got, v);
    EXPECT_EQ(reader.remaining(), 0u) << v;
  }
}

TEST(BytesTest, VarintRejectsOverlongAndTruncated) {
  // 10 continuation bytes: the varint never terminates within 64 bits.
  std::string overlong(10, '\x80');
  ByteReader reader(overlong.data(), overlong.size());
  uint64_t out = 0;
  EXPECT_FALSE(reader.ReadVarint(&out));

  std::string truncated("\xff\xff", 2);  // continuation bit set, no end
  ByteReader reader2(truncated.data(), truncated.size());
  EXPECT_FALSE(reader2.ReadVarint(&out));
}

TEST(BytesTest, ReaderNeverReadsPastEnd) {
  std::string buf("\x01\x02\x03", 3);
  ByteReader reader(buf.data(), buf.size());
  uint32_t u32 = 0;
  EXPECT_FALSE(reader.ReadU32(&u32));  // only 3 bytes available
  EXPECT_EQ(reader.position(), 0u);    // failed read consumes nothing
  uint8_t u8 = 0;
  EXPECT_TRUE(reader.ReadU8(&u8));
  EXPECT_FALSE(reader.Skip(3));
  EXPECT_TRUE(reader.Skip(2));
  EXPECT_EQ(reader.remaining(), 0u);
}

TEST(BytesTest, ZigzagRoundtrips) {
  const int64_t cases[] = {0, -1, 1, -2, 2,
                           std::numeric_limits<int64_t>::min(),
                           std::numeric_limits<int64_t>::max()};
  for (int64_t v : cases) {
    EXPECT_EQ(ZigzagDecode(ZigzagEncode(v)), v);
  }
  EXPECT_EQ(ZigzagEncode(0), 0u);  // small magnitudes stay small
  EXPECT_EQ(ZigzagEncode(-1), 1u);
  EXPECT_EQ(ZigzagEncode(1), 2u);
}

// ---------------------------------------------------------------- codec

TEST(CodecTest, U64BlockRoundtripsBothEncodings) {
  const std::vector<uint64_t> cases[] = {
      {},
      {0},
      {0, 1, 2, 3, 100, 1000, 1000000},
      // Unsorted: deltas wrap, zigzag keeps them small either way.
      {5, 0, std::numeric_limits<uint64_t>::max(), 7},
  };
  for (const std::vector<uint64_t>& values : cases) {
    for (bool compressed : {false, true}) {
      std::string buf;
      ByteWriter writer(&buf);
      WriteU64Block(writer, values, compressed);
      ByteReader reader(buf.data(), buf.size());
      std::vector<uint64_t> got;
      Status s = ReadU64Block(reader, compressed, &got);
      ASSERT_TRUE(s.ok()) << s.message();
      EXPECT_EQ(got, values);
      EXPECT_EQ(reader.remaining(), 0u);
    }
  }
}

TEST(CodecTest, U64BlockCompressesSortedSequences) {
  std::vector<uint64_t> sorted;
  for (uint64_t i = 0; i < 1000; ++i) sorted.push_back(i * 3);
  std::string raw, compressed;
  ByteWriter raw_writer(&raw);
  WriteU64Block(raw_writer, sorted, false);
  ByteWriter comp_writer(&compressed);
  WriteU64Block(comp_writer, sorted, true);
  EXPECT_LT(compressed.size() * 4, raw.size());  // >=4x on sorted data
}

TEST(CodecTest, U64BlockRejectsHostileCount) {
  // A count far beyond the available bytes must fail before allocating.
  std::string buf;
  ByteWriter writer(&buf);
  writer.PutVarint(std::numeric_limits<uint64_t>::max());
  for (bool compressed : {false, true}) {
    ByteReader reader(buf.data(), buf.size());
    std::vector<uint64_t> out;
    EXPECT_FALSE(ReadU64Block(reader, compressed, &out).ok());
  }
}

TEST(CodecTest, StringBlockRoundtripsBothEncodings) {
  const std::vector<std::string> cases[] = {
      {},
      {""},
      {"solo"},
      // Sorted-ish with shared prefixes (front-coding's best case) plus
      // embedded separators and non-ASCII bytes.
      {"", "aaa", "aab", "aab\x1f\x1e", "ab\xc3\xa9", "b"},
  };
  for (const std::vector<std::string>& strings : cases) {
    for (bool compressed : {false, true}) {
      std::string buf;
      ByteWriter writer(&buf);
      WriteStringBlock(writer, strings, compressed);
      ByteReader reader(buf.data(), buf.size());
      std::vector<std::string> got;
      Status s = ReadStringBlock(reader, compressed, &got);
      ASSERT_TRUE(s.ok()) << s.message();
      EXPECT_EQ(got, strings);
      EXPECT_EQ(reader.remaining(), 0u);
    }
  }
}

TEST(CodecTest, StringBlockRejectsHostileInput) {
  {
    std::string buf;
    ByteWriter writer(&buf);
    writer.PutVarint(1ULL << 40);  // count with no bytes behind it
    ByteReader reader(buf.data(), buf.size());
    std::vector<std::string> out;
    EXPECT_FALSE(ReadStringBlock(reader, false, &out).ok());
  }
  {
    // Front-coded entry claiming a shared prefix longer than the
    // previous string.
    std::string buf;
    ByteWriter writer(&buf);
    writer.PutVarint(2);   // count
    writer.PutVarint(0);   // first: no shared prefix
    writer.PutString("ab");
    writer.PutVarint(10);  // second: prefix 10 of a 2-char predecessor
    writer.PutString("x");
    ByteReader reader(buf.data(), buf.size());
    std::vector<std::string> out;
    EXPECT_FALSE(ReadStringBlock(reader, true, &out).ok());
  }
}

// ------------------------------------------------------------ roundtrip

data::Dataset SmallDataset() {
  data::Dataset d(data::Schema({"name", "note"}));
  auto add = [&d](std::string_view name, std::string_view note,
                  data::EntityId entity) {
    std::vector<std::string_view> row = {name, note};
    d.AddRow(row, entity);
  };
  add("alice", "likes, commas and \"quotes\"", 0);
  add("", "", 1);  // fully empty values
  add("bob\x1f", "separator bytes survive\x1e", 0);
  add("caf\xc3\xa9", "utf-8 bytes are opaque", 2);
  return d;
}

void ExpectSameRecords(const data::Dataset& a, const data::Dataset& b) {
  ASSERT_EQ(a.size(), b.size());
  ASSERT_EQ(a.schema().names(), b.schema().names());
  for (data::RecordId id = 0; id < a.size(); ++id) {
    EXPECT_EQ(a.entity(id), b.entity(id)) << "record " << id;
    auto va = a.Values(id);
    auto vb = b.Values(id);
    ASSERT_EQ(va.size(), vb.size());
    for (size_t i = 0; i < va.size(); ++i) {
      EXPECT_EQ(va[i], vb[i]) << "record " << id << " attr " << i;
    }
  }
}

TEST(SnapshotTest, CoreRoundtripsBothEncodings) {
  data::Dataset original = SmallDataset();
  for (bool compress : {false, true}) {
    const std::string path = TmpPath(compress ? "comp" : "raw");
    WriteOptions options;
    options.compress = compress;
    WriteInfo write_info;
    Status s = WriteSnapshot(path, original, options, &write_info);
    ASSERT_TRUE(s.ok()) << s.message();
    EXPECT_EQ(write_info.sections, 4u);  // schema, entities, arena, offsets
    EXPECT_EQ(write_info.feature_sections, 0u);

    data::Dataset loaded;
    SnapshotInfo info;
    s = LoadSnapshot(path, {}, &loaded, &info);
    ASSERT_TRUE(s.ok()) << s.message();
    EXPECT_EQ(info.records, original.size());
    EXPECT_EQ(info.attributes, original.schema().size());
    EXPECT_EQ(info.file_bytes, write_info.file_bytes);
    EXPECT_EQ(info.any_compressed, compress);
    ExpectSameRecords(original, loaded);
    std::remove(path.c_str());
  }
}

TEST(SnapshotTest, WriterIsDeterministic) {
  data::Dataset original = SmallDataset();
  const std::string p1 = TmpPath("det1");
  const std::string p2 = TmpPath("det2");
  ASSERT_TRUE(WriteSnapshot(p1, original).ok());
  ASSERT_TRUE(WriteSnapshot(p2, original).ok());
  std::ifstream f1(p1, std::ios::binary), f2(p2, std::ios::binary);
  std::string b1((std::istreambuf_iterator<char>(f1)),
                 std::istreambuf_iterator<char>());
  std::string b2((std::istreambuf_iterator<char>(f2)),
                 std::istreambuf_iterator<char>());
  EXPECT_FALSE(b1.empty());
  EXPECT_EQ(b1, b2);
  std::remove(p1.c_str());
  std::remove(p2.c_str());
}

TEST(SnapshotTest, EmptyDatasetRoundtrips) {
  data::Dataset original(data::Schema({"a", "b", "c"}));
  const std::string path = TmpPath("empty");
  ASSERT_TRUE(WriteSnapshot(path, original).ok());
  data::Dataset loaded;
  Status s = LoadSnapshot(path, {}, &loaded);
  ASSERT_TRUE(s.ok()) << s.message();
  EXPECT_EQ(loaded.size(), 0u);
  EXPECT_EQ(loaded.schema().names(), original.schema().names());
  std::remove(path.c_str());
}

TEST(SnapshotTest, FeatureSectionsRoundtripAndPreWarmTheCache) {
  data::Dataset original = SmallDataset();
  const std::vector<std::string> attrs = {"name", "note"};
  // Warm one column of every kind, so the writer has a full catalog.
  features::FeatureView warm = original.features();
  warm.TextsFor(attrs);
  warm.TokensFor(attrs);
  warm.ShinglesFor(attrs, 2);
  warm.SignaturesFor(attrs, 2, 16, 7);

  const std::string path = TmpPath("features");
  WriteInfo write_info;
  ASSERT_TRUE(WriteSnapshot(path, original, {}, &write_info).ok());
  EXPECT_EQ(write_info.feature_sections, 4u);

  data::Dataset loaded;
  SnapshotInfo info;
  Status s = LoadSnapshot(path, {}, &loaded, &info);
  ASSERT_TRUE(s.ok()) << s.message();
  EXPECT_EQ(info.feature_sections, 4u);

  // Every getter must be a cache hit (adopted, not rebuilt) and agree
  // with the parsed path's column contents.
  features::FeatureView view = loaded.features();
  features::FeatureView reference = original.features();
  auto text = view.TextsFor(attrs);
  auto ref_text = reference.TextsFor(attrs);
  auto tokens = view.TokensFor(attrs);
  auto ref_tokens = reference.TokensFor(attrs);
  auto shingles = view.ShinglesFor(attrs, 2);
  auto ref_shingles = reference.ShinglesFor(attrs, 2);
  auto sigs = view.SignaturesFor(attrs, 2, 16, 7);
  auto ref_sigs = reference.SignaturesFor(attrs, 2, 16, 7);
  ASSERT_EQ(tokens.token_limit(), ref_tokens.token_limit());
  for (data::RecordId id = 0; id < loaded.size(); ++id) {
    EXPECT_EQ(text.Text(id), ref_text.Text(id)) << id;
    EXPECT_EQ(tokens.Tokens(id), ref_tokens.Tokens(id)) << id;
    EXPECT_EQ(shingles.Shingles(id), ref_shingles.Shingles(id)) << id;
    std::span<const uint64_t> got = sigs.Signature(id);
    std::span<const uint64_t> want = ref_sigs.Signature(id);
    ASSERT_EQ(got.size(), want.size());
    EXPECT_TRUE(std::equal(got.begin(), got.end(), want.begin())) << id;
  }
  // The token local->global map must stay usable: every global id
  // resolves to the same token string as the reference store.
  for (features::TokenId local = 0; local < tokens.token_limit();
       ++local) {
    EXPECT_EQ(view.store().Token(tokens.GlobalId(local)),
              reference.store().Token(ref_tokens.GlobalId(local)))
        << local;
  }
  // Adoption counts as the build for the stats counters: reads above
  // must not have rebuilt anything.
  features::FeatureStore::Stats stats = view.store().stats();
  EXPECT_EQ(stats.text_builds, 1u);
  EXPECT_EQ(stats.token_builds, 1u);
  EXPECT_EQ(stats.shingle_builds, 1u);
  EXPECT_EQ(stats.signature_builds, 1u);
  std::remove(path.c_str());
}

TEST(SnapshotTest, MutationAfterLoadCopiesOnWrite) {
  data::Dataset original = SmallDataset();
  original.features().TokensFor({"name"});
  const std::string path = TmpPath("cow");
  ASSERT_TRUE(WriteSnapshot(path, original).ok());

  data::Dataset loaded;
  ASSERT_TRUE(LoadSnapshot(path, {}, &loaded).ok());
  features::FeatureView before = loaded.features();
  const uint64_t version_before = loaded.version();

  // Mutate: the new row interns into fresh heap chunks (the mapping is
  // read-only), the feature cache detaches, and the old view keeps
  // serving its pre-mutation snapshot.
  std::vector<std::string_view> row = {"dave", "appended after load"};
  data::RecordId id = loaded.AddRow(row, 3);
  EXPECT_EQ(id, original.size());
  EXPECT_GT(loaded.version(), version_before);
  EXPECT_EQ(loaded.Values(id)[0], "dave");
  // Pre-mutation rows still read out of the mapping.
  ExpectSameRecords(original,
                    loaded.Prefix(original.size()));
  EXPECT_EQ(before.size(), original.size());

  // A fresh view rebuilds over the grown dataset.
  features::FeatureView after = loaded.features();
  EXPECT_EQ(after.size(), loaded.size());
  EXPECT_EQ(after.TextsFor({"name"}).Text(id), "dave");
  std::remove(path.c_str());
}

TEST(SnapshotTest, LoadWithoutFeaturesSkipsFeatureSections) {
  data::Dataset original = SmallDataset();
  original.features().TokensFor({"name"});
  const std::string path = TmpPath("nofeat");
  ASSERT_TRUE(WriteSnapshot(path, original).ok());
  LoadOptions options;
  options.load_features = false;
  data::Dataset loaded;
  SnapshotInfo info;
  ASSERT_TRUE(LoadSnapshot(path, options, &loaded, &info).ok());
  ExpectSameRecords(original, loaded);
  // The cache starts cold: the first getter call builds.
  loaded.features().TokensFor({"name"});
  EXPECT_EQ(loaded.features().store().stats().token_builds, 1u);
  std::remove(path.c_str());
}

TEST(SnapshotTest, WriteToUnwritablePathFails) {
  data::Dataset d = SmallDataset();
  Status s = WriteSnapshot("/nonexistent-dir/x.sab", d);
  EXPECT_FALSE(s.ok());
  EXPECT_FALSE(s.message().empty());
}

TEST(SnapshotTest, LoadMissingFileFails) {
  data::Dataset d;
  Status s = LoadSnapshot(TmpPath("missing-never-written"), {}, &d);
  EXPECT_FALSE(s.ok());
  EXPECT_FALSE(s.message().empty());
}

}  // namespace
}  // namespace sablock::store
