// Tests for the corruption model used by the synthetic data generators.

#include <gtest/gtest.h>

#include <cctype>

#include "common/random.h"
#include "common/string_util.h"
#include "data/corruptor.h"
#include "text/similarity.h"

namespace sablock::data {
namespace {

TEST(CorruptorTest, EmptyStringStaysEmpty) {
  Corruptor c(CorruptorConfig{});
  sablock::Rng rng(1);
  EXPECT_EQ(c.CorruptString("", &rng), "");
}

TEST(CorruptorTest, ZeroProbabilityIsIdentity) {
  CorruptorConfig config;
  config.char_edit_prob = 0.0;
  config.word_swap_prob = 0.0;
  config.word_delete_prob = 0.0;
  Corruptor c(config);
  sablock::Rng rng(2);
  // Note: whitespace is normalized by the word-level pass.
  EXPECT_EQ(c.CorruptString("hello world", &rng), "hello world");
}

TEST(CorruptorTest, DeterministicGivenSeed) {
  Corruptor c(CorruptorConfig{});
  sablock::Rng rng1(42);
  sablock::Rng rng2(42);
  for (int i = 0; i < 20; ++i) {
    EXPECT_EQ(c.CorruptString("cascade correlation", &rng1),
              c.CorruptString("cascade correlation", &rng2));
  }
}

TEST(CorruptorTest, OneCharEditChangesAtMostOneEditDistance) {
  sablock::Rng rng(3);
  for (int i = 0; i < 200; ++i) {
    std::string out = Corruptor::ApplyOneCharEdit("cascade", 0.0, &rng);
    // insert/delete/substitute are distance 1; transpose is distance <= 2.
    EXPECT_LE(text::EditDistance("cascade", out), 2);
    EXPECT_FALSE(out.empty());
  }
}

TEST(CorruptorTest, CorruptedStringsStaySimilar) {
  CorruptorConfig config;
  config.char_edit_prob = 0.5;
  config.max_char_edits = 2;
  config.word_swap_prob = 0.0;    // word-level ops can move whole tokens;
  config.word_delete_prob = 0.0;  // here we bound char-level noise only
  Corruptor c(config);
  sablock::Rng rng(4);
  const std::string original = "the cascade correlation architecture";
  for (int i = 0; i < 100; ++i) {
    std::string out = c.CorruptString(original, &rng);
    EXPECT_GT(text::EditSimilarity(original, out), 0.6) << out;
  }
}

TEST(CorruptorTest, HighEditProbEventuallyChangesString) {
  CorruptorConfig config;
  config.char_edit_prob = 1.0;
  config.max_char_edits = 2;
  Corruptor c(config);
  sablock::Rng rng(5);
  int changed = 0;
  for (int i = 0; i < 50; ++i) {
    if (c.CorruptString("correlation", &rng) != "correlation") ++changed;
  }
  EXPECT_GT(changed, 40);
}

TEST(KeyboardNeighbourTest, StaysAlphanumericAndPreservesCase) {
  sablock::Rng rng(6);
  for (int i = 0; i < 50; ++i) {
    char lower = Corruptor::KeyboardNeighbour('a', &rng);
    EXPECT_TRUE(std::islower(static_cast<unsigned char>(lower)));
    char upper = Corruptor::KeyboardNeighbour('A', &rng);
    EXPECT_TRUE(std::isupper(static_cast<unsigned char>(upper)));
  }
  // Characters without neighbours are unchanged.
  EXPECT_EQ(Corruptor::KeyboardNeighbour('!', &rng), '!');
}

TEST(OcrConfusionTest, KnownConfusions) {
  sablock::Rng rng(7);
  EXPECT_EQ(Corruptor::OcrConfusion('o', &rng), "0");
  EXPECT_EQ(Corruptor::OcrConfusion('m', &rng), "rn");
  EXPECT_EQ(Corruptor::OcrConfusion('x', &rng), "x");  // no confusion
}

TEST(AbbreviateWordTest, Basic) {
  EXPECT_EQ(AbbreviateWord("proceedings"), "p.");
  EXPECT_EQ(AbbreviateWord("a"), "a.");
  EXPECT_EQ(AbbreviateWord(""), "");
}

TEST(CorruptorTest, WordDeleteShortensSentence) {
  CorruptorConfig config;
  config.char_edit_prob = 0.0;
  config.word_swap_prob = 0.0;
  config.word_delete_prob = 1.0;
  Corruptor c(config);
  sablock::Rng rng(8);
  std::string out = c.CorruptString("one two three", &rng);
  // Exactly one word removed.
  EXPECT_EQ(sablock::SplitWords(out).size(), 2u);
}

TEST(CorruptorTest, WordSwapKeepsWords) {
  CorruptorConfig config;
  config.char_edit_prob = 0.0;
  config.word_swap_prob = 1.0;
  config.word_delete_prob = 0.0;
  Corruptor c(config);
  sablock::Rng rng(9);
  std::string out = c.CorruptString("alpha beta", &rng);
  EXPECT_EQ(out, "beta alpha");
}

}  // namespace
}  // namespace sablock::data
