#include "engine/sharded_executor.h"

#include <algorithm>
#include <memory>
#include <string>
#include <vector>

#include "api/registry.h"
#include "common/check.h"
#include "core/block_sink.h"
#include "core/blocking.h"
#include "data/voter_generator.h"
#include "engine/execution_spec.h"
#include "eval/harness.h"
#include "eval/metrics.h"
#include "gtest/gtest.h"
#include "run_streaming.h"

namespace sablock::engine {
namespace {

using core::Block;
using core::BlockCollection;
using core::BlockingTechnique;

data::Dataset SmallVoter(size_t records = 2000) {
  data::VoterGeneratorConfig config;
  config.num_records = records;
  config.seed = 97;
  return GenerateVoterLike(config);
}

std::unique_ptr<BlockingTechnique> FromSpec(const std::string& spec) {
  std::unique_ptr<BlockingTechnique> technique;
  Status status = api::BlockerRegistry::Global().Create(spec, &technique);
  // Abort (not EXPECT) so a bad spec fails with the Status message
  // instead of a null dereference in the calling test.
  SABLOCK_CHECK_MSG(status.ok(), status.message().c_str());
  return technique;
}

std::vector<Block> SortedBlocks(const BlockCollection& collection) {
  std::vector<Block> blocks = collection.blocks();
  std::sort(blocks.begin(), blocks.end());
  return blocks;
}

// --- MakeShardRanges ------------------------------------------------------

TEST(MakeShardRangesTest, PartitionsAllRecordsContiguously) {
  std::vector<ShardRange> ranges = MakeShardRanges(103, 8);
  ASSERT_EQ(ranges.size(), 8u);
  EXPECT_EQ(ranges.front().begin, 0u);
  EXPECT_EQ(ranges.back().end, 103u);
  for (size_t i = 1; i < ranges.size(); ++i) {
    EXPECT_EQ(ranges[i].begin, ranges[i - 1].end);
  }
  // Near-equal: sizes differ by at most one, longer shards first.
  for (const ShardRange& r : ranges) {
    EXPECT_GE(r.size(), 103u / 8);
    EXPECT_LE(r.size(), 103u / 8 + 1);
  }
}

TEST(MakeShardRangesTest, MoreShardsThanRecordsYieldsOnePerRecord) {
  std::vector<ShardRange> ranges = MakeShardRanges(3, 16);
  ASSERT_EQ(ranges.size(), 3u);
  for (size_t i = 0; i < ranges.size(); ++i) {
    EXPECT_EQ(ranges[i].begin, i);
    EXPECT_EQ(ranges[i].size(), 1u);
  }
}

TEST(MakeShardRangesTest, EmptyDatasetYieldsNoRanges) {
  EXPECT_TRUE(MakeShardRanges(0, 4).empty());
}

// --- ExecutionSpec --------------------------------------------------------

TEST(ExecutionSpecTest, ParsesFullSpec) {
  ExecutionSpec spec;
  Status status =
      ExecutionSpec::Parse("threads=4,shards=8,merge=stream", &spec);
  ASSERT_TRUE(status.ok()) << status.message();
  EXPECT_EQ(spec.threads, 4);
  EXPECT_EQ(spec.shards, 8);
  EXPECT_EQ(spec.merge, ExecutionSpec::Merge::kStream);
}

TEST(ExecutionSpecTest, EmptyTextIsDefaultSpec) {
  ExecutionSpec spec;
  ASSERT_TRUE(ExecutionSpec::Parse("", &spec).ok());
  EXPECT_EQ(spec.threads, 1);
  EXPECT_EQ(spec.shards, 0);
  EXPECT_EQ(spec.ResolvedShards(), 1);
  EXPECT_EQ(spec.merge, ExecutionSpec::Merge::kCollect);
}

TEST(ExecutionSpecTest, ShardsZeroFollowsThreads) {
  ExecutionSpec spec;
  ASSERT_TRUE(ExecutionSpec::Parse("threads=6", &spec).ok());
  EXPECT_EQ(spec.ResolvedShards(), 6);
}

TEST(ExecutionSpecTest, RejectsBadInput) {
  ExecutionSpec spec;
  EXPECT_FALSE(ExecutionSpec::Parse("threads=0", &spec).ok());
  EXPECT_FALSE(ExecutionSpec::Parse("shards=-1", &spec).ok());
  EXPECT_FALSE(ExecutionSpec::Parse("merge=sideways", &spec).ok());
  EXPECT_FALSE(ExecutionSpec::Parse("workers=3", &spec).ok());
  EXPECT_FALSE(ExecutionSpec::Parse("threads", &spec).ok());
}

TEST(ExecutionSpecTest, ToStringRoundTrips) {
  ExecutionSpec spec;
  spec.threads = 3;
  spec.shards = 12;
  spec.merge = ExecutionSpec::Merge::kStream;
  ExecutionSpec parsed;
  ASSERT_TRUE(ExecutionSpec::Parse(spec.ToString(), &parsed).ok());
  EXPECT_EQ(parsed.threads, 3);
  EXPECT_EQ(parsed.shards, 12);
  EXPECT_EQ(parsed.merge, ExecutionSpec::Merge::kStream);
}

// --- ShardedExecutor ------------------------------------------------------

TEST(ShardedExecutorTest, SingleShardMatchesDirectRun) {
  data::Dataset dataset = SmallVoter(500);
  std::unique_ptr<BlockingTechnique> technique =
      FromSpec("tblo:attrs=first_name+last_name");
  BlockCollection direct = RunStreaming(*technique, dataset);

  ExecutionSpec spec;  // threads=1, shards -> 1
  BlockCollection sharded =
      ShardedExecutor(spec).ExecuteCollect(*technique, dataset);
  EXPECT_EQ(sharded.blocks(), direct.blocks());
}

TEST(ShardedExecutorTest, CollectMergeIsDeterministicAcrossThreadCounts) {
  data::Dataset dataset = SmallVoter(1000);
  std::unique_ptr<BlockingTechnique> technique =
      FromSpec("sa-lsh:domain=voter,k=4,l=8,q=2,w=5,mode=or");

  ExecutionSpec base;
  base.threads = 1;
  base.shards = 8;
  BlockCollection reference =
      ShardedExecutor(base).ExecuteCollect(*technique, dataset);
  EXPECT_GT(reference.NumBlocks(), 0u);

  for (int threads : {2, 8}) {
    ExecutionSpec spec = base;
    spec.threads = threads;
    BlockCollection merged =
        ShardedExecutor(spec).ExecuteCollect(*technique, dataset);
    // Bit-identical, including block order (stable shard/block ordering).
    EXPECT_EQ(merged.blocks(), reference.blocks())
        << "threads=" << threads;
  }
}

TEST(ShardedExecutorTest, StreamModeEmitsSameBlockMultisetAsCollect) {
  data::Dataset dataset = SmallVoter(800);
  std::unique_ptr<BlockingTechnique> technique =
      FromSpec("tblo:attrs=last_name");

  ExecutionSpec spec;
  spec.threads = 4;
  spec.shards = 8;
  BlockCollection collected =
      ShardedExecutor(spec).ExecuteCollect(*technique, dataset);

  spec.merge = ExecutionSpec::Merge::kStream;
  BlockCollection streamed;
  ShardedExecutor(spec).Execute(*technique, dataset, streamed);
  EXPECT_EQ(SortedBlocks(streamed), SortedBlocks(collected));
}

TEST(ShardedExecutorTest, StreamModeHonoursCappedSinkBackpressure) {
  data::Dataset dataset = SmallVoter(800);
  std::unique_ptr<BlockingTechnique> technique =
      FromSpec("tblo:attrs=last_name");

  BlockCollection collection;
  core::CappedSink capped(collection, /*comparison_budget=*/10);
  ExecutionSpec spec;
  spec.threads = 4;
  spec.shards = 8;
  spec.merge = ExecutionSpec::Merge::kStream;
  ShardedExecutor(spec).Execute(*technique, dataset, capped);
  EXPECT_TRUE(capped.Done());
  EXPECT_GE(capped.comparisons(), 10u);
  EXPECT_EQ(collection.TotalComparisons(), capped.comparisons());
}

TEST(ShardedExecutorTest, EmptyDatasetProducesNoBlocks) {
  data::Dataset dataset = SmallVoter(1).Prefix(0);
  std::unique_ptr<BlockingTechnique> technique =
      FromSpec("tblo:attrs=last_name");
  ExecutionSpec spec;
  spec.threads = 4;
  spec.shards = 4;
  BlockCollection merged =
      ShardedExecutor(spec).ExecuteCollect(*technique, dataset);
  EXPECT_EQ(merged.NumBlocks(), 0u);
}

// --- determinism of Metrics (the reproducibility guarantee) ---------------

void ExpectIdenticalMetricsAcrossThreadCounts(const std::string& spec_text) {
  SCOPED_TRACE(spec_text);
  data::Dataset dataset = SmallVoter(2000);
  std::unique_ptr<BlockingTechnique> technique = FromSpec(spec_text);

  ExecutionSpec spec;
  spec.shards = 8;  // pinned: the computation is defined by the shards
  spec.threads = 1;
  eval::TechniqueResult reference =
      eval::RunTechniqueSharded(*technique, dataset, spec);

  for (int threads : {2, 8}) {
    spec.threads = threads;
    eval::TechniqueResult result =
        eval::RunTechniqueSharded(*technique, dataset, spec);
    SCOPED_TRACE("threads=" + std::to_string(threads));
    EXPECT_EQ(result.metrics.pc, reference.metrics.pc);
    EXPECT_EQ(result.metrics.pq, reference.metrics.pq);
    EXPECT_EQ(result.metrics.rr, reference.metrics.rr);
    EXPECT_EQ(result.metrics.fm, reference.metrics.fm);
    EXPECT_EQ(result.metrics.distinct_pairs,
              reference.metrics.distinct_pairs);
    EXPECT_EQ(result.metrics.true_pairs, reference.metrics.true_pairs);
    EXPECT_EQ(result.metrics.total_comparisons,
              reference.metrics.total_comparisons);
    EXPECT_EQ(result.metrics.num_blocks, reference.metrics.num_blocks);
    EXPECT_EQ(result.metrics.max_block_size,
              reference.metrics.max_block_size);
  }
}

TEST(EngineDeterminismTest, SaLshMetricsIdenticalAtOneTwoEightThreads) {
  ExpectIdenticalMetricsAcrossThreadCounts(
      "sa-lsh:domain=voter,k=4,l=8,q=2,w=5,mode=or");
}

TEST(EngineDeterminismTest,
     StandardBlockingMetricsIdenticalAtOneTwoEightThreads) {
  ExpectIdenticalMetricsAcrossThreadCounts(
      "tblo:attrs=first_name+last_name");
}

// --- eval integration -----------------------------------------------------

TEST(RunAllParallelTest, MatchesSequentialRunAll) {
  data::Dataset dataset = SmallVoter(600);
  std::vector<std::unique_ptr<BlockingTechnique>> settings;
  settings.push_back(FromSpec("tblo:attrs=last_name"));
  settings.push_back(FromSpec("tblo:attrs=first_name"));
  settings.push_back(FromSpec("sor-a:window=3,attrs=last_name"));
  settings.push_back(FromSpec("lsh:k=4,l=8,q=2,attrs=first_name+last_name"));

  std::vector<eval::TechniqueResult> sequential =
      eval::RunAll(settings, dataset);
  std::vector<eval::TechniqueResult> parallel =
      eval::RunAllParallel(settings, dataset, 4);

  ASSERT_EQ(parallel.size(), sequential.size());
  for (size_t i = 0; i < sequential.size(); ++i) {
    EXPECT_EQ(parallel[i].name, sequential[i].name);
    EXPECT_EQ(parallel[i].metrics.distinct_pairs,
              sequential[i].metrics.distinct_pairs);
    EXPECT_EQ(parallel[i].metrics.pc, sequential[i].metrics.pc);
    EXPECT_EQ(parallel[i].metrics.pq, sequential[i].metrics.pq);
  }
}

}  // namespace
}  // namespace sablock::engine
