// Tests for the phonetic encoders used in blocking keys.

#include <gtest/gtest.h>

#include "text/phonetic.h"

namespace sablock::text {
namespace {

TEST(SoundexTest, ClassicTestVectors) {
  EXPECT_EQ(Soundex("Robert"), "R163");
  EXPECT_EQ(Soundex("Rupert"), "R163");
  EXPECT_EQ(Soundex("Ashcraft"), "A261");  // H does not reset the digit
  EXPECT_EQ(Soundex("Ashcroft"), "A261");
  EXPECT_EQ(Soundex("Tymczak"), "T522");
  EXPECT_EQ(Soundex("Pfister"), "P236");  // first-letter digit suppression
  EXPECT_EQ(Soundex("Honeyman"), "H555");
}

TEST(SoundexTest, CaseAndNoiseInsensitive) {
  EXPECT_EQ(Soundex("smith"), Soundex("SMITH"));
  EXPECT_EQ(Soundex("o'brien"), Soundex("obrien"));
}

TEST(SoundexTest, PadsShortCodes) {
  EXPECT_EQ(Soundex("Lee"), "L000");
  EXPECT_EQ(Soundex("A"), "A000");
}

TEST(SoundexTest, EmptyInput) {
  EXPECT_EQ(Soundex(""), "0000");
  EXPECT_EQ(Soundex("123"), "0000");
}

TEST(SoundexTest, SimilarNamesCollide) {
  EXPECT_EQ(Soundex("smith"), Soundex("smyth"));
  EXPECT_EQ(Soundex("johnson"), Soundex("jonson"));
}

TEST(NysiisTest, StableAndNonEmpty) {
  EXPECT_FALSE(Nysiis("smith").empty());
  EXPECT_EQ(Nysiis("smith"), Nysiis("smith"));
  EXPECT_EQ(Nysiis(""), "");
}

TEST(NysiisTest, KnownCollisions) {
  // The canonical property: spelling variants of a name share a code.
  // (Strict NYSIIS keeps smith/smyth apart — 'Y' is not a vowel — so the
  // classic collision pairs are vowel and H variants.)
  EXPECT_EQ(Nysiis("johnson"), Nysiis("jonson"));
  EXPECT_EQ(Nysiis("catherine"), Nysiis("katherine"));
}

TEST(NysiisTest, PrefixTransformations) {
  // MAC -> MCC and KN -> NN are applied before encoding.
  EXPECT_EQ(Nysiis("macdonald")[0], 'M');
  EXPECT_EQ(Nysiis("knight")[0], 'N');
  EXPECT_EQ(Nysiis("phillip")[0], 'F');  // PH -> FF
}

TEST(NysiisTest, DistinguishesDifferentNames) {
  EXPECT_NE(Nysiis("catherine"), Nysiis("cotroneo"));
  EXPECT_NE(Nysiis("smith"), Nysiis("jones"));
}

}  // namespace
}  // namespace sablock::text
