#include "engine/concurrent_sink.h"

#include <atomic>
#include <thread>
#include <vector>

#include "core/block_sink.h"
#include "core/blocking.h"
#include "engine/thread_pool.h"
#include "gtest/gtest.h"

namespace sablock::engine {
namespace {

using core::Block;
using core::BlockCollection;
using core::CappedSink;
using core::PairCountingSink;

TEST(ConcurrentSinkTest, ForwardsBlocksAndDone) {
  PairCountingSink counting;
  ConcurrentSink sink(counting);
  EXPECT_FALSE(sink.Done());
  sink.Consume({1, 2, 3});
  sink.Consume({4, 5});
  EXPECT_EQ(counting.num_blocks(), 2u);
  EXPECT_EQ(counting.comparisons(), 4u);  // C(3,2) + C(2,2)
  EXPECT_EQ(sink.consumed(), 2u);
}

TEST(ConcurrentSinkTest, CountsAreExactUnderConcurrentProducers) {
  constexpr int kThreads = 8;
  constexpr int kBlocksPerThread = 2000;
  PairCountingSink counting;
  ConcurrentSink sink(counting);
  {
    ThreadPool pool(kThreads);
    for (int t = 0; t < kThreads; ++t) {
      pool.Submit([&sink] {
        for (int i = 0; i < kBlocksPerThread; ++i) {
          sink.Consume({1, 2});  // one comparison each
        }
      });
    }
    pool.Wait();
  }
  EXPECT_EQ(counting.num_blocks(),
            static_cast<uint64_t>(kThreads) * kBlocksPerThread);
  EXPECT_EQ(counting.comparisons(),
            static_cast<uint64_t>(kThreads) * kBlocksPerThread);
  EXPECT_EQ(sink.consumed(),
            static_cast<uint64_t>(kThreads) * kBlocksPerThread);
}

TEST(ConcurrentSinkTest, DonePropagatesFromInnerSink) {
  BlockCollection collection;
  CappedSink capped(collection, /*comparison_budget=*/1);
  ConcurrentSink sink(capped);
  EXPECT_FALSE(sink.Done());
  sink.Consume({1, 2});
  EXPECT_TRUE(sink.Done());
}

// The CappedSink contract under concurrency (see block_sink.h): wrapped
// in a ConcurrentSink, budget accounting stays exact — the forwarded
// comparison total equals the budget (when blocks carry one comparison
// each), the inner sink receives exactly those blocks, and every block
// consumed after the done_ transition is counted as dropped.
TEST(ConcurrentSinkTest, CappedSinkBudgetIsExactUnderConcurrentProducers) {
  constexpr uint64_t kBudget = 500;
  constexpr int kThreads = 8;
  constexpr int kBlocksPerThread = 1000;  // 8000 offered >> 500 budget
  BlockCollection collection;
  CappedSink capped(collection, kBudget);
  ConcurrentSink sink(capped);
  std::atomic<uint64_t> offered{0};
  {
    ThreadPool pool(kThreads);
    for (int t = 0; t < kThreads; ++t) {
      pool.Submit([&sink, &offered] {
        for (int i = 0; i < kBlocksPerThread; ++i) {
          // A polite producer polls Done() like the techniques do; some
          // blocks still race past the transition and must be dropped
          // and counted, never double-spent.
          if (sink.Done()) return;
          sink.Consume({7, 9});
          offered.fetch_add(1, std::memory_order_relaxed);
        }
      });
    }
    pool.Wait();
  }
  EXPECT_EQ(capped.comparisons(), kBudget);
  EXPECT_EQ(collection.NumBlocks(), kBudget);
  EXPECT_EQ(collection.TotalComparisons(), kBudget);
  // Everything offered either made it into the collection or was dropped
  // after the budget was spent — no block is lost or counted twice.
  EXPECT_EQ(offered.load(), kBudget + capped.dropped_blocks());
}

TEST(OffsetSinkTest, TranslatesShardLocalIds) {
  BlockCollection collection;
  OffsetSink sink(collection, /*offset=*/100);
  sink.Consume({0, 3, 7});
  ASSERT_EQ(collection.NumBlocks(), 1u);
  EXPECT_EQ(collection.blocks()[0], (Block{100, 103, 107}));
}

TEST(OffsetSinkTest, PropagatesDone) {
  BlockCollection collection;
  CappedSink capped(collection, 1);
  OffsetSink sink(capped, 10);
  EXPECT_FALSE(sink.Done());
  sink.Consume({0, 1});
  EXPECT_TRUE(sink.Done());
}

}  // namespace
}  // namespace sablock::engine
