// Tests for the common substrate: hashing, RNG, PairSet, timer, status.

#include <gtest/gtest.h>

#include <set>
#include <unordered_set>
#include <vector>

#include "common/hashing.h"
#include "common/pair_set.h"
#include "common/random.h"
#include "common/status.h"
#include "common/timer.h"

namespace sablock {
namespace {

TEST(Mix64Test, IsDeterministic) {
  EXPECT_EQ(Mix64(42), Mix64(42));
  EXPECT_NE(Mix64(42), Mix64(43));
}

TEST(Mix64Test, AvalanchesLowBits) {
  // Consecutive inputs should produce wildly different outputs.
  std::unordered_set<uint64_t> outputs;
  for (uint64_t i = 0; i < 1000; ++i) outputs.insert(Mix64(i));
  EXPECT_EQ(outputs.size(), 1000u);
}

TEST(HashCombineTest, OrderSensitive) {
  uint64_t ab = HashCombine(HashCombine(0, 1), 2);
  uint64_t ba = HashCombine(HashCombine(0, 2), 1);
  EXPECT_NE(ab, ba);
}

TEST(HashBytesTest, DistinguishesStringsAndSeeds) {
  EXPECT_EQ(HashBytes("abc"), HashBytes("abc"));
  EXPECT_NE(HashBytes("abc"), HashBytes("abd"));
  EXPECT_NE(HashBytes("abc", 1), HashBytes("abc", 2));
  EXPECT_NE(HashBytes(""), HashBytes("a"));
}

TEST(UniversalHashTest, StaysBelowPrime) {
  UniversalHash h = UniversalHash::FromSeed(123, 0);
  for (uint64_t x :
       {uint64_t{0}, uint64_t{1}, uint64_t{42}, ~uint64_t{0},
        UniversalHash::kPrime}) {
    EXPECT_LT(h(x), UniversalHash::kPrime);
  }
}

// Regression: an incomplete Mersenne reduction once let ~87% of outputs
// land at >= p, which collapsed minhash signatures into sentinel values
// and produced dataset-sized LSH buckets.
TEST(UniversalHashTest, FullyReducedOverManyFamilyMembersAndInputs) {
  for (uint64_t index = 0; index < 64; ++index) {
    UniversalHash h = UniversalHash::FromSeed(7, index);
    for (uint64_t i = 0; i < 512; ++i) {
      uint64_t x = Mix64(i);  // spread inputs over the full 64-bit range
      EXPECT_LT(h(x), UniversalHash::kPrime);
    }
  }
}

// Pins the branchless conditional-subtract reduction against the loop
// form it replaced: after folding the three 61-bit limbs the sum is
// < 3p, so exactly two conditional subtracts reach the canonical
// representative — any drift here would silently change every minhash
// signature and LSH bucket in the system.
TEST(UniversalHashTest, BranchlessReductionMatchesLoopReference) {
  for (uint64_t index = 0; index < 16; ++index) {
    UniversalHash h = UniversalHash::FromSeed(31, index);
    for (uint64_t i = 0; i < 256; ++i) {
      uint64_t x = Mix64(i);
      constexpr uint64_t kPrime = UniversalHash::kPrime;
      unsigned __int128 prod =
          static_cast<unsigned __int128>(h.a()) * x + h.b();
      uint64_t r = (static_cast<uint64_t>(prod) & kPrime) +
                   (static_cast<uint64_t>(prod >> 61) & kPrime) +
                   static_cast<uint64_t>(prod >> 122);
      while (r >= kPrime) r -= kPrime;
      EXPECT_EQ(h(x), r) << "index=" << index << " x=" << x;
    }
  }
}

TEST(Mix64BatchTest, MatchesScalarMix64) {
  std::vector<uint64_t> in;
  for (uint64_t i = 0; i < 1027; ++i) in.push_back(i * 0x9e3779b97f4a7c15ULL);
  std::vector<uint64_t> out(in.size());
  Mix64Batch(in.data(), in.size(), out.data());
  for (size_t i = 0; i < in.size(); ++i) {
    EXPECT_EQ(out[i], Mix64(in[i])) << i;
  }
}

TEST(UniversalHashTest, FamilyMembersDiffer) {
  UniversalHash h0 = UniversalHash::FromSeed(9, 0);
  UniversalHash h1 = UniversalHash::FromSeed(9, 1);
  int differing = 0;
  for (uint64_t x = 0; x < 100; ++x) {
    if (h0(x) != h1(x)) ++differing;
  }
  EXPECT_GT(differing, 90);
}

TEST(UniversalHashTest, DeterministicAcrossInstances) {
  UniversalHash a = UniversalHash::FromSeed(5, 7);
  UniversalHash b = UniversalHash::FromSeed(5, 7);
  for (uint64_t x = 0; x < 50; ++x) EXPECT_EQ(a(x), b(x));
}

TEST(RngTest, UniformIntBounds) {
  Rng rng(1);
  for (int i = 0; i < 1000; ++i) {
    int64_t v = rng.UniformInt(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
  }
}

TEST(RngTest, UniformIndexBounds) {
  Rng rng(2);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.UniformIndex(7), 7u);
  }
}

TEST(RngTest, DeterministicSequences) {
  Rng a(99);
  Rng b(99);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.UniformInt(0, 1000), b.UniformInt(0, 1000));
  }
}

TEST(RngTest, BernoulliExtremes) {
  Rng rng(3);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.Bernoulli(0.0));
    EXPECT_TRUE(rng.Bernoulli(1.0));
  }
}

TEST(RngTest, ShufflePreservesElements) {
  Rng rng(4);
  std::vector<int> v = {1, 2, 3, 4, 5, 6, 7, 8};
  std::vector<int> original = v;
  rng.Shuffle(&v);
  std::multiset<int> a(v.begin(), v.end());
  std::multiset<int> b(original.begin(), original.end());
  EXPECT_EQ(a, b);
}

TEST(RngTest, SampleIndicesDistinctAndInRange) {
  Rng rng(5);
  for (int trial = 0; trial < 20; ++trial) {
    std::vector<size_t> s = rng.SampleIndices(10, 4);
    ASSERT_EQ(s.size(), 4u);
    std::set<size_t> distinct(s.begin(), s.end());
    EXPECT_EQ(distinct.size(), 4u);
    for (size_t i : s) EXPECT_LT(i, 10u);
  }
}

TEST(RngTest, SampleIndicesFullRange) {
  Rng rng(6);
  std::vector<size_t> s = rng.SampleIndices(5, 5);
  std::set<size_t> distinct(s.begin(), s.end());
  EXPECT_EQ(distinct.size(), 5u);
}

TEST(RngTest, SkewedIndexPrefersSmall) {
  Rng rng(7);
  size_t low = 0;
  const int kTrials = 5000;
  for (int i = 0; i < kTrials; ++i) {
    if (rng.SkewedIndex(100, 1.3) < 10) ++low;
  }
  // A uniform draw would put ~10% in the first decile; the skewed draw
  // should put considerably more.
  EXPECT_GT(low, static_cast<size_t>(kTrials) / 5);
}

TEST(PairSetTest, InsertAndContains) {
  PairSet set;
  EXPECT_TRUE(set.Insert(1, 2));
  EXPECT_FALSE(set.Insert(1, 2));
  EXPECT_FALSE(set.Insert(2, 1));  // unordered
  EXPECT_TRUE(set.Contains(1, 2));
  EXPECT_TRUE(set.Contains(2, 1));
  EXPECT_FALSE(set.Contains(1, 3));
  EXPECT_EQ(set.size(), 1u);
}

TEST(PairSetTest, GrowsBeyondInitialCapacity) {
  PairSet set(4);
  for (uint32_t i = 0; i < 10000; ++i) {
    EXPECT_TRUE(set.Insert(i, i + 1));
  }
  EXPECT_EQ(set.size(), 10000u);
  for (uint32_t i = 0; i < 10000; ++i) {
    EXPECT_TRUE(set.Contains(i, i + 1));
  }
}

TEST(PairSetTest, ForEachVisitsAllPairsOnce) {
  PairSet set;
  set.Insert(3, 7);
  set.Insert(1, 9);
  set.Insert(2, 5);
  std::set<std::pair<uint32_t, uint32_t>> seen;
  set.ForEach([&seen](uint32_t a, uint32_t b) { seen.emplace(a, b); });
  EXPECT_EQ(seen.size(), 3u);
  EXPECT_TRUE(seen.count({3, 7}));
  EXPECT_TRUE(seen.count({1, 9}));
  EXPECT_TRUE(seen.count({2, 5}));
}

TEST(PairSetTest, MatchesReferenceImplementation) {
  PairSet set;
  std::set<std::pair<uint32_t, uint32_t>> reference;
  Rng rng(8);
  for (int i = 0; i < 5000; ++i) {
    uint32_t a = static_cast<uint32_t>(rng.UniformIndex(200));
    uint32_t b = static_cast<uint32_t>(rng.UniformIndex(200));
    if (a == b) continue;
    uint32_t lo = std::min(a, b);
    uint32_t hi = std::max(a, b);
    bool was_new = reference.emplace(lo, hi).second;
    EXPECT_EQ(set.Insert(a, b), was_new);
  }
  EXPECT_EQ(set.size(), reference.size());
}

TEST(StatusTest, OkAndError) {
  Status ok = Status::Ok();
  EXPECT_TRUE(ok.ok());
  EXPECT_TRUE(ok.message().empty());
  Status err = Status::Error("boom");
  EXPECT_FALSE(err.ok());
  EXPECT_EQ(err.message(), "boom");
}

TEST(WallTimerTest, MeasuresNonNegativeMonotonicTime) {
  WallTimer timer;
  double t1 = timer.Seconds();
  double t2 = timer.Seconds();
  EXPECT_GE(t1, 0.0);
  EXPECT_GE(t2, t1);
  timer.Reset();
  EXPECT_GE(timer.Seconds(), 0.0);
  EXPECT_GE(timer.Millis(), 0.0);
}

}  // namespace
}  // namespace sablock
