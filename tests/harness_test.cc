// Tests for the evaluation harness (technique runner, best-by-FM sweep,
// table printer).

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>

#include "baselines/standard_blocking.h"
#include "baselines/sorted_neighbourhood.h"
#include "eval/harness.h"

namespace sablock::eval {
namespace {

using baselines::ExactKey;
using baselines::SortedNeighbourhoodArray;
using baselines::StandardBlocking;
using data::Dataset;
using data::Schema;

Dataset SmallDataset() {
  Dataset d{Schema({"name"})};
  d.Add({{"anna"}}, 0);
  d.Add({{"anna"}}, 0);
  d.Add({{"bert"}}, 1);
  d.Add({{"carla"}}, 2);
  return d;
}

TEST(RunTechniqueTest, ReportsNameTimeAndMetrics) {
  Dataset d = SmallDataset();
  StandardBlocking tblo(ExactKey({"name"}));
  TechniqueResult r = RunTechnique(tblo, d);
  EXPECT_EQ(r.name, "TBlo");
  EXPECT_GE(r.seconds, 0.0);
  EXPECT_DOUBLE_EQ(r.metrics.pc, 1.0);
  EXPECT_DOUBLE_EQ(r.metrics.pq, 1.0);
}

TEST(RunAllTest, OneResultPerSetting) {
  Dataset d = SmallDataset();
  std::vector<std::unique_ptr<core::BlockingTechnique>> settings;
  settings.push_back(
      std::make_unique<StandardBlocking>(ExactKey({"name"})));
  for (int w : {2, 3}) {
    settings.push_back(
        std::make_unique<SortedNeighbourhoodArray>(ExactKey({"name"}), w));
  }
  std::vector<TechniqueResult> results = RunAll(settings, d);
  ASSERT_EQ(results.size(), 3u);
  EXPECT_EQ(results[0].name, "TBlo");
  EXPECT_EQ(results[1].name, "SorA(w=2)");
}

TEST(BestByFmTest, PicksHighestFm) {
  std::vector<TechniqueResult> results(3);
  results[0].metrics.fm = 0.4;
  results[1].metrics.fm = 0.9;
  results[2].metrics.fm = 0.7;
  EXPECT_EQ(BestByFm(results), 1u);
  EXPECT_EQ(BestByFm({}), 0u);
}

TEST(TablePrinterTest, PrintsAlignedRowsAndPadsShortOnes) {
  TablePrinter table({"name", "value"});
  table.AddRow({"short", "1"});
  table.AddRow({"a much longer cell", "2"});
  table.AddRow({"padded short row"});
  testing::internal::CaptureStdout();
  table.Print();
  std::string out = testing::internal::GetCapturedStdout();
  EXPECT_NE(out.find("name"), std::string::npos);
  EXPECT_NE(out.find("a much longer cell"), std::string::npos);
  EXPECT_NE(out.find("padded short row"), std::string::npos);
  // Header, rule, three rows.
  EXPECT_EQ(std::count(out.begin(), out.end(), '\n'), 5);
}

TEST(TablePrinterDeathTest, RejectsOverlongRows) {
  TablePrinter table({"name", "value"});
  EXPECT_DEATH(table.AddRow({"a", "b", "dropped silently before"}),
               "more cells than headers");
}

}  // namespace
}  // namespace sablock::eval
