// Golden equivalence for the meta-blocking refactor: the pipeline
// `token-blocking | purge | meta` must reproduce the legacy monolithic
// `MetaBlocking::Run` byte-identically — same blocks, same order — for
// every weighting × pruning combination, both single-threaded and
// through the sharded engine (merge=collect, where the legacy baseline
// and the pipelined blocker each run whole per record shard). This keeps
// the thin wrapper covered and pins the refactored graph phase to the
// original algorithm.
//
// (The absolute output is additionally pinned by feature_golden_test's
// pre-refactor meta golden hash; this test sweeps the full 20-combo grid
// for wrapper/pipeline equivalence.)

#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "api/registry.h"
#include "baselines/meta_blocking.h"
#include "common/string_util.h"
#include "core/blocking.h"
#include "data/cora_generator.h"
#include "engine/sharded_executor.h"
#include "pipeline/pipeline.h"

namespace sablock {
namespace {

using baselines::MetaBlocking;
using baselines::MetaPruning;
using baselines::MetaPruningName;
using baselines::MetaWeighting;
using baselines::MetaWeightingName;
using core::BlockCollection;

constexpr MetaWeighting kWeightings[] = {
    MetaWeighting::kArcs, MetaWeighting::kCbs, MetaWeighting::kEcbs,
    MetaWeighting::kJs, MetaWeighting::kEjs};
constexpr MetaPruning kPrunings[] = {MetaPruning::kWep, MetaPruning::kCep,
                                     MetaPruning::kWnp, MetaPruning::kCnp};
constexpr size_t kPurgeSize = 300;

data::Dataset GoldenDataset() {
  data::CoraGeneratorConfig config;
  config.num_entities = 40;
  config.num_records = 400;
  config.seed = 42;
  return data::GenerateCoraLike(config);
}

std::unique_ptr<pipeline::PipelinedBlocker> BuildPipeline(MetaWeighting w,
                                                          MetaPruning p) {
  const std::string spec =
      "token-blocking:attrs=authors+title | purge:max_size=" +
      std::to_string(kPurgeSize) +
      " | meta:weight=" + ToLower(MetaWeightingName(w)) +
      ",prune=" + ToLower(MetaPruningName(p));
  std::unique_ptr<pipeline::PipelinedBlocker> pipelined;
  Status status = pipeline::Build(spec, &pipelined);
  EXPECT_TRUE(status.ok()) << spec << ": " << status.message();
  return pipelined;
}

TEST(PipelineGoldenTest, AllCombosMatchLegacyMetaBlockingByteIdentically) {
  data::Dataset d = GoldenDataset();
  for (MetaWeighting w : kWeightings) {
    for (MetaPruning p : kPrunings) {
      MetaBlocking legacy({"authors", "title"}, w, p, kPurgeSize);
      BlockCollection expected;
      legacy.Run(d, expected);

      std::unique_ptr<pipeline::PipelinedBlocker> pipelined =
          BuildPipeline(w, p);
      ASSERT_NE(pipelined, nullptr);
      BlockCollection actual;
      pipelined->Run(d, actual);

      ASSERT_GT(expected.NumBlocks(), 0u) << legacy.name();
      EXPECT_EQ(actual.blocks(), expected.blocks()) << legacy.name();
    }
  }
}

TEST(PipelineGoldenTest, AllCombosMatchThroughShardedEngineCollect) {
  data::Dataset d = GoldenDataset();
  engine::ExecutionSpec spec;
  ASSERT_TRUE(engine::ExecutionSpec::Parse("threads=2,shards=3,merge=collect",
                                           &spec)
                  .ok());
  engine::ShardedExecutor executor(spec);
  for (MetaWeighting w : kWeightings) {
    for (MetaPruning p : kPrunings) {
      MetaBlocking legacy({"authors", "title"}, w, p, kPurgeSize);
      BlockCollection expected = executor.ExecuteCollect(legacy, d);

      std::unique_ptr<pipeline::PipelinedBlocker> pipelined =
          BuildPipeline(w, p);
      ASSERT_NE(pipelined, nullptr);
      BlockCollection actual = executor.ExecuteCollect(*pipelined, d);

      ASSERT_GT(expected.NumBlocks(), 0u) << legacy.name();
      EXPECT_EQ(actual.blocks(), expected.blocks()) << legacy.name();
    }
  }
}

TEST(PipelineGoldenTest, TokenBlockingHelperEqualsTokenPurgePipeline) {
  data::Dataset d = GoldenDataset();
  BlockCollection legacy =
      baselines::TokenBlocking(d, {"authors", "title"}, kPurgeSize);
  std::unique_ptr<pipeline::PipelinedBlocker> pipelined;
  ASSERT_TRUE(pipeline::Build("token-blocking:attrs=authors+title | "
                              "purge:max_size=" +
                                  std::to_string(kPurgeSize),
                              &pipelined)
                  .ok());
  BlockCollection actual;
  pipelined->Run(d, actual);
  ASSERT_GT(legacy.NumBlocks(), 0u);
  EXPECT_EQ(actual.blocks(), legacy.blocks());
}

TEST(PipelineGoldenTest, RegisteredMetaBlockerStillMatchesLegacyClass) {
  // The `meta` registry entry (the one-technique packaging) must keep
  // producing the same blocks as the pipeline it now wraps.
  data::Dataset d = GoldenDataset();
  std::unique_ptr<core::BlockingTechnique> registered;
  ASSERT_TRUE(api::BlockerRegistry::Global()
                  .Create("meta:weighting=ejs,pruning=cnp,max-block=" +
                              std::to_string(kPurgeSize) +
                              ",attrs=authors+title",
                          &registered)
                  .ok());
  BlockCollection from_registry;
  registered->Run(d, from_registry);

  std::unique_ptr<pipeline::PipelinedBlocker> pipelined =
      BuildPipeline(MetaWeighting::kEjs, MetaPruning::kCnp);
  BlockCollection from_pipeline;
  pipelined->Run(d, from_pipeline);
  EXPECT_EQ(from_registry.blocks(), from_pipeline.blocks());
}

}  // namespace
}  // namespace sablock
