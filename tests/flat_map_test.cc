// Tests for the open-addressing FlatMap (common/flat_map.h): hash-map
// semantics against a std::unordered_map reference under a random
// insert/erase workload, backward-shift deletion correctness, and the
// deterministic slot-order iteration contract MetaPrune relies on.

#include <gtest/gtest.h>

#include <cstdint>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/flat_map.h"
#include "common/random.h"

namespace sablock {
namespace {

TEST(FlatMapTest, InsertFindAndOperatorBracket) {
  FlatMap<uint64_t, int> m;
  EXPECT_TRUE(m.empty());
  EXPECT_EQ(m.Find(7), nullptr);
  m[7] = 70;
  m[9] = 90;
  EXPECT_EQ(m.size(), 2u);
  ASSERT_NE(m.Find(7), nullptr);
  EXPECT_EQ(*m.Find(7), 70);
  EXPECT_EQ(*m.Find(9), 90);
  EXPECT_FALSE(m.Contains(8));
  // operator[] default-constructs on first access, like std::map.
  EXPECT_EQ(m[8], 0);
  EXPECT_EQ(m.size(), 3u);
}

TEST(FlatMapTest, TryEmplaceReportsInsertion) {
  FlatMap<uint32_t, std::vector<int>> m;
  auto [v1, fresh1] = m.TryEmplace(5);
  EXPECT_TRUE(fresh1);
  v1->push_back(1);
  auto [v2, fresh2] = m.TryEmplace(5);
  EXPECT_FALSE(fresh2);
  EXPECT_EQ(v2, v1);
  EXPECT_EQ(v2->size(), 1u);
}

TEST(FlatMapTest, GrowsPastInitialCapacityWithoutLosingEntries) {
  FlatMap<uint64_t, uint64_t> m;
  constexpr uint64_t kN = 10000;
  for (uint64_t i = 0; i < kN; ++i) m[i] = i * 3;
  EXPECT_EQ(m.size(), kN);
  // Power-of-two capacity, load factor below the 2/3 growth threshold.
  EXPECT_EQ(m.capacity() & (m.capacity() - 1), 0u);
  EXPECT_LT(3 * m.size(), 2 * m.capacity());
  for (uint64_t i = 0; i < kN; ++i) {
    ASSERT_NE(m.Find(i), nullptr) << i;
    EXPECT_EQ(*m.Find(i), i * 3);
  }
  EXPECT_FALSE(m.Contains(kN + 1));
}

TEST(FlatMapTest, ReserveAvoidsGrowth) {
  FlatMap<uint64_t, int> m;
  m.reserve(1000);
  size_t cap = m.capacity();
  for (uint64_t i = 0; i < 1000; ++i) m[i] = 1;
  EXPECT_EQ(m.capacity(), cap);
}

TEST(FlatMapTest, EraseBackwardShiftKeepsProbeChainsIntact) {
  // Adversarial case for open addressing: many keys colliding into the
  // same home slot, then deleting from the middle of the probe chain.
  // With tombstone-free backward-shift deletion every survivor must stay
  // findable.
  struct CollidingHash {
    uint64_t operator()(uint64_t key) const { return key % 4; }
  };
  FlatMap<uint64_t, uint64_t, CollidingHash> m;
  for (uint64_t i = 0; i < 64; ++i) m[i] = i;
  Rng rng(99);
  std::vector<uint64_t> alive;
  for (uint64_t i = 0; i < 64; ++i) alive.push_back(i);
  while (!alive.empty()) {
    size_t pick = rng.UniformIndex(alive.size());
    uint64_t key = alive[pick];
    alive.erase(alive.begin() + static_cast<ptrdiff_t>(pick));
    EXPECT_TRUE(m.Erase(key));
    EXPECT_FALSE(m.Contains(key));
    EXPECT_FALSE(m.Erase(key));  // double erase is a no-op
    EXPECT_EQ(m.size(), alive.size());
    for (uint64_t k : alive) {
      ASSERT_NE(m.Find(k), nullptr) << "lost " << k << " after erasing "
                                    << key;
      EXPECT_EQ(*m.Find(k), k);
    }
  }
}

TEST(FlatMapTest, MatchesUnorderedMapUnderRandomWorkload) {
  FlatMap<uint64_t, int> m;
  std::unordered_map<uint64_t, int> ref;
  Rng rng(7);
  for (int step = 0; step < 20000; ++step) {
    uint64_t key = static_cast<uint64_t>(rng.UniformInt(0, 500));
    if (rng.UniformInt(0, 2) == 0) {
      EXPECT_EQ(m.Erase(key), ref.erase(key) > 0);
    } else {
      int value = static_cast<int>(rng.UniformInt(0, 1000));
      m[key] = value;
      ref[key] = value;
    }
  }
  EXPECT_EQ(m.size(), ref.size());
  for (const auto& [key, value] : ref) {
    ASSERT_NE(m.Find(key), nullptr) << key;
    EXPECT_EQ(*m.Find(key), value);
  }
}

TEST(FlatMapTest, ClearKeepsCapacity) {
  FlatMap<uint64_t, int> m;
  for (uint64_t i = 0; i < 100; ++i) m[i] = 1;
  size_t cap = m.capacity();
  m.clear();
  EXPECT_TRUE(m.empty());
  EXPECT_EQ(m.capacity(), cap);
  EXPECT_FALSE(m.Contains(5));
  m[5] = 2;
  EXPECT_EQ(*m.Find(5), 2);
}

TEST(FlatMapTest, IterationVisitsEveryLiveEntryOnce) {
  FlatMap<uint64_t, uint64_t> m;
  for (uint64_t i = 0; i < 777; ++i) m[i * 17] = i;
  m.Erase(0);
  m.Erase(17 * 5);
  std::unordered_map<uint64_t, uint64_t> seen;
  for (const auto& [key, value] : m) {
    EXPECT_TRUE(seen.emplace(key, value).second) << "duplicate " << key;
  }
  EXPECT_EQ(seen.size(), m.size());
  for (uint64_t i = 1; i < 777; ++i) {
    if (i == 5) continue;
    EXPECT_EQ(seen.at(i * 17), i);
  }
}

// The contract MetaPrune's reproducibility rests on: two maps populated
// by the same insert/erase sequence iterate in the same order — the
// order is a pure function of the key hashes and the history, with no
// per-instance or per-process randomization.
TEST(FlatMapTest, IterationOrderIsDeterministicForSameHistory) {
  auto build = [] {
    FlatMap<uint64_t, int> m;
    Rng rng(1234);
    for (int i = 0; i < 5000; ++i) {
      m[static_cast<uint64_t>(rng.UniformInt(0, 2000))] = i;
    }
    for (int i = 0; i < 500; ++i) {
      m.Erase(static_cast<uint64_t>(rng.UniformInt(0, 2000)));
    }
    return m;
  };
  FlatMap<uint64_t, int> m1 = build();
  FlatMap<uint64_t, int> m2 = build();
  std::vector<std::pair<uint64_t, int>> o1, o2;
  for (const auto& [key, value] : m1) o1.emplace_back(key, value);
  for (const auto& [key, value] : m2) o2.emplace_back(key, value);
  EXPECT_EQ(o1, o2);
  // ForEach sees the same order as the const iterator.
  std::vector<std::pair<uint64_t, int>> o3;
  m1.ForEach([&](uint64_t key, int& value) { o3.emplace_back(key, value); });
  EXPECT_EQ(o1, o3);
}

}  // namespace
}  // namespace sablock
