// Tests for common/string_util.

#include <gtest/gtest.h>

#include "common/string_util.h"

namespace sablock {
namespace {

TEST(ToLowerTest, Basic) {
  EXPECT_EQ(ToLower("AbC 12!"), "abc 12!");
  EXPECT_EQ(ToLower(""), "");
}

TEST(ToUpperTest, Basic) {
  EXPECT_EQ(ToUpper("aBc"), "ABC");
}

TEST(TrimTest, StripsBothEnds) {
  EXPECT_EQ(Trim("  a b  "), "a b");
  EXPECT_EQ(Trim("\t\nx\r "), "x");
  EXPECT_EQ(Trim("    "), "");
  EXPECT_EQ(Trim(""), "");
}

TEST(SplitTest, KeepsEmptyFields) {
  std::vector<std::string> parts = Split("a,,b,", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "");
  EXPECT_EQ(parts[2], "b");
  EXPECT_EQ(parts[3], "");
}

TEST(SplitTest, NoSeparator) {
  std::vector<std::string> parts = Split("abc", ',');
  ASSERT_EQ(parts.size(), 1u);
  EXPECT_EQ(parts[0], "abc");
}

TEST(SplitWordsTest, DropsEmptyRuns) {
  std::vector<std::string> words = SplitWords("  foo   bar\tbaz\n");
  ASSERT_EQ(words.size(), 3u);
  EXPECT_EQ(words[0], "foo");
  EXPECT_EQ(words[1], "bar");
  EXPECT_EQ(words[2], "baz");
}

TEST(SplitWordsTest, EmptyInput) {
  EXPECT_TRUE(SplitWords("").empty());
  EXPECT_TRUE(SplitWords("   ").empty());
}

TEST(JoinTest, Basic) {
  EXPECT_EQ(Join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(Join({}, ","), "");
  EXPECT_EQ(Join({"x"}, ","), "x");
}

TEST(NormalizeWhitespaceTest, CollapsesRuns) {
  EXPECT_EQ(NormalizeWhitespace("  a   b \t c "), "a b c");
}

TEST(NormalizeForMatchingTest, LowercasesAndStripsPunctuation) {
  EXPECT_EQ(NormalizeForMatching("Fahlman, S., & Lebiere, C."),
            "fahlman s lebiere c");
  EXPECT_EQ(NormalizeForMatching("The Cascade-Correlation architecture"),
            "the cascade correlation architecture");
  EXPECT_EQ(NormalizeForMatching(""), "");
  EXPECT_EQ(NormalizeForMatching("!!!"), "");
}

TEST(NormalizeForMatchingTest, KeepsDigits) {
  EXPECT_EQ(NormalizeForMatching("TR-95 v2"), "tr 95 v2");
}

TEST(StartsWithTest, Basic) {
  EXPECT_TRUE(StartsWith("foobar", "foo"));
  EXPECT_TRUE(StartsWith("foo", ""));
  EXPECT_FALSE(StartsWith("fo", "foo"));
  EXPECT_FALSE(StartsWith("xfoo", "foo"));
}

TEST(FormatDoubleTest, RoundsToDigits) {
  EXPECT_EQ(FormatDouble(0.12345, 2), "0.12");
  EXPECT_EQ(FormatDouble(0.999, 2), "1.00");
  EXPECT_EQ(FormatDouble(-1.5, 1), "-1.5");
  EXPECT_EQ(FormatDouble(3.0, 0), "3");
}

}  // namespace
}  // namespace sablock
