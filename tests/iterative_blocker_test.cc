// Tests for connected components and the HARRA-style iterative LSH
// blocker (related-work extension).

#include <gtest/gtest.h>

#include "run_streaming.h"

#include "core/block_utils.h"
#include "core/iterative_blocker.h"
#include "data/cora_generator.h"
#include "eval/metrics.h"

namespace sablock::core {
namespace {

using data::Dataset;
using data::Schema;

TEST(ConnectedComponentsTest, MergesOverlappingBlocks) {
  BlockCollection c;
  c.Add({0, 1});
  c.Add({1, 2});
  c.Add({4, 5});
  BlockCollection components = ConnectedComponents(c, 6);
  EXPECT_EQ(components.NumBlocks(), 2u);
  EXPECT_TRUE(components.InSameBlock(0, 2));  // transitive closure
  EXPECT_TRUE(components.InSameBlock(4, 5));
  EXPECT_FALSE(components.InSameBlock(0, 4));
}

TEST(ConnectedComponentsTest, DropsSingletonsAndUnblockedRecords) {
  BlockCollection c;
  c.Add({3});
  c.Add({0, 1});
  BlockCollection components = ConnectedComponents(c, 10);
  EXPECT_EQ(components.NumBlocks(), 1u);
  EXPECT_EQ(components.blocks()[0], (Block{0, 1}));
}

TEST(ConnectedComponentsTest, EmptyInput) {
  EXPECT_EQ(ConnectedComponents(BlockCollection{}, 5).NumBlocks(), 0u);
}

Dataset ClusteredDataset() {
  Dataset d{Schema({"text"})};
  // A "chain" cluster: A≈B, B≈C but A and C are less similar — iterative
  // merging should pull all three together.
  d.Add({{"the cascade correlation learning architecture neural"}}, 0);
  d.Add({{"the cascade correlation learning architecture"}}, 0);
  d.Add({{"cascade correlation learning"}}, 0);
  d.Add({{"support vector machines classification margin kernels"}}, 1);
  d.Add({{"support vector machine classification margin kernel"}}, 1);
  d.Add({{"completely different gibberish tokens qwertyzxcv"}}, 2);
  return d;
}

LshParams IterParams() {
  LshParams p;
  p.k = 2;
  p.l = 12;
  p.q = 3;
  p.attributes = {"text"};
  p.seed = 19;
  return p;
}

TEST(IterativeLshBlockerTest, MergesObviousDuplicates) {
  Dataset d = ClusteredDataset();
  IterativeLshBlocker blocker(IterParams(), /*merge_threshold=*/0.5,
                              /*iterations=*/3);
  BlockCollection blocks = RunStreaming(blocker, d);
  EXPECT_TRUE(blocks.InSameBlock(0, 1));
  EXPECT_TRUE(blocks.InSameBlock(3, 4));
  EXPECT_FALSE(blocks.InSameBlock(0, 5));
  EXPECT_FALSE(blocks.InSameBlock(0, 3));
}

TEST(IterativeLshBlockerTest, BlocksAreDisjoint) {
  Dataset d = ClusteredDataset();
  IterativeLshBlocker blocker(IterParams(), 0.4, 3);
  BlockCollection blocks = RunStreaming(blocker, d);
  std::vector<int> seen(d.size(), 0);
  for (const auto& b : blocks.blocks()) {
    for (auto id : b) ++seen[id];
  }
  for (int count : seen) EXPECT_LE(count, 1);
}

TEST(IterativeLshBlockerTest, MoreIterationsNeverLoseMerges) {
  data::CoraGeneratorConfig config;
  config.num_entities = 20;
  config.num_records = 150;
  config.seed = 91;
  Dataset d = GenerateCoraLike(config);
  LshParams p = IterParams();
  p.attributes = {"authors", "title"};

  double pc1 = eval::Evaluate(
                   d, RunStreaming(IterativeLshBlocker(p, 0.5, 1), d)).pc;
  double pc3 = eval::Evaluate(
                   d, RunStreaming(IterativeLshBlocker(p, 0.5, 3), d)).pc;
  EXPECT_GE(pc3, pc1 - 1e-12);
}

TEST(IterativeLshBlockerTest, ThresholdOneMergesOnlyIdenticalSignatures) {
  Dataset d = ClusteredDataset();
  IterativeLshBlocker strict(IterParams(), 1.0, 2);
  BlockCollection blocks = RunStreaming(strict, d);
  // Only signature-identical records may merge; the chain cluster's
  // distinct texts stay apart.
  EXPECT_FALSE(blocks.InSameBlock(0, 2));
}

TEST(IterativeLshBlockerTest, NameEncodesParameters) {
  EXPECT_EQ(IterativeLshBlocker(IterParams(), 0.5, 3).name(),
            "HARRA(k=2,l=12,t=50%,it=3)");
}

TEST(IterativeLshBlockerDeathTest, RejectsBadConfig) {
  EXPECT_DEATH(IterativeLshBlocker(IterParams(), 1.5, 2), "CHECK");
  EXPECT_DEATH(IterativeLshBlocker(IterParams(), 0.5, 0), "CHECK");
}

}  // namespace
}  // namespace sablock::core
