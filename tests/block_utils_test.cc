// Tests for block purging / filtering / redundancy-dropping utilities.

#include <gtest/gtest.h>

#include "core/block_utils.h"

namespace sablock::core {
namespace {

TEST(PurgeLargeBlocksTest, RemovesOnlyOversized) {
  BlockCollection c;
  c.Add({0, 1});
  c.Add({2, 3, 4});
  c.Add({5, 6, 7, 8, 9});
  BlockCollection purged = PurgeLargeBlocks(c, 3);
  EXPECT_EQ(purged.NumBlocks(), 2u);
  EXPECT_TRUE(purged.InSameBlock(0, 1));
  EXPECT_TRUE(purged.InSameBlock(2, 4));
  EXPECT_FALSE(purged.InSameBlock(5, 6));
}

TEST(PurgeLargeBlocksTest, EmptyCollection) {
  EXPECT_EQ(PurgeLargeBlocks(BlockCollection{}, 5).NumBlocks(), 0u);
}

TEST(PurgeLargeBlocksDeathTest, RejectsDegenerateCap) {
  BlockCollection c;
  EXPECT_DEATH(PurgeLargeBlocks(c, 1), "CHECK");
}

TEST(FilterBlocksPerRecordTest, RatioOneKeepsEverything) {
  BlockCollection c;
  c.Add({0, 1});
  c.Add({0, 1, 2});
  BlockCollection filtered = FilterBlocksPerRecord(c, 1.0);
  EXPECT_EQ(filtered.DistinctPairs().size(), c.DistinctPairs().size());
}

TEST(FilterBlocksPerRecordTest, PrefersSmallBlocks) {
  BlockCollection c;
  c.Add({0, 1});           // small: kept by 0 and 1
  c.Add({0, 1, 2, 3, 4});  // large: dropped by 0 and 1 at ratio 0.5
  BlockCollection filtered = FilterBlocksPerRecord(c, 0.5);
  EXPECT_TRUE(filtered.InSameBlock(0, 1));
  // Records 2,3,4 are only in the big block; they keep it (their only
  // block), but 0 and 1 no longer vouch for it.
  bool zero_in_big = false;
  for (const auto& b : filtered.blocks()) {
    if (b.size() > 2) {
      for (auto id : b) zero_in_big |= (id == 0);
    }
  }
  EXPECT_FALSE(zero_in_big);
}

TEST(FilterBlocksPerRecordTest, SingletonRemnantsAreDropped) {
  BlockCollection c;
  c.Add({0, 1});
  c.Add({1, 2, 3});
  BlockCollection filtered = FilterBlocksPerRecord(c, 0.4);
  for (const auto& b : filtered.blocks()) {
    EXPECT_GE(b.size(), 2u);
  }
}

TEST(FilterBlocksPerRecordTest, NeverAddsPairs) {
  BlockCollection c;
  c.Add({0, 1, 2});
  c.Add({2, 3});
  c.Add({0, 3, 4});
  PairSet before = c.DistinctPairs();
  PairSet after = FilterBlocksPerRecord(c, 0.6).DistinctPairs();
  EXPECT_LE(after.size(), before.size());
  after.ForEach([&before](uint32_t a, uint32_t b) {
    EXPECT_TRUE(before.Contains(a, b));
  });
}

TEST(DropRedundantBlocksTest, RemovesContainedBlocks) {
  BlockCollection c;
  c.Add({0, 1});
  c.Add({0, 1});        // exact duplicate
  c.Add({0, 1, 2});     // adds (0,2), (1,2): kept
  BlockCollection slim = DropRedundantBlocks(c);
  EXPECT_EQ(slim.NumBlocks(), 2u);
  EXPECT_EQ(slim.DistinctPairs().size(), c.DistinctPairs().size());
}

TEST(DropRedundantBlocksTest, PreservesPairCoverageExactly) {
  BlockCollection c;
  c.Add({0, 1, 2, 3});
  c.Add({1, 2});
  c.Add({4, 5});
  c.Add({4, 5});
  BlockCollection slim = DropRedundantBlocks(c);
  PairSet before = c.DistinctPairs();
  PairSet after = slim.DistinctPairs();
  EXPECT_EQ(before.size(), after.size());
  before.ForEach([&after](uint32_t a, uint32_t b) {
    EXPECT_TRUE(after.Contains(a, b));
  });
  EXPECT_LT(slim.TotalComparisons(), c.TotalComparisons());
}

TEST(DropRedundantBlocksTest, EmptyAndSingletonBlocks) {
  BlockCollection c;
  c.Add({7});
  BlockCollection slim = DropRedundantBlocks(c);
  EXPECT_EQ(slim.NumBlocks(), 0u);  // no pairs, nothing to keep
}

}  // namespace
}  // namespace sablock::core
