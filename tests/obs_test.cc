// Unit and concurrency tests for the src/obs telemetry core: counters,
// gauges, fixed-bucket histograms and their registry; the JSON and
// Prometheus export sinks; trace spans and the bounded tracer ring. The
// multi-threaded hammer runs under TSan via the `concurrency` ctest
// label.

#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "gtest/gtest.h"
#include "obs/export.h"
#include "obs/metrics.h"
#include "obs/span.h"
#include "report/json.h"

namespace sablock::obs {
namespace {

TEST(CounterTest, AddsAndReads) {
  Counter c;
  EXPECT_EQ(c.value(), 0u);
  c.Add();
  c.Add(41);
  EXPECT_EQ(c.value(), 42u);
}

TEST(GaugeTest, SetAddSub) {
  Gauge g;
  g.Set(10);
  g.Add(5);
  g.Sub(7);
  EXPECT_EQ(g.value(), 8);
  g.Sub(20);
  EXPECT_EQ(g.value(), -12);
}

TEST(HistogramTest, BucketEdgesAreInclusiveUpperBounds) {
  Histogram h({1.0, 10.0, 100.0});
  h.Observe(0.5);    // <= 1
  h.Observe(1.0);    // == edge: belongs to the first bucket
  h.Observe(1.01);   // <= 10
  h.Observe(10.0);   // == edge
  h.Observe(99.9);   // <= 100
  h.Observe(1000.0); // +Inf overflow
  std::vector<uint64_t> buckets = h.bucket_counts();
  ASSERT_EQ(buckets.size(), 4u);
  EXPECT_EQ(buckets[0], 2u);
  EXPECT_EQ(buckets[1], 2u);
  EXPECT_EQ(buckets[2], 1u);
  EXPECT_EQ(buckets[3], 1u);
  EXPECT_EQ(h.count(), 6u);
  EXPECT_DOUBLE_EQ(h.sum(), 0.5 + 1.0 + 1.01 + 10.0 + 99.9 + 1000.0);
}

TEST(HistogramTest, LatencyBucketsAreSortedAndCoverSeconds) {
  std::vector<double> bounds = Histogram::LatencyBuckets();
  ASSERT_FALSE(bounds.empty());
  for (size_t i = 1; i < bounds.size(); ++i) {
    EXPECT_LT(bounds[i - 1], bounds[i]);
  }
  EXPECT_LE(bounds.front(), 1e-6);
  EXPECT_GE(bounds.back(), 1.0);
}

TEST(MetricsRegistryTest, ResolvesStablePointersPerLabel) {
  MetricsRegistry registry;
  Counter* a = registry.GetCounter("reqs", "requests", "op", "insert");
  Counter* b = registry.GetCounter("reqs", "requests", "op", "query");
  Counter* a2 = registry.GetCounter("reqs", "requests", "op", "insert");
  EXPECT_NE(a, b);
  EXPECT_EQ(a, a2);
  a->Add(3);
  b->Add(1);

  MetricsSnapshot snapshot = registry.Snapshot();
  const SampleSnapshot* insert = snapshot.Find("reqs", "insert");
  const SampleSnapshot* query = snapshot.Find("reqs", "query");
  ASSERT_NE(insert, nullptr);
  ASSERT_NE(query, nullptr);
  EXPECT_EQ(insert->counter, 3u);
  EXPECT_EQ(query->counter, 1u);
  EXPECT_EQ(snapshot.Find("reqs", "absent"), nullptr);
  EXPECT_EQ(snapshot.Find("absent"), nullptr);
}

TEST(MetricsRegistryTest, SnapshotSortsFamiliesAndSamples) {
  MetricsRegistry registry;
  registry.GetCounter("zeta", "z");
  registry.GetGauge("alpha", "a");
  registry.GetCounter("mid", "m", "k", "b");
  registry.GetCounter("mid", "m", "k", "a");

  MetricsSnapshot snapshot = registry.Snapshot();
  ASSERT_EQ(snapshot.families.size(), 3u);
  EXPECT_EQ(snapshot.families[0].name, "alpha");
  EXPECT_EQ(snapshot.families[1].name, "mid");
  EXPECT_EQ(snapshot.families[2].name, "zeta");
  ASSERT_EQ(snapshot.families[1].samples.size(), 2u);
  EXPECT_EQ(snapshot.families[1].samples[0].label_value, "a");
  EXPECT_EQ(snapshot.families[1].samples[1].label_value, "b");
  EXPECT_EQ(snapshot.families[0].type, MetricType::kGauge);
}

TEST(ExportTest, PrometheusTextShape) {
  MetricsRegistry registry;
  registry.GetCounter("hits", "cache hits", "column", "token")->Add(7);
  registry.GetGauge("depth", "queue depth")->Set(-2);
  Histogram* h = registry.GetHistogram("lat_seconds", "latency",
                                       {0.5, 2.0}, "op", "query");
  h->Observe(0.25);
  h->Observe(1.0);
  h->Observe(10.0);

  std::string text = ToPrometheusText(registry.Snapshot());
  EXPECT_NE(text.find("# HELP hits cache hits\n"), std::string::npos);
  EXPECT_NE(text.find("# TYPE hits counter\n"), std::string::npos);
  EXPECT_NE(text.find("hits{column=\"token\"} 7\n"), std::string::npos);
  EXPECT_NE(text.find("depth -2\n"), std::string::npos);
  EXPECT_NE(text.find("# TYPE lat_seconds histogram\n"), std::string::npos);
  // Cumulative buckets: 1 <= 0.5, 2 <= 2, 3 <= +Inf.
  EXPECT_NE(text.find("lat_seconds_bucket{op=\"query\",le=\"0.5\"} 1\n"),
            std::string::npos);
  EXPECT_NE(text.find("lat_seconds_bucket{op=\"query\",le=\"2\"} 2\n"),
            std::string::npos);
  EXPECT_NE(text.find("lat_seconds_bucket{op=\"query\",le=\"+Inf\"} 3\n"),
            std::string::npos);
  EXPECT_NE(text.find("lat_seconds_count{op=\"query\"} 3\n"),
            std::string::npos);
  EXPECT_NE(text.find("lat_seconds_sum{op=\"query\"} 11.25\n"),
            std::string::npos);
}

TEST(ExportTest, JsonRoundTripPreservesEverything) {
  MetricsRegistry registry;
  registry.GetCounter("hits", "cache hits", "column", "token")->Add(7);
  registry.GetGauge("depth", "queue depth")->Set(-2);
  Histogram* h = registry.GetHistogram("lat_seconds", "latency",
                                       {0.5, 2.0}, "op", "query");
  h->Observe(0.25);
  h->Observe(10.0);
  MetricsSnapshot original = registry.Snapshot();

  report::Json json = SnapshotToJson(original);
  // Through text and back, like the suite JSON on disk.
  report::Json parsed;
  ASSERT_TRUE(report::Json::Parse(json.Dump(2), &parsed).ok());
  MetricsSnapshot restored;
  Status s = SnapshotFromJson(parsed, &restored);
  ASSERT_TRUE(s.ok()) << s.message();

  ASSERT_EQ(restored.families.size(), original.families.size());
  const SampleSnapshot* hits = restored.Find("hits", "token");
  ASSERT_NE(hits, nullptr);
  EXPECT_EQ(hits->counter, 7u);
  const SampleSnapshot* depth = restored.Find("depth");
  ASSERT_NE(depth, nullptr);
  EXPECT_EQ(depth->gauge, -2);
  const SampleSnapshot* lat = restored.Find("lat_seconds", "query");
  ASSERT_NE(lat, nullptr);
  EXPECT_EQ(lat->count, 2u);
  EXPECT_DOUBLE_EQ(lat->sum, 10.25);
  EXPECT_EQ(lat->bounds, (std::vector<double>{0.5, 2.0}));
  EXPECT_EQ(lat->buckets, (std::vector<uint64_t>{1, 0, 1}));
  // Re-serialization is byte-stable (the golden suite test relies on
  // this through SuiteResult round trips).
  EXPECT_EQ(SnapshotToJson(restored).Dump(2), json.Dump(2));
}

TEST(ExportTest, FromJsonRejectsMalformedShapes) {
  auto reject = [](const char* text) {
    report::Json json;
    ASSERT_TRUE(report::Json::Parse(text, &json).ok()) << text;
    MetricsSnapshot out;
    EXPECT_FALSE(SnapshotFromJson(json, &out).ok()) << text;
  };
  reject("{}");
  reject("{\"families\": [{\"name\": \"x\"}]}");
  reject(
      "{\"families\": [{\"name\": \"x\", \"type\": \"sombrero\","
      " \"help\": \"h\", \"samples\": []}]}");
  // Histogram bucket count must be bounds count + 1.
  reject(
      "{\"families\": [{\"name\": \"x\", \"type\": \"histogram\","
      " \"help\": \"h\", \"samples\": [{\"count\": 1, \"sum\": 1.0,"
      " \"bounds\": [1.0], \"buckets\": [1]}]}]}");
}

TEST(ObsConcurrencyTest, HammerCountersAndHistograms) {
  MetricsRegistry registry;
  Counter* shared = registry.GetCounter("shared", "hammered counter");
  Gauge* level = registry.GetGauge("level", "hammered gauge");
  Histogram* h =
      registry.GetHistogram("hist", "hammered histogram", {1.0, 2.0, 3.0});

  constexpr int kThreads = 8;
  constexpr int kOpsPerThread = 20000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      // Resolving concurrently must return the same instruments.
      Counter* mine = registry.GetCounter("shared", "hammered counter");
      for (int i = 0; i < kOpsPerThread; ++i) {
        mine->Add(1);
        level->Add(1);
        level->Sub(1);
        h->Observe(static_cast<double>((t + i) % 4) + 0.5);
      }
    });
  }
  for (std::thread& thread : threads) thread.join();

  EXPECT_EQ(shared->value(),
            static_cast<uint64_t>(kThreads) * kOpsPerThread);
  EXPECT_EQ(level->value(), 0);
  EXPECT_EQ(h->count(), static_cast<uint64_t>(kThreads) * kOpsPerThread);
  std::vector<uint64_t> buckets = h->bucket_counts();
  ASSERT_EQ(buckets.size(), 4u);
  uint64_t total = 0;
  for (uint64_t b : buckets) total += b;
  EXPECT_EQ(total, h->count());
  // (t + i) % 4 cycles uniformly: every bucket gets exactly a quarter.
  for (uint64_t b : buckets) {
    EXPECT_EQ(b, static_cast<uint64_t>(kThreads) * kOpsPerThread / 4);
  }
}

TEST(TracerTest, RingDropsOldest) {
  Tracer tracer(4);
  for (int i = 0; i < 6; ++i) {
    SpanRecord span;
    span.name = "s" + std::to_string(i);
    span.trace = static_cast<TraceId>(i + 1);
    tracer.Record(std::move(span));
  }
  std::vector<SpanRecord> recent = tracer.Recent();
  ASSERT_EQ(recent.size(), 4u);
  EXPECT_EQ(recent.front().name, "s2");
  EXPECT_EQ(recent.back().name, "s5");
  EXPECT_EQ(tracer.dropped(), 2u);
  EXPECT_EQ(tracer.capacity(), 4u);

  std::vector<SpanRecord> for_trace = tracer.ForTrace(4);
  ASSERT_EQ(for_trace.size(), 1u);
  EXPECT_EQ(for_trace[0].name, "s3");
  EXPECT_TRUE(tracer.ForTrace(1).empty());  // evicted
}

TEST(ObsSpanTest, RecordsIntoTracerWithTraceId) {
  Tracer tracer(16);
  TraceId trace = NextTraceId();
  EXPECT_NE(trace, 0u);
  EXPECT_NE(NextTraceId(), trace);
  {
    ObsSpan span("test.span", trace, &tracer);
    EXPECT_EQ(span.trace(), trace);
    EXPECT_GE(span.Elapsed(), 0.0);
  }
  std::vector<SpanRecord> spans = tracer.ForTrace(trace);
  ASSERT_EQ(spans.size(), 1u);
  EXPECT_EQ(spans[0].name, "test.span");
  EXPECT_GE(spans[0].duration_us, 0.0);
}

TEST(ObsSpanTest, FeedsSpanSecondsFamily) {
  Tracer tracer(4);
  { ObsSpan span("obs_test.family", 0, &tracer); }
  const MetricsSnapshot snapshot = MetricsRegistry::Global().Snapshot();
  const SampleSnapshot* sample =
      snapshot.Find("span_seconds", "obs_test.family");
  ASSERT_NE(sample, nullptr);
  EXPECT_GE(sample->count, 1u);
}

}  // namespace
}  // namespace sablock::obs
