// Tests for the Cora-like and Voter-like dataset generators (the data
// substitution of DESIGN.md §2).

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <string_view>
#include <unordered_map>

#include "data/cora_generator.h"
#include "data/voter_generator.h"

namespace sablock::data {
namespace {

CoraGeneratorConfig SmallCora() {
  CoraGeneratorConfig config;
  config.num_entities = 40;
  config.num_records = 300;
  config.seed = 11;
  return config;
}

VoterGeneratorConfig SmallVoter() {
  VoterGeneratorConfig config;
  config.num_records = 500;
  config.seed = 12;
  return config;
}

TEST(CoraGeneratorTest, ProducesRequestedCounts) {
  Dataset d = GenerateCoraLike(SmallCora());
  EXPECT_EQ(d.size(), 300u);
  std::set<EntityId> entities;
  for (data::RecordId id = 0; id < d.size(); ++id) {
    entities.insert(d.entity(id));
  }
  EXPECT_EQ(entities.size(), 40u);
}

TEST(CoraGeneratorTest, SchemaMatchesDocumentation) {
  Dataset d = GenerateCoraLike(SmallCora());
  for (const char* attr : {"title", "authors", "journal", "booktitle",
                           "institution", "publisher", "year"}) {
    EXPECT_GE(d.schema().IndexOf(attr), 0) << attr;
  }
}

TEST(CoraGeneratorTest, DeterministicForSeed) {
  Dataset a = GenerateCoraLike(SmallCora());
  Dataset b = GenerateCoraLike(SmallCora());
  ASSERT_EQ(a.size(), b.size());
  for (data::RecordId id = 0; id < a.size(); ++id) {
    EXPECT_EQ(a.record(id).values, b.record(id).values);
    EXPECT_EQ(a.entity(id), b.entity(id));
  }
}

TEST(CoraGeneratorTest, DifferentSeedsDiffer) {
  CoraGeneratorConfig c1 = SmallCora();
  CoraGeneratorConfig c2 = SmallCora();
  c2.seed = 999;
  Dataset a = GenerateCoraLike(c1);
  Dataset b = GenerateCoraLike(c2);
  bool any_diff = false;
  for (data::RecordId id = 0; id < a.size() && !any_diff; ++id) {
    any_diff = a.record(id).values != b.record(id).values;
  }
  EXPECT_TRUE(any_diff);
}

TEST(CoraGeneratorTest, TitlesAreNonEmpty) {
  Dataset d = GenerateCoraLike(SmallCora());
  for (data::RecordId id = 0; id < d.size(); ++id) {
    EXPECT_FALSE(d.Value(id, "title").empty());
  }
}

TEST(CoraGeneratorTest, MissingValuePatternsAreDiverse) {
  // The Table 1 semantic function needs a mix of missing-value patterns.
  Dataset d = GenerateCoraLike(SmallCora());
  std::set<int> patterns;
  for (data::RecordId id = 0; id < d.size(); ++id) {
    int p = (d.Value(id, "journal").empty() ? 0 : 4) |
            (d.Value(id, "booktitle").empty() ? 0 : 2) |
            (d.Value(id, "institution").empty() ? 0 : 1);
    patterns.insert(p);
  }
  EXPECT_GE(patterns.size(), 3u);
  EXPECT_TRUE(patterns.count(0));  // some fully ambiguous records
}

TEST(CoraGeneratorTest, ClusterSizesAreSkewed) {
  Dataset d = GenerateCoraLike(SmallCora());
  std::unordered_map<EntityId, size_t> sizes;
  for (data::RecordId id = 0; id < d.size(); ++id) ++sizes[d.entity(id)];
  size_t max_size = 0;
  for (const auto& [e, n] : sizes) max_size = std::max(max_size, n);
  // 300 records over 40 entities, skewed: some entity should be "popular".
  EXPECT_GE(max_size, 15u);
}

TEST(CoraGeneratorTest, DuplicatesAreScattered) {
  Dataset d = GenerateCoraLike(SmallCora());
  // The first half of records should not all belong to distinct entities
  // (shuffling spread clusters); verify a duplicate exists across halves.
  bool cross_half_match = false;
  for (data::RecordId i = 0; i < d.size() / 2 && !cross_half_match; ++i) {
    for (data::RecordId j = d.size() / 2; j < d.size(); ++j) {
      if (d.IsMatch(i, j)) {
        cross_half_match = true;
        break;
      }
    }
  }
  EXPECT_TRUE(cross_half_match);
}

TEST(CoraGeneratorTest, RejectsInvalidConfig) {
  CoraGeneratorConfig config;
  config.num_entities = 10;
  config.num_records = 5;  // fewer records than entities
  EXPECT_DEATH(GenerateCoraLike(config), "CHECK");
}

TEST(VoterGeneratorTest, ProducesRequestedCount) {
  Dataset d = GenerateVoterLike(SmallVoter());
  EXPECT_EQ(d.size(), 500u);
}

TEST(VoterGeneratorTest, SchemaMatchesDocumentation) {
  Dataset d = GenerateVoterLike(SmallVoter());
  for (const char* attr : {"first_name", "last_name", "gender", "race",
                           "city", "street", "age"}) {
    EXPECT_GE(d.schema().IndexOf(attr), 0) << attr;
  }
}

TEST(VoterGeneratorTest, GenderValuesAreValid) {
  Dataset d = GenerateVoterLike(SmallVoter());
  size_t uncertain = 0;
  for (data::RecordId id = 0; id < d.size(); ++id) {
    std::string_view g = d.Value(id, "gender");
    EXPECT_TRUE(g == "m" || g == "f" || g == "u") << g;
    if (g == "u") ++uncertain;
  }
  // ~12% uncertainty configured; expect a healthy band.
  EXPECT_GT(uncertain, 20u);
  EXPECT_LT(uncertain, 150u);
}

TEST(VoterGeneratorTest, HasDuplicatesAndSingletons) {
  Dataset d = GenerateVoterLike(SmallVoter());
  std::unordered_map<EntityId, size_t> sizes;
  for (data::RecordId id = 0; id < d.size(); ++id) ++sizes[d.entity(id)];
  size_t singletons = 0;
  size_t clusters = 0;
  for (const auto& [e, n] : sizes) {
    if (n == 1) ++singletons;
    if (n >= 2) ++clusters;
    EXPECT_LE(n, 5u);
  }
  EXPECT_GT(singletons, 0u);
  EXPECT_GT(clusters, 0u);
  EXPECT_GT(d.CountTrueMatchPairs(), 0u);
}

TEST(VoterGeneratorTest, DeterministicForSeed) {
  Dataset a = GenerateVoterLike(SmallVoter());
  Dataset b = GenerateVoterLike(SmallVoter());
  ASSERT_EQ(a.size(), b.size());
  for (data::RecordId id = 0; id < a.size(); ++id) {
    EXPECT_EQ(a.record(id).values, b.record(id).values);
  }
}

TEST(VoterGeneratorTest, ScalesToLargerSizes) {
  VoterGeneratorConfig config = SmallVoter();
  config.num_records = 20000;
  Dataset d = GenerateVoterLike(config);
  EXPECT_EQ(d.size(), 20000u);
}

}  // namespace
}  // namespace sablock::data
