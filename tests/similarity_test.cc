// Tests for the string similarity comparators used by the baselines
// (Section 6.3.4 parameter grids).

#include <gtest/gtest.h>

#include <string>
#include <tuple>

#include "text/similarity.h"

namespace sablock::text {
namespace {

TEST(EditDistanceTest, KnownValues) {
  EXPECT_EQ(EditDistance("", ""), 0);
  EXPECT_EQ(EditDistance("abc", ""), 3);
  EXPECT_EQ(EditDistance("", "abc"), 3);
  EXPECT_EQ(EditDistance("kitten", "sitting"), 3);
  EXPECT_EQ(EditDistance("flaw", "lawn"), 2);
  EXPECT_EQ(EditDistance("abc", "abc"), 0);
  EXPECT_EQ(EditDistance("correlation", "corelation"), 1);
}

TEST(EditSimilarityTest, Range) {
  EXPECT_DOUBLE_EQ(EditSimilarity("", ""), 1.0);
  EXPECT_DOUBLE_EQ(EditSimilarity("abc", "abc"), 1.0);
  EXPECT_DOUBLE_EQ(EditSimilarity("abc", "xyz"), 0.0);
  EXPECT_NEAR(EditSimilarity("abcd", "abcx"), 0.75, 1e-12);
}

TEST(JaroTest, KnownValues) {
  EXPECT_DOUBLE_EQ(JaroSimilarity("martha", "martha"), 1.0);
  EXPECT_NEAR(JaroSimilarity("martha", "marhta"), 0.944444, 1e-5);
  EXPECT_NEAR(JaroSimilarity("dixon", "dicksonx"), 0.766667, 1e-5);
  EXPECT_NEAR(JaroSimilarity("duane", "dwayne"), 0.822222, 1e-5);
  EXPECT_DOUBLE_EQ(JaroSimilarity("abc", "xyz"), 0.0);
  EXPECT_DOUBLE_EQ(JaroSimilarity("", ""), 1.0);
  EXPECT_DOUBLE_EQ(JaroSimilarity("a", ""), 0.0);
}

TEST(JaroWinklerTest, KnownValues) {
  EXPECT_NEAR(JaroWinklerSimilarity("martha", "marhta"), 0.961111, 1e-5);
  EXPECT_NEAR(JaroWinklerSimilarity("dixon", "dicksonx"), 0.813333, 1e-5);
  EXPECT_DOUBLE_EQ(JaroWinklerSimilarity("same", "same"), 1.0);
}

TEST(JaroWinklerTest, PrefixBoostsScore) {
  // Same Jaro ingredients, but a shared prefix must raise Jaro-Winkler.
  double jaro = JaroSimilarity("prefixab", "prefixba");
  double jw = JaroWinklerSimilarity("prefixab", "prefixba");
  EXPECT_GT(jw, jaro);
}

TEST(QGramSimilarityTest, IdenticalAndDisjoint) {
  EXPECT_DOUBLE_EQ(QGramSimilarity("abc", "abc", 2), 1.0);
  EXPECT_DOUBLE_EQ(QGramSimilarity("", "", 2), 1.0);
  EXPECT_DOUBLE_EQ(QGramSimilarity("aaaa", "zzzz", 2), 0.0);
  double near = QGramSimilarity("wang", "wangg", 2);
  EXPECT_GT(near, 0.5);
  EXPECT_LT(near, 1.0);
}

TEST(BigramSimilarityTest, MatchesQ2) {
  EXPECT_DOUBLE_EQ(BigramSimilarity("hello", "hella"),
                   QGramSimilarity("hello", "hella", 2));
}

TEST(LongestCommonSubstringTest, KnownValues) {
  EXPECT_EQ(LongestCommonSubstring("", "abc"), 0);
  EXPECT_EQ(LongestCommonSubstring("abcdef", "zabcy"), 3);
  EXPECT_EQ(LongestCommonSubstring("abc", "abc"), 3);
  EXPECT_EQ(LongestCommonSubstring("xy", "yx"), 1);
}

TEST(LcsSimilarityTest, RepeatedExtraction) {
  // "abcd" + "efgh" common in both, split differently.
  double sim = LcsSimilarity("abcdXefgh", "abcdYefgh");
  EXPECT_NEAR(sim, 8.0 / 9.0, 1e-12);
  EXPECT_DOUBLE_EQ(LcsSimilarity("", ""), 1.0);
  EXPECT_DOUBLE_EQ(LcsSimilarity("abc", "abc"), 1.0);
  EXPECT_DOUBLE_EQ(LcsSimilarity("ab", "xy"), 0.0);
}

TEST(LcsSimilarityTest, MinLengthFiltersShortFragments) {
  // With min_len=4 the 3-char fragments no longer count.
  EXPECT_DOUBLE_EQ(LcsSimilarity("abcXdef", "abcYdef", 4), 0.0);
  EXPECT_GT(LcsSimilarity("abcXdef", "abcYdef", 3), 0.0);
}

TEST(TokenJaccardTest, SetSemantics) {
  EXPECT_DOUBLE_EQ(TokenJaccardSimilarity("a b c", "c b a"), 1.0);
  EXPECT_DOUBLE_EQ(TokenJaccardSimilarity("a a b", "a b"), 1.0);
  EXPECT_NEAR(TokenJaccardSimilarity("a b", "b c"), 1.0 / 3.0, 1e-12);
  EXPECT_DOUBLE_EQ(TokenJaccardSimilarity("", ""), 1.0);
}

TEST(ExactSimilarityTest, Basic) {
  EXPECT_DOUBLE_EQ(ExactSimilarity("x", "x"), 1.0);
  EXPECT_DOUBLE_EQ(ExactSimilarity("x", "y"), 0.0);
}

TEST(SimilarityByNameTest, ResolvesAllGridComparators) {
  for (const char* name :
       {"jaro_winkler", "bigram", "edit", "lcs", "jaccard_token", "exact"}) {
    StringSimilarityFn fn = SimilarityByName(name);
    ASSERT_TRUE(fn != nullptr) << name;
    EXPECT_DOUBLE_EQ(fn("same", "same"), 1.0) << name;
  }
}

// Property sweep: every comparator is symmetric, bounded to [0, 1], and
// scores identity as 1.
class ComparatorProperties : public ::testing::TestWithParam<std::string> {};

TEST_P(ComparatorProperties, SymmetricBoundedReflexive) {
  StringSimilarityFn fn = SimilarityByName(GetParam());
  const std::vector<std::string> samples = {
      "",        "a",         "wang qing",      "qing wang",
      "cascade", "correlat",  "correlation",    "the cascade correlation",
      "smith",   "smyth",     "technical rep",  "1995",
  };
  for (const std::string& a : samples) {
    EXPECT_DOUBLE_EQ(fn(a, a), 1.0) << GetParam() << " on '" << a << "'";
    for (const std::string& b : samples) {
      double ab = fn(a, b);
      double ba = fn(b, a);
      EXPECT_NEAR(ab, ba, 1e-12) << GetParam();
      EXPECT_GE(ab, 0.0) << GetParam();
      EXPECT_LE(ab, 1.0) << GetParam();
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllComparators, ComparatorProperties,
                         ::testing::Values("jaro_winkler", "bigram", "edit",
                                           "lcs", "jaccard_token", "exact"));

}  // namespace
}  // namespace sablock::text
