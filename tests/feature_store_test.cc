// Tests for the shared feature-extraction layer: column correctness
// against direct recomputation, build-exactly-once semantics under
// concurrent getters (a tools/check.sh --tsan target), zero-copy slices
// sharing the parent's arena and store, and cache invalidation on Add.

#include "features/feature_store.h"

#include <algorithm>
#include <span>
#include <string>
#include <thread>
#include <vector>

#include "common/string_util.h"
#include "core/minhash.h"
#include "data/cora_generator.h"
#include "data/record.h"
#include "gtest/gtest.h"
#include "text/qgram.h"

namespace sablock::features {
namespace {

data::Dataset TinyDataset() {
  data::Dataset d{data::Schema({"name", "city"})};
  d.Add({{"Ada Lovelace", "London"}}, 0);
  d.Add({{"A. Lovelace", "london"}}, 0);
  d.Add({{"Grace Hopper", "New York"}}, 1);
  d.Add({{"", ""}}, data::kUnknownEntity);
  return d;
}

const std::vector<std::string>& NameCity() {
  static const std::vector<std::string> attrs = {"name", "city"};
  return attrs;
}

TEST(FeatureStoreTest, TextColumnMatchesConcatenatedValues) {
  data::Dataset d = TinyDataset();
  FeatureView::TextHandle texts = d.features().TextsFor(NameCity());
  for (data::RecordId id = 0; id < d.size(); ++id) {
    EXPECT_EQ(texts.Text(id), d.ConcatenatedValues(id, NameCity())) << id;
  }
}

TEST(FeatureStoreTest, TokenColumnInternsSortedDistinctTokens) {
  data::Dataset d = TinyDataset();
  FeatureView features = d.features();
  FeatureView::TokenHandle tokens = features.TokensFor(NameCity());
  for (data::RecordId id = 0; id < d.size(); ++id) {
    const std::vector<TokenId>& ids = tokens.Tokens(id);
    EXPECT_TRUE(std::is_sorted(ids.begin(), ids.end()));
    EXPECT_EQ(std::adjacent_find(ids.begin(), ids.end()), ids.end());
    // Interned strings round-trip to the distinct words of the text.
    std::vector<std::string> words =
        SplitWords(d.ConcatenatedValues(id, NameCity()));
    std::sort(words.begin(), words.end());
    words.erase(std::unique(words.begin(), words.end()), words.end());
    std::vector<std::string> from_ids;
    for (TokenId t : ids) {
      EXPECT_LT(t, tokens.token_limit());
      from_ids.push_back(features.store().Token(tokens.GlobalId(t)));
    }
    std::sort(from_ids.begin(), from_ids.end());
    EXPECT_EQ(from_ids, words) << id;
  }
}

TEST(FeatureStoreTest, TokenIdsAreColumnLocalAndDense) {
  data::Dataset d = TinyDataset();
  FeatureView features = d.features();
  FeatureView::TokenHandle wide = features.TokensFor(NameCity());
  FeatureView::TokenHandle narrow = features.TokensFor({"city"});
  // The narrow column's ids stay dense in its own vocabulary even though
  // the shared dictionary already holds the wide column's tokens.
  EXPECT_LT(narrow.token_limit(), wide.token_limit());
  for (data::RecordId id = 0; id < d.size(); ++id) {
    for (TokenId t : narrow.Tokens(id)) {
      EXPECT_LT(t, narrow.token_limit());
    }
  }
}

TEST(FeatureStoreTest, TextColumnsDoNotPayForTokenization) {
  data::Dataset d = TinyDataset();
  FeatureView features = d.features();
  features.TextsFor(NameCity());
  features.TextsFor({"name"});
  // Text-only consumers (blocking keys) never touch the token dictionary.
  EXPECT_EQ(features.store().NumInternedTokens(), 0u);
  EXPECT_EQ(features.store().stats().token_builds, 0u);
  features.TokensFor(NameCity());
  EXPECT_GT(features.store().NumInternedTokens(), 0u);
  EXPECT_EQ(features.store().stats().token_builds, 1u);
}

TEST(FeatureStoreTest, ShingleColumnMatchesQGramHashes) {
  data::Dataset d = TinyDataset();
  FeatureView::ShingleHandle shingles = d.features().ShinglesFor(NameCity(), 3);
  for (data::RecordId id = 0; id < d.size(); ++id) {
    EXPECT_EQ(shingles.Shingles(id),
              text::QGramHashes(d.ConcatenatedValues(id, NameCity()), 3))
        << id;
  }
}

TEST(FeatureStoreTest, SignatureColumnMatchesDirectMinhash) {
  data::Dataset d = TinyDataset();
  FeatureView features = d.features();
  FeatureView::SignatureHandle sigs =
      features.SignaturesFor(NameCity(), 3, 16, 7);
  core::MinHasher hasher(16, 7);
  FeatureView::ShingleHandle shingles = features.ShinglesFor(NameCity(), 3);
  for (data::RecordId id = 0; id < d.size(); ++id) {
    std::span<const uint64_t> row = sigs.Signature(id);
    EXPECT_EQ(std::vector<uint64_t>(row.begin(), row.end()),
              hasher.Signature(shingles.Shingles(id)))
        << id;
  }
}

TEST(FeatureStoreTest, DistinctKeysAreDistinctColumns) {
  data::Dataset d = TinyDataset();
  FeatureView features = d.features();
  // Different q, attribute subsets, hash counts and seeds are all
  // separate cache entries.
  features.ShinglesFor(NameCity(), 2);
  features.ShinglesFor(NameCity(), 3);
  features.ShinglesFor({"name"}, 2);
  features.SignaturesFor(NameCity(), 2, 8, 7);
  features.SignaturesFor(NameCity(), 2, 8, 11);
  FeatureStore::Stats stats = features.store().stats();
  EXPECT_EQ(stats.shingle_builds, 3u);
  EXPECT_EQ(stats.signature_builds, 2u);
}

TEST(FeatureStoreTest, EightThreadsRacingGettersBuildEachCacheOnce) {
  data::CoraGeneratorConfig config;
  config.num_entities = 10;
  config.num_records = 100;
  config.seed = 7;
  data::Dataset d = data::GenerateCoraLike(config);
  const std::vector<std::string> attrs = {"authors", "title"};

  constexpr int kThreads = 8;
  std::vector<const TextColumn*> text_cols(kThreads);
  std::vector<const TokenColumn*> token_cols(kThreads);
  std::vector<const ShingleColumn*> shingle_cols(kThreads);
  std::vector<const SignatureColumn*> sig_cols(kThreads);
  {
    std::vector<std::thread> threads;
    threads.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t) {
      threads.emplace_back([&, t] {
        const FeatureStore& store = d.features().store();
        text_cols[t] = &store.Texts(attrs);
        token_cols[t] = &store.Tokens(attrs);
        shingle_cols[t] = &store.Shingles(attrs, 4);
        sig_cols[t] = &store.Signatures(attrs, 4, 64, 7);
      });
    }
    for (std::thread& thread : threads) thread.join();
  }

  // One build per cache, and every thread observed the same column.
  FeatureStore::Stats stats = d.features().store().stats();
  EXPECT_EQ(stats.text_builds, 1u);
  EXPECT_EQ(stats.token_builds, 1u);
  EXPECT_EQ(stats.shingle_builds, 1u);
  EXPECT_EQ(stats.signature_builds, 1u);
  for (int t = 1; t < kThreads; ++t) {
    EXPECT_EQ(text_cols[t], text_cols[0]);
    EXPECT_EQ(token_cols[t], token_cols[0]);
    EXPECT_EQ(shingle_cols[t], shingle_cols[0]);
    EXPECT_EQ(sig_cols[t], sig_cols[0]);
  }
  EXPECT_EQ(sig_cols[0]->data.size(), d.size() * 64);
}

TEST(FeatureStoreTest, SlicesShareTheParentStoreWithOffset) {
  data::Dataset d = TinyDataset();
  FeatureView parent = d.features();  // materialize before slicing
  FeatureView::ShingleHandle parent_shingles =
      parent.ShinglesFor(NameCity(), 3);

  data::Dataset slice = d.Slice(1, 3);
  FeatureView sliced = slice.features();
  EXPECT_EQ(&sliced.store(), &parent.store());
  FeatureView::ShingleHandle slice_shingles =
      sliced.ShinglesFor(NameCity(), 3);
  for (data::RecordId id = 0; id < slice.size(); ++id) {
    EXPECT_EQ(&slice_shingles.Shingles(id),
              &parent_shingles.Shingles(id + 1));
  }
  // No rebuild happened for the slice.
  EXPECT_EQ(parent.store().stats().shingle_builds, 1u);

  // Nested slices compose offsets.
  data::Dataset nested = slice.Slice(1, 2);
  FeatureView::ShingleHandle nested_shingles =
      nested.features().ShinglesFor(NameCity(), 3);
  EXPECT_EQ(&nested_shingles.Shingles(0), &parent_shingles.Shingles(2));
}

TEST(FeatureStoreTest, SliceOfColdDatasetBuildsItsOwnCorrectStore) {
  data::Dataset d = TinyDataset();
  data::Dataset slice = d.Slice(1, 3);  // parent store never materialized
  FeatureView features = slice.features();
  EXPECT_EQ(features.size(), 2u);
  FeatureView::TextHandle texts = features.TextsFor(NameCity());
  for (data::RecordId id = 0; id < slice.size(); ++id) {
    EXPECT_EQ(texts.Text(id), d.ConcatenatedValues(id + 1, NameCity()));
  }
}

TEST(FeatureStoreTest, AddInvalidatesTheFeatureCache) {
  data::Dataset d = TinyDataset();
  FeatureView before = d.features();
  EXPECT_EQ(before.size(), 4u);
  d.Add({{"Katherine Johnson", "Hampton"}}, 2);
  FeatureView after = d.features();
  EXPECT_EQ(after.size(), 5u);
  EXPECT_NE(&after.store(), &before.store());
  EXPECT_EQ(after.TextsFor(NameCity()).Text(4), "katherine johnson hampton");
}

TEST(FeatureStoreTest, AddRowInvalidatesTheFeatureCache) {
  // The serving-path mutation: AddRow (raw views, as CandidateService
  // uses) must version-bump and invalidate exactly like Add, so a grown
  // dataset never serves stale tokens/signatures.
  data::Dataset d = TinyDataset();
  const uint64_t version_before = d.version();
  FeatureView before = d.features();
  std::vector<std::string> values = {"Katherine Johnson", "Hampton"};
  std::vector<std::string_view> views = {values.begin(), values.end()};
  d.AddRow(views, 2);
  EXPECT_GT(d.version(), version_before);
  FeatureView after = d.features();
  EXPECT_EQ(after.size(), 5u);
  EXPECT_NE(&after.store(), &before.store());
  EXPECT_EQ(after.TextsFor(NameCity()).Text(4), "katherine johnson hampton");
  EXPECT_EQ(after.store().dataset_version(), d.version());
}

TEST(FeatureStoreTest, HandlesCoOwnTheStoreAcrossInvalidation) {
  data::Dataset d = TinyDataset();
  FeatureView::ShingleHandle shingles =
      d.features().ShinglesFor(NameCity(), 3);
  std::vector<uint64_t> before = shingles.Shingles(0);
  // Add drops the dataset's pointer to the old store; the handle keeps
  // the snapshot alive and keeps serving pre-Add features.
  d.Add({{"Katherine Johnson", "Hampton"}}, 2);
  EXPECT_EQ(shingles.Shingles(0), before);
  // A handle obtained through a temporary slice is equally safe.
  FeatureView::TextHandle texts =
      d.Slice(0, 2).features().TextsFor(NameCity());
  EXPECT_EQ(texts.Text(0), "ada lovelace london");
}

TEST(FeatureStoreTest, StoreOutlivesTheOriginatingDataset) {
  FeatureView features;
  {
    data::Dataset d = TinyDataset();
    features = d.features();
    features.TextsFor(NameCity());
  }
  // The view's shared_ptr keeps the store (and its arena snapshot) alive.
  EXPECT_EQ(features.TextsFor(NameCity()).Text(2), "grace hopper new york");
}

}  // namespace
}  // namespace sablock::features
