// Parameterized property tests over randomized inputs: invariants of the
// taxonomy similarity (Eqs. 3-5), semhash order preservation (Prop. 4.3),
// minhash estimation, SA-LSH containment, and metric identities.

#include <gtest/gtest.h>

#include "run_streaming.h"

#include <memory>
#include <tuple>

#include "common/random.h"
#include "core/collision.h"
#include "core/domains.h"
#include "core/lsh_blocker.h"
#include "core/semhash.h"
#include "data/cora_generator.h"
#include "data/voter_generator.h"
#include "eval/metrics.h"

namespace sablock::core {
namespace {

// ---------------------------------------------------------------------
// Random taxonomy properties.

Taxonomy RandomTaxonomy(uint64_t seed, int num_nodes) {
  sablock::Rng rng(seed);
  Taxonomy t;
  t.AddConcept("n0");
  for (int i = 1; i < num_nodes; ++i) {
    ConceptId parent = static_cast<ConceptId>(rng.UniformIndex(i));
    t.AddConcept("n" + std::to_string(i), parent);
  }
  t.Finalize();
  return t;
}

class RandomTaxonomyProperties : public ::testing::TestWithParam<uint64_t> {
};

TEST_P(RandomTaxonomyProperties, ConceptSimilarityAxioms) {
  Taxonomy t = RandomTaxonomy(GetParam(), 40);
  sablock::Rng rng(GetParam() ^ 0xabc);
  for (int trial = 0; trial < 200; ++trial) {
    ConceptId a = static_cast<ConceptId>(rng.UniformIndex(t.size()));
    ConceptId b = static_cast<ConceptId>(rng.UniformIndex(t.size()));
    double sim = t.ConceptSimilarity(a, b);
    EXPECT_GE(sim, 0.0);
    EXPECT_LE(sim, 1.0);
    EXPECT_NEAR(sim, t.ConceptSimilarity(b, a), 1e-15);  // symmetry
    // Eq. 3 / Prop. 4.2 direction: unrelated concepts score 0.
    if (!t.Subsumes(a, b) && !t.Subsumes(b, a)) {
      EXPECT_DOUBLE_EQ(sim, 0.0);
    } else {
      EXPECT_GT(sim, 0.0);
    }
  }
}

TEST_P(RandomTaxonomyProperties, SiblingChildrenAreDisjoint) {
  Taxonomy t = RandomTaxonomy(GetParam(), 40);
  for (ConceptId c = 0; c < t.size(); ++c) {
    const auto& kids = t.children(c);
    for (size_t i = 0; i < kids.size(); ++i) {
      for (size_t j = i + 1; j < kids.size(); ++j) {
        EXPECT_DOUBLE_EQ(t.ConceptSimilarity(kids[i], kids[j]), 0.0);
      }
    }
  }
}

TEST_P(RandomTaxonomyProperties, Proposition41HoldsEverywhere) {
  Taxonomy t = RandomTaxonomy(GetParam(), 40);
  for (ConceptId c = 0; c < t.size(); ++c) {
    if (t.IsLeaf(c)) continue;
    std::vector<ConceptId> parent = {c};
    EXPECT_DOUBLE_EQ(t.RecordSimilarity(parent, t.children(c)), 1.0);
  }
}

TEST_P(RandomTaxonomyProperties, RecordSimilarityBoundsAndSymmetry) {
  Taxonomy t = RandomTaxonomy(GetParam(), 30);
  sablock::Rng rng(GetParam() ^ 0x123);
  for (int trial = 0; trial < 100; ++trial) {
    std::vector<ConceptId> z1;
    std::vector<ConceptId> z2;
    for (size_t i = 0; i < 1 + rng.UniformIndex(3); ++i) {
      z1.push_back(static_cast<ConceptId>(rng.UniformIndex(t.size())));
    }
    for (size_t i = 0; i < 1 + rng.UniformIndex(3); ++i) {
      z2.push_back(static_cast<ConceptId>(rng.UniformIndex(t.size())));
    }
    t.PruneToMostSpecific(&z1);
    t.PruneToMostSpecific(&z2);
    double sim = t.RecordSimilarity(z1, z2);
    EXPECT_GE(sim, 0.0);
    EXPECT_LE(sim, 1.0 + 1e-12);
    EXPECT_NEAR(sim, t.RecordSimilarity(z2, z1), 1e-15);
    // Identity on interpretations: simS(z, z) = 1.
    EXPECT_NEAR(t.RecordSimilarity(z1, z1), 1.0, 1e-12);
  }
}

// Proposition 4.3, strengthened: with Specificity enforced, the Jaccard of
// semhash signatures *equals* the Eq. 5 record similarity.
TEST_P(RandomTaxonomyProperties, SemhashJaccardEqualsRecordSimilarity) {
  Taxonomy t = RandomTaxonomy(GetParam(), 30);
  SemhashEncoder enc = SemhashEncoder::BuildFromAllLeaves(t);
  sablock::Rng rng(GetParam() ^ 0x777);
  for (int trial = 0; trial < 100; ++trial) {
    std::vector<ConceptId> z1 = {
        static_cast<ConceptId>(rng.UniformIndex(t.size())),
        static_cast<ConceptId>(rng.UniformIndex(t.size()))};
    std::vector<ConceptId> z2 = {
        static_cast<ConceptId>(rng.UniformIndex(t.size())),
        static_cast<ConceptId>(rng.UniformIndex(t.size()))};
    t.PruneToMostSpecific(&z1);
    t.PruneToMostSpecific(&z2);
    SemSignature s1 = enc.Encode(t, z1);
    SemSignature s2 = enc.Encode(t, z2);
    EXPECT_NEAR(s1.Jaccard(s2), t.RecordSimilarity(z1, z2), 1e-12);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomTaxonomyProperties,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u));

// ---------------------------------------------------------------------
// Minhash estimation across similarity levels.

class MinhashAccuracy
    : public ::testing::TestWithParam<std::tuple<int, uint64_t>> {};

TEST_P(MinhashAccuracy, EstimateTracksTrueJaccard) {
  auto [overlap_pct, seed] = GetParam();
  MinHasher hasher(384, seed);
  std::vector<uint64_t> a;
  std::vector<uint64_t> b;
  const int n = 200;
  for (int i = 0; i < n; ++i) a.push_back(sablock::Mix64(i));
  int shared = n * overlap_pct / 100;
  for (int i = 0; i < shared; ++i) b.push_back(sablock::Mix64(i));
  for (int i = shared; i < n; ++i) b.push_back(sablock::Mix64(i + 100000));
  double true_jaccard =
      static_cast<double>(shared) / static_cast<double>(2 * n - shared);
  double est = MinHasher::EstimateJaccard(hasher.Signature(a),
                                          hasher.Signature(b));
  EXPECT_NEAR(est, true_jaccard, 0.09);
}

INSTANTIATE_TEST_SUITE_P(
    OverlapLevels, MinhashAccuracy,
    ::testing::Combine(::testing::Values(0, 25, 50, 75, 100),
                       ::testing::Values(11u, 22u)));

// ---------------------------------------------------------------------
// SA-LSH containment on generated data, across parameter settings.

class SaLshContainment
    : public ::testing::TestWithParam<std::tuple<int, SemanticMode>> {};

TEST_P(SaLshContainment, CandidatesAreSubsetOfLsh) {
  auto [w, mode] = GetParam();
  data::CoraGeneratorConfig config;
  config.num_entities = 25;
  config.num_records = 150;
  config.seed = 33;
  data::Dataset d = GenerateCoraLike(config);
  Domain domain = MakeBibliographicDomain();

  LshParams p;
  p.k = 2;
  p.l = 10;
  p.attributes = {"authors", "title"};
  p.seed = 3;
  PairSet lsh_pairs = RunStreaming(LshBlocker(p), d).DistinctPairs();

  SemanticParams sp;
  sp.w = w;
  sp.mode = mode;
  PairSet sa_pairs = RunStreaming(SemanticAwareLshBlocker(p, sp, domain.semantics), d)
                         .DistinctPairs();
  EXPECT_LE(sa_pairs.size(), lsh_pairs.size());
  sa_pairs.ForEach([&lsh_pairs](uint32_t a, uint32_t b) {
    EXPECT_TRUE(lsh_pairs.Contains(a, b));
  });
}

INSTANTIATE_TEST_SUITE_P(
    Configs, SaLshContainment,
    ::testing::Combine(::testing::Values(1, 2, 3, 5),
                       ::testing::Values(SemanticMode::kAnd,
                                         SemanticMode::kOr)));

// ---------------------------------------------------------------------
// Metric identities on generated voter data across blocking techniques.

class MetricIdentities : public ::testing::TestWithParam<int> {};

TEST_P(MetricIdentities, BoundsAndHarmonicMean) {
  data::VoterGeneratorConfig config;
  config.num_records = 400;
  config.seed = static_cast<uint64_t>(GetParam());
  data::Dataset d = GenerateVoterLike(config);

  LshParams p;
  p.k = 3;
  p.l = 8;
  p.q = 2;
  p.attributes = {"first_name", "last_name"};
  eval::Metrics m = eval::Evaluate(d, RunStreaming(LshBlocker(p), d));

  for (double v : {m.pc, m.pq, m.rr, m.fm, m.pq_star, m.fm_star}) {
    EXPECT_GE(v, 0.0);
    EXPECT_LE(v, 1.0);
  }
  EXPECT_NEAR(m.fm, eval::HarmonicMean(m.pc, m.pq), 1e-12);
  EXPECT_NEAR(m.fm_star, eval::HarmonicMean(m.pc, m.pq_star), 1e-12);
  EXPECT_LE(m.pq_star, m.pq + 1e-12);  // Γm >= Γ
  EXPECT_LE(m.true_pairs, m.ground_truth_pairs);
  EXPECT_LE(m.true_pairs, m.distinct_pairs);
  EXPECT_EQ(m.all_pairs, d.TotalPairs());
}

INSTANTIATE_TEST_SUITE_P(Seeds, MetricIdentities,
                         ::testing::Values(1, 2, 3));

// ---------------------------------------------------------------------
// Analytic vs empirical SA-LSH collision: the measured collision rate of
// same-block placement for records with known textual/semantic similarity
// should be in the ballpark of the closed-form model.

TEST(CollisionModelValidation, EmpiricalMatchesAnalyticForIdenticalText) {
  // Two records with identical text (s = 1) and identical semantics
  // (s' = 1) must always collide; the model gives 1 - (1 - 1·1)^l = 1.
  data::Dataset d{data::Schema({"title", "authors", "journal", "booktitle",
                                "institution", "publisher", "year"})};
  for (int i = 0; i < 2; ++i) {
    d.Add({{"identical title text", "same author", "journal x", "", "", "",
            ""}},
          0);
  }
  Domain domain = MakeBibliographicDomain();
  LshParams p;
  p.k = 4;
  p.l = 5;
  p.attributes = {"authors", "title"};
  SemanticParams sp;
  sp.w = 1;
  sp.mode = SemanticMode::kOr;
  for (uint64_t seed = 0; seed < 10; ++seed) {
    p.seed = seed;
    sp.seed = seed;
    SemanticAwareLshBlocker blocker(p, sp, domain.semantics);
    EXPECT_TRUE(RunStreaming(blocker, d).InSameBlock(0, 1)) << seed;
  }
}

}  // namespace
}  // namespace sablock::core
