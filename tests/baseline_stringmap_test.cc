// Tests for the StringMap embedding and the StMT / StMNN baselines.

#include <gtest/gtest.h>

#include "run_streaming.h"

#include <cmath>

#include "baselines/stringmap.h"

namespace sablock::baselines {
namespace {

using core::BlockCollection;
using data::Dataset;
using data::Schema;

double Distance(const std::vector<double>& a, const std::vector<double>& b) {
  double s = 0.0;
  for (size_t i = 0; i < a.size(); ++i) s += (a[i] - b[i]) * (a[i] - b[i]);
  return std::sqrt(s);
}

TEST(StringMapEmbeddingTest, IdenticalStringsMapToSamePoint) {
  StringMapEmbedding emb(4, 7);
  auto points = emb.Embed({"hello", "hello", "world", "hellp"});
  EXPECT_NEAR(Distance(points[0], points[1]), 0.0, 1e-9);
}

TEST(StringMapEmbeddingTest, SimilarStringsCloserThanDissimilar) {
  StringMapEmbedding emb(6, 7);
  auto points = emb.Embed({"catherine", "katherine", "zzzzzzzzz",
                           "catherina", "qqqq", "wwwwwwww"});
  double near = Distance(points[0], points[3]);  // catherine/catherina
  double far = Distance(points[0], points[2]);   // catherine/zzzzzzzzz
  EXPECT_LT(near, far);
}

TEST(StringMapEmbeddingTest, HandlesDegenerateInputs) {
  StringMapEmbedding emb(3, 7);
  EXPECT_TRUE(emb.Embed({}).empty());
  auto one = emb.Embed({"only"});
  ASSERT_EQ(one.size(), 1u);
  auto same = emb.Embed({"x", "x", "x"});
  EXPECT_NEAR(Distance(same[0], same[2]), 0.0, 1e-9);
}

Dataset TypoDataset() {
  Dataset d{Schema({"name"})};
  d.Add({{"jonathan mitchell"}}, 0);
  d.Add({{"jonathan mitchel"}}, 0);
  d.Add({{"jonathon mitchell"}}, 0);
  d.Add({{"elizabeth harrington"}}, 1);
  d.Add({{"elizabeth harington"}}, 1);
  d.Add({{"xxsdlkfjqpwoeiru"}}, 2);
  return d;
}

TEST(StringMapThresholdTest, FindsTypoDuplicates) {
  Dataset d = TypoDataset();
  StringMapThreshold stmt(ExactKey({"name"}), /*threshold=*/0.8,
                          /*grid_size=*/10, /*dimensions=*/4);
  BlockCollection blocks = RunStreaming(stmt, d);
  EXPECT_TRUE(blocks.InSameBlock(0, 1));
  EXPECT_TRUE(blocks.InSameBlock(3, 4));
}

TEST(StringMapThresholdTest, SeparatesVeryDifferentStrings) {
  Dataset d = TypoDataset();
  StringMapThreshold stmt(ExactKey({"name"}), 0.9, 10, 4);
  BlockCollection blocks = RunStreaming(stmt, d);
  EXPECT_FALSE(blocks.InSameBlock(0, 5));
}

TEST(StringMapThresholdTest, NameEncodesParameters) {
  StringMapThreshold stmt(ExactKey({"a"}), 0.85, 100, 15);
  EXPECT_EQ(stmt.name(), "StMT(t=0.85,g=100,d=15)");
}

TEST(StringMapNearestNeighbourTest, EveryRecordGetsNeighbours) {
  Dataset d = TypoDataset();
  StringMapNearestNeighbour stmnn(ExactKey({"name"}), /*num_neighbours=*/2,
                                  /*grid_size=*/10, /*dimensions=*/4);
  BlockCollection blocks = RunStreaming(stmnn, d);
  // One block per record (each of the 6 records finds >= 1 candidate).
  EXPECT_EQ(blocks.NumBlocks(), d.size());
  for (const auto& b : blocks.blocks()) {
    EXPECT_GE(b.size(), 2u);
    EXPECT_LE(b.size(), 3u);  // record + at most 2 neighbours
  }
}

TEST(StringMapNearestNeighbourTest, NearestNeighbourIsTheTypoTwin) {
  Dataset d = TypoDataset();
  StringMapNearestNeighbour stmnn(ExactKey({"name"}), 1, 10, 4);
  BlockCollection blocks = RunStreaming(stmnn, d);
  EXPECT_TRUE(blocks.InSameBlock(0, 1) || blocks.InSameBlock(0, 2));
}

TEST(StringMapNearestNeighbourTest, NameEncodesParameters) {
  StringMapNearestNeighbour stmnn(ExactKey({"a"}), 5, 1000, 20);
  EXPECT_EQ(stmnn.name(), "StMNN(nn=5,g=1000,d=20)");
}

TEST(StringMapTest, DeterministicForSeed) {
  Dataset d = TypoDataset();
  StringMapThreshold a(ExactKey({"name"}), 0.8, 10, 4, /*seed=*/9);
  StringMapThreshold b(ExactKey({"name"}), 0.8, 10, 4, /*seed=*/9);
  EXPECT_EQ(RunStreaming(a, d).TotalComparisons(), RunStreaming(b, d).TotalComparisons());
}

}  // namespace
}  // namespace sablock::baselines
