// End-to-end reproduction of the paper's running example (Fig. 1,
// Examples 4.2, 4.5 and 5.1): six citation records r1..r6, the
// bibliographic taxonomy of Fig. 3, and the semantic interpretations of
// Example 4.2, driven through the public SA-LSH API.

#include <gtest/gtest.h>

#include "run_streaming.h"

#include <algorithm>
#include <memory>
#include <string>
#include <vector>

#include "core/domains.h"
#include "core/lsh_blocker.h"
#include "core/semhash.h"
#include "eval/metrics.h"

namespace sablock::core {
namespace {

using data::Dataset;
using data::Record;
using data::Schema;

// The six records of Fig. 1. Following Example 4.2, the PUBLISHER values
// are mapped onto the journal/booktitle/institution layout the Table 1
// semantic function expects: r1/r3 proceedings (booktitle), r4/r5
// technical reports (institution), r2 peer-reviewed venue, r6 unknown.
Dataset Fig1Dataset() {
  Dataset d{Schema({"title", "authors", "journal", "booktitle",
                    "institution", "publisher", "year"})};
  auto add = [&d](const char* title, const char* authors,
                  const char* journal, const char* booktitle,
                  const char* institution, const char* publisher,
                  data::EntityId e) {
    Record r;
    r.values = {title, authors, journal, booktitle, institution, publisher,
                ""};
    d.Add(std::move(r), e);
  };
  // r1 (id 0)
  add("The cascade-correlation learning architecture",
      "E. Fahlman and C. Lebiere", "", "NISPS Proceedings", "", "", 0);
  // r2 (id 1): semantically ambiguous between journal and proceedings.
  add("Cascade correlation learning architecture",
      "E. Fahlman & C. Lebiere", "Neural Information Systems",
      "Neural Information Systems", "", "", 0);
  // r3 (id 2): a different paper, also proceedings.
  add("A genetic cascade correlation learning algorithm", "",
      "", "Proceedings on Neural Ntw.", "", "", 1);
  // r4 (id 3): technical report with the same title as r1.
  add("The cascade corelation learning architecture",
      "Fahlman, S., & Lebiere, C.", "", "", "TR", "TR", 2);
  // r5 (id 4): another technical report.
  add("Controlled growth of cascade correlation nets", "",
      "", "", "Technical Report (TR)", "Technical Report (TR)", 3);
  // r6 (id 5): same entity as r1/r2, completely ambiguous semantics.
  add("The cascade-correlation learn architecture",
      "Lebiere, C. and Fahlman, S.", "", "", "", "", 0);
  return d;
}

LshParams Fig1LshParams() {
  LshParams p;
  p.k = 2;
  p.l = 24;  // generous tables: textual recall is near-certain
  p.q = 3;
  p.attributes = {"authors", "title"};
  p.seed = 17;
  return p;
}

TEST(PaperRunningExample, SemanticInterpretationsMatchExample42) {
  Dataset d = Fig1Dataset();
  Domain domain = MakeBibliographicDomain();
  const Taxonomy& t = domain.taxonomy();

  auto names = [&](data::RecordId id) {
    std::vector<std::string> out;
    for (ConceptId c : domain.semantics->Interpret(d, id)) {
      out.push_back(t.name(c));
    }
    std::sort(out.begin(), out.end());
    return out;
  };
  using V = std::vector<std::string>;
  EXPECT_EQ(names(0), (V{"C4"}));        // r1: proceedings
  EXPECT_EQ(names(1), (V{"C3", "C4"})); // r2: journal-or-proceedings
  EXPECT_EQ(names(2), (V{"C4"}));        // r3: proceedings
  EXPECT_EQ(names(3), (V{"C7", "C8"})); // r4: non-peer-reviewed
  EXPECT_EQ(names(4), (V{"C7", "C8"})); // r5: non-peer-reviewed
  EXPECT_EQ(names(5), (V{"C1"}));        // r6: ambiguous publication
}

TEST(PaperRunningExample, SemanticSimilaritiesFollowExample45Shape) {
  Dataset d = Fig1Dataset();
  Domain domain = MakeBibliographicDomain();
  const Taxonomy& t = domain.taxonomy();
  auto z = [&](data::RecordId id) {
    return domain.semantics->Interpret(d, id);
  };
  // r1 vs r2 share the proceedings concept.
  EXPECT_GT(t.RecordSimilarity(z(0), z(1)), 0.0);
  // r1 vs r4: proceedings vs technical report -> 0.
  EXPECT_DOUBLE_EQ(t.RecordSimilarity(z(0), z(3)), 0.0);
  EXPECT_DOUBLE_EQ(t.RecordSimilarity(z(0), z(4)), 0.0);
  // r6 (ambiguous publication) relates to every publication record.
  for (data::RecordId id = 0; id < 5; ++id) {
    EXPECT_GT(t.RecordSimilarity(z(5), z(id)), 0.0) << id;
  }
}

// Example 5.1 / Fig. 1: textual LSH puts r4 with r1/r2/r6; the semantic
// filter removes r4 from their blocks while keeping r1, r2, r6 together.
TEST(PaperRunningExample, SemanticFilterRemovesTechReportFromB3) {
  Dataset d = Fig1Dataset();
  Domain domain = MakeBibliographicDomain();

  LshBlocker lsh(Fig1LshParams());
  BlockCollection textual = RunStreaming(lsh, d);
  // Textually, the near-identical titles collide (B1 of Fig. 1).
  EXPECT_TRUE(textual.InSameBlock(0, 3));
  EXPECT_TRUE(textual.InSameBlock(0, 1));
  EXPECT_TRUE(textual.InSameBlock(0, 5));

  SemanticParams sp;
  sp.w = 5;
  sp.mode = SemanticMode::kOr;
  SemanticAwareLshBlocker sa(Fig1LshParams(), sp, domain.semantics);
  BlockCollection combined = RunStreaming(sa, d);
  // B3: r4 is pushed out of r1/r2/r6's blocks...
  EXPECT_FALSE(combined.InSameBlock(0, 3));
  EXPECT_FALSE(combined.InSameBlock(1, 3));
  // ...while the true cluster stays together.
  EXPECT_TRUE(combined.InSameBlock(0, 1));
  EXPECT_TRUE(combined.InSameBlock(0, 5));
  EXPECT_TRUE(combined.InSameBlock(1, 5));
}

TEST(PaperRunningExample, SaLshImprovesQualityOnFig1) {
  Dataset d = Fig1Dataset();
  Domain domain = MakeBibliographicDomain();
  SemanticParams sp;
  sp.w = 5;
  sp.mode = SemanticMode::kOr;

  eval::Metrics lsh = eval::Evaluate(d, RunStreaming(LshBlocker(Fig1LshParams()), d));
  eval::Metrics sa = eval::Evaluate(
      d, RunStreaming(SemanticAwareLshBlocker(Fig1LshParams(), sp, domain.semantics), d));
  // The paper's headline on this example: fewer candidate pairs without
  // losing the true matches.
  EXPECT_LT(sa.distinct_pairs, lsh.distinct_pairs);
  EXPECT_DOUBLE_EQ(sa.pc, lsh.pc);
  EXPECT_GT(sa.pq, lsh.pq);
}

// The 5-bit signature layout of Fig. 4(b): r4's semhash signature is
// disjoint from r1/r2/r6's.
TEST(PaperRunningExample, SemhashSignaturesMatchFig4) {
  Dataset d = Fig1Dataset();
  Domain domain = MakeBibliographicDomain();
  const Taxonomy& t = domain.taxonomy();
  auto zetas = domain.semantics->InterpretAll(d);
  SemhashEncoder enc = SemhashEncoder::Build(t, zetas);
  EXPECT_EQ(enc.dimension(), 5u);  // C3, C4, C5, C7, C8 (C1 covers C5)
  auto sigs = enc.EncodeAll(t, zetas);

  EXPECT_EQ(sigs[0].PopCount(), 1u);  // r1: {C4}
  EXPECT_EQ(sigs[1].PopCount(), 2u);  // r2: {C3, C4}
  EXPECT_EQ(sigs[3].PopCount(), 2u);  // r4: {C7, C8}
  EXPECT_EQ(sigs[5].PopCount(), 5u);  // r6: all of C1's leaves
  EXPECT_EQ(sigs[0].AndCount(sigs[3]), 0u);
  EXPECT_GT(sigs[0].AndCount(sigs[5]), 0u);
  EXPECT_GT(sigs[0].AndCount(sigs[1]), 0u);
}

}  // namespace
}  // namespace sablock::core
