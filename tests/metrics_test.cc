// Tests for the evaluation measures PC, PQ, RR, FM (and PQ*, FM*).

#include <gtest/gtest.h>

#include "eval/metrics.h"

namespace sablock::eval {
namespace {

using core::BlockCollection;
using data::Dataset;
using data::Schema;

// 6 records: entities {0,0,0}, {1,1}, {2}. Ω_tp = 3 + 1 = 4, Ω = 15.
Dataset LabeledDataset() {
  Dataset d{Schema({"x"})};
  for (int i = 0; i < 3; ++i) d.Add({{"a"}}, 0);
  for (int i = 0; i < 2; ++i) d.Add({{"b"}}, 1);
  d.Add({{"c"}}, 2);
  return d;
}

TEST(MetricsTest, PerfectBlocking) {
  Dataset d = LabeledDataset();
  BlockCollection blocks;
  blocks.Add({0, 1, 2});
  blocks.Add({3, 4});
  Metrics m = Evaluate(d, blocks);
  EXPECT_DOUBLE_EQ(m.pc, 1.0);
  EXPECT_DOUBLE_EQ(m.pq, 1.0);
  EXPECT_DOUBLE_EQ(m.fm, 1.0);
  EXPECT_EQ(m.true_pairs, 4u);
  EXPECT_EQ(m.distinct_pairs, 4u);
  EXPECT_NEAR(m.rr, 1.0 - 4.0 / 15.0, 1e-12);
}

TEST(MetricsTest, PartialBlocking) {
  Dataset d = LabeledDataset();
  BlockCollection blocks;
  blocks.Add({0, 1, 5});  // catches true pair (0,1), adds false (0,5)(1,5)
  Metrics m = Evaluate(d, blocks);
  EXPECT_NEAR(m.pc, 1.0 / 4.0, 1e-12);
  EXPECT_NEAR(m.pq, 1.0 / 3.0, 1e-12);
  EXPECT_NEAR(m.rr, 1.0 - 3.0 / 15.0, 1e-12);
  EXPECT_NEAR(m.fm, HarmonicMean(m.pc, m.pq), 1e-12);
}

TEST(MetricsTest, EmptyBlockingIsAllZero) {
  Dataset d = LabeledDataset();
  Metrics m = Evaluate(d, BlockCollection{});
  EXPECT_DOUBLE_EQ(m.pc, 0.0);
  EXPECT_DOUBLE_EQ(m.pq, 0.0);
  EXPECT_DOUBLE_EQ(m.fm, 0.0);
  EXPECT_DOUBLE_EQ(m.rr, 1.0);
}

TEST(MetricsTest, PqStarCountsRedundantComparisons) {
  Dataset d = LabeledDataset();
  BlockCollection blocks;
  blocks.Add({0, 1});
  blocks.Add({0, 1});  // same pair again: Γm = 2, Γ = 1
  Metrics m = Evaluate(d, blocks);
  EXPECT_EQ(m.total_comparisons, 2u);
  EXPECT_EQ(m.distinct_pairs, 1u);
  EXPECT_DOUBLE_EQ(m.pq, 1.0);
  EXPECT_DOUBLE_EQ(m.pq_star, 0.5);
  EXPECT_GT(m.fm, m.fm_star);
}

TEST(MetricsTest, UnlabeledRecordsNeverCountAsMatches) {
  Dataset d{Schema({"x"})};
  d.Add({{"a"}}, data::kUnknownEntity);
  d.Add({{"a"}}, data::kUnknownEntity);
  BlockCollection blocks;
  blocks.Add({0, 1});
  Metrics m = Evaluate(d, blocks);
  EXPECT_EQ(m.true_pairs, 0u);
  EXPECT_EQ(m.ground_truth_pairs, 0u);
  EXPECT_DOUBLE_EQ(m.pc, 0.0);
}

TEST(HarmonicMeanTest, Basics) {
  EXPECT_DOUBLE_EQ(HarmonicMean(1.0, 1.0), 1.0);
  EXPECT_DOUBLE_EQ(HarmonicMean(0.0, 1.0), 0.0);
  EXPECT_NEAR(HarmonicMean(0.5, 1.0), 2.0 / 3.0, 1e-12);
  // Harmonic mean is bounded by the smaller argument.
  EXPECT_LE(HarmonicMean(0.2, 0.9), 0.9);
  EXPECT_GE(HarmonicMean(0.2, 0.9), 0.2);
}

TEST(MetricsTest, SummaryContainsKeyFields) {
  Dataset d = LabeledDataset();
  BlockCollection blocks;
  blocks.Add({0, 1});
  Metrics m = Evaluate(d, blocks);
  std::string s = Summary(m);
  EXPECT_NE(s.find("PC="), std::string::npos);
  EXPECT_NE(s.find("FM="), std::string::npos);
  EXPECT_NE(s.find("pairs=1"), std::string::npos);
}

// Fig. 1 golden values: with the ground truth {r1,r2,r6}=e1, {r4,r5}=e2
// (r3 its own entity), blocking B3 finds 3 of the 4 true pairs with only
// 4 candidates; B1 finds 3 with 6 candidates.
TEST(MetricsTest, Fig1QualityComparison) {
  Dataset d{Schema({"x"})};
  d.Add({{"r1"}}, 0);
  d.Add({{"r2"}}, 0);
  d.Add({{"r3"}}, 1);
  d.Add({{"r4"}}, 2);
  d.Add({{"r5"}}, 2);
  d.Add({{"r6"}}, 0);

  BlockCollection b1;
  b1.Add({0, 1, 3, 5});
  Metrics m1 = Evaluate(d, b1);

  BlockCollection b3;
  b3.Add({0, 1, 5});
  b3.Add({3, 5});
  Metrics m3 = Evaluate(d, b3);

  EXPECT_EQ(m1.distinct_pairs, 6u);
  EXPECT_EQ(m3.distinct_pairs, 4u);
  EXPECT_GT(m3.pq, m1.pq);
  EXPECT_GE(m3.rr, m1.rr);
}

}  // namespace
}  // namespace sablock::eval
