// Tests for src/report/: the JSON value/writer/parser and the
// RunResult/SuiteResult (de)serialization that sablock_bench emits.

#include <cstdint>
#include <limits>
#include <string>

#include "gtest/gtest.h"
#include "obs/metrics.h"
#include "report/json.h"
#include "report/run_result.h"

namespace sablock::report {
namespace {

// ----------------------------------------------------------------- JSON

TEST(JsonTest, ScalarDump) {
  EXPECT_EQ(Json().Dump(), "null");
  EXPECT_EQ(Json(true).Dump(), "true");
  EXPECT_EQ(Json(false).Dump(), "false");
  EXPECT_EQ(Json(static_cast<int64_t>(-42)).Dump(), "-42");
  EXPECT_EQ(Json(static_cast<uint64_t>(18446744073709551615ull)).Dump(),
            "18446744073709551615");
  EXPECT_EQ(Json("hi").Dump(), "\"hi\"");
}

TEST(JsonTest, DoubleDumpIsRoundTrippableAndMarked) {
  // Integral doubles keep a ".0" marker so they parse back as doubles.
  EXPECT_EQ(Json(1.0).Dump(), "1.0");
  EXPECT_EQ(Json(0.5).Dump(), "0.5");
  // Shortest-round-trip form preserves the exact bits.
  double tricky = 0.1 + 0.2;
  Json parsed;
  ASSERT_TRUE(Json::Parse(Json(tricky).Dump(), &parsed).ok());
  EXPECT_EQ(parsed.double_value(), tricky);
}

TEST(JsonTest, NonFiniteDoublesSerializeAsNull) {
  EXPECT_EQ(Json(std::numeric_limits<double>::quiet_NaN()).Dump(), "null");
  EXPECT_EQ(Json(std::numeric_limits<double>::infinity()).Dump(), "null");
}

TEST(JsonTest, StringEscaping) {
  Json j(std::string("a\"b\\c\nd\te\x01" "f"));
  EXPECT_EQ(j.Dump(), "\"a\\\"b\\\\c\\nd\\te\\u0001f\"");
  // And the escaped form parses back to the original bytes.
  Json parsed;
  ASSERT_TRUE(Json::Parse(j.Dump(), &parsed).ok());
  EXPECT_EQ(parsed.string_value(), "a\"b\\c\nd\te\x01" "f");
}

TEST(JsonTest, UnicodeEscapesDecodeToUtf8) {
  Json parsed;
  ASSERT_TRUE(Json::Parse("\"\\u00e9\\u20ac\"", &parsed).ok());
  EXPECT_EQ(parsed.string_value(), "\xc3\xa9\xe2\x82\xac");  // é€
  // Surrogate pair: U+1F600.
  ASSERT_TRUE(Json::Parse("\"\\ud83d\\ude00\"", &parsed).ok());
  EXPECT_EQ(parsed.string_value(), "\xf0\x9f\x98\x80");
}

TEST(JsonTest, ObjectPreservesInsertionOrder) {
  Json j = Json::Object();
  j.Set("zebra", 1);
  j.Set("apple", 2);
  j.Set("mango", 3);
  EXPECT_EQ(j.Dump(), "{\"zebra\":1,\"apple\":2,\"mango\":3}");
  j.Set("apple", 9);  // overwrite keeps the slot
  EXPECT_EQ(j.Dump(), "{\"zebra\":1,\"apple\":9,\"mango\":3}");
}

TEST(JsonTest, NestedRoundTrip) {
  Json j = Json::Object();
  j.Set("list", Json::Array().Append(1).Append("two").Append(Json()));
  j.Set("nested", Json::Object().Set("pi", 3.14159).Set("ok", true));
  j.Set("empty_array", Json::Array());
  j.Set("empty_object", Json::Object());

  for (int indent : {0, 2}) {
    Json parsed;
    ASSERT_TRUE(Json::Parse(j.Dump(indent), &parsed).ok());
    EXPECT_EQ(parsed.Dump(), j.Dump()) << "indent=" << indent;
  }
}

TEST(JsonTest, ParseNumbersKeepIntegerness) {
  Json parsed;
  ASSERT_TRUE(Json::Parse("[-3, 18446744073709551615, 2.5, 1e3]",
                          &parsed).ok());
  EXPECT_EQ(parsed.items()[0].type(), Json::Type::kInt);
  EXPECT_EQ(parsed.items()[0].int_value(), -3);
  EXPECT_EQ(parsed.items()[1].type(), Json::Type::kUint);
  EXPECT_EQ(parsed.items()[1].uint_value(), 18446744073709551615ull);
  EXPECT_EQ(parsed.items()[2].type(), Json::Type::kDouble);
  EXPECT_EQ(parsed.items()[3].double_value(), 1000.0);
}

TEST(JsonTest, ParseErrors) {
  Json out;
  EXPECT_FALSE(Json::Parse("", &out).ok());
  EXPECT_FALSE(Json::Parse("{", &out).ok());
  EXPECT_FALSE(Json::Parse("[1,]", &out).ok());
  EXPECT_FALSE(Json::Parse("{\"a\":1} trailing", &out).ok());
  EXPECT_FALSE(Json::Parse("\"unterminated", &out).ok());
  EXPECT_FALSE(Json::Parse("\"bad\\q\"", &out).ok());
  EXPECT_FALSE(Json::Parse("nul", &out).ok());
  EXPECT_FALSE(Json::Parse("\"ctrl\x01\"", &out).ok());
}

TEST(JsonTest, WhitespaceTolerated) {
  Json out;
  ASSERT_TRUE(Json::Parse("  {\n \"a\" : [ 1 , 2 ] \t}\r\n", &out).ok());
  EXPECT_EQ(out.Dump(), "{\"a\":[1,2]}");
}

// ---------------------------------------------------------- RepeatStats

TEST(RepeatStatsTest, Summarize) {
  RepeatStats s = SummarizeSeconds({3.0, 1.0, 2.0});
  EXPECT_EQ(s.repeats, 3);
  EXPECT_DOUBLE_EQ(s.min_s, 1.0);
  EXPECT_DOUBLE_EQ(s.mean_s, 2.0);
  EXPECT_DOUBLE_EQ(s.p50_s, 2.0);

  s = SummarizeSeconds({4.0, 1.0});
  EXPECT_DOUBLE_EQ(s.p50_s, 1.0);  // lower median

  s = SummarizeSeconds({});
  EXPECT_EQ(s.repeats, 0);
}

// ------------------------------------------------- RunResult round-trip

RunResult MakeRun() {
  RunResult run;
  run.scenario = "table3_fig11_baselines";
  run.name = "SA-LSH \"quoted\\name\"";  // exercises escaping end-to-end
  run.spec = "sa-lsh:k=4,l=63,q=4,seed=7,w=5,mode=or,domain=bib";
  run.dataset = "cora-like";
  run.dataset_records = 1879;
  run.AddParam("best_setting", "sa-lsh(w=5)");
  run.AddParam("settings", "1");
  run.time = SummarizeSeconds({0.25, 0.21, 0.22});
  run.stages.push_back({"token-blocking", 120, 4567, 99, 0.031});
  run.stages.push_back({"meta", 80, 1234, 50, 0.013});
  run.has_metrics = true;
  run.metrics.pc = 0.97;
  run.metrics.pq = 0.42;
  run.metrics.rr = 0.9999;
  run.metrics.fm = 0.59;
  run.metrics.pq_star = 0.5;
  run.metrics.fm_star = 0.66;
  run.metrics.distinct_pairs = 123456;
  run.metrics.true_pairs = 9876;
  run.metrics.total_comparisons = 234567;
  run.metrics.ground_truth_pairs = 10000;
  run.metrics.all_pairs = 1764381;
  run.metrics.num_blocks = 321;
  run.metrics.max_block_size = 77;
  run.has_latency = true;
  run.latency = {2500, 14.5, 230.75, 61234.5};
  run.AddValue("speed_of_light", 1.0);
  return run;
}

TEST(RunResultTest, JsonRoundTrip) {
  RunResult run = MakeRun();
  std::string text = ToJson(run).Dump(2);

  Json parsed;
  ASSERT_TRUE(Json::Parse(text, &parsed).ok());
  RunResult back;
  Status status = RunResultFromJson(parsed, &back);
  ASSERT_TRUE(status.ok()) << status.message();

  EXPECT_EQ(back.scenario, run.scenario);
  EXPECT_EQ(back.name, run.name);
  EXPECT_EQ(back.spec, run.spec);
  EXPECT_EQ(back.dataset, run.dataset);
  EXPECT_EQ(back.dataset_records, run.dataset_records);
  EXPECT_EQ(back.params, run.params);
  EXPECT_EQ(back.time.repeats, run.time.repeats);
  EXPECT_DOUBLE_EQ(back.time.min_s, run.time.min_s);
  EXPECT_DOUBLE_EQ(back.time.mean_s, run.time.mean_s);
  EXPECT_DOUBLE_EQ(back.time.p50_s, run.time.p50_s);
  ASSERT_EQ(back.stages.size(), run.stages.size());
  for (size_t i = 0; i < run.stages.size(); ++i) {
    EXPECT_EQ(back.stages[i].name, run.stages[i].name);
    EXPECT_EQ(back.stages[i].blocks, run.stages[i].blocks);
    EXPECT_EQ(back.stages[i].comparisons, run.stages[i].comparisons);
    EXPECT_EQ(back.stages[i].max_block_size, run.stages[i].max_block_size);
    EXPECT_DOUBLE_EQ(back.stages[i].seconds, run.stages[i].seconds);
  }
  ASSERT_TRUE(back.has_metrics);
  EXPECT_DOUBLE_EQ(back.metrics.pc, run.metrics.pc);
  EXPECT_DOUBLE_EQ(back.metrics.fm_star, run.metrics.fm_star);
  EXPECT_EQ(back.metrics.distinct_pairs, run.metrics.distinct_pairs);
  EXPECT_EQ(back.metrics.max_block_size, run.metrics.max_block_size);
  ASSERT_TRUE(back.has_latency);
  EXPECT_EQ(back.latency.ops, run.latency.ops);
  EXPECT_DOUBLE_EQ(back.latency.p50_us, run.latency.p50_us);
  EXPECT_DOUBLE_EQ(back.latency.p99_us, run.latency.p99_us);
  EXPECT_DOUBLE_EQ(back.latency.qps, run.latency.qps);
  EXPECT_EQ(back.values, run.values);

  // Serialize → parse → serialize is byte-stable (stable key order).
  EXPECT_EQ(ToJson(back).Dump(2), text);
}

TEST(RunResultTest, OptionalSectionsOmitted) {
  RunResult run;
  run.scenario = "fig5_collision";
  run.name = "AND,w=1";
  Json j = ToJson(run);
  EXPECT_EQ(j.Find("spec"), nullptr);
  EXPECT_EQ(j.Find("dataset"), nullptr);
  EXPECT_EQ(j.Find("params"), nullptr);
  EXPECT_EQ(j.Find("time"), nullptr);
  EXPECT_EQ(j.Find("stages"), nullptr);
  EXPECT_EQ(j.Find("metrics"), nullptr);
  EXPECT_EQ(j.Find("latency"), nullptr);
  EXPECT_EQ(j.Find("values"), nullptr);

  RunResult back;
  ASSERT_TRUE(RunResultFromJson(j, &back).ok());
  EXPECT_FALSE(back.has_metrics);
  EXPECT_FALSE(back.has_latency);
  EXPECT_EQ(back.time.repeats, 0);
}

TEST(LatencyStatsTest, SummarizeNearestRank) {
  // 100 ops at 1..100 microseconds over a 0.01s wall: nearest rank is
  // the ceil(p*N)-th smallest value — p50 -> 50th (50us), p99 -> 99th
  // (99us).
  std::vector<double> ops;
  for (int i = 100; i >= 1; --i) ops.push_back(i * 1e-6);
  LatencyStats s = SummarizeLatency(std::move(ops), 0.01);
  EXPECT_EQ(s.ops, 100u);
  EXPECT_DOUBLE_EQ(s.p50_us, 50.0);
  EXPECT_DOUBLE_EQ(s.p99_us, 99.0);
  EXPECT_DOUBLE_EQ(s.qps, 10000.0);

  LatencyStats empty = SummarizeLatency({}, 1.0);
  EXPECT_EQ(empty.ops, 0u);
  EXPECT_DOUBLE_EQ(empty.qps, 0.0);

  LatencyStats zero_wall = SummarizeLatency({1e-6}, 0.0);
  EXPECT_EQ(zero_wall.ops, 1u);
  EXPECT_DOUBLE_EQ(zero_wall.qps, 0.0);  // no wall time, no rate
}

TEST(LatencyStatsTest, DegenerateWindowsAreWellDefined) {
  // Empty window: every field is zero, nothing indexes into the samples.
  LatencyStats empty = SummarizeLatency({}, 0.0);
  EXPECT_EQ(empty.ops, 0u);
  EXPECT_DOUBLE_EQ(empty.p50_us, 0.0);
  EXPECT_DOUBLE_EQ(empty.p99_us, 0.0);
  EXPECT_DOUBLE_EQ(empty.qps, 0.0);

  // Single sample: it IS every percentile.
  LatencyStats one = SummarizeLatency({7e-6}, 7e-6);
  EXPECT_EQ(one.ops, 1u);
  EXPECT_DOUBLE_EQ(one.p50_us, 7.0);
  EXPECT_DOUBLE_EQ(one.p99_us, 7.0);

  // Two samples: p50 is the 1st smallest (ceil(0.5*2) = 1), p99 the 2nd.
  LatencyStats two = SummarizeLatency({3e-6, 1e-6}, 4e-6);
  EXPECT_EQ(two.ops, 2u);
  EXPECT_DOUBLE_EQ(two.p50_us, 1.0);
  EXPECT_DOUBLE_EQ(two.p99_us, 3.0);
}

TEST(RunResultTest, FromJsonRejectsMissingName) {
  Json j = Json::Object();
  j.Set("scenario", "x");
  RunResult out;
  Status status = RunResultFromJson(j, &out);
  EXPECT_FALSE(status.ok());
  EXPECT_NE(status.message().find("name"), std::string::npos);
}

// ------------------------------------------------ SuiteResult round-trip

TEST(SuiteResultTest, JsonRoundTrip) {
  SuiteResult suite;
  suite.quick = true;
  suite.repeat = 3;
  suite.scenarios.push_back({"table3_fig11_baselines", 0, 12.5});
  suite.scenarios.push_back({"engine_scaling", 1, 3.25});
  suite.runs.push_back(MakeRun());

  std::string text = ToJson(suite).Dump(2);
  Json parsed;
  ASSERT_TRUE(Json::Parse(text, &parsed).ok());
  SuiteResult back;
  Status status = SuiteResultFromJson(parsed, &back);
  ASSERT_TRUE(status.ok()) << status.message();

  EXPECT_EQ(back.tool, "sablock_bench");
  EXPECT_EQ(back.schema_version, kSchemaVersion);
  EXPECT_TRUE(back.quick);
  EXPECT_EQ(back.repeat, 3);
  ASSERT_EQ(back.scenarios.size(), 2u);
  EXPECT_EQ(back.scenarios[1].name, "engine_scaling");
  EXPECT_EQ(back.scenarios[1].exit_code, 1);
  ASSERT_EQ(back.runs.size(), 1u);
  EXPECT_EQ(back.runs[0].name, suite.runs[0].name);
  EXPECT_EQ(ToJson(back).Dump(2), text);
}

TEST(SuiteResultTest, MetricsSnapshotRoundTrip) {
  // Schema v2: the optional suite-level metrics object survives the
  // round trip byte-for-byte and restores the snapshot structs.
  SuiteResult suite;
  suite.runs.push_back(MakeRun());
  obs::MetricsRegistry registry;
  registry.GetCounter("obs_rt_hits", "hits", "column", "token")->Add(5);
  registry.GetHistogram("obs_rt_seconds", "latency", {0.5, 2.0})
      ->Observe(1.0);
  suite.metrics_snapshot = registry.Snapshot();
  suite.has_metrics_snapshot = true;

  std::string text = ToJson(suite).Dump(2);
  Json parsed;
  ASSERT_TRUE(Json::Parse(text, &parsed).ok());
  SuiteResult back;
  Status status = SuiteResultFromJson(parsed, &back);
  ASSERT_TRUE(status.ok()) << status.message();
  ASSERT_TRUE(back.has_metrics_snapshot);
  const obs::SampleSnapshot* hits =
      back.metrics_snapshot.Find("obs_rt_hits", "token");
  ASSERT_NE(hits, nullptr);
  EXPECT_EQ(hits->counter, 5u);
  const obs::SampleSnapshot* seconds =
      back.metrics_snapshot.Find("obs_rt_seconds");
  ASSERT_NE(seconds, nullptr);
  EXPECT_EQ(seconds->count, 1u);
  EXPECT_EQ(ToJson(back).Dump(2), text);
}

TEST(SuiteResultTest, RejectsWrongSchemaVersion) {
  SuiteResult suite;
  Json j = ToJson(suite);
  j.Set("schema_version", static_cast<int64_t>(kSchemaVersion + 1));
  SuiteResult back;
  Status status = SuiteResultFromJson(j, &back);
  EXPECT_FALSE(status.ok());
  EXPECT_NE(status.message().find("schema_version"), std::string::npos);
}

TEST(SuiteResultTest, RejectsNonObjectAndMissingRuns) {
  SuiteResult back;
  EXPECT_FALSE(SuiteResultFromJson(Json(1.5), &back).ok());
  Json j = ToJson(SuiteResult());
  Json no_runs = Json::Object();
  for (const auto& [key, value] : j.members()) {
    if (key != "runs") no_runs.Set(key, value);
  }
  EXPECT_FALSE(SuiteResultFromJson(no_runs, &back).ok());
}

}  // namespace
}  // namespace sablock::report
