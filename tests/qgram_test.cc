// Tests for q-gram extraction and Jaccard over gram sets (the shingling
// substrate of Section 5.1).

#include <gtest/gtest.h>

#include "common/hashing.h"
#include "text/qgram.h"

namespace sablock::text {
namespace {

TEST(QGramsTest, UnpaddedBasic) {
  std::vector<std::string> grams = QGrams("abcd", 2);
  ASSERT_EQ(grams.size(), 3u);
  EXPECT_EQ(grams[0], "ab");
  EXPECT_EQ(grams[1], "bc");
  EXPECT_EQ(grams[2], "cd");
}

TEST(QGramsTest, PaddedAddsFrame) {
  std::vector<std::string> grams = QGrams("ab", 2, /*padded=*/true);
  // "#ab$" -> "#a", "ab", "b$"
  ASSERT_EQ(grams.size(), 3u);
  EXPECT_EQ(grams[0], "#a");
  EXPECT_EQ(grams[1], "ab");
  EXPECT_EQ(grams[2], "b$");
}

TEST(QGramsTest, ShortStringYieldsWholeString) {
  std::vector<std::string> grams = QGrams("ab", 3);
  ASSERT_EQ(grams.size(), 1u);
  EXPECT_EQ(grams[0], "ab");
}

TEST(QGramsTest, EmptyAndDegenerate) {
  EXPECT_TRUE(QGrams("", 2).empty());
  EXPECT_TRUE(QGrams("abc", 0).empty());
  EXPECT_FALSE(QGrams("", 2, /*padded=*/true).empty());  // frame only
}

TEST(QGramSetTest, SortedAndDeduplicated) {
  std::vector<std::string> set = QGramSet("aaaa", 2);
  ASSERT_EQ(set.size(), 1u);
  EXPECT_EQ(set[0], "aa");
}

TEST(QGramHashesTest, MatchesSetSemantics) {
  std::vector<uint64_t> h1 = QGramHashes("abcabc", 3);
  // distinct 3-grams: abc, bca, cab -> 3 hashes
  EXPECT_EQ(h1.size(), 3u);
  EXPECT_TRUE(std::is_sorted(h1.begin(), h1.end()));
  EXPECT_TRUE(QGramHashes("", 3).empty());
  EXPECT_EQ(QGramHashes("ab", 3).size(), 1u);  // short-string fallback
}

TEST(QGramWindowHashesTest, MatchesHashBytesPerWindow) {
  // Lengths straddle the SIMD kernels' vector/tail boundary; q values
  // cover the vector paths (q<=5 AVX2, q<=7 SSE4.2) and the q>7 scalar
  // fallback.
  const std::string text = "the quick brown fox jumps over the lazy dog";
  for (int q : {1, 2, 3, 5, 7, 9}) {
    for (size_t len = static_cast<size_t>(q); len <= text.size(); ++len) {
      std::string_view s(text.data(), len);
      std::vector<uint64_t> out(len - static_cast<size_t>(q) + 1);
      QGramWindowHashes(s, q, out);
      for (size_t i = 0; i < out.size(); ++i) {
        EXPECT_EQ(out[i], HashBytes(s.substr(i, static_cast<size_t>(q))))
            << "q=" << q << " len=" << len << " i=" << i;
      }
    }
  }
}

TEST(JaccardSortedTest, KnownValues) {
  EXPECT_DOUBLE_EQ(JaccardSorted({"a", "b"}, {"a", "b"}), 1.0);
  EXPECT_DOUBLE_EQ(JaccardSorted({"a"}, {"b"}), 0.0);
  EXPECT_DOUBLE_EQ(JaccardSorted({}, {}), 1.0);
  EXPECT_DOUBLE_EQ(JaccardSorted({"a"}, {}), 0.0);
  EXPECT_NEAR(JaccardSorted({"a", "b", "c"}, {"b", "c", "d"}), 0.5, 1e-12);
}

TEST(JaccardSortedHashesTest, AgreesWithStringJaccard) {
  std::string a = "cascade correlation";
  std::string b = "cascade corelation";
  double via_hashes =
      JaccardSortedHashes(QGramHashes(a, 3), QGramHashes(b, 3));
  double via_strings = JaccardSorted(QGramSet(a, 3), QGramSet(b, 3));
  EXPECT_NEAR(via_hashes, via_strings, 1e-12);
}

}  // namespace
}  // namespace sablock::text
