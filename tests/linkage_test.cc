// Tests for record-linkage (two-dataset) blocking support.

#include <gtest/gtest.h>

#include "run_streaming.h"

#include "core/domains.h"
#include "core/linkage.h"
#include "core/lsh_blocker.h"
#include "data/voter_generator.h"
#include "eval/metrics.h"

namespace sablock::core {
namespace {

using data::Dataset;
using data::Schema;

LinkageDataset TinyLinkage() {
  Dataset a{Schema({"name"})};
  a.Add({{"alice smith"}}, 0);
  a.Add({{"bob jones"}}, 1);
  Dataset b{Schema({"name"})};
  b.Add({{"alice smyth"}}, 0);   // matches A/0
  b.Add({{"carol white"}}, 5);
  return MergeForLinkage(a, b);
}

TEST(MergeForLinkageTest, ConcatenatesWithBoundary) {
  LinkageDataset link = TinyLinkage();
  EXPECT_EQ(link.merged.size(), 4u);
  EXPECT_EQ(link.boundary, 2u);
  EXPECT_TRUE(link.FromA(0));
  EXPECT_TRUE(link.FromA(1));
  EXPECT_FALSE(link.FromA(2));
  EXPECT_EQ(link.merged.Value(2, "name"), "alice smyth");
}

TEST(MergeForLinkageDeathTest, RejectsSchemaMismatch) {
  Dataset a{Schema({"x"})};
  Dataset b{Schema({"y"})};
  EXPECT_DEATH(MergeForLinkage(a, b), "schemas");
}

TEST(CrossSourceBlocksTest, KeepsOnlyBipartitePairs) {
  BlockCollection blocks;
  blocks.Add({0, 1, 2});  // A-A pair (0,1) must vanish; (0,2),(1,2) stay
  blocks.Add({2, 3});     // B-B pair: vanishes entirely
  BlockCollection cross = CrossSourceBlocks(blocks, /*boundary=*/2);
  PairSet pairs = cross.DistinctPairs();
  EXPECT_EQ(pairs.size(), 2u);
  EXPECT_TRUE(pairs.Contains(0, 2));
  EXPECT_TRUE(pairs.Contains(1, 2));
  EXPECT_FALSE(pairs.Contains(0, 1));
  EXPECT_FALSE(pairs.Contains(2, 3));
}

TEST(CrossSourceBlocksTest, DeduplicatesAcrossBlocks) {
  BlockCollection blocks;
  blocks.Add({0, 2});
  blocks.Add({0, 2});
  BlockCollection cross = CrossSourceBlocks(blocks, 2);
  EXPECT_EQ(cross.NumBlocks(), 1u);
}

TEST(LinkageCountsTest, CrossTrueMatchesAndTotals) {
  LinkageDataset link = TinyLinkage();
  EXPECT_EQ(CountCrossTrueMatches(link), 1u);  // alice on both sides
  EXPECT_EQ(TotalCrossPairs(link), 4u);        // 2 × 2
}

TEST(LinkageCountsTest, MultiRecordEntities) {
  Dataset a{Schema({"x"})};
  a.Add({{"r"}}, 7);
  a.Add({{"r"}}, 7);
  Dataset b{Schema({"x"})};
  b.Add({{"r"}}, 7);
  b.Add({{"r"}}, 7);
  b.Add({{"r"}}, 7);
  LinkageDataset link = MergeForLinkage(a, b);
  EXPECT_EQ(CountCrossTrueMatches(link), 6u);  // 2 × 3
}

TEST(VoterLinkagePairTest, GeneratorInvariants) {
  data::VoterGeneratorConfig config;
  config.seed = 17;
  Dataset a;
  Dataset b;
  GenerateVoterLinkagePair(config, 300, 200, 0.5, &a, &b);
  EXPECT_EQ(a.size(), 300u);
  EXPECT_EQ(b.size(), 200u);
  // A's entities are distinct.
  EXPECT_EQ(a.CountTrueMatchPairs(), 0u);
  LinkageDataset link = MergeForLinkage(a, b);
  uint64_t cross = CountCrossTrueMatches(link);
  // ~50% of B's 200 records overlap A; sampling with replacement can
  // create a few extra cross pairs for twice-sampled entities.
  EXPECT_GT(cross, 60u);
  EXPECT_LT(cross, 150u);
}

TEST(VoterLinkageEndToEndTest, LshLinkageFindsOverlap) {
  data::VoterGeneratorConfig config;
  config.seed = 18;
  Dataset a;
  Dataset b;
  GenerateVoterLinkagePair(config, 800, 600, 0.4, &a, &b);
  LinkageDataset link = MergeForLinkage(a, b);

  LshParams p;
  p.k = 4;
  p.l = 12;
  p.q = 2;
  p.attributes = {"first_name", "last_name"};
  BlockCollection all_blocks = RunStreaming(LshBlocker(p), link.merged);
  BlockCollection cross = CrossSourceBlocks(all_blocks, link.boundary);

  // Evaluate against cross-source ground truth.
  uint64_t true_cross = CountCrossTrueMatches(link);
  ASSERT_GT(true_cross, 0u);
  PairSet pairs = cross.DistinctPairs();
  uint64_t found = 0;
  pairs.ForEach([&](uint32_t x, uint32_t y) {
    if (link.merged.IsMatch(x, y)) ++found;
  });
  double pc = static_cast<double>(found) / static_cast<double>(true_cross);
  EXPECT_GT(pc, 0.55);
  // All emitted pairs are bipartite.
  pairs.ForEach([&](uint32_t x, uint32_t y) {
    EXPECT_NE(link.FromA(x), link.FromA(y));
  });
}

}  // namespace
}  // namespace sablock::core
