// Golden test for the benchmark suite's JSON reporting: drives the real
// sablock_bench entry point (BenchMain) over the table3 scenario in
// --quick mode and validates that the emitted file is schema-valid JSON
// with stable keys — the contract tools/bench_compare.py and the CI
// bench-smoke job rely on.

#include <cstdio>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "gtest/gtest.h"
#include "report/json.h"
#include "report/run_result.h"
#include "scenarios.h"

namespace sablock::report {
namespace {

std::string ReadFileOrDie(const std::string& path) {
  std::ifstream in(path);
  EXPECT_TRUE(in.good()) << path;
  std::ostringstream text;
  text << in.rdbuf();
  return text.str();
}

/// Asserts that `object`'s keys appear in canonical order: every key must
/// be known, and the known keys that are present must appear in the
/// canonical sequence (optional keys may be omitted).
void ExpectKeyOrder(const Json& object,
                    const std::vector<std::string>& canonical,
                    const std::string& what) {
  ASSERT_EQ(object.type(), Json::Type::kObject) << what;
  size_t cursor = 0;
  for (const auto& [key, value] : object.members()) {
    size_t found = canonical.size();
    for (size_t i = cursor; i < canonical.size(); ++i) {
      if (canonical[i] == key) {
        found = i;
        break;
      }
    }
    ASSERT_NE(found, canonical.size())
        << what << ": unexpected or out-of-order key '" << key << "'";
    cursor = found + 1;
  }
}

class ReportGoldenTest : public ::testing::Test {
 protected:
  static std::string json_path() {
    return ::testing::TempDir() + "/sablock_bench_table3.json";
  }

  /// Runs the table3 scenario once per test binary (it is the expensive
  /// part) and caches the raw file text.
  static const std::string& SuiteText() {
    static const std::string* text = [] {
      std::string path = json_path();
      std::string json_flag = "--json=" + path;
      // Tiny sizes keep the golden test snappy; the scenario still
      // sweeps every baseline family grid.
      const char* argv[] = {"sablock_bench",   "--quick",
                            "--filter=table3", "--cora=150",
                            "--voter=400",     json_flag.c_str()};
      int rc = sablock::bench::BenchMain(
          static_cast<int>(std::size(argv)), const_cast<char**>(argv));
      EXPECT_EQ(rc, 0);
      return new std::string(ReadFileOrDie(path));
    }();
    return *text;
  }
};

TEST_F(ReportGoldenTest, EmitsParseableSuiteJson) {
  Json suite;
  Status status = Json::Parse(SuiteText(), &suite);
  ASSERT_TRUE(status.ok()) << status.message();

  SuiteResult result;
  status = SuiteResultFromJson(suite, &result);
  ASSERT_TRUE(status.ok()) << status.message();
  EXPECT_EQ(result.tool, "sablock_bench");
  EXPECT_EQ(result.schema_version, kSchemaVersion);
  EXPECT_TRUE(result.quick);
  ASSERT_EQ(result.scenarios.size(), 1u);
  EXPECT_EQ(result.scenarios[0].name, "table3_fig11_baselines");
  EXPECT_EQ(result.scenarios[0].exit_code, 0);
}

TEST_F(ReportGoldenTest, KeysAreStable) {
  Json suite;
  ASSERT_TRUE(Json::Parse(SuiteText(), &suite).ok());

  ExpectKeyOrder(suite,
                 {"tool", "schema_version", "quick", "repeat", "scenarios",
                  "runs", "metrics"},
                 "suite");

  // Schema v2: the suite-level metrics snapshot is present and carries
  // at least one family (the bench run itself touches instrumented
  // seams), each with stable keys.
  const Json* snapshot = suite.Find("metrics");
  ASSERT_NE(snapshot, nullptr);
  const Json* families = snapshot->Find("families");
  ASSERT_NE(families, nullptr);
  ASSERT_GT(families->size(), 0u);
  for (const Json& family : families->items()) {
    ExpectKeyOrder(family, {"name", "type", "help", "label_key", "samples"},
                   "metrics family");
    const Json* samples = family.Find("samples");
    ASSERT_NE(samples, nullptr);
    for (const Json& sample : samples->items()) {
      ExpectKeyOrder(sample,
                     {"label", "value", "count", "sum", "bounds", "buckets"},
                     "metrics sample");
    }
  }

  const Json* runs = suite.Find("runs");
  ASSERT_NE(runs, nullptr);
  ASSERT_GT(runs->size(), 0u);
  const std::vector<std::string> run_keys = {
      "scenario", "name",   "spec",   "dataset", "dataset_records",
      "params",   "time",   "stages", "metrics", "values"};
  const std::vector<std::string> metric_keys = {
      "pc", "pq", "rr", "fm", "pq_star", "fm_star", "distinct_pairs",
      "true_pairs", "total_comparisons", "ground_truth_pairs", "all_pairs",
      "num_blocks", "max_block_size"};
  for (const Json& run : runs->items()) {
    ExpectKeyOrder(run, run_keys, "run");
    const Json* metrics = run.Find("metrics");
    ASSERT_NE(metrics, nullptr);
    ExpectKeyOrder(*metrics, metric_keys, "metrics");
    const Json* time = run.Find("time");
    ASSERT_NE(time, nullptr);
    ExpectKeyOrder(*time, {"repeats", "min_s", "mean_s", "p50_s"}, "time");
  }
}

TEST_F(ReportGoldenTest, CoversEveryBaselineFamilyOnBothDatasets) {
  Json suite;
  ASSERT_TRUE(Json::Parse(SuiteText(), &suite).ok());
  SuiteResult result;
  ASSERT_TRUE(SuiteResultFromJson(suite, &result).ok());

  const std::set<std::string> expected = {
      "TBlo", "SorA", "SorII", "ASor", "QGr",  "CaTh",   "CaNN",
      "StMT", "StMNN", "SuA",  "SuAS", "RSuA", "LSH",    "SA-LSH"};
  for (const char* dataset : {"cora-like", "voter-like"}) {
    std::set<std::string> seen;
    for (const RunResult& run : result.runs) {
      EXPECT_EQ(run.scenario, "table3_fig11_baselines");
      if (run.dataset == dataset) {
        EXPECT_TRUE(seen.insert(run.name).second)
            << "duplicate run name " << run.name << " on " << dataset;
        EXPECT_TRUE(run.has_metrics) << run.name;
        EXPECT_GT(run.time.repeats, 0) << run.name;
      }
    }
    EXPECT_EQ(seen, expected) << dataset;
  }
}

TEST_F(ReportGoldenTest, SerializationIsByteStableThroughRoundTrip) {
  Json suite;
  ASSERT_TRUE(Json::Parse(SuiteText(), &suite).ok());
  SuiteResult result;
  ASSERT_TRUE(SuiteResultFromJson(suite, &result).ok());
  // parse → structs → re-serialize reproduces the file byte-for-byte
  // (modulo the trailing newline WriteJsonFile appends): stable keys,
  // stable number formatting.
  std::string expected = SuiteText();
  if (!expected.empty() && expected.back() == '\n') expected.pop_back();
  EXPECT_EQ(ToJson(result).Dump(2), expected);
}

}  // namespace
}  // namespace sablock::report
