// Snapshot roundtrip goldens: CSV-parsed/generated dataset -> .sab
// container -> loaded dataset must be invisible to every registry
// technique. The same 19 specs as tests/feature_golden_test.cc run on
// the golden Cora-like corpus against the parsed dataset and against a
// snapshot-loaded copy (features pre-warmed and adopted zero-copy), and
// must produce identical block sets, distinct-pair counts and metrics —
// for both section encodings.

#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <iterator>
#include <memory>
#include <string>
#include <vector>

#include "api/registry.h"
#include "core/blocking.h"
#include "data/cora_generator.h"
#include "data/csv.h"
#include "eval/metrics.h"
#include "gtest/gtest.h"
#include "store/snapshot.h"
#include "store/snapshot_writer.h"

namespace sablock {
namespace {

// One spec per registered technique family, pinned seeds — kept in sync
// with tests/feature_golden_test.cc (which pins these specs' absolute
// outputs; this test pins that a snapshot roundtrip does not move them).
const char* const kSpecs[] = {
    "tblo:attrs=authors+title",
    "sor-a:window=3,attrs=authors+title",
    "sor-ii:window=3,attrs=authors+title",
    "sor-mp:window=3,attrs=authors+title",
    "asor:sim=jaro_winkler,threshold=0.8,max-block=50,attrs=authors+title",
    "qgram:q=2,threshold=0.8,max-keys=64,attrs=title",
    "sua:min-suffix=4,max-block=20,attrs=authors+title",
    "suas:min-suffix=4,max-block=20,attrs=title",
    "rsua:min-suffix=4,max-block=20,sim=jaro_winkler,threshold=0.9,"
    "attrs=authors+title",
    "stmt:threshold=0.9,grid=100,dim=15,seed=73,attrs=authors+title",
    "stmnn:nn=5,grid=100,dim=15,seed=73,attrs=authors+title",
    "cath:sim=jaccard,loose=0.4,tight=0.8,seed=31,attrs=authors+title",
    "cann:sim=tfidf,n1=10,n2=5,seed=31,attrs=authors+title",
    "meta:weighting=cbs,pruning=wep,max-block=500,attrs=authors+title",
    "lsh:k=2,l=8,q=3,seed=7,attrs=authors+title",
    "sa-lsh:k=2,l=8,q=3,seed=7,w=5,mode=or,domain=bib,sem-seed=11,"
    "attrs=authors+title",
    "mp-lsh:k=2,l=8,q=3,seed=7,probes=2,attrs=authors+title",
    "forest:k=2,l=8,q=3,seed=7,depth=10,max-block=25,attrs=authors+title",
    "harra:k=2,l=8,q=3,seed=7,merge-threshold=0.5,iterations=2,"
    "attrs=authors+title",
};

data::Dataset GoldenDataset() {
  data::CoraGeneratorConfig config;
  config.num_entities = 40;
  config.num_records = 400;
  config.seed = 42;
  return data::GenerateCoraLike(config);
}

std::string TmpPath(const char* tag) {
  return "/tmp/sablock-roundtrip-" + std::to_string(::getpid()) + "-" +
         tag + ".sab";
}

std::unique_ptr<core::BlockingTechnique> MustCreate(const std::string& spec) {
  std::unique_ptr<core::BlockingTechnique> technique;
  Status status = api::BlockerRegistry::Global().Create(spec, &technique);
  EXPECT_TRUE(status.ok()) << spec << ": " << status.message();
  return technique;
}

/// Canonical form of a block collection: blocks sorted internally and
/// against each other. Emission order may differ between a built store
/// (global token ids in interning order of the full workload) and an
/// adopted store (global ids re-interned per column); the block *sets*
/// may not.
std::vector<core::Block> Canonical(const core::BlockCollection& blocks) {
  std::vector<core::Block> canon = blocks.blocks();
  for (core::Block& b : canon) std::sort(b.begin(), b.end());
  std::sort(canon.begin(), canon.end());
  return canon;
}

TEST(SnapshotRoundtripTest, EveryRegistryTechniqueSurvivesTheRoundtrip) {
  data::Dataset parsed = GoldenDataset();

  // Parsed-path reference runs; these also warm the feature store with
  // every column the 19 techniques touch, so the snapshot carries the
  // full feature catalog.
  std::vector<std::vector<core::Block>> reference;
  std::vector<eval::Metrics> reference_metrics;
  for (const char* spec : kSpecs) {
    std::unique_ptr<core::BlockingTechnique> t = MustCreate(spec);
    ASSERT_NE(t, nullptr);
    core::BlockCollection blocks;
    t->Run(parsed, blocks);
    reference.push_back(Canonical(blocks));
    reference_metrics.push_back(eval::Evaluate(parsed, blocks));
  }

  for (bool compress : {false, true}) {
    const std::string path = TmpPath(compress ? "comp" : "raw");
    store::WriteOptions options;
    options.compress = compress;
    store::WriteInfo write_info;
    Status s = store::WriteSnapshot(path, parsed, options, &write_info);
    ASSERT_TRUE(s.ok()) << s.message();
    ASSERT_GT(write_info.feature_sections, 0u);

    data::Dataset loaded;
    store::SnapshotInfo info;
    s = store::LoadSnapshot(path, {}, &loaded, &info);
    ASSERT_TRUE(s.ok()) << s.message();
    ASSERT_EQ(info.records, parsed.size());

    for (size_t i = 0; i < std::size(kSpecs); ++i) {
      std::unique_ptr<core::BlockingTechnique> t = MustCreate(kSpecs[i]);
      ASSERT_NE(t, nullptr);
      core::BlockCollection blocks;
      t->Run(loaded, blocks);
      EXPECT_EQ(Canonical(blocks), reference[i])
          << kSpecs[i] << (compress ? " (compressed)" : " (raw)");
      eval::Metrics m = eval::Evaluate(loaded, blocks);
      EXPECT_EQ(m.distinct_pairs, reference_metrics[i].distinct_pairs)
          << kSpecs[i];
      EXPECT_DOUBLE_EQ(m.pc, reference_metrics[i].pc) << kSpecs[i];
      EXPECT_DOUBLE_EQ(m.pq, reference_metrics[i].pq) << kSpecs[i];
      EXPECT_DOUBLE_EQ(m.rr, reference_metrics[i].rr) << kSpecs[i];
    }
    std::remove(path.c_str());
  }
}

// The CSV boundary: a dataset written to CSV, read back, snapshotted and
// loaded must still block identically — the full sablock_cli
// --save-snapshot / --load-snapshot path in miniature.
TEST(SnapshotRoundtripTest, CsvToSnapshotMatchesDirectParse) {
  data::Dataset generated = GoldenDataset();
  const std::string csv_path =
      "/tmp/sablock-roundtrip-" + std::to_string(::getpid()) + ".csv";
  ASSERT_TRUE(data::WriteCsv(csv_path, generated, "entity").ok());
  data::Dataset parsed;
  ASSERT_TRUE(data::ReadCsv(csv_path, "entity", &parsed).ok());

  const std::string sab_path = TmpPath("csv");
  ASSERT_TRUE(store::WriteSnapshot(sab_path, parsed).ok());
  data::Dataset loaded;
  ASSERT_TRUE(store::LoadSnapshot(sab_path, {}, &loaded).ok());

  ASSERT_EQ(loaded.size(), generated.size());
  std::unique_ptr<core::BlockingTechnique> t =
      MustCreate("tblo:attrs=authors+title");
  core::BlockCollection direct;
  t->Run(generated, direct);
  core::BlockCollection roundtripped;
  t->Run(loaded, roundtripped);
  EXPECT_EQ(Canonical(roundtripped), Canonical(direct));
  std::remove(csv_path.c_str());
  std::remove(sab_path.c_str());
}

}  // namespace
}  // namespace sablock
