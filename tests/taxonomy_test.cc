// Tests for taxonomy trees and concept/record semantic similarity,
// including every worked example of Section 4 as golden values.

#include <gtest/gtest.h>

#include "core/taxonomy.h"

namespace sablock::core {
namespace {

TEST(TaxonomyTest, BibliographicStructure) {
  Taxonomy t = MakeBibliographicTaxonomy();
  EXPECT_EQ(t.size(), 10u);
  EXPECT_EQ(t.TotalLeaves(), 6u);  // C3, C4, C5, C7, C8, C9
  EXPECT_TRUE(t.IsLeaf(t.Require("C3")));
  EXPECT_FALSE(t.IsLeaf(t.Require("C2")));
  EXPECT_EQ(t.parent(t.Require("C3")), t.Require("C2"));
  EXPECT_EQ(t.children(t.Require("C2")).size(), 3u);
}

TEST(TaxonomyTest, FindAndRequire) {
  Taxonomy t = MakeBibliographicTaxonomy();
  EXPECT_NE(t.Find("C0"), kInvalidConcept);
  EXPECT_EQ(t.Find("nope"), kInvalidConcept);
  EXPECT_EQ(t.name(t.Require("C7")), "C7");
}

TEST(TaxonomyTest, SubsumptionIsReflexiveAndTransitive) {
  Taxonomy t = MakeBibliographicTaxonomy();
  ConceptId c0 = t.Require("C0");
  ConceptId c1 = t.Require("C1");
  ConceptId c2 = t.Require("C2");
  ConceptId c3 = t.Require("C3");
  ConceptId c9 = t.Require("C9");
  EXPECT_TRUE(t.Subsumes(c3, c3));
  EXPECT_TRUE(t.Subsumes(c2, c3));
  EXPECT_TRUE(t.Subsumes(c1, c3));
  EXPECT_TRUE(t.Subsumes(c0, c3));
  EXPECT_FALSE(t.Subsumes(c3, c2));
  EXPECT_FALSE(t.Subsumes(c2, c9));
  EXPECT_FALSE(t.Subsumes(c9, c2));
}

TEST(TaxonomyTest, LeafCounts) {
  Taxonomy t = MakeBibliographicTaxonomy();
  EXPECT_EQ(t.LeafCount(t.Require("C0")), 6u);
  EXPECT_EQ(t.LeafCount(t.Require("C1")), 5u);
  EXPECT_EQ(t.LeafCount(t.Require("C2")), 3u);
  EXPECT_EQ(t.LeafCount(t.Require("C6")), 2u);
  EXPECT_EQ(t.LeafCount(t.Require("C3")), 1u);
  EXPECT_EQ(t.LeafCount(t.Require("C9")), 1u);
}

// Example 4.4: simS(c0,c1)=5/6, simS(c1,c2)=3/5, simS(c0,c4)=1/6,
// simS(c2,c6)=0.
TEST(TaxonomyTest, Example44ConceptSimilarities) {
  Taxonomy t = MakeBibliographicTaxonomy();
  EXPECT_NEAR(t.ConceptSimilarity(t.Require("C0"), t.Require("C1")),
              5.0 / 6.0, 1e-12);
  EXPECT_NEAR(t.ConceptSimilarity(t.Require("C1"), t.Require("C2")),
              3.0 / 5.0, 1e-12);
  EXPECT_NEAR(t.ConceptSimilarity(t.Require("C0"), t.Require("C4")),
              1.0 / 6.0, 1e-12);
  EXPECT_DOUBLE_EQ(t.ConceptSimilarity(t.Require("C2"), t.Require("C6")),
                   0.0);
}

// Eq. 3: sibling concepts have similarity 0 (Example 4.3: journal vs book).
TEST(TaxonomyTest, SiblingsHaveZeroSimilarity) {
  Taxonomy t = MakeBibliographicTaxonomy();
  EXPECT_DOUBLE_EQ(t.ConceptSimilarity(t.Require("C3"), t.Require("C5")),
                   0.0);
  EXPECT_DOUBLE_EQ(t.ConceptSimilarity(t.Require("C7"), t.Require("C8")),
                   0.0);
  EXPECT_DOUBLE_EQ(t.ConceptSimilarity(t.Require("C1"), t.Require("C9")),
                   0.0);
}

// Subsumption monotonicity stated below Eq. 4: for c3 ⪯ c2 ⪯ c1,
// simS(c1,c3) <= simS(c2,c3) and simS(c1,c3) <= simS(c1,c2).
TEST(TaxonomyTest, SimilarityMonotoneAlongChains) {
  Taxonomy t = MakeBibliographicTaxonomy();
  ConceptId chain[] = {t.Require("C0"), t.Require("C1"), t.Require("C2"),
                       t.Require("C3")};
  for (int i = 0; i < 4; ++i) {
    for (int j = i + 1; j < 4; ++j) {
      for (int k = j; k < 4; ++k) {
        // chain[k] ⪯ chain[j] ⪯ chain[i]
        EXPECT_LE(t.ConceptSimilarity(chain[i], chain[k]),
                  t.ConceptSimilarity(chain[j], chain[k]) + 1e-12);
      }
    }
  }
}

TEST(TaxonomyTest, SelfSimilarityIsOne) {
  Taxonomy t = MakeBibliographicTaxonomy();
  for (const char* name : {"C0", "C1", "C2", "C3", "C9"}) {
    ConceptId c = t.Require(name);
    EXPECT_DOUBLE_EQ(t.ConceptSimilarity(c, c), 1.0) << name;
  }
}

// Example 4.5 record similarities with ζ(r1)={c4}, ζ(r2)={c3,c4},
// ζ(r3)={c4}, ζ(r5)={c7}, ζ(r6)={c0}.
TEST(TaxonomyTest, Example45RecordSimilarities) {
  Taxonomy t = MakeBibliographicTaxonomy();
  std::vector<ConceptId> r1 = {t.Require("C4")};
  std::vector<ConceptId> r2 = {t.Require("C3"), t.Require("C4")};
  std::vector<ConceptId> r3 = {t.Require("C4")};
  std::vector<ConceptId> r5 = {t.Require("C7")};
  std::vector<ConceptId> r6 = {t.Require("C0")};

  EXPECT_NEAR(t.RecordSimilarity(r1, r2), 0.5, 1e-12);
  EXPECT_NEAR(t.RecordSimilarity(r3, r2), 0.5, 1e-12);
  EXPECT_DOUBLE_EQ(t.RecordSimilarity(r1, r3), 1.0);
  EXPECT_DOUBLE_EQ(t.RecordSimilarity(r1, r5), 0.0);
  EXPECT_NEAR(t.RecordSimilarity(r2, r6), 1.0 / 3.0, 1e-12);
  EXPECT_NEAR(t.RecordSimilarity(r1, r6), 1.0 / 6.0, 1e-12);
  EXPECT_NEAR(t.RecordSimilarity(r5, r6), 1.0 / 6.0, 1e-12);
}

// Proposition 4.1: ζ(r1)={c}, ζ(r2)=child(c) ⇒ simS(r1,r2)=1.
TEST(TaxonomyTest, Proposition41ChildCoverEqualsParent) {
  Taxonomy t = MakeBibliographicTaxonomy();
  std::vector<ConceptId> parent = {t.Require("C2")};
  std::vector<ConceptId> children = {t.Require("C3"), t.Require("C4"),
                                     t.Require("C5")};
  EXPECT_DOUBLE_EQ(t.RecordSimilarity(parent, children), 1.0);

  std::vector<ConceptId> pub = {t.Require("C1")};
  std::vector<ConceptId> pub_children = {t.Require("C2"), t.Require("C6")};
  EXPECT_DOUBLE_EQ(t.RecordSimilarity(pub, pub_children), 1.0);
}

// Proposition 4.2: simS(r1,r2)=0 iff no related concept pairs.
TEST(TaxonomyTest, Proposition42ZeroIffUnrelated) {
  Taxonomy t = MakeBibliographicTaxonomy();
  std::vector<ConceptId> journal = {t.Require("C3")};
  std::vector<ConceptId> proceedings = {t.Require("C4")};
  std::vector<ConceptId> patent = {t.Require("C9")};
  std::vector<ConceptId> peer = {t.Require("C2")};
  EXPECT_DOUBLE_EQ(t.RecordSimilarity(journal, proceedings), 0.0);
  EXPECT_DOUBLE_EQ(t.RecordSimilarity(journal, patent), 0.0);
  EXPECT_GT(t.RecordSimilarity(journal, peer), 0.0);
}

TEST(TaxonomyTest, RecordSimilarityEmptyInterpretation) {
  Taxonomy t = MakeBibliographicTaxonomy();
  std::vector<ConceptId> empty;
  std::vector<ConceptId> journal = {t.Require("C3")};
  EXPECT_DOUBLE_EQ(t.RecordSimilarity(empty, journal), 0.0);
  EXPECT_DOUBLE_EQ(t.RecordSimilarity(empty, empty), 0.0);
}

TEST(TaxonomyTest, PruneToMostSpecific) {
  Taxonomy t = MakeBibliographicTaxonomy();
  std::vector<ConceptId> concepts = {t.Require("C0"), t.Require("C3"),
                                     t.Require("C2"), t.Require("C9")};
  t.PruneToMostSpecific(&concepts);
  // C0 subsumes everything, C2 subsumes C3: only C3 and C9 survive.
  ASSERT_EQ(concepts.size(), 2u);
  EXPECT_EQ(concepts[0], t.Require("C3"));
  EXPECT_EQ(concepts[1], t.Require("C9"));
}

TEST(TaxonomyTest, PruneDeduplicates) {
  Taxonomy t = MakeBibliographicTaxonomy();
  std::vector<ConceptId> concepts = {t.Require("C3"), t.Require("C3")};
  t.PruneToMostSpecific(&concepts);
  EXPECT_EQ(concepts.size(), 1u);
}

TEST(TaxonomyTest, CoveredLeafCountMergesOverlaps) {
  Taxonomy t = MakeBibliographicTaxonomy();
  EXPECT_EQ(t.CoveredLeafCount({t.Require("C1"), t.Require("C2")}), 5u);
  EXPECT_EQ(t.CoveredLeafCount({t.Require("C3"), t.Require("C9")}), 2u);
  EXPECT_EQ(t.CoveredLeafCount({t.Require("C0")}), 6u);
  EXPECT_EQ(t.CoveredLeafCount({}), 0u);
}

TEST(TaxonomyTest, ForestOfTwoTrees) {
  Taxonomy t;
  ConceptId a = t.AddConcept("a");
  t.AddConcept("a1", a);
  t.AddConcept("a2", a);
  ConceptId b = t.AddConcept("b");
  t.AddConcept("b1", b);
  t.Finalize();
  EXPECT_EQ(t.roots().size(), 2u);
  EXPECT_EQ(t.TotalLeaves(), 3u);
  // Cross-tree concepts are unrelated.
  EXPECT_DOUBLE_EQ(t.ConceptSimilarity(a, b), 0.0);
  EXPECT_FALSE(t.Subsumes(a, b));
  EXPECT_FALSE(t.Subsumes(b, t.Require("a1")));
}

TEST(TaxonomyTest, SingleNodeTaxonomy) {
  Taxonomy t;
  ConceptId only = t.AddConcept("only");
  t.Finalize();
  EXPECT_EQ(t.TotalLeaves(), 1u);
  EXPECT_EQ(t.LeafCount(only), 1u);
  EXPECT_DOUBLE_EQ(t.ConceptSimilarity(only, only), 1.0);
}

TEST(TaxonomyTest, ChainTaxonomyNodesShareLeafButDiffer) {
  // root -> mid -> leaf: all three have the same (single) leaf set, but
  // subsumption must still be directional.
  Taxonomy t;
  ConceptId root = t.AddConcept("root");
  ConceptId mid = t.AddConcept("mid", root);
  ConceptId leaf = t.AddConcept("leaf", mid);
  t.Finalize();
  EXPECT_EQ(t.LeafCount(root), 1u);
  EXPECT_DOUBLE_EQ(t.ConceptSimilarity(root, leaf), 1.0);
  EXPECT_TRUE(t.Subsumes(root, leaf));
  EXPECT_FALSE(t.Subsumes(leaf, root));
  EXPECT_TRUE(t.Subsumes(mid, leaf));
}

TEST(TaxonomyTest, VariantsHaveExpectedLeafCounts) {
  EXPECT_EQ(MakeBibliographicTaxonomyNoReviewLevel().TotalLeaves(), 6u);
  EXPECT_EQ(MakeBibliographicTaxonomyNoBook().TotalLeaves(), 5u);
  EXPECT_EQ(MakeBibliographicTaxonomyNoJournal().TotalLeaves(), 5u);
  EXPECT_EQ(MakeBibliographicTaxonomyNoBook().Find("C5"), kInvalidConcept);
  EXPECT_EQ(MakeBibliographicTaxonomyNoJournal().Find("C3"),
            kInvalidConcept);
}

TEST(TaxonomyDeathTest, QueriesBeforeFinalizeAbort) {
  Taxonomy t;
  ConceptId a = t.AddConcept("a");
  EXPECT_DEATH(t.Subsumes(a, a), "Finalize");
}

TEST(TaxonomyDeathTest, DuplicateNameAborts) {
  Taxonomy t;
  t.AddConcept("a");
  EXPECT_DEATH(t.AddConcept("a"), "duplicate");
}

TEST(TaxonomyDeathTest, EmptyFinalizeAborts) {
  Taxonomy t;
  EXPECT_DEATH(t.Finalize(), "empty");
}

}  // namespace
}  // namespace sablock::core
