// Parameterized property sweeps over the dataset generators: invariants
// must hold across sizes, seeds and noise configurations.

#include <gtest/gtest.h>

#include <string_view>
#include <tuple>
#include <unordered_map>

#include "data/cora_generator.h"
#include "data/voter_generator.h"

namespace sablock::data {
namespace {

class CoraSweep
    : public ::testing::TestWithParam<std::tuple<size_t, size_t, uint64_t>> {
};

TEST_P(CoraSweep, StructuralInvariants) {
  auto [entities, records, seed] = GetParam();
  CoraGeneratorConfig config;
  config.num_entities = entities;
  config.num_records = records;
  config.seed = seed;
  Dataset d = GenerateCoraLike(config);

  ASSERT_EQ(d.size(), records);
  std::unordered_map<EntityId, size_t> cluster_sizes;
  for (RecordId id = 0; id < d.size(); ++id) {
    // Entities labelled 0..entities-1, titles non-empty, arity correct.
    EXPECT_LT(d.entity(id), entities);
    EXPECT_FALSE(d.Value(id, "title").empty());
    EXPECT_EQ(d.record(id).values.size(), d.schema().size());
    ++cluster_sizes[d.entity(id)];
  }
  // Every entity has at least one record.
  EXPECT_EQ(cluster_sizes.size(), entities);
  // True-match pair count is consistent with cluster sizes.
  uint64_t expected_pairs = 0;
  for (const auto& [e, n] : cluster_sizes) {
    expected_pairs += static_cast<uint64_t>(n) * (n - 1) / 2;
  }
  EXPECT_EQ(d.CountTrueMatchPairs(), expected_pairs);
}

INSTANTIATE_TEST_SUITE_P(
    Sizes, CoraSweep,
    ::testing::Values(std::make_tuple(5u, 30u, 1u),
                      std::make_tuple(20u, 100u, 2u),
                      std::make_tuple(50u, 400u, 3u),
                      std::make_tuple(100u, 100u, 4u),  // all singletons
                      std::make_tuple(1u, 40u, 5u)));   // one entity

class VoterSweep
    : public ::testing::TestWithParam<std::tuple<size_t, double, uint64_t>> {
};

TEST_P(VoterSweep, StructuralAndNoiseInvariants) {
  auto [records, uncertain, seed] = GetParam();
  VoterGeneratorConfig config;
  config.num_records = records;
  config.gender_uncertain_prob = uncertain;
  config.race_uncertain_prob = uncertain;
  config.seed = seed;
  Dataset d = GenerateVoterLike(config);

  ASSERT_EQ(d.size(), records);
  size_t uncertain_gender = 0;
  for (RecordId id = 0; id < d.size(); ++id) {
    std::string_view g = d.Value(id, "gender");
    std::string_view r = d.Value(id, "race");
    EXPECT_TRUE(g == "m" || g == "f" || g == "u") << g;
    EXPECT_TRUE(r == "w" || r == "b" || r == "a" || r == "i" || r == "o" ||
                r == "h" || r == "u")
        << r;
    EXPECT_FALSE(d.Value(id, "first_name").empty());
    EXPECT_FALSE(d.Value(id, "last_name").empty());
    if (g == "u") ++uncertain_gender;
  }
  // The uncertainty rate should be within a loose band of the configured
  // probability (binomial concentration).
  double rate =
      static_cast<double>(uncertain_gender) / static_cast<double>(records);
  EXPECT_NEAR(rate, uncertain, 0.08);
}

INSTANTIATE_TEST_SUITE_P(
    Configs, VoterSweep,
    ::testing::Values(std::make_tuple(300u, 0.0, 1u),
                      std::make_tuple(1000u, 0.1, 2u),
                      std::make_tuple(1000u, 0.3, 3u),
                      std::make_tuple(2000u, 0.5, 4u)));

TEST(VoterNoiseKnobsTest, ZeroNoiseMakesExactDuplicates) {
  VoterGeneratorConfig config;
  config.num_records = 400;
  config.zero_edit_prob = 1.0;
  config.one_edit_prob = 0.0;
  config.nickname_prob = 0.0;
  config.surname_change_prob = 0.0;
  config.gender_uncertain_prob = 0.0;
  config.race_uncertain_prob = 0.0;
  config.semantic_flip_prob = 0.0;
  config.seed = 9;
  Dataset d = GenerateVoterLike(config);

  // Any two records of the same entity differ at most by a dropped middle
  // initial in the first name.
  std::unordered_map<EntityId, RecordId> first_seen;
  for (RecordId id = 0; id < d.size(); ++id) {
    auto [it, inserted] = first_seen.emplace(d.entity(id), id);
    if (inserted) continue;
    RecordId other = it->second;
    EXPECT_EQ(d.Value(id, "last_name"), d.Value(other, "last_name"));
    EXPECT_EQ(d.Value(id, "gender"), d.Value(other, "gender"));
    EXPECT_EQ(d.Value(id, "race"), d.Value(other, "race"));
    std::string_view a = d.Value(id, "first_name");
    std::string_view b = d.Value(other, "first_name");
    std::string_view shorter = a.size() < b.size() ? a : b;
    std::string_view longer = a.size() < b.size() ? b : a;
    EXPECT_EQ(longer.substr(0, shorter.size()), shorter);
  }
}

TEST(CoraNoiseKnobsTest, NoMissingVenueMeansNoPattern8ForTypedRecords) {
  // With venue dropping disabled, ambiguous records can only come from
  // books (whose venue lives in `publisher`, untested by Table 1).
  CoraGeneratorConfig config;
  config.num_entities = 30;
  config.num_records = 200;
  config.missing_venue_prob = 0.0;
  config.wrong_attr_prob = 0.0;
  config.extra_attr_prob = 0.0;
  config.seed = 10;
  Dataset d = GenerateCoraLike(config);
  size_t ambiguous = 0;
  for (RecordId id = 0; id < d.size(); ++id) {
    bool has_any = !d.Value(id, "journal").empty() ||
                   !d.Value(id, "booktitle").empty() ||
                   !d.Value(id, "institution").empty();
    if (!has_any) ++ambiguous;
  }
  // Books are ~5% of entities; allow generous slack but far below the
  // default generator's ambiguous fraction (~25%).
  EXPECT_LT(ambiguous, d.size() / 5);
}

}  // namespace
}  // namespace sablock::data
