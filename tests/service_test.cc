// Tests for the serving layer: wire-protocol round trips, the in-process
// CandidateService, the socket server/client end to end, and concurrent
// insert/query traffic (the case the TSan gate exercises; this test
// carries the `service` and `concurrency` ctest labels).

#include <gtest/gtest.h>

#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "data/cora_generator.h"
#include "index/incremental_index.h"
#include "index/index_registry.h"
#include "obs/span.h"
#include "service/candidate_server.h"
#include "service/candidate_service.h"
#include "service/client.h"
#include "service/protocol.h"

namespace sablock::service {
namespace {

using Ids = std::vector<data::RecordId>;

std::vector<std::string_view> Row(const std::vector<std::string>& values) {
  return {values.begin(), values.end()};
}

data::Schema TwoAttrSchema() { return data::Schema({"name", "city"}); }

std::unique_ptr<CandidateService> MakeTokenService() {
  std::unique_ptr<CandidateService> service;
  Status s = CandidateService::Make(
      TwoAttrSchema(), "token-blocking:attrs=name+city", &service);
  EXPECT_TRUE(s.ok()) << s.message();
  return service;
}

/// A per-test socket path under /tmp (sun_path is length-limited, so no
/// build-tree paths).
std::string TestSocketPath(const std::string& tag) {
  return "/tmp/sablock-test-" + tag + "-" + std::to_string(::getpid()) +
         ".sock";
}

TEST(WireProtocolTest, WriterReaderRoundTrip) {
  WireWriter w;
  w.U8(7);
  w.U32(0xdeadbeef);
  w.U64(0x0123456789abcdefULL);
  w.Str("hello");
  w.Str("");
  WireReader r(w.bytes());
  EXPECT_EQ(r.U8(), 7u);
  EXPECT_EQ(r.U32(), 0xdeadbeefu);
  EXPECT_EQ(r.U64(), 0x0123456789abcdefULL);
  EXPECT_EQ(r.Str(), "hello");
  EXPECT_EQ(r.Str(), "");
  EXPECT_TRUE(r.Finished());
}

TEST(WireProtocolTest, ShortPayloadLatchesNotOk) {
  WireWriter w;
  w.U32(5);
  WireReader r(w.bytes());
  EXPECT_EQ(r.U32(), 5u);
  EXPECT_EQ(r.U64(), 0u);  // under-run: zeros from here on
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.U32(), 0u);
  EXPECT_FALSE(r.Finished());
}

TEST(WireProtocolTest, TrailingBytesAreNotFinished) {
  WireWriter w;
  w.U8(1);
  w.U8(2);
  WireReader r(w.bytes());
  EXPECT_EQ(r.U8(), 1u);
  EXPECT_TRUE(r.ok());
  EXPECT_FALSE(r.Finished());  // one byte unread
}

TEST(CandidateServiceTest, InsertQueryRemoveStats) {
  std::unique_ptr<CandidateService> service = MakeTokenService();
  std::vector<std::string> a = {"Alice Smith", "Berlin"};
  std::vector<std::string> b = {"Bob Smith", "Paris"};
  EXPECT_EQ(service->Insert(Row(a)), 0u);
  EXPECT_EQ(service->Insert(Row(b)), 1u);

  std::vector<std::string> probe = {"Eve Smith", "Oslo"};
  EXPECT_EQ(service->Query(Row(probe)), (Ids{0, 1}));

  EXPECT_TRUE(service->Remove(0));
  EXPECT_FALSE(service->Remove(0));
  EXPECT_EQ(service->Query(Row(probe)), (Ids{1}));

  ServiceStats stats = service->stats();
  EXPECT_EQ(stats.records, 1u);
  EXPECT_EQ(stats.inserts, 2u);
  EXPECT_EQ(stats.queries, 2u);
  EXPECT_EQ(stats.removes, 1u);
  EXPECT_FALSE(stats.index_name.empty());
}

TEST(CandidateServiceTest, IndexesArenaCopiesNotCallerBuffers) {
  std::unique_ptr<CandidateService> service = MakeTokenService();
  {
    // Values live in a scope that ends before the query: the service
    // must have copied them into its dataset.
    std::vector<std::string> tmp = {"Carol Jones", "Lisbon"};
    service->Insert(Row(tmp));
  }
  std::vector<std::string> probe = {"Carol", ""};
  EXPECT_EQ(service->Query(Row(probe)), (Ids{0}));
}

TEST(CandidateServerTest, EndToEndOverSocket) {
  std::unique_ptr<CandidateService> service = MakeTokenService();
  CandidateServer server(service.get(), TestSocketPath("e2e"), 2);
  ASSERT_TRUE(server.Start().ok());

  CandidateClient client;
  ASSERT_TRUE(
      CandidateClient::Connect(server.socket_path(), &client).ok());

  std::vector<std::string> a = {"Alice Smith", "Berlin"};
  std::vector<std::string> b = {"Bob Smith", "Paris"};
  data::RecordId id = 99;
  ASSERT_TRUE(client.Insert(Row(a), &id).ok());
  EXPECT_EQ(id, 0u);
  ASSERT_TRUE(client.Insert(Row(b), &id).ok());
  EXPECT_EQ(id, 1u);

  std::vector<std::string> probe = {"Eve Smith", "Oslo"};
  Ids candidates;
  ASSERT_TRUE(client.Query(Row(probe), &candidates).ok());
  EXPECT_EQ(candidates, (Ids{0, 1}));

  std::vector<std::vector<data::RecordId>> batch;
  ASSERT_TRUE(client
                  .BatchQuery({{"X Smith", ""}, {"", "Berlin"}, {"Z", "Y"}},
                              &batch)
                  .ok());
  ASSERT_EQ(batch.size(), 3u);
  EXPECT_EQ(batch[0], (Ids{0, 1}));
  EXPECT_EQ(batch[1], (Ids{0}));
  EXPECT_TRUE(batch[2].empty());

  bool removed = false;
  ASSERT_TRUE(client.Remove(0, &removed).ok());
  EXPECT_TRUE(removed);
  ASSERT_TRUE(client.Remove(0, &removed).ok());
  EXPECT_FALSE(removed);

  ServiceStats stats;
  ASSERT_TRUE(client.Stats(&stats).ok());
  EXPECT_EQ(stats.records, 1u);
  EXPECT_EQ(stats.inserts, 2u);
  EXPECT_EQ(stats.queries, 4u);  // 1 single + 3 batch probes
  EXPECT_EQ(stats.removes, 1u);  // only the successful removal counts

  client.Close();
  server.Stop();
}

TEST(CandidateServerTest, MetricsVerbReturnsPrometheusText) {
  std::unique_ptr<CandidateService> service = MakeTokenService();
  CandidateServer server(service.get(), TestSocketPath("metrics"), 2);
  ASSERT_TRUE(server.Start().ok());

  CandidateClient client;
  ASSERT_TRUE(
      CandidateClient::Connect(server.socket_path(), &client).ok());

  // Touch the service so the per-op and per-index families exist.
  std::vector<std::string> a = {"Alice Smith", "Berlin"};
  data::RecordId id = 0;
  ASSERT_TRUE(client.Insert(Row(a), &id).ok());
  Ids candidates;
  ASSERT_TRUE(client.Query(Row(a), &candidates).ok());

  std::string text;
  Status s = client.Metrics(&text);
  ASSERT_TRUE(s.ok()) << s.message();
  EXPECT_NE(text.find("# TYPE service_requests counter"),
            std::string::npos);
  EXPECT_NE(text.find("service_requests{op=\"insert\"}"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE service_request_seconds histogram"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE index_query_seconds histogram"),
            std::string::npos);
  EXPECT_NE(text.find("service_inflight_requests"), std::string::npos);

  client.Close();
  server.Stop();
}

TEST(CandidateServerTest, TracedRequestsCarryTheClientTraceId) {
  std::unique_ptr<CandidateService> service = MakeTokenService();
  CandidateServer server(service.get(), TestSocketPath("traced"), 2);
  ASSERT_TRUE(server.Start().ok());

  CandidateClient client;
  ASSERT_TRUE(
      CandidateClient::Connect(server.socket_path(), &client).ok());
  client.EnableTracing(true);

  std::vector<std::string> a = {"Alice Smith", "Berlin"};
  data::RecordId id = 0;
  ASSERT_TRUE(client.Insert(Row(a), &id).ok());
  const obs::TraceId trace = client.last_trace_id();
  EXPECT_NE(trace, 0u);

  // The server recorded a `service.request` span under the client's id
  // (same process here, so the global tracer is shared).
  std::vector<obs::SpanRecord> spans =
      obs::Tracer::Global().ForTrace(trace);
  ASSERT_FALSE(spans.empty());
  EXPECT_EQ(spans.back().name, "service.request");

  // Subsequent traced requests mint fresh ids on the same connection.
  Ids candidates;
  ASSERT_TRUE(client.Query(Row(a), &candidates).ok());
  EXPECT_NE(client.last_trace_id(), trace);

  client.Close();
  server.Stop();
}

TEST(CandidateServerTest, WrongArityIsAnErrorResponseNotADisconnect) {
  std::unique_ptr<CandidateService> service = MakeTokenService();
  CandidateServer server(service.get(), TestSocketPath("arity"), 1);
  ASSERT_TRUE(server.Start().ok());
  CandidateClient client;
  ASSERT_TRUE(
      CandidateClient::Connect(server.socket_path(), &client).ok());

  std::vector<std::string> short_row = {"only-one-value"};
  data::RecordId id = 0;
  Status s = client.Insert(Row(short_row), &id);
  EXPECT_FALSE(s.ok());
  EXPECT_TRUE(client.connected());  // server kept the connection

  // The same connection still serves well-formed requests.
  std::vector<std::string> ok_row = {"Alice", "Berlin"};
  ASSERT_TRUE(client.Insert(Row(ok_row), &id).ok());
  EXPECT_EQ(id, 0u);
  server.Stop();
}

TEST(CandidateServerTest, StopUnblocksConnectedClients) {
  std::unique_ptr<CandidateService> service = MakeTokenService();
  CandidateServer server(service.get(), TestSocketPath("stop"), 1);
  ASSERT_TRUE(server.Start().ok());
  CandidateClient client;
  ASSERT_TRUE(
      CandidateClient::Connect(server.socket_path(), &client).ok());
  server.Stop();
  ServiceStats stats;
  EXPECT_FALSE(client.Stats(&stats).ok());  // connection was shut down
  server.Stop();                            // idempotent
}

TEST(CandidateServerConcurrencyTest, ParallelInsertAndQueryClients) {
  // Several client threads hammer one server with interleaved inserts
  // and queries; under --tsan this is the serving stack's data-race
  // gate. Correctness check: every insert got a distinct id and the
  // final record count matches.
  std::unique_ptr<CandidateService> service;
  ASSERT_TRUE(CandidateService::Make(TwoAttrSchema(),
                                     "lsh:k=2,l=4,q=2,attrs=name+city",
                                     &service)
                  .ok());
  CandidateServer server(service.get(), TestSocketPath("conc"), 4);
  ASSERT_TRUE(server.Start().ok());

  constexpr int kThreads = 4;
  constexpr int kOpsPerThread = 40;
  std::atomic<int> failures{0};
  std::vector<std::vector<data::RecordId>> ids_per_thread(kThreads);
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      CandidateClient client;
      if (!CandidateClient::Connect(server.socket_path(), &client).ok()) {
        failures.fetch_add(1);
        return;
      }
      for (int i = 0; i < kOpsPerThread; ++i) {
        std::vector<std::string> row = {
            "name" + std::to_string(t) + "x" + std::to_string(i % 7),
            "city" + std::to_string(i % 3)};
        data::RecordId id = 0;
        if (!client.Insert(Row(row), &id).ok()) {
          failures.fetch_add(1);
          return;
        }
        ids_per_thread[t].push_back(id);
        Ids candidates;
        if (!client.Query(Row(row), &candidates).ok()) {
          failures.fetch_add(1);
          return;
        }
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(failures.load(), 0);

  std::vector<data::RecordId> all;
  for (const auto& ids : ids_per_thread) {
    all.insert(all.end(), ids.begin(), ids.end());
  }
  std::sort(all.begin(), all.end());
  ASSERT_EQ(all.size(),
            static_cast<size_t>(kThreads) * kOpsPerThread);
  for (size_t i = 0; i < all.size(); ++i) {
    EXPECT_EQ(all[i], i);  // distinct, dense ids
  }
  ServiceStats stats = service->stats();
  EXPECT_EQ(stats.records, all.size());
  server.Stop();
}

TEST(CandidateServiceTest, WarmServiceReproducesBatchBlocksViaEmit) {
  // The service's EmitBlocks is the index's — loading a generated
  // dataset through Insert matches index::LoadDataset output.
  data::CoraGeneratorConfig config;
  config.num_records = 120;
  config.num_entities = 12;
  config.seed = 42;
  data::Dataset dataset = GenerateCoraLike(config);

  const std::string spec = "token-blocking:attrs=authors+title";
  std::unique_ptr<CandidateService> service;
  ASSERT_TRUE(
      CandidateService::Make(dataset.schema(), spec, &service).ok());
  for (data::RecordId id = 0; id < dataset.size(); ++id) {
    service->Insert(dataset.Values(id));
  }
  core::BlockCollection via_service;
  service->EmitBlocks(via_service);

  std::unique_ptr<index::IncrementalIndex> direct;
  ASSERT_TRUE(index::IndexRegistry::Global().Create(spec, &direct).ok());
  index::LoadDataset(*direct, dataset);
  EXPECT_EQ(index::CanonicalBlockBytes(via_service),
            index::CanonicalBlockBytes(index::CollectBlocks(*direct)));
}

}  // namespace
}  // namespace sablock::service
