// Cross-ISA parity for the src/arch/ kernel layer: every compiled
// dispatch level must produce byte-identical output to the scalar
// reference on the same inputs. This is the guarantee that lets the
// golden tests run once — SABLOCK_ISA can never change results, only
// speed. Levels the build or the machine lacks are skipped gracefully.

#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <vector>

#include "arch/arch.h"
#include "arch/kernels.h"
#include "common/hashing.h"
#include "common/random.h"

namespace sablock::arch {
namespace {

/// The non-scalar tables compiled into this binary that the current
/// machine can actually execute.
std::vector<const KernelTable*> RunnableSimdTables() {
  std::vector<const KernelTable*> tables;
  for (Isa isa : {Isa::kSse42, Isa::kAvx2}) {
    if (IsaAvailable(isa)) tables.push_back(&KernelsFor(isa));
  }
  return tables;
}

class KernelParityTest : public ::testing::Test {
 protected:
  void SetUp() override {
    tables_ = RunnableSimdTables();
    if (tables_.empty()) {
      GTEST_SKIP() << "no SIMD dispatch level compiled+runnable here; "
                      "scalar is trivially self-consistent";
    }
  }
  std::vector<const KernelTable*> tables_;
};

TEST_F(KernelParityTest, MinhashSignatureMatchesScalar) {
  const KernelTable& scalar = *ScalarKernelTable();
  Rng rng(41);
  // Hash counts around the 2/4-lane boundaries and shingle counts around
  // the 4096-shingle tile boundary.
  for (size_t num_hashes : {1u, 2u, 3u, 4u, 5u, 7u, 135u}) {
    for (size_t num_shingles : {0u, 1u, 5u, 63u, 4095u, 4097u}) {
      std::vector<uint64_t> shingles(num_shingles);
      for (uint64_t& s : shingles) s = Mix64(rng.UniformInt(0, 1 << 30));
      std::vector<uint64_t> a(num_hashes), b(num_hashes);
      for (size_t i = 0; i < num_hashes; ++i) {
        UniversalHash h =
            UniversalHash::FromSeed(17, static_cast<uint64_t>(i));
        a[i] = h.a();
        b[i] = h.b();
      }
      std::vector<uint64_t> want(num_hashes), got(num_hashes);
      scalar.minhash_signature(shingles.data(), shingles.size(), a.data(),
                               b.data(), num_hashes, want.data());
      for (const KernelTable* t : tables_) {
        t->minhash_signature(shingles.data(), shingles.size(), a.data(),
                             b.data(), num_hashes, got.data());
        ASSERT_EQ(0, std::memcmp(want.data(), got.data(),
                                 num_hashes * sizeof(uint64_t)))
            << IsaName(t->isa) << " h=" << num_hashes
            << " s=" << num_shingles;
      }
    }
  }
}

TEST_F(KernelParityTest, Fnv1aWindowsMatchesScalar) {
  const KernelTable& scalar = *ScalarKernelTable();
  Rng rng(43);
  std::string text;
  for (int i = 0; i < 300; ++i) {
    text.push_back(static_cast<char>(rng.UniformInt(0, 255)));
  }
  const uint64_t basis = kFnv1aOffsetBasis ^ Mix64(0);
  for (int q : {1, 2, 3, 4, 5, 6, 7, 8, 11}) {
    for (size_t len : {static_cast<size_t>(q), static_cast<size_t>(q) + 1,
                       size_t{9}, size_t{64}, text.size()}) {
      if (len < static_cast<size_t>(q) || len > text.size()) continue;
      const size_t count = len - static_cast<size_t>(q) + 1;
      std::vector<uint64_t> want(count), got(count);
      scalar.fnv1a_windows(text.data(), len, q, basis, want.data());
      for (const KernelTable* t : tables_) {
        got.assign(count, 0);
        t->fnv1a_windows(text.data(), len, q, basis, got.data());
        ASSERT_EQ(want, got) << IsaName(t->isa) << " q=" << q
                             << " len=" << len;
      }
    }
  }
}

TEST_F(KernelParityTest, Mix64BatchMatchesScalar) {
  const KernelTable& scalar = *ScalarKernelTable();
  for (size_t n : {0u, 1u, 2u, 3u, 4u, 5u, 127u, 1000u}) {
    std::vector<uint64_t> in(n);
    for (size_t i = 0; i < n; ++i) in[i] = ~(i * 0x2545f4914f6cdd1dULL);
    std::vector<uint64_t> want(n), got(n);
    scalar.mix64_batch(in.data(), n, want.data());
    for (const KernelTable* t : tables_) {
      t->mix64_batch(in.data(), n, got.data());
      ASSERT_EQ(want, got) << IsaName(t->isa) << " n=" << n;
    }
  }
}

// Dispatch policy, independent of what this machine supports.
TEST(IsaResolutionTest, OverrideParsingAndClamping) {
  Isa parsed;
  EXPECT_TRUE(ParseIsaName("scalar", &parsed));
  EXPECT_EQ(parsed, Isa::kScalar);
  EXPECT_TRUE(ParseIsaName("sse42", &parsed));
  EXPECT_EQ(parsed, Isa::kSse42);
  EXPECT_TRUE(ParseIsaName("avx2", &parsed));
  EXPECT_EQ(parsed, Isa::kAvx2);
  EXPECT_FALSE(ParseIsaName("avx512", &parsed));

  // No override -> best available; unknown string -> best available;
  // scalar is always honored (it is always available).
  EXPECT_EQ(ResolveIsa(nullptr), BestAvailableIsa());
  EXPECT_EQ(ResolveIsa(""), BestAvailableIsa());
  EXPECT_EQ(ResolveIsa("avx512"), BestAvailableIsa());
  EXPECT_EQ(ResolveIsa("scalar"), Isa::kScalar);
  // A request the machine can satisfy is honored; one it cannot is
  // clamped to something runnable, never escalated past the request.
  for (const char* name : {"sse42", "avx2"}) {
    Isa requested;
    ASSERT_TRUE(ParseIsaName(name, &requested));
    Isa resolved = ResolveIsa(name);
    EXPECT_TRUE(IsaAvailable(resolved));
    EXPECT_LE(static_cast<int>(resolved), static_cast<int>(requested));
    if (IsaAvailable(requested)) EXPECT_EQ(resolved, requested);
  }
}

TEST(IsaResolutionTest, ScalarAlwaysCompiledAndActiveIsRunnable) {
  EXPECT_TRUE(IsaCompiled(Isa::kScalar));
  EXPECT_TRUE(IsaAvailable(Isa::kScalar));
  EXPECT_TRUE(IsaAvailable(ActiveIsa()));
  EXPECT_EQ(ActiveKernels().isa, ActiveIsa());
  // Uncompiled levels fall back to the scalar table rather than crash.
  for (Isa isa : {Isa::kScalar, Isa::kSse42, Isa::kAvx2}) {
    const KernelTable& t = KernelsFor(isa);
    EXPECT_TRUE(t.isa == isa || t.isa == Isa::kScalar);
  }
}

}  // namespace
}  // namespace sablock::arch
