// Tests for BlockCollection bookkeeping and the θB view of Eq. 2.

#include <gtest/gtest.h>

#include "core/blocking.h"

namespace sablock::core {
namespace {

TEST(BlockCollectionTest, EmptyCollection) {
  BlockCollection c;
  EXPECT_EQ(c.NumBlocks(), 0u);
  EXPECT_EQ(c.TotalComparisons(), 0u);
  EXPECT_EQ(c.TotalBlockSizes(), 0u);
  EXPECT_EQ(c.MaxBlockSize(), 0u);
  EXPECT_EQ(c.DistinctPairs().size(), 0u);
}

TEST(BlockCollectionTest, ComparisonCounts) {
  BlockCollection c;
  c.Add({0, 1, 2});     // 3 comparisons
  c.Add({3, 4});        // 1 comparison
  c.Add({5});           // 0 comparisons
  EXPECT_EQ(c.NumBlocks(), 3u);
  EXPECT_EQ(c.TotalComparisons(), 4u);
  EXPECT_EQ(c.TotalBlockSizes(), 6u);
  EXPECT_EQ(c.MaxBlockSize(), 3u);
}

TEST(BlockCollectionTest, DistinctPairsDeduplicateAcrossBlocks) {
  BlockCollection c;
  c.Add({0, 1, 2});
  c.Add({1, 2, 3});  // pair (1,2) repeated
  PairSet pairs = c.DistinctPairs();
  EXPECT_EQ(pairs.size(), 5u);  // (0,1)(0,2)(1,2)(1,3)(2,3)
  EXPECT_EQ(c.TotalComparisons(), 6u);
  EXPECT_TRUE(pairs.Contains(1, 2));
  EXPECT_FALSE(pairs.Contains(0, 3));
}

TEST(BlockCollectionTest, InSameBlockMatchesThetaB) {
  BlockCollection c;
  c.Add({0, 1});
  c.Add({2, 3, 4});
  EXPECT_TRUE(c.InSameBlock(0, 1));
  EXPECT_TRUE(c.InSameBlock(4, 2));
  EXPECT_FALSE(c.InSameBlock(1, 2));
  EXPECT_FALSE(c.InSameBlock(0, 4));
}

// The running example of Fig. 1: B1, B2, B3 produce 6, 9 and 4 candidate
// pairs respectively (record ids 0..5 for r1..r6).
TEST(BlockCollectionTest, Fig1RunningExamplePairCounts) {
  BlockCollection b1;
  b1.Add({0, 1, 3, 5});  // {r1, r2, r4, r6}
  b1.Add({2});
  b1.Add({4});
  EXPECT_EQ(b1.DistinctPairs().size(), 6u);

  BlockCollection b2;
  b2.Add({0, 1, 2, 5});  // {r1, r2, r3, r6}
  b2.Add({3, 4, 5});     // {r4, r5, r6}
  EXPECT_EQ(b2.DistinctPairs().size(), 9u);

  BlockCollection b3;
  b3.Add({0, 1, 5});  // {r1, r2, r6}
  b3.Add({3, 5});     // {r4, r6}
  b3.Add({2});
  b3.Add({4});
  EXPECT_EQ(b3.DistinctPairs().size(), 4u);
}

TEST(BlockCollectionTest, DuplicateIdsInsideBlockAreIgnoredForPairs) {
  BlockCollection c;
  c.Add({7, 7, 8});
  PairSet pairs = c.DistinctPairs();
  EXPECT_EQ(pairs.size(), 1u);
  EXPECT_TRUE(pairs.Contains(7, 8));
}

TEST(BlockCollectionTest, LargeOverlappingCollectionPairCount) {
  BlockCollection c;
  for (uint32_t t = 0; t < 50; ++t) {
    Block b;
    for (uint32_t i = 0; i < 40; ++i) b.push_back((t + i) % 200);
    c.Add(std::move(b));
  }
  PairSet pairs = c.DistinctPairs();
  EXPECT_GT(pairs.size(), 0u);
  EXPECT_LE(pairs.size(), 200u * 199 / 2);
  EXPECT_EQ(c.TotalComparisons(), 50u * (40 * 39 / 2));
}

}  // namespace
}  // namespace sablock::core
