// Tests for Schema / Record / Dataset.

#include <gtest/gtest.h>

#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "data/record.h"

namespace sablock::data {
namespace {

Dataset TwoColumnDataset() {
  Dataset d{Schema({"name", "city"})};
  d.Add({{"alice", "berlin"}}, 0);
  d.Add({{"alicia", "berlin"}}, 0);
  d.Add({{"bob", "paris"}}, 1);
  d.Add({{"carol", ""}}, kUnknownEntity);
  return d;
}

TEST(SchemaTest, IndexLookup) {
  Schema s({"a", "b", "c"});
  EXPECT_EQ(s.size(), 3u);
  EXPECT_EQ(s.IndexOf("a"), 0);
  EXPECT_EQ(s.IndexOf("c"), 2);
  EXPECT_EQ(s.IndexOf("missing"), -1);
  EXPECT_EQ(s.RequireIndex("b"), 1u);
}

TEST(DatasetTest, AddAndAccess) {
  Dataset d = TwoColumnDataset();
  EXPECT_EQ(d.size(), 4u);
  EXPECT_EQ(d.Value(0, "name"), "alice");
  EXPECT_EQ(d.Value(2, "city"), "paris");
  EXPECT_EQ(d.Value(0, "missing_attr"), "");
  EXPECT_EQ(d.entity(0), 0u);
  EXPECT_EQ(d.entity(3), kUnknownEntity);
}

TEST(DatasetTest, IsMatchRequiresKnownEqualEntities) {
  Dataset d = TwoColumnDataset();
  EXPECT_TRUE(d.IsMatch(0, 1));
  EXPECT_FALSE(d.IsMatch(0, 2));
  EXPECT_FALSE(d.IsMatch(0, 3));  // unknown entity never matches
  EXPECT_FALSE(d.IsMatch(3, 3));
}

TEST(DatasetTest, ConcatenatedValuesNormalizes) {
  Dataset d{Schema({"x", "y"})};
  d.Add({{"Foo-Bar", "BAZ!"}});
  EXPECT_EQ(d.ConcatenatedValues(0, {"x", "y"}), "foo bar baz");
  EXPECT_EQ(d.ConcatenatedValues(0, {"y"}), "baz");
  EXPECT_EQ(d.ConcatenatedValues(0, {"missing"}), "");
}

TEST(DatasetTest, ConcatenatedValuesSkipsEmpty) {
  Dataset d{Schema({"x", "y"})};
  d.Add({{"", "b"}});
  EXPECT_EQ(d.ConcatenatedValues(0, {"x", "y"}), "b");
}

TEST(DatasetTest, CountTrueMatchPairs) {
  Dataset d = TwoColumnDataset();
  // Cluster sizes: {2, 1, 1-unknown} -> 1 pair.
  EXPECT_EQ(d.CountTrueMatchPairs(), 1u);
  EXPECT_EQ(d.TotalPairs(), 6u);
}

TEST(DatasetTest, CountTrueMatchPairsLargerClusters) {
  Dataset d{Schema({"a"})};
  for (int i = 0; i < 4; ++i) d.Add({{"x"}}, 7);
  for (int i = 0; i < 3; ++i) d.Add({{"y"}}, 8);
  EXPECT_EQ(d.CountTrueMatchPairs(), 6u + 3u);
}

TEST(DatasetTest, PrefixSubset) {
  Dataset d = TwoColumnDataset();
  Dataset p = d.Prefix(2);
  EXPECT_EQ(p.size(), 2u);
  EXPECT_EQ(p.Value(1, "name"), "alicia");
  EXPECT_EQ(p.entity(1), 0u);
  // Prefix larger than the dataset is the whole dataset.
  EXPECT_EQ(d.Prefix(100).size(), 4u);
  EXPECT_EQ(d.Prefix(0).size(), 0u);
}

TEST(DatasetTest, SliceOffsetsRecordIds) {
  Dataset d = TwoColumnDataset();
  Dataset s = d.Slice(1, 3);
  ASSERT_EQ(s.size(), 2u);
  // Slice-local id i is global id begin + i (the engine's shard mapping).
  EXPECT_EQ(s.Value(0, "name"), "alicia");
  EXPECT_EQ(s.Value(1, "name"), "bob");
  EXPECT_EQ(s.entity(0), 0u);
  EXPECT_EQ(s.entity(1), 1u);
  // End clamped to the dataset; degenerate ranges are empty.
  EXPECT_EQ(d.Slice(2, 100).size(), 2u);
  EXPECT_EQ(d.Slice(3, 3).size(), 0u);
  EXPECT_EQ(d.Slice(100, 200).size(), 0u);
}

TEST(DatasetTest, EmptyDataset) {
  Dataset d{Schema({"a"})};
  EXPECT_TRUE(d.empty());
  EXPECT_EQ(d.CountTrueMatchPairs(), 0u);
  EXPECT_EQ(d.TotalPairs(), 0u);
}

TEST(DatasetTest, ValuesSpanAlignsWithSchema) {
  Dataset d = TwoColumnDataset();
  std::span<const std::string_view> row = d.Values(1);
  ASSERT_EQ(row.size(), 2u);
  EXPECT_EQ(row[0], "alicia");
  EXPECT_EQ(row[1], "berlin");
  Record materialized = d.record(1);
  EXPECT_EQ(materialized.values,
            (std::vector<std::string>{"alicia", "berlin"}));
}

TEST(DatasetTest, AddRowCopiesViewsIntoOwnArena) {
  Dataset a = TwoColumnDataset();
  Dataset b{a.schema()};
  for (RecordId id = 0; id < a.size(); ++id) {
    b.AddRow(a.Values(id), a.entity(id));
  }
  ASSERT_EQ(b.size(), a.size());
  EXPECT_EQ(b.Value(2, "city"), "paris");
  // b owns its bytes: they live in b's arena, not a's.
  EXPECT_NE(b.Value(0, "name").data(), a.Value(0, "name").data());
}

TEST(DatasetTest, VersionCountsMutations) {
  Dataset d{Schema({"name", "city"})};
  EXPECT_EQ(d.version(), 0u);
  d.Add({{"alice", "berlin"}}, 0);
  EXPECT_EQ(d.version(), 1u);
  std::vector<std::string> values = {"bob", "paris"};
  std::vector<std::string_view> views = {values.begin(), values.end()};
  d.AddRow(views, 1);
  EXPECT_EQ(d.version(), 2u);
  // Copies and slices inherit the version (they carry the same records,
  // so an inherited FeatureStore snapshot is equally fresh for them).
  Dataset copy = d;
  EXPECT_EQ(copy.version(), d.version());
  EXPECT_EQ(d.Slice(0, 2).version(), d.version());
  EXPECT_EQ(d.ColdCopy().version(), d.version());
  copy.Add({{"carol", "oslo"}}, 2);
  EXPECT_EQ(copy.version(), 3u);
  EXPECT_EQ(d.version(), 2u);  // independent counters after the copy
}

TEST(DatasetTest, SliceSharesArenaWithoutCopyingBytes) {
  Dataset d = TwoColumnDataset();
  const size_t bytes_before = d.arena_bytes();
  Dataset s = d.Slice(1, 3);
  // The slice's value views alias the parent's arena bytes exactly — no
  // record bytes were copied.
  EXPECT_EQ(s.Value(0, "name").data(), d.Value(1, "name").data());
  EXPECT_EQ(s.Value(1, "city").data(), d.Value(2, "city").data());
  EXPECT_EQ(s.arena_bytes(), bytes_before);

  // ...and the parent can go away: the shared arena keeps views alive.
  Dataset kept = TwoColumnDataset().Slice(0, 2);
  EXPECT_EQ(kept.Value(0, "name"), "alice");
  EXPECT_EQ(kept.Value(1, "city"), "berlin");
}

TEST(DatasetTest, ColdCopySharesArenaButNotFeatures) {
  Dataset d = TwoColumnDataset();
  Dataset cold = d.ColdCopy();
  EXPECT_EQ(cold.size(), d.size());
  EXPECT_EQ(cold.Value(0, "name").data(), d.Value(0, "name").data());
}

TEST(SchemaTest, WideSchemaLookupsStayCorrect) {
  // The name->index map must agree with positional order for wide
  // schemas (the hash-map fast path replacing the linear scan).
  std::vector<std::string> names;
  for (int i = 0; i < 200; ++i) names.push_back("attr" + std::to_string(i));
  Schema s(names);
  EXPECT_EQ(s.IndexOf("attr0"), 0);
  EXPECT_EQ(s.IndexOf("attr199"), 199);
  EXPECT_EQ(s.IndexOf("attr42"), 42);
  EXPECT_EQ(s.IndexOf("nope"), -1);
}

}  // namespace
}  // namespace sablock::data
