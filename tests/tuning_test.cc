// Tests for parameter tuning (Section 5.3), including the paper's worked
// example k=4, l=63.

#include <gtest/gtest.h>

#include "core/collision.h"
#include "core/tuning.h"
#include "data/cora_generator.h"

namespace sablock::core {
namespace {

TEST(SimilarityDistributionTest, BinsAndCdf) {
  SimilarityDistribution dist(10);
  dist.Add(0.05);
  dist.Add(0.15);
  dist.Add(0.15);
  dist.Add(0.95);
  EXPECT_EQ(dist.count(), 4u);
  EXPECT_NEAR(dist.BinFraction(0), 0.25, 1e-12);
  EXPECT_NEAR(dist.BinFraction(1), 0.50, 1e-12);
  EXPECT_NEAR(dist.BinFraction(9), 0.25, 1e-12);
  EXPECT_NEAR(dist.Cdf(0.2), 0.75, 1e-12);
  EXPECT_NEAR(dist.Cdf(1.0), 1.0, 1e-12);
  EXPECT_NEAR(dist.Cdf(0.0), 0.0, 1e-12);
}

TEST(SimilarityDistributionTest, BoundaryValueGoesToLastBin) {
  SimilarityDistribution dist(10);
  dist.Add(1.0);
  EXPECT_NEAR(dist.BinFraction(9), 1.0, 1e-12);
}

TEST(SimilarityDistributionTest, ThresholdForErrorRatio) {
  SimilarityDistribution dist(10);
  // 10% of matches below 0.1, the rest at 0.85.
  for (int i = 0; i < 10; ++i) dist.Add(0.05);
  for (int i = 0; i < 90; ++i) dist.Add(0.85);
  // epsilon = 0.15 allows losing the low bin entirely.
  double sh = dist.ThresholdForErrorRatio(0.15);
  EXPECT_GT(sh, 0.05);
  EXPECT_LE(sh, 0.85);
  // epsilon = 0 must not lose anything.
  EXPECT_LE(dist.ThresholdForErrorRatio(0.0), 0.05);
}

TEST(SimilarityDistributionTest, EmptyDistribution) {
  SimilarityDistribution dist;
  EXPECT_DOUBLE_EQ(dist.Cdf(0.5), 0.0);
  EXPECT_DOUBLE_EQ(dist.ThresholdForErrorRatio(0.1), 0.0);
  EXPECT_DOUBLE_EQ(dist.BinFraction(0), 0.0);
}

TEST(TuneKLTest, ReproducesPaperExample) {
  // Section 6.1: sh=0.3, ph=0.4, sl=0.2, pl=0.1 determine k=4, l=63.
  LshTuning t = TuneKL(0.3, 0.4, 0.2, 0.1);
  ASSERT_TRUE(t.feasible);
  EXPECT_EQ(t.k, 4);
  EXPECT_EQ(t.l, 63);
}

TEST(TuneKLTest, InfeasibleWhenConstraintsConflict) {
  // Demanding near-certain collisions at sh and near-zero at a barely
  // smaller sl cannot be satisfied with small k.
  LshTuning t = TuneKL(0.31, 0.999, 0.30, 0.001, /*max_k=*/3,
                       /*max_l=*/100);
  EXPECT_FALSE(t.feasible);
}

TEST(TuneKLTest, SolutionSatisfiesBothConstraints) {
  for (double sh : {0.3, 0.5, 0.8}) {
    double sl = sh - 0.15;
    LshTuning t = TuneKL(sh, 0.5, sl, 0.1);
    if (!t.feasible) continue;
    EXPECT_GE(LshCollisionProbability(sh, t.k, t.l), 0.5 - 1e-9);
    EXPECT_LE(LshCollisionProbability(sl, t.k, t.l), 0.1 + 1e-9);
  }
}

TEST(MeasureTrueMatchSimilarityTest, OnGeneratedCora) {
  data::CoraGeneratorConfig config;
  config.num_entities = 30;
  config.num_records = 200;
  config.seed = 21;
  data::Dataset d = GenerateCoraLike(config);

  DistributionOptions options;
  options.attributes = {"authors", "title"};
  options.q = 3;
  SimilarityDistribution dist = MeasureTrueMatchSimilarity(d, options);
  EXPECT_EQ(dist.count(), d.CountTrueMatchPairs());
  // Duplicates are corrupted copies: most mass should sit above 0.2.
  EXPECT_LT(dist.Cdf(0.2), 0.5);
}

TEST(MeasureTrueMatchSimilarityTest, SamplingCapsPairCount) {
  data::CoraGeneratorConfig config;
  config.num_entities = 10;
  config.num_records = 120;
  config.seed = 22;
  data::Dataset d = GenerateCoraLike(config);

  DistributionOptions options;
  options.attributes = {"authors", "title"};
  options.max_pairs = 50;
  SimilarityDistribution dist = MeasureTrueMatchSimilarity(d, options);
  EXPECT_EQ(dist.count(), 50u);
}

TEST(MeasureTrueMatchSimilarityTest, ExactValueMode) {
  data::Dataset d{data::Schema({"name"})};
  d.Add({{"alice"}}, 0);
  d.Add({{"alice"}}, 0);
  d.Add({{"alicia"}}, 0);
  DistributionOptions options;
  options.attributes = {"name"};
  options.q = 0;  // exact-value similarity
  SimilarityDistribution dist = MeasureTrueMatchSimilarity(d, options);
  EXPECT_EQ(dist.count(), 3u);
  // Exactly one of the three pairs is an exact match.
  EXPECT_NEAR(dist.Cdf(0.5), 2.0 / 3.0, 1e-12);
}

TEST(MeasureTrueMatchSimilarityTest, NoLabelsYieldsEmpty) {
  data::Dataset d{data::Schema({"name"})};
  d.Add({{"a"}});
  d.Add({{"b"}});
  DistributionOptions options;
  options.attributes = {"name"};
  SimilarityDistribution dist = MeasureTrueMatchSimilarity(d, options);
  EXPECT_EQ(dist.count(), 0u);
}

}  // namespace
}  // namespace sablock::core
