// Unit tests for the incremental-index layer: Bind validation, Query
// semantics (including the sorted-neighbourhood window math), Remove
// behavior, and the IndexRegistry spec grammar. Cross-checks against the
// batch techniques live in index_parity_test.cc.

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "baselines/blocking_key.h"
#include "core/blocking.h"
#include "index/incremental_index.h"
#include "index/index_registry.h"
#include "index/lsh_index.h"
#include "index/sorted_index.h"
#include "index/token_index.h"

namespace sablock::index {
namespace {

using Ids = std::vector<data::RecordId>;

data::Schema TwoAttrSchema() { return data::Schema({"name", "city"}); }

std::vector<std::string_view> Row(const std::vector<std::string>& values) {
  return {values.begin(), values.end()};
}

TEST(TokenIndexTest, BindRejectsMissingAttribute) {
  TokenPostingsIndex index({"name", "zip"});
  Status s = index.Bind(TwoAttrSchema());
  EXPECT_FALSE(s.ok());
  EXPECT_NE(s.message().find("zip"), std::string::npos);
}

TEST(TokenIndexTest, QueryReturnsTokenSharers) {
  TokenPostingsIndex index({"name", "city"});
  ASSERT_TRUE(index.Bind(TwoAttrSchema()).ok());
  std::vector<std::string> a = {"Alice Smith", "Berlin"};
  std::vector<std::string> b = {"Bob Smith", "Paris"};
  std::vector<std::string> c = {"Carol", "Berlin"};
  index.Insert(0, Row(a));
  index.Insert(1, Row(b));
  index.Insert(2, Row(c));
  EXPECT_EQ(index.size(), 3u);

  std::vector<std::string> probe = {"Dan Smith", "berlin!"};
  // Shares "smith" with 0 and 1, "berlin" with 0 and 2 (normalization
  // strips punctuation/case). Sorted distinct ids.
  EXPECT_EQ(index.Query(Row(probe)), (Ids{0, 1, 2}));
  std::vector<std::string> nothing = {"Zed", "Oslo"};
  EXPECT_TRUE(index.Query(Row(nothing)).empty());
}

TEST(TokenIndexTest, RemoveUnindexes) {
  TokenPostingsIndex index({"name", "city"});
  ASSERT_TRUE(index.Bind(TwoAttrSchema()).ok());
  std::vector<std::string> a = {"Alice", "Berlin"};
  std::vector<std::string> b = {"Bob", "Berlin"};
  index.Insert(0, Row(a));
  index.Insert(1, Row(b));
  EXPECT_TRUE(index.Remove(0));
  EXPECT_FALSE(index.Remove(0));  // already gone
  EXPECT_EQ(index.size(), 1u);
  std::vector<std::string> probe = {"X", "Berlin"};
  EXPECT_EQ(index.Query(Row(probe)), (Ids{1}));
  // The surviving singleton posting emits no block.
  core::BlockCollection blocks = CollectBlocks(index);
  EXPECT_EQ(blocks.NumBlocks(), 0u);
}

TEST(SortedIndexTest, QueryWindowMath) {
  // Keys sort as a < b < c < d (ids 0..3). With window w the probe sees
  // the w-1 predecessors and w-2 successors of its sort position.
  SortedWindowIndex index(baselines::ExactKey({"name"}), 2);
  ASSERT_TRUE(index.Bind(TwoAttrSchema()).ok());
  for (data::RecordId id = 0; id < 4; ++id) {
    std::vector<std::string> row = {std::string(1, 'a' + id), ""};
    index.Insert(id, Row(row));
  }
  // Probe key "bb" sorts between b (pos 1) and c (pos 2): probe position
  // 2, window 2 -> predecessors {b}, successors {} plus the record at the
  // probe's own slot... window [p-1, p] = positions 1..2 = {b, c}.
  std::vector<std::string> probe = {"bb", ""};
  EXPECT_EQ(index.Query(Row(probe)), (Ids{1, 2}));
  // A probe smaller than everything: position 0, window covers only c0.
  std::vector<std::string> first = {"0", ""};
  EXPECT_EQ(index.Query(Row(first)), (Ids{0}));
}

TEST(SortedIndexTest, OversizedWindowReturnsEverything) {
  SortedWindowIndex index(baselines::ExactKey({"name"}), 10);
  ASSERT_TRUE(index.Bind(TwoAttrSchema()).ok());
  for (data::RecordId id = 0; id < 3; ++id) {
    std::vector<std::string> row = {std::string(1, 'z' - id), ""};
    index.Insert(id, Row(row));
  }
  std::vector<std::string> probe = {"m", ""};
  EXPECT_EQ(index.Query(Row(probe)), (Ids{0, 1, 2}));
}

TEST(SortedIndexTest, EqualKeysOrderByIdLikeStableSort) {
  SortedWindowIndex index(baselines::ExactKey({"name"}), 2);
  ASSERT_TRUE(index.Bind(TwoAttrSchema()).ok());
  std::vector<std::string> same = {"same", ""};
  index.Insert(0, Row(same));
  index.Insert(1, Row(same));
  index.Insert(2, Row(same));
  // Sliding window of 2 over the id-ordered run: {0,1}, {1,2}.
  core::BlockCollection blocks = CollectBlocks(index);
  ASSERT_EQ(blocks.NumBlocks(), 2u);
  EXPECT_EQ(blocks.blocks()[0], (Ids{0, 1}));
  EXPECT_EQ(blocks.blocks()[1], (Ids{1, 2}));
}

TEST(LshIndexTest, IdenticalRecordsCollide) {
  core::LshParams params;
  params.k = 2;
  params.l = 4;
  params.q = 2;
  params.attributes = {"name", "city"};
  LshIndex index(params);
  ASSERT_TRUE(index.Bind(TwoAttrSchema()).ok());
  std::vector<std::string> a = {"alice example", "berlin"};
  index.Insert(0, Row(a));
  index.Insert(1, Row(a));
  EXPECT_EQ(index.Query(Row(a)), (Ids{0, 1}));
  EXPECT_TRUE(index.Remove(1));
  EXPECT_EQ(index.Query(Row(a)), (Ids{0}));
}

TEST(LshIndexTest, EmptyTextIsExcluded) {
  core::LshParams params;
  params.k = 2;
  params.l = 4;
  params.q = 2;
  params.attributes = {"name"};
  LshIndex index(params);
  ASSERT_TRUE(index.Bind(TwoAttrSchema()).ok());
  std::vector<std::string> empty = {"", "berlin"};
  index.Insert(0, Row(empty));
  index.Insert(1, Row(empty));
  EXPECT_EQ(index.size(), 2u);
  // Empty blocking text yields the empty-signature sentinel: never
  // bucketed, never a candidate (matching the batch LshBlocker).
  EXPECT_TRUE(index.Query(Row(empty)).empty());
  EXPECT_EQ(CollectBlocks(index).NumBlocks(), 0u);
  EXPECT_TRUE(index.Remove(0));
}

TEST(IndexRegistryTest, ListContainsAndAliases) {
  IndexRegistry& registry = IndexRegistry::Global();
  EXPECT_TRUE(registry.Contains("lsh"));
  EXPECT_TRUE(registry.Contains("sa-lsh"));
  EXPECT_TRUE(registry.Contains("salsh"));   // alias
  EXPECT_TRUE(registry.Contains("token"));   // alias
  EXPECT_TRUE(registry.Contains("sorted"));  // alias
  EXPECT_FALSE(registry.Contains("nope"));
  std::vector<api::BlockerInfo> entries = registry.List();
  ASSERT_EQ(entries.size(), 4u);
  for (size_t i = 1; i < entries.size(); ++i) {
    EXPECT_LT(entries[i - 1].name, entries[i].name);
  }
}

TEST(IndexRegistryTest, CreateFromSpecString) {
  std::unique_ptr<IncrementalIndex> index;
  Status s = IndexRegistry::Global().Create(
      "token:attrs=name+city", &index);
  ASSERT_TRUE(s.ok()) << s.message();
  EXPECT_TRUE(index->Bind(TwoAttrSchema()).ok());
}

TEST(IndexRegistryTest, RejectsUnknownNameAndBadParams) {
  std::unique_ptr<IncrementalIndex> index;
  EXPECT_FALSE(IndexRegistry::Global().Create("nope", &index).ok());
  EXPECT_FALSE(IndexRegistry::Global().Create("lsh:k=0", &index).ok());
  EXPECT_FALSE(
      IndexRegistry::Global().Create("sor-a:window=1", &index).ok());
  EXPECT_FALSE(
      IndexRegistry::Global().Create("lsh:bogus-param=3", &index).ok());
}

}  // namespace
}  // namespace sablock::index
