// Corruption robustness: a damaged `.sab` snapshot must fail with a
// clean diagnostic Status — never crash, never silently load wrong
// data. The suite mutates a golden file every way the format doc
// promises to survive: truncation at every boundary region, randomized
// bit flips (seeded, so failures reproduce), byte-swapped endian
// marker, future format version, wrong magic, and pure garbage.
//
// The one legal outcome besides a clean error is a byte-identical
// dataset: flips that land in un-checksummed alignment padding change
// nothing the loader reads. The CI ASan leg runs this test, so any
// out-of-bounds read a mutation provokes is a hard failure even when
// it would "work" in production.

#include <unistd.h>

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iterator>
#include <random>
#include <string>
#include <vector>

#include "data/cora_generator.h"
#include "data/record.h"
#include "features/feature_store.h"
#include "gtest/gtest.h"
#include "store/format.h"
#include "store/snapshot.h"
#include "store/snapshot_writer.h"

namespace sablock::store {
namespace {

std::string TmpPath(const char* tag) {
  return "/tmp/sablock-corrupt-" + std::to_string(::getpid()) + "-" + tag +
         ".sab";
}

std::string ReadFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.is_open()) << path;
  return {std::istreambuf_iterator<char>(in),
          std::istreambuf_iterator<char>()};
}

void WriteFile(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  ASSERT_TRUE(out.is_open()) << path;
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

/// The golden corpus: small Cora-like dataset with one column of every
/// feature kind warmed, so the file exercises every section decoder.
data::Dataset GoldenDataset() {
  data::CoraGeneratorConfig config;
  config.num_entities = 12;
  config.num_records = 120;
  config.seed = 42;
  data::Dataset d = data::GenerateCoraLike(config);
  const std::vector<std::string> attrs = {"authors", "title"};
  features::FeatureView warm = d.features();
  warm.TextsFor(attrs);
  warm.TokensFor(attrs);
  warm.ShinglesFor(attrs, 3);
  warm.SignaturesFor(attrs, 3, 16, 7);
  return d;
}

bool SameRecords(const data::Dataset& a, const data::Dataset& b) {
  if (a.size() != b.size()) return false;
  if (a.schema().names() != b.schema().names()) return false;
  for (data::RecordId id = 0; id < a.size(); ++id) {
    if (a.entity(id) != b.entity(id)) return false;
    auto va = a.Values(id);
    auto vb = b.Values(id);
    for (size_t i = 0; i < va.size(); ++i) {
      if (va[i] != vb[i]) return false;
    }
  }
  return true;
}

class SnapshotCorruptionTest : public ::testing::Test {
 protected:
  void SetUp() override {
    original_ = GoldenDataset();
    path_ = TmpPath("golden");
    ASSERT_TRUE(WriteSnapshot(path_, original_).ok());
    golden_ = ReadFile(path_);
    ASSERT_GE(golden_.size(), kHeaderBytes);
  }
  void TearDown() override { std::remove(path_.c_str()); }

  /// Loads `bytes` (written to the temp path) and demands the contract:
  /// a clean non-empty error, or a dataset byte-identical to the
  /// original. Returns true when the load errored.
  bool ExpectCleanOutcome(const std::string& bytes, const char* what) {
    WriteFile(path_, bytes);
    data::Dataset loaded;
    Status s = LoadSnapshot(path_, {}, &loaded);
    if (s.ok()) {
      EXPECT_TRUE(SameRecords(original_, loaded))
          << what << ": loaded OK but with different data";
      return false;
    }
    EXPECT_FALSE(s.message().empty()) << what;
    return true;
  }

  data::Dataset original_;
  std::string path_;
  std::string golden_;
};

TEST_F(SnapshotCorruptionTest, GoldenFileLoads) {
  data::Dataset loaded;
  Status s = LoadSnapshot(path_, {}, &loaded);
  ASSERT_TRUE(s.ok()) << s.message();
  EXPECT_TRUE(SameRecords(original_, loaded));
}

TEST_F(SnapshotCorruptionTest, TruncationAlwaysFailsCleanly) {
  // Every prefix length through the header, then ~64 cut points across
  // the body: a truncated file can never satisfy the recorded
  // file_bytes, so every one of these must error.
  std::vector<size_t> cuts;
  for (size_t n = 0; n <= kHeaderBytes; ++n) cuts.push_back(n);
  const size_t step = std::max<size_t>(1, golden_.size() / 64);
  for (size_t n = kHeaderBytes + 1; n < golden_.size(); n += step) {
    cuts.push_back(n);
  }
  for (size_t n : cuts) {
    EXPECT_TRUE(
        ExpectCleanOutcome(golden_.substr(0, n), "truncation"))
        << "truncated to " << n << " bytes unexpectedly loaded";
  }
}

TEST_F(SnapshotCorruptionTest, RandomBitFlipsNeverCrashOrCorrupt) {
  // Seeded, so a failing (byte, bit) pair reproduces exactly.
  std::mt19937_64 rng(20260807);
  std::uniform_int_distribution<size_t> byte_dist(0, golden_.size() - 1);
  std::uniform_int_distribution<int> bit_dist(0, 7);
  int errors = 0;
  constexpr int kFlips = 400;
  for (int i = 0; i < kFlips; ++i) {
    const size_t byte = byte_dist(rng);
    const int bit = bit_dist(rng);
    std::string mutated = golden_;
    mutated[byte] = static_cast<char>(mutated[byte] ^ (1 << bit));
    if (ExpectCleanOutcome(mutated, "bit flip")) ++errors;
  }
  // Nearly every byte is covered by a checksum; only alignment padding
  // flips may load. If most flips "succeed", checksumming is broken.
  EXPECT_GT(errors, kFlips / 2);
}

TEST_F(SnapshotCorruptionTest, EveryHeaderFieldIsValidated) {
  // Flip the low byte of each fixed header field in turn.
  const size_t offsets[] = {0,  // magic
                            8,  // endian marker
                            12, // format version
                            16, // record count
                            24, // attr count
                            28, // section count
                            32, // file bytes
                            40};  // table checksum
  for (size_t off : offsets) {
    std::string mutated = golden_;
    mutated[off] = static_cast<char>(mutated[off] ^ 0xff);
    WriteFile(path_, mutated);
    data::Dataset loaded;
    Status s = LoadSnapshot(path_, {}, &loaded);
    EXPECT_FALSE(s.ok()) << "header offset " << off;
  }
}

TEST_F(SnapshotCorruptionTest, ForeignEndianIsRefusedWithDiagnostic) {
  // Byte-swap the endian marker: the file of a machine with the other
  // byte order. The loader must name the problem, not flail on
  // swapped counts.
  std::string mutated = golden_;
  std::swap(mutated[8], mutated[11]);
  std::swap(mutated[9], mutated[10]);
  WriteFile(path_, mutated);
  data::Dataset loaded;
  Status s = LoadSnapshot(path_, {}, &loaded);
  ASSERT_FALSE(s.ok());
  EXPECT_NE(s.message().find("byte-order"), std::string::npos)
      << s.message();
}

TEST_F(SnapshotCorruptionTest, FutureVersionIsRefusedWithDiagnostic) {
  std::string mutated = golden_;
  const uint32_t future = kFormatVersion + 1;
  std::memcpy(&mutated[12], &future, sizeof future);
  WriteFile(path_, mutated);
  data::Dataset loaded;
  Status s = LoadSnapshot(path_, {}, &loaded);
  ASSERT_FALSE(s.ok());
  EXPECT_NE(s.message().find("version"), std::string::npos) << s.message();
}

TEST_F(SnapshotCorruptionTest, WrongMagicIsRefused) {
  std::string mutated = golden_;
  mutated.replace(0, 8, "NOTASNAP");
  EXPECT_TRUE(ExpectCleanOutcome(mutated, "magic"));
}

TEST_F(SnapshotCorruptionTest, GarbageFilesAreRefused) {
  std::mt19937_64 rng(7);
  for (size_t size : {0ul, 1ul, 47ul, 48ul, 4096ul}) {
    std::string garbage(size, '\0');
    for (char& c : garbage) c = static_cast<char>(rng());
    EXPECT_TRUE(ExpectCleanOutcome(garbage, "garbage"))
        << size << "-byte garbage file unexpectedly loaded";
  }
}

TEST_F(SnapshotCorruptionTest, ChecksumVerificationIsTheDefaultGate) {
  // Flip one byte deep inside the arena payload. With checksums on
  // (default) the load must fail; this is the flag the LoadOptions doc
  // tells trusted-file users they may turn off, so we pin that it is
  // actually doing the work.
  std::string mutated = golden_;
  mutated[golden_.size() - 9] =
      static_cast<char>(mutated[golden_.size() - 9] ^ 0x40);
  EXPECT_TRUE(ExpectCleanOutcome(mutated, "payload flip"));
}

}  // namespace
}  // namespace sablock::store
