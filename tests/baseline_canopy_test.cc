// Tests for the canopy-clustering baselines CaTh and CaNN.

#include <gtest/gtest.h>

#include "run_streaming.h"

#include "baselines/canopy.h"

namespace sablock::baselines {
namespace {

using core::BlockCollection;
using data::Dataset;
using data::Schema;

Dataset TokenDataset() {
  Dataset d{Schema({"name"})};
  d.Add({{"john michael smith"}}, 0);
  d.Add({{"john m smith"}}, 0);
  d.Add({{"john smith"}}, 0);
  d.Add({{"mary johnson brown"}}, 1);
  d.Add({{"mary johnson"}}, 1);
  d.Add({{"unrelated tokens here"}}, 2);
  return d;
}

TEST(CanopyThresholdTest, GroupsTokenOverlappingRecords) {
  Dataset d = TokenDataset();
  CanopyThreshold cath(ExactKey({"name"}), CanopySimilarity::kJaccard,
                       /*loose=*/0.3, /*tight=*/0.8, /*seed=*/5);
  BlockCollection blocks = RunStreaming(cath, d);
  EXPECT_TRUE(blocks.InSameBlock(0, 1));
  EXPECT_TRUE(blocks.InSameBlock(3, 4));
  EXPECT_FALSE(blocks.InSameBlock(0, 5));
  EXPECT_FALSE(blocks.InSameBlock(0, 3));
}

TEST(CanopyThresholdTest, EveryRecordInAtMostOneSeedRole) {
  // With tight == loose every canopied record is removed from the pool, so
  // canopies partition the reachable records.
  Dataset d = TokenDataset();
  CanopyThreshold cath(ExactKey({"name"}), CanopySimilarity::kJaccard, 0.3,
                       0.3, 5);
  BlockCollection blocks = RunStreaming(cath, d);
  std::vector<int> membership(d.size(), 0);
  for (const auto& b : blocks.blocks()) {
    for (auto id : b) ++membership[id];
  }
  for (int count : membership) EXPECT_LE(count, 1);
}

TEST(CanopyThresholdTest, TfIdfVariantRuns) {
  Dataset d = TokenDataset();
  CanopyThreshold cath(ExactKey({"name"}), CanopySimilarity::kTfIdfCosine,
                       0.2, 0.6, 5);
  BlockCollection blocks = RunStreaming(cath, d);
  EXPECT_TRUE(blocks.InSameBlock(0, 1) || blocks.InSameBlock(0, 2));
}

TEST(CanopyThresholdTest, DeterministicForSeed) {
  Dataset d = TokenDataset();
  CanopyThreshold cath(ExactKey({"name"}), CanopySimilarity::kJaccard, 0.3,
                       0.8, 5);
  EXPECT_EQ(RunStreaming(cath, d).TotalComparisons(), RunStreaming(cath, d).TotalComparisons());
}

TEST(CanopyThresholdTest, NameEncodesParameters) {
  CanopyThreshold cath(ExactKey({"a"}), CanopySimilarity::kJaccard, 0.7,
                       0.9);
  EXPECT_EQ(cath.name(), "CaTh(jac,0.90/0.70)");
}

TEST(CanopyNearestNeighbourTest, CanopySizesRespectN1) {
  Dataset d = TokenDataset();
  CanopyNearestNeighbour cann(ExactKey({"name"}),
                              CanopySimilarity::kJaccard, /*n1=*/2,
                              /*n2=*/1, /*seed=*/5);
  BlockCollection blocks = RunStreaming(cann, d);
  for (const auto& b : blocks.blocks()) {
    EXPECT_LE(b.size(), 3u);  // seed + n1 neighbours
  }
}

TEST(CanopyNearestNeighbourTest, FindsNearDuplicates) {
  Dataset d = TokenDataset();
  CanopyNearestNeighbour cann(ExactKey({"name"}),
                              CanopySimilarity::kJaccard, 3, 2, 5);
  BlockCollection blocks = RunStreaming(cann, d);
  // Within the john-smith cluster at least one true pair must be covered.
  bool found = blocks.InSameBlock(0, 1) || blocks.InSameBlock(0, 2) ||
               blocks.InSameBlock(1, 2);
  EXPECT_TRUE(found);
}

TEST(CanopyNearestNeighbourTest, NameEncodesParameters) {
  CanopyNearestNeighbour cann(ExactKey({"a"}),
                              CanopySimilarity::kTfIdfCosine, 10, 5);
  EXPECT_EQ(cann.name(), "CaNN(tfidf,10/5)");
}

TEST(CanopyNearestNeighbourDeathTest, RejectsRemoveCountAboveCanopySize) {
  EXPECT_DEATH(CanopyNearestNeighbour(ExactKey({"a"}),
                                      CanopySimilarity::kJaccard, 5, 10),
               "CHECK");
}

TEST(CanopyTest, IsolatedRecordsFormNoBlocks) {
  Dataset d{Schema({"name"})};
  d.Add({{"alpha"}});
  d.Add({{"beta"}});
  d.Add({{"gamma"}});
  CanopyThreshold cath(ExactKey({"name"}), CanopySimilarity::kJaccard, 0.5,
                       0.9, 5);
  EXPECT_EQ(RunStreaming(cath, d).NumBlocks(), 0u);
}

}  // namespace
}  // namespace sablock::baselines
