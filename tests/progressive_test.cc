// Tests for the progressive layer: pair schedulers (ordering contracts,
// determinism, distinct-pair completeness) and the `progressive` barrier
// stage (budget stopping, spec parameter validation, pipeline wiring).

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "common/pair_set.h"
#include "core/blocking.h"
#include "data/record.h"
#include "pipeline/pipeline.h"
#include "pipeline/stage_registry.h"
#include "progressive/progressive_stage.h"
#include "progressive/scheduler.h"

namespace sablock::progressive {
namespace {

using core::Block;
using core::BlockCollection;
using core::CandidatePair;

// Blocks with deliberately skewed sizes and overlap: {0,1} co-occur in
// three blocks (high edge weight), the big block dilutes its pairs.
BlockCollection OverlappingBlocks() {
  BlockCollection blocks;
  blocks.Add(Block{0, 1});
  blocks.Add(Block{0, 1, 2});
  blocks.Add(Block{0, 1, 2, 3, 4, 5});
  blocks.Add(Block{6, 7});
  return blocks;
}

std::unique_ptr<PairScheduler> Make(const std::string& sched,
                                    uint64_t seed = 42) {
  std::unique_ptr<PairScheduler> scheduler;
  Status status = MakeScheduler(sched, seed, &scheduler);
  EXPECT_TRUE(status.ok()) << status.message();
  return scheduler;
}

std::set<std::pair<uint32_t, uint32_t>> AsSet(
    const std::vector<CandidatePair>& pairs) {
  std::set<std::pair<uint32_t, uint32_t>> set;
  for (const CandidatePair& p : pairs) set.insert({p.a, p.b});
  return set;
}

TEST(SchedulerTest, EverySchedulerEmitsExactlyTheDistinctPairs) {
  BlockCollection blocks = OverlappingBlocks();
  PairSet distinct = blocks.DistinctPairs();
  std::set<std::pair<uint32_t, uint32_t>> expected;
  distinct.ForEach([&](uint32_t a, uint32_t b) { expected.insert({a, b}); });

  for (const std::string& name : SchedulerNames()) {
    std::vector<CandidatePair> ordered =
        Make(name)->Schedule(/*num_records=*/8, blocks);
    EXPECT_EQ(ordered.size(), distinct.size()) << name;
    EXPECT_EQ(AsSet(ordered), expected) << name;
    for (const CandidatePair& p : ordered) {
      EXPECT_LT(p.a, p.b) << name;  // normalized a < b
    }
  }
}

TEST(SchedulerTest, SchedulesAreDeterministic) {
  BlockCollection blocks = OverlappingBlocks();
  for (const std::string& name : SchedulerNames()) {
    std::vector<CandidatePair> first =
        Make(name)->Schedule(8, blocks);
    std::vector<CandidatePair> second =
        Make(name)->Schedule(8, blocks);
    ASSERT_EQ(first.size(), second.size()) << name;
    for (size_t i = 0; i < first.size(); ++i) {
      EXPECT_EQ(first[i], second[i]) << name << " position " << i;
      EXPECT_DOUBLE_EQ(first[i].score, second[i].score) << name;
    }
  }
}

TEST(SchedulerTest, BlockSizeAscendingPutsSmallBlockPairsFirst) {
  BlockCollection blocks = OverlappingBlocks();
  std::vector<CandidatePair> ordered = Make("bsa")->Schedule(8, blocks);
  // The two 2-blocks' pairs come before any pair first seen in a larger
  // block; (0,1) is first seen in the {0,1} block.
  ASSERT_GE(ordered.size(), 2u);
  EXPECT_EQ(AsSet({ordered[0], ordered[1]}),
            (std::set<std::pair<uint32_t, uint32_t>>{{0, 1}, {6, 7}}));
}

TEST(SchedulerTest, EdgeWeightRanksTheHeavyPairFirst) {
  BlockCollection blocks = OverlappingBlocks();
  for (const char* name : {"ew-arcs", "ew-cbs", "ew-ecbs", "ew-js",
                           "ew-ejs"}) {
    std::vector<CandidatePair> ordered = Make(name)->Schedule(8, blocks);
    ASSERT_FALSE(ordered.empty()) << name;
    for (size_t i = 1; i < ordered.size(); ++i) {
      EXPECT_GE(ordered[i - 1].score, ordered[i].score)
          << name << " position " << i;
    }
  }
  // (0,1) co-occurs in three blocks — the heaviest edge under the raw
  // co-occurrence weightings. (ECBS/EJS normalize by how many blocks
  // each record appears in, which demotes ubiquitous records like 0/1.)
  for (const char* name : {"ew-arcs", "ew-cbs", "ew-js"}) {
    std::vector<CandidatePair> ordered = Make(name)->Schedule(8, blocks);
    ASSERT_FALSE(ordered.empty()) << name;
    EXPECT_EQ(ordered.front().a, 0u) << name;
    EXPECT_EQ(ordered.front().b, 1u) << name;
  }
}

TEST(SchedulerTest, RandomIsSeededAndSeedSensitive) {
  BlockCollection blocks = OverlappingBlocks();
  std::vector<CandidatePair> a = Make("random", 1)->Schedule(8, blocks);
  std::vector<CandidatePair> b = Make("random", 1)->Schedule(8, blocks);
  std::vector<CandidatePair> c = Make("random", 2)->Schedule(8, blocks);
  EXPECT_EQ(a, b);
  EXPECT_EQ(AsSet(a), AsSet(c));
  EXPECT_NE(a, c);  // different seed, different order (16 pairs: safe bet)
}

TEST(SchedulerTest, UnknownNameListsTheKnownSchedulers) {
  std::unique_ptr<PairScheduler> scheduler;
  Status status = MakeScheduler("nope", 42, &scheduler);
  ASSERT_FALSE(status.ok());
  EXPECT_NE(status.message().find("nope"), std::string::npos);
  EXPECT_NE(status.message().find("ew-cbs"), std::string::npos);
}

// ---------------------------------------------------------------- stage

data::Dataset SmallDataset(size_t n = 8) {
  data::Dataset d{data::Schema({"name"})};
  for (size_t i = 0; i < n; ++i) {
    data::Record r;
    r.values = {"n" + std::to_string(i)};
    d.Add(std::move(r), static_cast<data::EntityId>(i / 2));
  }
  return d;
}

// One progressive-stage run: builds the stage from `spec`, drives the
// blocks through it and keeps the stage alive for meter inspection.
struct StageRun {
  std::unique_ptr<pipeline::PipelineStage> stage;
  ProgressiveStage* progressive = nullptr;
  BlockCollection out;

  StageRun(const std::string& spec, const BlockCollection& blocks,
           const data::Dataset& dataset) {
    Status status = pipeline::StageRegistry::Global().Create(spec, &stage);
    EXPECT_TRUE(status.ok()) << status.message();
    progressive = dynamic_cast<ProgressiveStage*>(stage.get());
    EXPECT_NE(progressive, nullptr);
    stage->Attach(dataset, out);
    for (const Block& b : blocks.blocks()) stage->Consume(b);
    stage->Flush();
  }
};

TEST(ProgressiveStageTest, UnlimitedBudgetEmitsEveryDistinctPairOnce) {
  data::Dataset d = SmallDataset();
  BlockCollection blocks = OverlappingBlocks();
  StageRun run("progressive:sched=ew-cbs", blocks, d);
  PairSet distinct = blocks.DistinctPairs();
  EXPECT_EQ(run.out.NumBlocks(), distinct.size());
  for (const Block& b : run.out.blocks()) {
    ASSERT_EQ(b.size(), 2u);
    EXPECT_TRUE(distinct.Contains(b[0], b[1]));
  }
  EXPECT_EQ(run.out.DistinctPairs().size(), distinct.size());
}

TEST(ProgressiveStageTest, PairsBudgetEmitsExactlyThatPrefix) {
  data::Dataset d = SmallDataset();
  BlockCollection blocks = OverlappingBlocks();
  StageRun run("progressive:sched=ew-cbs,pairs=5", blocks, d);
  EXPECT_EQ(run.out.NumBlocks(), 5u);
  EXPECT_EQ(run.progressive->pairs_emitted(), 5u);
  ASSERT_NE(run.progressive->meter(), nullptr);
  EXPECT_TRUE(run.progressive->meter()->Exhausted());
  EXPECT_STREQ(run.progressive->meter()->ExhaustedReason(), "pairs");
  // Best-first: the budgeted prefix is the head of the unlimited order.
  StageRun full("progressive:sched=ew-cbs", blocks, d);
  for (size_t i = 0; i < run.out.NumBlocks(); ++i) {
    EXPECT_EQ(run.out.blocks()[i], full.out.blocks()[i]) << i;
  }
}

TEST(ProgressiveStageTest, RecallTargetStopsOnceEnoughMatchesEmitted) {
  data::Dataset d = SmallDataset();  // entities in pairs: 4 true matches
  BlockCollection blocks;
  blocks.Add(Block{0, 1});  // match
  blocks.Add(Block{2, 3});  // match
  blocks.Add(Block{4, 5});  // match
  blocks.Add(Block{0, 2});
  blocks.Add(Block{6, 7});  // match
  StageRun run("progressive:sched=bsa,recall-target=0.5", blocks, d);
  ASSERT_NE(run.progressive->meter(), nullptr);
  EXPECT_TRUE(run.progressive->meter()->Exhausted());
  EXPECT_STREQ(run.progressive->meter()->ExhaustedReason(), "recall");
  // 2 of 4 true matches = the 0.5 target.
  EXPECT_EQ(run.progressive->meter()->Matches(), 2u);
  EXPECT_LT(run.out.NumBlocks(), blocks.DistinctPairs().size());
}

TEST(ProgressiveStageTest, EmittedOrderIgnoresInputArrivalOrder) {
  data::Dataset d = SmallDataset();
  BlockCollection forward = OverlappingBlocks();
  BlockCollection reversed;
  for (auto it = forward.blocks().rbegin(); it != forward.blocks().rend();
       ++it) {
    reversed.Add(*it);
  }
  StageRun run_a("progressive:sched=ew-cbs", forward, d);
  StageRun run_b("progressive:sched=ew-cbs", reversed, d);
  EXPECT_EQ(run_a.out.blocks(), run_b.out.blocks());
}

TEST(ProgressiveStageTest, PipelineSpecBuildsAndRuns) {
  data::Dataset d = SmallDataset();
  std::unique_ptr<pipeline::PipelinedBlocker> built;
  Status status = pipeline::Build(
      "tblo:attrs=name | progressive:sched=bsa,pairs=3", &built);
  ASSERT_TRUE(status.ok()) << status.message();
  EXPECT_NE(built->name().find("progressive(sched=bsa,pairs=3)"),
            std::string::npos);
  BlockCollection out;
  built->Run(d, out);
  EXPECT_LE(out.NumBlocks(), 3u);
  for (const Block& b : out.blocks()) EXPECT_EQ(b.size(), 2u);
}

TEST(ProgressiveStageTest, SpecParameterDiagnostics) {
  auto create_error = [](const std::string& spec) {
    std::unique_ptr<pipeline::PipelineStage> stage;
    Status status = pipeline::StageRegistry::Global().Create(spec, &stage);
    EXPECT_FALSE(status.ok()) << spec;
    return status.ok() ? "" : status.message();
  };
  EXPECT_NE(create_error("progressive:sched=nope").find("nope"),
            std::string::npos);
  EXPECT_NE(create_error("progressive:pairs=0").find("pairs"),
            std::string::npos);
  EXPECT_NE(create_error("progressive:seconds=-1").find("seconds"),
            std::string::npos);
  EXPECT_NE(create_error("progressive:recall-target=2").find("recall"),
            std::string::npos);
  EXPECT_NE(create_error("progressive:bogus=1").find("bogus"),
            std::string::npos);
}

}  // namespace
}  // namespace sablock::progressive
