// Tests for the minhash family and shingler (Section 5.1 steps 1-2).

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <string>
#include <vector>

#include "core/minhash.h"
#include "text/qgram.h"

namespace sablock::core {
namespace {

TEST(MinHasherTest, SignatureLengthAndDeterminism) {
  MinHasher h(16, 7);
  std::vector<uint64_t> shingles = {1, 2, 3, 4, 5};
  std::vector<uint64_t> s1 = h.Signature(shingles);
  std::vector<uint64_t> s2 = h.Signature(shingles);
  EXPECT_EQ(s1.size(), 16u);
  EXPECT_EQ(s1, s2);
}

TEST(MinHasherTest, EmptyShingleSetIsSentinel) {
  MinHasher h(8, 7);
  std::vector<uint64_t> sig = h.Signature({});
  for (uint64_t v : sig) EXPECT_EQ(v, MinHasher::kEmptySlot);
}

// Regression companion to UniversalHashTest.FullyReduced...: a non-empty
// shingle set must never leave sentinel slots in its signature, otherwise
// unrelated records collide on the sentinel rows.
TEST(MinHasherTest, NonEmptySetsNeverProduceSentinelSlots) {
  MinHasher h(135, 7);
  std::vector<uint64_t> sig =
      h.Signature(text::QGramHashes("marilyn flores", 2));
  for (uint64_t v : sig) EXPECT_LT(v, MinHasher::kEmptySlot);
}

TEST(MinHasherTest, IdenticalSetsIdenticalSignatures) {
  MinHasher h(32, 9);
  std::vector<uint64_t> a = {10, 20, 30};
  std::vector<uint64_t> b = {10, 20, 30};
  EXPECT_EQ(h.Signature(a), h.Signature(b));
  EXPECT_DOUBLE_EQ(MinHasher::EstimateJaccard(h.Signature(a), h.Signature(b)),
                   1.0);
}

TEST(MinHasherTest, DisjointSetsRarelyAgree) {
  MinHasher h(128, 11);
  std::vector<uint64_t> a;
  std::vector<uint64_t> b;
  for (uint64_t i = 0; i < 50; ++i) {
    a.push_back(i);
    b.push_back(1000 + i);
  }
  double est = MinHasher::EstimateJaccard(h.Signature(a), h.Signature(b));
  EXPECT_LT(est, 0.1);
}

TEST(MinHasherTest, EstimatesJaccardWithinTolerance) {
  // Sets with known overlap: |A∩B| = 50, |A∪B| = 150 -> J = 1/3.
  MinHasher h(512, 13);
  std::vector<uint64_t> a;
  std::vector<uint64_t> b;
  for (uint64_t i = 0; i < 100; ++i) a.push_back(i);
  for (uint64_t i = 50; i < 150; ++i) b.push_back(i);
  double est = MinHasher::EstimateJaccard(h.Signature(a), h.Signature(b));
  EXPECT_NEAR(est, 1.0 / 3.0, 0.08);
}

TEST(MinHasherTest, SignatureIntoMatchesAllocatingSignature) {
  MinHasher h(37, 5);  // odd count exercises the SIMD kernels' tail loop
  std::vector<uint64_t> shingles = text::QGramHashes("signature into", 3);
  std::vector<uint64_t> buf(37, 0xdeadbeef);
  h.SignatureInto(shingles, buf);
  EXPECT_EQ(buf, h.Signature(shingles));
}

TEST(MinHasherTest, DifferentSeedsGiveDifferentFamilies) {
  MinHasher h1(8, 1);
  MinHasher h2(8, 2);
  std::vector<uint64_t> shingles = {5, 6, 7};
  EXPECT_NE(h1.Signature(shingles), h2.Signature(shingles));
}

TEST(ShinglerTest, UsesSelectedAttributesOnly) {
  data::Dataset d{data::Schema({"a", "b"})};
  d.Add({{"hello", "ignored"}});
  d.Add({{"hello", "different"}});
  Shingler s({"a"}, 3);
  EXPECT_EQ(s.Shingles(d, 0), s.Shingles(d, 1));
  Shingler s2({"a", "b"}, 3);
  EXPECT_NE(s2.Shingles(d, 0), s2.Shingles(d, 1));
}

TEST(ShinglerTest, NormalizesBeforeShingling) {
  data::Dataset d{data::Schema({"a"})};
  d.Add({{"Cascade-Correlation"}});
  d.Add({{"cascade correlation"}});
  Shingler s({"a"}, 3);
  EXPECT_EQ(s.Shingles(d, 0), s.Shingles(d, 1));
}

TEST(ShinglerTest, EmptyRecordHasNoShingles) {
  data::Dataset d{data::Schema({"a"})};
  d.Add({{""}});
  Shingler s({"a"}, 3);
  EXPECT_TRUE(s.Shingles(d, 0).empty());
}

TEST(ShinglerTest, ShingleAllMatchesIndividual) {
  data::Dataset d{data::Schema({"a"})};
  d.Add({{"one record"}});
  d.Add({{"two records"}});
  Shingler s({"a"}, 2);
  auto all = s.ShingleAll(d);
  ASSERT_EQ(all.size(), 2u);
  EXPECT_EQ(all[0], s.Shingles(d, 0));
  EXPECT_EQ(all[1], s.Shingles(d, 1));
}

TEST(MinHasherTest, AgreementTracksJaccardAcrossSimilarities) {
  // Sweep overlap levels and confirm the estimate is monotone-ish.
  MinHasher h(256, 17);
  std::vector<uint64_t> base;
  for (uint64_t i = 0; i < 100; ++i) base.push_back(i);
  double prev_est = 1.1;
  for (int shift : {0, 20, 40, 60, 80}) {
    std::vector<uint64_t> other;
    for (uint64_t i = 0; i < 100; ++i) {
      other.push_back(i + static_cast<uint64_t>(shift) * 10000);
    }
    // shift=0 -> identical; larger shift -> fully disjoint. Use partial
    // overlap: first `100 - shift` elements shared.
    other.resize(100);
    for (int i = 0; i < 100 - shift; ++i) other[i] = base[i];
    std::sort(other.begin(), other.end());
    other.erase(std::unique(other.begin(), other.end()), other.end());
    double est = MinHasher::EstimateJaccard(h.Signature(base),
                                            h.Signature(other));
    EXPECT_LE(est, prev_est + 0.12);
    prev_est = est;
  }
}

}  // namespace
}  // namespace sablock::core
