// Failure-injection and precondition tests: every public entry point that
// documents a CHECK-able contract aborts cleanly rather than corrupting
// state, and degenerate inputs flow through the pipeline without crashes.

#include <gtest/gtest.h>

#include "run_streaming.h"

#include <memory>

#include "baselines/canopy.h"
#include "baselines/suffix_array.h"
#include "core/domains.h"
#include "core/lsh_blocker.h"
#include "core/lsh_variants.h"
#include "core/minhash.h"
#include "core/semantic.h"
#include "core/tuning.h"
#include "data/record.h"
#include "eval/metrics.h"

namespace sablock {
namespace {

using data::Dataset;
using data::Record;
using data::Schema;

TEST(PreconditionDeathTest, DatasetRejectsWrongArity) {
  Dataset d{Schema({"a", "b"})};
  Record r;
  r.values = {"only one"};
  EXPECT_DEATH(d.Add(std::move(r)), "arity");
}

TEST(PreconditionDeathTest, SchemaRequireMissingAttribute) {
  Schema s({"a"});
  EXPECT_DEATH(s.RequireIndex("zzz"), "missing");
}

TEST(PreconditionDeathTest, MinHasherRejectsNonPositiveCount) {
  EXPECT_DEATH(core::MinHasher(0, 1), "CHECK");
}

TEST(PreconditionDeathTest, LshBlockerRejectsDegenerateParams) {
  Dataset d{Schema({"a"})};
  d.Add({{"x"}});
  core::LshParams p;
  p.k = 0;
  p.l = 4;
  p.attributes = {"a"};
  EXPECT_DEATH(RunStreaming(core::LshBlocker(p), d), "CHECK");
}

TEST(PreconditionDeathTest, SemanticBlockerRejectsNullSemantics) {
  core::LshParams p;
  p.attributes = {"a"};
  EXPECT_DEATH(
      core::SemanticAwareLshBlocker(p, core::SemanticParams{}, nullptr),
      "CHECK");
}

TEST(PreconditionDeathTest, TuneKLRequiresOrderedThresholds) {
  EXPECT_DEATH(core::TuneKL(0.2, 0.5, 0.3, 0.1), "CHECK");
}

TEST(PreconditionDeathTest, SuffixArrayRejectsTinyBlockCap) {
  EXPECT_DEATH(baselines::SuffixArrayBlocking(
                   baselines::ExactKey({"a"}), 3, /*max_block_size=*/1),
               "CHECK");
}

TEST(PreconditionDeathTest, CanopyRejectsInvertedThresholds) {
  EXPECT_DEATH(baselines::CanopyThreshold(baselines::ExactKey({"a"}),
                                          baselines::CanopySimilarity::
                                              kJaccard,
                                          /*loose=*/0.9, /*tight=*/0.5),
               "CHECK");
}

// --- degenerate-but-legal inputs ---------------------------------------

TEST(DegenerateInputTest, AllMissingRecordsAreHandledEndToEnd) {
  Dataset d{Schema({"title", "authors", "journal", "booktitle",
                    "institution", "publisher", "year"})};
  for (int i = 0; i < 4; ++i) {
    Record r;
    r.values.assign(7, "");
    d.Add(std::move(r), 0);
  }
  core::Domain domain = core::MakeBibliographicDomain();
  core::LshParams p;
  p.k = 2;
  p.l = 4;
  p.attributes = {"authors", "title"};
  core::SemanticParams sp;
  sp.w = 5;
  core::SemanticAwareLshBlocker blocker(p, sp, domain.semantics);
  core::BlockCollection blocks = RunStreaming(blocker, d);
  // No shingles -> no textual buckets -> no blocks; metrics stay sane.
  EXPECT_EQ(blocks.NumBlocks(), 0u);
  eval::Metrics m = eval::Evaluate(d, blocks);
  EXPECT_DOUBLE_EQ(m.pc, 0.0);
  EXPECT_DOUBLE_EQ(m.rr, 1.0);
}

TEST(DegenerateInputTest, SingleRecordDataset) {
  Dataset d{Schema({"a"})};
  d.Add({{"solo"}}, 0);
  core::LshParams p;
  p.k = 1;
  p.l = 1;
  p.attributes = {"a"};
  EXPECT_EQ(RunStreaming(core::LshBlocker(p), d).NumBlocks(), 0u);
  EXPECT_EQ(RunStreaming(core::MultiProbeLshBlocker(p, 1), d).NumBlocks(), 0u);
  EXPECT_EQ(RunStreaming(core::LshForestBlocker(p, 4, 2), d).NumBlocks(), 0u);
}

TEST(DegenerateInputTest, SemanticsWithoutMatchingAttributes) {
  // A dataset whose schema lacks the domain's semantic attributes: every
  // record falls through to the catch-all pattern; blocking still works.
  Dataset d{Schema({"text"})};
  d.Add({{"some text one"}}, 0);
  d.Add({{"some text one"}}, 0);
  core::Domain domain = core::MakeBibliographicDomain();
  auto zeta = domain.semantics->Interpret(d, 0);
  ASSERT_EQ(zeta.size(), 1u);
  EXPECT_EQ(domain.taxonomy().name(zeta[0]), "C1");  // pattern 8

  core::LshParams p;
  p.k = 1;
  p.l = 2;
  p.attributes = {"text"};
  core::SemanticParams sp;
  sp.w = 3;
  core::BlockCollection blocks =
      RunStreaming(core::SemanticAwareLshBlocker(p, sp, domain.semantics), d);
  EXPECT_TRUE(blocks.InSameBlock(0, 1));
}

TEST(DegenerateInputTest, IdenticalRecordsEverywhere) {
  Dataset d{Schema({"a", "b"})};
  for (int i = 0; i < 20; ++i) d.Add({{"same", "value"}}, 0);
  core::LshParams p;
  p.k = 3;
  p.l = 2;
  p.attributes = {"a", "b"};
  eval::Metrics m = eval::Evaluate(d, RunStreaming(core::LshBlocker(p), d));
  EXPECT_DOUBLE_EQ(m.pc, 1.0);
  EXPECT_DOUBLE_EQ(m.pq, 1.0);
}

TEST(DegenerateInputTest, ForestWithUnsplittableGroupEmitsAtMaxDepth) {
  // 10 identical records and a cap of 3: no row can split them, so the
  // forest must emit the oversized leaf at max depth rather than loop.
  Dataset d{Schema({"a"})};
  for (int i = 0; i < 10; ++i) d.Add({{"identical text"}}, 0);
  core::LshParams p;
  p.k = 2;
  p.l = 1;
  p.attributes = {"a"};
  core::LshForestBlocker forest(p, /*max_depth=*/4, /*max_block_size=*/3);
  core::BlockCollection blocks = RunStreaming(forest, d);
  ASSERT_EQ(blocks.NumBlocks(), 1u);
  EXPECT_EQ(blocks.blocks()[0].size(), 10u);
}

}  // namespace
}  // namespace sablock
