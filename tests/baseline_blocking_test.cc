// Tests for blocking keys, TBlo, SorA/SorII, ASor and QGr baselines.

#include <gtest/gtest.h>

#include "run_streaming.h"

#include "baselines/adaptive_sorted_neighbourhood.h"
#include "baselines/blocking_key.h"
#include "baselines/qgram_indexing.h"
#include "baselines/sorted_neighbourhood.h"
#include "baselines/standard_blocking.h"

namespace sablock::baselines {
namespace {

using core::BlockCollection;
using data::Dataset;
using data::Schema;

Dataset NameDataset() {
  Dataset d{Schema({"first", "last"})};
  d.Add({{"qing", "wang"}}, 0);
  d.Add({{"qing", "wang"}}, 0);
  d.Add({{"wang", "qing"}}, 0);   // swapped order, same person
  d.Add({{"peter", "miller"}}, 1);
  d.Add({{"petra", "miller"}}, 2);
  d.Add({{"zoe", "adams"}}, 3);
  return d;
}

TEST(BlockingKeyTest, ExactKeyConcatenatesNormalizedValues) {
  Dataset d = NameDataset();
  BlockingKeyDef def = ExactKey({"first", "last"});
  EXPECT_EQ(MakeKey(d, 0, def), "qingwang");
  EXPECT_EQ(MakeKey(d, 2, def), "wangqing");
}

TEST(BlockingKeyTest, MissingValuesContributeNothing) {
  Dataset d{Schema({"a", "b"})};
  d.Add({{"", "x"}});
  BlockingKeyDef def = ExactKey({"a", "b"});
  EXPECT_EQ(MakeKey(d, 0, def), "x");
}

TEST(BlockingKeyTest, PrefixAndEncodings) {
  Dataset d{Schema({"name"})};
  d.Add({{"Christopher Smith"}});
  BlockingKeyDef prefix{{{"name", KeyComponent::Encoding::kPrefix, 5}}};
  EXPECT_EQ(MakeKey(d, 0, prefix), "chris");
  BlockingKeyDef soundex{{{"name", KeyComponent::Encoding::kSoundex, 0}}};
  EXPECT_EQ(MakeKey(d, 0, soundex), "C623");  // soundex of "christopher"
  BlockingKeyDef first_word{
      {{"name", KeyComponent::Encoding::kFirstWord, 0}}};
  EXPECT_EQ(MakeKey(d, 0, first_word), "christopher");
  BlockingKeyDef nysiis{{{"name", KeyComponent::Encoding::kNysiis, 0}}};
  EXPECT_FALSE(MakeKey(d, 0, nysiis).empty());
}

TEST(StandardBlockingTest, GroupsByExactKey) {
  Dataset d = NameDataset();
  StandardBlocking tblo(ExactKey({"first", "last"}));
  BlockCollection blocks = RunStreaming(tblo, d);
  EXPECT_TRUE(blocks.InSameBlock(0, 1));
  // The classic limitation the paper motivates: swapped names never share
  // a block under TBlo.
  EXPECT_FALSE(blocks.InSameBlock(0, 2));
  EXPECT_FALSE(blocks.InSameBlock(3, 4));
  EXPECT_EQ(tblo.name(), "TBlo");
}

TEST(StandardBlockingTest, EmptyKeysAreNotBlocked) {
  Dataset d{Schema({"a"})};
  d.Add({{""}});
  d.Add({{""}});
  StandardBlocking tblo(ExactKey({"a"}));
  EXPECT_EQ(RunStreaming(tblo, d).NumBlocks(), 0u);
}

TEST(SortedNeighbourhoodArrayTest, WindowCoversNeighbours) {
  Dataset d = NameDataset();
  SortedNeighbourhoodArray sna(ExactKey({"first", "last"}), 2);
  BlockCollection blocks = RunStreaming(sna, d);
  // "petermiller" and "petramiller" sort adjacently.
  EXPECT_TRUE(blocks.InSameBlock(3, 4));
  // Every block is exactly the window size.
  for (const auto& b : blocks.blocks()) EXPECT_EQ(b.size(), 2u);
  // n - w + 1 windows.
  EXPECT_EQ(blocks.NumBlocks(), d.size() - 2 + 1);
}

TEST(SortedNeighbourhoodArrayTest, WindowLargerThanDataset) {
  Dataset d{Schema({"a"})};
  d.Add({{"x"}});
  d.Add({{"y"}});
  SortedNeighbourhoodArray sna(ExactKey({"a"}), 10);
  BlockCollection blocks = RunStreaming(sna, d);
  EXPECT_EQ(blocks.NumBlocks(), 1u);
  EXPECT_TRUE(blocks.InSameBlock(0, 1));
}

TEST(SortedNeighbourhoodInvertedIndexTest, EqualKeysAlwaysCoBlocked) {
  Dataset d = NameDataset();
  // Window 1 over unique keys: only records sharing a key are co-blocked.
  SortedNeighbourhoodInvertedIndex sni(ExactKey({"first", "last"}), 1);
  BlockCollection blocks = RunStreaming(sni, d);
  EXPECT_TRUE(blocks.InSameBlock(0, 1));
  EXPECT_FALSE(blocks.InSameBlock(3, 4));
  // Window 2 joins adjacent unique keys.
  SortedNeighbourhoodInvertedIndex sni2(ExactKey({"first", "last"}), 2);
  EXPECT_TRUE(RunStreaming(sni2, d).InSameBlock(3, 4));
}

TEST(MultiPassSortedNeighbourhoodTest, SecondKeyRecoversLeadingFieldError) {
  // The classic multi-pass win: an error in the *leading* sort field
  // ("catherine" vs "katherine") throws the records far apart in pass 1
  // (first+last) but pass 2 (last+first) sorts them adjacently.
  Dataset d{Schema({"first", "last"})};
  d.Add({{"catherine", "zimmer"}}, 0);
  d.Add({{"katherine", "zimmer"}}, 0);
  d.Add({{"daniel", "fox"}}, 1);
  d.Add({{"emily", "gray"}}, 2);
  d.Add({{"henry", "lee"}}, 3);

  SortedNeighbourhoodArray single(ExactKey({"first", "last"}), 2);
  core::BlockCollection single_blocks = RunStreaming(single, d);
  EXPECT_FALSE(single_blocks.InSameBlock(0, 1));

  MultiPassSortedNeighbourhood multi(
      {ExactKey({"first", "last"}), ExactKey({"last", "first"})}, 2);
  core::BlockCollection blocks = RunStreaming(multi, d);
  EXPECT_TRUE(blocks.InSameBlock(0, 1));
}

TEST(MultiPassSortedNeighbourhoodTest, BlocksAreDisjointComponents) {
  Dataset d = NameDataset();
  MultiPassSortedNeighbourhood multi(
      {ExactKey({"first", "last"}), ExactKey({"last", "first"})}, 2);
  core::BlockCollection blocks = RunStreaming(multi, d);
  std::vector<int> seen(d.size(), 0);
  for (const auto& b : blocks.blocks()) {
    for (auto id : b) ++seen[id];
  }
  for (int count : seen) EXPECT_LE(count, 1);
}

TEST(MultiPassSortedNeighbourhoodTest, NameEncodesParameters) {
  MultiPassSortedNeighbourhood multi({ExactKey({"a"})}, 4);
  EXPECT_EQ(multi.name(), "SorMP(passes=1,w=4)");
}

TEST(AdaptiveSortedNeighbourhoodTest, SplitsAtDissimilarBoundary) {
  Dataset d = NameDataset();
  AdaptiveSortedNeighbourhood asor(ExactKey({"first", "last"}),
                                   "jaro_winkler", 0.8);
  BlockCollection blocks = RunStreaming(asor, d);
  // petermiller ~ petramiller (high JW) stay together...
  EXPECT_TRUE(blocks.InSameBlock(3, 4));
  // ...but unrelated names split into different runs.
  EXPECT_FALSE(blocks.InSameBlock(5, 0));
}

TEST(AdaptiveSortedNeighbourhoodTest, MaxBlockSizeCapsRuns) {
  Dataset d{Schema({"k"})};
  for (int i = 0; i < 10; ++i) d.Add({{"samekey"}});
  AdaptiveSortedNeighbourhood asor(ExactKey({"k"}), "edit", 0.9,
                                   /*max_block_size=*/4);
  BlockCollection blocks = RunStreaming(asor, d);
  for (const auto& b : blocks.blocks()) EXPECT_LE(b.size(), 4u);
}

TEST(AdaptiveSortedNeighbourhoodTest, NameEncodesParameters) {
  AdaptiveSortedNeighbourhood asor(ExactKey({"a"}), "bigram", 0.9);
  EXPECT_EQ(asor.name(), "ASor(bigram,0.90)");
}

TEST(QGramIndexingTest, ToleratesSmallTypos) {
  Dataset d{Schema({"name"})};
  d.Add({{"catherine"}}, 0);
  d.Add({{"catherine"}}, 0);
  d.Add({{"catherihe"}}, 0);  // one substituted character (two bigrams)
  d.Add({{"zzzzzzz"}}, 1);
  QGramIndexing qgr(ExactKey({"name"}), 2, 0.7);
  BlockCollection blocks = RunStreaming(qgr, d);
  EXPECT_TRUE(blocks.InSameBlock(0, 1));
  EXPECT_TRUE(blocks.InSameBlock(0, 2));
  EXPECT_FALSE(blocks.InSameBlock(0, 3));
}

TEST(QGramIndexingTest, ThresholdOneMeansExactGramList) {
  Dataset d{Schema({"name"})};
  d.Add({{"abc"}}, 0);
  d.Add({{"abc"}}, 0);
  d.Add({{"abd"}}, 1);
  QGramIndexing qgr(ExactKey({"name"}), 2, 1.0);
  BlockCollection blocks = RunStreaming(qgr, d);
  EXPECT_TRUE(blocks.InSameBlock(0, 1));
  EXPECT_FALSE(blocks.InSameBlock(0, 2));
}

TEST(QGramIndexingTest, KeyCapBoundsWork) {
  Dataset d{Schema({"name"})};
  // Long BKVs would explode combinatorially without the cap.
  d.Add({{"a very long blocking key value with many grams"}}, 0);
  d.Add({{"a very long blocking key value with many grams"}}, 0);
  QGramIndexing qgr(ExactKey({"name"}), 2, 0.8, /*max_keys_per_record=*/16);
  BlockCollection blocks = RunStreaming(qgr, d);
  EXPECT_TRUE(blocks.InSameBlock(0, 1));
}

}  // namespace
}  // namespace sablock::baselines
