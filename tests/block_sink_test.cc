// Tests for the streaming BlockSink API: collecting/counting equivalence
// and early termination through CappedSink's comparison budget.

#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "api/registry.h"
#include "core/block_sink.h"
#include "core/blocking.h"
#include "data/record.h"

namespace sablock::core {
namespace {

using data::Dataset;
using data::Record;
using data::Schema;

// A dataset whose sorted-neighbourhood run emits many windows, so a small
// comparison budget stops well before the end.
Dataset ManyNamesDataset(size_t n = 64) {
  Dataset d{Schema({"name"})};
  for (size_t i = 0; i < n; ++i) {
    Record r;
    r.values = {"name" + std::to_string(100 + i)};
    d.Add(std::move(r), static_cast<data::EntityId>(i));
  }
  return d;
}

std::unique_ptr<BlockingTechnique> Make(const std::string& spec) {
  std::unique_ptr<BlockingTechnique> technique;
  Status status = api::BlockerRegistry::Global().Create(spec, &technique);
  EXPECT_TRUE(status.ok()) << status.message();
  return technique;
}

// Sink that records the order of arrival, for equivalence checks.
class RecordingSink : public BlockSink {
 public:
  void Consume(Block block) override { blocks_.push_back(std::move(block)); }
  const std::vector<Block>& blocks() const { return blocks_; }

 private:
  std::vector<Block> blocks_;
};

TEST(BlockSinkTest, CollectingWrapperMatchesStreamingRun) {
  Dataset d = ManyNamesDataset();
  std::unique_ptr<BlockingTechnique> technique = Make("sor-a:attrs=name");

  // The deprecated wrapper stays covered until its removal; every other
  // call site collects through a sink.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"
  BlockCollection wrapped = technique->Run(d);
#pragma GCC diagnostic pop
  RecordingSink streamed;
  technique->Run(d, streamed);
  ASSERT_EQ(wrapped.NumBlocks(), streamed.blocks().size());
  EXPECT_EQ(wrapped.blocks(), streamed.blocks());
}

TEST(BlockSinkTest, PairCountingSinkMatchesCollection) {
  Dataset d = ManyNamesDataset();
  std::unique_ptr<BlockingTechnique> technique =
      Make("lsh:k=2,l=8,q=2,attrs=name");

  BlockCollection collected;
  technique->Run(d, collected);
  PairCountingSink counted;
  technique->Run(d, counted);
  EXPECT_EQ(counted.num_blocks(), collected.NumBlocks());
  EXPECT_EQ(counted.comparisons(), collected.TotalComparisons());
  EXPECT_EQ(counted.total_block_sizes(), collected.TotalBlockSizes());
  EXPECT_EQ(counted.max_block_size(), collected.MaxBlockSize());
}

TEST(CappedSinkTest, StopsTheTechniqueAtTheComparisonBudget) {
  Dataset d = ManyNamesDataset();
  std::unique_ptr<BlockingTechnique> technique =
      Make("sor-a:window=3,attrs=name");

  BlockCollection full;
  technique->Run(d, full);
  ASSERT_GT(full.TotalComparisons(), 50u);

  BlockCollection capped_out;
  CappedSink capped(capped_out, /*comparison_budget=*/20);
  technique->Run(d, capped);

  EXPECT_TRUE(capped.Done());
  // The budget is enforced up to the block that crosses it (window=3 blocks
  // carry 3 comparisons each).
  EXPECT_GE(capped.comparisons(), 20u);
  EXPECT_LT(capped.comparisons(), 20u + 3);
  EXPECT_EQ(capped_out.TotalComparisons(), capped.comparisons());
  // Early termination, not post-hoc filtering: the technique saw Done()
  // and emitted nothing more.
  EXPECT_EQ(capped.dropped_blocks(), 0u);
  EXPECT_LT(capped_out.NumBlocks(), full.NumBlocks());
}

TEST(CappedSinkTest, EveryRegisteredTechniqueHonoursTheBudget) {
  Dataset d = ManyNamesDataset(48);
  for (const api::BlockerInfo& info :
       api::BlockerRegistry::Global().List()) {
    std::string spec = info.name + ":attrs=name";
    std::unique_ptr<BlockingTechnique> technique = Make(spec);
    BlockCollection out;
    CappedSink capped(out, /*comparison_budget=*/10);
    technique->Run(d, capped);
    // Whatever the technique, the collected output never exceeds the
    // budget by more than its final block.
    EXPECT_EQ(out.TotalComparisons(), capped.comparisons()) << spec;
    if (out.NumBlocks() > 1) {
      uint64_t last = out.blocks().back().size();
      EXPECT_LT(capped.comparisons(), 10u + last * (last - 1) / 2 + 1)
          << spec;
    }
  }
}

TEST(CappedSinkTest, GenerousBudgetChangesNothing) {
  Dataset d = ManyNamesDataset();
  std::unique_ptr<BlockingTechnique> technique =
      Make("sor-a:window=3,attrs=name");

  BlockCollection full;
  technique->Run(d, full);
  BlockCollection capped_out;
  CappedSink capped(capped_out, /*comparison_budget=*/1u << 30);
  technique->Run(d, capped);
  EXPECT_FALSE(capped.Done());
  EXPECT_EQ(capped_out.NumBlocks(), full.NumBlocks());
  EXPECT_EQ(capped_out.TotalComparisons(), full.TotalComparisons());
}

TEST(BlockCollectionTest, DrainMovesBlocksAndRespectsDone) {
  BlockCollection source;
  for (uint32_t i = 0; i < 10; ++i) source.Add({i, i + 1});

  BlockCollection sink_out;
  CappedSink capped(sink_out, /*comparison_budget=*/3);
  source.Drain(capped);
  EXPECT_EQ(source.NumBlocks(), 0u);  // drained
  EXPECT_EQ(sink_out.NumBlocks(), 3u);
  EXPECT_EQ(capped.dropped_blocks(), 0u);
}

}  // namespace
}  // namespace sablock::core
