// Tests for the CSV reader/writer, including failure injection.

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>

#include "data/csv.h"

namespace sablock::data {
namespace {

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

void WriteFile(const std::string& path, const std::string& content) {
  std::ofstream out(path);
  out << content;
}

TEST(ParseCsvLineTest, PlainFields) {
  std::vector<std::string> f = ParseCsvLine("a,b,c");
  ASSERT_EQ(f.size(), 3u);
  EXPECT_EQ(f[0], "a");
  EXPECT_EQ(f[2], "c");
}

TEST(ParseCsvLineTest, QuotedFieldsWithCommasAndQuotes) {
  std::vector<std::string> f =
      ParseCsvLine(R"("hello, world","say ""hi""",plain)");
  ASSERT_EQ(f.size(), 3u);
  EXPECT_EQ(f[0], "hello, world");
  EXPECT_EQ(f[1], "say \"hi\"");
  EXPECT_EQ(f[2], "plain");
}

TEST(ParseCsvLineTest, EmptyFields) {
  std::vector<std::string> f = ParseCsvLine(",,");
  ASSERT_EQ(f.size(), 3u);
  for (const auto& s : f) EXPECT_TRUE(s.empty());
}

TEST(EscapeCsvFieldTest, QuotesOnlyWhenNeeded) {
  EXPECT_EQ(EscapeCsvField("plain"), "plain");
  EXPECT_EQ(EscapeCsvField("a,b"), "\"a,b\"");
  EXPECT_EQ(EscapeCsvField("q\"q"), "\"q\"\"q\"");
}

TEST(CsvRoundTripTest, WritesAndReadsBack) {
  Dataset d{Schema({"name", "note"})};
  d.Add({{"alice", "likes, commas"}}, 0);
  d.Add({{"bob", "quote \" inside"}}, 0);
  d.Add({{"carol", ""}}, 1);

  std::string path = TempPath("roundtrip.csv");
  ASSERT_TRUE(WriteCsv(path, d, "entity_id").ok());

  Dataset back;
  Status s = ReadCsv(path, "entity_id", &back);
  ASSERT_TRUE(s.ok()) << s.message();
  ASSERT_EQ(back.size(), 3u);
  EXPECT_EQ(back.Value(0, "name"), "alice");
  EXPECT_EQ(back.Value(0, "note"), "likes, commas");
  EXPECT_EQ(back.Value(1, "note"), "quote \" inside");
  EXPECT_TRUE(back.IsMatch(0, 1));
  EXPECT_FALSE(back.IsMatch(0, 2));
}

TEST(CsvReadTest, WithoutEntityColumn) {
  std::string path = TempPath("plain.csv");
  WriteFile(path, "a,b\n1,2\n3,4\n");
  Dataset d;
  ASSERT_TRUE(ReadCsv(path, "", &d).ok());
  EXPECT_EQ(d.size(), 2u);
  EXPECT_EQ(d.entity(0), kUnknownEntity);
}

TEST(CsvReadTest, SkipsBlankLinesAndCrLf) {
  std::string path = TempPath("crlf.csv");
  WriteFile(path, "a,b\r\n1,2\r\n\r\n3,4\r\n");
  Dataset d;
  ASSERT_TRUE(ReadCsv(path, "", &d).ok());
  EXPECT_EQ(d.size(), 2u);
  EXPECT_EQ(d.Value(1, "b"), "4");
}

TEST(CsvReadTest, MissingFileFails) {
  Dataset d;
  Status s = ReadCsv("/nonexistent/dir/file.csv", "", &d);
  EXPECT_FALSE(s.ok());
  EXPECT_NE(s.message().find("cannot open"), std::string::npos);
}

TEST(CsvReadTest, EmptyFileFails) {
  std::string path = TempPath("empty.csv");
  WriteFile(path, "");
  Dataset d;
  EXPECT_FALSE(ReadCsv(path, "", &d).ok());
}

TEST(CsvReadTest, RaggedRowFails) {
  std::string path = TempPath("ragged.csv");
  WriteFile(path, "a,b\n1,2,3\n");
  Dataset d;
  Status s = ReadCsv(path, "", &d);
  EXPECT_FALSE(s.ok());
  EXPECT_NE(s.message().find("row 2"), std::string::npos);
}

TEST(CsvReadTest, MissingEntityColumnFails) {
  std::string path = TempPath("noentity.csv");
  WriteFile(path, "a,b\n1,2\n");
  Dataset d;
  EXPECT_FALSE(ReadCsv(path, "entity_id", &d).ok());
}

TEST(CsvReadTest, EntityLabelsGroupRecords) {
  std::string path = TempPath("labels.csv");
  WriteFile(path, "id,name\ne1,foo\ne2,bar\ne1,foo2\n");
  Dataset d;
  ASSERT_TRUE(ReadCsv(path, "id", &d).ok());
  ASSERT_EQ(d.size(), 3u);
  EXPECT_TRUE(d.IsMatch(0, 2));
  EXPECT_FALSE(d.IsMatch(0, 1));
  // The entity column is consumed, not part of the schema.
  EXPECT_EQ(d.schema().IndexOf("id"), -1);
}

}  // namespace
}  // namespace sablock::data
