// Tests for token blocking and the meta-blocking graph (weighting schemes
// and pruning algorithms of the Fig. 12 comparison).

#include <gtest/gtest.h>

#include "run_streaming.h"

#include "baselines/meta_blocking.h"
#include "eval/metrics.h"

namespace sablock::baselines {
namespace {

using core::BlockCollection;
using data::Dataset;
using data::Schema;

Dataset TokenDataset() {
  Dataset d{Schema({"name"})};
  d.Add({{"alpha beta gamma"}}, 0);
  d.Add({{"alpha beta delta"}}, 0);
  d.Add({{"alpha zzz"}}, 1);
  d.Add({{"omega psi"}}, 2);
  d.Add({{"omega psi chi"}}, 2);
  return d;
}

TEST(TokenBlockingTest, OneBlockPerSharedToken) {
  Dataset d = TokenDataset();
  BlockCollection blocks = TokenBlocking(d, {"name"}, 100);
  // Shared tokens: alpha{0,1,2}, beta{0,1}, omega{3,4}, psi{3,4}.
  EXPECT_EQ(blocks.NumBlocks(), 4u);
  EXPECT_TRUE(blocks.InSameBlock(0, 1));
  EXPECT_TRUE(blocks.InSameBlock(3, 4));
  EXPECT_FALSE(blocks.InSameBlock(0, 3));
}

TEST(TokenBlockingTest, PurgesOversizedBlocks) {
  Dataset d = TokenDataset();
  BlockCollection blocks = TokenBlocking(d, {"name"}, /*max_block_size=*/2);
  // "alpha" block has 3 members and is purged.
  EXPECT_EQ(blocks.NumBlocks(), 3u);
  EXPECT_FALSE(blocks.InSameBlock(0, 2));
}

TEST(MetaBlockingTest, OutputIsSubsetOfInputPairs) {
  Dataset d = TokenDataset();
  BlockCollection input = TokenBlocking(d, {"name"}, 100);
  PairSet input_pairs = input.DistinctPairs();
  for (MetaPruning pruning : {MetaPruning::kWep, MetaPruning::kCep,
                              MetaPruning::kWnp, MetaPruning::kCnp}) {
    MetaBlocking meta({"name"}, MetaWeighting::kCbs, pruning);
    PairSet pruned = meta.Prune(d, input).DistinctPairs();
    EXPECT_LE(pruned.size(), input_pairs.size());
    pruned.ForEach([&input_pairs](uint32_t a, uint32_t b) {
      EXPECT_TRUE(input_pairs.Contains(a, b));
    });
  }
}

TEST(MetaBlockingTest, WepKeepsStrongEdges) {
  Dataset d = TokenDataset();
  // Records 0-1 share two blocks (alpha, beta); 0-2 share one (alpha);
  // 3-4 share two (omega, psi). Mean CBS weight = (2+1+1+2)/4 = 1.5:
  // WEP keeps only the weight-2 edges.
  MetaBlocking meta({"name"}, MetaWeighting::kCbs, MetaPruning::kWep);
  BlockCollection pruned = RunStreaming(meta, d);
  EXPECT_TRUE(pruned.InSameBlock(0, 1));
  EXPECT_TRUE(pruned.InSameBlock(3, 4));
  EXPECT_FALSE(pruned.InSameBlock(0, 2));
  EXPECT_FALSE(pruned.InSameBlock(1, 2));
}

TEST(MetaBlockingTest, CepRespectsBudget) {
  Dataset d = TokenDataset();
  BlockCollection input = TokenBlocking(d, {"name"}, 100);
  size_t budget = static_cast<size_t>(input.TotalBlockSizes() / 2);
  MetaBlocking meta({"name"}, MetaWeighting::kArcs, MetaPruning::kCep);
  BlockCollection pruned = meta.Prune(d, input);
  EXPECT_LE(pruned.NumBlocks(), budget);
}

TEST(MetaBlockingTest, AllWeightingSchemesProducePositiveWeights) {
  Dataset d = TokenDataset();
  for (MetaWeighting w :
       {MetaWeighting::kArcs, MetaWeighting::kCbs, MetaWeighting::kEcbs,
        MetaWeighting::kJs, MetaWeighting::kEjs}) {
    MetaBlocking meta({"name"}, w, MetaPruning::kWep);
    BlockCollection pruned = RunStreaming(meta, d);
    // WEP with any scheme keeps at least the strongest edge.
    EXPECT_GE(pruned.NumBlocks(), 1u) << MetaWeightingName(w);
  }
}

TEST(MetaBlockingTest, PrunedBlocksArePairs) {
  Dataset d = TokenDataset();
  MetaBlocking meta({"name"}, MetaWeighting::kJs, MetaPruning::kWnp);
  BlockCollection pruned = RunStreaming(meta, d);
  for (const auto& b : pruned.blocks()) {
    EXPECT_EQ(b.size(), 2u);
  }
}

TEST(MetaBlockingTest, CnpKeepsTopEdgesPerNode) {
  Dataset d = TokenDataset();
  MetaBlocking meta({"name"}, MetaWeighting::kCbs, MetaPruning::kCnp);
  BlockCollection pruned = RunStreaming(meta, d);
  // The strong within-entity edges must survive node-local top-k.
  EXPECT_TRUE(pruned.InSameBlock(0, 1));
  EXPECT_TRUE(pruned.InSameBlock(3, 4));
}

TEST(MetaBlockingTest, ImprovesPqStarOverInput) {
  Dataset d = TokenDataset();
  BlockCollection input = TokenBlocking(d, {"name"}, 100);
  eval::Metrics before = eval::Evaluate(d, input);
  MetaBlocking meta({"name"}, MetaWeighting::kCbs, MetaPruning::kWep);
  eval::Metrics after = eval::Evaluate(d, meta.Prune(d, input));
  EXPECT_GE(after.pq_star, before.pq_star);
}

TEST(MetaBlockingTest, NameEncodesSchemeAndPruning) {
  MetaBlocking meta({"a"}, MetaWeighting::kEjs, MetaPruning::kCnp);
  EXPECT_EQ(meta.name(), "Meta(CNP+EJS)");
}

TEST(MetaBlockingTest, EmptyDatasetYieldsNoBlocks) {
  Dataset d{Schema({"name"})};
  MetaBlocking meta({"name"}, MetaWeighting::kCbs, MetaPruning::kWep);
  EXPECT_EQ(RunStreaming(meta, d).NumBlocks(), 0u);
}

}  // namespace
}  // namespace sablock::baselines
