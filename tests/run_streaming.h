#ifndef SABLOCK_TESTS_RUN_STREAMING_H_
#define SABLOCK_TESTS_RUN_STREAMING_H_

#include "core/blocking.h"
#include "data/record.h"

namespace sablock {

/// Runs a technique through the primary streaming Run(dataset, sink) API
/// and materializes the emitted blocks. Test-side replacement for the
/// legacy collecting Run(dataset) wrapper (which block_sink_test still
/// covers directly as API surface).
inline core::BlockCollection RunStreaming(
    const core::BlockingTechnique& technique, const data::Dataset& dataset) {
  core::BlockCollection blocks;
  technique.Run(dataset, blocks);
  return blocks;
}

}  // namespace sablock

#endif  // SABLOCK_TESTS_RUN_STREAMING_H_
