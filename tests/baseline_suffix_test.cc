// Tests for the suffix-array blocking family SuA / SuAS / RSuA.

#include <gtest/gtest.h>

#include "run_streaming.h"

#include "baselines/suffix_array.h"

namespace sablock::baselines {
namespace {

using core::BlockCollection;
using data::Dataset;
using data::Schema;

Dataset SuffixDataset() {
  Dataset d{Schema({"name"})};
  d.Add({{"katherine"}}, 0);
  d.Add({{"catherine"}}, 0);   // differs at the front: shares suffixes
  d.Add({{"katherinX"}}, 0);   // differs at the back: suffixes broken
  d.Add({{"zzzzz"}}, 1);
  return d;
}

TEST(SuffixArrayTest, SharedSuffixesCreateBlocks) {
  Dataset d = SuffixDataset();
  SuffixArrayBlocking sua(ExactKey({"name"}), /*min_suffix_len=*/4,
                          /*max_block_size=*/10);
  BlockCollection blocks = RunStreaming(sua, d);
  // katherine & catherine share "atherine", "therine", ...
  EXPECT_TRUE(blocks.InSameBlock(0, 1));
  // A trailing error kills all shared suffixes of length >= 4.
  EXPECT_FALSE(blocks.InSameBlock(0, 2));
  EXPECT_FALSE(blocks.InSameBlock(0, 3));
}

TEST(SuffixArrayTest, MaxBlockSizeDiscardsCommonSuffixes) {
  Dataset d{Schema({"name"})};
  for (int i = 0; i < 8; ++i) d.Add({{"common_suffix"}});
  SuffixArrayBlocking sua(ExactKey({"name"}), 4, /*max_block_size=*/5);
  // Every suffix posting has 8 > 5 records: everything is purged.
  EXPECT_EQ(RunStreaming(sua, d).NumBlocks(), 0u);
}

TEST(SuffixArrayTest, ShortValuesIndexedWhole) {
  Dataset d{Schema({"name"})};
  d.Add({{"ab"}}, 0);
  d.Add({{"ab"}}, 0);
  SuffixArrayBlocking sua(ExactKey({"name"}), 5, 10);
  EXPECT_TRUE(RunStreaming(sua, d).InSameBlock(0, 1));
}

TEST(SuffixArrayAllSubstringsTest, ToleratesTrailingErrors) {
  Dataset d = SuffixDataset();
  SuffixArrayAllSubstrings suas(ExactKey({"name"}), 4, 10);
  BlockCollection blocks = RunStreaming(suas, d);
  // Substrings recover the pair that plain suffixes lose.
  EXPECT_TRUE(blocks.InSameBlock(0, 2));
  EXPECT_TRUE(blocks.InSameBlock(0, 1));
  EXPECT_FALSE(blocks.InSameBlock(0, 3));
}

TEST(SuffixArrayAllSubstringsTest, MoreCandidatesThanPlainSuffixes) {
  Dataset d = SuffixDataset();
  size_t sua_pairs = RunStreaming(SuffixArrayBlocking(ExactKey({"name"}), 4, 10), d)
                         .DistinctPairs()
                         .size();
  size_t suas_pairs = RunStreaming(SuffixArrayAllSubstrings(ExactKey({"name"}), 4, 10), d)
                          .DistinctPairs()
                          .size();
  EXPECT_GE(suas_pairs, sua_pairs);
}

TEST(RobustSuffixArrayTest, MergesSimilarAdjacentSuffixes) {
  Dataset d{Schema({"name"})};
  d.Add({{"katherine"}}, 0);
  d.Add({{"kathersne"}}, 0);  // "therine"->"thersne": similar suffixes
  RobustSuffixArrayBlocking rsua(ExactKey({"name"}), 5, 20, "edit", 0.7);
  BlockCollection blocks = RunStreaming(rsua, d);
  EXPECT_TRUE(blocks.InSameBlock(0, 1));
  // Plain SuA misses this pair at the same settings.
  SuffixArrayBlocking sua(ExactKey({"name"}), 5, 20);
  EXPECT_FALSE(RunStreaming(sua, d).InSameBlock(0, 1));
}

TEST(RobustSuffixArrayTest, ThresholdOneBehavesLikePlainSuA) {
  Dataset d = SuffixDataset();
  RobustSuffixArrayBlocking rsua(ExactKey({"name"}), 4, 10, "edit", 1.0);
  SuffixArrayBlocking sua(ExactKey({"name"}), 4, 10);
  EXPECT_EQ(RunStreaming(rsua, d).DistinctPairs().size(),
            RunStreaming(sua, d).DistinctPairs().size());
}

TEST(SuffixFamilyTest, NamesEncodeParameters) {
  EXPECT_EQ(SuffixArrayBlocking(ExactKey({"a"}), 3, 10).name(),
            "SuA(len=3,max=10)");
  EXPECT_EQ(SuffixArrayAllSubstrings(ExactKey({"a"}), 5, 20).name(),
            "SuAS(len=5,max=20)");
  EXPECT_EQ(
      RobustSuffixArrayBlocking(ExactKey({"a"}), 3, 10, "edit", 0.8).name(),
      "RSuA(len=3,max=10,edit,0.80)");
}

TEST(SuffixFamilyTest, EmptyValuesProduceNoBlocks) {
  Dataset d{Schema({"name"})};
  d.Add({{""}});
  d.Add({{""}});
  EXPECT_EQ(RunStreaming(SuffixArrayBlocking(ExactKey({"name"}), 3, 10), d).NumBlocks(),
            0u);
}

}  // namespace
}  // namespace sablock::baselines
