// Tests for the TF-IDF vectorizer backing the canopy baselines.

#include <gtest/gtest.h>

#include <cmath>

#include "text/tfidf.h"

namespace sablock::text {
namespace {

TEST(TfIdfTest, VocabularyAndDimensions) {
  TfIdfVectorizer v;
  v.Build({"a b c", "a b", "a"});
  EXPECT_EQ(v.vocabulary_size(), 3u);
}

TEST(TfIdfTest, VectorsAreL2Normalized) {
  TfIdfVectorizer v;
  v.Build({"alpha beta gamma", "alpha beta", "delta"});
  SparseVector s = v.Vectorize("alpha beta gamma");
  double norm = 0.0;
  for (const auto& [term, w] : s.entries) norm += w * w;
  EXPECT_NEAR(norm, 1.0, 1e-6);
}

TEST(TfIdfTest, IdenticalDocumentsHaveCosineOne) {
  TfIdfVectorizer v;
  v.Build({"x y z", "x q"});
  SparseVector a = v.Vectorize("x y z");
  SparseVector b = v.Vectorize("x y z");
  EXPECT_NEAR(CosineSimilarity(a, b), 1.0, 1e-6);
}

TEST(TfIdfTest, DisjointDocumentsHaveCosineZero) {
  TfIdfVectorizer v;
  v.Build({"x y", "p q"});
  EXPECT_DOUBLE_EQ(CosineSimilarity(v.Vectorize("x y"), v.Vectorize("p q")),
                   0.0);
}

TEST(TfIdfTest, RareTermsDominate) {
  // "common" appears everywhere, "rare" once: two documents sharing only
  // "rare" should be closer than two sharing only "common".
  TfIdfVectorizer v;
  v.Build({"common rare", "common other1", "common other2", "common other3"});
  double share_rare = CosineSimilarity(v.Vectorize("rare x"),
                                       v.Vectorize("rare y"));
  double share_common = CosineSimilarity(v.Vectorize("common x"),
                                         v.Vectorize("common y"));
  EXPECT_GT(share_rare, 0.0);
  EXPECT_GE(share_rare, share_common);
}

TEST(TfIdfTest, UnknownTermsAreDropped) {
  TfIdfVectorizer v;
  v.Build({"a b"});
  SparseVector s = v.Vectorize("zzz yyy");
  EXPECT_TRUE(s.entries.empty());
}

TEST(TfIdfTest, EmptyDocument) {
  TfIdfVectorizer v;
  v.Build({"a b"});
  SparseVector s = v.Vectorize("");
  EXPECT_TRUE(s.entries.empty());
  EXPECT_DOUBLE_EQ(CosineSimilarity(s, v.Vectorize("a")), 0.0);
}

}  // namespace
}  // namespace sablock::text
