// Tests for semhash signatures (Algorithm 1) and Proposition 4.3.

#include <gtest/gtest.h>

#include <vector>

#include "core/semhash.h"
#include "core/taxonomy.h"

namespace sablock::core {
namespace {

TEST(SemSignatureTest, SetGetPopCount) {
  SemSignature sig(70);  // spans two words
  EXPECT_EQ(sig.PopCount(), 0u);
  sig.Set(0);
  sig.Set(63);
  sig.Set(64);
  sig.Set(69);
  EXPECT_TRUE(sig.Get(0));
  EXPECT_TRUE(sig.Get(69));
  EXPECT_FALSE(sig.Get(1));
  EXPECT_EQ(sig.PopCount(), 4u);
}

TEST(SemSignatureTest, JaccardAndAndCount) {
  SemSignature a(8);
  SemSignature b(8);
  a.Set(0);
  a.Set(1);
  a.Set(2);
  b.Set(2);
  b.Set(3);
  EXPECT_EQ(a.AndCount(b), 1u);
  EXPECT_NEAR(a.Jaccard(b), 0.25, 1e-12);  // 1 shared / 4 in union
  SemSignature zero(8);
  EXPECT_DOUBLE_EQ(zero.Jaccard(zero), 1.0);  // empty-set convention
  EXPECT_DOUBLE_EQ(zero.Jaccard(a), 0.0);
}

TEST(SemhashEncoderTest, BuildSelectsOnlyReachableLeaves) {
  Taxonomy t = MakeBibliographicTaxonomy();
  // Records only interpret to C2 (leaves C3, C4, C5) and C9.
  std::vector<std::vector<ConceptId>> zetas = {
      {t.Require("C2")},
      {t.Require("C9")},
  };
  SemhashEncoder enc = SemhashEncoder::Build(t, zetas);
  EXPECT_EQ(enc.dimension(), 4u);  // C3, C4, C5, C9 (C7, C8 unreachable)
}

TEST(SemhashEncoderTest, FiveBitCoraSignatures) {
  // The paper's Cora setup yields 5-bit signatures: Table 1 reaches C3, C4,
  // C7, C8 directly and C1 covers C5 as well — but never C9.
  Taxonomy t = MakeBibliographicTaxonomy();
  std::vector<std::vector<ConceptId>> zetas = {
      {t.Require("C3"), t.Require("C4"), t.Require("C6")},
      {t.Require("C1")},
      {t.Require("C7"), t.Require("C8")},
  };
  SemhashEncoder enc = SemhashEncoder::Build(t, zetas);
  EXPECT_EQ(enc.dimension(), 5u);
}

TEST(SemhashEncoderTest, EncodeSetsBitsUnderConcepts) {
  Taxonomy t = MakeBibliographicTaxonomy();
  SemhashEncoder enc = SemhashEncoder::BuildFromAllLeaves(t);
  ASSERT_EQ(enc.dimension(), 6u);

  SemSignature journal = enc.Encode(t, {t.Require("C3")});
  EXPECT_EQ(journal.PopCount(), 1u);

  SemSignature peer = enc.Encode(t, {t.Require("C2")});
  EXPECT_EQ(peer.PopCount(), 3u);

  SemSignature root = enc.Encode(t, {t.Require("C0")});
  EXPECT_EQ(root.PopCount(), 6u);

  SemSignature empty = enc.Encode(t, {});
  EXPECT_EQ(empty.PopCount(), 0u);
}

TEST(SemhashEncoderTest, SignatureJaccardTracksSubsumption) {
  Taxonomy t = MakeBibliographicTaxonomy();
  SemhashEncoder enc = SemhashEncoder::BuildFromAllLeaves(t);
  SemSignature c2 = enc.Encode(t, {t.Require("C2")});
  SemSignature c3 = enc.Encode(t, {t.Require("C3")});
  SemSignature c6 = enc.Encode(t, {t.Require("C6")});
  // Jaccard(G(C2-record), G(C3-record)) = 1/3 and C2 vs C6 are disjoint.
  EXPECT_NEAR(c2.Jaccard(c3), 1.0 / 3.0, 1e-12);
  EXPECT_DOUBLE_EQ(c2.Jaccard(c6), 0.0);
}

// Proposition 4.3: the Jaccard order of semhash signatures agrees with the
// semantic-similarity order of the underlying records.
TEST(SemhashEncoderTest, Proposition43OrderPreservation) {
  Taxonomy t = MakeBibliographicTaxonomy();
  SemhashEncoder enc = SemhashEncoder::BuildFromAllLeaves(t);

  const std::vector<std::vector<ConceptId>> zetas = {
      {t.Require("C4")},
      {t.Require("C3"), t.Require("C4")},
      {t.Require("C0")},
      {t.Require("C7")},
      {t.Require("C2")},
      {t.Require("C1")},
  };
  std::vector<SemSignature> sigs;
  for (const auto& z : zetas) sigs.push_back(enc.Encode(t, z));

  for (size_t a = 0; a < zetas.size(); ++a) {
    for (size_t b = 0; b < zetas.size(); ++b) {
      for (size_t c = 0; c < zetas.size(); ++c) {
        for (size_t d = 0; d < zetas.size(); ++d) {
          double sim_ab = t.RecordSimilarity(zetas[a], zetas[b]);
          double sim_cd = t.RecordSimilarity(zetas[c], zetas[d]);
          double jac_ab = sigs[a].Jaccard(sigs[b]);
          double jac_cd = sigs[c].Jaccard(sigs[d]);
          if (sim_ab > sim_cd + 1e-12) {
            EXPECT_GE(jac_ab, jac_cd - 1e-12)
                << "a=" << a << " b=" << b << " c=" << c << " d=" << d;
          }
        }
      }
    }
  }
}

TEST(SemhashEncoderTest, EncodeAllMatchesIndividualEncodes) {
  Taxonomy t = MakeBibliographicTaxonomy();
  std::vector<std::vector<ConceptId>> zetas = {
      {t.Require("C3")}, {t.Require("C2")}, {}};
  SemhashEncoder enc = SemhashEncoder::Build(t, zetas);
  std::vector<SemSignature> all = enc.EncodeAll(t, zetas);
  ASSERT_EQ(all.size(), 3u);
  for (size_t i = 0; i < zetas.size(); ++i) {
    EXPECT_EQ(all[i].words(), enc.Encode(t, zetas[i]).words());
  }
}

TEST(SemhashEncoderTest, FeatureConceptsAreLeaves) {
  Taxonomy t = MakeBibliographicTaxonomy();
  SemhashEncoder enc = SemhashEncoder::BuildFromAllLeaves(t);
  for (uint32_t i = 0; i < enc.dimension(); ++i) {
    EXPECT_TRUE(t.IsLeaf(enc.FeatureConcept(i)));
  }
}

TEST(CompressedSemhashTest, CompressionLengthAndDeterminism) {
  CompressedSemhash c(16, 9);
  SemSignature sig(40);
  sig.Set(3);
  sig.Set(17);
  std::vector<uint64_t> a = c.Compress(sig);
  std::vector<uint64_t> b = c.Compress(sig);
  EXPECT_EQ(a.size(), 16u);
  EXPECT_EQ(a, b);
}

TEST(CompressedSemhashTest, AllZeroSignatureIsSentinel) {
  CompressedSemhash c(8, 9);
  SemSignature zero(16);
  for (uint64_t v : c.Compress(zero)) {
    EXPECT_EQ(v, sablock::UniversalHash::kPrime);
  }
}

TEST(CompressedSemhashTest, EstimatePreservesSignatureJaccard) {
  // Section 4.4's optional combination: minhash over semhash bits should
  // approximate the bit-level Jaccard (and hence the Eq. 5 similarity).
  CompressedSemhash c(512, 9);
  const uint32_t dim = 200;
  SemSignature a(dim);
  SemSignature b(dim);
  for (uint32_t i = 0; i < 100; ++i) a.Set(i);
  for (uint32_t i = 50; i < 150; ++i) b.Set(i);
  double true_jaccard = a.Jaccard(b);  // 50 / 150 = 1/3
  double est =
      CompressedSemhash::EstimateJaccard(c.Compress(a), c.Compress(b));
  EXPECT_NEAR(est, true_jaccard, 0.08);
}

TEST(CompressedSemhashTest, IdenticalSignaturesFullyAgree) {
  CompressedSemhash c(64, 9);
  SemSignature a(30);
  a.Set(1);
  a.Set(29);
  SemSignature b(30);
  b.Set(1);
  b.Set(29);
  EXPECT_DOUBLE_EQ(
      CompressedSemhash::EstimateJaccard(c.Compress(a), c.Compress(b)),
      1.0);
}

TEST(SemhashEncoderTest, EmptyInterpretationsGiveZeroDimension) {
  Taxonomy t = MakeBibliographicTaxonomy();
  std::vector<std::vector<ConceptId>> zetas = {{}, {}};
  SemhashEncoder enc = SemhashEncoder::Build(t, zetas);
  EXPECT_EQ(enc.dimension(), 0u);
}

}  // namespace
}  // namespace sablock::core
