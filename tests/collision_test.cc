// Tests for the analytic collision model (Figs. 5-6 machinery).

#include <gtest/gtest.h>

#include <cmath>
#include <tuple>

#include "core/collision.h"

namespace sablock::core {
namespace {

TEST(LshCollisionTest, ClosedFormMatchesManualComputation) {
  // 1 - (1 - 0.5^2)^3 = 1 - 0.75^3 = 0.578125.
  EXPECT_NEAR(LshCollisionProbability(0.5, 2, 3), 0.578125, 1e-12);
  EXPECT_DOUBLE_EQ(LshCollisionProbability(1.0, 4, 10), 1.0);
  EXPECT_DOUBLE_EQ(LshCollisionProbability(0.0, 4, 10), 0.0);
}

TEST(LshCollisionTest, PaperCoraOperatingPoint) {
  // k=4, l=63: s=0.3 must collide with probability >= 0.4 and s=0.2 with
  // probability <= 0.1 (Section 6.1).
  EXPECT_GE(LshCollisionProbability(0.3, 4, 63), 0.40);
  EXPECT_LE(LshCollisionProbability(0.2, 4, 63), 0.10);
}

TEST(LshCollisionTest, PaperVoterOperatingPoint) {
  // k=9, l=15 gives ~0.9 collision probability at s=0.8 (Section 6.1).
  double p = LshCollisionProbability(0.8, 9, 15);
  EXPECT_GT(p, 0.85);
  EXPECT_LT(p, 0.95);
}

TEST(WWayTest, AndAndOrFormulas) {
  EXPECT_NEAR(WWayProbability(0.4, 3, SemanticMode::kAnd), 0.064, 1e-12);
  EXPECT_NEAR(WWayProbability(0.4, 3, SemanticMode::kOr), 1.0 - 0.216,
              1e-12);
  EXPECT_DOUBLE_EQ(WWayProbability(0.5, 1, SemanticMode::kAnd),
                   WWayProbability(0.5, 1, SemanticMode::kOr));
}

TEST(WWayTest, Fig5MonotonicityInW) {
  // Fig. 5: increasing w lowers the AND probability and raises the OR
  // probability, for every s'.
  for (double s : {0.2, 0.3, 0.4, 0.6, 0.7, 0.8}) {
    for (int w = 1; w < 15; ++w) {
      EXPECT_GE(WWayProbability(s, w, SemanticMode::kAnd),
                WWayProbability(s, w + 1, SemanticMode::kAnd));
      EXPECT_LE(WWayProbability(s, w, SemanticMode::kOr),
                WWayProbability(s, w + 1, SemanticMode::kOr));
    }
  }
}

TEST(SaLshCollisionTest, ReducesToLshWhenSemanticsCertain) {
  // p = 1 when s' = 1 in OR mode: SA-LSH collision equals plain LSH.
  EXPECT_DOUBLE_EQ(SaLshCollisionProbability(0.4, 1.0, 3, 10, 2,
                                             SemanticMode::kOr),
                   LshCollisionProbability(0.4, 3, 10));
}

TEST(SaLshCollisionTest, ZeroSemanticSimilarityBlocksCollision) {
  // Proposition 5.3 in the analytic model: s' = 0 -> collision 0.
  EXPECT_DOUBLE_EQ(SaLshCollisionProbability(1.0, 0.0, 3, 10, 2,
                                             SemanticMode::kOr),
                   0.0);
  EXPECT_DOUBLE_EQ(SaLshCollisionProbability(1.0, 0.0, 3, 10, 2,
                                             SemanticMode::kAnd),
                   0.0);
}

TEST(SaLshCollisionTest, NeverExceedsPlainLsh) {
  for (double s : {0.2, 0.5, 0.8}) {
    for (double sp : {0.1, 0.5, 0.9}) {
      for (int w : {1, 3, 5}) {
        EXPECT_LE(SaLshCollisionProbability(s, sp, 4, 20, w,
                                            SemanticMode::kOr),
                  LshCollisionProbability(s, 4, 20) + 1e-12);
      }
    }
  }
}

TEST(MinTablesForTest, MatchesPaperExample) {
  // sh=0.3, k=4, ph=0.4 -> l = 63 (the paper's Cora choice).
  EXPECT_EQ(MinTablesFor(0.3, 4, 0.4), 63);
}

TEST(MinTablesForTest, EdgeCases) {
  EXPECT_EQ(MinTablesFor(0.0, 4, 0.5), -1);   // s^k = 0: unsatisfiable
  EXPECT_EQ(MinTablesFor(0.5, 2, 1.0), -1);   // p = 1: unsatisfiable
  EXPECT_EQ(MinTablesFor(0.5, 2, 0.0), 1);    // trivially satisfied
  EXPECT_EQ(MinTablesFor(1.0, 3, 0.99), -1);  // s^k = 1 handled
}

TEST(MinTablesForTest, ResultActuallySatisfiesTarget) {
  for (double s : {0.2, 0.4, 0.6}) {
    for (int k : {2, 4, 6}) {
      for (double p : {0.3, 0.6, 0.9}) {
        int l = MinTablesFor(s, k, p);
        ASSERT_GT(l, 0);
        EXPECT_GE(LshCollisionProbability(s, k, l), p - 1e-9);
        if (l > 1) {
          EXPECT_LT(LshCollisionProbability(s, k, l - 1), p + 1e-9);
        }
      }
    }
  }
}

// Property sweep over (k, l): collision probability is increasing in s,
// increasing in l, decreasing in k.
class CollisionMonotonicity
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(CollisionMonotonicity, MonotoneInSAndLAndK) {
  auto [k, l] = GetParam();
  double prev = -1.0;
  for (double s = 0.0; s <= 1.0; s += 0.05) {
    double p = LshCollisionProbability(s, k, l);
    EXPECT_GE(p, prev - 1e-12);
    EXPECT_GE(p, 0.0);
    EXPECT_LE(p, 1.0);
    prev = p;
    EXPECT_LE(LshCollisionProbability(s, k, l),
              LshCollisionProbability(s, k, l + 1) + 1e-12);
    EXPECT_GE(LshCollisionProbability(s, k, l),
              LshCollisionProbability(s, k + 1, l) - 1e-12);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grids, CollisionMonotonicity,
    ::testing::Combine(::testing::Values(1, 2, 4, 9),
                       ::testing::Values(2, 15, 63, 210)));

}  // namespace
}  // namespace sablock::core
