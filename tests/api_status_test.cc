// Tests for the value-returning StatusOr construction paths: the
// BlockerRegistry, the StageRegistry and pipeline::Build each expose a
// Create/Build overload that turns every malformed spec into a
// diagnostic Status instead of a CHECK failure. One test per diagnostic
// class pins the message a user actually sees.

#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "api/registry.h"
#include "common/statusor.h"
#include "pipeline/pipeline.h"
#include "pipeline/stage_registry.h"

namespace sablock {
namespace {

using api::BlockerRegistry;
using pipeline::StageRegistry;

std::string BlockerError(const std::string& spec) {
  StatusOr<std::unique_ptr<core::BlockingTechnique>> result =
      BlockerRegistry::Global().Create(spec);
  EXPECT_FALSE(result.ok()) << "'" << spec << "' should not build";
  return result.ok() ? "" : result.status().message();
}

std::string StageError(const std::string& spec) {
  StatusOr<std::unique_ptr<pipeline::PipelineStage>> result =
      StageRegistry::Global().Create(spec);
  EXPECT_FALSE(result.ok()) << "'" << spec << "' should not build";
  return result.ok() ? "" : result.status().message();
}

std::string BuildError(const std::string& spec) {
  StatusOr<std::unique_ptr<pipeline::PipelinedBlocker>> result =
      pipeline::Build(spec);
  EXPECT_FALSE(result.ok()) << "'" << spec << "' should not build";
  return result.ok() ? "" : result.status().message();
}

TEST(BlockerStatusOrTest, OkPathYieldsAWorkingTechnique) {
  StatusOr<std::unique_ptr<core::BlockingTechnique>> result =
      BlockerRegistry::Global().Create("tblo:attrs=name");
  ASSERT_TRUE(result.ok()) << result.status().message();
  ASSERT_NE(*result, nullptr);
  EXPECT_FALSE((*result)->name().empty());
}

TEST(BlockerStatusOrTest, UnknownTechniqueNamesItAndListsTheRegistry) {
  std::string message = BlockerError("nope:attrs=name");
  EXPECT_NE(message.find("unknown technique 'nope'"), std::string::npos)
      << message;
  EXPECT_NE(message.find("tblo"), std::string::npos) << message;
}

TEST(BlockerStatusOrTest, BadParamTypeNamesTheParam) {
  std::string message = BlockerError("sor-a:window=huge,attrs=name");
  EXPECT_NE(message.find("param 'window'"), std::string::npos) << message;
  EXPECT_NE(message.find("expected integer"), std::string::npos) << message;
}

TEST(BlockerStatusOrTest, OutOfRangeParamValueIsDiagnosed) {
  std::string message = BlockerError("sor-a:window=1,attrs=name");
  EXPECT_NE(message.find("window"), std::string::npos) << message;
}

TEST(BlockerStatusOrTest, UnknownParamIsDiagnosed) {
  std::string message = BlockerError("tblo:bogus=1,attrs=name");
  EXPECT_NE(message.find("unknown param(s) 'bogus'"), std::string::npos)
      << message;
}

TEST(BlockerStatusOrTest, DuplicateParamIsDiagnosed) {
  std::string message = BlockerError("tblo:attrs=name,attrs=title");
  EXPECT_NE(message.find("given more than once"), std::string::npos)
      << message;
}

TEST(StageStatusOrTest, OkPathYieldsAStage) {
  StatusOr<std::unique_ptr<pipeline::PipelineStage>> result =
      StageRegistry::Global().Create("purge:max_size=5");
  ASSERT_TRUE(result.ok()) << result.status().message();
  ASSERT_NE(*result, nullptr);
}

TEST(StageStatusOrTest, UnknownStageNamesItAndListsTheRegistry) {
  std::string message = StageError("nope:x=1");
  EXPECT_NE(message.find("unknown stage 'nope'"), std::string::npos)
      << message;
  EXPECT_NE(message.find("purge"), std::string::npos) << message;
}

TEST(StageStatusOrTest, StageParamValidationSurfacesAsStatus) {
  std::string message = StageError("progressive:pairs=0");
  EXPECT_NE(message.find("pairs"), std::string::npos) << message;
}

TEST(PipelineBuildStatusOrTest, OkPathBuildsTheFullChain) {
  StatusOr<std::unique_ptr<pipeline::PipelinedBlocker>> result =
      pipeline::Build("tblo:attrs=name | purge:max_size=9");
  ASSERT_TRUE(result.ok()) << result.status().message();
  ASSERT_NE(*result, nullptr);
  EXPECT_NE((*result)->name().find("purge"), std::string::npos);
}

TEST(PipelineBuildStatusOrTest, EmptySegmentIsDiagnosedWithItsPosition) {
  std::string message = BuildError("tblo:attrs=name |  | purge:max_size=9");
  EXPECT_NE(message.find("segment 2"), std::string::npos) << message;
  EXPECT_NE(message.find("is empty"), std::string::npos) << message;
}

TEST(PipelineBuildStatusOrTest, UnknownBlockerIsAttributedToTheBlockerSlot) {
  std::string message = BuildError("nope:attrs=name | purge:max_size=9");
  EXPECT_NE(message.find("unknown technique 'nope'"), std::string::npos)
      << message;
}

TEST(PipelineBuildStatusOrTest, UnknownStageIsAttributedToItsSlot) {
  std::string message = BuildError("tblo:attrs=name | nope:x=1");
  EXPECT_NE(message.find("unknown stage 'nope'"), std::string::npos)
      << message;
}

}  // namespace
}  // namespace sablock
