// Golden equivalence tests for the shared feature-extraction layer: every
// registry technique must produce exactly the blocks (and PC/PQ/RR) it
// produced before the columnar Dataset / FeatureStore refactor. The golden
// values below were captured from the pre-refactor implementation on the
// deterministic Cora-like dataset; any drift in normalization, shingling,
// minhash seeding or token handling shows up as a hash mismatch here.

#include <cinttypes>
#include <cstdio>
#include <string>
#include <vector>

#include "api/registry.h"
#include "core/blocking.h"
#include "data/cora_generator.h"
#include "eval/metrics.h"
#include "gtest/gtest.h"

namespace sablock {
namespace {

data::Dataset GoldenDataset() {
  data::CoraGeneratorConfig config;
  config.num_entities = 40;
  config.num_records = 400;
  config.seed = 42;
  return data::GenerateCoraLike(config);
}

std::unique_ptr<core::BlockingTechnique> MustCreate(const std::string& spec) {
  std::unique_ptr<core::BlockingTechnique> technique;
  Status status = api::BlockerRegistry::Global().Create(spec, &technique);
  EXPECT_TRUE(status.ok()) << spec << ": " << status.message();
  return technique;
}

/// Canonical order-independent fingerprint of a block collection: every
/// block sorted ascending, blocks sorted lexicographically, FNV-1a over
/// the sizes and ids. Emission order may legitimately differ between the
/// hash-map-keyed legacy paths and the token-id-keyed cached paths; the
/// *set* of blocks may not.
uint64_t CanonicalHash(const core::BlockCollection& blocks) {
  std::vector<core::Block> canon = blocks.blocks();
  for (core::Block& b : canon) std::sort(b.begin(), b.end());
  std::sort(canon.begin(), canon.end());
  uint64_t h = 1469598103934665603ULL;  // FNV offset basis
  auto mix = [&h](uint64_t v) {
    for (int byte = 0; byte < 8; ++byte) {
      h ^= (v >> (8 * byte)) & 0xff;
      h *= 1099511628211ULL;  // FNV prime
    }
  };
  for (const core::Block& b : canon) {
    mix(b.size());
    for (data::RecordId id : b) mix(id);
  }
  return h;
}

struct Golden {
  const char* spec;
  uint64_t block_hash;       // CanonicalHash of the blocks
  uint64_t distinct_pairs;   // |Γ|
  const char* pc_pq_rr;      // "%.12g/%.12g/%.12g"
};

// Captured from the pre-refactor implementation (seed commit state) with
// the printout in this test; see the CAPTURE branch below.
constexpr Golden kGoldens[] = {
    {"tblo:attrs=authors+title", 0xe0c7af3a4f6fde24ULL, 104,
     "0.0138261100771/1/0.998696741855"},
    {"sor-a:window=3,attrs=authors+title", 0x3ad0081f47ba44c4ULL, 797,
     "0.0640787024727/0.604767879548/0.990012531328"},
    {"sor-ii:window=3,attrs=authors+title", 0x68697c60929cc130ULL, 997,
     "0.0837543206594/0.631895687061/0.987506265664"},
    {"sor-mp:window=3,attrs=authors+title", 0xbd337d6da959cd48ULL, 79800,
     "1/0.0942606516291/0"},
    {"asor:sim=jaro_winkler,threshold=0.8,max-block=50,attrs=authors+title",
     0x94f37b367250f620ULL, 2069,
     "0.266551449083/0.969067182214/0.974072681704"},
    {"qgram:q=2,threshold=0.8,max-keys=64,attrs=title",
     0x92a6cadca4a9540fULL, 1520, "0.202073916512/1/0.980952380952"},
    {"sua:min-suffix=4,max-block=20,attrs=authors+title",
     0x974ab0559fe87aebULL, 1822,
     "0.192103164052/0.793084522503/0.977167919799"},
    {"suas:min-suffix=4,max-block=20,attrs=title", 0x6bed3667e4ead275ULL,
     4277, "0.238234512098/0.418985270049/0.946403508772"},
    {"rsua:min-suffix=4,max-block=20,sim=jaro_winkler,threshold=0.9,"
     "attrs=authors+title", 0xbfbb1aac8f7011d7ULL, 3503,
     "0.379287423558/0.814444761633/0.956102756892"},
    {"stmt:threshold=0.9,grid=100,dim=15,seed=73,attrs=authors+title",
     0xbfabea55dae3045dULL, 23073,
     "0.626030311087/0.204091362198/0.710864661654"},
    {"stmnn:nn=5,grid=100,dim=15,seed=73,attrs=authors+title",
     0x8936402e4942f93eULL, 1543,
     "0.0545067801117/0.265716137395/0.980664160401"},
    {"cath:sim=jaccard,loose=0.4,tight=0.8,seed=31,attrs=authors+title",
     0x287a47329dbcea8fULL, 5894,
     "0.782637596384/0.998812351544/0.926140350877"},
    {"cann:sim=tfidf,n1=10,n2=5,seed=31,attrs=authors+title",
     0x6aaf137a07d8239fULL, 3188,
     "0.255251262962/0.60225846926/0.960050125313"},
    {"meta:weighting=cbs,pruning=wep,max-block=500,attrs=authors+title",
     0xc721725972a2e0c3ULL, 11497,
     "0.984046796065/0.64382012699/0.855927318296"},
    {"lsh:k=2,l=8,q=3,seed=7,attrs=authors+title", 0x8d76cb8b22b5aef8ULL,
     11456, "0.871576708322/0.572276536313/0.856441102757"},
    {"sa-lsh:k=2,l=8,q=3,seed=7,w=5,mode=or,domain=bib,sem-seed=11,"
     "attrs=authors+title", 0x70cccbe0ee2efbbfULL, 9387,
     "0.849508109545/0.680728667306/0.882368421053"},
    {"mp-lsh:k=2,l=8,q=3,seed=7,probes=2,attrs=authors+title",
     0x82a0056a90f783fbULL, 25423,
     "0.991624567934/0.293395744011/0.6814160401"},
    {"forest:k=2,l=8,q=3,seed=7,depth=10,max-block=25,attrs=authors+title",
     0x52dcff54f39a20ceULL, 6883,
     "0.61153948418/0.668313235508/0.913746867168"},
    {"harra:k=2,l=8,q=3,seed=7,merge-threshold=0.5,iterations=2,"
     "attrs=authors+title", 0x08004bea58a7a04dULL, 5573,
     "0.737835681999/0.995872958909/0.930162907268"},
};

std::string FormatMetrics(const eval::Metrics& m) {
  char buf[128];
  std::snprintf(buf, sizeof(buf), "%.12g/%.12g/%.12g", m.pc, m.pq, m.rr);
  return buf;
}

TEST(FeatureGoldenTest, EveryRegistryTechniqueMatchesPreRefactorBlocks) {
  data::Dataset d = GoldenDataset();
  for (const Golden& golden : kGoldens) {
    std::unique_ptr<core::BlockingTechnique> technique =
        MustCreate(golden.spec);
    ASSERT_NE(technique, nullptr);
    core::BlockCollection blocks;
    technique->Run(d, blocks);
    eval::Metrics m = eval::Evaluate(d, blocks);
    uint64_t hash = CanonicalHash(blocks);
    if (golden.block_hash == 0) {
      // CAPTURE mode: print the actual values in table form.
      std::printf("GOLDEN {\"%s\", 0x%016" PRIx64 "ULL, %" PRIu64
                  ", \"%s\"},\n",
                  golden.spec, hash, m.distinct_pairs,
                  FormatMetrics(m).c_str());
      ADD_FAILURE() << "golden not captured for " << golden.spec;
      continue;
    }
    EXPECT_EQ(hash, golden.block_hash) << golden.spec;
    EXPECT_EQ(m.distinct_pairs, golden.distinct_pairs) << golden.spec;
    EXPECT_EQ(FormatMetrics(m), golden.pc_pq_rr) << golden.spec;
  }
}

// A technique must emit byte-identical blocks whether it runs against a
// cold feature store or one already warmed by every other technique —
// cache state is an implementation detail, never part of the result.
TEST(FeatureGoldenTest, WarmAndColdStoresProduceByteIdenticalBlocks) {
  data::Dataset warm = GoldenDataset();
  for (const Golden& golden : kGoldens) {
    std::unique_ptr<core::BlockingTechnique> technique =
        MustCreate(golden.spec);
    ASSERT_NE(technique, nullptr);
    data::Dataset cold = warm.ColdCopy();
    core::BlockCollection cold_blocks;
    technique->Run(cold, cold_blocks);
    core::BlockCollection warm_blocks;
    technique->Run(warm, warm_blocks);
    EXPECT_EQ(cold_blocks.blocks(), warm_blocks.blocks()) << golden.spec;
  }
}

}  // namespace
}  // namespace sablock
