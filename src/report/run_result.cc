#include "report/run_result.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "obs/export.h"

namespace sablock::report {

RepeatStats SummarizeSeconds(std::vector<double> seconds) {
  RepeatStats stats;
  if (seconds.empty()) return stats;
  std::sort(seconds.begin(), seconds.end());
  stats.repeats = static_cast<int>(seconds.size());
  stats.min_s = seconds.front();
  stats.mean_s = std::accumulate(seconds.begin(), seconds.end(), 0.0) /
                 static_cast<double>(seconds.size());
  stats.p50_s = seconds[(seconds.size() - 1) / 2];
  return stats;
}

LatencyStats SummarizeLatency(std::vector<double> op_seconds,
                              double wall_seconds) {
  LatencyStats stats;
  if (op_seconds.empty()) return stats;
  std::sort(op_seconds.begin(), op_seconds.end());
  stats.ops = op_seconds.size();
  // Nearest rank: the ceil(p*N)-th smallest sample, clamped so p=0 and
  // p=1 stay in range. For N=1 every percentile is the lone sample (the
  // pre-fix interpolation indexed off the end of degenerate windows).
  auto rank = [&](double p) {
    double r = std::ceil(p * static_cast<double>(op_seconds.size()));
    size_t idx = r < 1.0 ? 0 : static_cast<size_t>(r) - 1;
    idx = std::min(idx, op_seconds.size() - 1);
    return op_seconds[idx] * 1e6;
  };
  stats.p50_us = rank(0.50);
  stats.p99_us = rank(0.99);
  if (wall_seconds > 0.0) {
    stats.qps = static_cast<double>(op_seconds.size()) / wall_seconds;
  }
  return stats;
}

namespace {

Json ToJson(const RepeatStats& stats) {
  Json j = Json::Object();
  j.Set("repeats", static_cast<int64_t>(stats.repeats));
  j.Set("min_s", stats.min_s);
  j.Set("mean_s", stats.mean_s);
  j.Set("p50_s", stats.p50_s);
  return j;
}

Json ToJson(const StageTiming& stage) {
  Json j = Json::Object();
  j.Set("name", stage.name);
  j.Set("blocks", stage.blocks);
  j.Set("comparisons", stage.comparisons);
  j.Set("max_block_size", stage.max_block_size);
  j.Set("seconds", stage.seconds);
  return j;
}

Json ToJson(const LatencyStats& stats) {
  Json j = Json::Object();
  j.Set("ops", stats.ops);
  j.Set("p50_us", stats.p50_us);
  j.Set("p99_us", stats.p99_us);
  j.Set("qps", stats.qps);
  return j;
}

Json ToJson(const IoStats& stats) {
  Json j = Json::Object();
  j.Set("file_bytes", stats.file_bytes);
  j.Set("cold_load_s", stats.cold_load_s);
  j.Set("first_query_s", stats.first_query_s);
  return j;
}

Json ToJson(const eval::RecallCurve& curve) {
  Json j = Json::Object();
  j.Set("budget_pairs", curve.budget_pairs);
  j.Set("auc", curve.auc);
  Json points = Json::Array();
  for (const eval::RecallPoint& point : curve.points) {
    Json p = Json::Object();
    p.Set("fraction", point.fraction);
    p.Set("recall", point.recall);
    points.Append(std::move(p));
  }
  j.Set("points", std::move(points));
  return j;
}

Json ToJson(const eval::Metrics& m) {
  Json j = Json::Object();
  j.Set("pc", m.pc);
  j.Set("pq", m.pq);
  j.Set("rr", m.rr);
  j.Set("fm", m.fm);
  j.Set("pq_star", m.pq_star);
  j.Set("fm_star", m.fm_star);
  j.Set("distinct_pairs", m.distinct_pairs);
  j.Set("true_pairs", m.true_pairs);
  j.Set("total_comparisons", m.total_comparisons);
  j.Set("ground_truth_pairs", m.ground_truth_pairs);
  j.Set("all_pairs", m.all_pairs);
  j.Set("num_blocks", m.num_blocks);
  j.Set("max_block_size", m.max_block_size);
  return j;
}

// --- FromJson helpers: typed field readers with path-named errors. ------

Status Missing(const std::string& key) {
  return Status::Error("missing or mistyped key '" + key + "'");
}

Status ReadString(const Json& obj, const std::string& key, bool required,
                  std::string* out) {
  const Json* v = obj.Find(key);
  if (v == nullptr) {
    return required ? Missing(key) : Status::Ok();
  }
  if (v->type() != Json::Type::kString) return Missing(key);
  *out = v->string_value();
  return Status::Ok();
}

Status ReadUint(const Json& obj, const std::string& key, bool required,
                uint64_t* out) {
  const Json* v = obj.Find(key);
  if (v == nullptr) {
    return required ? Missing(key) : Status::Ok();
  }
  if (!v->is_number() || v->type() == Json::Type::kDouble ||
      (v->type() == Json::Type::kInt && v->int_value() < 0)) {
    return Missing(key);
  }
  *out = v->uint_value();
  return Status::Ok();
}

Status ReadDouble(const Json& obj, const std::string& key, bool required,
                  double* out) {
  const Json* v = obj.Find(key);
  if (v == nullptr) {
    return required ? Missing(key) : Status::Ok();
  }
  if (!v->is_number()) return Missing(key);
  *out = v->double_value();
  return Status::Ok();
}

#define SABLOCK_RETURN_IF_ERROR(expr)        \
  do {                                       \
    Status _status = (expr);                 \
    if (!_status.ok()) return _status;       \
  } while (0)

Status RepeatStatsFromJson(const Json& json, RepeatStats* out) {
  if (json.type() != Json::Type::kObject) return Missing("time");
  uint64_t repeats = 0;
  SABLOCK_RETURN_IF_ERROR(ReadUint(json, "repeats", true, &repeats));
  out->repeats = static_cast<int>(repeats);
  SABLOCK_RETURN_IF_ERROR(ReadDouble(json, "min_s", true, &out->min_s));
  SABLOCK_RETURN_IF_ERROR(ReadDouble(json, "mean_s", true, &out->mean_s));
  SABLOCK_RETURN_IF_ERROR(ReadDouble(json, "p50_s", true, &out->p50_s));
  return Status::Ok();
}

Status LatencyStatsFromJson(const Json& json, LatencyStats* out) {
  if (json.type() != Json::Type::kObject) return Missing("latency");
  SABLOCK_RETURN_IF_ERROR(ReadUint(json, "ops", true, &out->ops));
  SABLOCK_RETURN_IF_ERROR(ReadDouble(json, "p50_us", true, &out->p50_us));
  SABLOCK_RETURN_IF_ERROR(ReadDouble(json, "p99_us", true, &out->p99_us));
  SABLOCK_RETURN_IF_ERROR(ReadDouble(json, "qps", true, &out->qps));
  return Status::Ok();
}

Status IoStatsFromJson(const Json& json, IoStats* out) {
  if (json.type() != Json::Type::kObject) return Missing("io");
  SABLOCK_RETURN_IF_ERROR(
      ReadUint(json, "file_bytes", true, &out->file_bytes));
  SABLOCK_RETURN_IF_ERROR(
      ReadDouble(json, "cold_load_s", true, &out->cold_load_s));
  SABLOCK_RETURN_IF_ERROR(
      ReadDouble(json, "first_query_s", true, &out->first_query_s));
  return Status::Ok();
}

Status StageTimingFromJson(const Json& json, StageTiming* out) {
  if (json.type() != Json::Type::kObject) return Missing("stages[]");
  SABLOCK_RETURN_IF_ERROR(ReadString(json, "name", true, &out->name));
  SABLOCK_RETURN_IF_ERROR(ReadUint(json, "blocks", true, &out->blocks));
  SABLOCK_RETURN_IF_ERROR(
      ReadUint(json, "comparisons", true, &out->comparisons));
  SABLOCK_RETURN_IF_ERROR(
      ReadUint(json, "max_block_size", true, &out->max_block_size));
  SABLOCK_RETURN_IF_ERROR(ReadDouble(json, "seconds", true, &out->seconds));
  return Status::Ok();
}

Status MetricsFromJson(const Json& json, eval::Metrics* out) {
  if (json.type() != Json::Type::kObject) return Missing("metrics");
  SABLOCK_RETURN_IF_ERROR(ReadDouble(json, "pc", true, &out->pc));
  SABLOCK_RETURN_IF_ERROR(ReadDouble(json, "pq", true, &out->pq));
  SABLOCK_RETURN_IF_ERROR(ReadDouble(json, "rr", true, &out->rr));
  SABLOCK_RETURN_IF_ERROR(ReadDouble(json, "fm", true, &out->fm));
  SABLOCK_RETURN_IF_ERROR(ReadDouble(json, "pq_star", true, &out->pq_star));
  SABLOCK_RETURN_IF_ERROR(ReadDouble(json, "fm_star", true, &out->fm_star));
  SABLOCK_RETURN_IF_ERROR(
      ReadUint(json, "distinct_pairs", true, &out->distinct_pairs));
  SABLOCK_RETURN_IF_ERROR(
      ReadUint(json, "true_pairs", true, &out->true_pairs));
  SABLOCK_RETURN_IF_ERROR(
      ReadUint(json, "total_comparisons", true, &out->total_comparisons));
  SABLOCK_RETURN_IF_ERROR(
      ReadUint(json, "ground_truth_pairs", true, &out->ground_truth_pairs));
  SABLOCK_RETURN_IF_ERROR(ReadUint(json, "all_pairs", true, &out->all_pairs));
  SABLOCK_RETURN_IF_ERROR(
      ReadUint(json, "num_blocks", true, &out->num_blocks));
  SABLOCK_RETURN_IF_ERROR(
      ReadUint(json, "max_block_size", true, &out->max_block_size));
  return Status::Ok();
}

Status RecallCurveFromJson(const Json& json, eval::RecallCurve* out) {
  if (json.type() != Json::Type::kObject) return Missing("recall");
  SABLOCK_RETURN_IF_ERROR(
      ReadUint(json, "budget_pairs", true, &out->budget_pairs));
  SABLOCK_RETURN_IF_ERROR(ReadDouble(json, "auc", true, &out->auc));
  const Json* points = json.Find("points");
  if (points == nullptr || points->type() != Json::Type::kArray) {
    return Missing("recall.points");
  }
  for (const Json& entry : points->items()) {
    eval::RecallPoint point;
    SABLOCK_RETURN_IF_ERROR(
        ReadDouble(entry, "fraction", true, &point.fraction));
    SABLOCK_RETURN_IF_ERROR(ReadDouble(entry, "recall", true, &point.recall));
    out->points.push_back(point);
  }
  return Status::Ok();
}

}  // namespace

Json ToJson(const RunResult& run) {
  Json j = Json::Object();
  j.Set("scenario", run.scenario);
  j.Set("name", run.name);
  if (!run.spec.empty()) j.Set("spec", run.spec);
  if (!run.dataset.empty()) {
    j.Set("dataset", run.dataset);
    j.Set("dataset_records", run.dataset_records);
  }
  if (!run.params.empty()) {
    Json params = Json::Object();
    for (const auto& [key, value] : run.params) params.Set(key, value);
    j.Set("params", std::move(params));
  }
  if (run.time.repeats > 0) j.Set("time", ToJson(run.time));
  if (!run.stages.empty()) {
    Json stages = Json::Array();
    for (const StageTiming& stage : run.stages) {
      stages.Append(ToJson(stage));
    }
    j.Set("stages", std::move(stages));
  }
  if (run.has_metrics) j.Set("metrics", ToJson(run.metrics));
  if (run.has_latency) j.Set("latency", ToJson(run.latency));
  if (run.has_io) j.Set("io", ToJson(run.io));
  if (run.has_recall) j.Set("recall", ToJson(run.recall));
  if (!run.values.empty()) {
    Json values = Json::Object();
    for (const auto& [key, value] : run.values) values.Set(key, value);
    j.Set("values", std::move(values));
  }
  return j;
}

Json ToJson(const SuiteResult& suite) {
  Json j = Json::Object();
  j.Set("tool", suite.tool);
  j.Set("schema_version", static_cast<int64_t>(suite.schema_version));
  j.Set("quick", suite.quick);
  j.Set("repeat", static_cast<int64_t>(suite.repeat));
  Json scenarios = Json::Array();
  for (const ScenarioOutcome& outcome : suite.scenarios) {
    Json o = Json::Object();
    o.Set("name", outcome.name);
    o.Set("exit_code", static_cast<int64_t>(outcome.exit_code));
    o.Set("seconds", outcome.seconds);
    scenarios.Append(std::move(o));
  }
  j.Set("scenarios", std::move(scenarios));
  Json runs = Json::Array();
  for (const RunResult& run : suite.runs) runs.Append(ToJson(run));
  j.Set("runs", std::move(runs));
  if (suite.has_metrics_snapshot) {
    j.Set("metrics", obs::SnapshotToJson(suite.metrics_snapshot));
  }
  return j;
}

Status RunResultFromJson(const Json& json, RunResult* out) {
  *out = RunResult();
  if (json.type() != Json::Type::kObject) {
    return Status::Error("run is not an object");
  }
  SABLOCK_RETURN_IF_ERROR(
      ReadString(json, "scenario", true, &out->scenario));
  SABLOCK_RETURN_IF_ERROR(ReadString(json, "name", true, &out->name));
  SABLOCK_RETURN_IF_ERROR(ReadString(json, "spec", false, &out->spec));
  SABLOCK_RETURN_IF_ERROR(ReadString(json, "dataset", false, &out->dataset));
  SABLOCK_RETURN_IF_ERROR(
      ReadUint(json, "dataset_records", false, &out->dataset_records));
  if (const Json* params = json.Find("params")) {
    if (params->type() != Json::Type::kObject) return Missing("params");
    for (const auto& [key, value] : params->members()) {
      if (value.type() != Json::Type::kString) return Missing("params");
      out->AddParam(key, value.string_value());
    }
  }
  if (const Json* time = json.Find("time")) {
    SABLOCK_RETURN_IF_ERROR(RepeatStatsFromJson(*time, &out->time));
  }
  if (const Json* stages = json.Find("stages")) {
    if (stages->type() != Json::Type::kArray) return Missing("stages");
    for (const Json& stage : stages->items()) {
      StageTiming timing;
      SABLOCK_RETURN_IF_ERROR(StageTimingFromJson(stage, &timing));
      out->stages.push_back(std::move(timing));
    }
  }
  if (const Json* metrics = json.Find("metrics")) {
    SABLOCK_RETURN_IF_ERROR(MetricsFromJson(*metrics, &out->metrics));
    out->has_metrics = true;
  }
  if (const Json* latency = json.Find("latency")) {
    SABLOCK_RETURN_IF_ERROR(LatencyStatsFromJson(*latency, &out->latency));
    out->has_latency = true;
  }
  if (const Json* io = json.Find("io")) {
    SABLOCK_RETURN_IF_ERROR(IoStatsFromJson(*io, &out->io));
    out->has_io = true;
  }
  if (const Json* recall = json.Find("recall")) {
    SABLOCK_RETURN_IF_ERROR(RecallCurveFromJson(*recall, &out->recall));
    out->has_recall = true;
  }
  if (const Json* values = json.Find("values")) {
    if (values->type() != Json::Type::kObject) return Missing("values");
    for (const auto& [key, value] : values->members()) {
      if (!value.is_number()) return Missing("values");
      out->AddValue(key, value.double_value());
    }
  }
  return Status::Ok();
}

Status SuiteResultFromJson(const Json& json, SuiteResult* out) {
  *out = SuiteResult();
  if (json.type() != Json::Type::kObject) {
    return Status::Error("suite is not an object");
  }
  SABLOCK_RETURN_IF_ERROR(ReadString(json, "tool", true, &out->tool));
  uint64_t version = 0;
  SABLOCK_RETURN_IF_ERROR(ReadUint(json, "schema_version", true, &version));
  if (version != static_cast<uint64_t>(kSchemaVersion)) {
    return Status::Error("unsupported schema_version " +
                         std::to_string(version));
  }
  out->schema_version = static_cast<int>(version);
  const Json* quick = json.Find("quick");
  if (quick == nullptr || quick->type() != Json::Type::kBool) {
    return Missing("quick");
  }
  out->quick = quick->bool_value();
  uint64_t repeat = 0;
  SABLOCK_RETURN_IF_ERROR(ReadUint(json, "repeat", true, &repeat));
  out->repeat = static_cast<int>(repeat);
  if (const Json* scenarios = json.Find("scenarios")) {
    if (scenarios->type() != Json::Type::kArray) return Missing("scenarios");
    for (const Json& entry : scenarios->items()) {
      ScenarioOutcome outcome;
      SABLOCK_RETURN_IF_ERROR(
          ReadString(entry, "name", true, &outcome.name));
      uint64_t exit_code = 0;
      SABLOCK_RETURN_IF_ERROR(
          ReadUint(entry, "exit_code", true, &exit_code));
      outcome.exit_code = static_cast<int>(exit_code);
      SABLOCK_RETURN_IF_ERROR(
          ReadDouble(entry, "seconds", true, &outcome.seconds));
      out->scenarios.push_back(std::move(outcome));
    }
  }
  const Json* runs = json.Find("runs");
  if (runs == nullptr || runs->type() != Json::Type::kArray) {
    return Missing("runs");
  }
  for (const Json& entry : runs->items()) {
    RunResult run;
    SABLOCK_RETURN_IF_ERROR(RunResultFromJson(entry, &run));
    out->runs.push_back(std::move(run));
  }
  if (const Json* metrics = json.Find("metrics")) {
    SABLOCK_RETURN_IF_ERROR(
        obs::SnapshotFromJson(*metrics, &out->metrics_snapshot));
    out->has_metrics_snapshot = true;
  }
  return Status::Ok();
}

#undef SABLOCK_RETURN_IF_ERROR

}  // namespace sablock::report
