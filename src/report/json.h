#ifndef SABLOCK_REPORT_JSON_H_
#define SABLOCK_REPORT_JSON_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/status.h"

namespace sablock::report {

/// A JSON document value with no third-party dependencies — the carrier
/// for the benchmark suite's machine-readable results (BENCH_*.json).
///
/// Objects preserve insertion order, so a serialized report has stable,
/// diff-friendly key order (the golden test relies on this). Numbers keep
/// their integer-ness: counters serialize as exact integers, never in
/// scientific notation, while doubles use the shortest round-trippable
/// form. Non-finite doubles serialize as null (JSON has no NaN/Inf).
class Json {
 public:
  enum class Type { kNull, kBool, kInt, kUint, kDouble, kString, kArray,
                    kObject };

  Json() : type_(Type::kNull) {}
  Json(bool value) : type_(Type::kBool), bool_(value) {}
  Json(int value) : type_(Type::kInt), int_(value) {}
  Json(int64_t value) : type_(Type::kInt), int_(value) {}
  Json(uint64_t value) : type_(Type::kUint), uint_(value) {}
  Json(double value) : type_(Type::kDouble), double_(value) {}
  Json(std::string value) : type_(Type::kString), string_(std::move(value)) {}
  Json(const char* value) : type_(Type::kString), string_(value) {}

  /// Empty-container constructors ([] / {} even with no elements).
  static Json Array();
  static Json Object();

  Type type() const { return type_; }
  bool is_null() const { return type_ == Type::kNull; }
  bool is_number() const {
    return type_ == Type::kInt || type_ == Type::kUint ||
           type_ == Type::kDouble;
  }

  /// Typed accessors; calling one on the wrong type CHECK-fails.
  bool bool_value() const;
  int64_t int_value() const;    ///< kInt or in-range kUint
  uint64_t uint_value() const;  ///< kUint or non-negative kInt
  double double_value() const;  ///< any numeric type, widened
  const std::string& string_value() const;

  // ------------------------------------------------------------- arrays
  /// Appends an element (CHECK-fails unless array). Returns *this.
  Json& Append(Json value);
  const std::vector<Json>& items() const;

  // ------------------------------------------------------------ objects
  /// Sets `key` (appending it if new, overwriting in place if present).
  /// CHECK-fails unless object. Returns *this for chaining.
  Json& Set(std::string key, Json value);
  /// Looks up a key; nullptr when absent (or not an object).
  const Json* Find(const std::string& key) const;
  const std::vector<std::pair<std::string, Json>>& members() const;

  /// Elements (array) or members (object); 0 for scalars.
  size_t size() const;

  /// Serializes the value. indent == 0 renders compact single-line JSON;
  /// indent > 0 pretty-prints with that many spaces per nesting level.
  std::string Dump(int indent = 0) const;

  /// Parses a complete JSON document (trailing garbage is an error).
  static Status Parse(std::string_view text, Json* out);

 private:
  void DumpTo(std::string& out, int indent, int depth) const;

  Type type_;
  bool bool_ = false;
  int64_t int_ = 0;
  uint64_t uint_ = 0;
  double double_ = 0.0;
  std::string string_;
  std::vector<Json> array_;
  std::vector<std::pair<std::string, Json>> object_;
};

/// Appends the JSON escape of `s` (quotes included) to `out`.
void AppendJsonEscaped(std::string& out, std::string_view s);

/// Writes `value.Dump(indent)` plus a trailing newline to `path`.
Status WriteJsonFile(const Json& value, const std::string& path,
                     int indent = 2);

}  // namespace sablock::report

#endif  // SABLOCK_REPORT_JSON_H_
