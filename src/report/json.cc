#include "report/json.h"

#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "common/check.h"

namespace sablock::report {

namespace {

void AppendDouble(std::string& out, double value) {
  if (!std::isfinite(value)) {
    out += "null";
    return;
  }
  char buf[32];
  auto [ptr, ec] = std::to_chars(buf, buf + sizeof(buf), value);
  SABLOCK_CHECK(ec == std::errc());
  std::string_view text(buf, static_cast<size_t>(ptr - buf));
  out.append(text);
  // to_chars' shortest form of an integral double has no '.', 'e' or
  // "inf"/"nan" marker; add ".0" so the value parses back as a double and
  // integer counters stay visually distinct from measurements.
  if (text.find_first_of(".eE") == std::string_view::npos) out += ".0";
}

}  // namespace

Json Json::Array() {
  Json j;
  j.type_ = Type::kArray;
  return j;
}

Json Json::Object() {
  Json j;
  j.type_ = Type::kObject;
  return j;
}

bool Json::bool_value() const {
  SABLOCK_CHECK(type_ == Type::kBool);
  return bool_;
}

int64_t Json::int_value() const {
  if (type_ == Type::kUint) {
    SABLOCK_CHECK(uint_ <= static_cast<uint64_t>(INT64_MAX));
    return static_cast<int64_t>(uint_);
  }
  SABLOCK_CHECK(type_ == Type::kInt);
  return int_;
}

uint64_t Json::uint_value() const {
  if (type_ == Type::kInt) {
    SABLOCK_CHECK(int_ >= 0);
    return static_cast<uint64_t>(int_);
  }
  SABLOCK_CHECK(type_ == Type::kUint);
  return uint_;
}

double Json::double_value() const {
  switch (type_) {
    case Type::kInt:
      return static_cast<double>(int_);
    case Type::kUint:
      return static_cast<double>(uint_);
    case Type::kDouble:
      return double_;
    default:
      SABLOCK_CHECK_MSG(false, "Json::double_value on non-number");
      return 0.0;
  }
}

const std::string& Json::string_value() const {
  SABLOCK_CHECK(type_ == Type::kString);
  return string_;
}

Json& Json::Append(Json value) {
  SABLOCK_CHECK(type_ == Type::kArray);
  array_.push_back(std::move(value));
  return *this;
}

const std::vector<Json>& Json::items() const {
  SABLOCK_CHECK(type_ == Type::kArray);
  return array_;
}

Json& Json::Set(std::string key, Json value) {
  SABLOCK_CHECK(type_ == Type::kObject);
  for (auto& [existing, slot] : object_) {
    if (existing == key) {
      slot = std::move(value);
      return *this;
    }
  }
  object_.emplace_back(std::move(key), std::move(value));
  return *this;
}

const Json* Json::Find(const std::string& key) const {
  if (type_ != Type::kObject) return nullptr;
  for (const auto& [existing, value] : object_) {
    if (existing == key) return &value;
  }
  return nullptr;
}

const std::vector<std::pair<std::string, Json>>& Json::members() const {
  SABLOCK_CHECK(type_ == Type::kObject);
  return object_;
}

size_t Json::size() const {
  if (type_ == Type::kArray) return array_.size();
  if (type_ == Type::kObject) return object_.size();
  return 0;
}

void AppendJsonEscaped(std::string& out, std::string_view s) {
  out += '"';
  for (unsigned char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\b':
        out += "\\b";
        break;
      case '\f':
        out += "\\f";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += static_cast<char>(c);
        }
    }
  }
  out += '"';
}

std::string Json::Dump(int indent) const {
  std::string out;
  DumpTo(out, indent, 0);
  return out;
}

void Json::DumpTo(std::string& out, int indent, int depth) const {
  auto newline = [&](int level) {
    if (indent <= 0) return;
    out += '\n';
    out.append(static_cast<size_t>(indent * level), ' ');
  };
  switch (type_) {
    case Type::kNull:
      out += "null";
      break;
    case Type::kBool:
      out += bool_ ? "true" : "false";
      break;
    case Type::kInt:
      out += std::to_string(int_);
      break;
    case Type::kUint:
      out += std::to_string(uint_);
      break;
    case Type::kDouble:
      AppendDouble(out, double_);
      break;
    case Type::kString:
      AppendJsonEscaped(out, string_);
      break;
    case Type::kArray: {
      out += '[';
      for (size_t i = 0; i < array_.size(); ++i) {
        if (i > 0) out += ',';
        newline(depth + 1);
        array_[i].DumpTo(out, indent, depth + 1);
      }
      if (!array_.empty()) newline(depth);
      out += ']';
      break;
    }
    case Type::kObject: {
      out += '{';
      for (size_t i = 0; i < object_.size(); ++i) {
        if (i > 0) out += ',';
        newline(depth + 1);
        AppendJsonEscaped(out, object_[i].first);
        out += indent > 0 ? ": " : ":";
        object_[i].second.DumpTo(out, indent, depth + 1);
      }
      if (!object_.empty()) newline(depth);
      out += '}';
      break;
    }
  }
}

// ------------------------------------------------------------------ parser

namespace {

/// Recursive-descent parser over the full JSON grammar (RFC 8259). Kept
/// deliberately small: the library only needs to read back what it wrote
/// (round-trip tests, bench_compare-style consumers in C++).
class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Status ParseDocument(Json* out) {
    Status status = ParseValue(out);
    if (!status.ok()) return status;
    SkipWhitespace();
    if (pos_ != text_.size()) {
      return Fail("trailing characters after JSON value");
    }
    return Status::Ok();
  }

 private:
  Status Fail(const std::string& what) {
    return Status::Error("json parse error at offset " +
                         std::to_string(pos_) + ": " + what);
  }

  void SkipWhitespace() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' ||
            text_[pos_] == '\n' || text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool Consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  Status ParseValue(Json* out) {
    SkipWhitespace();
    if (pos_ >= text_.size()) return Fail("unexpected end of input");
    switch (text_[pos_]) {
      case '{':
        return ParseObject(out);
      case '[':
        return ParseArray(out);
      case '"': {
        std::string s;
        Status status = ParseString(&s);
        if (!status.ok()) return status;
        *out = Json(std::move(s));
        return Status::Ok();
      }
      case 't':
        return ParseLiteral("true", Json(true), out);
      case 'f':
        return ParseLiteral("false", Json(false), out);
      case 'n':
        return ParseLiteral("null", Json(), out);
      default:
        return ParseNumber(out);
    }
  }

  Status ParseLiteral(std::string_view word, Json value, Json* out) {
    if (text_.substr(pos_, word.size()) != word) {
      return Fail("invalid literal");
    }
    pos_ += word.size();
    *out = std::move(value);
    return Status::Ok();
  }

  Status ParseObject(Json* out) {
    ++pos_;  // '{'
    *out = Json::Object();
    SkipWhitespace();
    if (Consume('}')) return Status::Ok();
    while (true) {
      SkipWhitespace();
      std::string key;
      Status status = ParseString(&key);
      if (!status.ok()) return status;
      SkipWhitespace();
      if (!Consume(':')) return Fail("expected ':' in object");
      Json value;
      status = ParseValue(&value);
      if (!status.ok()) return status;
      out->Set(std::move(key), std::move(value));
      SkipWhitespace();
      if (Consume('}')) return Status::Ok();
      if (!Consume(',')) return Fail("expected ',' or '}' in object");
    }
  }

  Status ParseArray(Json* out) {
    ++pos_;  // '['
    *out = Json::Array();
    SkipWhitespace();
    if (Consume(']')) return Status::Ok();
    while (true) {
      Json value;
      Status status = ParseValue(&value);
      if (!status.ok()) return status;
      out->Append(std::move(value));
      SkipWhitespace();
      if (Consume(']')) return Status::Ok();
      if (!Consume(',')) return Fail("expected ',' or ']' in array");
    }
  }

  Status ParseString(std::string* out) {
    if (!Consume('"')) return Fail("expected '\"'");
    out->clear();
    while (true) {
      if (pos_ >= text_.size()) return Fail("unterminated string");
      char c = text_[pos_++];
      if (c == '"') return Status::Ok();
      if (static_cast<unsigned char>(c) < 0x20) {
        return Fail("unescaped control character in string");
      }
      if (c != '\\') {
        *out += c;
        continue;
      }
      if (pos_ >= text_.size()) return Fail("unterminated escape");
      char esc = text_[pos_++];
      switch (esc) {
        case '"':
        case '\\':
        case '/':
          *out += esc;
          break;
        case 'b':
          *out += '\b';
          break;
        case 'f':
          *out += '\f';
          break;
        case 'n':
          *out += '\n';
          break;
        case 'r':
          *out += '\r';
          break;
        case 't':
          *out += '\t';
          break;
        case 'u': {
          uint32_t code;
          Status status = ParseHex4(&code);
          if (!status.ok()) return status;
          // Combine a surrogate pair when one follows.
          if (code >= 0xD800 && code <= 0xDBFF &&
              text_.substr(pos_, 2) == "\\u") {
            size_t saved = pos_;
            pos_ += 2;
            uint32_t low;
            status = ParseHex4(&low);
            if (!status.ok()) return status;
            if (low >= 0xDC00 && low <= 0xDFFF) {
              code = 0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00);
            } else {
              pos_ = saved;  // lone high surrogate; encode as-is
            }
          }
          AppendUtf8(*out, code);
          break;
        }
        default:
          return Fail("invalid escape character");
      }
    }
  }

  Status ParseHex4(uint32_t* out) {
    if (pos_ + 4 > text_.size()) return Fail("truncated \\u escape");
    uint32_t value = 0;
    for (int i = 0; i < 4; ++i) {
      char c = text_[pos_++];
      value <<= 4;
      if (c >= '0' && c <= '9') {
        value |= static_cast<uint32_t>(c - '0');
      } else if (c >= 'a' && c <= 'f') {
        value |= static_cast<uint32_t>(c - 'a' + 10);
      } else if (c >= 'A' && c <= 'F') {
        value |= static_cast<uint32_t>(c - 'A' + 10);
      } else {
        return Fail("invalid hex digit in \\u escape");
      }
    }
    *out = value;
    return Status::Ok();
  }

  static void AppendUtf8(std::string& out, uint32_t code) {
    if (code < 0x80) {
      out += static_cast<char>(code);
    } else if (code < 0x800) {
      out += static_cast<char>(0xC0 | (code >> 6));
      out += static_cast<char>(0x80 | (code & 0x3F));
    } else if (code < 0x10000) {
      out += static_cast<char>(0xE0 | (code >> 12));
      out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
      out += static_cast<char>(0x80 | (code & 0x3F));
    } else {
      out += static_cast<char>(0xF0 | (code >> 18));
      out += static_cast<char>(0x80 | ((code >> 12) & 0x3F));
      out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
      out += static_cast<char>(0x80 | (code & 0x3F));
    }
  }

  Status ParseNumber(Json* out) {
    size_t start = pos_;
    if (Consume('-')) {
    }
    while (pos_ < text_.size() && std::isdigit(
               static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
    bool integral = true;
    if (Consume('.')) {
      integral = false;
      while (pos_ < text_.size() && std::isdigit(
                 static_cast<unsigned char>(text_[pos_]))) {
        ++pos_;
      }
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      integral = false;
      ++pos_;
      if (pos_ < text_.size() &&
          (text_[pos_] == '+' || text_[pos_] == '-')) {
        ++pos_;
      }
      while (pos_ < text_.size() && std::isdigit(
                 static_cast<unsigned char>(text_[pos_]))) {
        ++pos_;
      }
    }
    std::string_view token = text_.substr(start, pos_ - start);
    if (token.empty() || token == "-") return Fail("invalid number");

    const char* first = token.data();
    const char* last = token.data() + token.size();
    if (integral) {
      if (token[0] == '-') {
        int64_t value;
        auto [ptr, ec] = std::from_chars(first, last, value);
        if (ec == std::errc() && ptr == last) {
          *out = Json(value);
          return Status::Ok();
        }
      } else {
        uint64_t value;
        auto [ptr, ec] = std::from_chars(first, last, value);
        if (ec == std::errc() && ptr == last) {
          *out = value <= static_cast<uint64_t>(INT64_MAX)
                     ? Json(static_cast<int64_t>(value))
                     : Json(value);
          return Status::Ok();
        }
      }
      // Fall through to double on overflow.
    }
    double value;
    auto [ptr, ec] = std::from_chars(first, last, value);
    if (ec != std::errc() || ptr != last) return Fail("invalid number");
    *out = Json(value);
    return Status::Ok();
  }

  std::string_view text_;
  size_t pos_ = 0;
};

}  // namespace

Status Json::Parse(std::string_view text, Json* out) {
  return Parser(text).ParseDocument(out);
}

Status WriteJsonFile(const Json& value, const std::string& path,
                     int indent) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    return Status::Error("cannot open '" + path + "' for writing");
  }
  std::string text = value.Dump(indent);
  text += '\n';
  size_t written = std::fwrite(text.data(), 1, text.size(), f);
  int close_rc = std::fclose(f);
  if (written != text.size() || close_rc != 0) {
    return Status::Error("short write to '" + path + "'");
  }
  return Status::Ok();
}

}  // namespace sablock::report
