#ifndef SABLOCK_REPORT_RUN_RESULT_H_
#define SABLOCK_REPORT_RUN_RESULT_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "common/status.h"
#include "eval/metrics.h"
#include "obs/metrics.h"
#include "report/json.h"

namespace sablock::report {

/// Written to every suite JSON so downstream tooling (tools/
/// bench_compare.py, CI trend jobs) can reject files it does not
/// understand. Bump on any backwards-incompatible key change.
/// v2: suites carry an optional suite-level `metrics` object — the
/// process's obs::MetricsSnapshot (see obs/export.h for the shape).
/// v3: runs carry an optional `io` object (snapshot file size +
/// cold-load and first-query wall times; the `snapshot_io` scenario).
/// v4: runs carry an optional `recall` object (the recall@budget curve
/// of a progressive emission order; the `progressive_recall` scenario).
inline constexpr int kSchemaVersion = 4;

/// Wall-time statistics over a run's timing repetitions (seconds). For
/// micro-benchmarks the same shape carries seconds *per operation*.
struct RepeatStats {
  int repeats = 0;
  double min_s = 0.0;
  double mean_s = 0.0;
  double p50_s = 0.0;
};

/// Computes RepeatStats from raw per-repetition seconds (empty input
/// yields a zeroed struct). p50 is the lower median.
RepeatStats SummarizeSeconds(std::vector<double> seconds);

/// Latency distribution of a serving-path run (the `service_latency`
/// scenario): microseconds per operation plus sustained throughput.
/// Additive schema-v1 extension — absent for batch runs.
struct LatencyStats {
  uint64_t ops = 0;
  double p50_us = 0.0;
  double p99_us = 0.0;
  double qps = 0.0;
};

/// Computes LatencyStats from raw per-operation seconds and the total
/// wall time of the measured phase. Percentiles use the nearest-rank
/// method (ceil(p*N)-th smallest). Degenerate windows are well-defined:
/// empty input yields a zeroed struct, a single sample is every
/// percentile, and a non-positive wall time leaves qps at 0.
LatencyStats SummarizeLatency(std::vector<double> op_seconds,
                              double wall_seconds);

/// Persistence axis of a run (the `snapshot_io` scenario): the size of
/// the container on disk plus how long a cold load and the first query
/// after it took. Additive schema-v3 extension — absent elsewhere.
/// `file_bytes` is deterministic for a fixed corpus and compared
/// exactly by bench_compare.py; the timings are threshold-gated like
/// every other wall time.
struct IoStats {
  uint64_t file_bytes = 0;
  double cold_load_s = 0.0;
  double first_query_s = 0.0;
};

/// One step of a pipeline run: what the generator or one stage emitted
/// and the exclusive wall time it spent (eval::StageCounts, serialized).
struct StageTiming {
  std::string name;
  uint64_t blocks = 0;
  uint64_t comparisons = 0;
  uint64_t max_block_size = 0;
  double seconds = 0.0;
};

/// One measured run within a scenario — typically one (technique or
/// pipeline, parameter setting, dataset) combination; roughly one row of
/// the scenario's printed table.
///
/// `params` and `values` are ordered key/value lists so the serialized
/// object keys are stable across runs. `values` carries deterministic
/// scalars (analytic probabilities, deltas, counts) that the compare
/// tool checks exactly; anything timing-flavoured belongs in `time`.
struct RunResult {
  std::string scenario;  ///< registry scenario name (stamped by Record)
  std::string name;      ///< run label, unique within (scenario, dataset)
  std::string spec;      ///< technique/pipeline spec string; "" = n/a
  std::string dataset;   ///< e.g. "cora-like"; "" for analytic runs
  uint64_t dataset_records = 0;
  std::vector<std::pair<std::string, std::string>> params;
  RepeatStats time;
  std::vector<StageTiming> stages;
  bool has_metrics = false;
  eval::Metrics metrics;
  bool has_latency = false;
  LatencyStats latency;
  bool has_io = false;
  IoStats io;
  /// Progressive axis (schema v4): the run's recall@budget curve
  /// (eval::RecallAtBudget output). Deterministic for a fixed corpus and
  /// emission order; compared exactly by bench_compare.py and gated by
  /// its --min-auc flag.
  bool has_recall = false;
  eval::RecallCurve recall;
  std::vector<std::pair<std::string, double>> values;

  void AddParam(std::string key, std::string value) {
    params.emplace_back(std::move(key), std::move(value));
  }
  void AddValue(std::string key, double value) {
    values.emplace_back(std::move(key), value);
  }
};

/// Outcome of one scenario invocation within a suite run.
struct ScenarioOutcome {
  std::string name;
  int exit_code = 0;
  double seconds = 0.0;  ///< scenario wall time (not a measurement)
};

/// Everything one `sablock_bench` invocation measured.
struct SuiteResult {
  std::string tool = "sablock_bench";
  int schema_version = kSchemaVersion;
  bool quick = false;
  int repeat = 1;
  std::vector<ScenarioOutcome> scenarios;
  std::vector<RunResult> runs;
  /// Process-wide metrics snapshot taken after all scenarios ran
  /// (suite-level `metrics` key, schema v2; optional — absent when the
  /// producer predates it or stripped it).
  bool has_metrics_snapshot = false;
  obs::MetricsSnapshot metrics_snapshot;
};

/// JSON (de)serialization. FromJson validates shape and schema_version
/// and reports the first offending key in the Status message.
Json ToJson(const RunResult& run);
Json ToJson(const SuiteResult& suite);
Status RunResultFromJson(const Json& json, RunResult* out);
Status SuiteResultFromJson(const Json& json, SuiteResult* out);

}  // namespace sablock::report

#endif  // SABLOCK_REPORT_RUN_RESULT_H_
