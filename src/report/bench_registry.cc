#include "report/bench_registry.h"

#include <algorithm>

#include "common/check.h"

namespace sablock::report {

BenchRegistry& BenchRegistry::Global() {
  static BenchRegistry* registry = new BenchRegistry();
  return *registry;
}

void BenchRegistry::Register(ScenarioInfo info, Fn fn) {
  SABLOCK_CHECK_MSG(!info.name.empty(), "bench registry: empty name");
  bool inserted = index_.emplace(info.name, entries_.size()).second;
  SABLOCK_CHECK_MSG(inserted, info.name.c_str());
  entries_.emplace_back(std::move(info), std::move(fn));
}

std::vector<ScenarioInfo> BenchRegistry::List() const {
  std::vector<ScenarioInfo> infos;
  infos.reserve(entries_.size());
  for (const auto& [info, fn] : entries_) infos.push_back(info);
  std::sort(infos.begin(), infos.end(),
            [](const ScenarioInfo& a, const ScenarioInfo& b) {
              return a.name < b.name;
            });
  return infos;
}

const BenchRegistry::Fn* BenchRegistry::Find(const std::string& name) const {
  auto it = index_.find(name);
  if (it == index_.end()) return nullptr;
  return &entries_[it->second].second;
}

}  // namespace sablock::report
