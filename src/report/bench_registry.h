#ifndef SABLOCK_REPORT_BENCH_REGISTRY_H_
#define SABLOCK_REPORT_BENCH_REGISTRY_H_

#include <functional>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "report/run_result.h"

namespace sablock::report {

/// Everything a benchmark scenario needs from the runner: the run mode
/// (quick smoke sizes vs. the paper's full sizes), the timing repetition
/// count, numeric command-line overrides, and the sink for RunResults.
class BenchContext {
 public:
  bool quick = false;
  int repeat = 1;

  /// Numeric `--name=value` overrides passed through the runner (e.g.
  /// --cora=500, --voter=2000, --shards=4). Scenario code never parses
  /// argv itself.
  std::map<std::string, size_t> flags;

  /// The scenario being run; stamped onto recorded results.
  std::string scenario;

  /// The size for `flag`: the explicit override when given, otherwise
  /// `quick_size` in quick mode and `full_size` in full mode.
  size_t SizeOr(const std::string& flag, size_t full_size,
                size_t quick_size) const {
    auto it = flags.find(flag);
    if (it != flags.end()) return it->second;
    return quick ? quick_size : full_size;
  }

  /// Records one measured run (stamps the current scenario name).
  void Record(RunResult run) {
    run.scenario = scenario;
    runs_.push_back(std::move(run));
  }

  /// Runs `once` (which returns the seconds of one timed repetition)
  /// `repeat` times and summarizes. The first repetition's index is
  /// passed so callers can keep side outputs from a designated run.
  RepeatStats TimeRepeats(
      const std::function<double(int rep)>& once) const {
    std::vector<double> seconds;
    seconds.reserve(static_cast<size_t>(repeat));
    for (int rep = 0; rep < repeat; ++rep) seconds.push_back(once(rep));
    return SummarizeSeconds(std::move(seconds));
  }

  std::vector<RunResult>& runs() { return runs_; }
  const std::vector<RunResult>& runs() const { return runs_; }

 private:
  std::vector<RunResult> runs_;
};

/// Registry entry metadata for one benchmark scenario.
struct ScenarioInfo {
  std::string name;     ///< e.g. "table3_fig11_baselines"
  std::string summary;  ///< one-line description for --list
  /// The size-override flags this scenario reads via SizeOr (e.g.
  /// "cora", "voter"). The runner validates --NAME=NUMBER arguments
  /// against the union of these, so a declared flag is the only way a
  /// scenario can receive one — mirroring BlockerRegistry's ParamDoc.
  std::vector<std::string> size_flags;
};

/// Maps scenario names to runnable benchmark functions — the benchmark
/// suite's mirror of api::BlockerRegistry. The figure/table experiments
/// in bench/ register themselves here (see bench/all_scenarios.cc) and
/// the single `sablock_bench` runner selects, runs and reports them.
class BenchRegistry {
 public:
  /// A scenario prints its human tables, records RunResults through the
  /// context and returns a process-style exit code (nonzero = the
  /// scenario's own invariant check failed).
  using Fn = std::function<int(BenchContext&)>;

  /// The process-wide registry. Scenarios live outside the library, so
  /// this starts empty; bench::RegisterAllScenarios fills it.
  static BenchRegistry& Global();

  /// Registers a scenario. Duplicate names abort (programming error).
  void Register(ScenarioInfo info, Fn fn);

  /// Entries sorted by name.
  std::vector<ScenarioInfo> List() const;

  /// Exact-name lookup; nullptr when absent.
  const Fn* Find(const std::string& name) const;

 private:
  std::vector<std::pair<ScenarioInfo, Fn>> entries_;
  std::map<std::string, size_t> index_;
};

}  // namespace sablock::report

#endif  // SABLOCK_REPORT_BENCH_REGISTRY_H_
