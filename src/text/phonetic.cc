#include "text/phonetic.h"

#include <cctype>

namespace sablock::text {

namespace {

// Soundex digit for an upper-case letter; '0' for vowels and h/w/y.
char SoundexDigit(char c) {
  switch (c) {
    case 'B':
    case 'F':
    case 'P':
    case 'V':
      return '1';
    case 'C':
    case 'G':
    case 'J':
    case 'K':
    case 'Q':
    case 'S':
    case 'X':
    case 'Z':
      return '2';
    case 'D':
    case 'T':
      return '3';
    case 'L':
      return '4';
    case 'M':
    case 'N':
      return '5';
    case 'R':
      return '6';
    default:
      return '0';
  }
}

std::string UpperAlpha(std::string_view word) {
  std::string out;
  out.reserve(word.size());
  for (char c : word) {
    unsigned char u = static_cast<unsigned char>(c);
    if (std::isalpha(u)) out.push_back(static_cast<char>(std::toupper(u)));
  }
  return out;
}

}  // namespace

std::string Soundex(std::string_view word) {
  std::string w = UpperAlpha(word);
  if (w.empty()) return "0000";
  std::string code;
  code.push_back(w[0]);
  char prev_digit = SoundexDigit(w[0]);
  for (size_t i = 1; i < w.size() && code.size() < 4; ++i) {
    char d = SoundexDigit(w[i]);
    // H and W do not reset the previous digit; vowels do.
    if (w[i] == 'H' || w[i] == 'W') continue;
    if (d != '0' && d != prev_digit) code.push_back(d);
    prev_digit = d;
  }
  while (code.size() < 4) code.push_back('0');
  return code;
}

std::string Nysiis(std::string_view word) {
  std::string w = UpperAlpha(word);
  if (w.empty()) return "";

  auto replace_prefix = [&w](std::string_view from, std::string_view to) {
    if (w.size() >= from.size() && w.compare(0, from.size(), from) == 0) {
      w = std::string(to) + w.substr(from.size());
      return true;
    }
    return false;
  };
  auto replace_suffix = [&w](std::string_view from, std::string_view to) {
    if (w.size() >= from.size() &&
        w.compare(w.size() - from.size(), from.size(), from) == 0) {
      w = w.substr(0, w.size() - from.size()) + std::string(to);
      return true;
    }
    return false;
  };

  // Standard NYSIIS prefix/suffix transformations.
  replace_prefix("MAC", "MCC") || replace_prefix("KN", "NN") ||
      replace_prefix("K", "C") || replace_prefix("PH", "FF") ||
      replace_prefix("PF", "FF") || replace_prefix("SCH", "SSS");
  replace_suffix("EE", "Y") || replace_suffix("IE", "Y") ||
      replace_suffix("DT", "D") || replace_suffix("RT", "D") ||
      replace_suffix("RD", "D") || replace_suffix("NT", "D") ||
      replace_suffix("ND", "D");

  auto is_vowel = [](char c) {
    return c == 'A' || c == 'E' || c == 'I' || c == 'O' || c == 'U';
  };

  std::string code;
  code.push_back(w[0]);
  for (size_t i = 1; i < w.size(); ++i) {
    char cur = w[i];
    std::string repl(1, cur);
    if (i + 1 < w.size() && cur == 'E' && w[i + 1] == 'V') {
      repl = "AF";
      ++i;
    } else if (is_vowel(cur)) {
      repl = "A";
    } else if (cur == 'Q') {
      repl = "G";
    } else if (cur == 'Z') {
      repl = "S";
    } else if (cur == 'M') {
      repl = "N";
    } else if (cur == 'K') {
      repl = (i + 1 < w.size() && w[i + 1] == 'N') ? "N" : "C";
    } else if (i + 2 < w.size() && cur == 'S' && w[i + 1] == 'C' &&
               w[i + 2] == 'H') {
      repl = "SSS";
      i += 2;
    } else if (i + 1 < w.size() && cur == 'P' && w[i + 1] == 'H') {
      repl = "FF";
      ++i;
    } else if (cur == 'H' &&
               (!is_vowel(w[i - 1]) ||
                (i + 1 < w.size() && !is_vowel(w[i + 1])))) {
      // H collapses into the *encoded* previous character (so a vowel
      // before it has already become 'A').
      repl = std::string(1, code.back());
    } else if (cur == 'W' && is_vowel(w[i - 1])) {
      repl = std::string(1, code.back());
    }
    for (char rc : repl) {
      if (code.empty() || code.back() != rc) code.push_back(rc);
    }
  }

  // Suffix cleanup: trailing S, AY -> Y, trailing A.
  if (code.size() > 1 && code.back() == 'S') code.pop_back();
  if (code.size() >= 2 && code.compare(code.size() - 2, 2, "AY") == 0) {
    code = code.substr(0, code.size() - 2) + "Y";
  }
  if (code.size() > 1 && code.back() == 'A') code.pop_back();
  return code;
}

}  // namespace sablock::text
