#ifndef SABLOCK_TEXT_SIMILARITY_H_
#define SABLOCK_TEXT_SIMILARITY_H_

#include <functional>
#include <string>
#include <string_view>

namespace sablock::text {

/// Levenshtein (edit) distance with unit costs.
int EditDistance(std::string_view a, std::string_view b);

/// Edit-distance similarity in [0, 1]: 1 - dist / max(|a|, |b|).
/// Two empty strings are defined to have similarity 1.
double EditSimilarity(std::string_view a, std::string_view b);

/// Jaro similarity in [0, 1].
double JaroSimilarity(std::string_view a, std::string_view b);

/// Jaro-Winkler similarity in [0, 1] with the standard prefix scale 0.1 and
/// max prefix length 4.
double JaroWinklerSimilarity(std::string_view a, std::string_view b);

/// Q-gram similarity: Jaccard coefficient of the padded q-gram sets.
double QGramSimilarity(std::string_view a, std::string_view b, int q);

/// Bigram similarity (q-gram similarity with q = 2), the "bigram" string
/// comparator used in blocking-survey parameter grids.
double BigramSimilarity(std::string_view a, std::string_view b);

/// Longest common substring length.
int LongestCommonSubstring(std::string_view a, std::string_view b);

/// Longest-common-substring similarity: repeatedly removes the longest
/// common substring (of length >= min_len) from both strings and sums the
/// removed lengths; similarity = total / max(|a|, |b|). This is the LCS
/// comparator of the record-linkage literature (Friedman & Sideli style).
double LcsSimilarity(std::string_view a, std::string_view b, int min_len = 2);

/// Token-set Jaccard similarity over whitespace-separated words.
double TokenJaccardSimilarity(std::string_view a, std::string_view b);

/// Exact-match similarity: 1 if equal, else 0.
double ExactSimilarity(std::string_view a, std::string_view b);

/// Named string similarity function, used to sweep comparator choices in the
/// baseline parameter grids (Table 3 reproductions).
using StringSimilarityFn =
    std::function<double(std::string_view, std::string_view)>;

/// Returns the comparator for a grid name: "jaro_winkler", "bigram",
/// "edit", "lcs", "jaccard_token", "exact". Aborts on unknown names.
StringSimilarityFn SimilarityByName(const std::string& name);

}  // namespace sablock::text

#endif  // SABLOCK_TEXT_SIMILARITY_H_
