#include "text/tfidf.h"

#include <algorithm>
#include <cmath>

#include "common/string_util.h"

namespace sablock::text {

double CosineSimilarity(const SparseVector& a, const SparseVector& b) {
  double dot = 0.0;
  size_t i = 0;
  size_t j = 0;
  while (i < a.entries.size() && j < b.entries.size()) {
    if (a.entries[i].first == b.entries[j].first) {
      dot += static_cast<double>(a.entries[i].second) * b.entries[j].second;
      ++i;
      ++j;
    } else if (a.entries[i].first < b.entries[j].first) {
      ++i;
    } else {
      ++j;
    }
  }
  return dot;
}

void TfIdfVectorizer::Build(const std::vector<std::string>& corpus) {
  std::vector<std::vector<std::string>> words;
  words.reserve(corpus.size());
  for (const std::string& doc : corpus) {
    words.push_back(SplitWords(doc));
  }
  BuildFromWords(words);
}

void TfIdfVectorizer::BuildFromWords(
    const std::vector<std::vector<std::string>>& corpus) {
  term_ids_.clear();
  std::vector<uint32_t> doc_freq;
  for (const std::vector<std::string>& doc : corpus) {
    std::vector<std::string> tokens = doc;
    std::sort(tokens.begin(), tokens.end());
    tokens.erase(std::unique(tokens.begin(), tokens.end()), tokens.end());
    for (const std::string& t : tokens) {
      auto [it, inserted] =
          term_ids_.emplace(t, static_cast<uint32_t>(term_ids_.size()));
      if (inserted) {
        doc_freq.push_back(1);
      } else {
        ++doc_freq[it->second];
      }
    }
  }
  idf_.resize(doc_freq.size());
  const double n = static_cast<double>(std::max<size_t>(corpus.size(), 1));
  for (size_t i = 0; i < doc_freq.size(); ++i) {
    idf_[i] = static_cast<float>(std::log(n / (1.0 + doc_freq[i])) + 1.0);
  }
}

SparseVector TfIdfVectorizer::Vectorize(std::string_view document) const {
  return VectorizeWords(SplitWords(document));
}

SparseVector TfIdfVectorizer::VectorizeWords(
    const std::vector<std::string>& words) const {
  std::unordered_map<uint32_t, float> counts;
  for (const std::string& t : words) {
    auto it = term_ids_.find(t);
    if (it != term_ids_.end()) counts[it->second] += 1.0f;
  }
  SparseVector v;
  v.entries.reserve(counts.size());
  double norm_sq = 0.0;
  for (const auto& [term, tf] : counts) {
    float w = tf * idf_[term];
    v.entries.emplace_back(term, w);
    norm_sq += static_cast<double>(w) * w;
  }
  std::sort(v.entries.begin(), v.entries.end());
  if (norm_sq > 0.0) {
    float inv = static_cast<float>(1.0 / std::sqrt(norm_sq));
    for (auto& [term, w] : v.entries) w *= inv;
  }
  return v;
}

}  // namespace sablock::text
