#include "text/similarity.h"

#include <algorithm>
#include <vector>

#include "common/check.h"
#include "common/string_util.h"
#include "text/qgram.h"

namespace sablock::text {

int EditDistance(std::string_view a, std::string_view b) {
  if (a.size() > b.size()) std::swap(a, b);
  const size_t n = a.size();
  const size_t m = b.size();
  if (n == 0) return static_cast<int>(m);
  std::vector<int> row(n + 1);
  for (size_t i = 0; i <= n; ++i) row[i] = static_cast<int>(i);
  for (size_t j = 1; j <= m; ++j) {
    int prev_diag = row[0];
    row[0] = static_cast<int>(j);
    for (size_t i = 1; i <= n; ++i) {
      int del = row[i] + 1;
      int ins = row[i - 1] + 1;
      int sub = prev_diag + (a[i - 1] == b[j - 1] ? 0 : 1);
      prev_diag = row[i];
      row[i] = std::min({del, ins, sub});
    }
  }
  return row[n];
}

double EditSimilarity(std::string_view a, std::string_view b) {
  size_t longest = std::max(a.size(), b.size());
  if (longest == 0) return 1.0;
  return 1.0 - static_cast<double>(EditDistance(a, b)) /
                   static_cast<double>(longest);
}

double JaroSimilarity(std::string_view a, std::string_view b) {
  if (a.empty() && b.empty()) return 1.0;
  if (a.empty() || b.empty()) return 0.0;
  if (a == b) return 1.0;
  const int la = static_cast<int>(a.size());
  const int lb = static_cast<int>(b.size());
  const int window = std::max(0, std::max(la, lb) / 2 - 1);
  std::vector<bool> matched_a(a.size(), false);
  std::vector<bool> matched_b(b.size(), false);
  int matches = 0;
  for (int i = 0; i < la; ++i) {
    int lo = std::max(0, i - window);
    int hi = std::min(lb - 1, i + window);
    for (int j = lo; j <= hi; ++j) {
      if (!matched_b[j] && a[i] == b[j]) {
        matched_a[i] = true;
        matched_b[j] = true;
        ++matches;
        break;
      }
    }
  }
  if (matches == 0) return 0.0;
  // Count transpositions among matched characters.
  int transpositions = 0;
  int j = 0;
  for (int i = 0; i < la; ++i) {
    if (!matched_a[i]) continue;
    while (!matched_b[j]) ++j;
    if (a[i] != b[j]) ++transpositions;
    ++j;
  }
  double m = matches;
  return (m / la + m / lb + (m - transpositions / 2.0) / m) / 3.0;
}

double JaroWinklerSimilarity(std::string_view a, std::string_view b) {
  double jaro = JaroSimilarity(a, b);
  int prefix = 0;
  for (size_t i = 0; i < std::min({a.size(), b.size(), size_t{4}}); ++i) {
    if (a[i] == b[i]) {
      ++prefix;
    } else {
      break;
    }
  }
  return jaro + prefix * 0.1 * (1.0 - jaro);
}

double QGramSimilarity(std::string_view a, std::string_view b, int q) {
  if (a.empty() && b.empty()) return 1.0;
  return JaccardSorted(QGramSet(a, q, /*padded=*/true),
                       QGramSet(b, q, /*padded=*/true));
}

double BigramSimilarity(std::string_view a, std::string_view b) {
  return QGramSimilarity(a, b, 2);
}

int LongestCommonSubstring(std::string_view a, std::string_view b) {
  if (a.empty() || b.empty()) return 0;
  std::vector<int> row(b.size() + 1, 0);
  int best = 0;
  for (size_t i = 1; i <= a.size(); ++i) {
    int prev_diag = 0;
    for (size_t j = 1; j <= b.size(); ++j) {
      int cur = row[j];
      row[j] = (a[i - 1] == b[j - 1]) ? prev_diag + 1 : 0;
      best = std::max(best, row[j]);
      prev_diag = cur;
    }
  }
  return best;
}

namespace {

// Finds the longest common substring and its positions; returns length.
int FindLcsPositions(const std::string& a, const std::string& b, size_t* pa,
                     size_t* pb) {
  if (a.empty() || b.empty()) return 0;
  std::vector<int> row(b.size() + 1, 0);
  int best = 0;
  for (size_t i = 1; i <= a.size(); ++i) {
    int prev_diag = 0;
    for (size_t j = 1; j <= b.size(); ++j) {
      int cur = row[j];
      row[j] = (a[i - 1] == b[j - 1]) ? prev_diag + 1 : 0;
      if (row[j] > best) {
        best = row[j];
        *pa = i - best;
        *pb = j - best;
      }
      prev_diag = cur;
    }
  }
  return best;
}

}  // namespace

double LcsSimilarity(std::string_view a, std::string_view b, int min_len) {
  if (a == b) return 1.0;  // identity, even below min_len
  size_t longest = std::max(a.size(), b.size());
  if (longest == 0) return 1.0;
  // Canonicalize the argument order: repeated longest-substring extraction
  // breaks ties by position, so (a, b) and (b, a) could otherwise remove
  // different fragments and yield asymmetric scores.
  if (b.size() < a.size() || (a.size() == b.size() && b < a)) {
    std::swap(a, b);
  }
  std::string sa(a);
  std::string sb(b);
  double total = 0.0;
  while (true) {
    size_t pa = 0;
    size_t pb = 0;
    int len = FindLcsPositions(sa, sb, &pa, &pb);
    if (len < min_len) break;
    total += len;
    sa.erase(pa, len);
    sb.erase(pb, len);
    if (sa.empty() || sb.empty()) break;
  }
  return total / static_cast<double>(longest);
}

double TokenJaccardSimilarity(std::string_view a, std::string_view b) {
  std::vector<std::string> ta = SplitWords(a);
  std::vector<std::string> tb = SplitWords(b);
  std::sort(ta.begin(), ta.end());
  ta.erase(std::unique(ta.begin(), ta.end()), ta.end());
  std::sort(tb.begin(), tb.end());
  tb.erase(std::unique(tb.begin(), tb.end()), tb.end());
  return JaccardSorted(ta, tb);
}

double ExactSimilarity(std::string_view a, std::string_view b) {
  return a == b ? 1.0 : 0.0;
}

StringSimilarityFn SimilarityByName(const std::string& name) {
  if (name == "jaro_winkler") {
    return [](std::string_view a, std::string_view b) {
      return JaroWinklerSimilarity(a, b);
    };
  }
  if (name == "bigram") {
    return [](std::string_view a, std::string_view b) {
      return BigramSimilarity(a, b);
    };
  }
  if (name == "edit") {
    return [](std::string_view a, std::string_view b) {
      return EditSimilarity(a, b);
    };
  }
  if (name == "lcs") {
    return [](std::string_view a, std::string_view b) {
      return LcsSimilarity(a, b);
    };
  }
  if (name == "jaccard_token") {
    return [](std::string_view a, std::string_view b) {
      return TokenJaccardSimilarity(a, b);
    };
  }
  if (name == "exact") {
    return [](std::string_view a, std::string_view b) {
      return ExactSimilarity(a, b);
    };
  }
  SABLOCK_CHECK_MSG(false, ("unknown similarity function: " + name).c_str());
  return nullptr;
}

}  // namespace sablock::text
