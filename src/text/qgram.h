#ifndef SABLOCK_TEXT_QGRAM_H_
#define SABLOCK_TEXT_QGRAM_H_

#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace sablock::text {

/// Extracts the (overlapping) q-grams of `s`. If `padded`, the string is
/// framed with q-1 copies of '#' / '$' so that prefixes/suffixes form
/// distinguishable grams (the convention used by q-gram blocking indexes).
/// Strings shorter than q yield the whole string as a single gram.
std::vector<std::string> QGrams(std::string_view s, int q,
                                bool padded = false);

/// Sorted, deduplicated q-gram set (the set representation used by Jaccard
/// similarity and shingling).
std::vector<std::string> QGramSet(std::string_view s, int q,
                                  bool padded = false);

/// 64-bit hashes of the distinct q-grams of `s`, sorted and deduplicated.
/// The shingle representation used by minhash (hashing avoids string
/// comparisons in the inner loop).
std::vector<uint64_t> QGramHashes(std::string_view s, int q);

/// Bulk path under QGramHashes: writes HashBytes(s.substr(i, q)) for every
/// window i into `out` (no sort/dedup, no allocation). Requires q >= 1,
/// s.size() >= q and out.size() == s.size() - q + 1. Dispatches to the
/// active SIMD kernel (src/arch/); byte-identical across dispatch levels.
void QGramWindowHashes(std::string_view s, int q, std::span<uint64_t> out);

/// Jaccard coefficient of two sorted, deduplicated sequences.
double JaccardSorted(const std::vector<std::string>& a,
                     const std::vector<std::string>& b);

/// Jaccard coefficient of two sorted, deduplicated hash sequences.
double JaccardSortedHashes(const std::vector<uint64_t>& a,
                           const std::vector<uint64_t>& b);

}  // namespace sablock::text

#endif  // SABLOCK_TEXT_QGRAM_H_
