#include "text/qgram.h"

#include <algorithm>

#include "arch/kernels.h"
#include "common/check.h"
#include "common/hashing.h"

namespace sablock::text {

std::vector<std::string> QGrams(std::string_view s, int q, bool padded) {
  std::vector<std::string> grams;
  if (q <= 0) return grams;
  std::string text;
  if (padded) {
    text.assign(static_cast<size_t>(q - 1), '#');
    text.append(s);
    text.append(static_cast<size_t>(q - 1), '$');
  } else {
    text.assign(s);
  }
  if (text.empty()) return grams;
  if (text.size() < static_cast<size_t>(q)) {
    grams.push_back(text);
    return grams;
  }
  grams.reserve(text.size() - q + 1);
  for (size_t i = 0; i + q <= text.size(); ++i) {
    grams.emplace_back(text.substr(i, q));
  }
  return grams;
}

std::vector<std::string> QGramSet(std::string_view s, int q, bool padded) {
  std::vector<std::string> grams = QGrams(s, q, padded);
  std::sort(grams.begin(), grams.end());
  grams.erase(std::unique(grams.begin(), grams.end()), grams.end());
  return grams;
}

void QGramWindowHashes(std::string_view s, int q, std::span<uint64_t> out) {
  SABLOCK_CHECK(q >= 1 && s.size() >= static_cast<size_t>(q));
  SABLOCK_CHECK(out.size() == s.size() - static_cast<size_t>(q) + 1);
  // HashBytes seeds every chain with basis ^ Mix64(seed); the bulk kernel
  // takes the pre-mixed basis so the per-window loop is pure FNV-1a.
  const uint64_t basis = kFnv1aOffsetBasis ^ Mix64(0);
  arch::ActiveKernels().fnv1a_windows(s.data(), s.size(), q, basis,
                                      out.data());
}

std::vector<uint64_t> QGramHashes(std::string_view s, int q) {
  std::vector<uint64_t> hashes;
  if (q <= 0 || s.empty()) return hashes;
  if (s.size() < static_cast<size_t>(q)) {
    hashes.push_back(HashBytes(s));
    return hashes;
  }
  hashes.resize(s.size() - q + 1);
  QGramWindowHashes(s, q, hashes);
  std::sort(hashes.begin(), hashes.end());
  hashes.erase(std::unique(hashes.begin(), hashes.end()), hashes.end());
  return hashes;
}

namespace {

template <typename T>
double JaccardImpl(const std::vector<T>& a, const std::vector<T>& b) {
  if (a.empty() && b.empty()) return 1.0;
  if (a.empty() || b.empty()) return 0.0;
  size_t i = 0;
  size_t j = 0;
  size_t common = 0;
  while (i < a.size() && j < b.size()) {
    if (a[i] == b[j]) {
      ++common;
      ++i;
      ++j;
    } else if (a[i] < b[j]) {
      ++i;
    } else {
      ++j;
    }
  }
  size_t uni = a.size() + b.size() - common;
  return static_cast<double>(common) / static_cast<double>(uni);
}

}  // namespace

double JaccardSorted(const std::vector<std::string>& a,
                     const std::vector<std::string>& b) {
  return JaccardImpl(a, b);
}

double JaccardSortedHashes(const std::vector<uint64_t>& a,
                           const std::vector<uint64_t>& b) {
  return JaccardImpl(a, b);
}

}  // namespace sablock::text
