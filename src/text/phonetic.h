#ifndef SABLOCK_TEXT_PHONETIC_H_
#define SABLOCK_TEXT_PHONETIC_H_

#include <string>
#include <string_view>

namespace sablock::text {

/// American Soundex code (letter + 3 digits, e.g. "smith" -> "S530").
/// Non-alphabetic characters are ignored; empty input yields "0000".
/// Soundex is the classic phonetic encoding for blocking keys (TBlo).
std::string Soundex(std::string_view word);

/// NYSIIS phonetic code (New York State Identification and Intelligence
/// System), a more discriminating alternative to Soundex used in record
/// linkage. Returns an upper-case code; empty input yields "".
std::string Nysiis(std::string_view word);

}  // namespace sablock::text

#endif  // SABLOCK_TEXT_PHONETIC_H_
