#ifndef SABLOCK_TEXT_TFIDF_H_
#define SABLOCK_TEXT_TFIDF_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace sablock::text {

/// A sparse TF-IDF vector: sorted (term id, weight) entries, L2-normalized.
struct SparseVector {
  std::vector<std::pair<uint32_t, float>> entries;
};

/// Cosine similarity of two L2-normalized sparse vectors.
double CosineSimilarity(const SparseVector& a, const SparseVector& b);

/// Corpus-level TF-IDF vectorizer over whitespace tokens. Build() fixes the
/// vocabulary and document frequencies; Vectorize() then maps any string to
/// an L2-normalized sparse vector (unknown terms are dropped). Used by the
/// canopy-clustering baselines (CaTh / CaNN with "TF-IDF cosine").
class TfIdfVectorizer {
 public:
  /// Builds the vocabulary and IDF table from the corpus documents.
  void Build(const std::vector<std::string>& corpus);

  /// Build() over pre-tokenized documents (each inner vector is one
  /// document's whitespace tokens, duplicates included). Callers that
  /// already tokenized — e.g. via the feature store's token columns —
  /// avoid a second SplitWords pass per document.
  void BuildFromWords(const std::vector<std::vector<std::string>>& corpus);

  /// Vectorizes one document against the built vocabulary.
  SparseVector Vectorize(std::string_view document) const;

  /// Vectorize() over a pre-tokenized document (duplicates included —
  /// term frequency counts them).
  SparseVector VectorizeWords(const std::vector<std::string>& words) const;

  /// Number of distinct terms in the vocabulary.
  size_t vocabulary_size() const { return idf_.size(); }

 private:
  std::unordered_map<std::string, uint32_t> term_ids_;
  std::vector<float> idf_;
};

}  // namespace sablock::text

#endif  // SABLOCK_TEXT_TFIDF_H_
