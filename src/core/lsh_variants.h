#ifndef SABLOCK_CORE_LSH_VARIANTS_H_
#define SABLOCK_CORE_LSH_VARIANTS_H_

#include <string>
#include <vector>

#include "core/blocking.h"
#include "core/lsh_blocker.h"

namespace sablock::core {

/// Multi-probe LSH blocking (Lv et al., VLDB 2007 — the paper's Related
/// Work [29]): instead of adding hash tables to raise recall, each record
/// also probes "near-by" buckets of the tables it has. For minhash
/// banding, the natural probing sequence perturbs one band row at a time
/// from the row's minimum to its second-smallest hash value; records whose
/// probe sets intersect share a block.
///
/// The practical effect reproduced here: MP-LSH with l' < l tables and a
/// few probes reaches the recall of plain LSH with l tables while using
/// less table memory (the variant's original selling point).
class MultiProbeLshBlocker : public BlockingTechnique {
 public:
  /// `num_probes` extra buckets per table (0 = plain LSH; capped at k).
  MultiProbeLshBlocker(LshParams params, int num_probes);

  std::string name() const override;
  using BlockingTechnique::Run;
  void Run(const data::Dataset& dataset, BlockSink& sink) const override;

 private:
  LshParams params_;
  int num_probes_;
};

/// LSH-forest blocking (Bawa et al., WWW 2005 — Related Work [5]): each of
/// the l trees stores records keyed by the *sequence* of minhash values
/// (a logical prefix tree of depth up to `max_depth`). Groups are split by
/// the next hash row only while they exceed `max_block_size`, so the
/// effective number of hash functions per tree is self-tuning: dense
/// regions use long prefixes (high precision), sparse regions short ones
/// (high recall) — no fixed k to choose.
class LshForestBlocker : public BlockingTechnique {
 public:
  LshForestBlocker(LshParams params, int max_depth, size_t max_block_size);

  std::string name() const override;
  using BlockingTechnique::Run;
  void Run(const data::Dataset& dataset, BlockSink& sink) const override;

 private:
  LshParams params_;  // params_.k is ignored; depth is adaptive
  int max_depth_;
  size_t max_block_size_;
};

/// Computes, for every record, the per-row (minimum, second-minimum)
/// minhash values; used by the multi-probe blocker and exposed for tests.
/// Rows of empty shingle sets hold (kEmptySlot, kEmptySlot).
void ComputeTop2MinhashSignatures(
    const data::Dataset& dataset, const LshParams& params,
    std::vector<std::vector<uint64_t>>* min1,
    std::vector<std::vector<uint64_t>>* min2);

}  // namespace sablock::core

#endif  // SABLOCK_CORE_LSH_VARIANTS_H_
