#include "core/domains.h"

#include "common/check.h"

namespace sablock::core {

namespace {

using Pred = AttributePredicate;

Taxonomy MakeBibVariant(BibVariant variant) {
  switch (variant) {
    case BibVariant::kFull:
      return MakeBibliographicTaxonomy();
    case BibVariant::kNoReviewLevel:
      return MakeBibliographicTaxonomyNoReviewLevel();
    case BibVariant::kNoBook:
      return MakeBibliographicTaxonomyNoBook();
    case BibVariant::kNoJournal:
      return MakeBibliographicTaxonomyNoJournal();
  }
  SABLOCK_CHECK(false);
  return MakeBibliographicTaxonomy();
}

}  // namespace

Domain MakeBibliographicDomain(BibVariant variant) {
  // Missing-value patterns of Table 1 over journal/booktitle/institution.
  std::vector<SemanticRule> rules;
  auto add = [&rules](bool journal, bool booktitle, bool institution,
                      std::vector<std::string> concepts) {
    SemanticRule rule;
    rule.conditions.push_back(journal ? Pred::Present("journal")
                                      : Pred::Missing("journal"));
    rule.conditions.push_back(booktitle ? Pred::Present("booktitle")
                                        : Pred::Missing("booktitle"));
    rule.conditions.push_back(institution ? Pred::Present("institution")
                                          : Pred::Missing("institution"));
    rule.concepts = std::move(concepts);
    rules.push_back(std::move(rule));
  };
  add(true, true, true, {"C3", "C4", "C6"});    // pattern 1
  add(true, true, false, {"C3", "C4"});         // pattern 2
  add(true, false, true, {"C3", "C6"});         // pattern 3
  add(true, false, false, {"C3"});              // pattern 4
  add(false, true, true, {"C4", "C7", "C8"});   // pattern 5
  add(false, true, false, {"C4"});              // pattern 6
  add(false, false, true, {"C7", "C8"});        // pattern 7
  add(false, false, false, {"C1"});             // pattern 8

  // Parent fallbacks for taxonomy variants with missing concepts.
  std::unordered_map<std::string, std::string> fallback = {
      {"C3", "C2"}, {"C4", "C2"}, {"C5", "C2"}, {"C7", "C6"}, {"C8", "C6"},
      {"C2", "C1"}, {"C6", "C1"}, {"C1", "C0"}, {"C9", "C0"},
  };

  Domain domain;
  domain.semantics = std::make_shared<RuleSemanticFunction>(
      MakeBibVariant(variant), std::move(rules), std::move(fallback));
  domain.blocking_attributes = {"authors", "title"};
  return domain;
}

const std::vector<std::string>& VoterRaceCodes() {
  static const std::vector<std::string> kRaces = {"w", "b", "a",
                                                  "i", "o", "h"};
  return kRaces;
}

Domain MakeVoterDomain() {
  Taxonomy t;
  ConceptId person = t.AddConcept("person");
  ConceptId male = t.AddConcept("male", person);
  ConceptId female = t.AddConcept("female", person);
  for (const std::string& race : VoterRaceCodes()) {
    t.AddConcept("male_" + race, male);
  }
  for (const std::string& race : VoterRaceCodes()) {
    t.AddConcept("female_" + race, female);
  }
  t.Finalize();

  std::vector<SemanticRule> rules;
  // Most specific first: known gender and race.
  for (const std::string& g : {std::string("m"), std::string("f")}) {
    const std::string gender_node = (g == "m") ? "male" : "female";
    for (const std::string& race : VoterRaceCodes()) {
      SemanticRule rule;
      rule.conditions = {Pred::Equals("gender", g),
                         Pred::Equals("race", race)};
      rule.concepts = {gender_node + "_" + race};
      rules.push_back(std::move(rule));
    }
  }
  // Known gender, unknown/uncertain race -> the gender node.
  for (const std::string& g : {std::string("m"), std::string("f")}) {
    SemanticRule rule;
    rule.conditions = {Pred::Equals("gender", g)};
    rule.concepts = {(g == "m") ? "male" : "female"};
    rules.push_back(std::move(rule));
  }
  // Unknown gender, known race -> that race's leaf under both genders.
  for (const std::string& race : VoterRaceCodes()) {
    SemanticRule rule;
    rule.conditions = {Pred::Equals("race", race)};
    rule.concepts = {"male_" + race, "female_" + race};
    rules.push_back(std::move(rule));
  }
  // Nothing usable -> the root (fully ambiguous).
  rules.push_back(SemanticRule{{}, {"person"}});

  Domain domain;
  domain.semantics = std::make_shared<RuleSemanticFunction>(
      std::move(t), std::move(rules));
  domain.blocking_attributes = {"first_name", "last_name"};
  return domain;
}

}  // namespace sablock::core
