#include "core/blocking.h"

#include <algorithm>

namespace sablock::core {

void BlockCollection::Drain(BlockSink& sink) {
  for (Block& b : blocks_) {
    if (sink.Done()) break;
    sink.Consume(std::move(b));
  }
  blocks_.clear();
}

uint64_t BlockCollection::TotalComparisons() const {
  uint64_t total = 0;
  for (const Block& b : blocks_) {
    uint64_t n = b.size();
    total += n * (n - 1) / 2;
  }
  return total;
}

uint64_t BlockCollection::TotalBlockSizes() const {
  uint64_t total = 0;
  for (const Block& b : blocks_) total += b.size();
  return total;
}

size_t BlockCollection::MaxBlockSize() const {
  size_t max_size = 0;
  for (const Block& b : blocks_) max_size = std::max(max_size, b.size());
  return max_size;
}

PairSet BlockCollection::DistinctPairs() const {
  // Cap the initial reservation; heavily overlapping collections can report
  // far more comparisons than distinct pairs, and the set grows on demand.
  PairSet pairs(std::min<uint64_t>(TotalComparisons() + 1, 1ULL << 22));
  for (const Block& b : blocks_) {
    for (size_t i = 0; i < b.size(); ++i) {
      for (size_t j = i + 1; j < b.size(); ++j) {
        if (b[i] != b[j]) pairs.Insert(b[i], b[j]);
      }
    }
  }
  return pairs;
}

BlockCollection BlockingTechnique::Run(const data::Dataset& dataset) const {
  BlockCollection blocks;
  Run(dataset, blocks);
  return blocks;
}

bool BlockCollection::InSameBlock(data::RecordId a, data::RecordId b) const {
  for (const Block& block : blocks_) {
    bool has_a = false;
    bool has_b = false;
    for (data::RecordId id : block) {
      has_a |= (id == a);
      has_b |= (id == b);
    }
    if (has_a && has_b) return true;
  }
  return false;
}

}  // namespace sablock::core
