#include "core/semantic.h"

#include "common/check.h"

namespace sablock::core {

std::vector<std::vector<ConceptId>> SemanticFunction::InterpretAll(
    const data::Dataset& dataset) const {
  std::vector<std::vector<ConceptId>> out;
  out.reserve(dataset.size());
  for (data::RecordId id = 0; id < dataset.size(); ++id) {
    out.push_back(Interpret(dataset, id));
  }
  return out;
}

RuleSemanticFunction::RuleSemanticFunction(
    Taxonomy taxonomy, std::vector<SemanticRule> rules,
    std::unordered_map<std::string, std::string> fallback,
    bool accumulate_matches)
    : taxonomy_(std::move(taxonomy)), accumulate_matches_(accumulate_matches) {
  SABLOCK_CHECK_MSG(taxonomy_.finalized(),
                    "taxonomy must be finalized before building rules");
  rules_.reserve(rules.size());
  for (SemanticRule& rule : rules) {
    ResolvedRule resolved;
    resolved.conditions = std::move(rule.conditions);
    for (const std::string& name : rule.concepts) {
      ConceptId id = ResolveName(name, fallback);
      if (id != kInvalidConcept) resolved.concepts.push_back(id);
    }
    rules_.push_back(std::move(resolved));
  }
}

ConceptId RuleSemanticFunction::ResolveName(
    const std::string& name,
    const std::unordered_map<std::string, std::string>& fallback) const {
  std::string current = name;
  // Walk the fallback chain until the concept exists in the taxonomy; bound
  // the walk to avoid cycles in a malformed fallback map.
  for (size_t hops = 0; hops <= fallback.size(); ++hops) {
    ConceptId id = taxonomy_.Find(current);
    if (id != kInvalidConcept) return id;
    auto it = fallback.find(current);
    if (it == fallback.end()) return kInvalidConcept;
    current = it->second;
  }
  return kInvalidConcept;
}

std::vector<ConceptId> RuleSemanticFunction::Interpret(
    const data::Dataset& dataset, data::RecordId id) const {
  std::vector<ConceptId> zeta;
  for (const ResolvedRule& rule : rules_) {
    bool matches = true;
    for (const AttributePredicate& pred : rule.conditions) {
      std::string_view v = dataset.Value(id, pred.attribute);
      switch (pred.kind) {
        case AttributePredicate::Kind::kPresent:
          matches = !v.empty();
          break;
        case AttributePredicate::Kind::kMissing:
          matches = v.empty();
          break;
        case AttributePredicate::Kind::kEquals:
          matches = (v == pred.value);
          break;
      }
      if (!matches) break;
    }
    if (matches) {
      zeta.insert(zeta.end(), rule.concepts.begin(), rule.concepts.end());
      if (!accumulate_matches_) break;
    }
  }
  taxonomy_.PruneToMostSpecific(&zeta);
  return zeta;
}

}  // namespace sablock::core
