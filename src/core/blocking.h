#ifndef SABLOCK_CORE_BLOCKING_H_
#define SABLOCK_CORE_BLOCKING_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/pair_set.h"
#include "core/block_sink.h"
#include "data/record.h"

namespace sablock::core {

/// A materialized set of possibly overlapping blocks — the collecting
/// BlockSink. Provides the candidate-pair views needed by the evaluation
/// measures: Γ (distinct pairs), Γm (all pairs, counting redundancy across
/// blocks).
class BlockCollection : public BlockSink {
 public:
  BlockCollection() = default;

  /// Adds a block; blocks with fewer than 2 records produce no comparisons
  /// but are kept for bookkeeping (callers usually skip adding them).
  void Add(Block block) { blocks_.push_back(std::move(block)); }

  /// BlockSink: collecting a block is the same as adding it.
  void Consume(Block block) override { blocks_.push_back(std::move(block)); }

  /// Moves every stored block into `sink` (stopping early if the sink
  /// reports Done) and leaves this collection empty. Lets techniques that
  /// must materialize intermediate results (transitive closure,
  /// meta-blocking graphs) still emit through the streaming interface.
  void Drain(BlockSink& sink);

  size_t NumBlocks() const { return blocks_.size(); }
  const std::vector<Block>& blocks() const { return blocks_; }

  /// Σ_b |b|(|b|-1)/2 — the redundancy-counting comparison count |Γm|.
  uint64_t TotalComparisons() const;

  /// Σ_b |b| — total block-membership count (used by meta-blocking's CEP
  /// and CNP cardinality budgets).
  uint64_t TotalBlockSizes() const;

  /// Size of the largest block.
  size_t MaxBlockSize() const;

  /// Set of distinct candidate pairs Γ (the blocking function θB of Eq. 2
  /// returns 1 exactly for the pairs in this set).
  PairSet DistinctPairs() const;

  /// True if some block contains both records (θB). Linear scan; intended
  /// for tests and small collections — use DistinctPairs() for bulk work.
  bool InSameBlock(data::RecordId a, data::RecordId b) const;

 private:
  std::vector<Block> blocks_;
};

/// Interface implemented by every blocking technique in the library (the
/// paper's SA-LSH and all baselines), so the evaluation harness can sweep
/// them uniformly.
///
/// The streaming Run(dataset, sink) is the primary virtual: techniques emit
/// each block as it is built and poll sink.Done() to stop early. The
/// materializing Run(dataset) wrapper is deprecated (removal after one
/// release): collect explicitly through a BlockCollection sink instead, so
/// the call site states where materialization happens.
class BlockingTechnique {
 public:
  virtual ~BlockingTechnique() = default;

  /// Short identifier, e.g. "SA-LSH" or "SorA(w=3)".
  virtual std::string name() const = 0;

  /// Builds the blocks for a dataset, emitting each through `sink`.
  virtual void Run(const data::Dataset& dataset, BlockSink& sink) const = 0;

  /// Builds and materializes all blocks (collecting-sink wrapper).
  [[deprecated(
      "collect through a BlockCollection sink: Run(dataset, collection)")]]
  BlockCollection Run(const data::Dataset& dataset) const;
};

}  // namespace sablock::core

#endif  // SABLOCK_CORE_BLOCKING_H_
