#ifndef SABLOCK_CORE_MINHASH_H_
#define SABLOCK_CORE_MINHASH_H_

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "common/hashing.h"
#include "data/record.h"

namespace sablock::core {

/// Minhash signature generator (Section 5.1, step 2). Permutations are
/// simulated with a 2-universal hash family over 64-bit shingle hashes; the
/// i-th signature element of a shingle set S is min_{x ∈ S} h_i(x).
///
/// For two records, P[sig_i equal] ≈ Jaccard(S1, S2), so signatures
/// approximately preserve textual similarity.
class MinHasher {
 public:
  /// `num_hashes` is typically k·l for a banded LSH index.
  MinHasher(int num_hashes, uint64_t seed);

  int num_hashes() const { return static_cast<int>(a_.size()); }

  /// Sentinel signature value of an empty shingle set (all hash functions
  /// return this maximum); empty records are excluded from LSH tables.
  static constexpr uint64_t kEmptySlot = UniversalHash::kPrime;

  /// Computes the minhash signature of a shingle set into a caller-owned
  /// buffer of exactly num_hashes() slots — no allocation. Dispatches to
  /// the active SIMD kernel (see src/arch/); results are byte-identical
  /// across dispatch levels.
  void SignatureInto(std::span<const uint64_t> shingles,
                     std::span<uint64_t> out) const;

  /// Computes the minhash signature of a shingle set (allocating wrapper
  /// over SignatureInto).
  std::vector<uint64_t> Signature(std::span<const uint64_t> shingles) const;

  /// Fraction of agreeing positions — an unbiased estimate of the Jaccard
  /// similarity of the underlying shingle sets.
  static double EstimateJaccard(std::span<const uint64_t> a,
                                std::span<const uint64_t> b);

 private:
  // Hash-family parameters in structure-of-arrays layout so the batched
  // kernels can load 2/4 (a, b) pairs per vector register.
  std::vector<uint64_t> a_;
  std::vector<uint64_t> b_;
};

/// Converts records to textual shingle sets (Section 5.1, step 1):
/// the values of the selected attributes are concatenated, normalized
/// (lower-case, alphanumeric) and cut into distinct hashed q-grams.
///
/// Backed by the dataset's shared FeatureStore: the shingle sets for an
/// (attributes, q) selection are computed once per dataset and reused by
/// every technique (and every engine shard) that asks again. Returned
/// references stay valid as long as some dataset sharing the store lives.
class Shingler {
 public:
  Shingler(std::vector<std::string> attributes, int q)
      : attributes_(std::move(attributes)), q_(q) {}

  /// Sorted distinct 64-bit shingle hashes of one record, computed
  /// directly (one-shot probe — does not build or touch the dataset's
  /// feature cache; bulk consumers use ShingleAll or a
  /// FeatureView::ShingleHandle).
  std::vector<uint64_t> Shingles(const data::Dataset& dataset,
                                 data::RecordId id) const;

  /// Shingles every record (copies out of the cache).
  std::vector<std::vector<uint64_t>> ShingleAll(
      const data::Dataset& dataset) const;

  int q() const { return q_; }
  const std::vector<std::string>& attributes() const { return attributes_; }

 private:
  std::vector<std::string> attributes_;
  int q_;
};

}  // namespace sablock::core

#endif  // SABLOCK_CORE_MINHASH_H_
