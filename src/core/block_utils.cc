#include "core/block_utils.h"

#include <algorithm>
#include <cmath>
#include <unordered_map>
#include <vector>

#include "common/check.h"
#include "common/pair_set.h"

namespace sablock::core {

BlockCollection PurgeLargeBlocks(const BlockCollection& blocks,
                                 size_t max_block_size) {
  SABLOCK_CHECK(max_block_size >= 2);
  BlockCollection out;
  for (const Block& b : blocks.blocks()) {
    if (b.size() <= max_block_size) out.Add(b);
  }
  return out;
}

BlockCollection FilterBlocksPerRecord(const BlockCollection& blocks,
                                      double ratio) {
  SABLOCK_CHECK(ratio > 0.0 && ratio <= 1.0);
  // Rank each record's blocks by size (ascending) and mark the retained
  // (record, block) incidences.
  std::unordered_map<data::RecordId, std::vector<size_t>> memberships;
  for (size_t bi = 0; bi < blocks.blocks().size(); ++bi) {
    for (data::RecordId id : blocks.blocks()[bi]) {
      memberships[id].push_back(bi);
    }
  }
  // retained[bi] lists the records that kept block bi.
  std::unordered_map<size_t, Block> retained;
  for (auto& [id, bis] : memberships) {
    std::sort(bis.begin(), bis.end(), [&blocks](size_t a, size_t b) {
      return blocks.blocks()[a].size() < blocks.blocks()[b].size();
    });
    size_t keep = static_cast<size_t>(
        std::ceil(ratio * static_cast<double>(bis.size())));
    if (keep == 0) keep = 1;
    for (size_t i = 0; i < keep && i < bis.size(); ++i) {
      retained[bis[i]].push_back(id);
    }
  }
  BlockCollection out;
  for (auto& [bi, block] : retained) {
    if (block.size() >= 2) {
      std::sort(block.begin(), block.end());
      out.Add(std::move(block));
    }
  }
  return out;
}

BlockCollection DropRedundantBlocks(const BlockCollection& blocks) {
  // Sort block indices by size ascending so that smaller blocks claim
  // pairs first; a block is redundant iff it introduces no new pair.
  std::vector<size_t> order(blocks.blocks().size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&blocks](size_t a, size_t b) {
    return blocks.blocks()[a].size() < blocks.blocks()[b].size();
  });

  PairSet seen(std::min<uint64_t>(blocks.TotalComparisons() + 1, 1ULL << 22));
  BlockCollection out;
  for (size_t bi : order) {
    const Block& b = blocks.blocks()[bi];
    bool adds_new = false;
    for (size_t i = 0; i < b.size(); ++i) {
      for (size_t j = i + 1; j < b.size(); ++j) {
        if (b[i] != b[j] && !seen.Contains(b[i], b[j])) {
          adds_new = true;
          break;
        }
      }
      if (adds_new) break;
    }
    if (!adds_new) continue;
    for (size_t i = 0; i < b.size(); ++i) {
      for (size_t j = i + 1; j < b.size(); ++j) {
        if (b[i] != b[j]) seen.Insert(b[i], b[j]);
      }
    }
    out.Add(b);
  }
  return out;
}

namespace {

// Union-find with path halving.
class DisjointSets {
 public:
  explicit DisjointSets(size_t n) : parent_(n) {
    for (size_t i = 0; i < n; ++i) parent_[i] = static_cast<uint32_t>(i);
  }

  uint32_t Find(uint32_t x) {
    while (parent_[x] != x) {
      parent_[x] = parent_[parent_[x]];
      x = parent_[x];
    }
    return x;
  }

  void Union(uint32_t a, uint32_t b) { parent_[Find(a)] = Find(b); }

 private:
  std::vector<uint32_t> parent_;
};

}  // namespace

BlockCollection ConnectedComponents(const BlockCollection& blocks,
                                    size_t num_records) {
  DisjointSets sets(num_records);
  for (const Block& b : blocks.blocks()) {
    for (size_t i = 1; i < b.size(); ++i) {
      SABLOCK_DCHECK(b[i] < num_records);
      sets.Union(b[0], b[i]);
    }
  }
  std::unordered_map<uint32_t, Block> components;
  // Only records that appear in some block belong to a component.
  for (const Block& b : blocks.blocks()) {
    for (data::RecordId id : b) {
      Block& component = components[sets.Find(id)];
      if (component.empty() || component.back() != id) {
        component.push_back(id);
      }
    }
  }
  BlockCollection out;
  for (auto& [root, component] : components) {
    std::sort(component.begin(), component.end());
    component.erase(std::unique(component.begin(), component.end()),
                    component.end());
    if (component.size() >= 2) out.Add(std::move(component));
  }
  return out;
}

}  // namespace sablock::core
