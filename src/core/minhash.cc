#include "core/minhash.h"

#include "arch/kernels.h"
#include "common/check.h"
#include "features/feature_store.h"
#include "text/qgram.h"

namespace sablock::core {

MinHasher::MinHasher(int num_hashes, uint64_t seed) {
  SABLOCK_CHECK(num_hashes > 0);
  a_.reserve(static_cast<size_t>(num_hashes));
  b_.reserve(static_cast<size_t>(num_hashes));
  for (int i = 0; i < num_hashes; ++i) {
    UniversalHash h = UniversalHash::FromSeed(seed, static_cast<uint64_t>(i));
    a_.push_back(h.a());
    b_.push_back(h.b());
  }
}

void MinHasher::SignatureInto(std::span<const uint64_t> shingles,
                              std::span<uint64_t> out) const {
  SABLOCK_CHECK(out.size() == a_.size());
  arch::ActiveKernels().minhash_signature(shingles.data(), shingles.size(),
                                          a_.data(), b_.data(), a_.size(),
                                          out.data());
}

std::vector<uint64_t> MinHasher::Signature(
    std::span<const uint64_t> shingles) const {
  std::vector<uint64_t> sig(a_.size());
  SignatureInto(shingles, sig);
  return sig;
}

double MinHasher::EstimateJaccard(std::span<const uint64_t> a,
                                  std::span<const uint64_t> b) {
  SABLOCK_CHECK(a.size() == b.size() && !a.empty());
  size_t agree = 0;
  for (size_t i = 0; i < a.size(); ++i) {
    if (a[i] == b[i]) ++agree;
  }
  return static_cast<double>(agree) / static_cast<double>(a.size());
}

std::vector<uint64_t> Shingler::Shingles(const data::Dataset& dataset,
                                         data::RecordId id) const {
  // One-shot path: shingle this record directly — building (and caching)
  // the full-dataset column for a single probe would be O(records); bulk
  // consumers go through ShingleAll or a FeatureView::ShingleHandle.
  return text::QGramHashes(dataset.ConcatenatedValues(id, attributes_), q_);
}

std::vector<std::vector<uint64_t>> Shingler::ShingleAll(
    const data::Dataset& dataset) const {
  features::FeatureView::ShingleHandle shingles =
      dataset.features().ShinglesFor(attributes_, q_);
  std::vector<std::vector<uint64_t>> out;
  out.reserve(dataset.size());
  for (data::RecordId id = 0; id < dataset.size(); ++id) {
    out.push_back(shingles.Shingles(id));
  }
  return out;
}

}  // namespace sablock::core
