#include "core/lsh_blocker.h"

#include <algorithm>
#include <unordered_map>

#include "common/check.h"
#include "common/hashing.h"
#include "common/random.h"
#include "features/feature_store.h"

namespace sablock::core {

uint64_t LshBandKey(std::span<const uint64_t> sig, int table, int k) {
  uint64_t key = Mix64(0x5ab10c0 + static_cast<uint64_t>(table));
  for (int r = 0; r < k; ++r) {
    key = HashCombine(key, sig[static_cast<size_t>(table) * k + r]);
  }
  return key;
}

bool IsEmptyMinhashSignature(std::span<const uint64_t> sig) {
  return sig.empty() || sig[0] == MinHasher::kEmptySlot;
}

std::vector<size_t> SemanticTableChoices(const SemanticParams& params,
                                         uint32_t dim, int table) {
  // Draw this table's w-way semantic hash function: w distinct semhash
  // functions chosen uniformly at random (Section 5.2).
  const size_t w = static_cast<size_t>(
      std::min(params.w, static_cast<int>(dim)));  // clamp to |G|
  Rng rng(Mix64(params.seed) ^ Mix64(0x7ab1e + table));
  return rng.SampleIndices(dim, w);
}

void AppendSemanticBucketKeys(uint64_t band, const SemSignature& sem,
                              SemanticMode mode,
                              const std::vector<size_t>& chosen,
                              std::vector<uint64_t>* keys) {
  if (mode == SemanticMode::kAnd) {
    for (size_t f : chosen) {
      if (!sem.Get(static_cast<uint32_t>(f))) return;
    }
    keys->push_back(band);
  } else {
    for (size_t f : chosen) {
      if (sem.Get(static_cast<uint32_t>(f))) {
        keys->push_back(HashCombine(band, 0xfeed0000 + f));
      }
    }
  }
}

namespace {

void EmitBlocks(std::unordered_map<uint64_t, Block>&& buckets,
                BlockSink& sink) {
  for (auto& [key, block] : buckets) {
    if (sink.Done()) return;
    if (block.size() >= 2) sink.Consume(std::move(block));
  }
}

}  // namespace

features::FeatureView::SignatureHandle MinhashSignatures(
    const data::Dataset& dataset, const LshParams& params) {
  SABLOCK_CHECK(params.k > 0 && params.l > 0);
  return dataset.features().SignaturesFor(params.attributes, params.q,
                                          params.k * params.l, params.seed);
}

std::vector<std::vector<uint64_t>> ComputeMinhashSignatures(
    const data::Dataset& dataset, const LshParams& params) {
  features::FeatureView::SignatureHandle cached =
      MinhashSignatures(dataset, params);
  std::vector<std::vector<uint64_t>> sigs;
  sigs.reserve(dataset.size());
  for (data::RecordId id = 0; id < dataset.size(); ++id) {
    std::span<const uint64_t> s = cached.Signature(id);
    sigs.emplace_back(s.begin(), s.end());
  }
  return sigs;
}

LshBlocker::LshBlocker(LshParams params) : params_(std::move(params)) {}

std::string LshBlocker::name() const {
  return "LSH(k=" + std::to_string(params_.k) +
         ",l=" + std::to_string(params_.l) + ")";
}

void LshBlocker::Run(const data::Dataset& dataset, BlockSink& sink) const {
  features::FeatureView::SignatureHandle sigs =
      MinhashSignatures(dataset, params_);
  for (int t = 0; t < params_.l; ++t) {
    if (sink.Done()) return;
    std::unordered_map<uint64_t, Block> buckets;
    buckets.reserve(dataset.size());
    for (data::RecordId id = 0; id < dataset.size(); ++id) {
      if (IsEmptyMinhashSignature(sigs.Signature(id))) continue;
      buckets[LshBandKey(sigs.Signature(id), t, params_.k)].push_back(id);
    }
    EmitBlocks(std::move(buckets), sink);
  }
}

SemanticAwareLshBlocker::SemanticAwareLshBlocker(
    LshParams lsh_params, SemanticParams sem_params,
    std::shared_ptr<const SemanticFunction> semantics)
    : lsh_params_(std::move(lsh_params)),
      sem_params_(sem_params),
      semantics_(std::move(semantics)) {
  SABLOCK_CHECK(semantics_ != nullptr);
  SABLOCK_CHECK(sem_params_.w >= 1);
}

std::string SemanticAwareLshBlocker::name() const {
  return "SA-LSH(k=" + std::to_string(lsh_params_.k) +
         ",l=" + std::to_string(lsh_params_.l) +
         ",w=" + std::to_string(sem_params_.w) +
         (sem_params_.mode == SemanticMode::kAnd ? ",AND)" : ",OR)");
}

void SemanticAwareLshBlocker::Run(const data::Dataset& dataset,
                                  BlockSink& sink) const {
  features::FeatureView::SignatureHandle sigs =
      MinhashSignatures(dataset, lsh_params_);

  const Taxonomy& taxonomy = semantics_->taxonomy();
  std::vector<std::vector<ConceptId>> zetas =
      semantics_->InterpretAll(dataset);
  SemhashEncoder encoder = SemhashEncoder::Build(taxonomy, zetas);
  std::vector<SemSignature> sem_sigs = encoder.EncodeAll(taxonomy, zetas);

  const uint32_t dim = encoder.dimension();
  // Degenerate case: no record has any semantic feature. The semantic
  // filter cannot distinguish records; fall back to textual blocking only.
  if (dim == 0) {
    LshBlocker(lsh_params_).Run(dataset, sink);
    return;
  }
  std::vector<uint64_t> keys;
  for (int t = 0; t < lsh_params_.l; ++t) {
    if (sink.Done()) return;
    std::vector<size_t> chosen = SemanticTableChoices(sem_params_, dim, t);

    std::unordered_map<uint64_t, Block> buckets;
    buckets.reserve(dataset.size());
    for (data::RecordId id = 0; id < dataset.size(); ++id) {
      if (IsEmptyMinhashSignature(sigs.Signature(id))) continue;
      uint64_t band = LshBandKey(sigs.Signature(id), t, lsh_params_.k);
      keys.clear();
      AppendSemanticBucketKeys(band, sem_sigs[id], sem_params_.mode, chosen,
                               &keys);
      for (uint64_t key : keys) buckets[key].push_back(id);
    }
    EmitBlocks(std::move(buckets), sink);
  }
}

}  // namespace sablock::core
