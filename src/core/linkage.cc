#include "core/linkage.h"

#include <algorithm>
#include <unordered_map>
#include <utility>

#include "common/check.h"

namespace sablock::core {

LinkageDataset MergeForLinkage(const data::Dataset& a,
                               const data::Dataset& b) {
  SABLOCK_CHECK_MSG(a.schema().names() == b.schema().names(),
                    "linkage requires identical schemas");
  LinkageDataset out;
  out.merged = data::Dataset(a.schema());
  for (data::RecordId id = 0; id < a.size(); ++id) {
    out.merged.AddRow(a.Values(id), a.entity(id));
  }
  out.boundary = static_cast<data::RecordId>(a.size());
  for (data::RecordId id = 0; id < b.size(); ++id) {
    out.merged.AddRow(b.Values(id), b.entity(id));
  }
  return out;
}

BlockCollection CrossSourceBlocks(const BlockCollection& blocks,
                                  data::RecordId boundary) {
  // Deduplicate cross pairs across blocks so the output is minimal.
  PairSet seen(std::min<uint64_t>(blocks.TotalComparisons() + 1, 1ULL << 22));
  BlockCollection out;
  for (const Block& block : blocks.blocks()) {
    for (data::RecordId x : block) {
      if (x >= boundary) continue;
      for (data::RecordId y : block) {
        if (y < boundary) continue;
        if (seen.Insert(x, y)) out.Add({x, y});
      }
    }
  }
  return out;
}

uint64_t CountCrossTrueMatches(const LinkageDataset& linkage) {
  // Count per-entity record multiplicities on each side.
  std::unordered_map<data::EntityId, std::pair<uint64_t, uint64_t>> counts;
  for (data::RecordId id = 0; id < linkage.merged.size(); ++id) {
    data::EntityId e = linkage.merged.entity(id);
    if (e == data::kUnknownEntity) continue;
    if (linkage.FromA(id)) {
      ++counts[e].first;
    } else {
      ++counts[e].second;
    }
  }
  uint64_t pairs = 0;
  for (const auto& [e, ab] : counts) {
    pairs += ab.first * ab.second;
  }
  return pairs;
}

uint64_t TotalCrossPairs(const LinkageDataset& linkage) {
  uint64_t a = linkage.boundary;
  uint64_t b = linkage.merged.size() - a;
  return a * b;
}

}  // namespace sablock::core
