#include "core/taxonomy.h"

#include <algorithm>

#include "common/check.h"

namespace sablock::core {

ConceptId Taxonomy::AddConcept(std::string name, ConceptId parent) {
  SABLOCK_CHECK_MSG(!finalized_, "cannot add concepts after Finalize()");
  SABLOCK_CHECK_MSG(by_name_.find(name) == by_name_.end(),
                    "duplicate concept name");
  ConceptId id = static_cast<ConceptId>(names_.size());
  by_name_.emplace(name, id);
  names_.push_back(std::move(name));
  parents_.push_back(parent);
  children_.emplace_back();
  if (parent == kInvalidConcept) {
    roots_.push_back(id);
  } else {
    SABLOCK_CHECK_MSG(parent < id, "parent must be added before child");
    children_[parent].push_back(id);
  }
  return id;
}

void Taxonomy::Finalize() {
  SABLOCK_CHECK_MSG(!names_.empty(), "taxonomy is empty");
  node_begin_.assign(names_.size(), 0);
  node_end_.assign(names_.size(), 0);
  leaf_begin_.assign(names_.size(), 0);
  leaf_end_.assign(names_.size(), 0);
  leaf_concepts_.clear();

  uint32_t clock = 0;
  uint32_t leaf_clock = 0;
  // Iterative DFS; (node, child index) stack.
  std::vector<std::pair<ConceptId, size_t>> stack;
  for (ConceptId root : roots_) {
    stack.emplace_back(root, 0);
    node_begin_[root] = clock++;
    leaf_begin_[root] = leaf_clock;
    while (!stack.empty()) {
      auto& [node, next_child] = stack.back();
      if (next_child < children_[node].size()) {
        ConceptId child = children_[node][next_child++];
        node_begin_[child] = clock++;
        leaf_begin_[child] = leaf_clock;
        stack.emplace_back(child, 0);
      } else {
        if (children_[node].empty()) {
          leaf_concepts_.push_back(node);
          ++leaf_clock;
        }
        node_end_[node] = clock++;
        leaf_end_[node] = leaf_clock;
        stack.pop_back();
      }
    }
  }
  total_leaves_ = leaf_clock;
  finalized_ = true;
}

ConceptId Taxonomy::Find(std::string_view name) const {
  auto it = by_name_.find(std::string(name));
  return it == by_name_.end() ? kInvalidConcept : it->second;
}

ConceptId Taxonomy::Require(std::string_view name) const {
  ConceptId id = Find(name);
  SABLOCK_CHECK_MSG(id != kInvalidConcept, "unknown concept name");
  return id;
}

void Taxonomy::CheckFinalized() const {
  SABLOCK_CHECK_MSG(finalized_, "Taxonomy::Finalize() has not been called");
}

bool Taxonomy::Subsumes(ConceptId ancestor, ConceptId descendant) const {
  CheckFinalized();
  return node_begin_[ancestor] <= node_begin_[descendant] &&
         node_end_[descendant] <= node_end_[ancestor];
}

uint32_t Taxonomy::LeafIntersection(ConceptId c1, ConceptId c2) const {
  CheckFinalized();
  uint32_t lo = std::max(leaf_begin_[c1], leaf_begin_[c2]);
  uint32_t hi = std::min(leaf_end_[c1], leaf_end_[c2]);
  return hi > lo ? hi - lo : 0;
}

double Taxonomy::ConceptSimilarity(ConceptId c1, ConceptId c2) const {
  uint32_t inter = LeafIntersection(c1, c2);
  uint32_t uni = LeafCount(c1) + LeafCount(c2) - inter;
  if (uni == 0) return 0.0;
  return static_cast<double>(inter) / static_cast<double>(uni);
}

uint32_t Taxonomy::CoveredLeafCount(
    const std::vector<ConceptId>& concepts) const {
  CheckFinalized();
  if (concepts.empty()) return 0;
  std::vector<std::pair<uint32_t, uint32_t>> intervals;
  intervals.reserve(concepts.size());
  for (ConceptId c : concepts) {
    intervals.emplace_back(leaf_begin_[c], leaf_end_[c]);
  }
  std::sort(intervals.begin(), intervals.end());
  uint32_t covered = 0;
  uint32_t current_end = 0;
  bool first = true;
  for (const auto& [b, e] : intervals) {
    if (b >= e) continue;  // degenerate: concept with no leaves
    if (first || b >= current_end) {
      covered += e - b;
      current_end = e;
      first = false;
    } else if (e > current_end) {
      covered += e - current_end;
      current_end = e;
    }
  }
  return covered;
}

double Taxonomy::RecordSimilarity(const std::vector<ConceptId>& zeta1,
                                  const std::vector<ConceptId>& zeta2) const {
  CheckFinalized();
  if (zeta1.empty() || zeta2.empty()) return 0.0;
  // Eq. 5 reduces to sum(|leaf(c1) ∩ leaf(c2)|) / |β|:
  // each related pair contributes weight·sim = (|α|/|β|)·(|∩|/|α|) = |∩|/|β|,
  // and unrelated pairs have |∩| = 0 (disjoint subtrees), so summing over
  // all of ζ(r1)×ζ(r2) equals summing over the related set P.
  uint64_t intersection_sum = 0;
  for (ConceptId c1 : zeta1) {
    for (ConceptId c2 : zeta2) {
      intersection_sum += LeafIntersection(c1, c2);
    }
  }
  std::vector<ConceptId> all = zeta1;
  all.insert(all.end(), zeta2.begin(), zeta2.end());
  uint32_t beta = CoveredLeafCount(all);
  if (beta == 0) return 0.0;
  return static_cast<double>(intersection_sum) / static_cast<double>(beta);
}

void Taxonomy::PruneToMostSpecific(std::vector<ConceptId>* concepts) const {
  CheckFinalized();
  std::sort(concepts->begin(), concepts->end());
  concepts->erase(std::unique(concepts->begin(), concepts->end()),
                  concepts->end());
  std::vector<ConceptId> kept;
  kept.reserve(concepts->size());
  for (ConceptId c : *concepts) {
    bool has_descendant = false;
    for (ConceptId other : *concepts) {
      if (other != c && Subsumes(c, other)) {
        has_descendant = true;
        break;
      }
    }
    if (!has_descendant) kept.push_back(c);
  }
  concepts->swap(kept);
}

Taxonomy MakeBibliographicTaxonomy() {
  Taxonomy t;
  ConceptId c0 = t.AddConcept("C0");           // Research Output
  ConceptId c1 = t.AddConcept("C1", c0);       // Publication
  ConceptId c2 = t.AddConcept("C2", c1);       // Peer Reviewed
  t.AddConcept("C3", c2);                      // Journal
  t.AddConcept("C4", c2);                      // Proceedings
  t.AddConcept("C5", c2);                      // Book
  ConceptId c6 = t.AddConcept("C6", c1);       // Non-Peer Reviewed
  t.AddConcept("C7", c6);                      // Technical Report
  t.AddConcept("C8", c6);                      // Thesis
  t.AddConcept("C9", c0);                      // Patent
  t.Finalize();
  return t;
}

Taxonomy MakeBibliographicTaxonomyNoReviewLevel() {
  Taxonomy t;
  ConceptId c0 = t.AddConcept("C0");
  ConceptId c1 = t.AddConcept("C1", c0);
  t.AddConcept("C3", c1);
  t.AddConcept("C4", c1);
  t.AddConcept("C5", c1);
  t.AddConcept("C7", c1);
  t.AddConcept("C8", c1);
  t.AddConcept("C9", c0);
  t.Finalize();
  return t;
}

Taxonomy MakeBibliographicTaxonomyNoBook() {
  Taxonomy t;
  ConceptId c0 = t.AddConcept("C0");
  ConceptId c1 = t.AddConcept("C1", c0);
  ConceptId c2 = t.AddConcept("C2", c1);
  t.AddConcept("C3", c2);
  t.AddConcept("C4", c2);
  ConceptId c6 = t.AddConcept("C6", c1);
  t.AddConcept("C7", c6);
  t.AddConcept("C8", c6);
  t.AddConcept("C9", c0);
  t.Finalize();
  return t;
}

Taxonomy MakeBibliographicTaxonomyNoJournal() {
  Taxonomy t;
  ConceptId c0 = t.AddConcept("C0");
  ConceptId c1 = t.AddConcept("C1", c0);
  ConceptId c2 = t.AddConcept("C2", c1);
  t.AddConcept("C4", c2);
  t.AddConcept("C5", c2);
  ConceptId c6 = t.AddConcept("C6", c1);
  t.AddConcept("C7", c6);
  t.AddConcept("C8", c6);
  t.AddConcept("C9", c0);
  t.Finalize();
  return t;
}

}  // namespace sablock::core
