#include "core/tuning.h"

#include <algorithm>
#include <cmath>
#include <optional>
#include <unordered_map>

#include "common/check.h"
#include "common/random.h"
#include "core/collision.h"
#include "features/feature_store.h"
#include "text/qgram.h"
#include "text/similarity.h"

namespace sablock::core {

SimilarityDistribution::SimilarityDistribution(int num_bins) {
  SABLOCK_CHECK(num_bins > 0);
  bins_.assign(static_cast<size_t>(num_bins), 0);
}

void SimilarityDistribution::Add(double similarity) {
  SABLOCK_DCHECK(similarity >= 0.0 && similarity <= 1.0);
  int bin = static_cast<int>(similarity * static_cast<double>(bins_.size()));
  if (bin >= static_cast<int>(bins_.size())) {
    bin = static_cast<int>(bins_.size()) - 1;
  }
  ++bins_[bin];
  raw_.push_back(similarity);
  ++count_;
}

double SimilarityDistribution::BinFraction(int i) const {
  if (count_ == 0) return 0.0;
  return static_cast<double>(bins_[i]) / static_cast<double>(count_);
}

double SimilarityDistribution::BinLowerEdge(int i) const {
  return static_cast<double>(i) / static_cast<double>(bins_.size());
}

double SimilarityDistribution::Cdf(double x) const {
  if (count_ == 0) return 0.0;
  uint64_t below = 0;
  for (double v : raw_) {
    if (v <= x) ++below;
  }
  return static_cast<double>(below) / static_cast<double>(count_);
}

double SimilarityDistribution::ThresholdForErrorRatio(double epsilon) const {
  SABLOCK_CHECK(epsilon >= 0.0 && epsilon <= 1.0);
  if (count_ == 0) return 0.0;
  uint64_t budget =
      static_cast<uint64_t>(epsilon * static_cast<double>(count_));
  uint64_t cumulative = 0;
  for (size_t i = 0; i < bins_.size(); ++i) {
    if (cumulative + bins_[i] > budget) {
      return BinLowerEdge(static_cast<int>(i));
    }
    cumulative += bins_[i];
  }
  return 1.0;
}

SimilarityDistribution MeasureTrueMatchSimilarity(
    const data::Dataset& dataset, const DistributionOptions& options) {
  // Group records by entity so only true-match pairs are enumerated.
  std::unordered_map<data::EntityId, std::vector<data::RecordId>> clusters;
  for (data::RecordId id = 0; id < dataset.size(); ++id) {
    data::EntityId e = dataset.entity(id);
    if (e != data::kUnknownEntity) clusters[e].push_back(id);
  }

  // Per-record representations from the shared feature cache. This
  // builds the (attributes, q) columns for the whole dataset — more than
  // the labeled-cluster subset the measurement itself reads — because the
  // blocker tuned from this measurement runs over the same attributes
  // and q on all records next: the build is prepaid, not discarded.
  features::FeatureView features = dataset.features();
  features::FeatureView::TextHandle texts =
      features.TextsFor(options.attributes);
  std::optional<features::FeatureView::ShingleHandle> grams;
  if (options.q > 0) {
    grams = features.ShinglesFor(options.attributes, options.q);
  }

  struct PairRef {
    data::RecordId a;
    data::RecordId b;
  };
  std::vector<PairRef> pairs;
  for (auto& [entity, ids] : clusters) {
    for (size_t i = 0; i < ids.size(); ++i) {
      for (size_t j = i + 1; j < ids.size(); ++j) {
        pairs.push_back({ids[i], ids[j]});
      }
    }
  }
  if (options.max_pairs > 0 && pairs.size() > options.max_pairs) {
    Rng rng(options.seed);
    rng.Shuffle(&pairs);
    pairs.resize(options.max_pairs);
  }

  SimilarityDistribution dist;
  for (const PairRef& p : pairs) {
    double sim;
    if (grams) {
      sim = text::JaccardSortedHashes(grams->Shingles(p.a),
                                      grams->Shingles(p.b));
    } else {
      sim = text::ExactSimilarity(texts.Text(p.a), texts.Text(p.b));
    }
    dist.Add(sim);
  }
  return dist;
}

LshTuning TuneKL(double sh, double ph, double sl, double pl, int max_k,
                 int max_l) {
  SABLOCK_CHECK(sh > sl);
  LshTuning tuning;
  for (int k = 1; k <= max_k; ++k) {
    int l = MinTablesFor(sh, k, ph);
    if (l < 1 || l > max_l) continue;
    // The low-similarity constraint: P[collide | sl] <= pl.
    if (LshCollisionProbability(sl, k, l) <= pl) {
      tuning.k = k;
      tuning.l = l;
      tuning.feasible = true;
      return tuning;
    }
  }
  return tuning;
}

}  // namespace sablock::core
