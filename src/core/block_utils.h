#ifndef SABLOCK_CORE_BLOCK_UTILS_H_
#define SABLOCK_CORE_BLOCK_UTILS_H_

#include <cstddef>

#include "core/blocking.h"

namespace sablock::core {

/// Standard block post-processing utilities (the pre-steps of the
/// meta-blocking pipeline; Papadakis et al.). They operate on any
/// BlockCollection regardless of the technique that produced it.

/// Block purging: removes blocks with more than `max_block_size` records.
/// Oversized blocks stem from high-frequency keys (stop-word tokens,
/// common suffixes) and contribute mostly non-matching comparisons.
BlockCollection PurgeLargeBlocks(const BlockCollection& blocks,
                                 size_t max_block_size);

/// Block filtering: each record keeps only its `ratio` fraction of
/// smallest blocks (smaller blocks are more discriminative). A record in
/// n blocks keeps max(1, ceil(ratio · n)) of them; blocks keep the
/// records that retained them, and blocks left with < 2 records are
/// dropped. `ratio` in (0, 1].
BlockCollection FilterBlocksPerRecord(const BlockCollection& blocks,
                                      double ratio);

/// Removes blocks whose candidate pairs are all contained in other,
/// smaller blocks of the collection (exact redundant-block pruning for
/// small collections; O(Σ|b|²) — intended for post-processing moderate
/// outputs, not raw token blocking on millions of records).
BlockCollection DropRedundantBlocks(const BlockCollection& blocks);

/// Transitive closure: merges blocks that share records and returns the
/// connected components (over `num_records` record ids) as disjoint
/// blocks. Components of size 1 are dropped. Used by iterative blocking
/// (HARRA-style) and by downstream clustering stages.
BlockCollection ConnectedComponents(const BlockCollection& blocks,
                                    size_t num_records);

}  // namespace sablock::core

#endif  // SABLOCK_CORE_BLOCK_UTILS_H_
