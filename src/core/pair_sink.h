#ifndef SABLOCK_CORE_PAIR_SINK_H_
#define SABLOCK_CORE_PAIR_SINK_H_

#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "core/block_sink.h"
#include "core/budget.h"
#include "data/record.h"

namespace sablock::core {

/// One scored candidate comparison: a record pair and the scheduler's
/// priority for it (higher = compare sooner). Pairs are normalized a < b.
struct CandidatePair {
  data::RecordId a = 0;
  data::RecordId b = 0;
  double score = 0.0;

  friend bool operator==(const CandidatePair& x, const CandidatePair& y) {
    return x.a == y.a && x.b == y.b;
  }
};

/// Streaming consumer of scored candidate pairs — the pair-level sibling
/// of BlockSink. Progressive producers (the `progressive` stage, the
/// query-progressive service verb) emit comparisons one at a time in
/// best-first order, so a consumer can stop at any budget point and keep
/// the highest-value prefix of the comparison stream.
///
/// Same thread-safety contract as BlockSink: not internally synchronized;
/// one producer at a time unless externally serialized.
class PairSink {
 public:
  virtual ~PairSink() = default;

  /// Receives one candidate pair. Producers emit in decreasing priority.
  virtual void Emit(CandidatePair pair) = 0;

  /// Backpressure: once true the sink no longer wants pairs; producers
  /// poll this in their emission loops and stop early.
  virtual bool Done() const { return false; }

  /// End-of-stream; called exactly once by the driving producer.
  virtual void Flush() {}
};

/// Collecting PairSink: materializes the emitted order.
class PairCollector : public PairSink {
 public:
  void Emit(CandidatePair pair) override { pairs_.push_back(pair); }

  const std::vector<CandidatePair>& pairs() const { return pairs_; }
  std::vector<CandidatePair> Take() { return std::move(pairs_); }

 private:
  std::vector<CandidatePair> pairs_;
};

/// Adapter from the pair stream back onto a BlockSink chain: each pair
/// becomes a 2-record block, so every existing block consumer (eval
/// harness, collectors, counting sinks) can sit downstream of a
/// progressive producer unchanged.
class PairToBlockSink : public PairSink {
 public:
  explicit PairToBlockSink(BlockSink& next) : next_(&next) {}

  void Emit(CandidatePair pair) override {
    next_->Consume(Block{pair.a, pair.b});
  }

  bool Done() const override { return next_->Done(); }

  void Flush() override { next_->Flush(); }

 private:
  BlockSink* next_;
};

/// Budget gate on a pair stream: forwards pairs while a shared BudgetMeter
/// has budget, accounting one pair per Emit. The meter's atomic countdown
/// makes any number of concurrent BudgetedPairSinks (one per shard) share
/// one global budget without extra locking.
class BudgetedPairSink : public PairSink {
 public:
  BudgetedPairSink(PairSink& inner, std::shared_ptr<BudgetMeter> meter)
      : inner_(&inner), meter_(std::move(meter)) {}

  void Emit(CandidatePair pair) override {
    if (!meter_->Spend(1)) {
      ++dropped_pairs_;
      return;
    }
    inner_->Emit(pair);
  }

  bool Done() const override { return meter_->Exhausted() || inner_->Done(); }

  void Flush() override { inner_->Flush(); }

  /// Pairs received after the budget was exhausted.
  uint64_t dropped_pairs() const { return dropped_pairs_; }

 private:
  PairSink* inner_;
  std::shared_ptr<BudgetMeter> meter_;
  uint64_t dropped_pairs_ = 0;
};

}  // namespace sablock::core

#endif  // SABLOCK_CORE_PAIR_SINK_H_
