#ifndef SABLOCK_CORE_BUDGET_H_
#define SABLOCK_CORE_BUDGET_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <limits>
#include <string>

#include "common/status.h"
#include "common/statusor.h"

namespace sablock::core {

/// The one budget grammar every layer speaks — pipeline stages, the
/// sharded engine, the eval harness, the service verbs and the CLI flags
/// all parse the same comma-separated spec:
///
///   pairs=N           stop after N candidate pairs (redundancy-counting
///                     comparisons for block streams) have been emitted
///   seconds=S         stop once S wall-clock seconds have elapsed
///                     (fractional values allowed)
///   recall-target=R   stop once recall R in [0,1] is reached; requires a
///                     consumer with ground truth (eval paths only)
///
/// Terms combine with AND-of-limits semantics: the budget is exhausted as
/// soon as any configured limit trips. An empty spec (or a
/// default-constructed Budget) is unlimited.
struct Budget {
  /// No pair limit.
  static constexpr uint64_t kUnlimitedPairs =
      std::numeric_limits<uint64_t>::max();

  uint64_t pairs = kUnlimitedPairs;
  double seconds = 0.0;        ///< 0 = no time limit
  double recall_target = 0.0;  ///< 0 = no recall limit

  bool unlimited() const {
    return pairs == kUnlimitedPairs && seconds <= 0.0 && recall_target <= 0.0;
  }

  /// Parses "pairs=50000,seconds=1.5,recall-target=0.9" (any subset, any
  /// order; "inf"/"unlimited" accepted for pairs). Returns a diagnostic
  /// naming the offending term on malformed input.
  static StatusOr<Budget> Parse(const std::string& text);

  /// Out-parameter form for call sites on the Status convention.
  static Status Parse(const std::string& text, Budget* out);

  /// Canonical spec string (round-trips through Parse). Empty when
  /// unlimited.
  std::string ToString() const;
};

/// Shared, thread-safe countdown for one Budget: the atomic heart that
/// lets any number of producers (sharded engine shards, concurrent
/// streams) account against one global budget without an external mutex.
/// This replaces the old pattern of wrapping CappedSink in a
/// ConcurrentSink just to make its plain counters safe.
///
/// Semantics match CappedSink: the spend that crosses the limit is still
/// accepted (the caller forwards its block/pair), so the total spent may
/// overshoot by less than one spend unit per concurrent producer.
class BudgetMeter {
 public:
  explicit BudgetMeter(Budget budget)
      : budget_(budget),
        deadline_(budget.seconds > 0.0
                      ? std::chrono::steady_clock::now() +
                            std::chrono::duration_cast<
                                std::chrono::steady_clock::duration>(
                                std::chrono::duration<double>(budget.seconds))
                      : std::chrono::steady_clock::time_point::max()) {}

  const Budget& budget() const { return budget_; }

  /// Accounts `n` pairs. Returns true if the caller should forward this
  /// spend — the spend that crosses the limit is still accepted — and
  /// false once the budget was already exhausted before this call.
  bool Spend(uint64_t n) {
    if (exhausted_.load(std::memory_order_relaxed)) return false;
    uint64_t before = spent_.fetch_add(n, std::memory_order_relaxed);
    if (before >= budget_.pairs || budget_.pairs - before <= n) {
      MarkExhausted();
    } else if (budget_.seconds > 0.0 &&
               std::chrono::steady_clock::now() >= deadline_) {
      MarkExhausted();
    }
    return true;
  }

  /// Records one true match found by a recall-aware consumer; trips the
  /// recall-target limit once enough of `total_true` matches were seen.
  /// ConfigureRecall must have been called first.
  void NoteMatch() {
    if (total_true_ == 0) return;
    uint64_t found = matches_.fetch_add(1, std::memory_order_relaxed) + 1;
    if (budget_.recall_target > 0.0 &&
        static_cast<double>(found) >=
            budget_.recall_target * static_cast<double>(total_true_)) {
      MarkExhausted();
    }
  }

  /// Arms the recall-target limit with the ground-truth match count.
  /// Without this, a recall-target budget never trips (no ground truth).
  void ConfigureRecall(uint64_t total_true_matches) {
    total_true_ = total_true_matches;
  }

  bool Exhausted() const {
    if (exhausted_.load(std::memory_order_relaxed)) return true;
    if (budget_.seconds > 0.0 &&
        std::chrono::steady_clock::now() >= deadline_) {
      MarkExhausted();
      return true;
    }
    return false;
  }

  /// Pairs spent so far (may overshoot the limit by the crossing spends).
  uint64_t Spent() const { return spent_.load(std::memory_order_relaxed); }

  /// True matches recorded via NoteMatch().
  uint64_t Matches() const { return matches_.load(std::memory_order_relaxed); }

  /// Why the budget tripped: "pairs", "seconds", "recall" — or "" while
  /// not exhausted. Stable once exhausted.
  const char* ExhaustedReason() const {
    switch (reason_.load(std::memory_order_relaxed)) {
      case kPairs: return "pairs";
      case kSeconds: return "seconds";
      case kRecall: return "recall";
      default: return "";
    }
  }

 private:
  enum Reason : int { kNone = 0, kPairs, kSeconds, kRecall };

  void MarkExhausted() const {
    int expected = kNone;
    reason_.compare_exchange_strong(expected, CurrentReason(),
                                    std::memory_order_relaxed);
    exhausted_.store(true, std::memory_order_relaxed);
  }

  int CurrentReason() const {
    if (spent_.load(std::memory_order_relaxed) >= budget_.pairs) return kPairs;
    if (budget_.recall_target > 0.0 && total_true_ > 0 &&
        static_cast<double>(matches_.load(std::memory_order_relaxed)) >=
            budget_.recall_target * static_cast<double>(total_true_)) {
      return kRecall;
    }
    return kSeconds;
  }

  Budget budget_;
  std::chrono::steady_clock::time_point deadline_;
  uint64_t total_true_ = 0;
  std::atomic<uint64_t> spent_{0};
  std::atomic<uint64_t> matches_{0};
  mutable std::atomic<bool> exhausted_{false};
  mutable std::atomic<int> reason_{kNone};
};

}  // namespace sablock::core

#endif  // SABLOCK_CORE_BUDGET_H_
