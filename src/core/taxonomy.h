#ifndef SABLOCK_CORE_TAXONOMY_H_
#define SABLOCK_CORE_TAXONOMY_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace sablock::core {

/// Identifier of a concept node inside a Taxonomy.
using ConceptId = uint32_t;
inline constexpr ConceptId kInvalidConcept = ~0u;

/// A forest of taxonomy trees (Definition 4.1). Nodes are semantic concepts;
/// edges are subsumption relations (child ⪯ parent). A forest is used rather
/// than a single tree because the paper allows a set T of taxonomy trees;
/// concepts from different trees are unrelated (their similarity is 0).
///
/// After Finalize(), the taxonomy supports O(1):
///  - subsumption tests (Euler-tour node intervals),
///  - leaf-set sizes and intersections (each node's leaf set is a contiguous
///    interval of the global DFS leaf ordering),
///  - concept similarity (Eq. 4):
///      simS(c1, c2) = |leaf(c1) ∩ leaf(c2)| / |leaf(c1) ∪ leaf(c2)|.
class Taxonomy {
 public:
  /// Adds a concept. `parent == kInvalidConcept` creates the root of a new
  /// tree in the forest. Names must be unique across the forest.
  ConceptId AddConcept(std::string name,
                       ConceptId parent = kInvalidConcept);

  /// Freezes the structure and precomputes DFS intervals. Must be called
  /// before any query; aborts if the forest is empty.
  void Finalize();

  /// Looks up a concept by name; kInvalidConcept if absent.
  ConceptId Find(std::string_view name) const;

  /// Looks up a concept by name; aborts if absent.
  ConceptId Require(std::string_view name) const;

  size_t size() const { return names_.size(); }
  bool finalized() const { return finalized_; }
  const std::string& name(ConceptId c) const { return names_[c]; }
  ConceptId parent(ConceptId c) const { return parents_[c]; }
  const std::vector<ConceptId>& children(ConceptId c) const {
    return children_[c];
  }
  const std::vector<ConceptId>& roots() const { return roots_; }
  bool IsLeaf(ConceptId c) const { return children_[c].empty(); }

  /// True iff `ancestor` subsumes `descendant` (reflexive: c ⪯ c).
  bool Subsumes(ConceptId ancestor, ConceptId descendant) const;

  /// Number of leaves in the subtree rooted at `c` (|leaf(c)| of Eq. 4).
  uint32_t LeafCount(ConceptId c) const {
    return leaf_end_[c] - leaf_begin_[c];
  }

  /// Total number of leaves in the forest.
  uint32_t TotalLeaves() const { return total_leaves_; }

  /// Global DFS leaf interval [begin, end) of `c`'s subtree.
  uint32_t LeafBegin(ConceptId c) const { return leaf_begin_[c]; }
  uint32_t LeafEnd(ConceptId c) const { return leaf_end_[c]; }

  /// Concept id of the leaf with global leaf ordinal `ordinal`.
  ConceptId LeafAt(uint32_t ordinal) const { return leaf_concepts_[ordinal]; }

  /// |leaf(c1) ∩ leaf(c2)|. Nonzero only when one concept subsumes the
  /// other (tree structure), in which case it is the smaller leaf count.
  uint32_t LeafIntersection(ConceptId c1, ConceptId c2) const;

  /// Semantic similarity of two concepts (Eq. 4).
  double ConceptSimilarity(ConceptId c1, ConceptId c2) const;

  /// Semantic similarity of two records given their interpretations
  /// ζ(r1), ζ(r2) (Eq. 5). Empty interpretations yield 0.
  double RecordSimilarity(const std::vector<ConceptId>& zeta1,
                          const std::vector<ConceptId>& zeta2) const;

  /// Removes concepts subsumed by another member of the set, keeping only
  /// the most specific ones (the Specificity property of Definition 4.2).
  /// Also deduplicates. The result is sorted by id.
  void PruneToMostSpecific(std::vector<ConceptId>* concepts) const;

  /// Number of distinct leaves covered by ⋃_{c ∈ concepts} leaf(c).
  uint32_t CoveredLeafCount(const std::vector<ConceptId>& concepts) const;

 private:
  void CheckFinalized() const;

  std::vector<std::string> names_;
  std::vector<ConceptId> parents_;
  std::vector<std::vector<ConceptId>> children_;
  std::vector<ConceptId> roots_;
  std::unordered_map<std::string, ConceptId> by_name_;

  // Computed by Finalize().
  bool finalized_ = false;
  uint32_t total_leaves_ = 0;
  std::vector<uint32_t> node_begin_;  // Euler-tour entry index
  std::vector<uint32_t> node_end_;    // Euler-tour exit index
  std::vector<uint32_t> leaf_begin_;  // leaf interval begin
  std::vector<uint32_t> leaf_end_;    // leaf interval end
  std::vector<ConceptId> leaf_concepts_;  // leaf ordinal -> concept id
};

/// Builds the bibliographic taxonomy tree t_bib of Fig. 3:
///   ResearchOutput -> {Publication, Patent};
///   Publication -> {PeerReviewed, NonPeerReviewed};
///   PeerReviewed -> {Journal, Proceedings, Book};
///   NonPeerReviewed -> {TechnicalReport, Thesis}.
/// Concept names use the paper's labels ("C0".."C9" aliases are the
/// canonical names used in tests): ResearchOutput=C0, Publication=C1,
/// PeerReviewed=C2, Journal=C3, Proceedings=C4, Book=C5,
/// NonPeerReviewed=C6, TechnicalReport=C7, Thesis=C8, Patent=C9.
Taxonomy MakeBibliographicTaxonomy();

/// Variant t_(bib,1) of Fig. 10(a): PeerReviewed / NonPeerReviewed removed;
/// their children attach directly to Publication.
Taxonomy MakeBibliographicTaxonomyNoReviewLevel();

/// Variant t_(bib,2) of Fig. 10(b): Book (C5) missing.
Taxonomy MakeBibliographicTaxonomyNoBook();

/// Variant t_(bib,3) of Fig. 10(c): Journal (C3) missing.
Taxonomy MakeBibliographicTaxonomyNoJournal();

}  // namespace sablock::core

#endif  // SABLOCK_CORE_TAXONOMY_H_
