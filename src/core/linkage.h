#ifndef SABLOCK_CORE_LINKAGE_H_
#define SABLOCK_CORE_LINKAGE_H_

#include "core/blocking.h"
#include "data/record.h"

namespace sablock::core {

/// Record linkage support: blocking across *two* datasets A and B, where
/// only cross-source pairs (a ∈ A, b ∈ B) are candidate matches (the
/// classic two-database setting of Fellegi & Sunter, as opposed to the
/// deduplication setting the paper evaluates).
///
/// The model: both datasets are merged into one (B's records get ids
/// offset by |A|), any BlockingTechnique runs on the merged dataset, and
/// the block collection is restricted to cross-source pairs afterwards.

/// A merged two-source dataset; records with id < boundary come from A.
struct LinkageDataset {
  data::Dataset merged;
  data::RecordId boundary = 0;

  bool FromA(data::RecordId id) const { return id < boundary; }
};

/// Merges two datasets with identical schemas. Ground-truth entity ids
/// must already live in a shared label space (records of A and B that
/// represent the same entity carry equal ids). Aborts on schema mismatch.
LinkageDataset MergeForLinkage(const data::Dataset& a,
                               const data::Dataset& b);

/// Restricts a block collection to cross-source comparisons: each block is
/// reduced to its A-side × B-side bipartite pairs (emitted as 2-record
/// blocks); blocks entirely on one side disappear.
BlockCollection CrossSourceBlocks(const BlockCollection& blocks,
                                  data::RecordId boundary);

/// Number of cross-source ground-truth match pairs |Ω_tp| for linkage.
uint64_t CountCrossTrueMatches(const LinkageDataset& linkage);

/// Total cross-source pair count |Ω| = |A| · |B|.
uint64_t TotalCrossPairs(const LinkageDataset& linkage);

}  // namespace sablock::core

#endif  // SABLOCK_CORE_LINKAGE_H_
