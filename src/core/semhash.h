#ifndef SABLOCK_CORE_SEMHASH_H_
#define SABLOCK_CORE_SEMHASH_H_

#include <cstdint>
#include <vector>

#include "common/hashing.h"
#include "core/taxonomy.h"

namespace sablock::core {

/// Binary semantic signature produced by the semhash functions
/// (Section 4.4): bit i is 1 iff the record is related to semantic feature
/// (leaf concept) i. Packed into 64-bit words.
class SemSignature {
 public:
  SemSignature() = default;
  explicit SemSignature(uint32_t dimension)
      : dimension_(dimension), words_((dimension + 63) / 64, 0) {}

  uint32_t dimension() const { return dimension_; }

  void Set(uint32_t bit) { words_[bit >> 6] |= (1ULL << (bit & 63)); }

  bool Get(uint32_t bit) const {
    return (words_[bit >> 6] >> (bit & 63)) & 1;
  }

  /// Number of 1-bits.
  uint32_t PopCount() const;

  /// Number of positions where both signatures are 1.
  uint32_t AndCount(const SemSignature& other) const;

  /// Jaccard coefficient over the 1-bits: |a ∧ b| / |a ∨ b|. Two all-zero
  /// signatures have Jaccard 1 by the usual empty-set convention.
  double Jaccard(const SemSignature& other) const;

  const std::vector<uint64_t>& words() const { return words_; }

 private:
  uint32_t dimension_ = 0;
  std::vector<uint64_t> words_;
};

/// Builds semhash signatures for a record collection (Algorithm 1).
///
/// The feature set C is the union of leaf(c) over every concept c appearing
/// in some interpretation ζ(r), which satisfies the three semhash-family
/// conditions: Disjointness (distinct leaves never subsume each other),
/// Completeness (every interpreted concept's leaves are included) and
/// Non-emptiness (only leaves reachable from some record are included).
///
/// g_i(r) = 1 iff ∃c ∈ ζ(r) with feature-leaf c_i ⪯ c.
class SemhashEncoder {
 public:
  /// Builds the encoder from the taxonomy and the interpretations of all
  /// records (Algorithm 1 step 1). Records with empty interpretations
  /// contribute nothing.
  static SemhashEncoder Build(
      const Taxonomy& taxonomy,
      const std::vector<std::vector<ConceptId>>& interpretations);

  /// Builds an encoder whose features are all leaves of the taxonomy
  /// (useful when the record set is not known in advance).
  static SemhashEncoder BuildFromAllLeaves(const Taxonomy& taxonomy);

  /// Number of semhash functions |C| (signature bits).
  uint32_t dimension() const {
    return static_cast<uint32_t>(feature_leaf_ordinals_.size());
  }

  /// Concept id of feature bit `i`.
  ConceptId FeatureConcept(uint32_t i) const;

  /// Encodes one record's interpretation (Algorithm 1 step 2).
  SemSignature Encode(const Taxonomy& taxonomy,
                      const std::vector<ConceptId>& zeta) const;

  /// Encodes all interpretations.
  std::vector<SemSignature> EncodeAll(
      const Taxonomy& taxonomy,
      const std::vector<std::vector<ConceptId>>& interpretations) const;

 private:
  // Sorted global leaf ordinals selected as features, and the taxonomy's
  // leaf ordinal -> feature index mapping (dense vector; kInvalidConcept
  // marks unselected leaves).
  std::vector<uint32_t> feature_leaf_ordinals_;
  std::vector<uint32_t> ordinal_to_feature_;
  std::vector<ConceptId> feature_concepts_;
};

/// Minhash compression of semhash signatures — the Section 4.4 note:
/// "it is possible to combine semhash and minhash functions for generating
/// semantic signatures ... [when] many semantic features are considered".
/// For taxonomies with thousands of leaves the full bit signature is
/// wasteful; this encoder minhashes the set of 1-bits so that the
/// compressed signatures still approximately preserve semantic Jaccard
/// (and hence, by Proposition 4.3, the Eq. 5 similarity order).
class CompressedSemhash {
 public:
  CompressedSemhash(int num_hashes, uint64_t seed);

  /// Minhash signature over the set feature indices of `signature`.
  /// All-zero signatures compress to all-sentinel vectors.
  std::vector<uint64_t> Compress(const SemSignature& signature) const;

  /// Fraction of agreeing rows — estimates SemSignature::Jaccard of the
  /// originals.
  static double EstimateJaccard(const std::vector<uint64_t>& a,
                                const std::vector<uint64_t>& b);

  int num_hashes() const;

 private:
  std::vector<UniversalHash> hashes_;
};

}  // namespace sablock::core

#endif  // SABLOCK_CORE_SEMHASH_H_
