#ifndef SABLOCK_CORE_ITERATIVE_BLOCKER_H_
#define SABLOCK_CORE_ITERATIVE_BLOCKER_H_

#include <string>

#include "core/blocking.h"
#include "core/lsh_blocker.h"

namespace sablock::core {

/// HARRA-style iterative LSH blocking (Kim & Lee, EDBT 2010 — the paper's
/// Related Work [28]): records hashed into the same bucket whose signature
/// agreement clears a match threshold are *merged* (their shingle sets
/// unioned), and the merged super-records are re-hashed in the next
/// iteration. Early merges let later iterations catch pairs whose
/// similarity to the merged profile exceeds their pairwise similarity —
/// the "record-of-records" effect.
///
/// Output blocks are the connected components of all merge decisions.
/// This is a *blocking* adaptation (candidates, not final matches): the
/// match threshold plays the role of HARRA's cheap in-bucket verifier.
class IterativeLshBlocker : public BlockingTechnique {
 public:
  /// `merge_threshold` — minimum estimated Jaccard (signature agreement)
  /// for two co-bucketed records to merge; `iterations` — number of
  /// hash-merge rounds.
  IterativeLshBlocker(LshParams params, double merge_threshold,
                      int iterations);

  std::string name() const override;
  using BlockingTechnique::Run;
  void Run(const data::Dataset& dataset, BlockSink& sink) const override;

 private:
  LshParams params_;
  double merge_threshold_;
  int iterations_;
};

}  // namespace sablock::core

#endif  // SABLOCK_CORE_ITERATIVE_BLOCKER_H_
