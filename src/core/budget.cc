#include "core/budget.h"

#include <cerrno>
#include <cstdlib>

#include "common/string_util.h"

namespace sablock::core {

namespace {

Status ParseUint64(const std::string& term, std::string_view value,
                   uint64_t* out) {
  std::string text(Trim(value));
  if (text == "inf" || text == "unlimited") {
    *out = Budget::kUnlimitedPairs;
    return Status::Ok();
  }
  if (text.empty() || text[0] == '-') {
    return Status::Error("budget term '" + term +
                         "': expected a non-negative integer, got '" + text +
                         "'");
  }
  errno = 0;
  char* end = nullptr;
  unsigned long long v = std::strtoull(text.c_str(), &end, 10);
  if (errno != 0 || end == text.c_str() || *end != '\0') {
    return Status::Error("budget term '" + term +
                         "': expected a non-negative integer, got '" + text +
                         "'");
  }
  *out = static_cast<uint64_t>(v);
  return Status::Ok();
}

Status ParseDouble(const std::string& term, std::string_view value,
                   double* out) {
  std::string text(Trim(value));
  errno = 0;
  char* end = nullptr;
  double v = std::strtod(text.c_str(), &end);
  if (text.empty() || errno != 0 || end == text.c_str() || *end != '\0') {
    return Status::Error("budget term '" + term +
                         "': expected a number, got '" + text + "'");
  }
  *out = v;
  return Status::Ok();
}

}  // namespace

StatusOr<Budget> Budget::Parse(const std::string& text) {
  Budget budget;
  Status status = Parse(text, &budget);
  if (!status.ok()) return status;
  return budget;
}

Status Budget::Parse(const std::string& text, Budget* out) {
  Budget budget;
  if (!Trim(text).empty()) {
    for (const std::string& part : Split(text, ',')) {
      std::string_view term = Trim(part);
      if (term.empty()) {
        return Status::Error("budget: empty term in '" + text + "'");
      }
      size_t eq = term.find('=');
      if (eq == std::string_view::npos) {
        return Status::Error("budget term '" + std::string(term) +
                             "': expected key=value");
      }
      std::string key = ToLower(Trim(term.substr(0, eq)));
      std::string_view value = term.substr(eq + 1);
      if (key == "pairs") {
        Status s = ParseUint64(key, value, &budget.pairs);
        if (!s.ok()) return s;
        if (budget.pairs == 0) {
          return Status::Error("budget term 'pairs': must be >= 1");
        }
      } else if (key == "seconds") {
        Status s = ParseDouble(key, value, &budget.seconds);
        if (!s.ok()) return s;
        if (budget.seconds <= 0.0) {
          return Status::Error("budget term 'seconds': must be > 0");
        }
      } else if (key == "recall-target") {
        Status s = ParseDouble(key, value, &budget.recall_target);
        if (!s.ok()) return s;
        if (budget.recall_target <= 0.0 || budget.recall_target > 1.0) {
          return Status::Error(
              "budget term 'recall-target': must be in (0, 1]");
        }
      } else {
        return Status::Error("budget: unknown term '" + key +
                             "' (known: pairs, seconds, recall-target)");
      }
    }
  }
  *out = budget;
  return Status::Ok();
}

std::string Budget::ToString() const {
  std::string text;
  auto append = [&](const std::string& term) {
    if (!text.empty()) text += ',';
    text += term;
  };
  if (pairs != kUnlimitedPairs) append("pairs=" + std::to_string(pairs));
  if (seconds > 0.0) append("seconds=" + FormatDouble(seconds, 3));
  if (recall_target > 0.0) {
    append("recall-target=" + FormatDouble(recall_target, 3));
  }
  return text;
}

}  // namespace sablock::core
