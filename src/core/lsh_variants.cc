#include "core/lsh_variants.h"

#include <algorithm>
#include <span>
#include <unordered_map>

#include "common/check.h"
#include "common/hashing.h"
#include "core/minhash.h"
#include "features/feature_store.h"

namespace sablock::core {

void ComputeTop2MinhashSignatures(
    const data::Dataset& dataset, const LshParams& params,
    std::vector<std::vector<uint64_t>>* min1,
    std::vector<std::vector<uint64_t>>* min2) {
  SABLOCK_CHECK(params.k > 0 && params.l > 0);
  const int num_hashes = params.k * params.l;
  features::FeatureView::ShingleHandle shingle_cache =
      dataset.features().ShinglesFor(params.attributes, params.q);
  std::vector<UniversalHash> hashes;
  hashes.reserve(static_cast<size_t>(num_hashes));
  for (int i = 0; i < num_hashes; ++i) {
    hashes.push_back(
        UniversalHash::FromSeed(params.seed, static_cast<uint64_t>(i)));
  }

  min1->assign(dataset.size(), {});
  min2->assign(dataset.size(), {});
  for (data::RecordId id = 0; id < dataset.size(); ++id) {
    const std::vector<uint64_t>& shingles = shingle_cache.Shingles(id);
    std::vector<uint64_t>& m1 = (*min1)[id];
    std::vector<uint64_t>& m2 = (*min2)[id];
    m1.assign(static_cast<size_t>(num_hashes), MinHasher::kEmptySlot);
    m2.assign(static_cast<size_t>(num_hashes), MinHasher::kEmptySlot);
    for (uint64_t shingle : shingles) {
      for (int i = 0; i < num_hashes; ++i) {
        uint64_t h = hashes[static_cast<size_t>(i)](shingle);
        if (h < m1[static_cast<size_t>(i)]) {
          m2[static_cast<size_t>(i)] = m1[static_cast<size_t>(i)];
          m1[static_cast<size_t>(i)] = h;
        } else if (h < m2[static_cast<size_t>(i)] &&
                   h != m1[static_cast<size_t>(i)]) {
          m2[static_cast<size_t>(i)] = h;
        }
      }
    }
  }
}

namespace {

uint64_t BandKeyFromRows(const std::vector<uint64_t>& rows, int table,
                         int k, int flipped_row,
                         const std::vector<uint64_t>& alt_rows) {
  uint64_t key = Mix64(0x9b0be5 + static_cast<uint64_t>(table));
  for (int r = 0; r < k; ++r) {
    size_t idx = static_cast<size_t>(table) * k + r;
    uint64_t v = (r == flipped_row) ? alt_rows[idx] : rows[idx];
    key = HashCombine(key, v);
  }
  return key;
}

}  // namespace

MultiProbeLshBlocker::MultiProbeLshBlocker(LshParams params, int num_probes)
    : params_(std::move(params)), num_probes_(num_probes) {
  SABLOCK_CHECK(num_probes_ >= 0);
}

std::string MultiProbeLshBlocker::name() const {
  return "MP-LSH(k=" + std::to_string(params_.k) +
         ",l=" + std::to_string(params_.l) +
         ",p=" + std::to_string(num_probes_) + ")";
}

void MultiProbeLshBlocker::Run(const data::Dataset& dataset,
                               BlockSink& sink) const {
  std::vector<std::vector<uint64_t>> min1;
  std::vector<std::vector<uint64_t>> min2;
  ComputeTop2MinhashSignatures(dataset, params_, &min1, &min2);
  const int probes = std::min(num_probes_, params_.k);

  for (int t = 0; t < params_.l; ++t) {
    if (sink.Done()) return;
    std::unordered_map<uint64_t, Block> buckets;
    buckets.reserve(dataset.size());
    for (data::RecordId id = 0; id < dataset.size(); ++id) {
      if (min1[id].empty() || min1[id][0] == MinHasher::kEmptySlot) {
        continue;
      }
      // Base bucket plus one probe per perturbed row. Two records whose
      // probe sets intersect land in a shared bucket; single-member
      // buckets are dropped on emission.
      buckets[BandKeyFromRows(min1[id], t, params_.k, -1, min2[id])]
          .push_back(id);
      for (int p = 0; p < probes; ++p) {
        size_t idx = static_cast<size_t>(t) * params_.k + p;
        if (min2[id][idx] == MinHasher::kEmptySlot) continue;
        buckets[BandKeyFromRows(min1[id], t, params_.k, p, min2[id])]
            .push_back(id);
      }
    }
    for (auto& [key, block] : buckets) {
      if (sink.Done()) return;
      if (block.size() >= 2) sink.Consume(std::move(block));
    }
  }
}

LshForestBlocker::LshForestBlocker(LshParams params, int max_depth,
                                   size_t max_block_size)
    : params_(std::move(params)),
      max_depth_(max_depth),
      max_block_size_(max_block_size) {
  SABLOCK_CHECK(max_depth_ >= 1);
  SABLOCK_CHECK(max_block_size_ >= 2);
}

std::string LshForestBlocker::name() const {
  return "LSHForest(l=" + std::to_string(params_.l) +
         ",d=" + std::to_string(max_depth_) +
         ",max=" + std::to_string(max_block_size_) + ")";
}

void LshForestBlocker::Run(const data::Dataset& dataset,
                           BlockSink& sink) const {
  // One label sequence of max_depth rows per tree.
  LshParams effective = params_;
  effective.k = max_depth_;
  features::FeatureView::SignatureHandle sigs =
      MinhashSignatures(dataset, effective);

  for (int t = 0; t < params_.l; ++t) {
    if (sink.Done()) return;
    const size_t base = static_cast<size_t>(t) * max_depth_;
    // Iterative splitting: (group, depth) work list. Groups are split by
    // the next row's value while they are too large — the forest's
    // variable-length prefixes.
    std::vector<std::pair<Block, int>> work;
    Block all;
    all.reserve(dataset.size());
    for (data::RecordId id = 0; id < dataset.size(); ++id) {
      const std::span<const uint64_t> sig = sigs.Signature(id);
      if (!sig.empty() && sig[0] != MinHasher::kEmptySlot) {
        all.push_back(id);
      }
    }
    work.emplace_back(std::move(all), 0);
    while (!work.empty()) {
      if (sink.Done()) return;
      auto [group, depth] = std::move(work.back());
      work.pop_back();
      if (group.size() < 2) continue;
      if (group.size() <= max_block_size_ || depth == max_depth_) {
        // depth 0 can only reach here if the whole dataset fits in one
        // block; still a valid (degenerate) prefix group.
        sink.Consume(std::move(group));
        continue;
      }
      std::unordered_map<uint64_t, Block> children;
      for (data::RecordId id : group) {
        children[sigs.Signature(id)[base + static_cast<size_t>(depth)]]
            .push_back(id);
      }
      for (auto& [label, child] : children) {
        work.emplace_back(std::move(child), depth + 1);
      }
    }
  }
}

}  // namespace sablock::core
