#ifndef SABLOCK_CORE_COLLISION_H_
#define SABLOCK_CORE_COLLISION_H_

#include "core/lsh_blocker.h"

namespace sablock::core {

/// Analytic collision model of Section 5 — the S-curves of Figs. 5 and 6.

/// Probability that two records with textual (Jaccard) similarity `s` are
/// placed in the same block by a banded LSH index with k rows and l tables:
///   P = 1 - (1 - s^k)^l.
double LshCollisionProbability(double s, int k, int l);

/// Probability that a w-way semantic hash function returns true for two
/// records whose per-function agreement probability is s' (Section 5.2):
///   AND: (s')^w      OR: 1 - (1 - s')^w.
double WWayProbability(double s_prime, int w, SemanticMode mode);

/// Collision probability of the semantic-aware LSH family:
///   P = 1 - (1 - s^k · p)^l  with p = WWayProbability(s', w, mode).
double SaLshCollisionProbability(double s, double s_prime, int k, int l,
                                 int w, SemanticMode mode);

/// Smallest l such that records of similarity `s` collide with probability
/// at least `p` for the given k; returns -1 if unsatisfiable (s^k == 0 or
/// p >= 1).
int MinTablesFor(double s, int k, double p);

}  // namespace sablock::core

#endif  // SABLOCK_CORE_COLLISION_H_
