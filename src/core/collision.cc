#include "core/collision.h"

#include <cmath>

#include "common/check.h"

namespace sablock::core {

double LshCollisionProbability(double s, int k, int l) {
  SABLOCK_DCHECK(s >= 0.0 && s <= 1.0 && k > 0 && l > 0);
  return 1.0 - std::pow(1.0 - std::pow(s, k), l);
}

double WWayProbability(double s_prime, int w, SemanticMode mode) {
  SABLOCK_DCHECK(s_prime >= 0.0 && s_prime <= 1.0 && w > 0);
  if (mode == SemanticMode::kAnd) {
    return std::pow(s_prime, w);
  }
  return 1.0 - std::pow(1.0 - s_prime, w);
}

double SaLshCollisionProbability(double s, double s_prime, int k, int l,
                                 int w, SemanticMode mode) {
  double p = WWayProbability(s_prime, w, mode);
  return 1.0 - std::pow(1.0 - std::pow(s, k) * p, l);
}

int MinTablesFor(double s, int k, double p) {
  double sk = std::pow(s, k);
  if (sk <= 0.0 || sk >= 1.0 || p >= 1.0) return -1;
  if (p <= 0.0) return 1;
  // 1 - (1 - s^k)^l >= p  <=>  l >= log(1 - p) / log(1 - s^k).
  double l = std::log(1.0 - p) / std::log(1.0 - sk);
  return static_cast<int>(std::ceil(l - 1e-12));
}

}  // namespace sablock::core
