#ifndef SABLOCK_CORE_SEMANTIC_H_
#define SABLOCK_CORE_SEMANTIC_H_

#include <functional>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/taxonomy.h"
#include "data/record.h"

namespace sablock::core {

/// A semantic function ζ : R -> P(C_T) (Definition 4.2). Maps each record
/// to a set of taxonomy concepts — its semantic interpretation — satisfying
///  (a) Specificity: no concept in ζ(r) subsumes another member, and
///  (b) Isolation: ζ(r) is computed from r alone.
/// Implementations must return concepts pruned to the most specific set;
/// use Taxonomy::PruneToMostSpecific to enforce (a).
class SemanticFunction {
 public:
  virtual ~SemanticFunction() = default;

  /// The semantic interpretation ζ(r) of record `id`. May be empty for
  /// records with no recognizable semantics.
  virtual std::vector<ConceptId> Interpret(const data::Dataset& dataset,
                                           data::RecordId id) const = 0;

  /// The taxonomy this function interprets into.
  virtual const Taxonomy& taxonomy() const = 0;

  /// Interprets every record of the dataset.
  std::vector<std::vector<ConceptId>> InterpretAll(
      const data::Dataset& dataset) const;
};

/// Predicate over one attribute of a record, used by RuleSemanticFunction.
struct AttributePredicate {
  enum class Kind {
    kPresent,  ///< attribute value is non-empty
    kMissing,  ///< attribute value is empty
    kEquals,   ///< attribute value equals `value` exactly
  };
  std::string attribute;
  Kind kind = Kind::kPresent;
  std::string value;  ///< only for kEquals

  static AttributePredicate Present(std::string attr) {
    return {std::move(attr), Kind::kPresent, ""};
  }
  static AttributePredicate Missing(std::string attr) {
    return {std::move(attr), Kind::kMissing, ""};
  }
  static AttributePredicate Equals(std::string attr, std::string value) {
    return {std::move(attr), Kind::kEquals, std::move(value)};
  }
};

/// One rule: if all conditions hold, the record is related to `concepts`
/// (concept names). Names absent from the taxonomy are resolved through the
/// `fallback` parent map (the paper's Section 6.3.3 behaviour: records
/// related to a concept missing from a taxonomy variant become related to
/// its parent concept instead).
struct SemanticRule {
  std::vector<AttributePredicate> conditions;
  std::vector<std::string> concepts;
};

/// Rule-table semantic function. Supports both of the paper's semantic
/// functions: the missing-value-pattern function for Cora (Table 1) and the
/// attribute-value function for NC Voter. Matching is first-match-wins by
/// default (Table 1 patterns are mutually exclusive); with
/// `accumulate_matches`, all matching rules contribute concepts (used for
/// per-attribute value rules).
class RuleSemanticFunction : public SemanticFunction {
 public:
  /// `fallback` maps a concept name to the name to use when it is absent
  /// from `taxonomy` (applied transitively).
  RuleSemanticFunction(Taxonomy taxonomy, std::vector<SemanticRule> rules,
                       std::unordered_map<std::string, std::string> fallback =
                           {},
                       bool accumulate_matches = false);

  std::vector<ConceptId> Interpret(const data::Dataset& dataset,
                                   data::RecordId id) const override;

  const Taxonomy& taxonomy() const override { return taxonomy_; }

 private:
  struct ResolvedRule {
    std::vector<AttributePredicate> conditions;
    std::vector<ConceptId> concepts;
  };

  ConceptId ResolveName(
      const std::string& name,
      const std::unordered_map<std::string, std::string>& fallback) const;

  Taxonomy taxonomy_;
  std::vector<ResolvedRule> rules_;
  bool accumulate_matches_;
};

/// Adapter wrapping an arbitrary callable as a semantic function. The
/// callable receives (dataset, record id) and returns concept ids; results
/// are pruned to the most specific set automatically.
class LambdaSemanticFunction : public SemanticFunction {
 public:
  using Fn = std::function<std::vector<ConceptId>(const data::Dataset&,
                                                  data::RecordId)>;

  LambdaSemanticFunction(Taxonomy taxonomy, Fn fn)
      : taxonomy_(std::move(taxonomy)), fn_(std::move(fn)) {}

  std::vector<ConceptId> Interpret(const data::Dataset& dataset,
                                   data::RecordId id) const override {
    std::vector<ConceptId> zeta = fn_(dataset, id);
    taxonomy_.PruneToMostSpecific(&zeta);
    return zeta;
  }

  const Taxonomy& taxonomy() const override { return taxonomy_; }

 private:
  Taxonomy taxonomy_;
  Fn fn_;
};

}  // namespace sablock::core

#endif  // SABLOCK_CORE_SEMANTIC_H_
