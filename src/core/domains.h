#ifndef SABLOCK_CORE_DOMAINS_H_
#define SABLOCK_CORE_DOMAINS_H_

#include <memory>
#include <string>
#include <vector>

#include "core/semantic.h"

namespace sablock::core {

/// A ready-to-use experimental domain: the semantic machinery (taxonomy +
/// semantic function) plus the blocking attributes the paper uses for the
/// corresponding dataset.
struct Domain {
  std::shared_ptr<const SemanticFunction> semantics;
  std::vector<std::string> blocking_attributes;

  const Taxonomy& taxonomy() const { return semantics->taxonomy(); }
};

/// Which variant of the bibliographic taxonomy t_bib to use (Fig. 10).
enum class BibVariant {
  kFull,           ///< t_bib of Fig. 3
  kNoReviewLevel,  ///< t_(bib,1): PeerReviewed / NonPeerReviewed removed
  kNoBook,         ///< t_(bib,2): Book removed
  kNoJournal,      ///< t_(bib,3): Journal removed
};

/// Bibliographic domain (Cora experiments): taxonomy variant + the
/// missing-value-pattern semantic function of Table 1 over the attributes
/// `journal`, `booktitle`, `institution`, with blocking on authors + title.
/// Concepts referencing nodes absent from the chosen variant fall back to
/// their parents (Section 6.3.3).
Domain MakeBibliographicDomain(BibVariant variant = BibVariant::kFull);

/// Voter domain (NC Voter experiments): a two-level person taxonomy
/// (gender × race, 12 leaf concepts — the paper's 12-bit signatures) and a
/// value-based semantic function over the `gender` and `race` attributes.
/// Uncertain values ('u' or missing) map to the most specific concept still
/// supported by the data: unknown race -> the gender node; unknown gender
/// -> both race leaves; both unknown -> the root. Blocking is on
/// first_name + last_name.
Domain MakeVoterDomain();

/// Race codes used by the voter domain and generator.
const std::vector<std::string>& VoterRaceCodes();

}  // namespace sablock::core

#endif  // SABLOCK_CORE_DOMAINS_H_
