#include "core/iterative_blocker.h"

#include <algorithm>
#include <unordered_map>
#include <vector>

#include "common/check.h"
#include "common/hashing.h"
#include "core/block_utils.h"
#include "core/minhash.h"
#include "features/feature_store.h"

namespace sablock::core {

IterativeLshBlocker::IterativeLshBlocker(LshParams params,
                                         double merge_threshold,
                                         int iterations)
    : params_(std::move(params)),
      merge_threshold_(merge_threshold),
      iterations_(iterations) {
  SABLOCK_CHECK(merge_threshold_ >= 0.0 && merge_threshold_ <= 1.0);
  SABLOCK_CHECK(iterations_ >= 1);
}

std::string IterativeLshBlocker::name() const {
  return "HARRA(k=" + std::to_string(params_.k) +
         ",l=" + std::to_string(params_.l) + ",t=" +
         std::to_string(static_cast<int>(merge_threshold_ * 100)) + "%" +
         ",it=" + std::to_string(iterations_) + ")";
}

void IterativeLshBlocker::Run(const data::Dataset& dataset,
                              BlockSink& sink) const {
  const int num_hashes = params_.k * params_.l;
  MinHasher hasher(num_hashes, params_.seed);

  // Super-record state: each group starts as one record; merging unions
  // shingle sets. The seed sets are copied out of the shared feature
  // cache because merging mutates them. `group_of[r]` tracks each
  // record's current group.
  features::FeatureView::ShingleHandle shingle_cache =
      dataset.features().ShinglesFor(params_.attributes, params_.q);
  std::vector<std::vector<uint64_t>> shingles;
  std::vector<Block> members;
  std::vector<uint32_t> group_of(dataset.size());
  shingles.reserve(dataset.size());
  for (data::RecordId id = 0; id < dataset.size(); ++id) {
    shingles.push_back(shingle_cache.Shingles(id));
    members.push_back({id});
    group_of[id] = id;
  }

  BlockCollection merge_log;
  for (int iter = 0; iter < iterations_; ++iter) {
    // Active groups are the current representatives.
    std::vector<uint32_t> active;
    for (uint32_t g = 0; g < members.size(); ++g) {
      if (!members[g].empty() && !shingles[g].empty()) active.push_back(g);
    }
    if (active.size() < 2) break;

    // Hash the active groups.
    std::unordered_map<uint32_t, std::vector<uint64_t>> sigs;
    sigs.reserve(active.size());
    for (uint32_t g : active) {
      sigs.emplace(g, hasher.Signature(shingles[g]));
    }

    bool merged_any = false;
    for (int t = 0; t < params_.l; ++t) {
      std::unordered_map<uint64_t, std::vector<uint32_t>> buckets;
      for (uint32_t g : active) {
        if (members[g].empty()) continue;  // merged away this iteration
        uint64_t key = Mix64(0x4a88a + static_cast<uint64_t>(t));
        for (int r = 0; r < params_.k; ++r) {
          key = HashCombine(key,
                            sigs[g][static_cast<size_t>(t) * params_.k + r]);
        }
        buckets[key].push_back(g);
      }
      for (auto& [key, bucket] : buckets) {
        if (bucket.size() < 2) continue;
        // Merge every group that clears the threshold against the
        // bucket's first surviving group (HARRA's greedy in-bucket pass).
        uint32_t head = bucket[0];
        for (size_t i = 1; i < bucket.size(); ++i) {
          uint32_t g = bucket[i];
          if (members[g].empty() || members[head].empty()) continue;
          double sim = MinHasher::EstimateJaccard(sigs[head], sigs[g]);
          if (sim < merge_threshold_) continue;
          // Merge g into head: union shingles and members; record pairs.
          Block pair_block = {members[head].front(), members[g].front()};
          merge_log.Add(std::move(pair_block));
          std::vector<uint64_t> merged;
          std::set_union(shingles[head].begin(), shingles[head].end(),
                         shingles[g].begin(), shingles[g].end(),
                         std::back_inserter(merged));
          shingles[head] = std::move(merged);
          members[head].insert(members[head].end(), members[g].begin(),
                               members[g].end());
          members[g].clear();
          shingles[g].clear();
          merged_any = true;
        }
      }
    }
    if (!merged_any) break;
  }

  // Final blocks: the connected components of the merge log (equivalently
  // the surviving groups with >= 2 members).
  for (const Block& group : members) {
    if (sink.Done()) return;
    if (group.size() >= 2) {
      Block sorted = group;
      std::sort(sorted.begin(), sorted.end());
      sink.Consume(std::move(sorted));
    }
  }
}

}  // namespace sablock::core
