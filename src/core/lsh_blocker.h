#ifndef SABLOCK_CORE_LSH_BLOCKER_H_
#define SABLOCK_CORE_LSH_BLOCKER_H_

#include <memory>
#include <span>
#include <string>
#include <vector>

#include "core/blocking.h"
#include "core/minhash.h"
#include "core/semantic.h"
#include "core/semhash.h"
#include "features/feature_store.h"

namespace sablock::core {

/// Parameters of the textual (minhash) part of the LSH blocking family:
/// l hash tables of k minhash functions each (Section 5.1, "amplifying").
struct LshParams {
  int k = 4;                            ///< minhash functions per table
  int l = 63;                           ///< number of hash tables
  int q = 3;                            ///< q-gram size for shingling
  std::vector<std::string> attributes;  ///< attributes used for shingling
  uint64_t seed = 7;                    ///< hash-family seed
};

/// How a w-way semantic hash function combines its w semhash draws
/// (Section 5.2): AND requires all chosen features shared, OR at least one.
enum class SemanticMode { kAnd, kOr };

/// Parameters of the w-way semantic hash function augmenting each table.
struct SemanticParams {
  int w = 1;
  SemanticMode mode = SemanticMode::kOr;
  uint64_t seed = 11;
};

/// Plain LSH blocking over textual similarity only (the paper's "LSH"
/// competitor): records whose k minhash values agree in at least one of the
/// l tables share a block. Records with no shingles (all-empty attributes)
/// are excluded from all tables.
class LshBlocker : public BlockingTechnique {
 public:
  explicit LshBlocker(LshParams params);

  std::string name() const override;
  using BlockingTechnique::Run;
  void Run(const data::Dataset& dataset, BlockSink& sink) const override;

  const LshParams& params() const { return params_; }

 private:
  LshParams params_;
};

/// Semantic-aware LSH blocking (the paper's contribution, "SA-LSH"):
/// each of the l minhash tables is augmented with a w-way semantic hash
/// function built from w randomly chosen semhash functions (chosen per
/// table, without replacement).
///
///  - AND mode: a record enters table t only if all w chosen semhash bits
///    are set — two records collide iff the pairwise w-way AND is true.
///  - OR mode: a record enters one sub-bucket per set bit among the w
///    chosen features — two records collide iff they share at least one
///    chosen set bit, exactly the pairwise w-way OR.
///
/// Records that are semantically dissimilar (no shared semantic feature)
/// can never be placed in the same block regardless of textual similarity
/// (Proposition 5.3) when w covers the full signature.
class SemanticAwareLshBlocker : public BlockingTechnique {
 public:
  SemanticAwareLshBlocker(LshParams lsh_params, SemanticParams sem_params,
                          std::shared_ptr<const SemanticFunction> semantics);

  std::string name() const override;
  using BlockingTechnique::Run;
  void Run(const data::Dataset& dataset, BlockSink& sink) const override;

  const LshParams& lsh_params() const { return lsh_params_; }
  const SemanticParams& semantic_params() const { return sem_params_; }

 private:
  LshParams lsh_params_;
  SemanticParams sem_params_;
  std::shared_ptr<const SemanticFunction> semantics_;
};

/// The cached minhash signatures of a dataset under the given params — a
/// handle into the dataset's FeatureStore, computed on first request and
/// shared by every LSH-family blocker (and engine shard) using the same
/// (attributes, q, k·l, seed). This is what the blockers use internally.
features::FeatureView::SignatureHandle MinhashSignatures(
    const data::Dataset& dataset, const LshParams& params);

// ----------------------------------------------------------------------
// Bucketing primitives shared between the batch blockers above and the
// incremental LSH/SA-LSH indexes (src/index/). Both sides MUST place a
// record in exactly the same buckets for the index/batch parity guarantee
// to hold, so the bucket-key computation lives here, once.

/// Bucket key of table `table` for signature rows
/// [table*k, table*k + k) of `sig`.
uint64_t LshBandKey(std::span<const uint64_t> sig, int table, int k);

/// True for the sentinel signature of an empty shingle set; such records
/// are excluded from every LSH table.
bool IsEmptyMinhashSignature(std::span<const uint64_t> sig);

/// The w semhash functions (feature indices) table `table` draws under
/// `params`, for a semantic dimension of `dim` features. w is clamped to
/// dim. This is the per-table random draw of Section 5.2, deterministic
/// in (seed, table, dim).
std::vector<size_t> SemanticTableChoices(const SemanticParams& params,
                                         uint32_t dim, int table);

/// Appends the bucket keys record `sem` lands in for one table, given its
/// textual band key and the table's chosen semhash functions: AND mode
/// yields `band` itself iff all chosen bits are set; OR mode yields one
/// derived key per set chosen bit.
void AppendSemanticBucketKeys(uint64_t band, const SemSignature& sem,
                              SemanticMode mode,
                              const std::vector<size_t>& chosen,
                              std::vector<uint64_t>* keys);

/// Materializing wrapper around MinhashSignatures (copies the cached
/// signatures out); kept for tests and ablation benches.
std::vector<std::vector<uint64_t>> ComputeMinhashSignatures(
    const data::Dataset& dataset, const LshParams& params);

}  // namespace sablock::core

#endif  // SABLOCK_CORE_LSH_BLOCKER_H_
