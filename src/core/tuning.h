#ifndef SABLOCK_CORE_TUNING_H_
#define SABLOCK_CORE_TUNING_H_

#include <cstdint>
#include <string>
#include <vector>

#include "data/record.h"

namespace sablock::core {

/// Empirical distribution of textual similarity values of true matches,
/// learned from a (training) dataset — the probability density fs(x) of
/// Section 5.3, shown in the upper row of Fig. 6.
class SimilarityDistribution {
 public:
  explicit SimilarityDistribution(int num_bins = 20);

  /// Adds one observed similarity value in [0, 1].
  void Add(double similarity);

  /// Number of observations.
  uint64_t count() const { return count_; }
  int num_bins() const { return static_cast<int>(bins_.size()); }

  /// Fraction of observations in bin i (the percentage rows of Fig. 6).
  double BinFraction(int i) const;

  /// Lower edge of bin i.
  double BinLowerEdge(int i) const;

  /// Empirical CDF at x: fraction of observations with similarity <= x.
  double Cdf(double x) const;

  /// Smallest similarity threshold s_h such that ∫_0^{s_h} fs = epsilon
  /// (Section 5.3 step (i)): records below s_h are the lost true matches.
  /// Quantized to bin edges (conservative upper edge).
  double ThresholdForErrorRatio(double epsilon) const;

 private:
  std::vector<uint64_t> bins_;
  std::vector<double> raw_;  // kept for exact quantiles
  uint64_t count_ = 0;
};

/// Options for measuring the similarity distribution of a dataset's true
/// matches. `q = 0` means exact-value similarity (whole-string equality),
/// otherwise Jaccard over q-gram sets — the four series of Fig. 6.
struct DistributionOptions {
  std::vector<std::string> attributes;
  int q = 3;
  /// Cap on sampled true-match pairs (0 = all pairs).
  uint64_t max_pairs = 0;
  uint64_t seed = 13;
};

/// Measures the textual-similarity distribution of all ground-truth match
/// pairs of `dataset`.
SimilarityDistribution MeasureTrueMatchSimilarity(
    const data::Dataset& dataset, const DistributionOptions& options);

/// The solved LSH parameters of Section 5.3 step (ii).
struct LshTuning {
  int k = 0;
  int l = 0;
  bool feasible = false;
};

/// Chooses the smallest k (and its minimal l) such that
///   P[collide | s = sh] >= ph   and   P[collide | s = sl] <= pl,
/// with P = 1 - (1 - s^k)^l. Mirrors the paper's worked example:
/// sh=0.3, ph=0.4, sl=0.2, pl=0.1 yields k=4, l=63.
LshTuning TuneKL(double sh, double ph, double sl, double pl, int max_k = 24,
                 int max_l = 100000);

}  // namespace sablock::core

#endif  // SABLOCK_CORE_TUNING_H_
