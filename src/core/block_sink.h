#ifndef SABLOCK_CORE_BLOCK_SINK_H_
#define SABLOCK_CORE_BLOCK_SINK_H_

#include <algorithm>
#include <cstdint>
#include <vector>

#include "data/record.h"

namespace sablock::core {

/// A block: the ids of the records placed together by a blocking technique.
using Block = std::vector<data::RecordId>;

/// Streaming consumer of blocks. Techniques emit every block through a sink
/// instead of materializing a full collection, so downstream stages
/// (counting, capping, sharded fan-out, meta-blocking) can process blocks
/// as they are produced.
///
/// Thread-safety contract: sinks are NOT internally synchronized — a
/// sink's Consume()/Done() must be called by one producer at a time.
/// Concurrent producers (the sharded execution engine's stream mode)
/// share one engine::ConcurrentSink wrapping the sink chain; it serializes
/// every Consume() and Done() under a single mutex, which keeps stateful
/// sinks such as CappedSink exactly as correct as in the single-threaded
/// case. Running concurrent producers into a bare sink is a data race
/// (caught by the tools/check.sh --tsan build).
class BlockSink {
 public:
  virtual ~BlockSink() = default;

  /// Receives one block. Blocks with fewer than 2 records carry no
  /// comparisons; techniques normally skip emitting them.
  virtual void Consume(Block block) = 0;

  /// Backpressure signal: once true, the sink no longer wants blocks.
  /// Techniques poll this in their emission loops and stop early; a
  /// technique that cannot stop mid-phase may still Consume afterwards and
  /// the sink must tolerate (typically drop) those blocks.
  virtual bool Done() const { return false; }

  /// End-of-stream signal for sink chains. Buffering sinks (pipeline
  /// barrier stages such as meta-blocking) run their deferred phase here,
  /// emit downstream, and cascade the flush; pass-through sinks forward
  /// it; terminal sinks ignore it (the default). Techniques never call
  /// Flush — the pipeline runner does, exactly once, after the producing
  /// technique returns.
  virtual void Flush() {}
};

/// Sink that keeps only the aggregate counts a quality sweep needs — block
/// count, Σ|b|, Σ|b|(|b|-1)/2 and the largest block — without storing any
/// block. O(1) memory regardless of output size.
///
/// Terminal by default; constructed with a `next` sink it counts and
/// forwards, so it can be interposed between pipeline stages to measure
/// the block/pair stream at any point of a chain (eval::RunPipeline).
class PairCountingSink : public BlockSink {
 public:
  PairCountingSink() = default;
  explicit PairCountingSink(BlockSink& next) : next_(&next) {}

  void Consume(Block block) override {
    ++num_blocks_;
    const uint64_t n = block.size();
    comparisons_ += n * (n - 1) / 2;
    total_block_sizes_ += n;
    max_block_size_ = std::max<uint64_t>(max_block_size_, n);
    if (next_ != nullptr) next_->Consume(std::move(block));
  }

  bool Done() const override { return next_ != nullptr && next_->Done(); }

  void Flush() override {
    if (next_ != nullptr) next_->Flush();
  }

  uint64_t num_blocks() const { return num_blocks_; }
  /// Redundancy-counting comparison count |Γm|.
  uint64_t comparisons() const { return comparisons_; }
  uint64_t total_block_sizes() const { return total_block_sizes_; }
  uint64_t max_block_size() const { return max_block_size_; }

 private:
  BlockSink* next_ = nullptr;
  uint64_t num_blocks_ = 0;
  uint64_t comparisons_ = 0;
  uint64_t total_block_sizes_ = 0;
  uint64_t max_block_size_ = 0;
};

/// Budgeted sink: forwards blocks to an inner sink until a comparison
/// budget is spent, then reports Done so the producing technique can stop
/// early (progressive / budgeted blocking). The budget is measured in
/// redundancy-counting comparisons Σ|b|(|b|-1)/2; the block that crosses
/// the budget is still forwarded, so the forwarded total may exceed the
/// budget by less than one block.
///
/// Not safe for concurrent producers on its own: comparisons_ / done_ /
/// dropped_blocks_ are plain fields, and Consume() must observe them and
/// forward to the inner sink atomically (making the counters atomic would
/// not make the inner forward safe). Multi-threaded producers must wrap
/// the chain in engine::ConcurrentSink — its mutex serializes Consume()
/// and Done(), so budget accounting, the done_ transition and the
/// dropped-block count all stay exact (see concurrent_sink_test).
class CappedSink : public BlockSink {
 public:
  CappedSink(BlockSink& inner, uint64_t comparison_budget)
      : inner_(&inner), budget_(comparison_budget) {}

  void Consume(Block block) override {
    if (done_) {
      ++dropped_blocks_;
      return;
    }
    const uint64_t n = block.size();
    comparisons_ += n * (n - 1) / 2;
    inner_->Consume(std::move(block));
    if (comparisons_ >= budget_) done_ = true;
  }

  bool Done() const override { return done_; }

  /// End-of-stream always reaches the inner chain, even once the budget
  /// is spent — a downstream barrier stage still needs its flush.
  void Flush() override { inner_->Flush(); }

  /// Comparisons forwarded so far.
  uint64_t comparisons() const { return comparisons_; }
  /// Blocks received after the budget was exhausted (from techniques that
  /// cannot stop mid-phase). Zero when the producer honours Done().
  uint64_t dropped_blocks() const { return dropped_blocks_; }

 private:
  BlockSink* inner_;
  uint64_t budget_;
  uint64_t comparisons_ = 0;
  uint64_t dropped_blocks_ = 0;
  bool done_ = false;
};

}  // namespace sablock::core

#endif  // SABLOCK_CORE_BLOCK_SINK_H_
