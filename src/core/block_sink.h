#ifndef SABLOCK_CORE_BLOCK_SINK_H_
#define SABLOCK_CORE_BLOCK_SINK_H_

#include <algorithm>
#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "core/budget.h"
#include "data/record.h"

namespace sablock::core {

/// A block: the ids of the records placed together by a blocking technique.
using Block = std::vector<data::RecordId>;

/// Streaming consumer of blocks. Techniques emit every block through a sink
/// instead of materializing a full collection, so downstream stages
/// (counting, capping, sharded fan-out, meta-blocking) can process blocks
/// as they are produced.
///
/// Thread-safety contract: sinks are NOT internally synchronized — a
/// sink's Consume()/Done() must be called by one producer at a time.
/// Concurrent producers (the sharded execution engine's stream mode)
/// share one engine::ConcurrentSink wrapping the sink chain; it serializes
/// every Consume() and Done() under a single mutex. Budget accounting is
/// the exception: BudgetedSink instances share one atomic BudgetMeter, so
/// each concurrent producer gets its own BudgetedSink over a thread-safe
/// downstream and no ConcurrentSink wrap is needed for the countdown
/// itself. Running concurrent producers into any other bare stateful sink
/// is a data race (caught by the tools/check.sh --tsan build).
class BlockSink {
 public:
  virtual ~BlockSink() = default;

  /// Receives one block. Blocks with fewer than 2 records carry no
  /// comparisons; techniques normally skip emitting them.
  virtual void Consume(Block block) = 0;

  /// Backpressure signal: once true, the sink no longer wants blocks.
  /// Techniques poll this in their emission loops and stop early; a
  /// technique that cannot stop mid-phase may still Consume afterwards and
  /// the sink must tolerate (typically drop) those blocks.
  virtual bool Done() const { return false; }

  /// End-of-stream signal for sink chains. Buffering sinks (pipeline
  /// barrier stages such as meta-blocking) run their deferred phase here,
  /// emit downstream, and cascade the flush; pass-through sinks forward
  /// it; terminal sinks ignore it (the default). Techniques never call
  /// Flush — the pipeline runner does, exactly once, after the producing
  /// technique returns.
  virtual void Flush() {}
};

/// Sink that keeps only the aggregate counts a quality sweep needs — block
/// count, Σ|b|, Σ|b|(|b|-1)/2 and the largest block — without storing any
/// block. O(1) memory regardless of output size.
///
/// Terminal by default; constructed with a `next` sink it counts and
/// forwards, so it can be interposed between pipeline stages to measure
/// the block/pair stream at any point of a chain (eval::RunPipeline).
class PairCountingSink : public BlockSink {
 public:
  PairCountingSink() = default;
  explicit PairCountingSink(BlockSink& next) : next_(&next) {}

  void Consume(Block block) override {
    ++num_blocks_;
    const uint64_t n = block.size();
    comparisons_ += n * (n - 1) / 2;
    total_block_sizes_ += n;
    max_block_size_ = std::max<uint64_t>(max_block_size_, n);
    if (next_ != nullptr) next_->Consume(std::move(block));
  }

  bool Done() const override { return next_ != nullptr && next_->Done(); }

  void Flush() override {
    if (next_ != nullptr) next_->Flush();
  }

  uint64_t num_blocks() const { return num_blocks_; }
  /// Redundancy-counting comparison count |Γm|.
  uint64_t comparisons() const { return comparisons_; }
  uint64_t total_block_sizes() const { return total_block_sizes_; }
  uint64_t max_block_size() const { return max_block_size_; }

 private:
  BlockSink* next_ = nullptr;
  uint64_t num_blocks_ = 0;
  uint64_t comparisons_ = 0;
  uint64_t total_block_sizes_ = 0;
  uint64_t max_block_size_ = 0;
};

/// Budget gate on a block stream: forwards blocks to an inner sink while
/// a shared BudgetMeter has budget, then reports Done so the producing
/// technique can stop early (progressive / budgeted blocking). Each block
/// spends its redundancy-counting comparisons |b|(|b|-1)/2; the block
/// that crosses the budget is still forwarded, so the forwarded total may
/// exceed the pair limit by less than one block per producer.
///
/// The meter's countdown is atomic, so concurrent producers account
/// against one global budget by giving each its own BudgetedSink over the
/// same meter — no ConcurrentSink wrap is required for the budget itself
/// (the inner sink still needs its own thread-safety if shared). The
/// dropped-block counter is per-instance plain state, exact under the
/// one-producer-per-sink contract.
class BudgetedSink : public BlockSink {
 public:
  BudgetedSink(BlockSink& inner, std::shared_ptr<BudgetMeter> meter)
      : inner_(&inner), meter_(std::move(meter)) {}

  void Consume(Block block) override {
    const uint64_t n = block.size();
    if (!meter_->Spend(n * (n - 1) / 2)) {
      ++dropped_blocks_;
      return;
    }
    inner_->Consume(std::move(block));
  }

  bool Done() const override {
    return meter_->Exhausted() || inner_->Done();
  }

  /// End-of-stream always reaches the inner chain, even once the budget
  /// is spent — a downstream barrier stage still needs its flush.
  void Flush() override { inner_->Flush(); }

  const std::shared_ptr<BudgetMeter>& meter() const { return meter_; }

  /// Blocks received after the budget was exhausted (from techniques that
  /// cannot stop mid-phase). Zero when the producer honours Done().
  uint64_t dropped_blocks() const { return dropped_blocks_; }

 private:
  BlockSink* inner_;
  std::shared_ptr<BudgetMeter> meter_;
  uint64_t dropped_blocks_ = 0;
};

/// Back-compat shim over BudgetedSink (one release): the pre-Budget
/// comparison cap. `CappedSink(inner, n)` ≡ BudgetedSink over a private
/// meter with `pairs=n`. New code should construct a core::Budget and a
/// BudgetedSink directly (sharing the meter across producers for global
/// budgets); this alias keeps the old constructor and accessors compiling.
class CappedSink : public BudgetedSink {
 public:
  CappedSink(BlockSink& inner, uint64_t comparison_budget)
      : BudgetedSink(inner, std::make_shared<BudgetMeter>(Budget{
                                .pairs = comparison_budget})) {}

  /// Comparisons forwarded so far.
  uint64_t comparisons() const { return meter()->Spent(); }
};

}  // namespace sablock::core

#endif  // SABLOCK_CORE_BLOCK_SINK_H_
