#include "core/semhash.h"

#include <bit>

#include "common/check.h"

namespace sablock::core {

uint32_t SemSignature::PopCount() const {
  uint32_t count = 0;
  for (uint64_t w : words_) count += std::popcount(w);
  return count;
}

uint32_t SemSignature::AndCount(const SemSignature& other) const {
  SABLOCK_DCHECK(dimension_ == other.dimension_);
  uint32_t count = 0;
  for (size_t i = 0; i < words_.size(); ++i) {
    count += std::popcount(words_[i] & other.words_[i]);
  }
  return count;
}

double SemSignature::Jaccard(const SemSignature& other) const {
  SABLOCK_DCHECK(dimension_ == other.dimension_);
  uint32_t inter = 0;
  uint32_t uni = 0;
  for (size_t i = 0; i < words_.size(); ++i) {
    inter += std::popcount(words_[i] & other.words_[i]);
    uni += std::popcount(words_[i] | other.words_[i]);
  }
  if (uni == 0) return 1.0;
  return static_cast<double>(inter) / static_cast<double>(uni);
}

SemhashEncoder SemhashEncoder::Build(
    const Taxonomy& taxonomy,
    const std::vector<std::vector<ConceptId>>& interpretations) {
  SABLOCK_CHECK_MSG(taxonomy.finalized(), "taxonomy must be finalized");
  std::vector<bool> used(taxonomy.TotalLeaves(), false);
  for (const std::vector<ConceptId>& zeta : interpretations) {
    for (ConceptId c : zeta) {
      for (uint32_t o = taxonomy.LeafBegin(c); o < taxonomy.LeafEnd(c); ++o) {
        used[o] = true;
      }
    }
  }
  SemhashEncoder enc;
  enc.ordinal_to_feature_.assign(taxonomy.TotalLeaves(), kInvalidConcept);
  for (uint32_t o = 0; o < used.size(); ++o) {
    if (used[o]) {
      enc.ordinal_to_feature_[o] =
          static_cast<uint32_t>(enc.feature_leaf_ordinals_.size());
      enc.feature_leaf_ordinals_.push_back(o);
      enc.feature_concepts_.push_back(taxonomy.LeafAt(o));
    }
  }
  return enc;
}

SemhashEncoder SemhashEncoder::BuildFromAllLeaves(const Taxonomy& taxonomy) {
  SABLOCK_CHECK_MSG(taxonomy.finalized(), "taxonomy must be finalized");
  SemhashEncoder enc;
  enc.ordinal_to_feature_.resize(taxonomy.TotalLeaves());
  enc.feature_leaf_ordinals_.resize(taxonomy.TotalLeaves());
  enc.feature_concepts_.resize(taxonomy.TotalLeaves());
  for (uint32_t o = 0; o < taxonomy.TotalLeaves(); ++o) {
    enc.ordinal_to_feature_[o] = o;
    enc.feature_leaf_ordinals_[o] = o;
    enc.feature_concepts_[o] = taxonomy.LeafAt(o);
  }
  return enc;
}

ConceptId SemhashEncoder::FeatureConcept(uint32_t i) const {
  SABLOCK_DCHECK(i < feature_concepts_.size());
  return feature_concepts_[i];
}

SemSignature SemhashEncoder::Encode(
    const Taxonomy& taxonomy, const std::vector<ConceptId>& zeta) const {
  SemSignature sig(dimension());
  for (ConceptId c : zeta) {
    for (uint32_t o = taxonomy.LeafBegin(c); o < taxonomy.LeafEnd(c); ++o) {
      uint32_t feature = ordinal_to_feature_[o];
      if (feature != kInvalidConcept) sig.Set(feature);
    }
  }
  return sig;
}

CompressedSemhash::CompressedSemhash(int num_hashes, uint64_t seed) {
  SABLOCK_CHECK(num_hashes > 0);
  hashes_.reserve(static_cast<size_t>(num_hashes));
  for (int i = 0; i < num_hashes; ++i) {
    hashes_.push_back(
        UniversalHash::FromSeed(seed ^ 0x5e3a, static_cast<uint64_t>(i)));
  }
}

int CompressedSemhash::num_hashes() const {
  return static_cast<int>(hashes_.size());
}

std::vector<uint64_t> CompressedSemhash::Compress(
    const SemSignature& signature) const {
  std::vector<uint64_t> out(hashes_.size(), UniversalHash::kPrime);
  for (uint32_t bit = 0; bit < signature.dimension(); ++bit) {
    if (!signature.Get(bit)) continue;
    for (size_t i = 0; i < hashes_.size(); ++i) {
      uint64_t h = hashes_[i](bit);
      if (h < out[i]) out[i] = h;
    }
  }
  return out;
}

double CompressedSemhash::EstimateJaccard(const std::vector<uint64_t>& a,
                                          const std::vector<uint64_t>& b) {
  SABLOCK_CHECK(a.size() == b.size() && !a.empty());
  size_t agree = 0;
  for (size_t i = 0; i < a.size(); ++i) {
    if (a[i] == b[i]) ++agree;
  }
  return static_cast<double>(agree) / static_cast<double>(a.size());
}

std::vector<SemSignature> SemhashEncoder::EncodeAll(
    const Taxonomy& taxonomy,
    const std::vector<std::vector<ConceptId>>& interpretations) const {
  std::vector<SemSignature> out;
  out.reserve(interpretations.size());
  for (const std::vector<ConceptId>& zeta : interpretations) {
    out.push_back(Encode(taxonomy, zeta));
  }
  return out;
}

}  // namespace sablock::core
