#include "progressive/scheduler.h"

#include <algorithm>
#include <numeric>
#include <random>
#include <utility>

#include "common/pair_set.h"
#include "pipeline/meta_graph.h"

namespace sablock::progressive {

namespace {

uint64_t PackPair(uint32_t a, uint32_t b) {
  if (a > b) std::swap(a, b);
  return (static_cast<uint64_t>(a) << 32) | b;
}

core::CandidatePair Unpack(uint64_t key, double score) {
  return {static_cast<uint32_t>(key >> 32),
          static_cast<uint32_t>(key & 0xffffffffULL), score};
}

/// Walks `input`'s blocks in a caller-chosen block order, enumerating
/// each block's pairs lexicographically and emitting every pair the
/// first time it is seen. Shared by the block-driven schedulers.
template <typename ScoreFn>
std::vector<core::CandidatePair> EmitFirstSeen(
    const core::BlockCollection& input, const std::vector<size_t>& order,
    ScoreFn&& score_of) {
  PairSet seen(std::min<uint64_t>(input.TotalComparisons() + 1, 1ULL << 22));
  std::vector<core::CandidatePair> out;
  for (size_t index : order) {
    const core::Block& b = input.blocks()[index];
    for (size_t i = 0; i < b.size(); ++i) {
      for (size_t j = i + 1; j < b.size(); ++j) {
        if (b[i] == b[j]) continue;
        if (!seen.Insert(b[i], b[j])) continue;
        out.push_back(Unpack(PackPair(b[i], b[j]), score_of(b)));
      }
    }
  }
  return out;
}

std::vector<size_t> IdentityOrder(size_t n) {
  std::vector<size_t> order(n);
  std::iota(order.begin(), order.end(), size_t{0});
  return order;
}

/// `bsa` — block-size-ascending: the classic progressive heuristic.
/// Small blocks are the most selective (few records agreeing on a rare
/// key), so their pairs are the likeliest matches; all pairs of size-2
/// blocks come first, then size-3, and so on. Ties (equal size) keep the
/// input's canonical block order.
class BlockSizeAscendingScheduler : public PairScheduler {
 public:
  std::string name() const override { return "bsa"; }

  std::vector<core::CandidatePair> Schedule(
      size_t /*num_records*/,
      const core::BlockCollection& input) const override {
    std::vector<size_t> order = IdentityOrder(input.NumBlocks());
    std::stable_sort(order.begin(), order.end(), [&](size_t x, size_t y) {
      return input.blocks()[x].size() < input.blocks()[y].size();
    });
    return EmitFirstSeen(input, order, [](const core::Block& b) {
      return 1.0 / static_cast<double>(b.size() - 1);
    });
  }
};

/// `ew-*` — meta-blocking edge weight: rank every distinct pair by its
/// blocking-graph weight (pipeline::WeightPairs), highest first. This is
/// the hierarchy of Galhotra et al.'s progressive recipe: the same
/// evidence MetaPrune thresholds on, spent best-first instead.
class EdgeWeightScheduler : public PairScheduler {
 public:
  explicit EdgeWeightScheduler(pipeline::MetaWeighting weighting)
      : weighting_(weighting) {}

  std::string name() const override {
    switch (weighting_) {
      case pipeline::MetaWeighting::kArcs: return "ew-arcs";
      case pipeline::MetaWeighting::kCbs: return "ew-cbs";
      case pipeline::MetaWeighting::kEcbs: return "ew-ecbs";
      case pipeline::MetaWeighting::kJs: return "ew-js";
      case pipeline::MetaWeighting::kEjs: return "ew-ejs";
    }
    return "ew-?";
  }

  std::vector<core::CandidatePair> Schedule(
      size_t num_records, const core::BlockCollection& input) const override {
    std::vector<pipeline::WeightedPair> weighted =
        pipeline::WeightPairs(num_records, input, weighting_);
    std::sort(weighted.begin(), weighted.end(),
              [](const pipeline::WeightedPair& x,
                 const pipeline::WeightedPair& y) {
                if (x.weight != y.weight) return x.weight > y.weight;
                return x.key < y.key;
              });
    std::vector<core::CandidatePair> out;
    out.reserve(weighted.size());
    for (const pipeline::WeightedPair& e : weighted) {
      out.push_back(Unpack(e.key, e.weight));
    }
    return out;
  }

 private:
  pipeline::MetaWeighting weighting_;
};

/// `rr` — round-robin over blocks: round r emits each block's r-th
/// not-yet-seen pair, cycling through blocks in canonical order. Spreads
/// the early budget across every block instead of draining one block at
/// a time — fair coverage when block quality is unknown.
class RoundRobinScheduler : public PairScheduler {
 public:
  std::string name() const override { return "rr"; }

  std::vector<core::CandidatePair> Schedule(
      size_t /*num_records*/,
      const core::BlockCollection& input) const override {
    // Per-block lexicographic pair cursors; one pass per round.
    struct Cursor {
      size_t i = 0;
      size_t j = 1;
    };
    const std::vector<core::Block>& blocks = input.blocks();
    std::vector<Cursor> cursors(blocks.size());
    PairSet seen(
        std::min<uint64_t>(input.TotalComparisons() + 1, 1ULL << 22));
    std::vector<core::CandidatePair> out;
    bool emitted = true;
    for (uint64_t round = 0; emitted; ++round) {
      emitted = false;
      double score = 1.0 / static_cast<double>(round + 1);
      for (size_t idx = 0; idx < blocks.size(); ++idx) {
        const core::Block& b = blocks[idx];
        Cursor& c = cursors[idx];
        // Advance to this block's next unseen pair, if any.
        while (c.i + 1 < b.size()) {
          if (c.j >= b.size()) {
            ++c.i;
            c.j = c.i + 1;
            continue;
          }
          uint32_t a = b[c.i];
          uint32_t z = b[c.j];
          ++c.j;
          if (a == z || !seen.Insert(a, z)) continue;
          out.push_back(Unpack(PackPair(a, z), score));
          emitted = true;
          break;  // one pair per block per round
        }
      }
    }
    return out;
  }
};

/// `random` — seeded uniform shuffle of the distinct pairs. Deliberately
/// ignorant: the floor every informed scheduler must dominate in the
/// progressive_recall gate.
class RandomScheduler : public PairScheduler {
 public:
  explicit RandomScheduler(uint64_t seed) : seed_(seed) {}

  std::string name() const override { return "random"; }

  std::vector<core::CandidatePair> Schedule(
      size_t /*num_records*/,
      const core::BlockCollection& input) const override {
    std::vector<core::CandidatePair> pairs = EmitFirstSeen(
        input, IdentityOrder(input.NumBlocks()),
        [](const core::Block&) { return 0.0; });
    std::mt19937_64 rng(seed_);
    std::shuffle(pairs.begin(), pairs.end(), rng);
    return pairs;
  }

 private:
  uint64_t seed_;
};

}  // namespace

Status MakeScheduler(const std::string& sched, uint64_t seed,
                     std::unique_ptr<PairScheduler>* out) {
  out->reset();
  if (sched == "bsa") {
    *out = std::make_unique<BlockSizeAscendingScheduler>();
  } else if (sched == "ew-arcs") {
    *out = std::make_unique<EdgeWeightScheduler>(
        pipeline::MetaWeighting::kArcs);
  } else if (sched == "ew-cbs") {
    *out =
        std::make_unique<EdgeWeightScheduler>(pipeline::MetaWeighting::kCbs);
  } else if (sched == "ew-ecbs") {
    *out = std::make_unique<EdgeWeightScheduler>(
        pipeline::MetaWeighting::kEcbs);
  } else if (sched == "ew-js") {
    *out =
        std::make_unique<EdgeWeightScheduler>(pipeline::MetaWeighting::kJs);
  } else if (sched == "ew-ejs") {
    *out =
        std::make_unique<EdgeWeightScheduler>(pipeline::MetaWeighting::kEjs);
  } else if (sched == "rr") {
    *out = std::make_unique<RoundRobinScheduler>();
  } else if (sched == "random") {
    *out = std::make_unique<RandomScheduler>(seed);
  } else {
    std::string known;
    for (const std::string& name : SchedulerNames()) {
      if (!known.empty()) known += ", ";
      known += name;
    }
    return Status::Error("unknown scheduler '" + sched +
                         "' (known: " + known + ")");
  }
  return Status::Ok();
}

std::vector<std::string> SchedulerNames() {
  return {"bsa", "ew-arcs", "ew-cbs", "ew-ecbs",
          "ew-js", "ew-ejs", "rr",     "random"};
}

}  // namespace sablock::progressive
