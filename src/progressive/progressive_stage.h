#ifndef SABLOCK_PROGRESSIVE_PROGRESSIVE_STAGE_H_
#define SABLOCK_PROGRESSIVE_PROGRESSIVE_STAGE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/budget.h"
#include "core/pair_sink.h"
#include "pipeline/stage.h"
#include "progressive/scheduler.h"

namespace sablock::progressive {

/// `progressive:sched=,pairs=,seconds=,recall-target=,seed=` — the
/// pay-as-you-go barrier stage: buffers the upstream block stream, ranks
/// every distinct candidate pair best-first with a PairScheduler, and
/// emits the ranked pairs as 2-record blocks downstream until the Budget
/// is exhausted. With an unlimited budget the output is exactly the
/// input's distinct-pair set (progressive_golden_test pins this against
/// the batch pipeline for every registry technique); with a budget it is
/// the highest-value prefix of that set.
///
/// Like MetaStage, the flush sorts the buffered blocks into canonical
/// content order first, so the emitted order depends only on the *set*
/// of input blocks — never on the engine's scheduling — and progressive
/// output is identical at any thread count.
///
/// The budget countdown is a shared atomic BudgetMeter; callers that
/// need one budget across several chains (engine-global budgets) can
/// inject a shared meter with set_meter() before the run. recall-target
/// budgets arm themselves from the dataset's ground truth at flush time
/// (datasets without ground truth never trip that limit).
class ProgressiveStage : public pipeline::PipelineStage {
 public:
  ProgressiveStage(std::shared_ptr<const PairScheduler> scheduler,
                   core::Budget budget, uint64_t seed)
      : scheduler_(std::move(scheduler)), budget_(budget), seed_(seed) {}

  std::string spec_name() const override { return "progressive"; }
  std::string name() const override;
  Kind kind() const override { return Kind::kBarrier; }
  std::unique_ptr<PipelineStage> Clone() const override {
    return std::make_unique<ProgressiveStage>(scheduler_, budget_, seed_);
  }

  void Consume(core::Block block) override {
    buffered_.push_back(std::move(block));
  }

  /// Never signals Done upstream: ranking needs the full input stream
  /// even when downstream has already stopped accepting.
  bool Done() const override { return false; }

  void Flush() override;

  /// Injects a shared budget countdown (replacing the stage-private one
  /// built from the spec'd Budget). Call before the run.
  void set_meter(std::shared_ptr<core::BudgetMeter> meter) {
    meter_ = std::move(meter);
  }

  /// The meter of the last (or injected) run; null before any flush.
  const std::shared_ptr<core::BudgetMeter>& meter() const { return meter_; }

  const core::Budget& budget() const { return budget_; }
  const PairScheduler& scheduler() const { return *scheduler_; }

  /// Pairs emitted downstream by the last flush.
  uint64_t pairs_emitted() const { return pairs_emitted_; }

 private:
  std::shared_ptr<const PairScheduler> scheduler_;
  core::Budget budget_;
  uint64_t seed_;
  std::shared_ptr<core::BudgetMeter> meter_;
  uint64_t pairs_emitted_ = 0;
  std::vector<core::Block> buffered_;
};

}  // namespace sablock::progressive

#endif  // SABLOCK_PROGRESSIVE_PROGRESSIVE_STAGE_H_
