#include "progressive/progressive_stage.h"

#include <algorithm>
#include <utility>

#include "obs/metrics.h"

namespace sablock::progressive {

std::string ProgressiveStage::name() const {
  std::string label = "progressive(sched=" + scheduler_->name();
  std::string budget = budget_.ToString();
  if (!budget.empty()) label += "," + budget;
  return label + ")";
}

void ProgressiveStage::Flush() {
  // Canonical content order, for the same reason as MetaStage: the
  // schedulers' tie-breaks are deterministic given a block order, and
  // sorting erases the engine's scheduling-dependent arrival order.
  std::sort(buffered_.begin(), buffered_.end());
  core::BlockCollection input;
  for (core::Block& block : buffered_) input.Add(std::move(block));
  buffered_.clear();

  std::vector<core::CandidatePair> ranked =
      scheduler_->Schedule(dataset_->size(), input);

  if (meter_ == nullptr) {
    meter_ = std::make_shared<core::BudgetMeter>(budget_);
  }
  const bool track_recall = meter_->budget().recall_target > 0.0;
  if (track_recall) {
    meter_->ConfigureRecall(dataset_->CountTrueMatchPairs());
  }

  pairs_emitted_ = 0;
  for (const core::CandidatePair& pair : ranked) {
    if (next_->Done() || !meter_->Spend(1)) break;
    next_->Consume(core::Block{pair.a, pair.b});
    ++pairs_emitted_;
    if (track_recall && dataset_->IsMatch(pair.a, pair.b)) {
      meter_->NoteMatch();
    }
  }

  obs::MetricsRegistry& registry = obs::MetricsRegistry::Global();
  registry
      .GetCounter("progressive_pairs_emitted",
                  "candidate pairs emitted by progressive stages", "sched",
                  scheduler_->name())
      ->Add(pairs_emitted_);
  if (meter_->Exhausted()) {
    registry
        .GetCounter("progressive_budget_exhausted",
                    "progressive runs that hit a budget limit", "reason",
                    meter_->ExhaustedReason())
        ->Add(1);
  }

  next_->Flush();
}

}  // namespace sablock::progressive
