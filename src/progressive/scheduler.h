#ifndef SABLOCK_PROGRESSIVE_SCHEDULER_H_
#define SABLOCK_PROGRESSIVE_SCHEDULER_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "core/blocking.h"
#include "core/pair_sink.h"

namespace sablock::progressive {

/// Orders the distinct candidate pairs of a block collection best-first —
/// the prioritization heart of progressive blocking (Galhotra et al.):
/// spend the comparison budget on the pairs most likely to match. A
/// scheduler is pure ranking; budget enforcement lives in the emitting
/// stage / sink layer.
///
/// Determinism contract: for a given (num_records, input block order) the
/// returned order is fully reproducible — schedulers break every tie
/// canonically (ascending packed pair key), so progressive output is
/// independent of thread count once the input stream is canonicalized.
class PairScheduler {
 public:
  virtual ~PairScheduler() = default;

  /// Scheduler spec name, e.g. "ew-cbs".
  virtual std::string name() const = 0;

  /// Returns every distinct candidate pair of `input` (record ids in
  /// [0, num_records)), ordered best-first with scores non-increasing in
  /// meaning (higher score = compare sooner).
  virtual std::vector<core::CandidatePair> Schedule(
      size_t num_records, const core::BlockCollection& input) const = 0;
};

/// Builds a scheduler from its spec name:
///
///   bsa        block-size-ascending: pairs of small blocks first
///              (smallest blocks carry the highest pair precision)
///   ew-arcs    meta-blocking edge weight, ARCS weighting
///   ew-cbs     ... CBS (common blocks)
///   ew-ecbs    ... ECBS
///   ew-js      ... JS (Jaccard of block sets)
///   ew-ejs     ... EJS
///   rr         round-robin over blocks: one pair per block per round
///   random     seeded uniform shuffle of the distinct pairs — the
///              baseline a real scheduler must dominate
///
/// `seed` is only consumed by `random`. Unknown names return an error
/// listing the known schedulers.
Status MakeScheduler(const std::string& sched, uint64_t seed,
                     std::unique_ptr<PairScheduler>* out);

/// The registered scheduler names, in documentation order.
std::vector<std::string> SchedulerNames();

}  // namespace sablock::progressive

#endif  // SABLOCK_PROGRESSIVE_SCHEDULER_H_
