#include "data/cora_generator.h"

#include <algorithm>
#include <cctype>
#include <string>
#include <utility>
#include <vector>

#include "common/check.h"
#include "common/string_util.h"
#include "data/name_pools.h"

namespace sablock::data {

namespace {

enum class PubType { kJournal, kProceedings, kBook, kTechReport, kThesis };

struct Author {
  std::string first;
  std::string last;
};

// The hidden ground-truth entity behind a group of citation records.
struct PublicationEntity {
  PubType type;
  std::vector<std::string> title_words;
  std::vector<Author> authors;
  std::string venue;  // journal / proceedings / publisher / institution name
  int year;
};

PubType DrawType(sablock::Rng* rng) {
  double u = rng->UniformReal();
  if (u < 0.30) return PubType::kJournal;
  if (u < 0.70) return PubType::kProceedings;
  if (u < 0.75) return PubType::kBook;
  if (u < 0.90) return PubType::kTechReport;
  return PubType::kThesis;
}

PublicationEntity MakeEntity(sablock::Rng* rng) {
  PublicationEntity e;
  e.type = DrawType(rng);

  // Title: filler + 3-6 skewed content words, e.g.
  // "the cascade correlation learning architecture".
  size_t content_words = 3 + rng->UniformIndex(4);
  const auto& words = TitleWordPool();
  const auto& fillers = TitleFillerPool();
  if (rng->Bernoulli(0.6)) {
    e.title_words.emplace_back(fillers[rng->UniformIndex(3)]);  // the/a/an
  }
  for (size_t i = 0; i < content_words; ++i) {
    e.title_words.emplace_back(words[rng->SkewedIndex(words.size(), 1.2)]);
    if (i + 1 < content_words && rng->Bernoulli(0.15)) {
      e.title_words.emplace_back(
          fillers[3 + rng->UniformIndex(fillers.size() - 3)]);
    }
  }

  size_t num_authors = 1 + rng->UniformIndex(3);
  for (size_t i = 0; i < num_authors; ++i) {
    e.authors.push_back(Author{
        std::string(rng->Pick(FirstNamePool())),
        std::string(rng->Pick(LastNamePool())),
    });
  }

  switch (e.type) {
    case PubType::kJournal:
      e.venue = std::string(rng->Pick(JournalPool()));
      break;
    case PubType::kProceedings:
      e.venue = std::string(rng->Pick(ProceedingsPool()));
      break;
    case PubType::kBook:
      e.venue = std::string(rng->Pick(BookPublisherPool()));
      break;
    case PubType::kTechReport:
    case PubType::kThesis:
      e.venue = std::string(rng->Pick(InstitutionPool()));
      break;
  }
  e.year = 1985 + static_cast<int>(rng->UniformIndex(16));
  return e;
}

std::string Capitalize(std::string_view w) {
  std::string out(w);
  if (!out.empty()) {
    out[0] = static_cast<char>(
        std::toupper(static_cast<unsigned char>(out[0])));
  }
  return out;
}

// Renders the title with per-record stylistic variation.
std::string RenderTitle(const PublicationEntity& e,
                        const CoraGeneratorConfig& config,
                        const Corruptor& corruptor, sablock::Rng* rng) {
  std::vector<std::string> words = e.title_words;
  // Occasionally truncate a long word to a stem ("learning" -> "learn").
  for (std::string& w : words) {
    if (w.size() > 6 && rng->Bernoulli(config.word_truncate_prob)) {
      w = w.substr(0, w.size() - 3);
    }
  }
  std::string title = Join(words, " ");
  // Hyphenate one adjacent pair ("cascade correlation" ->
  // "cascade-correlation").
  if (rng->Bernoulli(config.hyphenate_prob)) {
    size_t space = title.find(' ', title.size() / 3);
    if (space != std::string::npos) title[space] = '-';
  }
  if (rng->Bernoulli(0.5)) title = Capitalize(title);
  return corruptor.CorruptString(title, rng);
}

// Renders the author list in one of the citation-style formats of Fig. 1.
std::string RenderAuthors(const PublicationEntity& e,
                          const Corruptor& corruptor, sablock::Rng* rng) {
  std::vector<Author> authors = e.authors;
  if (authors.size() > 1 && rng->Bernoulli(0.15)) {
    std::swap(authors[0], authors[1]);  // author-order swap
  }
  int style = static_cast<int>(rng->UniformInt(0, 3));
  std::vector<std::string> parts;
  for (const Author& a : authors) {
    std::string first_cap = Capitalize(a.first);
    std::string last_cap = Capitalize(a.last);
    switch (style) {
      case 0:  // "E. Fahlman"
        parts.push_back(AbbreviateWord(first_cap) + " " + last_cap);
        break;
      case 1:  // "Scott Fahlman"
        parts.push_back(first_cap + " " + last_cap);
        break;
      case 2:  // "Fahlman, S."
        parts.push_back(last_cap + ", " + AbbreviateWord(first_cap));
        break;
      default:  // "Fahlman S"
        parts.push_back(last_cap + " " + first_cap.substr(0, 1));
        break;
    }
  }
  std::string sep = rng->Bernoulli(0.5) ? " and " : (rng->Bernoulli(0.5)
                                                         ? " & "
                                                         : ", ");
  std::string joined;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) joined += (i + 1 == parts.size()) ? sep : std::string(", ");
    joined += parts[i];
  }
  return corruptor.CorruptString(joined, rng);
}

// Venue value with abbreviation noise.
std::string RenderVenue(const std::string& venue, const Corruptor& corruptor,
                        sablock::Rng* rng) {
  std::string v = venue;
  if (rng->Bernoulli(0.25)) {
    // Abbreviate long words: "Proceedings of ICML" -> "Proc. of ICML".
    std::vector<std::string> words = SplitWords(v);
    for (std::string& w : words) {
      if (w.size() > 6 && rng->Bernoulli(0.5)) {
        w = Capitalize(w.substr(0, 4)) + ".";
      }
    }
    v = Join(words, " ");
  }
  return corruptor.CorruptString(v, rng);
}

}  // namespace

Dataset GenerateCoraLike(const CoraGeneratorConfig& config) {
  SABLOCK_CHECK(config.num_entities >= 1);
  SABLOCK_CHECK(config.num_records >= config.num_entities);
  sablock::Rng rng(config.seed);
  Corruptor corruptor(config.corruption);

  std::vector<PublicationEntity> entities;
  entities.reserve(config.num_entities);
  for (size_t i = 0; i < config.num_entities; ++i) {
    entities.push_back(MakeEntity(&rng));
  }

  // Skewed cluster sizes: every entity gets one record, the remainder are
  // assigned preferentially to low-index entities (Cora's citation counts
  // are heavily skewed).
  std::vector<size_t> cluster_sizes(config.num_entities, 1);
  for (size_t r = config.num_entities; r < config.num_records; ++r) {
    ++cluster_sizes[rng.SkewedIndex(config.num_entities, 1.3)];
  }

  Schema schema({"title", "authors", "journal", "booktitle", "institution",
                 "publisher", "year"});
  std::vector<std::pair<Record, EntityId>> staged;
  staged.reserve(config.num_records);
  const size_t title_i = 0;
  const size_t authors_i = 1;
  const size_t journal_i = 2;
  const size_t booktitle_i = 3;
  const size_t institution_i = 4;
  const size_t publisher_i = 5;
  const size_t year_i = 6;

  for (size_t ei = 0; ei < entities.size(); ++ei) {
    const PublicationEntity& e = entities[ei];
    for (size_t c = 0; c < cluster_sizes[ei]; ++c) {
      Record rec;
      rec.values.assign(schema.size(), "");
      rec.values[title_i] = RenderTitle(e, config, corruptor, &rng);
      if (!rng.Bernoulli(config.authors_missing_prob)) {
        rec.values[authors_i] = RenderAuthors(e, corruptor, &rng);
      }
      if (rng.Bernoulli(0.8)) {
        rec.values[year_i] = std::to_string(e.year);
      }

      // Venue attribute placement determines the record's missing-value
      // pattern (Table 1) and hence its semantic interpretation.
      bool venue_missing = rng.Bernoulli(config.missing_venue_prob);
      bool wrong_attr = !venue_missing && rng.Bernoulli(config.wrong_attr_prob);
      std::string venue = RenderVenue(e.venue, corruptor, &rng);
      if (!venue_missing) {
        size_t target = publisher_i;
        switch (e.type) {
          case PubType::kJournal:
            target = wrong_attr ? booktitle_i : journal_i;
            break;
          case PubType::kProceedings:
            target = wrong_attr ? journal_i : booktitle_i;
            break;
          case PubType::kBook:
            // Books live in `publisher`, which Table 1 does not test: their
            // records fall into pattern 8 (ambiguous) unless noise adds a
            // tested attribute — matching the paper's observation that some
            // Cora records comply with no pattern.
            target = publisher_i;
            break;
          case PubType::kTechReport:
          case PubType::kThesis:
            target = wrong_attr ? booktitle_i : institution_i;
            break;
        }
        rec.values[target] = venue;
        // Technical reports often also carry a "TR" publisher tag (cf. r4,
        // r5 in Fig. 1).
        if (e.type == PubType::kTechReport && rng.Bernoulli(0.5)) {
          rec.values[publisher_i] =
              rng.Bernoulli(0.5) ? "Technical Report (TR)" : "TR";
        }
        if (e.type == PubType::kThesis && rng.Bernoulli(0.5)) {
          rec.values[publisher_i] = "PhD Thesis";
        }
      }
      // Noise: an attribute the type should not have.
      if (rng.Bernoulli(config.extra_attr_prob)) {
        size_t extra = rng.Bernoulli(0.5) ? institution_i : booktitle_i;
        if (rec.values[extra].empty()) {
          rec.values[extra] = std::string(rng.Pick(
              extra == institution_i
                  ? InstitutionPool()
                  : ProceedingsPool()));
        }
      }

      staged.emplace_back(std::move(rec), static_cast<EntityId>(ei));
    }
  }

  // Shuffle so that duplicates are scattered (real citation data is not
  // clustered by entity, and Prefix() subsets stay representative).
  rng.Shuffle(&staged);
  Dataset dataset{std::move(schema)};
  for (auto& [rec, entity] : staged) {
    dataset.Add(std::move(rec), entity);
  }
  return dataset;
}

}  // namespace sablock::data
