#ifndef SABLOCK_DATA_CORRUPTOR_H_
#define SABLOCK_DATA_CORRUPTOR_H_

#include <string>
#include <string_view>

#include "common/random.h"

namespace sablock::data {

/// Configuration of the record corruption model used by the synthetic data
/// generators to emulate the dirtiness of real-world data sets (typos, OCR
/// errors, word-order swaps — the error classes catalogued by Christen's
/// data-matching book, which the paper's data sets exhibit).
struct CorruptorConfig {
  /// Probability that a character-level edit is applied per invocation of
  /// CorruptString (multiple edits possible via repeated draws).
  double char_edit_prob = 0.3;
  /// Maximum number of character edits applied to one string.
  int max_char_edits = 2;
  /// Probability of swapping two adjacent words (token transposition).
  double word_swap_prob = 0.1;
  /// Probability of deleting a word.
  double word_delete_prob = 0.05;
  /// Probability of replacing a character with an OCR confusion instead of
  /// a keyboard neighbour when a substitution is drawn.
  double ocr_prob = 0.2;
};

/// Applies randomized, seeded string corruption. All operations preserve
/// determinism through the supplied Rng.
class Corruptor {
 public:
  explicit Corruptor(CorruptorConfig config) : config_(config) {}

  /// Applies character-level edits (insert / delete / substitute /
  /// transpose) and word-level noise according to the config.
  std::string CorruptString(std::string_view input, sablock::Rng* rng) const;

  /// Applies exactly one character edit; exposed for tests and for
  /// generators that need a guaranteed perturbation.
  static std::string ApplyOneCharEdit(std::string_view input, double ocr_prob,
                                      sablock::Rng* rng);

  /// Replaces a character with a keyboard-adjacent one (QWERTY layout).
  static char KeyboardNeighbour(char c, sablock::Rng* rng);

  /// Replaces a character with a visually confusable one (OCR model),
  /// e.g. 'o' <-> '0', 'l' <-> '1', 'm' <-> "rn".
  static std::string OcrConfusion(char c, sablock::Rng* rng);

  const CorruptorConfig& config() const { return config_; }

 private:
  CorruptorConfig config_;
};

/// Abbreviates a word to its first letter plus '.' ("proceedings" -> "p.").
std::string AbbreviateWord(std::string_view word);

}  // namespace sablock::data

#endif  // SABLOCK_DATA_CORRUPTOR_H_
