#include "data/csv.h"

#include <fstream>
#include <unordered_map>

#include "common/string_util.h"

namespace sablock::data {

std::vector<std::string> ParseCsvLine(std::string_view line) {
  std::vector<std::string> fields;
  std::string current;
  bool in_quotes = false;
  size_t i = 0;
  while (i < line.size()) {
    char c = line[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < line.size() && line[i + 1] == '"') {
          current.push_back('"');
          ++i;
        } else {
          in_quotes = false;
        }
      } else {
        current.push_back(c);
      }
    } else {
      if (c == '"' && current.empty()) {
        in_quotes = true;
      } else if (c == ',') {
        fields.push_back(std::move(current));
        current.clear();
      } else {
        current.push_back(c);
      }
    }
    ++i;
  }
  fields.push_back(std::move(current));
  return fields;
}

std::string EscapeCsvField(std::string_view field) {
  bool needs_quotes = field.find_first_of(",\"\n\r") != std::string_view::npos;
  if (!needs_quotes) return std::string(field);
  std::string out = "\"";
  for (char c : field) {
    if (c == '"') out.push_back('"');
    out.push_back(c);
  }
  out.push_back('"');
  return out;
}

Status ReadCsv(const std::string& path, const std::string& entity_column,
               Dataset* out) {
  std::ifstream in(path);
  if (!in.is_open()) {
    return Status::Error("cannot open CSV file: " + path);
  }
  std::string line;
  if (!std::getline(in, line)) {
    return Status::Error("CSV file is empty: " + path);
  }
  if (!line.empty() && line.back() == '\r') line.pop_back();
  std::vector<std::string> header = ParseCsvLine(line);

  int entity_idx = -1;
  std::vector<std::string> attr_names;
  for (size_t i = 0; i < header.size(); ++i) {
    if (!entity_column.empty() && header[i] == entity_column) {
      entity_idx = static_cast<int>(i);
    } else {
      attr_names.push_back(header[i]);
    }
  }
  if (!entity_column.empty() && entity_idx < 0) {
    return Status::Error("entity column not found: " + entity_column);
  }

  Dataset dataset{Schema(attr_names)};
  std::unordered_map<std::string, EntityId> entity_ids;
  size_t line_no = 1;
  while (std::getline(in, line)) {
    ++line_no;
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (line.empty()) continue;
    std::vector<std::string> fields = ParseCsvLine(line);
    if (fields.size() != header.size()) {
      return Status::Error("CSV row " + std::to_string(line_no) + " has " +
                           std::to_string(fields.size()) + " fields, header " +
                           "has " + std::to_string(header.size()));
    }
    Record rec;
    EntityId entity = kUnknownEntity;
    for (size_t i = 0; i < fields.size(); ++i) {
      if (static_cast<int>(i) == entity_idx) {
        auto [it, inserted] = entity_ids.emplace(
            fields[i], static_cast<EntityId>(entity_ids.size()));
        entity = it->second;
      } else {
        rec.values.push_back(std::move(fields[i]));
      }
    }
    dataset.Add(std::move(rec), entity);
  }
  *out = std::move(dataset);
  return Status::Ok();
}

Status WriteCsv(const std::string& path, const Dataset& dataset,
                const std::string& entity_column) {
  std::ofstream out_file(path);
  if (!out_file.is_open()) {
    return Status::Error("cannot open CSV file for writing: " + path);
  }
  std::vector<std::string> header;
  if (!entity_column.empty()) header.push_back(entity_column);
  for (const std::string& name : dataset.schema().names()) {
    header.push_back(name);
  }
  for (size_t i = 0; i < header.size(); ++i) {
    if (i > 0) out_file << ',';
    out_file << EscapeCsvField(header[i]);
  }
  out_file << '\n';
  for (RecordId id = 0; id < dataset.size(); ++id) {
    bool first = true;
    if (!entity_column.empty()) {
      out_file << std::to_string(dataset.entity(id));
      first = false;
    }
    for (std::string_view v : dataset.Values(id)) {
      if (!first) out_file << ',';
      out_file << EscapeCsvField(v);
      first = false;
    }
    out_file << '\n';
  }
  if (!out_file.good()) {
    return Status::Error("error while writing CSV file: " + path);
  }
  return Status::Ok();
}

}  // namespace sablock::data
