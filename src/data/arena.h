#ifndef SABLOCK_DATA_ARENA_H_
#define SABLOCK_DATA_ARENA_H_

#include <cstddef>
#include <cstring>
#include <memory>
#include <string_view>
#include <vector>

namespace sablock::data {

/// Bump allocator for immutable strings. Interned bytes live in
/// fixed-capacity chunks that are never reallocated or freed while the
/// arena lives, so every returned string_view stays valid for the arena's
/// lifetime — including across further Intern calls. Datasets share one
/// arena through a shared_ptr, which is what makes Slice/Prefix zero-copy:
/// a slice copies only (pointer, length) spans, never record bytes.
///
/// Not internally synchronized: Intern() must not race with itself.
/// Concurrent *reads* of previously interned spans are safe (interning
/// never mutates published bytes), which is all the feature-extraction
/// layer and the sharded engine need from a fully built dataset.
class StringArena {
 public:
  StringArena() = default;
  StringArena(const StringArena&) = delete;
  StringArena& operator=(const StringArena&) = delete;

  /// Copies `s` into the arena and returns a stable view of the copy.
  /// Empty input returns an empty view without touching the arena.
  std::string_view Intern(std::string_view s) {
    if (s.empty()) return {};
    if (s.size() > capacity_ - used_) Grow(s.size());
    char* dst = chunks_.back().get() + used_;
    std::memcpy(dst, s.data(), s.size());
    used_ += s.size();
    bytes_ += s.size();
    return {dst, s.size()};
  }

  /// Takes shared ownership of an externally allocated immutable byte
  /// region — typically a read-only snapshot file mapping — so views into
  /// it stay valid for the arena's lifetime, exactly like interned spans.
  /// The arena never writes to adopted regions; later Intern calls append
  /// to fresh chunks, which is what gives a loaded snapshot its natural
  /// copy-on-write mutation path (the mapping stays pristine, new record
  /// bytes land in ordinary heap chunks).
  void Adopt(std::shared_ptr<const void> region, size_t region_bytes) {
    adopted_.push_back(std::move(region));
    bytes_ += region_bytes;
  }

  /// Total interned + adopted bytes (excludes chunk slack).
  size_t bytes() const { return bytes_; }

 private:
  static constexpr size_t kChunkBytes = 1 << 18;  // 256 KiB

  void Grow(size_t at_least) {
    size_t size = at_least > kChunkBytes ? at_least : kChunkBytes;
    chunks_.push_back(std::make_unique<char[]>(size));
    capacity_ = size;
    used_ = 0;
  }

  std::vector<std::unique_ptr<char[]>> chunks_;
  std::vector<std::shared_ptr<const void>> adopted_;  // keep-alives
  size_t capacity_ = 0;  // capacity of the current (last) chunk
  size_t used_ = 0;      // bytes used in the current chunk
  size_t bytes_ = 0;
};

}  // namespace sablock::data

#endif  // SABLOCK_DATA_ARENA_H_
