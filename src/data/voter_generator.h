#ifndef SABLOCK_DATA_VOTER_GENERATOR_H_
#define SABLOCK_DATA_VOTER_GENERATOR_H_

#include <cstdint>

#include "data/corruptor.h"
#include "data/record.h"

namespace sablock::data {

/// Configuration of the NC-Voter-like person dataset generator (the
/// substitution for the real NC Voter extract; DESIGN.md §2).
///
/// Entities are voters (first/last name, gender, race, city, street, age).
/// Compared with the bibliographic generator the data is *large and
/// relatively clean* (the paper's characterization): duplicates are few,
/// typos light — but the semantic attributes gender/race carry *uncertain*
/// values 'u', the property that drives the w-way OR preference in Fig. 8.
struct VoterGeneratorConfig {
  size_t num_records = 30000;
  uint64_t seed = 97;

  /// Fraction of records that are duplicates of an earlier entity
  /// (NC Voter's prepared set is mostly singletons).
  double duplicate_fraction = 0.25;
  /// Maximum records per entity.
  size_t max_cluster_size = 5;
  /// P(gender recorded as 'u').
  double gender_uncertain_prob = 0.12;
  /// P(race recorded as 'u').
  double race_uncertain_prob = 0.18;
  /// P(a duplicate's gender/race disagrees with the original) — genuinely
  /// inconsistent semantics across records of one entity.
  double semantic_flip_prob = 0.02;

  /// Duplicate-error mixture (per duplicate record). NC Voter is "large
  /// and relatively clean": most duplicates carry zero or one character
  /// edit, but real rolls also contain nickname registrations
  /// ("william" -> "bill") and surname changes.
  double zero_edit_prob = 0.45;
  double one_edit_prob = 0.40;  // remainder gets two edits
  double nickname_prob = 0.06;
  double surname_change_prob = 0.04;
  /// P(a character edit is an OCR confusion rather than a keyboard slip).
  double ocr_prob = 0.1;

  /// Retained for binary compatibility with older callers; the name-error
  /// model above supersedes it for first/last names.
  CorruptorConfig corruption = {/*char_edit_prob=*/0.0,
                                /*max_char_edits=*/0,
                                /*word_swap_prob=*/0.0,
                                /*word_delete_prob=*/0.0,
                                /*ocr_prob=*/0.1};
};

/// Generates an NC-Voter-like dataset with ground-truth entity ids.
/// Schema: first_name, last_name, gender, race, city, street, age.
Dataset GenerateVoterLike(const VoterGeneratorConfig& config);

/// Generates a two-source record-linkage pair (e.g. two snapshots of a
/// voter roll): dataset A holds `records_a` distinct voters; dataset B
/// holds `records_b` records of which an `overlap` fraction re-describe an
/// entity of A through the duplicate-error model (typos, nicknames,
/// uncertainty) and the rest are fresh voters. Entity ids share one label
/// space across both outputs, as core::MergeForLinkage expects.
void GenerateVoterLinkagePair(const VoterGeneratorConfig& config,
                              size_t records_a, size_t records_b,
                              double overlap, Dataset* a, Dataset* b);

}  // namespace sablock::data

#endif  // SABLOCK_DATA_VOTER_GENERATOR_H_
