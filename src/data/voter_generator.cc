#include "data/voter_generator.h"

#include <algorithm>
#include <string>
#include <utility>
#include <vector>

#include "common/check.h"
#include "data/name_pools.h"

namespace sablock::data {

namespace {

struct VoterEntity {
  std::string first;
  std::string last;
  std::string gender;  // "m" / "f"
  std::string race;    // "w","b","a","i","o","h"
  std::string city;
  std::string street;
  int age;
};

const char* kRaces[] = {"w", "b", "a", "i", "o", "h"};

std::string DrawRace(sablock::Rng* rng) {
  // Roughly NC-like skew: mostly w/b.
  double u = rng->UniformReal();
  if (u < 0.62) return kRaces[0];
  if (u < 0.84) return kRaces[1];
  if (u < 0.88) return kRaces[2];
  if (u < 0.90) return kRaces[3];
  if (u < 0.94) return kRaces[4];
  return kRaces[5];
}

// Synthesizes a surname with realistic diversity. Real voter rolls contain
// on the order of 10^5 distinct surnames; drawing only from the ~200-name
// pool would make thousands of distinct people share a name, which
// overstates textual collisions. Half the surnames come straight from the
// pool (frequent names), the rest get prefix/suffix morphology.
std::string MakeSurname(sablock::Rng* rng) {
  std::string stem = std::string(rng->Pick(LastNamePool()));
  if (rng->Bernoulli(0.5)) return stem;
  static const std::vector<std::string> kPrefixes = {"mc", "o", "van", "de",
                                                     "la"};
  static const std::vector<std::string> kSuffixes = {
      "son", "s", "er", "man", "ton", "ley", "field", "wood"};
  if (rng->Bernoulli(0.4)) {
    return rng->Pick(kPrefixes) + stem;
  }
  return stem + rng->Pick(kSuffixes);
}

VoterEntity MakeEntity(sablock::Rng* rng) {
  VoterEntity e;
  e.first = std::string(rng->Pick(FirstNamePool()));
  // ~30% of voters register with a middle initial as part of the first
  // name field ("mary k"); duplicates sometimes drop it (see below).
  if (rng->Bernoulli(0.3)) {
    e.first += ' ';
    e.first += static_cast<char>('a' + rng->UniformIndex(26));
  }
  e.last = MakeSurname(rng);
  e.gender = rng->Bernoulli(0.51) ? "f" : "m";
  e.race = DrawRace(rng);
  e.city = std::string(rng->Pick(CityPool()));
  e.street = std::to_string(1 + rng->UniformIndex(9999)) + " " +
             std::string(rng->Pick(StreetPool())) + " st";
  e.age = 18 + static_cast<int>(rng->UniformIndex(70));
  return e;
}

std::string MaybeUncertain(const std::string& value, double uncertain_prob,
                           sablock::Rng* rng) {
  return rng->Bernoulli(uncertain_prob) ? "u" : value;
}

// Common full-form -> nickname registrations.
std::string Nickname(const std::string& full) {
  static const std::vector<std::pair<std::string_view, std::string_view>>
      kNicknames = {
          {"william", "bill"},      {"robert", "bob"},
          {"richard", "rick"},      {"elizabeth", "liz"},
          {"katherine", "kate"},    {"margaret", "peggy"},
          {"james", "jim"},         {"jennifer", "jen"},
          {"michael", "mike"},      {"christopher", "chris"},
          {"patricia", "pat"},      {"thomas", "tom"},
          {"charles", "chuck"},     {"joseph", "joe"},
          {"daniel", "dan"},        {"matthew", "matt"},
          {"anthony", "tony"},      {"steven", "steve"},
          {"andrew", "drew"},       {"joshua", "josh"},
          {"jonathan", "jon"},      {"samantha", "sam"},
          {"benjamin", "ben"},      {"nicholas", "nick"},
          {"alexander", "alex"},    {"jessica", "jess"},
          {"timothy", "tim"},       {"gregory", "greg"},
          {"stephanie", "steph"},   {"rebecca", "becky"},
      };
  for (const auto& [name, nick] : kNicknames) {
    if (full == name) return std::string(nick);
  }
  return full;
}

Schema VoterSchema() {
  return Schema({"first_name", "last_name", "gender", "race", "city",
                 "street", "age"});
}

// Renders one record of `e`. `duplicate` records go through the error
// model (middle-initial drops, nicknames, surname changes, char edits);
// originals only carry the gender/race uncertainty.
Record RenderVoterRecord(const VoterEntity& e, bool duplicate,
                         const VoterGeneratorConfig& config,
                         sablock::Rng* rng) {
  Record rec;
  rec.values.resize(7);
  std::string first = e.first;
  std::string last = e.last;
  std::string gender = e.gender;
  std::string race = e.race;
  if (duplicate) {
    // A duplicate may drop the middle initial ("mary k" -> "mary").
    size_t space = first.find(' ');
    if (space != std::string::npos && rng->Bernoulli(0.4)) {
      first = first.substr(0, space);
    }
    // Nickname registration and surname change (marriage/divorce).
    if (rng->Bernoulli(config.nickname_prob)) {
      std::string base = space != std::string::npos
                             ? first.substr(0, first.find(' '))
                             : first;
      first = Nickname(base);
    }
    if (rng->Bernoulli(config.surname_change_prob)) {
      last = MakeSurname(rng);
    }
    // Character-edit mixture: 0, 1 or 2 edits spread over the fields.
    double u = rng->UniformReal();
    int edits = u < config.zero_edit_prob
                    ? 0
                    : (u < config.zero_edit_prob + config.one_edit_prob
                           ? 1
                           : 2);
    for (int eidx = 0; eidx < edits; ++eidx) {
      if (rng->Bernoulli(0.5)) {
        first = Corruptor::ApplyOneCharEdit(first, config.ocr_prob, rng);
      } else {
        last = Corruptor::ApplyOneCharEdit(last, config.ocr_prob, rng);
      }
    }
    if (rng->Bernoulli(config.semantic_flip_prob)) {
      gender = (gender == "m") ? "f" : "m";
    }
    if (rng->Bernoulli(config.semantic_flip_prob)) {
      race = DrawRace(rng);
    }
  }
  rec.values[0] = first;
  rec.values[1] = last;
  rec.values[2] = MaybeUncertain(gender, config.gender_uncertain_prob, rng);
  rec.values[3] = MaybeUncertain(race, config.race_uncertain_prob, rng);
  rec.values[4] = e.city;
  rec.values[5] = e.street;
  rec.values[6] = std::to_string(e.age);
  return rec;
}

}  // namespace

Dataset GenerateVoterLike(const VoterGeneratorConfig& config) {
  SABLOCK_CHECK(config.num_records >= 1);
  sablock::Rng rng(config.seed);

  // Decide cluster sizes up front: duplicates share an entity.
  std::vector<size_t> cluster_sizes;
  size_t produced = 0;
  while (produced < config.num_records) {
    size_t size = 1;
    if (rng.Bernoulli(config.duplicate_fraction)) {
      size = 2 + rng.UniformIndex(config.max_cluster_size - 1);
    }
    size = std::min(size, config.num_records - produced);
    cluster_sizes.push_back(size);
    produced += size;
  }

  std::vector<std::pair<Record, EntityId>> staged;
  staged.reserve(config.num_records);
  for (size_t ei = 0; ei < cluster_sizes.size(); ++ei) {
    VoterEntity e = MakeEntity(&rng);
    for (size_t c = 0; c < cluster_sizes[ei]; ++c) {
      staged.emplace_back(
          RenderVoterRecord(e, /*duplicate=*/c > 0, config, &rng),
          static_cast<EntityId>(ei));
    }
  }

  rng.Shuffle(&staged);
  Dataset dataset{VoterSchema()};
  for (auto& [rec, entity] : staged) {
    dataset.Add(std::move(rec), entity);
  }
  return dataset;
}

void GenerateVoterLinkagePair(const VoterGeneratorConfig& config,
                              size_t records_a, size_t records_b,
                              double overlap, Dataset* a, Dataset* b) {
  SABLOCK_CHECK(records_a >= 1 && records_b >= 1);
  SABLOCK_CHECK(overlap >= 0.0 && overlap <= 1.0);
  sablock::Rng rng(config.seed);

  // Source A: one clean record per distinct voter.
  std::vector<VoterEntity> entities;
  entities.reserve(records_a);
  *a = Dataset(VoterSchema());
  for (size_t i = 0; i < records_a; ++i) {
    entities.push_back(MakeEntity(&rng));
    a->Add(RenderVoterRecord(entities.back(), /*duplicate=*/false, config,
                             &rng),
           static_cast<EntityId>(i));
  }

  // Source B: a fraction re-describes A's voters (through the duplicate
  // error model — a later roll snapshot), the rest are new voters.
  *b = Dataset(VoterSchema());
  EntityId next_entity = static_cast<EntityId>(records_a);
  for (size_t i = 0; i < records_b; ++i) {
    if (rng.Bernoulli(overlap)) {
      size_t ei = rng.UniformIndex(records_a);
      b->Add(RenderVoterRecord(entities[ei], /*duplicate=*/true, config,
                               &rng),
             static_cast<EntityId>(ei));
    } else {
      VoterEntity fresh = MakeEntity(&rng);
      b->Add(RenderVoterRecord(fresh, /*duplicate=*/false, config, &rng),
             next_entity++);
    }
  }
}

}  // namespace sablock::data
