#ifndef SABLOCK_DATA_CORA_GENERATOR_H_
#define SABLOCK_DATA_CORA_GENERATOR_H_

#include <cstdint>

#include "data/corruptor.h"
#include "data/record.h"

namespace sablock::data {

/// Configuration of the Cora-like bibliographic dataset generator (the
/// substitution for the real Cora data set; DESIGN.md §2).
///
/// Entities are publications with a hidden semantic type (journal article,
/// conference paper, book, technical report, thesis); each entity spawns a
/// skewed number of citation records. Records carry the error classes that
/// drive the paper's Cora experiments:
///   - textual dirt: typos, author-format variation, word swaps,
///     abbreviations ("learning" -> "learn", hyphenation);
///   - *missing-value patterns* over journal/booktitle/institution that the
///     Table 1 semantic function interprets (with configurable noise so
///     some records carry wrong or overly general semantics — the source
///     of the PC gap of Fig. 9a).
struct CoraGeneratorConfig {
  size_t num_entities = 190;
  size_t num_records = 1879;
  uint64_t seed = 42;

  /// P(record loses its type-defining venue attribute) — produces
  /// ambiguous pattern-8 records (concept C1).
  double missing_venue_prob = 0.12;
  /// P(record gains an attribute its type should not have) — produces
  /// overly broad patterns (e.g. pattern 1/3/5).
  double extra_attr_prob = 0.05;
  /// P(the venue value lands in the wrong attribute) — produces records
  /// with *wrong* semantics (e.g. a journal article that looks like a
  /// proceedings paper), the noisy-semantics case of Section 6.3.2.
  double wrong_attr_prob = 0.03;
  /// P(authors are missing entirely), as for r3/r5 in Fig. 1.
  double authors_missing_prob = 0.08;
  /// P(a content word of the title is truncated to a stem).
  double word_truncate_prob = 0.06;
  /// P(two adjacent title words get hyphenated in a duplicate).
  double hyphenate_prob = 0.15;

  CorruptorConfig corruption = {/*char_edit_prob=*/0.35,
                                /*max_char_edits=*/2,
                                /*word_swap_prob=*/0.05,
                                /*word_delete_prob=*/0.04,
                                /*ocr_prob=*/0.15};
};

/// Generates a Cora-like dataset with ground-truth entity ids.
/// Schema: title, authors, journal, booktitle, institution, publisher, year.
Dataset GenerateCoraLike(const CoraGeneratorConfig& config);

}  // namespace sablock::data

#endif  // SABLOCK_DATA_CORA_GENERATOR_H_
