#include "data/record.h"

#include <mutex>
#include <unordered_map>
#include <utility>

#include "common/check.h"
#include "common/string_util.h"
#include "features/feature_store.h"

namespace sablock::data {

namespace {

/// Guards lazy creation of per-dataset feature stores. Creation is rare
/// (once per root dataset) and the store itself is internally
/// synchronized, so one process-wide mutex is plenty.
std::mutex& FeatureCreationMutex() {
  static std::mutex mutex;
  return mutex;
}

}  // namespace

Schema::Schema(std::vector<std::string> attribute_names)
    : names_(std::move(attribute_names)) {
  index_.reserve(names_.size());
  for (size_t i = 0; i < names_.size(); ++i) {
    index_.emplace(names_[i], i);
  }
}

int Schema::IndexOf(std::string_view name) const {
  auto it = index_.find(name);
  if (it == index_.end()) return -1;
  return static_cast<int>(it->second);
}

size_t Schema::RequireIndex(std::string_view name) const {
  int idx = IndexOf(name);
  SABLOCK_CHECK_MSG(idx >= 0, "schema is missing a required attribute");
  return static_cast<size_t>(idx);
}

Dataset::Dataset(const Dataset& other)
    : schema_(other.schema_),
      arena_(other.arena_),
      values_(other.values_),
      entities_(other.entities_),
      version_(other.version_) {
  // The feature pointer may be published concurrently by a features()
  // call on `other`; read it under the same mutex that publishes it.
  std::lock_guard<std::mutex> lock(FeatureCreationMutex());
  features_ = other.features_;
  feature_offset_ = other.feature_offset_;
}

Dataset& Dataset::operator=(const Dataset& other) {
  if (this == &other) return *this;
  schema_ = other.schema_;
  arena_ = other.arena_;
  values_ = other.values_;
  entities_ = other.entities_;
  version_ = other.version_;
  std::lock_guard<std::mutex> lock(FeatureCreationMutex());
  features_ = other.features_;
  feature_offset_ = other.feature_offset_;
  return *this;
}

std::string_view Dataset::Intern(std::string_view s) {
  if (s.empty()) return {};
  if (!arena_) arena_ = std::make_shared<StringArena>();
  return arena_->Intern(s);
}

RecordId Dataset::Add(const Record& record, EntityId entity) {
  SABLOCK_CHECK_MSG(record.values.size() == schema_.size(),
                    "record arity does not match schema");
  for (const std::string& v : record.values) {
    values_.push_back(Intern(v));
  }
  entities_.push_back(entity);
  ++version_;
  features_.reset();  // any existing store snapshot is now stale
  feature_offset_ = 0;
  return static_cast<RecordId>(entities_.size() - 1);
}

RecordId Dataset::AddRow(std::span<const std::string_view> values,
                         EntityId entity) {
  SABLOCK_CHECK_MSG(values.size() == schema_.size(),
                    "record arity does not match schema");
  // Copy the row's views before mutating values_: the span may alias this
  // dataset's own value table (self-append), which push_back would
  // reallocate mid-loop. The views point into the stable arena, so the
  // copied structs stay valid.
  std::vector<std::string_view> row(values.begin(), values.end());
  for (std::string_view v : row) {
    values_.push_back(Intern(v));
  }
  entities_.push_back(entity);
  ++version_;
  features_.reset();
  feature_offset_ = 0;
  return static_cast<RecordId>(entities_.size() - 1);
}

Dataset Dataset::FromColumns(Schema schema, std::shared_ptr<StringArena> arena,
                             std::vector<std::string_view> values,
                             std::vector<EntityId> entities) {
  SABLOCK_CHECK_MSG(values.size() == entities.size() * schema.size(),
                    "column storage does not match schema width");
  Dataset out(std::move(schema));
  out.arena_ = std::move(arena);
  out.values_ = std::move(values);
  out.entities_ = std::move(entities);
  out.version_ = out.entities_.size();
  return out;
}

void Dataset::AdoptFeatures(
    std::shared_ptr<const features::FeatureStore> store) {
  SABLOCK_CHECK_MSG(store != nullptr, "cannot adopt a null feature store");
  SABLOCK_CHECK_MSG(
      store->dataset_version() == version_ && store->size() == size(),
      "adopted feature store does not snapshot this dataset");
  std::lock_guard<std::mutex> lock(FeatureCreationMutex());
  features_ = std::move(store);
  feature_offset_ = 0;
}

Record Dataset::record(RecordId id) const {
  Record out;
  out.values.reserve(schema_.size());
  for (std::string_view v : Values(id)) {
    out.values.emplace_back(v);
  }
  return out;
}

std::string_view Dataset::Value(RecordId id, std::string_view attribute) const {
  int idx = schema_.IndexOf(attribute);
  if (idx < 0) return {};
  return values_[static_cast<size_t>(id) * schema_.size() +
                 static_cast<size_t>(idx)];
}

std::string Dataset::ConcatenatedValues(
    RecordId id, const std::vector<std::string>& attributes) const {
  std::string joined;
  for (const std::string& attr : attributes) {
    std::string_view v = Value(id, attr);
    if (v.empty()) continue;
    if (!joined.empty()) joined.push_back(' ');
    joined.append(v);
  }
  return NormalizeForMatching(joined);
}

uint64_t Dataset::CountTrueMatchPairs() const {
  std::unordered_map<EntityId, uint64_t> cluster_sizes;
  for (EntityId e : entities_) {
    if (e != kUnknownEntity) ++cluster_sizes[e];
  }
  uint64_t pairs = 0;
  for (const auto& [entity, n] : cluster_sizes) {
    pairs += n * (n - 1) / 2;
  }
  return pairs;
}

Dataset Dataset::Slice(size_t begin, size_t end) const {
  Dataset out(schema_);
  size_t limit = end < size() ? end : size();
  if (begin >= limit) return out;
  out.arena_ = arena_;
  const size_t width = schema_.size();
  out.values_.assign(values_.begin() + static_cast<ptrdiff_t>(begin * width),
                     values_.begin() + static_cast<ptrdiff_t>(limit * width));
  out.entities_.assign(entities_.begin() + static_cast<ptrdiff_t>(begin),
                       entities_.begin() + static_cast<ptrdiff_t>(limit));
  // Slices inherit the parent's version so an inherited store passes the
  // features() staleness check below (the store snapshotted that version).
  out.version_ = version_;
  {
    // Share an already created feature store so every shard of a sharded
    // execution reuses the parent's caches.
    std::lock_guard<std::mutex> lock(FeatureCreationMutex());
    out.features_ = features_;
  }
  if (out.features_) out.feature_offset_ = feature_offset_ + begin;
  return out;
}

Dataset Dataset::ColdCopy() const {
  Dataset out(schema_);
  out.arena_ = arena_;
  out.values_ = values_;
  out.entities_ = entities_;
  out.version_ = version_;
  return out;
}

features::FeatureView Dataset::features() const {
  std::shared_ptr<const features::FeatureStore> store;
  {
    std::lock_guard<std::mutex> lock(FeatureCreationMutex());
    store = features_;
  }
  if (!store) {
    // Construct outside the (process-wide) mutex: snapshotting copies the
    // whole value-span table, and holding the lock across that would
    // serialize first-time store creation for unrelated datasets. Two
    // racing creators both build; the loser's copy is discarded.
    auto fresh = std::make_shared<features::FeatureStore>(*this);
    std::lock_guard<std::mutex> lock(FeatureCreationMutex());
    if (!features_) {
      features_ = std::move(fresh);
      feature_offset_ = 0;  // feature_offset_ only pairs with an inherited
                            // store; a fresh store snapshots *this* dataset
    }
    store = features_;
  }
  // Add/AddRow reset the cache pointer, so a cached store always
  // snapshotted this dataset at its current version; trip loudly if a
  // future mutation path forgets the reset instead of silently serving
  // stale features for the grown dataset.
  SABLOCK_CHECK_MSG(store->dataset_version() == version_,
                    "feature cache is stale: dataset mutated without "
                    "invalidating its FeatureStore");
  return features::FeatureView(std::move(store), feature_offset_, size());
}

}  // namespace sablock::data
