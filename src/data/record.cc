#include "data/record.h"

#include <unordered_map>

#include "common/check.h"
#include "common/string_util.h"

namespace sablock::data {

Schema::Schema(std::vector<std::string> attribute_names)
    : names_(std::move(attribute_names)) {}

int Schema::IndexOf(std::string_view name) const {
  for (size_t i = 0; i < names_.size(); ++i) {
    if (names_[i] == name) return static_cast<int>(i);
  }
  return -1;
}

size_t Schema::RequireIndex(std::string_view name) const {
  int idx = IndexOf(name);
  SABLOCK_CHECK_MSG(idx >= 0, "schema is missing a required attribute");
  return static_cast<size_t>(idx);
}

RecordId Dataset::Add(Record record, EntityId entity) {
  SABLOCK_CHECK_MSG(record.values.size() == schema_.size(),
                    "record arity does not match schema");
  records_.push_back(std::move(record));
  entities_.push_back(entity);
  return static_cast<RecordId>(records_.size() - 1);
}

std::string_view Dataset::Value(RecordId id, std::string_view attribute) const {
  int idx = schema_.IndexOf(attribute);
  if (idx < 0) return {};
  return records_[id].values[static_cast<size_t>(idx)];
}

std::string Dataset::ConcatenatedValues(
    RecordId id, const std::vector<std::string>& attributes) const {
  std::string joined;
  for (const std::string& attr : attributes) {
    std::string_view v = Value(id, attr);
    if (v.empty()) continue;
    if (!joined.empty()) joined.push_back(' ');
    joined.append(v);
  }
  return NormalizeForMatching(joined);
}

uint64_t Dataset::CountTrueMatchPairs() const {
  std::unordered_map<EntityId, uint64_t> cluster_sizes;
  for (EntityId e : entities_) {
    if (e != kUnknownEntity) ++cluster_sizes[e];
  }
  uint64_t pairs = 0;
  for (const auto& [entity, n] : cluster_sizes) {
    pairs += n * (n - 1) / 2;
  }
  return pairs;
}

Dataset Dataset::Slice(size_t begin, size_t end) const {
  Dataset out(schema_);
  size_t limit = end < records_.size() ? end : records_.size();
  for (size_t i = begin; i < limit; ++i) {
    out.Add(records_[i], entities_[i]);
  }
  return out;
}

}  // namespace sablock::data
