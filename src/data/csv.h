#ifndef SABLOCK_DATA_CSV_H_
#define SABLOCK_DATA_CSV_H_

#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "data/record.h"

namespace sablock::data {

/// Parses one CSV line (RFC 4180 quoting: fields may be wrapped in double
/// quotes, embedded quotes are doubled). Returns the fields.
std::vector<std::string> ParseCsvLine(std::string_view line);

/// Escapes a field for CSV output, quoting when needed.
std::string EscapeCsvField(std::string_view field);

/// Reads a dataset from a CSV file. The first row is the header (schema).
/// If `entity_column` is non-empty, that column is consumed as the
/// ground-truth entity label (values with equal strings map to equal
/// entity ids) and removed from the record attributes.
Status ReadCsv(const std::string& path, const std::string& entity_column,
               Dataset* out);

/// Writes a dataset to a CSV file; if `entity_column` is non-empty, entity
/// labels are emitted in an extra leading column of that name.
Status WriteCsv(const std::string& path, const Dataset& dataset,
                const std::string& entity_column);

}  // namespace sablock::data

#endif  // SABLOCK_DATA_CSV_H_
