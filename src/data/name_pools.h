#ifndef SABLOCK_DATA_NAME_POOLS_H_
#define SABLOCK_DATA_NAME_POOLS_H_

#include <string_view>
#include <vector>

namespace sablock::data {

/// Embedded word pools backing the synthetic data generators. Real data
/// sets (Cora, NC Voter) are not redistributable inside this repository, so
/// the generators draw entity attributes from these pools (see DESIGN.md §2
/// for the substitution rationale).

/// Common English given names (mixed gender).
const std::vector<std::string_view>& FirstNamePool();

/// Common English surnames.
const std::vector<std::string_view>& LastNamePool();

/// Machine-learning paper title vocabulary (content words).
const std::vector<std::string_view>& TitleWordPool();

/// Connective words used to glue title phrases together.
const std::vector<std::string_view>& TitleFillerPool();

/// Journal venue names (bibliographic domain).
const std::vector<std::string_view>& JournalPool();

/// Conference / proceedings venue names.
const std::vector<std::string_view>& ProceedingsPool();

/// Book publisher names.
const std::vector<std::string_view>& BookPublisherPool();

/// Institution names (for technical reports and theses).
const std::vector<std::string_view>& InstitutionPool();

/// US city names (voter domain).
const std::vector<std::string_view>& CityPool();

/// Street name stems (voter domain).
const std::vector<std::string_view>& StreetPool();

}  // namespace sablock::data

#endif  // SABLOCK_DATA_NAME_POOLS_H_
