#include "data/name_pools.h"

namespace sablock::data {

const std::vector<std::string_view>& FirstNamePool() {
  static const std::vector<std::string_view> kPool = {
      "james",    "mary",      "john",      "patricia", "robert",
      "jennifer", "michael",   "linda",     "william",  "elizabeth",
      "david",    "barbara",   "richard",   "susan",    "joseph",
      "jessica",  "thomas",    "sarah",     "charles",  "karen",
      "christopher", "nancy",  "daniel",    "lisa",     "matthew",
      "margaret", "anthony",   "betty",     "donald",   "sandra",
      "mark",     "ashley",    "paul",      "dorothy",  "steven",
      "kimberly", "andrew",    "emily",     "kenneth",  "donna",
      "george",   "michelle",  "joshua",    "carol",    "kevin",
      "amanda",   "brian",     "melissa",   "edward",   "deborah",
      "ronald",   "stephanie", "timothy",   "rebecca",  "jason",
      "laura",    "jeffrey",   "sharon",    "ryan",     "cynthia",
      "jacob",    "kathleen",  "gary",      "amy",      "nicholas",
      "shirley",  "eric",      "angela",    "jonathan", "helen",
      "stephen",  "anna",      "larry",     "brenda",   "justin",
      "pamela",   "scott",     "nicole",    "brandon",  "ruth",
      "benjamin", "katherine", "samuel",    "samantha", "gregory",
      "christine", "frank",    "emma",      "alexander", "catherine",
      "raymond",  "debra",     "patrick",   "virginia", "jack",
      "rachel",   "dennis",    "carolyn",   "jerry",    "janet",
      "tyler",    "maria",     "aaron",     "heather",  "jose",
      "diane",    "adam",      "julie",     "nathan",   "joyce",
      "henry",    "victoria",  "douglas",   "kelly",    "zachary",
      "christina", "peter",    "joan",      "kyle",     "evelyn",
      "walter",   "lauren",    "ethan",     "judith",   "jeremy",
      "olivia",   "harold",    "frances",   "keith",    "martha",
      "christian", "cheryl",   "roger",     "megan",    "noah",
      "andrea",   "gerald",    "hannah",    "carl",     "jacqueline",
      "terry",    "ann",       "sean",      "jean",     "austin",
      "alice",    "arthur",    "kathryn",   "lawrence", "gloria",
      "jesse",    "teresa",    "dylan",     "doris",    "bryan",
      "sara",     "joe",       "janice",    "jordan",   "julia",
      "billy",    "marie",     "bruce",     "madison",  "albert",
      "grace",    "willie",    "judy",      "gabriel",  "theresa",
      "logan",    "beverly",   "alan",      "denise",   "juan",
      "marilyn",  "wayne",     "amber",     "roy",      "danielle",
      "ralph",    "abigail",   "randy",     "brittany", "eugene",
      "rose",     "vincent",   "diana",     "russell",  "natalie",
      "elijah",   "sophia",    "louis",     "alexis",   "bobby",
      "lori",     "philip",    "kayla",     "johnny",   "jane",
  };
  return kPool;
}

const std::vector<std::string_view>& LastNamePool() {
  static const std::vector<std::string_view> kPool = {
      "smith",     "johnson",   "williams",  "brown",     "jones",
      "garcia",    "miller",    "davis",     "rodriguez", "martinez",
      "hernandez", "lopez",     "gonzalez",  "wilson",    "anderson",
      "thomas",    "taylor",    "moore",     "jackson",   "martin",
      "lee",       "perez",     "thompson",  "white",     "harris",
      "sanchez",   "clark",     "ramirez",   "lewis",     "robinson",
      "walker",    "young",     "allen",     "king",      "wright",
      "scott",     "torres",    "nguyen",    "hill",      "flores",
      "green",     "adams",     "nelson",    "baker",     "hall",
      "rivera",    "campbell",  "mitchell",  "carter",    "roberts",
      "gomez",     "phillips",  "evans",     "turner",    "diaz",
      "parker",    "cruz",      "edwards",   "collins",   "reyes",
      "stewart",   "morris",    "morales",   "murphy",    "cook",
      "rogers",    "gutierrez", "ortiz",     "morgan",    "cooper",
      "peterson",  "bailey",    "reed",      "kelly",     "howard",
      "ramos",     "kim",       "cox",       "ward",      "richardson",
      "watson",    "brooks",    "chavez",    "wood",      "james",
      "bennett",   "gray",      "mendoza",   "ruiz",      "hughes",
      "price",     "alvarez",   "castillo",  "sanders",   "patel",
      "myers",     "long",      "ross",      "foster",    "jimenez",
      "powell",    "jenkins",   "perry",     "russell",   "sullivan",
      "bell",      "coleman",   "butler",    "henderson", "barnes",
      "gonzales",  "fisher",    "vasquez",   "simmons",   "romero",
      "jordan",    "patterson", "alexander", "hamilton",  "graham",
      "reynolds",  "griffin",   "wallace",   "moreno",    "west",
      "cole",      "hayes",     "bryant",    "herrera",   "gibson",
      "ellis",     "tran",      "medina",    "aguilar",   "stevens",
      "murray",    "ford",      "castro",    "marshall",  "owens",
      "harrison",  "fernandez", "mcdonald",  "woods",     "washington",
      "kennedy",   "wells",     "vargas",    "henry",     "chen",
      "freeman",   "webb",      "tucker",    "guzman",    "burns",
      "crawford",  "olson",     "simpson",   "porter",    "hunter",
      "gordon",    "mendez",    "silva",     "shaw",      "snyder",
      "mason",     "dixon",     "munoz",     "hunt",      "hicks",
      "holmes",    "palmer",    "wagner",    "black",     "robertson",
      "boyd",      "rose",      "stone",     "salazar",   "fox",
      "warren",    "mills",     "meyer",     "rice",      "schmidt",
      "garza",     "daniels",   "ferguson",  "nichols",   "stephens",
      "soto",      "weaver",    "ryan",      "gardner",   "payne",
      "grant",     "dunn",      "kelley",    "spencer",   "hawkins",
  };
  return kPool;
}

const std::vector<std::string_view>& TitleWordPool() {
  static const std::vector<std::string_view> kPool = {
      "learning",      "neural",        "networks",     "cascade",
      "correlation",   "architecture",  "genetic",      "algorithms",
      "reinforcement", "supervised",    "unsupervised", "classification",
      "regression",    "clustering",    "bayesian",     "inference",
      "markov",        "models",        "hidden",       "gradient",
      "descent",       "stochastic",    "optimization", "convergence",
      "boosting",      "bagging",       "ensemble",     "decision",
      "trees",         "forests",       "kernel",       "machines",
      "support",       "vector",        "feature",      "selection",
      "extraction",    "dimensionality", "reduction",   "principal",
      "component",     "analysis",      "independent",  "recurrent",
      "convolutional", "backpropagation", "perceptron", "multilayer",
      "radial",        "basis",         "functions",    "approximation",
      "generalization", "regularization", "pruning",    "growth",
      "controlled",    "adaptive",      "dynamic",      "temporal",
      "sequence",      "prediction",    "speech",       "recognition",
      "vision",        "image",         "segmentation", "object",
      "detection",     "language",      "processing",   "parsing",
      "knowledge",     "representation", "reasoning",   "planning",
      "search",        "heuristic",     "constraint",   "satisfaction",
      "probabilistic", "graphical",     "belief",       "propagation",
      "sampling",      "monte",         "carlo",        "variational",
      "expectation",   "maximization",  "likelihood",   "estimation",
      "information",   "theory",        "entropy",      "complexity",
      "computational", "efficient",     "scalable",     "parallel",
      "distributed",   "online",        "incremental",  "active",
      "transfer",      "multitask",     "semisupervised", "relational",
      "inductive",     "logic",         "programming",  "evolutionary",
      "swarm",         "annealing",     "hopfield",     "boltzmann",
      "associative",   "memory",        "attention",    "retrieval",
  };
  return kPool;
}

const std::vector<std::string_view>& TitleFillerPool() {
  static const std::vector<std::string_view> kPool = {
      "the", "a", "an", "on", "for", "with", "using", "towards", "of", "in",
  };
  return kPool;
}

const std::vector<std::string_view>& JournalPool() {
  static const std::vector<std::string_view> kPool = {
      "Machine Learning Journal",
      "Journal of Artificial Intelligence Research",
      "Neural Computation",
      "Journal of Machine Learning Research",
      "IEEE Transactions on Neural Networks",
      "Artificial Intelligence Journal",
      "Pattern Recognition Journal",
      "Data Mining and Knowledge Discovery",
      "IEEE Transactions on Pattern Analysis",
      "International Journal of Computer Vision",
      "Journal of Cognitive Science",
      "Evolutionary Computation Journal",
  };
  return kPool;
}

const std::vector<std::string_view>& ProceedingsPool() {
  static const std::vector<std::string_view> kPool = {
      "NIPS Proceedings",
      "Neural Information Processing Systems",
      "Proceedings of ICML",
      "International Conference on Machine Learning",
      "Proceedings of AAAI",
      "National Conference on Artificial Intelligence",
      "Proceedings of IJCAI",
      "International Joint Conference on AI",
      "Proceedings on Neural Networks",
      "International Conference on Neural Networks",
      "Proceedings of COLT",
      "Conference on Learning Theory",
      "Proceedings of KDD",
      "Knowledge Discovery and Data Mining",
  };
  return kPool;
}

const std::vector<std::string_view>& BookPublisherPool() {
  static const std::vector<std::string_view> kPool = {
      "MIT Press",          "Morgan Kaufmann", "Springer Verlag",
      "Cambridge University Press", "Oxford University Press",
      "Addison Wesley",     "Academic Press",  "Wiley and Sons",
  };
  return kPool;
}

const std::vector<std::string_view>& InstitutionPool() {
  static const std::vector<std::string_view> kPool = {
      "Carnegie Mellon University",
      "Stanford University",
      "Massachusetts Institute of Technology",
      "University of California Berkeley",
      "University of Toronto",
      "University of Edinburgh",
      "Australian National University",
      "University of Massachusetts",
      "Technical University of Munich",
      "University of Cambridge",
      "California Institute of Technology",
      "University of Washington",
  };
  return kPool;
}

const std::vector<std::string_view>& CityPool() {
  static const std::vector<std::string_view> kPool = {
      "charlotte",    "raleigh",      "greensboro",  "durham",
      "winston salem", "fayetteville", "cary",        "wilmington",
      "high point",   "asheville",    "concord",     "gastonia",
      "greenville",   "jacksonville", "chapel hill", "rocky mount",
      "huntersville", "burlington",   "wilson",      "kannapolis",
      "apex",         "hickory",      "goldsboro",   "indian trail",
      "mooresville",  "monroe",       "salisbury",   "new bern",
      "sanford",      "matthews",     "boone",       "elizabeth city",
  };
  return kPool;
}

const std::vector<std::string_view>& StreetPool() {
  static const std::vector<std::string_view> kPool = {
      "main",    "oak",     "maple",    "cedar",   "pine",
      "elm",     "washington", "lake",  "hill",    "church",
      "park",    "spring",  "ridge",   "walnut",  "forest",
      "highland", "mill",   "river",   "sunset",  "meadow",
      "willow",  "chestnut", "franklin", "jackson", "dogwood",
  };
  return kPool;
}

}  // namespace sablock::data
