#ifndef SABLOCK_DATA_RECORD_H_
#define SABLOCK_DATA_RECORD_H_

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "data/arena.h"

namespace sablock::features {
class FeatureStore;
class FeatureView;
}  // namespace sablock::features

namespace sablock::data {

/// Record identifier: the position of a record inside its Dataset.
using RecordId = uint32_t;

/// Entity identifier from the ground truth; records with equal entity ids
/// represent the same real-world entity.
using EntityId = uint32_t;

/// Sentinel for records with no ground-truth label.
inline constexpr EntityId kUnknownEntity = ~0u;

/// Ordered list of attribute names shared by all records of a Dataset.
/// Name lookups go through a name->index hash map, so Dataset::Value is
/// O(1) in the schema width.
class Schema {
 public:
  Schema() = default;
  explicit Schema(std::vector<std::string> attribute_names);

  /// Index of an attribute name, or -1 if absent.
  int IndexOf(std::string_view name) const;

  /// Index of an attribute name; aborts if absent.
  size_t RequireIndex(std::string_view name) const;

  size_t size() const { return names_.size(); }
  const std::vector<std::string>& names() const { return names_; }

 private:
  struct TransparentHash {
    using is_transparent = void;
    size_t operator()(std::string_view s) const {
      return std::hash<std::string_view>{}(s);
    }
  };

  std::vector<std::string> names_;
  std::unordered_map<std::string, size_t, TransparentHash, std::equal_to<>>
      index_;
};

/// A record is a flat list of attribute values aligned with a Schema.
/// Used as the *input* type of Dataset::Add; stored records live in the
/// dataset's string arena and are read back as string_view spans.
struct Record {
  std::vector<std::string> values;
};

/// A dataset: schema, records, and optional ground-truth entity labels.
/// This is the input type of every blocking technique in the library.
///
/// Storage is columnar-arena-backed: all attribute bytes live in one
/// shared StringArena and each record is a row of (pointer, length) spans
/// in a flat vector, so Slice/Prefix are zero-copy views that share the
/// arena (and the lazily built FeatureStore) of their parent.
///
/// Thread-safety: a fully built dataset is safe for concurrent reads,
/// including concurrent features() calls; Add/AddRow must not race with
/// anything.
class Dataset {
 public:
  Dataset() = default;
  explicit Dataset(Schema schema) : schema_(std::move(schema)) {}

  // Copying is a concurrent-read operation per the thread-safety contract
  // below, so the copy operations synchronize their read of the lazily
  // published feature cache (as Slice does). Moves transfer ownership and
  // must not race with anything, like any other mutation.
  Dataset(const Dataset& other);
  Dataset& operator=(const Dataset& other);
  Dataset(Dataset&&) = default;
  Dataset& operator=(Dataset&&) = default;

  /// Appends a record; aborts if its arity does not match the schema.
  /// Returns the new record's id. Invalidates the feature cache (a store
  /// obtained before the Add keeps serving its old snapshot).
  RecordId Add(const Record& record, EntityId entity = kUnknownEntity);

  /// Appends a record given as raw value views (copied into the arena).
  RecordId AddRow(std::span<const std::string_view> values,
                  EntityId entity = kUnknownEntity);

  /// Assembles a dataset directly from prebuilt columnar storage — the
  /// snapshot loader's entry point. `values` must be row-major with
  /// schema-width rows whose views stay valid for `arena`'s lifetime
  /// (interned or adopted bytes); aborts on a size mismatch. The version
  /// counter ends up as if the records had been appended one by one.
  static Dataset FromColumns(Schema schema, std::shared_ptr<StringArena> arena,
                             std::vector<std::string_view> values,
                             std::vector<EntityId> entities);

  /// Attaches an externally built FeatureStore (precomputed snapshot
  /// columns) as this dataset's feature cache. The store must snapshot
  /// exactly this dataset at its current version; aborts otherwise, so
  /// a loader bug can never wire stale features to the wrong data.
  void AdoptFeatures(std::shared_ptr<const features::FeatureStore> store);

  /// Number of records.
  size_t size() const { return entities_.size(); }
  bool empty() const { return entities_.empty(); }

  const Schema& schema() const { return schema_; }

  /// The attribute values of record `id` as arena-backed views, aligned
  /// with schema().names(). Valid as long as any dataset sharing the
  /// arena is alive.
  std::span<const std::string_view> Values(RecordId id) const {
    return {values_.data() + static_cast<size_t>(id) * schema_.size(),
            schema_.size()};
  }

  /// Materializes record `id` as owning strings (copies the bytes).
  /// Prefer Values() on hot paths.
  Record record(RecordId id) const;

  /// Ground-truth entity of a record (kUnknownEntity if unlabeled).
  EntityId entity(RecordId id) const { return entities_[id]; }
  const std::vector<EntityId>& entities() const { return entities_; }

  /// True if two records are a ground-truth match.
  bool IsMatch(RecordId a, RecordId b) const {
    return entities_[a] != kUnknownEntity && entities_[a] == entities_[b];
  }

  /// Value of `attribute` in record `id`; empty view if the attribute
  /// does not exist in the schema.
  std::string_view Value(RecordId id, std::string_view attribute) const;

  /// Concatenation of the values of `attributes` in record `id`, separated
  /// by single spaces, normalized for matching (lower-case alnum). This is
  /// the canonical "blocking text" of a record. Techniques should prefer
  /// the cached copy in features() over recomputing this per call.
  std::string ConcatenatedValues(
      RecordId id, const std::vector<std::string>& attributes) const;

  /// Total number of ground-truth matching pairs |Ω_tp|.
  uint64_t CountTrueMatchPairs() const;

  /// Total number of distinct record pairs |Ω| = n(n-1)/2.
  uint64_t TotalPairs() const {
    uint64_t n = size();
    return n * (n - 1) / 2;
  }

  /// Returns a new dataset containing the first `n` records (a prefix
  /// subset, used by the scalability experiments).
  Dataset Prefix(size_t n) const { return Slice(0, n); }

  /// Returns a new dataset with records [begin, end) (clamped to the
  /// dataset; empty when begin >= end). Record id `i` of the slice is
  /// record `begin + i` of this dataset — the sharded execution engine
  /// relies on this offset mapping to translate shard-local block ids
  /// back to global ids.
  ///
  /// Zero-copy: the slice shares this dataset's arena (no record bytes
  /// are copied) and its FeatureStore (if already created), so features
  /// computed once on the parent serve every slice.
  Dataset Slice(size_t begin, size_t end) const;

  /// A copy sharing this dataset's arena but with a detached (empty)
  /// feature cache — records are not re-derived, features are. Used by
  /// benchmarks to measure cold feature extraction, and by the store
  /// itself to snapshot without creating an ownership cycle.
  Dataset ColdCopy() const;

  /// The shared feature-extraction cache for this dataset (created
  /// lazily, thread-safe). Slices hand back a view into their parent's
  /// store with record ids translated automatically.
  features::FeatureView features() const;

  /// Bytes interned in the backing arena (0 for an empty dataset).
  size_t arena_bytes() const { return arena_ ? arena_->bytes() : 0; }

  /// Mutation counter: bumped by every Add/AddRow. A FeatureStore records
  /// the version it snapshotted, and features() checks the cached store
  /// against the current version — so a mutation can never silently serve
  /// stale tokens/signatures for the grown dataset (handles obtained
  /// before the mutation keep reading their old snapshot, by design).
  uint64_t version() const { return version_; }

 private:
  std::string_view Intern(std::string_view s);

  Schema schema_;
  std::shared_ptr<StringArena> arena_;
  std::vector<std::string_view> values_;  // row-major, size() * schema size
  std::vector<EntityId> entities_;
  uint64_t version_ = 0;  // mutations applied; see version()

  // Lazily created by features(); shared (not rebuilt) by Slice/Prefix
  // copies. feature_offset_ maps this dataset's record ids into the
  // store's snapshot: local id i is snapshot record feature_offset_ + i.
  mutable std::shared_ptr<const features::FeatureStore> features_;
  mutable size_t feature_offset_ = 0;
};

}  // namespace sablock::data

#endif  // SABLOCK_DATA_RECORD_H_
