#ifndef SABLOCK_DATA_RECORD_H_
#define SABLOCK_DATA_RECORD_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace sablock::data {

/// Record identifier: the position of a record inside its Dataset.
using RecordId = uint32_t;

/// Entity identifier from the ground truth; records with equal entity ids
/// represent the same real-world entity.
using EntityId = uint32_t;

/// Sentinel for records with no ground-truth label.
inline constexpr EntityId kUnknownEntity = ~0u;

/// Ordered list of attribute names shared by all records of a Dataset.
class Schema {
 public:
  Schema() = default;
  explicit Schema(std::vector<std::string> attribute_names);

  /// Index of an attribute name, or -1 if absent.
  int IndexOf(std::string_view name) const;

  /// Index of an attribute name; aborts if absent.
  size_t RequireIndex(std::string_view name) const;

  size_t size() const { return names_.size(); }
  const std::vector<std::string>& names() const { return names_; }

 private:
  std::vector<std::string> names_;
};

/// A record is a flat list of attribute values aligned with a Schema.
/// Missing values are represented by empty strings.
struct Record {
  std::vector<std::string> values;
};

/// A dataset: schema, records, and optional ground-truth entity labels.
/// This is the input type of every blocking technique in the library.
class Dataset {
 public:
  Dataset() = default;
  explicit Dataset(Schema schema) : schema_(std::move(schema)) {}

  /// Appends a record; aborts if its arity does not match the schema.
  /// Returns the new record's id.
  RecordId Add(Record record, EntityId entity = kUnknownEntity);

  /// Number of records.
  size_t size() const { return records_.size(); }
  bool empty() const { return records_.empty(); }

  const Schema& schema() const { return schema_; }
  const Record& record(RecordId id) const { return records_[id]; }
  const std::vector<Record>& records() const { return records_; }

  /// Ground-truth entity of a record (kUnknownEntity if unlabeled).
  EntityId entity(RecordId id) const { return entities_[id]; }
  const std::vector<EntityId>& entities() const { return entities_; }

  /// True if two records are a ground-truth match.
  bool IsMatch(RecordId a, RecordId b) const {
    return entities_[a] != kUnknownEntity && entities_[a] == entities_[b];
  }

  /// Value of `attribute` in record `id`; empty string if the attribute
  /// does not exist in the schema.
  std::string_view Value(RecordId id, std::string_view attribute) const;

  /// Concatenation of the values of `attributes` in record `id`, separated
  /// by single spaces, normalized for matching (lower-case alnum). This is
  /// the canonical "blocking text" of a record.
  std::string ConcatenatedValues(
      RecordId id, const std::vector<std::string>& attributes) const;

  /// Total number of ground-truth matching pairs |Ω_tp|.
  uint64_t CountTrueMatchPairs() const;

  /// Total number of distinct record pairs |Ω| = n(n-1)/2.
  uint64_t TotalPairs() const {
    uint64_t n = records_.size();
    return n * (n - 1) / 2;
  }

  /// Returns a new dataset containing the first `n` records (a prefix
  /// subset, used by the scalability experiments).
  Dataset Prefix(size_t n) const { return Slice(0, n); }

  /// Returns a new dataset with records [begin, end) (clamped to the
  /// dataset; empty when begin >= end). Record id `i` of the slice is
  /// record `begin + i` of this dataset — the sharded execution engine
  /// relies on this offset mapping to translate shard-local block ids
  /// back to global ids.
  Dataset Slice(size_t begin, size_t end) const;

 private:
  Schema schema_;
  std::vector<Record> records_;
  std::vector<EntityId> entities_;
};

}  // namespace sablock::data

#endif  // SABLOCK_DATA_RECORD_H_
