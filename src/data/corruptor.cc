#include "data/corruptor.h"

#include <array>
#include <cstddef>
#include <cctype>

#include "common/string_util.h"

namespace sablock::data {

namespace {

// QWERTY adjacency for lower-case letters and digits.
std::string_view Neighbours(char c) {
  switch (std::tolower(static_cast<unsigned char>(c))) {
    case 'a': return "qwsz";
    case 'b': return "vghn";
    case 'c': return "xdfv";
    case 'd': return "serfcx";
    case 'e': return "wsdr";
    case 'f': return "drtgvc";
    case 'g': return "ftyhbv";
    case 'h': return "gyujnb";
    case 'i': return "ujko";
    case 'j': return "huikmn";
    case 'k': return "jiolm";
    case 'l': return "kop";
    case 'm': return "njk";
    case 'n': return "bhjm";
    case 'o': return "iklp";
    case 'p': return "ol";
    case 'q': return "wa";
    case 'r': return "edft";
    case 's': return "awedxz";
    case 't': return "rfgy";
    case 'u': return "yhji";
    case 'v': return "cfgb";
    case 'w': return "qase";
    case 'x': return "zsdc";
    case 'y': return "tghu";
    case 'z': return "asx";
    case '0': return "9o";
    case '1': return "2l";
    case '2': return "13";
    case '3': return "24";
    case '4': return "35";
    case '5': return "46";
    case '6': return "57";
    case '7': return "68";
    case '8': return "79";
    case '9': return "80";
    default: return "";
  }
}

}  // namespace

char Corruptor::KeyboardNeighbour(char c, sablock::Rng* rng) {
  std::string_view n = Neighbours(c);
  if (n.empty()) return c;
  char repl = n[rng->UniformIndex(n.size())];
  if (std::isupper(static_cast<unsigned char>(c))) {
    repl = static_cast<char>(std::toupper(static_cast<unsigned char>(repl)));
  }
  return repl;
}

std::string Corruptor::OcrConfusion(char c, sablock::Rng* rng) {
  switch (std::tolower(static_cast<unsigned char>(c))) {
    case 'o': return "0";
    case '0': return "o";
    case 'l': return rng->Bernoulli(0.5) ? "1" : "i";
    case '1': return "l";
    case 'i': return rng->Bernoulli(0.5) ? "1" : "l";
    case 'm': return "rn";
    case 'w': return "vv";
    case 'b': return "8";
    case '8': return "b";
    case 's': return "5";
    case '5': return "s";
    case 'g': return "9";
    case 'e': return "c";
    case 'u': return "v";
    case 'v': return "u";
    default: return std::string(1, c);
  }
}

std::string Corruptor::ApplyOneCharEdit(std::string_view input,
                                        double ocr_prob, sablock::Rng* rng) {
  std::string s(input);
  if (s.empty()) return s;
  int op = static_cast<int>(rng->UniformInt(0, 3));
  size_t pos = rng->UniformIndex(s.size());
  switch (op) {
    case 0: {  // substitute
      if (rng->Bernoulli(ocr_prob)) {
        std::string repl = OcrConfusion(s[pos], rng);
        s = s.substr(0, pos) + repl + s.substr(pos + 1);
      } else {
        s[pos] = KeyboardNeighbour(s[pos], rng);
      }
      break;
    }
    case 1: {  // insert a keyboard neighbour of the char at pos
      char ins = KeyboardNeighbour(s[pos], rng);
      s.insert(s.begin() + static_cast<ptrdiff_t>(pos), ins);
      break;
    }
    case 2: {  // delete
      if (s.size() > 1) s.erase(pos, 1);
      break;
    }
    default: {  // transpose with next char
      if (pos + 1 < s.size()) std::swap(s[pos], s[pos + 1]);
      break;
    }
  }
  return s;
}

std::string Corruptor::CorruptString(std::string_view input,
                                     sablock::Rng* rng) const {
  std::string s(input);
  if (s.empty()) return s;

  // Word-level noise first so that character edits may hit the new layout.
  if (config_.word_swap_prob > 0 || config_.word_delete_prob > 0) {
    std::vector<std::string> words = SplitWords(s);
    if (words.size() > 1 && rng->Bernoulli(config_.word_swap_prob)) {
      size_t i = rng->UniformIndex(words.size() - 1);
      std::swap(words[i], words[i + 1]);
    }
    if (words.size() > 1 && rng->Bernoulli(config_.word_delete_prob)) {
      words.erase(words.begin() +
                  static_cast<ptrdiff_t>(rng->UniformIndex(words.size())));
    }
    s = Join(words, " ");
  }

  for (int e = 0; e < config_.max_char_edits; ++e) {
    if (!rng->Bernoulli(config_.char_edit_prob)) break;
    s = ApplyOneCharEdit(s, config_.ocr_prob, rng);
  }
  return s;
}

std::string AbbreviateWord(std::string_view word) {
  if (word.empty()) return std::string(word);
  return std::string(1, word[0]) + ".";
}

}  // namespace sablock::data
