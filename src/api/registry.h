#ifndef SABLOCK_API_REGISTRY_H_
#define SABLOCK_API_REGISTRY_H_

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "api/blocker_spec.h"
#include "common/status.h"
#include "common/statusor.h"
#include "core/blocking.h"

namespace sablock::api {

/// Documentation of one spec parameter, surfaced by `sablock_cli --list`
/// and the README technique table.
struct ParamDoc {
  std::string name;
  std::string default_value;
  std::string help;
};

/// Registry entry metadata for one blocking technique.
struct BlockerInfo {
  std::string name;     ///< canonical spec name, e.g. "sa-lsh"
  std::string summary;  ///< one-line description
  std::vector<std::string> aliases;
  std::vector<ParamDoc> params;
};

/// Maps spec names to technique factories. Every technique in the library
/// registers itself here (see builtin_blockers.cc), so the CLI, harness,
/// benches and examples construct techniques from strings instead of
/// including concrete headers.
class BlockerRegistry {
 public:
  /// A factory reads its parameters from the ParamMap (consuming the keys
  /// it understands) and produces the technique. Parameter type errors are
  /// accumulated inside the ParamMap; the registry turns them — and any
  /// unconsumed key — into the returned Status.
  using Factory = std::function<Status(
      ParamMap& params, std::unique_ptr<core::BlockingTechnique>* out)>;

  /// The process-wide registry with all built-in techniques registered.
  static BlockerRegistry& Global();

  /// Registers a technique. Name and alias collisions abort (programming
  /// error).
  void Register(BlockerInfo info, Factory factory);

  /// Parses `spec_string` and builds the technique.
  Status Create(const std::string& spec_string,
                std::unique_ptr<core::BlockingTechnique>* out) const;

  /// Builds the technique described by a parsed spec. The spec is taken by
  /// value because the factory consumes its parameter map.
  Status Create(BlockerSpec spec,
                std::unique_ptr<core::BlockingTechnique>* out) const;

  /// Value-returning form: every malformed spec (unknown technique, bad
  /// parameter type, unknown or duplicate parameter) comes back as a
  /// diagnostic Status — construction never CHECK-fails on user input.
  StatusOr<std::unique_ptr<core::BlockingTechnique>> Create(
      const std::string& spec_string) const {
    std::unique_ptr<core::BlockingTechnique> technique;
    Status status = Create(spec_string, &technique);
    if (!status.ok()) return status;
    return technique;
  }

  /// True if `name` (canonical or alias, any case) is registered.
  bool Contains(const std::string& name) const;

  /// Canonical entries, sorted by name.
  std::vector<BlockerInfo> List() const;

 private:
  std::vector<std::pair<BlockerInfo, Factory>> entries_;
  std::map<std::string, size_t> index_;  // name or alias -> entries_ index
};

namespace internal {
/// Defined in builtin_blockers.cc; called once by Global().
void RegisterBuiltinBlockers(BlockerRegistry& registry);
}  // namespace internal

}  // namespace sablock::api

#endif  // SABLOCK_API_REGISTRY_H_
