#ifndef SABLOCK_API_PARAM_MAP_H_
#define SABLOCK_API_PARAM_MAP_H_

#include <cstdint>
#include <initializer_list>
#include <map>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "common/status.h"

namespace sablock::api {

/// Typed view over the parameter section of a blocker spec string
/// ("key=val,key=val"). Factories read parameters through the Get*
/// accessors; each access marks its key consumed and records the first
/// type error. After the factory runs, Finish() reports that error or any
/// key the factory never consumed, so misspelled parameters fail loudly
/// instead of being silently ignored.
class ParamMap {
 public:
  /// Parses "key=val,key=val" (both sides trimmed; empty input is an empty
  /// map). Rejects entries without '=', empty keys, and duplicate keys.
  static Status Parse(const std::string& text, ParamMap* out);

  bool Has(const std::string& key) const { return values_.count(key) > 0; }

  /// Inserts a default; no-op when the key is already present. Lets
  /// callers (the CLI's legacy flags, domain-derived attribute defaults)
  /// layer defaults under an explicit spec. Keys added this way are
  /// "soft": Finish() does not report them when the factory leaves them
  /// unconsumed (a tblo run should ignore a layered --k default, while a
  /// literal "tblo:k=4" spec still fails).
  void SetIfAbsent(const std::string& key, const std::string& value);

  int GetInt(const std::string& key, int fallback);
  uint64_t GetUint64(const std::string& key, uint64_t fallback);
  double GetDouble(const std::string& key, double fallback);
  std::string GetString(const std::string& key, std::string fallback);

  /// '+'-separated list value, e.g. "attrs=authors+title" (',' separates
  /// whole parameters, so list elements use '+'). Empty elements dropped.
  std::vector<std::string> GetStringList(const std::string& key,
                                         std::vector<std::string> fallback);

  /// Maps the value onto one of the allowed spellings; anything else is
  /// recorded as an error listing the valid options.
  template <typename T>
  T GetEnum(const std::string& key, T fallback,
            std::initializer_list<std::pair<const char*, T>> allowed) {
    auto it = values_.find(key);
    if (it == values_.end()) return fallback;
    consumed_.insert(key);
    std::string options;
    for (const auto& [spelling, value] : allowed) {
      if (it->second == spelling) return value;
      if (!options.empty()) options += "|";
      options += spelling;
    }
    RecordError("param '" + key + "': expected one of " + options +
                ", got '" + it->second + "'");
    return fallback;
  }

  /// First accessor error if any, else an unknown-key error for keys never
  /// consumed, else OK.
  Status Finish() const;

 private:
  void RecordError(std::string message);

  std::map<std::string, std::string> values_;
  std::set<std::string> consumed_;
  std::set<std::string> soft_;  // layered defaults, exempt from Finish()
  Status error_;
};

}  // namespace sablock::api

#endif  // SABLOCK_API_PARAM_MAP_H_
