#include "api/pipeline_spec.h"

#include <utility>

#include "common/string_util.h"

namespace sablock::api {

Status PipelineSpec::Parse(const std::string& text, PipelineSpec* out) {
  *out = PipelineSpec();
  const std::vector<std::string> segments = Split(text, '|');
  for (size_t i = 0; i < segments.size(); ++i) {
    if (Trim(segments[i]).empty()) {
      return Status::Error("pipeline spec '" + text + "': segment " +
                           std::to_string(i + 1) +
                           " is empty — expected \"blocker | stage | ...\"");
    }
    BlockerSpec spec;
    Status status = BlockerSpec::Parse(segments[i], &spec);
    if (!status.ok()) {
      return Status::Error((i == 0 ? std::string("pipeline blocker: ")
                                   : "pipeline stage " + std::to_string(i) +
                                         ": ") +
                           status.message());
    }
    if (i == 0) {
      out->blocker = std::move(spec);
    } else {
      out->stages.push_back(std::move(spec));
    }
  }
  return Status::Ok();
}

}  // namespace sablock::api
