// Registers every blocking technique in the library with the global
// BlockerRegistry. This is the only translation unit outside tests that
// includes concrete technique headers; everything else (CLI, benches,
// examples, future services) builds techniques from spec strings.

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "api/registry.h"
#include "baselines/adaptive_sorted_neighbourhood.h"
#include "baselines/blocking_key.h"
#include "baselines/canopy.h"
#include "baselines/meta_blocking.h"
#include "baselines/qgram_indexing.h"
#include "baselines/sorted_neighbourhood.h"
#include "baselines/standard_blocking.h"
#include "baselines/stringmap.h"
#include "baselines/suffix_array.h"
#include "core/domains.h"
#include "core/iterative_blocker.h"
#include "core/lsh_blocker.h"
#include "core/lsh_variants.h"

namespace sablock::api {
namespace {

using core::BlockingTechnique;

Status RangeError(const std::string& key, const std::string& constraint) {
  return Status::Error("param '" + key + "': must be " + constraint);
}

/// Exact-value blocking key over the '+'-separated "attrs" parameter.
baselines::BlockingKeyDef KeyFromParams(ParamMap& p) {
  return baselines::ExactKey(p.GetStringList("attrs", {}));
}

/// The shared "attrs" parameter doc.
ParamDoc AttrsDoc() {
  return {"attrs", "", "'+'-separated blocking attributes"};
}

core::LshParams LshFromParams(ParamMap& p) {
  core::LshParams lsh;
  lsh.k = p.GetInt("k", lsh.k);
  lsh.l = p.GetInt("l", lsh.l);
  lsh.q = p.GetInt("q", lsh.q);
  lsh.attributes = p.GetStringList("attrs", {});
  lsh.seed = p.GetUint64("seed", lsh.seed);
  return lsh;
}

Status CheckLshRanges(const core::LshParams& lsh) {
  if (lsh.k < 1) return RangeError("k", ">= 1");
  if (lsh.l < 1) return RangeError("l", ">= 1");
  if (lsh.q < 1) return RangeError("q", ">= 1");
  return Status::Ok();
}

std::vector<ParamDoc> LshDocs() {
  return {{"k", "4", "minhash rows per table"},
          {"l", "63", "number of hash tables"},
          {"q", "3", "q-gram size for shingling"},
          AttrsDoc(),
          {"seed", "7", "hash-family seed"}};
}

/// Validates the `key` parameter against the SimilarityByName comparators
/// and stores the chosen name in *out; *out is unchanged when the
/// parameter is absent (or invalid — the ParamMap records that error).
void ReadSimilarityName(ParamMap& p, const char* key, std::string* out) {
  const char* chosen = p.GetEnum<const char*>(
      key, nullptr,
      {{"jaro_winkler", "jaro_winkler"},
       {"bigram", "bigram"},
       {"edit", "edit"},
       {"lcs", "lcs"},
       {"jaccard_token", "jaccard_token"},
       {"exact", "exact"}});
  if (chosen != nullptr) *out = chosen;
}

void RegisterKeyBased(BlockerRegistry& r) {
  r.Register(
      {"tblo",
       "standard blocking: records sharing the exact key value form a block",
       {"stdblo", "standard"},
       {AttrsDoc()}},
      [](ParamMap& p, std::unique_ptr<BlockingTechnique>* out) {
        *out = std::make_unique<baselines::StandardBlocking>(
            KeyFromParams(p));
        return Status::Ok();
      });

  r.Register(
      {"sor-a",
       "array-based sorted neighbourhood: fixed window over sorted keys",
       {"sorted", "sorn"},
       {AttrsDoc(), {"window", "3", "sliding-window size (>= 2)"}}},
      [](ParamMap& p, std::unique_ptr<BlockingTechnique>* out) {
        baselines::BlockingKeyDef key = KeyFromParams(p);
        int window = p.GetInt("window", 3);
        if (window < 2) return RangeError("window", ">= 2");
        *out = std::make_unique<baselines::SortedNeighbourhoodArray>(
            std::move(key), window);
        return Status::Ok();
      });

  r.Register(
      {"sor-ii",
       "inverted-index sorted neighbourhood: window over unique key values",
       {},
       {AttrsDoc(), {"window", "3", "window over sorted unique keys"}}},
      [](ParamMap& p, std::unique_ptr<BlockingTechnique>* out) {
        baselines::BlockingKeyDef key = KeyFromParams(p);
        int window = p.GetInt("window", 3);
        if (window < 1) return RangeError("window", ">= 1");
        *out = std::make_unique<baselines::SortedNeighbourhoodInvertedIndex>(
            std::move(key), window);
        return Status::Ok();
      });

  r.Register(
      {"sor-mp",
       "multi-pass sorted neighbourhood: one pass per attribute + closure",
       {},
       {AttrsDoc(), {"window", "3", "window size of every pass (>= 2)"}}},
      [](ParamMap& p, std::unique_ptr<BlockingTechnique>* out) {
        std::vector<std::string> attrs = p.GetStringList("attrs", {});
        if (attrs.empty()) {
          return Status::Error("param 'attrs': at least one attribute "
                               "required (one pass per attribute)");
        }
        int window = p.GetInt("window", 3);
        if (window < 2) return RangeError("window", ">= 2");
        std::vector<baselines::BlockingKeyDef> keys;
        keys.reserve(attrs.size());
        for (const std::string& attr : attrs) {
          keys.push_back(baselines::ExactKey({attr}));
        }
        *out = std::make_unique<baselines::MultiPassSortedNeighbourhood>(
            std::move(keys), window);
        return Status::Ok();
      });

  r.Register(
      {"asor",
       "adaptive sorted neighbourhood: split sorted keys where similarity "
       "drops",
       {},
       {AttrsDoc(),
        {"sim", "jaro_winkler",
         "boundary similarity (jaro_winkler|bigram|edit|lcs|...)"},
        {"threshold", "0.8", "boundary similarity threshold"},
        {"max-block", "50", "run-length cap, 0 = unlimited"}}},
      [](ParamMap& p, std::unique_ptr<BlockingTechnique>* out) {
        baselines::BlockingKeyDef key = KeyFromParams(p);
        std::string sim = "jaro_winkler";
        ReadSimilarityName(p, "sim", &sim);
        double threshold = p.GetDouble("threshold", 0.8);
        int max_block = p.GetInt("max-block", 50);
        if (max_block < 0) return RangeError("max-block", ">= 0");
        *out = std::make_unique<baselines::AdaptiveSortedNeighbourhood>(
            std::move(key), std::move(sim), threshold,
            static_cast<size_t>(max_block));
        return Status::Ok();
      });

  r.Register(
      {"qgram",
       "q-gram indexing: sub-list keys tolerate a few differing grams",
       {"qgr"},
       {AttrsDoc(),
        {"q", "2", "gram size"},
        {"threshold", "0.8", "minimum kept fraction of grams, in (0,1]"},
        {"max-keys", "64", "sub-list key cap per record"}}},
      [](ParamMap& p, std::unique_ptr<BlockingTechnique>* out) {
        baselines::BlockingKeyDef key = KeyFromParams(p);
        int q = p.GetInt("q", 2);
        double threshold = p.GetDouble("threshold", 0.8);
        int max_keys = p.GetInt("max-keys", 64);
        if (q < 1) return RangeError("q", ">= 1");
        if (threshold <= 0.0 || threshold > 1.0) {
          return RangeError("threshold", "in (0, 1]");
        }
        if (max_keys < 1) return RangeError("max-keys", ">= 1");
        *out = std::make_unique<baselines::QGramIndexing>(
            std::move(key), q, threshold, static_cast<size_t>(max_keys));
        return Status::Ok();
      });
}

void RegisterSuffixAndEmbedding(BlockerRegistry& r) {
  auto suffix_docs = [] {
    return std::vector<ParamDoc>{
        AttrsDoc(),
        {"min-suffix", "4", "minimum indexed suffix length"},
        {"max-block", "20", "discard postings larger than this"}};
  };
  auto suffix_params = [](ParamMap& p, int* min_suffix,
                          size_t* max_block) -> Status {
    *min_suffix = p.GetInt("min-suffix", 4);
    int max_block_i = p.GetInt("max-block", 20);
    if (*min_suffix < 1) return RangeError("min-suffix", ">= 1");
    if (max_block_i < 2) return RangeError("max-block", ">= 2");
    *max_block = static_cast<size_t>(max_block_i);
    return Status::Ok();
  };

  r.Register(
      {"sua", "suffix-array blocking: every BKV suffix becomes an index key",
       {"suffix"}, suffix_docs()},
      [suffix_params](ParamMap& p, std::unique_ptr<BlockingTechnique>* out) {
        baselines::BlockingKeyDef key = KeyFromParams(p);
        int min_suffix = 0;
        size_t max_block = 0;
        Status s = suffix_params(p, &min_suffix, &max_block);
        if (!s.ok()) return s;
        *out = std::make_unique<baselines::SuffixArrayBlocking>(
            std::move(key), min_suffix, max_block);
        return Status::Ok();
      });

  r.Register(
      {"suas", "suffix-array blocking over all substrings", {},
       suffix_docs()},
      [suffix_params](ParamMap& p, std::unique_ptr<BlockingTechnique>* out) {
        baselines::BlockingKeyDef key = KeyFromParams(p);
        int min_suffix = 0;
        size_t max_block = 0;
        Status s = suffix_params(p, &min_suffix, &max_block);
        if (!s.ok()) return s;
        *out = std::make_unique<baselines::SuffixArrayAllSubstrings>(
            std::move(key), min_suffix, max_block);
        return Status::Ok();
      });

  r.Register(
      {"rsua",
       "robust suffix-array blocking: merge postings of similar adjacent "
       "suffixes",
       {},
       {AttrsDoc(),
        {"min-suffix", "4", "minimum indexed suffix length"},
        {"max-block", "20", "discard postings larger than this"},
        {"sim", "jaro_winkler", "suffix similarity comparator"},
        {"threshold", "0.9", "merge threshold for adjacent suffixes"}}},
      [suffix_params](ParamMap& p, std::unique_ptr<BlockingTechnique>* out) {
        baselines::BlockingKeyDef key = KeyFromParams(p);
        int min_suffix = 0;
        size_t max_block = 0;
        Status s = suffix_params(p, &min_suffix, &max_block);
        if (!s.ok()) return s;
        std::string sim = "jaro_winkler";
        ReadSimilarityName(p, "sim", &sim);
        double threshold = p.GetDouble("threshold", 0.9);
        *out = std::make_unique<baselines::RobustSuffixArrayBlocking>(
            std::move(key), min_suffix, max_block, std::move(sim),
            threshold);
        return Status::Ok();
      });

  auto stringmap_common = [](ParamMap& p, int* grid, int* dim,
                             uint64_t* seed) -> Status {
    *grid = p.GetInt("grid", 100);
    *dim = p.GetInt("dim", 15);
    *seed = p.GetUint64("seed", 73);
    if (*grid < 1) return RangeError("grid", ">= 1");
    if (*dim < 2) return RangeError("dim", ">= 2");
    return Status::Ok();
  };

  r.Register(
      {"stmt",
       "StringMap threshold blocking: FastMap embedding + radius search",
       {"stringmap"},
       {AttrsDoc(),
        {"threshold", "0.9", "edit-similarity radius, in (0,1]"},
        {"grid", "100", "grid cells per axis"},
        {"dim", "15", "embedding dimensions (>= 2)"},
        {"seed", "73", "pivot-selection seed"}}},
      [stringmap_common](ParamMap& p,
                         std::unique_ptr<BlockingTechnique>* out) {
        baselines::BlockingKeyDef key = KeyFromParams(p);
        double threshold = p.GetDouble("threshold", 0.9);
        if (threshold <= 0.0 || threshold > 1.0) {
          return RangeError("threshold", "in (0, 1]");
        }
        int grid = 0;
        int dim = 0;
        uint64_t seed = 0;
        Status s = stringmap_common(p, &grid, &dim, &seed);
        if (!s.ok()) return s;
        *out = std::make_unique<baselines::StringMapThreshold>(
            std::move(key), threshold, grid, dim, seed);
        return Status::Ok();
      });

  r.Register(
      {"stmnn",
       "StringMap nearest-neighbour blocking over the embedded space",
       {},
       {AttrsDoc(),
        {"nn", "5", "neighbours per record (>= 1)"},
        {"grid", "100", "grid cells per axis"},
        {"dim", "15", "embedding dimensions (>= 2)"},
        {"seed", "73", "pivot-selection seed"}}},
      [stringmap_common](ParamMap& p,
                         std::unique_ptr<BlockingTechnique>* out) {
        baselines::BlockingKeyDef key = KeyFromParams(p);
        int nn = p.GetInt("nn", 5);
        if (nn < 1) return RangeError("nn", ">= 1");
        int grid = 0;
        int dim = 0;
        uint64_t seed = 0;
        Status s = stringmap_common(p, &grid, &dim, &seed);
        if (!s.ok()) return s;
        *out = std::make_unique<baselines::StringMapNearestNeighbour>(
            std::move(key), nn, grid, dim, seed);
        return Status::Ok();
      });
}

void RegisterCanopyAndMeta(BlockerRegistry& r) {
  r.Register(
      {"token-blocking",
       "token blocking: every distinct token of the key attributes forms "
       "a block (the canonical generator for purge/meta pipeline stages)",
       {"token"},
       {AttrsDoc()}},
      [](ParamMap& p, std::unique_ptr<BlockingTechnique>* out) {
        *out = std::make_unique<baselines::TokenBlockingTechnique>(
            p.GetStringList("attrs", {}));
        return Status::Ok();
      });

  auto canopy_similarity = [](ParamMap& p) {
    return p.GetEnum<baselines::CanopySimilarity>(
        "sim", baselines::CanopySimilarity::kJaccard,
        {{"jaccard", baselines::CanopySimilarity::kJaccard},
         {"tfidf", baselines::CanopySimilarity::kTfIdfCosine}});
  };

  r.Register(
      {"cath",
       "threshold canopy clustering with loose/tight similarity bounds",
       {"canopy"},
       {AttrsDoc(),
        {"sim", "jaccard", "cheap similarity (jaccard|tfidf)"},
        {"loose", "0.4", "canopy-membership threshold"},
        {"tight", "0.8", "removal threshold (>= loose)"},
        {"seed", "31", "seed-record shuffle seed"}}},
      [canopy_similarity](ParamMap& p,
                          std::unique_ptr<BlockingTechnique>* out) {
        baselines::BlockingKeyDef key = KeyFromParams(p);
        baselines::CanopySimilarity sim = canopy_similarity(p);
        double loose = p.GetDouble("loose", 0.4);
        double tight = p.GetDouble("tight", 0.8);
        uint64_t seed = p.GetUint64("seed", 31);
        if (tight < loose) return RangeError("tight", ">= loose");
        *out = std::make_unique<baselines::CanopyThreshold>(
            std::move(key), sim, loose, tight, seed);
        return Status::Ok();
      });

  r.Register(
      {"cann",
       "nearest-neighbour canopy clustering with cardinality bounds",
       {},
       {AttrsDoc(),
        {"sim", "jaccard", "cheap similarity (jaccard|tfidf)"},
        {"n1", "10", "canopy size (most similar candidates)"},
        {"n2", "5", "removed-from-pool count (<= n1)"},
        {"seed", "31", "seed-record shuffle seed"}}},
      [canopy_similarity](ParamMap& p,
                          std::unique_ptr<BlockingTechnique>* out) {
        baselines::BlockingKeyDef key = KeyFromParams(p);
        baselines::CanopySimilarity sim = canopy_similarity(p);
        int n1 = p.GetInt("n1", 10);
        int n2 = p.GetInt("n2", 5);
        uint64_t seed = p.GetUint64("seed", 31);
        if (n1 < 1) return RangeError("n1", ">= 1");
        if (n2 < 1 || n2 > n1) return RangeError("n2", "in [1, n1]");
        *out = std::make_unique<baselines::CanopyNearestNeighbour>(
            std::move(key), sim, n1, n2, seed);
        return Status::Ok();
      });

  r.Register(
      {"meta",
       "meta-blocking over token blocking: weight, prune, emit pair blocks",
       {},
       {AttrsDoc(),
        {"weighting", "cbs", "edge weights (arcs|cbs|ecbs|js|ejs)"},
        {"pruning", "wep", "pruning algorithm (wep|cep|wnp|cnp)"},
        {"max-block", "500", "token-block purge size"}}},
      [](ParamMap& p, std::unique_ptr<BlockingTechnique>* out) {
        std::vector<std::string> attrs = p.GetStringList("attrs", {});
        auto weighting = p.GetEnum<baselines::MetaWeighting>(
            "weighting", baselines::MetaWeighting::kCbs,
            {{"arcs", baselines::MetaWeighting::kArcs},
             {"cbs", baselines::MetaWeighting::kCbs},
             {"ecbs", baselines::MetaWeighting::kEcbs},
             {"js", baselines::MetaWeighting::kJs},
             {"ejs", baselines::MetaWeighting::kEjs}});
        auto pruning = p.GetEnum<baselines::MetaPruning>(
            "pruning", baselines::MetaPruning::kWep,
            {{"wep", baselines::MetaPruning::kWep},
             {"cep", baselines::MetaPruning::kCep},
             {"wnp", baselines::MetaPruning::kWnp},
             {"cnp", baselines::MetaPruning::kCnp}});
        int max_block = p.GetInt("max-block", 500);
        if (max_block < 2) return RangeError("max-block", ">= 2");
        *out = std::make_unique<baselines::MetaBlocking>(
            std::move(attrs), weighting, pruning,
            static_cast<size_t>(max_block));
        return Status::Ok();
      });
}

void RegisterLshFamily(BlockerRegistry& r) {
  r.Register(
      {"lsh", "minhash LSH blocking over q-gram shingles (textual only)",
       {"plain-lsh"}, LshDocs()},
      [](ParamMap& p, std::unique_ptr<BlockingTechnique>* out) {
        core::LshParams lsh = LshFromParams(p);
        Status s = CheckLshRanges(lsh);
        if (!s.ok()) return s;
        *out = std::make_unique<core::LshBlocker>(std::move(lsh));
        return Status::Ok();
      });

  {
    std::vector<ParamDoc> docs = LshDocs();
    docs.push_back({"w", "5", "semantic hash width (semhash draws/table)"});
    docs.push_back({"mode", "or", "semantic combination (or|and)"});
    docs.push_back({"domain", "bib", "semantic domain (bib|voter)"});
    docs.push_back({"sem-seed", "11", "semantic-function draw seed"});
    r.Register(
        {"sa-lsh",
         "semantic-aware LSH (the paper): minhash tables gated by a w-way "
         "semantic hash",
         {"salsh"}, std::move(docs)},
        [](ParamMap& p, std::unique_ptr<BlockingTechnique>* out) {
          enum class DomainKind { kBib, kVoter };
          DomainKind kind = p.GetEnum<DomainKind>(
              "domain", DomainKind::kBib,
              {{"bib", DomainKind::kBib}, {"voter", DomainKind::kVoter}});
          core::Domain domain = kind == DomainKind::kVoter
                                    ? core::MakeVoterDomain()
                                    : core::MakeBibliographicDomain();
          // The paper's blocking attributes for the domain are the default;
          // an explicit attrs= overrides them.
          core::LshParams lsh = LshFromParams(p);
          if (lsh.attributes.empty()) {
            lsh.attributes = domain.blocking_attributes;
          }
          Status s = CheckLshRanges(lsh);
          if (!s.ok()) return s;
          core::SemanticParams sem;
          sem.w = p.GetInt("w", 5);
          sem.mode = p.GetEnum<core::SemanticMode>(
              "mode", core::SemanticMode::kOr,
              {{"or", core::SemanticMode::kOr},
               {"and", core::SemanticMode::kAnd}});
          sem.seed = p.GetUint64("sem-seed", 11);
          if (sem.w < 1) return RangeError("w", ">= 1");
          *out = std::make_unique<core::SemanticAwareLshBlocker>(
              std::move(lsh), sem, domain.semantics);
          return Status::Ok();
        });
  }

  {
    std::vector<ParamDoc> docs = LshDocs();
    docs.push_back({"probes", "2", "extra buckets probed per table"});
    r.Register(
        {"mp-lsh", "multi-probe LSH: probe near-by buckets instead of "
         "adding tables",
         {"mplsh"}, std::move(docs)},
        [](ParamMap& p, std::unique_ptr<BlockingTechnique>* out) {
          core::LshParams lsh = LshFromParams(p);
          Status s = CheckLshRanges(lsh);
          if (!s.ok()) return s;
          int probes = p.GetInt("probes", 2);
          if (probes < 0) return RangeError("probes", ">= 0");
          *out = std::make_unique<core::MultiProbeLshBlocker>(
              std::move(lsh), probes);
          return Status::Ok();
        });
  }

  {
    std::vector<ParamDoc> docs = LshDocs();
    docs.push_back({"depth", "10", "maximum prefix depth per tree"});
    docs.push_back({"max-block", "25", "split groups larger than this"});
    r.Register(
        {"forest",
         "LSH forest: self-tuning variable-length minhash prefixes",
         {"lsh-forest"}, std::move(docs)},
        [](ParamMap& p, std::unique_ptr<BlockingTechnique>* out) {
          core::LshParams lsh = LshFromParams(p);
          Status s = CheckLshRanges(lsh);
          if (!s.ok()) return s;
          int depth = p.GetInt("depth", 10);
          int max_block = p.GetInt("max-block", 25);
          if (depth < 1) return RangeError("depth", ">= 1");
          if (max_block < 2) return RangeError("max-block", ">= 2");
          *out = std::make_unique<core::LshForestBlocker>(
              std::move(lsh), depth, static_cast<size_t>(max_block));
          return Status::Ok();
        });
  }

  {
    std::vector<ParamDoc> docs = LshDocs();
    docs.push_back({"merge-threshold", "0.5",
                    "minimum estimated Jaccard to merge, in [0,1]"});
    docs.push_back({"iterations", "3", "hash-merge rounds (>= 1)"});
    r.Register(
        {"harra",
         "HARRA-style iterative LSH: merge co-bucketed records and re-hash",
         {"iter-lsh"}, std::move(docs)},
        [](ParamMap& p, std::unique_ptr<BlockingTechnique>* out) {
          core::LshParams lsh = LshFromParams(p);
          Status s = CheckLshRanges(lsh);
          if (!s.ok()) return s;
          double merge = p.GetDouble("merge-threshold", 0.5);
          int iterations = p.GetInt("iterations", 3);
          if (merge < 0.0 || merge > 1.0) {
            return RangeError("merge-threshold", "in [0, 1]");
          }
          if (iterations < 1) return RangeError("iterations", ">= 1");
          *out = std::make_unique<core::IterativeLshBlocker>(
              std::move(lsh), merge, iterations);
          return Status::Ok();
        });
  }
}

}  // namespace

namespace internal {

void RegisterBuiltinBlockers(BlockerRegistry& registry) {
  RegisterKeyBased(registry);
  RegisterSuffixAndEmbedding(registry);
  RegisterCanopyAndMeta(registry);
  RegisterLshFamily(registry);
}

}  // namespace internal

}  // namespace sablock::api
