#ifndef SABLOCK_API_BLOCKER_SPEC_H_
#define SABLOCK_API_BLOCKER_SPEC_H_

#include <string>

#include "api/param_map.h"
#include "common/status.h"

namespace sablock::api {

/// A parsed blocker description. The textual grammar is
///
///   spec   := name [ ":" params ]
///   params := key "=" value { "," key "=" value }
///
/// e.g. "sa-lsh:k=4,l=63,w=2,mode=or". Names are matched
/// case-insensitively against the registry; list-valued parameters join
/// their elements with '+' ("attrs=authors+title").
struct BlockerSpec {
  std::string name;  ///< lowercased technique name
  ParamMap params;

  /// Parses `text` into `out`. Errors: empty name, malformed parameter
  /// entries (see ParamMap::Parse).
  static Status Parse(const std::string& text, BlockerSpec* out);
};

}  // namespace sablock::api

#endif  // SABLOCK_API_BLOCKER_SPEC_H_
