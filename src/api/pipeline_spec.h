#ifndef SABLOCK_API_PIPELINE_SPEC_H_
#define SABLOCK_API_PIPELINE_SPEC_H_

#include <string>
#include <vector>

#include "api/blocker_spec.h"
#include "common/status.h"

namespace sablock::api {

/// A parsed block-pipeline description: one block generator followed by
/// zero or more post-processing stages. The textual grammar extends the
/// blocker spec with '|'-separated stage segments:
///
///   pipeline := blocker-spec { "|" stage-spec }
///   spec     := name [ ":" params ]
///   params   := key "=" value { "," key "=" value }
///
/// e.g. "token-blocking:attrs=authors+title | purge:max_size=500 |
/// meta:weight=cbs,prune=wep". Stage segments reuse the blocker spec
/// grammar (and its ParamMap parameter handling: duplicate keys, type
/// errors and unknown keys fail loudly); generator names resolve against
/// the BlockerRegistry, stage names against the pipeline::StageRegistry.
struct PipelineSpec {
  BlockerSpec blocker;
  std::vector<BlockerSpec> stages;

  /// Parses `text` into `out`. A bare blocker spec (no '|') is a valid
  /// zero-stage pipeline; empty segments are errors.
  static Status Parse(const std::string& text, PipelineSpec* out);
};

}  // namespace sablock::api

#endif  // SABLOCK_API_PIPELINE_SPEC_H_
