#include "api/blocker_spec.h"

#include "common/string_util.h"

namespace sablock::api {

Status BlockerSpec::Parse(const std::string& text, BlockerSpec* out) {
  *out = BlockerSpec();
  std::string_view trimmed = Trim(text);
  size_t colon = trimmed.find(':');
  std::string_view name_part =
      colon == std::string_view::npos ? trimmed : trimmed.substr(0, colon);
  out->name = ToLower(Trim(name_part));
  if (out->name.empty()) {
    return Status::Error("blocker spec '" + text +
                         "': expected \"name[:key=val,...]\"");
  }
  if (colon == std::string_view::npos) return Status::Ok();
  return ParamMap::Parse(std::string(trimmed.substr(colon + 1)),
                         &out->params);
}

}  // namespace sablock::api
