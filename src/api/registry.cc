#include "api/registry.h"

#include <algorithm>
#include <utility>

#include "common/check.h"
#include "common/string_util.h"

namespace sablock::api {

BlockerRegistry& BlockerRegistry::Global() {
  static BlockerRegistry* registry = [] {
    auto* r = new BlockerRegistry();
    internal::RegisterBuiltinBlockers(*r);
    return r;
  }();
  return *registry;
}

void BlockerRegistry::Register(BlockerInfo info, Factory factory) {
  SABLOCK_CHECK_MSG(!info.name.empty(), "registry: empty technique name");
  const size_t slot = entries_.size();
  auto claim = [&](const std::string& name) {
    bool inserted = index_.emplace(ToLower(name), slot).second;
    SABLOCK_CHECK_MSG(inserted, name.c_str());
  };
  claim(info.name);
  for (const std::string& alias : info.aliases) claim(alias);
  entries_.emplace_back(std::move(info), std::move(factory));
}

Status BlockerRegistry::Create(
    const std::string& spec_string,
    std::unique_ptr<core::BlockingTechnique>* out) const {
  BlockerSpec spec;
  Status status = BlockerSpec::Parse(spec_string, &spec);
  if (!status.ok()) return status;
  return Create(std::move(spec), out);
}

Status BlockerRegistry::Create(
    BlockerSpec spec, std::unique_ptr<core::BlockingTechnique>* out) const {
  out->reset();
  auto it = index_.find(ToLower(spec.name));
  if (it == index_.end()) {
    std::string known;
    for (const BlockerInfo& info : List()) {
      if (!known.empty()) known += ", ";
      known += info.name;
    }
    return Status::Error("unknown technique '" + spec.name +
                         "' (known: " + known + ")");
  }
  const auto& [info, factory] = entries_[it->second];
  Status status = factory(spec.params, out);
  if (!status.ok()) {
    return Status::Error(info.name + ": " + status.message());
  }
  status = spec.params.Finish();
  if (!status.ok()) {
    out->reset();
    return Status::Error(info.name + ": " + status.message());
  }
  SABLOCK_CHECK(*out != nullptr);
  return Status::Ok();
}

bool BlockerRegistry::Contains(const std::string& name) const {
  return index_.count(ToLower(name)) > 0;
}

std::vector<BlockerInfo> BlockerRegistry::List() const {
  std::vector<BlockerInfo> infos;
  infos.reserve(entries_.size());
  for (const auto& [info, factory] : entries_) infos.push_back(info);
  std::sort(infos.begin(), infos.end(),
            [](const BlockerInfo& a, const BlockerInfo& b) {
              return a.name < b.name;
            });
  return infos;
}

}  // namespace sablock::api
