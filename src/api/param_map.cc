#include "api/param_map.h"

#include <cerrno>
#include <climits>
#include <cstdlib>

#include "common/string_util.h"

namespace sablock::api {

Status ParamMap::Parse(const std::string& text, ParamMap* out) {
  *out = ParamMap();
  std::string_view trimmed = Trim(text);
  if (trimmed.empty()) return Status::Ok();
  for (const std::string& entry : Split(trimmed, ',')) {
    std::string_view field = Trim(entry);
    if (field.empty()) continue;
    size_t eq = field.find('=');
    if (eq == std::string_view::npos) {
      return Status::Error("param '" + std::string(field) +
                           "': expected key=value");
    }
    std::string key(Trim(field.substr(0, eq)));
    std::string value(Trim(field.substr(eq + 1)));
    if (key.empty()) {
      return Status::Error("param '" + std::string(field) + "': empty key");
    }
    if (!out->values_.emplace(key, std::move(value)).second) {
      return Status::Error("param '" + key + "': given more than once");
    }
  }
  return Status::Ok();
}

void ParamMap::SetIfAbsent(const std::string& key, const std::string& value) {
  if (values_.emplace(key, value).second) soft_.insert(key);
}

int ParamMap::GetInt(const std::string& key, int fallback) {
  auto it = values_.find(key);
  if (it == values_.end()) return fallback;
  consumed_.insert(key);
  errno = 0;
  char* end = nullptr;
  long v = std::strtol(it->second.c_str(), &end, 10);
  if (it->second.empty() || *end != '\0' || errno == ERANGE ||
      v < INT_MIN || v > INT_MAX) {
    RecordError("param '" + key + "': expected integer, got '" + it->second +
                "'");
    return fallback;
  }
  return static_cast<int>(v);
}

uint64_t ParamMap::GetUint64(const std::string& key, uint64_t fallback) {
  auto it = values_.find(key);
  if (it == values_.end()) return fallback;
  consumed_.insert(key);
  errno = 0;
  char* end = nullptr;
  unsigned long long v = std::strtoull(it->second.c_str(), &end, 10);
  if (it->second.empty() || *end != '\0' || errno == ERANGE ||
      it->second[0] == '-') {
    RecordError("param '" + key + "': expected unsigned integer, got '" +
                it->second + "'");
    return fallback;
  }
  return static_cast<uint64_t>(v);
}

double ParamMap::GetDouble(const std::string& key, double fallback) {
  auto it = values_.find(key);
  if (it == values_.end()) return fallback;
  consumed_.insert(key);
  errno = 0;
  char* end = nullptr;
  double v = std::strtod(it->second.c_str(), &end);
  if (it->second.empty() || *end != '\0' || errno == ERANGE) {
    RecordError("param '" + key + "': expected number, got '" + it->second +
                "'");
    return fallback;
  }
  return v;
}

std::string ParamMap::GetString(const std::string& key, std::string fallback) {
  auto it = values_.find(key);
  if (it == values_.end()) return fallback;
  consumed_.insert(key);
  return it->second;
}

std::vector<std::string> ParamMap::GetStringList(
    const std::string& key, std::vector<std::string> fallback) {
  auto it = values_.find(key);
  if (it == values_.end()) return fallback;
  consumed_.insert(key);
  std::vector<std::string> parts;
  for (const std::string& part : Split(it->second, '+')) {
    std::string trimmed(Trim(part));
    if (!trimmed.empty()) parts.push_back(std::move(trimmed));
  }
  return parts;
}

Status ParamMap::Finish() const {
  if (!error_.ok()) return error_;
  std::string unknown;
  for (const auto& [key, value] : values_) {
    if (consumed_.count(key) > 0 || soft_.count(key) > 0) continue;
    if (!unknown.empty()) unknown += ", ";
    unknown += "'" + key + "'";
  }
  if (!unknown.empty()) {
    return Status::Error("unknown param(s) " + unknown);
  }
  return Status::Ok();
}

void ParamMap::RecordError(std::string message) {
  if (error_.ok()) error_ = Status::Error(std::move(message));
}

}  // namespace sablock::api
