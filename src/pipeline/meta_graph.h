#ifndef SABLOCK_PIPELINE_META_GRAPH_H_
#define SABLOCK_PIPELINE_META_GRAPH_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "core/blocking.h"

namespace sablock::pipeline {

/// Edge-weighting schemes of the meta-blocking paper (Papadakis et al.,
/// TKDE 2014). The blocking graph has one node per record and one edge
/// per record pair sharing at least one block.
enum class MetaWeighting {
  kArcs,  ///< Σ over common blocks of 1 / ||b|| (reciprocal comparisons)
  kCbs,   ///< number of common blocks
  kEcbs,  ///< CBS · log(|B|/|B_i|) · log(|B|/|B_j|)
  kJs,    ///< Jaccard of the two records' block sets
  kEjs,   ///< JS · log(|E|/|v_i|) · log(|E|/|v_j|)
};

/// Pruning algorithms of the meta-blocking paper.
enum class MetaPruning {
  kWep,  ///< weighted edge pruning: keep edges >= global mean weight
  kCep,  ///< cardinality edge pruning: keep top-K edges, K = ⌊Σ|b|/2⌋
  kWnp,  ///< weighted node pruning: keep edges >= a node-local mean
  kCnp,  ///< cardinality node pruning: per-node top-k, k = ⌊Σ|b|/|V|⌋
};

const char* MetaWeightingName(MetaWeighting w);
const char* MetaPruningName(MetaPruning p);

/// One edge of the blocking graph: a packed record pair and its weight.
/// `key` is (uint64(min_id) << 32) | max_id, so sorting by key sorts by
/// (a, b) — the canonical pair order used everywhere weights are ranked.
struct WeightedPair {
  uint64_t key = 0;
  double weight = 0.0;

  uint32_t a() const { return static_cast<uint32_t>(key >> 32); }
  uint32_t b() const { return static_cast<uint32_t>(key & 0xffffffffULL); }
};

/// The weighting phase of meta-blocking as a first-class API: builds the
/// blocking graph of `input` (record ids in [0, num_records)) and returns
/// every distinct edge with its weight under `weighting`, one entry per
/// pair, in the graph's deterministic accumulation order. This is what
/// MetaPrune prunes — exposed separately so progressive schedulers (and
/// any future learned pruning) can rank the same per-pair weights without
/// committing to a pruning algorithm.
std::vector<WeightedPair> WeightPairs(size_t num_records,
                                      const core::BlockCollection& input,
                                      MetaWeighting weighting);

/// The graph phase of meta-blocking, reusable by any pipeline: builds the
/// blocking graph of `input` (whose record ids must lie in
/// [0, num_records)), weights its edges, prunes, and returns the retained
/// comparisons as 2-record blocks. Deterministic for a given input block
/// order.
core::BlockCollection MetaPrune(size_t num_records,
                                const core::BlockCollection& input,
                                MetaWeighting weighting,
                                MetaPruning pruning);

}  // namespace sablock::pipeline

#endif  // SABLOCK_PIPELINE_META_GRAPH_H_
