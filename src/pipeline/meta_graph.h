#ifndef SABLOCK_PIPELINE_META_GRAPH_H_
#define SABLOCK_PIPELINE_META_GRAPH_H_

#include <cstddef>

#include "core/blocking.h"

namespace sablock::pipeline {

/// Edge-weighting schemes of the meta-blocking paper (Papadakis et al.,
/// TKDE 2014). The blocking graph has one node per record and one edge
/// per record pair sharing at least one block.
enum class MetaWeighting {
  kArcs,  ///< Σ over common blocks of 1 / ||b|| (reciprocal comparisons)
  kCbs,   ///< number of common blocks
  kEcbs,  ///< CBS · log(|B|/|B_i|) · log(|B|/|B_j|)
  kJs,    ///< Jaccard of the two records' block sets
  kEjs,   ///< JS · log(|E|/|v_i|) · log(|E|/|v_j|)
};

/// Pruning algorithms of the meta-blocking paper.
enum class MetaPruning {
  kWep,  ///< weighted edge pruning: keep edges >= global mean weight
  kCep,  ///< cardinality edge pruning: keep top-K edges, K = ⌊Σ|b|/2⌋
  kWnp,  ///< weighted node pruning: keep edges >= a node-local mean
  kCnp,  ///< cardinality node pruning: per-node top-k, k = ⌊Σ|b|/|V|⌋
};

const char* MetaWeightingName(MetaWeighting w);
const char* MetaPruningName(MetaPruning p);

/// The graph phase of meta-blocking, reusable by any pipeline: builds the
/// blocking graph of `input` (whose record ids must lie in
/// [0, num_records)), weights its edges, prunes, and returns the retained
/// comparisons as 2-record blocks. Deterministic for a given input block
/// order.
core::BlockCollection MetaPrune(size_t num_records,
                                const core::BlockCollection& input,
                                MetaWeighting weighting,
                                MetaPruning pruning);

}  // namespace sablock::pipeline

#endif  // SABLOCK_PIPELINE_META_GRAPH_H_
