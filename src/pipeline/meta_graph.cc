#include "pipeline/meta_graph.h"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <functional>
#include <utility>
#include <vector>

#include "common/flat_map.h"

namespace sablock::pipeline {

const char* MetaWeightingName(MetaWeighting w) {
  switch (w) {
    case MetaWeighting::kArcs: return "ARCS";
    case MetaWeighting::kCbs: return "CBS";
    case MetaWeighting::kEcbs: return "ECBS";
    case MetaWeighting::kJs: return "JS";
    case MetaWeighting::kEjs: return "EJS";
  }
  return "?";
}

const char* MetaPruningName(MetaPruning p) {
  switch (p) {
    case MetaPruning::kWep: return "WEP";
    case MetaPruning::kCep: return "CEP";
    case MetaPruning::kWnp: return "WNP";
    case MetaPruning::kCnp: return "CNP";
  }
  return "?";
}

namespace {

struct EdgeAccumulator {
  uint32_t common_blocks = 0;  // CBS
  double arcs = 0.0;           // Σ 1/||b||
};

uint64_t PairKey(uint32_t a, uint32_t b) {
  if (a > b) std::swap(a, b);
  return (static_cast<uint64_t>(a) << 32) | b;
}

}  // namespace

std::vector<WeightedPair> WeightPairs(size_t num_records,
                                      const core::BlockCollection& input,
                                      MetaWeighting weighting) {
  // Per-record block membership counts |B_i| and the edge accumulators.
  // The accumulator map is the hot path of every meta-blocking run — one
  // probe per candidate comparison — so it is an open-addressing FlatMap
  // (inline key/value slots, one cache line per probe) rather than a
  // node-based std::unordered_map.
  std::vector<uint32_t> record_blocks(num_records, 0);
  FlatMap<uint64_t, EdgeAccumulator> edges;
  edges.reserve(input.TotalBlockSizes());
  for (const core::Block& b : input.blocks()) {
    double comparisons =
        static_cast<double>(b.size()) * (static_cast<double>(b.size()) - 1) /
        2.0;
    for (data::RecordId id : b) ++record_blocks[id];
    for (size_t i = 0; i < b.size(); ++i) {
      for (size_t j = i + 1; j < b.size(); ++j) {
        if (b[i] == b[j]) continue;
        EdgeAccumulator& acc = edges[PairKey(b[i], b[j])];
        ++acc.common_blocks;
        acc.arcs += 1.0 / comparisons;
      }
    }
  }

  const double num_blocks =
      std::max<double>(static_cast<double>(input.NumBlocks()), 1.0);
  const double num_edges =
      std::max<double>(static_cast<double>(edges.size()), 1.0);

  // Node degrees |v_i| (distinct co-occurring records) for EJS.
  std::vector<uint32_t> degree(num_records, 0);
  for (const auto& [key, acc] : edges) {
    ++degree[static_cast<uint32_t>(key >> 32)];
    ++degree[static_cast<uint32_t>(key & 0xffffffffULL)];
  }

  auto weight_of = [&](uint64_t key, const EdgeAccumulator& acc) -> double {
    uint32_t a = static_cast<uint32_t>(key >> 32);
    uint32_t b = static_cast<uint32_t>(key & 0xffffffffULL);
    double cbs = acc.common_blocks;
    switch (weighting) {
      case MetaWeighting::kArcs:
        return acc.arcs;
      case MetaWeighting::kCbs:
        return cbs;
      case MetaWeighting::kEcbs:
        return cbs * std::log(num_blocks / record_blocks[a]) *
               std::log(num_blocks / record_blocks[b]);
      case MetaWeighting::kJs:
        return cbs / (record_blocks[a] + record_blocks[b] - cbs);
      case MetaWeighting::kEjs: {
        double js = cbs / (record_blocks[a] + record_blocks[b] - cbs);
        double da = std::max<double>(degree[a], 1.0);
        double db = std::max<double>(degree[b], 1.0);
        return js * std::log(num_edges / da) * std::log(num_edges / db);
      }
    }
    return 0.0;
  };

  std::vector<WeightedPair> weighted;
  weighted.reserve(edges.size());
  for (const auto& [key, acc] : edges) {
    weighted.push_back({key, weight_of(key, acc)});
  }
  return weighted;
}

core::BlockCollection MetaPrune(size_t num_records,
                                const core::BlockCollection& input,
                                MetaWeighting weighting,
                                MetaPruning pruning) {
  std::vector<WeightedPair> weighted =
      WeightPairs(num_records, input, weighting);
  const double num_edges =
      std::max<double>(static_cast<double>(weighted.size()), 1.0);
  double total_weight = 0.0;
  for (const WeightedPair& e : weighted) total_weight += e.weight;

  // Node degrees |v_i| (distinct co-occurring records), used by the
  // node-centric prunings' thresholds.
  std::vector<uint32_t> degree(num_records, 0);
  for (const WeightedPair& e : weighted) {
    ++degree[e.a()];
    ++degree[e.b()];
  }

  std::vector<uint64_t> kept;
  switch (pruning) {
    case MetaPruning::kWep: {
      double mean = weighted.empty() ? 0.0 : total_weight / num_edges;
      for (const WeightedPair& e : weighted) {
        if (e.weight >= mean) kept.push_back(e.key);
      }
      break;
    }
    case MetaPruning::kCep: {
      size_t budget = static_cast<size_t>(input.TotalBlockSizes() / 2);
      budget = std::min(budget, weighted.size());
      std::partial_sort(weighted.begin(),
                        weighted.begin() + static_cast<ptrdiff_t>(budget),
                        weighted.end(),
                        [](const WeightedPair& x, const WeightedPair& y) {
                          return x.weight > y.weight;
                        });
      for (size_t i = 0; i < budget; ++i) kept.push_back(weighted[i].key);
      break;
    }
    case MetaPruning::kWnp: {
      // Node-local mean thresholds; keep an edge if it clears the threshold
      // of either endpoint (the union of the node-centric retained sets).
      std::vector<double> sum(num_records, 0.0);
      for (const WeightedPair& e : weighted) {
        sum[static_cast<uint32_t>(e.key >> 32)] += e.weight;
        sum[static_cast<uint32_t>(e.key & 0xffffffffULL)] += e.weight;
      }
      for (const WeightedPair& e : weighted) {
        uint32_t a = static_cast<uint32_t>(e.key >> 32);
        uint32_t b = static_cast<uint32_t>(e.key & 0xffffffffULL);
        double thr_a = degree[a] > 0 ? sum[a] / degree[a] : 0.0;
        double thr_b = degree[b] > 0 ? sum[b] / degree[b] : 0.0;
        if (e.weight >= thr_a || e.weight >= thr_b) kept.push_back(e.key);
      }
      break;
    }
    case MetaPruning::kCnp: {
      size_t k = static_cast<size_t>(
          std::max<uint64_t>(1, input.TotalBlockSizes() /
                                    std::max<size_t>(num_records, 1)));
      // Gather each node's incident edges, keep its top-k, union them.
      std::vector<std::vector<std::pair<double, uint64_t>>> incident(
          num_records);
      for (const WeightedPair& e : weighted) {
        incident[static_cast<uint32_t>(e.key >> 32)].emplace_back(e.weight,
                                                                  e.key);
        incident[static_cast<uint32_t>(e.key & 0xffffffffULL)].emplace_back(
            e.weight, e.key);
      }
      for (auto& inc : incident) {
        size_t keep = std::min(k, inc.size());
        if (keep == 0) continue;
        std::partial_sort(inc.begin(),
                          inc.begin() + static_cast<ptrdiff_t>(keep),
                          inc.end(), std::greater<>());
        for (size_t i = 0; i < keep; ++i) kept.push_back(inc[i].second);
      }
      // Union of the per-node top-k sets, in a canonical (sorted) order
      // rather than hash order — the output is platform-independent.
      std::sort(kept.begin(), kept.end());
      kept.erase(std::unique(kept.begin(), kept.end()), kept.end());
      break;
    }
  }

  core::BlockCollection out;
  for (uint64_t key : kept) {
    out.Add({static_cast<uint32_t>(key >> 32),
             static_cast<uint32_t>(key & 0xffffffffULL)});
  }
  return out;
}

}  // namespace sablock::pipeline
