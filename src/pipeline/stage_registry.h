#ifndef SABLOCK_PIPELINE_STAGE_REGISTRY_H_
#define SABLOCK_PIPELINE_STAGE_REGISTRY_H_

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "api/blocker_spec.h"
#include "api/registry.h"
#include "common/status.h"
#include "common/statusor.h"
#include "pipeline/stage.h"

namespace sablock::pipeline {

/// Registry entry metadata for one pipeline stage, mirroring
/// api::BlockerInfo (and reusing api::ParamDoc so `sablock_cli --list`
/// renders stages and blockers uniformly).
struct StageInfo {
  std::string name;     ///< canonical spec name, e.g. "purge"
  std::string summary;  ///< one-line description
  std::vector<std::string> aliases;
  std::vector<api::ParamDoc> params;
};

/// Maps stage spec names to factories, the stage-side mirror of
/// api::BlockerRegistry: pipeline specs name their stages
/// ("purge:max_size=500") and this registry constructs them, so callers
/// compose post-processing chains from strings without including any
/// concrete stage header.
class StageRegistry {
 public:
  /// A factory reads its parameters from the ParamMap (consuming the keys
  /// it understands) and produces the stage; the registry turns accessor
  /// errors and unconsumed keys into the returned Status.
  using Factory = std::function<Status(api::ParamMap& params,
                                       std::unique_ptr<PipelineStage>* out)>;

  /// The process-wide registry with all built-in stages registered.
  static StageRegistry& Global();

  /// Registers a stage. Name and alias collisions abort (programming
  /// error).
  void Register(StageInfo info, Factory factory);

  /// Parses `spec_string` ("name[:key=val,...]") and builds the stage.
  Status Create(const std::string& spec_string,
                std::unique_ptr<PipelineStage>* out) const;

  /// Builds the stage described by a parsed spec (stage specs share the
  /// blocker spec grammar). Taken by value: the factory consumes the
  /// parameter map.
  Status Create(api::BlockerSpec spec,
                std::unique_ptr<PipelineStage>* out) const;

  /// Value-returning form: malformed stage specs come back as diagnostic
  /// Statuses, never CHECK failures.
  StatusOr<std::unique_ptr<PipelineStage>> Create(
      const std::string& spec_string) const {
    std::unique_ptr<PipelineStage> stage;
    Status status = Create(spec_string, &stage);
    if (!status.ok()) return status;
    return stage;
  }

  /// True if `name` (canonical or alias, any case) is registered.
  bool Contains(const std::string& name) const;

  /// Canonical entries, sorted by name.
  std::vector<StageInfo> List() const;

 private:
  std::vector<std::pair<StageInfo, Factory>> entries_;
  std::map<std::string, size_t> index_;  // name or alias -> entries_ index
};

namespace internal {
/// Defined in stages.cc; called once by Global().
void RegisterBuiltinStages(StageRegistry& registry);
}  // namespace internal

}  // namespace sablock::pipeline

#endif  // SABLOCK_PIPELINE_STAGE_REGISTRY_H_
