#include "pipeline/stages.h"

#include <algorithm>
#include <cstdio>
#include <memory>
#include <utility>

#include "core/budget.h"
#include "pipeline/stage_registry.h"
#include "progressive/progressive_stage.h"
#include "progressive/scheduler.h"

namespace sablock::pipeline {

std::string PurgeStage::name() const {
  return "purge(max_size=" + std::to_string(max_size_) + ")";
}

std::string FilterStage::name() const {
  std::string out = "filter(min_size=" + std::to_string(min_size_);
  if (top_frac_ < 1.0) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), ",top_frac=%g", top_frac_);
    out += buf;
  }
  return out + ")";
}

std::string CapStage::name() const {
  return "cap(budget=" + std::to_string(budget_) + ")";
}

std::string MetaStage::name() const {
  return std::string("meta(") + MetaPruningName(pruning_) + "+" +
         MetaWeightingName(weighting_) + ")";
}

void FilterStage::Consume(core::Block block) {
  if (block.size() < min_size_) return;
  if (top_frac_ < 1.0) {
    buffered_.push_back(std::move(block));
    return;
  }
  next_->Consume(std::move(block));
}

bool FilterStage::Done() const {
  // Barrier mode must see the whole stream before ranking blocks.
  return top_frac_ < 1.0 ? false : next_->Done();
}

void FilterStage::Flush() {
  if (top_frac_ < 1.0 && !buffered_.empty()) {
    // Keep the ⌊top_frac·n⌋ smallest blocks. The size threshold comes
    // from a selection over the sorted sizes; survivors are emitted in
    // arrival order, with ties at the threshold resolved first-come, so
    // the output is deterministic for a given input order. The epsilon
    // absorbs binary-float rounding (0.29 * 100 = 28.999...), which
    // would otherwise truncate one block below the documented floor.
    const size_t keep = static_cast<size_t>(
        top_frac_ * static_cast<double>(buffered_.size()) + 1e-9);
    std::vector<uint64_t> sizes;
    sizes.reserve(buffered_.size());
    for (const core::Block& b : buffered_) sizes.push_back(b.size());
    if (keep > 0) {
      std::nth_element(sizes.begin(), sizes.begin() + (keep - 1),
                       sizes.end());
      const uint64_t threshold = sizes[keep - 1];
      size_t under = 0;
      for (uint64_t s : sizes) under += (s < threshold) ? 1 : 0;
      size_t at_threshold_quota = keep - under;
      for (core::Block& b : buffered_) {
        if (next_->Done()) break;
        const uint64_t n = b.size();
        if (n > threshold) continue;
        if (n == threshold) {
          if (at_threshold_quota == 0) continue;
          --at_threshold_quota;
        }
        next_->Consume(std::move(b));
      }
    }
    buffered_.clear();
  }
  next_->Flush();
}

void MetaStage::Flush() {
  // Canonical content order (see class comment). On the classic
  // single-producer path the generator already emits sorted blocks and
  // this is a no-op pass; under the engine's stream mode it erases the
  // scheduling-dependent arrival order.
  std::sort(buffered_.begin(), buffered_.end());
  core::BlockCollection input;
  for (core::Block& block : buffered_) input.Add(std::move(block));
  buffered_.clear();
  MetaPrune(dataset_->size(), input, weighting_, pruning_).Drain(*next_);
  next_->Flush();
}

namespace internal {

void RegisterBuiltinStages(StageRegistry& r) {
  r.Register(
      {"purge",
       "block purging: drop blocks with more than max_size records",
       {"block-purging"},
       {{"max_size", "500", "largest block forwarded (>= 2)"}}},
      [](api::ParamMap& p, std::unique_ptr<PipelineStage>* out) {
        uint64_t max_size = p.GetUint64("max_size", 500);
        if (max_size < 2) {
          return Status::Error("param 'max_size': must be >= 2");
        }
        *out = std::make_unique<PurgeStage>(max_size);
        return Status::Ok();
      });

  r.Register(
      {"filter",
       "block filtering: drop blocks under min_size; top_frac < 1 keeps "
       "only that fraction of blocks, smallest first (barrier)",
       {"block-filtering"},
       {{"min_size", "2", "smallest block forwarded"},
        {"top_frac", "1.0", "fraction of blocks kept, in (0, 1]"}}},
      [](api::ParamMap& p, std::unique_ptr<PipelineStage>* out) {
        uint64_t min_size = p.GetUint64("min_size", 2);
        double top_frac = p.GetDouble("top_frac", 1.0);
        if (top_frac <= 0.0 || top_frac > 1.0) {
          return Status::Error("param 'top_frac': must be in (0, 1]");
        }
        *out = std::make_unique<FilterStage>(min_size, top_frac);
        return Status::Ok();
      });

  r.Register(
      {"cap",
       "comparison budget: forward blocks until budget comparisons have "
       "passed, then stop the producer",
       {"budget"},
       {{"budget", "1000000",
         "redundancy-counting comparison budget (>= 1)"}}},
      [](api::ParamMap& p, std::unique_ptr<PipelineStage>* out) {
        uint64_t budget = p.GetUint64("budget", 1000000);
        if (budget < 1) {
          return Status::Error("param 'budget': must be >= 1");
        }
        *out = std::make_unique<CapStage>(budget);
        return Status::Ok();
      });

  r.Register(
      {"meta",
       "meta-blocking graph phase (barrier): weight the blocking graph's "
       "edges, prune, emit retained comparisons as pair blocks",
       {"meta-blocking"},
       {{"weight", "cbs", "edge weights (arcs|cbs|ecbs|js|ejs)"},
        {"prune", "wep", "pruning algorithm (wep|cep|wnp|cnp)"}}},
      [](api::ParamMap& p, std::unique_ptr<PipelineStage>* out) {
        auto weighting = p.GetEnum<MetaWeighting>(
            "weight", MetaWeighting::kCbs,
            {{"arcs", MetaWeighting::kArcs},
             {"cbs", MetaWeighting::kCbs},
             {"ecbs", MetaWeighting::kEcbs},
             {"js", MetaWeighting::kJs},
             {"ejs", MetaWeighting::kEjs}});
        auto pruning = p.GetEnum<MetaPruning>(
            "prune", MetaPruning::kWep,
            {{"wep", MetaPruning::kWep},
             {"cep", MetaPruning::kCep},
             {"wnp", MetaPruning::kWnp},
             {"cnp", MetaPruning::kCnp}});
        *out = std::make_unique<MetaStage>(weighting, pruning);
        return Status::Ok();
      });

  r.Register(
      {"progressive",
       "progressive emission (barrier): rank every distinct candidate "
       "pair best-first and emit pair blocks under a Budget",
       {},
       {{"sched", "ew-cbs",
         "scheduler (bsa|ew-arcs|ew-cbs|ew-ecbs|ew-js|ew-ejs|rr|random)"},
        {"pairs", "unlimited", "pair budget (>= 1; omit for unlimited)"},
        {"seconds", "unlimited", "wall-clock budget in seconds (> 0)"},
        {"recall-target", "off",
         "stop at this recall in (0, 1]; needs ground truth"},
        {"seed", "42", "shuffle seed for sched=random"}}},
      [](api::ParamMap& p, std::unique_ptr<PipelineStage>* out) {
        std::string sched = p.GetString("sched", "ew-cbs");
        core::Budget budget;
        budget.pairs = p.GetUint64("pairs", core::Budget::kUnlimitedPairs);
        budget.seconds = p.GetDouble("seconds", 0.0);
        budget.recall_target = p.GetDouble("recall-target", 0.0);
        uint64_t seed = p.GetUint64("seed", 42);
        if (budget.pairs < 1) {
          return Status::Error("param 'pairs': must be >= 1");
        }
        if (budget.seconds < 0.0) {
          return Status::Error("param 'seconds': must be > 0");
        }
        if (budget.recall_target < 0.0 || budget.recall_target > 1.0) {
          return Status::Error("param 'recall-target': must be in (0, 1]");
        }
        std::unique_ptr<progressive::PairScheduler> scheduler;
        Status status = progressive::MakeScheduler(sched, seed, &scheduler);
        if (!status.ok()) return status;
        *out = std::make_unique<progressive::ProgressiveStage>(
            std::shared_ptr<const progressive::PairScheduler>(
                std::move(scheduler)),
            budget, seed);
        return Status::Ok();
      });
}

}  // namespace internal

}  // namespace sablock::pipeline
