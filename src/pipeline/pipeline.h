#ifndef SABLOCK_PIPELINE_PIPELINE_H_
#define SABLOCK_PIPELINE_PIPELINE_H_

#include <memory>
#include <string>
#include <vector>

#include "api/pipeline_spec.h"
#include "common/status.h"
#include "common/statusor.h"
#include "core/blocking.h"
#include "obs/span.h"
#include "pipeline/stage.h"

namespace sablock::pipeline {

/// A wired, single-use instance of a pipeline's stage chain: the stages
/// are attached back-to-front onto a final sink, head() is where the
/// producer emits, and Flush() ends the stream (cascading through every
/// stage, which is when barrier stages run). Created by
/// Pipeline::Instantiate; movable so it can be returned by value.
///
/// The flush stops at the chain boundary: blocks and Done() flow through
/// to the caller's sink, but the caller's sink's own Flush() is never
/// invoked. Flush ownership does not cross an ownership boundary — so a
/// PipelinedBlocker running one chain per record shard cannot fire an
/// outer shared barrier stage once per shard.
///
/// Every stage is instrumented through an interposed counting sink: what
/// a stage emits feeds the process-wide `blocks_emitted{stage=...}` /
/// `comparisons_emitted{stage=...}` counters and the per-stage
/// block-size histogram, labeled by the stage's registry spec name. The
/// chain's trace id (minted by the runner, or threaded in from a serving
/// request) tags the chain-lifetime `pipeline.run` span.
class Chain {
 public:
  /// The sink the block producer writes into (the first stage, or the
  /// boundary pass-through for an empty pipeline).
  core::BlockSink& head() { return *head_; }

  /// Ends the stream: call exactly once, after the producer returns.
  /// Closes the chain's trace span.
  void Flush() {
    head_->Flush();
    span_.reset();
  }

  /// The trace id every span and stage observation of this chain run
  /// carries (0 when instantiated untraced).
  obs::TraceId trace() const { return trace_; }

 private:
  friend class Pipeline;

  /// Forwards blocks and backpressure to the chain's final sink but
  /// absorbs the flush (see class comment).
  class Boundary : public core::BlockSink {
   public:
    explicit Boundary(core::BlockSink& inner) : inner_(&inner) {}
    void Consume(core::Block block) override {
      inner_->Consume(std::move(block));
    }
    bool Done() const override { return inner_->Done(); }
    void Flush() override {}
   private:
    core::BlockSink* inner_;
  };

  std::vector<std::unique_ptr<PipelineStage>> stages_;
  /// One counting interposer downstream of each stage (wiring order, so
  /// observers_[i] measures what stages_[i] emits).
  std::vector<std::unique_ptr<core::BlockSink>> observers_;
  std::unique_ptr<Boundary> boundary_;
  core::BlockSink* head_ = nullptr;
  obs::TraceId trace_ = 0;
  std::unique_ptr<obs::ObsSpan> span_;  // chain lifetime (until Flush)
};

/// An ordered sequence of prototype stages. The pipeline itself holds no
/// run state: Instantiate() clones every stage into a fresh wired Chain,
/// so a const Pipeline can serve many runs concurrently (the sharded
/// engine runs one chain per record shard when the pipeline executes
/// inside a PipelinedBlocker).
class Pipeline {
 public:
  Pipeline() = default;
  Pipeline(Pipeline&&) = default;
  Pipeline& operator=(Pipeline&&) = default;

  void Add(std::unique_ptr<PipelineStage> stage) {
    stages_.push_back(std::move(stage));
  }

  bool empty() const { return stages_.empty(); }
  size_t size() const { return stages_.size(); }
  const std::vector<std::unique_ptr<PipelineStage>>& stages() const {
    return stages_;
  }

  /// " | "-joined stage names, e.g. "purge(max_size=500) | meta(WEP+CBS)".
  std::string name() const;

  /// Clones the stages into a chain emitting into `sink`. `trace` tags
  /// the chain's span and stage observations; 0 mints a fresh id (pass a
  /// request's id to thread serving-path traces through the chain).
  Chain Instantiate(const data::Dataset& dataset, core::BlockSink& sink,
                    obs::TraceId trace = 0) const;

  /// Runs `technique` through a fresh chain into `sink` and flushes.
  void Run(const core::BlockingTechnique& technique,
           const data::Dataset& dataset, core::BlockSink& sink,
           obs::TraceId trace = 0) const;

 private:
  std::vector<std::unique_ptr<PipelineStage>> stages_;
};

/// A blocking technique with a pipeline bolted on: Run() sends the
/// wrapped generator's blocks through the stage chain. This is how a
/// pipeline drops into every existing technique-shaped slot — the eval
/// harness, the sharded engine (which then applies the whole pipeline
/// independently per record shard), the CLI.
class PipelinedBlocker : public core::BlockingTechnique {
 public:
  PipelinedBlocker(std::unique_ptr<core::BlockingTechnique> blocker,
                   Pipeline stages)
      : blocker_(std::move(blocker)), stages_(std::move(stages)) {}

  std::string name() const override;
  using core::BlockingTechnique::Run;
  void Run(const data::Dataset& dataset,
           core::BlockSink& sink) const override {
    stages_.Run(*blocker_, dataset, sink);
  }

  const core::BlockingTechnique& blocker() const { return *blocker_; }
  const Pipeline& stages() const { return stages_; }

 private:
  std::unique_ptr<core::BlockingTechnique> blocker_;
  Pipeline stages_;
};

/// Builds a PipelinedBlocker from a parsed spec: the generator through
/// api::BlockerRegistry, every stage through StageRegistry. Taken by
/// value — the factories consume the parameter maps.
Status Build(api::PipelineSpec spec, std::unique_ptr<PipelinedBlocker>* out);

/// Parses "blocker | stage | stage" and builds. A bare blocker spec is a
/// zero-stage pipeline.
Status Build(const std::string& spec_string,
             std::unique_ptr<PipelinedBlocker>* out);

/// Value-returning form: every malformed pipeline spec (unknown blocker
/// or stage, bad parameter, empty segment) is a diagnostic Status, never
/// a CHECK failure.
inline StatusOr<std::unique_ptr<PipelinedBlocker>> Build(
    const std::string& spec_string) {
  std::unique_ptr<PipelinedBlocker> built;
  Status status = Build(spec_string, &built);
  if (!status.ok()) return status;
  return built;
}

}  // namespace sablock::pipeline

#endif  // SABLOCK_PIPELINE_PIPELINE_H_
