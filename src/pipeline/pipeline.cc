#include "pipeline/pipeline.h"

#include <utility>

#include "api/registry.h"
#include "obs/metrics.h"
#include "pipeline/stage_registry.h"

namespace sablock::pipeline {

namespace {

/// The interposed per-stage counting layer: sits downstream of one
/// cloned stage and feeds the process-wide stage families. Counters are
/// resolved once per chain instantiation (one registry lock per run, not
/// per block); the per-block cost is three relaxed atomic adds. Labeled
/// by the stage's registry spec name so all instances of a stage kind
/// aggregate into one low-cardinality series.
class StageObserver : public core::BlockSink {
 public:
  StageObserver(core::BlockSink& next, const std::string& stage_name)
      : next_(&next) {
    obs::MetricsRegistry& registry = obs::MetricsRegistry::Global();
    blocks_ = registry.GetCounter(
        "blocks_emitted", "blocks emitted per pipeline stage", "stage",
        stage_name);
    comparisons_ = registry.GetCounter(
        "comparisons_emitted",
        "pairwise comparisons (sum |b|(|b|-1)/2) emitted per pipeline stage",
        "stage", stage_name);
    block_size_ = registry.GetHistogram(
        "block_size", "emitted block-size distribution per pipeline stage",
        SizeBuckets(), "stage", stage_name);
  }

  void Consume(core::Block block) override {
    const uint64_t n = block.size();
    blocks_->Add(1);
    comparisons_->Add(n * (n - 1) / 2);
    block_size_->Observe(static_cast<double>(n));
    next_->Consume(std::move(block));
  }

  bool Done() const override { return next_->Done(); }
  void Flush() override { next_->Flush(); }

 private:
  /// Block-size edges: powers of 4 from 2 to 2^17 — resolution where
  /// purge/meta decisions happen, one overflow bucket for the monsters.
  static std::vector<double> SizeBuckets() {
    std::vector<double> bounds;
    for (double edge = 2.0; edge <= 131072.0; edge *= 4.0) {
      bounds.push_back(edge);
    }
    return bounds;
  }

  core::BlockSink* next_;
  obs::Counter* blocks_;
  obs::Counter* comparisons_;
  obs::Histogram* block_size_;
};

}  // namespace

std::string Pipeline::name() const {
  std::string out;
  for (const auto& stage : stages_) {
    if (!out.empty()) out += " | ";
    out += stage->name();
  }
  return out;
}

Chain Pipeline::Instantiate(const data::Dataset& dataset,
                            core::BlockSink& sink,
                            obs::TraceId trace) const {
  Chain chain;
  chain.trace_ = trace == 0 ? obs::NextTraceId() : trace;
  chain.span_ = std::make_unique<obs::ObsSpan>("pipeline.run", chain.trace_);
  chain.boundary_ = std::make_unique<Chain::Boundary>(sink);
  chain.stages_.reserve(stages_.size());
  for (const auto& stage : stages_) chain.stages_.push_back(stage->Clone());
  // Wire back-to-front: the last stage forwards into the flush-absorbing
  // boundary in front of the caller's sink, every earlier stage into its
  // successor — with a counting observer interposed downstream of every
  // stage so each stage's output stream is measured.
  core::BlockSink* next = chain.boundary_.get();
  for (auto it = chain.stages_.rbegin(); it != chain.stages_.rend(); ++it) {
    auto observer = std::make_unique<StageObserver>(*next, (*it)->spec_name());
    (*it)->Attach(dataset, *observer);
    chain.observers_.push_back(std::move(observer));
    next = it->get();
  }
  chain.head_ = next;
  return chain;
}

void Pipeline::Run(const core::BlockingTechnique& technique,
                   const data::Dataset& dataset, core::BlockSink& sink,
                   obs::TraceId trace) const {
  Chain chain = Instantiate(dataset, sink, trace);
  technique.Run(dataset, chain.head());
  chain.Flush();
}

std::string PipelinedBlocker::name() const {
  std::string out = blocker_->name();
  if (!stages_.empty()) out += " | " + stages_.name();
  return out;
}

Status Build(api::PipelineSpec spec, std::unique_ptr<PipelinedBlocker>* out) {
  out->reset();
  std::unique_ptr<core::BlockingTechnique> blocker;
  Status status =
      api::BlockerRegistry::Global().Create(std::move(spec.blocker), &blocker);
  if (!status.ok()) return status;
  Pipeline stages;
  for (api::BlockerSpec& stage_spec : spec.stages) {
    std::unique_ptr<PipelineStage> stage;
    status = StageRegistry::Global().Create(std::move(stage_spec), &stage);
    if (!status.ok()) return status;
    stages.Add(std::move(stage));
  }
  *out = std::make_unique<PipelinedBlocker>(std::move(blocker),
                                            std::move(stages));
  return Status::Ok();
}

Status Build(const std::string& spec_string,
             std::unique_ptr<PipelinedBlocker>* out) {
  api::PipelineSpec spec;
  Status status = api::PipelineSpec::Parse(spec_string, &spec);
  if (!status.ok()) return status;
  return Build(std::move(spec), out);
}

}  // namespace sablock::pipeline
