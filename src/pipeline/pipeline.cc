#include "pipeline/pipeline.h"

#include <utility>

#include "api/registry.h"
#include "pipeline/stage_registry.h"

namespace sablock::pipeline {

std::string Pipeline::name() const {
  std::string out;
  for (const auto& stage : stages_) {
    if (!out.empty()) out += " | ";
    out += stage->name();
  }
  return out;
}

Chain Pipeline::Instantiate(const data::Dataset& dataset,
                            core::BlockSink& sink) const {
  Chain chain;
  chain.boundary_ = std::make_unique<Chain::Boundary>(sink);
  chain.stages_.reserve(stages_.size());
  for (const auto& stage : stages_) chain.stages_.push_back(stage->Clone());
  // Wire back-to-front: the last stage forwards into the flush-absorbing
  // boundary in front of the caller's sink, every earlier stage into its
  // successor.
  core::BlockSink* next = chain.boundary_.get();
  for (auto it = chain.stages_.rbegin(); it != chain.stages_.rend(); ++it) {
    (*it)->Attach(dataset, *next);
    next = it->get();
  }
  chain.head_ = next;
  return chain;
}

void Pipeline::Run(const core::BlockingTechnique& technique,
                   const data::Dataset& dataset,
                   core::BlockSink& sink) const {
  Chain chain = Instantiate(dataset, sink);
  technique.Run(dataset, chain.head());
  chain.Flush();
}

std::string PipelinedBlocker::name() const {
  std::string out = blocker_->name();
  if (!stages_.empty()) out += " | " + stages_.name();
  return out;
}

Status Build(api::PipelineSpec spec, std::unique_ptr<PipelinedBlocker>* out) {
  out->reset();
  std::unique_ptr<core::BlockingTechnique> blocker;
  Status status =
      api::BlockerRegistry::Global().Create(std::move(spec.blocker), &blocker);
  if (!status.ok()) return status;
  Pipeline stages;
  for (api::BlockerSpec& stage_spec : spec.stages) {
    std::unique_ptr<PipelineStage> stage;
    status = StageRegistry::Global().Create(std::move(stage_spec), &stage);
    if (!status.ok()) return status;
    stages.Add(std::move(stage));
  }
  *out = std::make_unique<PipelinedBlocker>(std::move(blocker),
                                            std::move(stages));
  return Status::Ok();
}

Status Build(const std::string& spec_string,
             std::unique_ptr<PipelinedBlocker>* out) {
  api::PipelineSpec spec;
  Status status = api::PipelineSpec::Parse(spec_string, &spec);
  if (!status.ok()) return status;
  return Build(std::move(spec), out);
}

}  // namespace sablock::pipeline
