#ifndef SABLOCK_PIPELINE_STAGE_H_
#define SABLOCK_PIPELINE_STAGE_H_

#include <memory>
#include <string>

#include "core/block_sink.h"
#include "data/record.h"

namespace sablock::pipeline {

/// One stage of a block pipeline: a BlockSink that transforms the block
/// stream and forwards it to the next sink in the chain. Any block
/// generator composes with any sequence of stages — the post-processing
/// layer (purging, filtering, capping, meta-blocking) is orthogonal to
/// how the blocks were built.
///
/// Streaming stages (purge, filter:min_size, cap) pass every block
/// through incrementally; barrier stages (meta-blocking's graph phase,
/// filter:top_frac ranking) buffer their input and run on Flush(), the
/// end-of-stream signal.
///
/// Lifecycle: an instance is single-use. Attach() binds it to the dataset
/// being blocked and to its downstream sink before the first Consume();
/// Flush() ends the stream and cascades downstream. Pipelines hold
/// prototype stages and Clone() a fresh chain per run, so one Pipeline
/// serves concurrent runs (e.g. one per record shard).
class PipelineStage : public core::BlockSink {
 public:
  enum class Kind {
    kStreaming,  ///< forwards each block as it arrives
    kBarrier,    ///< buffers; transforms and emits on Flush()
  };

  /// Registry spec name, e.g. "purge".
  virtual std::string spec_name() const = 0;

  /// Short identifier including bound parameters, e.g.
  /// "purge(max_size=500)" — mirrors BlockingTechnique::name().
  virtual std::string name() const = 0;

  virtual Kind kind() const = 0;

  /// Fresh unattached copy carrying configuration only (never buffered
  /// state); lets a const Pipeline instantiate one chain per run.
  virtual std::unique_ptr<PipelineStage> Clone() const = 0;

  /// Binds the stage to the dataset being blocked and its downstream
  /// sink. Must be called exactly once, before any Consume().
  void Attach(const data::Dataset& dataset, core::BlockSink& next) {
    dataset_ = &dataset;
    next_ = &next;
  }

  /// Streaming stages are done when downstream is; barrier stages
  /// override to keep accepting input (they need the full stream before
  /// they can emit anything).
  bool Done() const override { return next_->Done(); }

  /// Default end-of-stream handling: nothing buffered, just cascade.
  void Flush() override { next_->Flush(); }

 protected:
  const data::Dataset* dataset_ = nullptr;
  core::BlockSink* next_ = nullptr;
};

}  // namespace sablock::pipeline

#endif  // SABLOCK_PIPELINE_STAGE_H_
