#ifndef SABLOCK_PIPELINE_STAGES_H_
#define SABLOCK_PIPELINE_STAGES_H_

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/blocking.h"
#include "pipeline/meta_graph.h"
#include "pipeline/stage.h"

namespace sablock::pipeline {

/// `purge:max_size=` — block purging (streaming): drops every block with
/// more than `max_size` records. The standard first step after token
/// blocking, keeping the downstream blocking graph tractable.
class PurgeStage : public PipelineStage {
 public:
  explicit PurgeStage(uint64_t max_size) : max_size_(max_size) {}

  std::string spec_name() const override { return "purge"; }
  std::string name() const override;
  Kind kind() const override { return Kind::kStreaming; }
  std::unique_ptr<PipelineStage> Clone() const override {
    return std::make_unique<PurgeStage>(max_size_);
  }

  void Consume(core::Block block) override {
    if (block.size() > max_size_) {
      ++purged_blocks_;
      return;
    }
    next_->Consume(std::move(block));
  }

  /// Blocks dropped so far.
  uint64_t purged_blocks() const { return purged_blocks_; }

 private:
  uint64_t max_size_;
  uint64_t purged_blocks_ = 0;
};

/// `filter:min_size=,top_frac=` — block filtering. `min_size` streams:
/// blocks with fewer records are dropped as they pass. `top_frac` < 1
/// turns the stage into a barrier implementing the survey's block
/// filtering: buffer everything, keep the ⌊top_frac·n⌋ blocks with the
/// fewest comparisons (smallest blocks carry the highest pair precision),
/// and emit the survivors in arrival order on Flush().
class FilterStage : public PipelineStage {
 public:
  FilterStage(uint64_t min_size, double top_frac)
      : min_size_(min_size), top_frac_(top_frac) {}

  std::string spec_name() const override { return "filter"; }
  std::string name() const override;
  Kind kind() const override {
    return top_frac_ < 1.0 ? Kind::kBarrier : Kind::kStreaming;
  }
  std::unique_ptr<PipelineStage> Clone() const override {
    return std::make_unique<FilterStage>(min_size_, top_frac_);
  }

  void Consume(core::Block block) override;
  bool Done() const override;
  void Flush() override;

 private:
  uint64_t min_size_;
  double top_frac_;
  std::vector<core::Block> buffered_;  // barrier mode only
};

/// `cap:budget=` — comparison budget (streaming): core::CappedSink as a
/// pipeline stage. Forwards blocks until `budget` redundancy-counting
/// comparisons Σ|b|(|b|-1)/2 have passed, then reports Done so the
/// producing technique stops early; the block crossing the budget is
/// still forwarded. The budget accounting itself is delegated to a
/// CappedSink over the downstream sink (created on first use, since the
/// downstream sink is only known after Attach).
class CapStage : public PipelineStage {
 public:
  explicit CapStage(uint64_t budget) : budget_(budget) {}

  std::string spec_name() const override { return "cap"; }
  std::string name() const override;
  Kind kind() const override { return Kind::kStreaming; }
  std::unique_ptr<PipelineStage> Clone() const override {
    return std::make_unique<CapStage>(budget_);
  }

  void Consume(core::Block block) override {
    if (!capped_) capped_.emplace(*next_, budget_);
    capped_->Consume(std::move(block));
  }

  bool Done() const override {
    return (capped_ && capped_->Done()) || next_->Done();
  }

  /// Comparisons forwarded so far.
  uint64_t comparisons() const {
    return capped_ ? capped_->comparisons() : 0;
  }
  /// Blocks received after the budget was exhausted.
  uint64_t dropped_blocks() const {
    return capped_ ? capped_->dropped_blocks() : 0;
  }

 private:
  uint64_t budget_;
  std::optional<core::CappedSink> capped_;
};

/// `meta:weight=,prune=` — meta-blocking's graph phase as a barrier
/// stage: buffers the whole input block collection, and on Flush() builds
/// the blocking graph, weights its edges, prunes, and emits the retained
/// comparisons as 2-record blocks. Composable with any generator — the
/// classic recipe is `token-blocking | purge | meta`, but every
/// registered technique slots in.
///
/// The flush sorts the buffered blocks into canonical content order
/// before pruning, so the output depends only on the *set* of input
/// blocks — not on arrival order. This is what makes the engine's
/// stream mode exact: floating-point edge-weight accumulation is order
/// sensitive, and without the sort a scheduling-dependent arrival order
/// could flip a threshold-straddling edge by an ULP.
class MetaStage : public PipelineStage {
 public:
  MetaStage(MetaWeighting weighting, MetaPruning pruning)
      : weighting_(weighting), pruning_(pruning) {}

  std::string spec_name() const override { return "meta"; }
  std::string name() const override;
  Kind kind() const override { return Kind::kBarrier; }
  std::unique_ptr<PipelineStage> Clone() const override {
    return std::make_unique<MetaStage>(weighting_, pruning_);
  }

  void Consume(core::Block block) override {
    buffered_.push_back(std::move(block));
  }

  /// Never signals Done upstream: the graph needs the full input even
  /// when downstream has already stopped accepting (the flush's Drain
  /// honours downstream backpressure instead).
  bool Done() const override { return false; }

  void Flush() override;

 private:
  MetaWeighting weighting_;
  MetaPruning pruning_;
  std::vector<core::Block> buffered_;
};

}  // namespace sablock::pipeline

#endif  // SABLOCK_PIPELINE_STAGES_H_
