#ifndef SABLOCK_BASELINES_BLOCKING_KEY_H_
#define SABLOCK_BASELINES_BLOCKING_KEY_H_

#include <string>
#include <vector>

#include "data/record.h"

namespace sablock::baselines {

/// How one attribute contributes to a blocking-key value (BKV).
struct KeyComponent {
  enum class Encoding {
    kExact,      ///< normalized full value
    kPrefix,     ///< first `prefix_len` characters of the normalized value
    kSoundex,    ///< Soundex code of the first word
    kNysiis,     ///< NYSIIS code of the first word
    kFirstWord,  ///< first word of the normalized value
  };
  std::string attribute;
  Encoding encoding = Encoding::kExact;
  int prefix_len = 4;
};

/// A blocking-key definition: the concatenation of encoded attribute
/// values. The paper defines the Cora key on authors + title and the
/// NC Voter key on first_name + last_name; helpers below build those.
struct BlockingKeyDef {
  std::vector<KeyComponent> components;
};

/// Computes the BKV of one record (components joined without separator;
/// missing values contribute nothing).
std::string MakeKey(const data::Dataset& dataset, data::RecordId id,
                    const BlockingKeyDef& def);

/// Computes all records' BKVs.
std::vector<std::string> MakeAllKeys(const data::Dataset& dataset,
                                     const BlockingKeyDef& def);

/// Exact-value key over the given attributes (sorted-neighbourhood style
/// sorting key).
BlockingKeyDef ExactKey(const std::vector<std::string>& attributes);

/// Phonetic key: Soundex of the first attribute's first word + prefix of
/// the second attribute (the classic TBlo key shape).
BlockingKeyDef PhoneticPrefixKey(const std::string& name_attribute,
                                 const std::string& other_attribute,
                                 int prefix_len = 4);

}  // namespace sablock::baselines

#endif  // SABLOCK_BASELINES_BLOCKING_KEY_H_
