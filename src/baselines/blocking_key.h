#ifndef SABLOCK_BASELINES_BLOCKING_KEY_H_
#define SABLOCK_BASELINES_BLOCKING_KEY_H_

#include <string>
#include <vector>

#include "data/record.h"
#include "features/feature_store.h"

namespace sablock::baselines {

/// How one attribute contributes to a blocking-key value (BKV).
struct KeyComponent {
  enum class Encoding {
    kExact,      ///< normalized full value
    kPrefix,     ///< first `prefix_len` characters of the normalized value
    kSoundex,    ///< Soundex code of the first word
    kNysiis,     ///< NYSIIS code of the first word
    kFirstWord,  ///< first word of the normalized value
  };
  std::string attribute;
  Encoding encoding = Encoding::kExact;
  int prefix_len = 4;
};

/// A blocking-key definition: the concatenation of encoded attribute
/// values. The paper defines the Cora key on authors + title and the
/// NC Voter key on first_name + last_name; helpers below build those.
struct BlockingKeyDef {
  std::vector<KeyComponent> components;
};

/// Per-dataset BKV generator: resolves each component's normalized-value
/// column from the dataset's FeatureStore once, then builds keys with no
/// per-record normalization or attribute lookup. Every key-based
/// technique should construct one of these per Run instead of calling
/// MakeKey in a loop.
class KeyBuilder {
 public:
  KeyBuilder(const data::Dataset& dataset, const BlockingKeyDef& def);

  /// The BKV of one record (components joined without separator; missing
  /// values contribute nothing).
  std::string Key(data::RecordId id) const;

 private:
  BlockingKeyDef def_;  // owned copy: safe for temporary-def callers
  features::FeatureView features_;  // keeps the store alive
  std::vector<features::FeatureView::TextHandle> columns_;  // per component
};

/// One-shot convenience around KeyBuilder (prefer KeyBuilder in loops).
std::string MakeKey(const data::Dataset& dataset, data::RecordId id,
                    const BlockingKeyDef& def);

/// Encodes one already normalized component value onto `key` — the
/// single shared encoding step behind KeyBuilder/MakeKey, exported so
/// per-record key computation outside a Dataset (the incremental
/// sorted-neighbourhood index) matches them byte-for-byte.
void AppendKeyComponent(const KeyComponent& comp, std::string_view value,
                        std::string* key);

/// Computes all records' BKVs.
std::vector<std::string> MakeAllKeys(const data::Dataset& dataset,
                                     const BlockingKeyDef& def);

/// Exact-value key over the given attributes (sorted-neighbourhood style
/// sorting key).
BlockingKeyDef ExactKey(const std::vector<std::string>& attributes);

/// Phonetic key: Soundex of the first attribute's first word + prefix of
/// the second attribute (the classic TBlo key shape).
BlockingKeyDef PhoneticPrefixKey(const std::string& name_attribute,
                                 const std::string& other_attribute,
                                 int prefix_len = 4);

}  // namespace sablock::baselines

#endif  // SABLOCK_BASELINES_BLOCKING_KEY_H_
