#ifndef SABLOCK_BASELINES_QGRAM_INDEXING_H_
#define SABLOCK_BASELINES_QGRAM_INDEXING_H_

#include "baselines/blocking_key.h"
#include "core/blocking.h"

namespace sablock::baselines {

/// Q-gram-based indexing ("QGr", Baxter et al.): each record's BKV is cut
/// into a q-gram list; all sub-lists of length >= ceil(threshold · L) are
/// generated (by recursive single-gram deletion) and concatenated into
/// index keys, so records whose BKVs differ by a few grams still share a
/// key. Sub-list explosion is bounded by `max_keys_per_record` (sub-lists
/// are generated shortest-deletion-first, which keeps the most similar
/// variants).
class QGramIndexing : public core::BlockingTechnique {
 public:
  QGramIndexing(BlockingKeyDef key, int q, double threshold,
                size_t max_keys_per_record = 64);

  std::string name() const override;
  using core::BlockingTechnique::Run;
  void Run(const data::Dataset& dataset,
           core::BlockSink& sink) const override;

 private:
  BlockingKeyDef key_;
  int q_;
  double threshold_;
  size_t max_keys_per_record_;
};

}  // namespace sablock::baselines

#endif  // SABLOCK_BASELINES_QGRAM_INDEXING_H_
