#include "baselines/adaptive_sorted_neighbourhood.h"

#include <algorithm>
#include <numeric>

#include "common/string_util.h"

namespace sablock::baselines {

AdaptiveSortedNeighbourhood::AdaptiveSortedNeighbourhood(
    BlockingKeyDef key, std::string similarity_name, double threshold,
    size_t max_block_size)
    : key_(std::move(key)),
      similarity_name_(std::move(similarity_name)),
      similarity_(text::SimilarityByName(similarity_name_)),
      threshold_(threshold),
      max_block_size_(max_block_size) {}

std::string AdaptiveSortedNeighbourhood::name() const {
  return "ASor(" + similarity_name_ + "," +
         sablock::FormatDouble(threshold_, 2) + ")";
}

void AdaptiveSortedNeighbourhood::Run(const data::Dataset& dataset,
                                      core::BlockSink& sink) const {
  std::vector<std::string> keys = MakeAllKeys(dataset, key_);
  std::vector<data::RecordId> order(dataset.size());
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(),
                   [&keys](data::RecordId a, data::RecordId b) {
                     return keys[a] < keys[b];
                   });

  core::Block current;
  auto flush = [&sink, &current]() {
    if (current.size() >= 2) sink.Consume(current);
    current.clear();
  };
  for (size_t i = 0; i < order.size(); ++i) {
    if (sink.Done()) return;
    if (current.empty()) {
      current.push_back(order[i]);
      continue;
    }
    const std::string& prev_key = keys[current.back()];
    const std::string& cur_key = keys[order[i]];
    bool similar = similarity_(prev_key, cur_key) >= threshold_;
    bool full =
        max_block_size_ > 0 && current.size() >= max_block_size_;
    if (similar && !full) {
      current.push_back(order[i]);
    } else {
      flush();
      current.push_back(order[i]);
    }
  }
  flush();
}

}  // namespace sablock::baselines
