#ifndef SABLOCK_BASELINES_CANOPY_H_
#define SABLOCK_BASELINES_CANOPY_H_

#include <cstdint>
#include <string>

#include "baselines/blocking_key.h"
#include "core/blocking.h"

namespace sablock::baselines {

/// Which cheap similarity the canopy methods use over BKV token sets.
enum class CanopySimilarity { kJaccard, kTfIdfCosine };

/// Threshold-based canopy clustering ("CaTh", McCallum et al.): repeatedly
/// pick a random seed record; all records with similarity >= `loose` join
/// its canopy (block); those with similarity >= `tight` are removed from
/// the candidate pool. An inverted index over BKV tokens restricts the
/// similarity computations to records sharing at least one token with the
/// seed (the "cheap distance" trick of the original paper).
class CanopyThreshold : public core::BlockingTechnique {
 public:
  CanopyThreshold(BlockingKeyDef key, CanopySimilarity similarity,
                  double loose, double tight, uint64_t seed = 31);

  std::string name() const override;
  using core::BlockingTechnique::Run;
  void Run(const data::Dataset& dataset,
           core::BlockSink& sink) const override;

 private:
  BlockingKeyDef key_;
  CanopySimilarity similarity_;
  double loose_;
  double tight_;
  uint64_t seed_;
};

/// Nearest-neighbour canopy clustering ("CaNN", Christen): like CaTh but
/// with cardinality thresholds — the canopy is the seed's `n1` most similar
/// candidates, of which the `n2` most similar are removed from the pool.
class CanopyNearestNeighbour : public core::BlockingTechnique {
 public:
  CanopyNearestNeighbour(BlockingKeyDef key, CanopySimilarity similarity,
                         int n1, int n2, uint64_t seed = 31);

  std::string name() const override;
  using core::BlockingTechnique::Run;
  void Run(const data::Dataset& dataset,
           core::BlockSink& sink) const override;

 private:
  BlockingKeyDef key_;
  CanopySimilarity similarity_;
  int n1_;
  int n2_;
  uint64_t seed_;
};

}  // namespace sablock::baselines

#endif  // SABLOCK_BASELINES_CANOPY_H_
