#include "baselines/standard_blocking.h"

#include <unordered_map>

namespace sablock::baselines {

void StandardBlocking::Run(const data::Dataset& dataset,
                           core::BlockSink& sink) const {
  KeyBuilder keys(dataset, key_);
  std::unordered_map<std::string, core::Block> buckets;
  for (data::RecordId id = 0; id < dataset.size(); ++id) {
    std::string key = keys.Key(id);
    if (key.empty()) continue;  // records without a key are not blocked
    buckets[key].push_back(id);
  }
  for (auto& [key, block] : buckets) {
    if (sink.Done()) return;
    if (block.size() >= 2) sink.Consume(std::move(block));
  }
}

}  // namespace sablock::baselines
