#include "baselines/standard_blocking.h"

#include <unordered_map>

namespace sablock::baselines {

core::BlockCollection StandardBlocking::Run(
    const data::Dataset& dataset) const {
  std::unordered_map<std::string, core::Block> buckets;
  for (data::RecordId id = 0; id < dataset.size(); ++id) {
    std::string key = MakeKey(dataset, id, key_);
    if (key.empty()) continue;  // records without a key are not blocked
    buckets[key].push_back(id);
  }
  core::BlockCollection out;
  for (auto& [key, block] : buckets) {
    if (block.size() >= 2) out.Add(std::move(block));
  }
  return out;
}

}  // namespace sablock::baselines
