#ifndef SABLOCK_BASELINES_META_BLOCKING_H_
#define SABLOCK_BASELINES_META_BLOCKING_H_

#include <cstdint>
#include <string>
#include <vector>

#include "baselines/blocking_key.h"
#include "core/blocking.h"

namespace sablock::baselines {

/// Edge-weighting schemes of the meta-blocking paper (Papadakis et al.,
/// TKDE 2014), used in the Fig. 12 comparison.
enum class MetaWeighting {
  kArcs,  ///< Σ over common blocks of 1 / ||b|| (reciprocal comparisons)
  kCbs,   ///< number of common blocks
  kEcbs,  ///< CBS · log(|B|/|B_i|) · log(|B|/|B_j|)
  kJs,    ///< Jaccard of the two records' block sets
  kEjs,   ///< JS · log(|E|/|v_i|) · log(|E|/|v_j|)
};

/// Pruning algorithms of the meta-blocking paper.
enum class MetaPruning {
  kWep,  ///< weighted edge pruning: keep edges >= global mean weight
  kCep,  ///< cardinality edge pruning: keep top-K edges, K = ⌊Σ|b|/2⌋
  kWnp,  ///< weighted node pruning: keep edges >= a node-local mean
  kCnp,  ///< cardinality node pruning: per-node top-k, k = ⌊Σ|b|/|V|⌋
};

const char* MetaWeightingName(MetaWeighting w);
const char* MetaPruningName(MetaPruning p);

/// Token blocking: the canonical schema-agnostic input of meta-blocking.
/// Every distinct token of the key attributes becomes a block; blocks
/// larger than `max_block_size` are purged (standard block-purging step,
/// required to keep the blocking graph tractable).
core::BlockCollection TokenBlocking(const data::Dataset& dataset,
                                    const std::vector<std::string>& attributes,
                                    size_t max_block_size);

/// Meta-blocking: builds the blocking graph of an input block collection,
/// weights its edges, prunes, and returns the retained comparisons as
/// 2-record blocks.
class MetaBlocking : public core::BlockingTechnique {
 public:
  MetaBlocking(std::vector<std::string> attributes, MetaWeighting weighting,
               MetaPruning pruning, size_t max_block_size = 500);

  std::string name() const override;
  using core::BlockingTechnique::Run;
  void Run(const data::Dataset& dataset,
           core::BlockSink& sink) const override;

  /// Runs the graph phase on a pre-built block collection (exposed so the
  /// Fig. 12 bench can report the initial blocks' metrics too).
  core::BlockCollection Prune(const data::Dataset& dataset,
                              const core::BlockCollection& input) const;

 private:
  std::vector<std::string> attributes_;
  MetaWeighting weighting_;
  MetaPruning pruning_;
  size_t max_block_size_;
};

}  // namespace sablock::baselines

#endif  // SABLOCK_BASELINES_META_BLOCKING_H_
