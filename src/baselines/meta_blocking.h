#ifndef SABLOCK_BASELINES_META_BLOCKING_H_
#define SABLOCK_BASELINES_META_BLOCKING_H_

#include <cstdint>
#include <string>
#include <vector>

#include "core/blocking.h"
#include "pipeline/meta_graph.h"

namespace sablock::baselines {

// The weighting/pruning machinery lives in pipeline::MetaPrune so any
// block generator composes with it as a pipeline stage; these aliases
// keep the historical baselines:: spellings working for the benches and
// tests that sweep the Fig. 12 grid.
using MetaWeighting = pipeline::MetaWeighting;
using MetaPruning = pipeline::MetaPruning;
using pipeline::MetaPruningName;
using pipeline::MetaWeightingName;

/// Token blocking: the canonical schema-agnostic input of meta-blocking.
/// Every distinct token of the key attributes becomes a block; blocks
/// are emitted in canonical content order (registered as
/// "token-blocking"). Purging oversized blocks is not this technique's
/// job — compose with the `purge` pipeline stage.
class TokenBlockingTechnique : public core::BlockingTechnique {
 public:
  explicit TokenBlockingTechnique(std::vector<std::string> attributes);

  std::string name() const override;
  using core::BlockingTechnique::Run;
  void Run(const data::Dataset& dataset,
           core::BlockSink& sink) const override;

 private:
  std::vector<std::string> attributes_;
};

/// Collecting convenience wrapper: token blocking with the standard
/// block-purging step — a `token-blocking | purge:max_size=` pipeline.
core::BlockCollection TokenBlocking(const data::Dataset& dataset,
                                    const std::vector<std::string>& attributes,
                                    size_t max_block_size);

/// Meta-blocking baseline: a thin `token-blocking | purge | meta`
/// pipeline packaged as one technique. Builds the blocking graph of the
/// purged token blocks, weights its edges, prunes, and emits the retained
/// comparisons as 2-record blocks.
class MetaBlocking : public core::BlockingTechnique {
 public:
  MetaBlocking(std::vector<std::string> attributes, MetaWeighting weighting,
               MetaPruning pruning, size_t max_block_size = 500);

  std::string name() const override;
  using core::BlockingTechnique::Run;
  void Run(const data::Dataset& dataset,
           core::BlockSink& sink) const override;

  /// Runs the graph phase on a pre-built block collection (exposed so the
  /// Fig. 12 bench can report the initial blocks' metrics too). Forwards
  /// to pipeline::MetaPrune.
  core::BlockCollection Prune(const data::Dataset& dataset,
                              const core::BlockCollection& input) const;

 private:
  std::vector<std::string> attributes_;
  MetaWeighting weighting_;
  MetaPruning pruning_;
  size_t max_block_size_;
};

}  // namespace sablock::baselines

#endif  // SABLOCK_BASELINES_META_BLOCKING_H_
