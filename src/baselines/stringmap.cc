#include "baselines/stringmap.h"

#include <algorithm>
#include <cmath>
#include <functional>
#include <unordered_map>
#include <utility>

#include "common/check.h"
#include "common/hashing.h"
#include "common/random.h"
#include "common/string_util.h"
#include "text/similarity.h"

namespace sablock::baselines {

namespace {

double Dist(const std::string& a, const std::string& b) {
  return static_cast<double>(text::EditDistance(a, b));
}

double SquaredEuclidean(const std::vector<double>& a,
                        const std::vector<double>& b) {
  double sum = 0.0;
  for (size_t i = 0; i < a.size(); ++i) {
    double d = a[i] - b[i];
    sum += d * d;
  }
  return sum;
}

// Grid over the first two embedding dimensions. Cell ids are derived from
// the data's bounding box with `grid_size` cells per axis.
class Grid2D {
 public:
  Grid2D(const std::vector<std::vector<double>>& points, int grid_size)
      : grid_size_(grid_size) {
    SABLOCK_CHECK(grid_size_ >= 1);
    min_[0] = min_[1] = 1e300;
    max_[0] = max_[1] = -1e300;
    for (const auto& p : points) {
      for (int d = 0; d < 2; ++d) {
        min_[d] = std::min(min_[d], p[d]);
        max_[d] = std::max(max_[d], p[d]);
      }
    }
    for (int d = 0; d < 2; ++d) {
      span_[d] = std::max(max_[d] - min_[d], 1e-9);
    }
    for (uint32_t id = 0; id < points.size(); ++id) {
      cells_[CellKey(Coord(points[id], 0), Coord(points[id], 1))].push_back(
          id);
    }
  }

  int Coord(const std::vector<double>& p, int d) const {
    double rel = (p[d] - min_[d]) / span_[d];
    int c = static_cast<int>(rel * grid_size_);
    return std::clamp(c, 0, grid_size_ - 1);
  }

  uint64_t CellKey(int cx, int cy) const {
    return (static_cast<uint64_t>(static_cast<uint32_t>(cx)) << 32) |
           static_cast<uint32_t>(cy);
  }

  /// Records in the (2r+1)x(2r+1) cell neighbourhood around (cx, cy).
  std::vector<uint32_t> Neighbourhood(int cx, int cy, int radius) const {
    std::vector<uint32_t> out;
    for (int dx = -radius; dx <= radius; ++dx) {
      for (int dy = -radius; dy <= radius; ++dy) {
        int x = cx + dx;
        int y = cy + dy;
        if (x < 0 || y < 0 || x >= grid_size_ || y >= grid_size_) continue;
        auto it = cells_.find(CellKey(x, y));
        if (it != cells_.end()) {
          out.insert(out.end(), it->second.begin(), it->second.end());
        }
      }
    }
    return out;
  }

  double CellEdge(int d) const { return span_[d] / grid_size_; }

 private:
  int grid_size_;
  double min_[2], max_[2], span_[2];
  std::unordered_map<uint64_t, std::vector<uint32_t>> cells_;
};

}  // namespace

StringMapEmbedding::StringMapEmbedding(int dimensions, uint64_t seed)
    : dimensions_(dimensions), seed_(seed) {
  SABLOCK_CHECK(dimensions_ >= 2);
}

std::vector<std::vector<double>> StringMapEmbedding::Embed(
    const std::vector<std::string>& strings) {
  const size_t n = strings.size();
  std::vector<std::vector<double>> points(
      n, std::vector<double>(static_cast<size_t>(dimensions_), 0.0));
  if (n == 0) return points;
  sablock::Rng rng(seed_);

  for (int axis = 0; axis < dimensions_; ++axis) {
    // Farthest-pair heuristic: start random, walk to the farthest string a
    // couple of times.
    size_t p1 = rng.UniformIndex(n);
    size_t p2 = p1;
    for (int iter = 0; iter < 2; ++iter) {
      double best = -1.0;
      for (size_t i = 0; i < n; ++i) {
        double d = Dist(strings[p1], strings[i]);
        if (d > best) {
          best = d;
          p2 = i;
        }
      }
      std::swap(p1, p2);
    }
    double d12 = Dist(strings[p1], strings[p2]);
    if (d12 <= 0.0) {
      // All remaining strings identical on this axis; coordinates stay 0.
      continue;
    }
    double d12_sq = d12 * d12;
    for (size_t i = 0; i < n; ++i) {
      double d1 = Dist(strings[i], strings[p1]);
      double d2 = Dist(strings[i], strings[p2]);
      points[i][static_cast<size_t>(axis)] =
          (d1 * d1 + d12_sq - d2 * d2) / (2.0 * d12);
    }
  }
  return points;
}

StringMapThreshold::StringMapThreshold(BlockingKeyDef key, double threshold,
                                       int grid_size, int dimensions,
                                       uint64_t seed)
    : key_(std::move(key)),
      threshold_(threshold),
      grid_size_(grid_size),
      dimensions_(dimensions),
      seed_(seed) {
  SABLOCK_CHECK(threshold_ > 0.0 && threshold_ <= 1.0);
}

std::string StringMapThreshold::name() const {
  return "StMT(t=" + sablock::FormatDouble(threshold_, 2) +
         ",g=" + std::to_string(grid_size_) +
         ",d=" + std::to_string(dimensions_) + ")";
}

void StringMapThreshold::Run(const data::Dataset& dataset,
                             core::BlockSink& sink) const {
  KeyBuilder keys(dataset, key_);
  std::vector<std::string> bkvs(dataset.size());
  double avg_len = 0.0;
  for (data::RecordId id = 0; id < dataset.size(); ++id) {
    bkvs[id] = keys.Key(id);
    avg_len += static_cast<double>(bkvs[id].size());
  }
  if (!bkvs.empty()) avg_len /= static_cast<double>(bkvs.size());

  StringMapEmbedding embedding(dimensions_, seed_);
  std::vector<std::vector<double>> points = embedding.Embed(bkvs);

  // A similarity threshold t corresponds to an edit-distance radius of
  // (1 - t) · avg_len in the embedded space.
  double radius = std::max((1.0 - threshold_) * avg_len, 0.5);
  double radius_sq = radius * radius;

  Grid2D grid(points, grid_size_);
  // How many cells the radius spans on the coarser of the two grid axes.
  double edge = std::min(grid.CellEdge(0), grid.CellEdge(1));
  int cell_radius =
      std::clamp(static_cast<int>(std::ceil(radius / edge)), 1, 8);

  for (uint32_t id = 0; id < points.size(); ++id) {
    if (sink.Done()) return;
    int cx = grid.Coord(points[id], 0);
    int cy = grid.Coord(points[id], 1);
    core::Block block = {id};
    for (uint32_t other : grid.Neighbourhood(cx, cy, cell_radius)) {
      if (other <= id) continue;  // emit each pair once (from its lower id)
      if (SquaredEuclidean(points[id], points[other]) <= radius_sq) {
        block.push_back(other);
      }
    }
    if (block.size() >= 2) sink.Consume(std::move(block));
  }
}

StringMapNearestNeighbour::StringMapNearestNeighbour(BlockingKeyDef key,
                                                     int num_neighbours,
                                                     int grid_size,
                                                     int dimensions,
                                                     uint64_t seed)
    : key_(std::move(key)),
      num_neighbours_(num_neighbours),
      grid_size_(grid_size),
      dimensions_(dimensions),
      seed_(seed) {
  SABLOCK_CHECK(num_neighbours_ >= 1);
}

std::string StringMapNearestNeighbour::name() const {
  return "StMNN(nn=" + std::to_string(num_neighbours_) +
         ",g=" + std::to_string(grid_size_) +
         ",d=" + std::to_string(dimensions_) + ")";
}

void StringMapNearestNeighbour::Run(const data::Dataset& dataset,
                                    core::BlockSink& sink) const {
  KeyBuilder keys(dataset, key_);
  std::vector<std::string> bkvs(dataset.size());
  for (data::RecordId id = 0; id < dataset.size(); ++id) {
    bkvs[id] = keys.Key(id);
  }
  StringMapEmbedding embedding(dimensions_, seed_);
  std::vector<std::vector<double>> points = embedding.Embed(bkvs);
  Grid2D grid(points, grid_size_);

  const size_t nn = static_cast<size_t>(num_neighbours_);
  for (uint32_t id = 0; id < points.size(); ++id) {
    if (sink.Done()) return;
    int cx = grid.Coord(points[id], 0);
    int cy = grid.Coord(points[id], 1);
    // Expand the search ring until enough candidates are gathered (or the
    // ring is maximal).
    std::vector<uint32_t> cands;
    for (int radius = 1; radius <= 8; ++radius) {
      cands = grid.Neighbourhood(cx, cy, radius);
      if (cands.size() > nn) break;
    }
    std::vector<std::pair<double, uint32_t>> scored;
    scored.reserve(cands.size());
    for (uint32_t other : cands) {
      if (other == id) continue;
      scored.emplace_back(SquaredEuclidean(points[id], points[other]), other);
    }
    size_t keep = std::min(scored.size(), nn);
    if (keep == 0) continue;
    std::partial_sort(scored.begin(),
                      scored.begin() + static_cast<ptrdiff_t>(keep),
                      scored.end());
    core::Block block = {id};
    for (size_t i = 0; i < keep; ++i) block.push_back(scored[i].second);
    sink.Consume(std::move(block));
  }
}

}  // namespace sablock::baselines
