#ifndef SABLOCK_BASELINES_STRINGMAP_H_
#define SABLOCK_BASELINES_STRINGMAP_H_

#include <cstdint>
#include <string>
#include <vector>

#include "baselines/blocking_key.h"
#include "core/blocking.h"

namespace sablock::baselines {

/// FastMap-style StringMap embedding (Jin, Li & Mehrotra): maps strings
/// into a d-dimensional Euclidean space so that edit distance is roughly
/// preserved. Each axis is defined by a pivot pair chosen with the
/// farthest-pair heuristic; the coordinate of string s on axis (p1, p2) is
///   x = (d(s,p1)² + d(p1,p2)² - d(s,p2)²) / (2·d(p1,p2)),
/// with residual distances used for subsequent axes (the standard FastMap
/// recurrence, here approximated by reusing the raw edit distance, as the
/// original StringMap implementation does for strings).
class StringMapEmbedding {
 public:
  StringMapEmbedding(int dimensions, uint64_t seed);

  /// Chooses pivots from `strings` and embeds them all. Returns one
  /// d-dimensional point per input string.
  std::vector<std::vector<double>> Embed(
      const std::vector<std::string>& strings);

  int dimensions() const { return dimensions_; }

 private:
  int dimensions_;
  uint64_t seed_;
};

/// Threshold-based StringMap blocking ("StMT"): embeds all BKVs, overlays a
/// grid (cell edge derived from `threshold`, `grid_size` cells per axis
/// over the data range) on the first two embedding dimensions, and emits a
/// block per pair of records whose full embedded distance is within the
/// threshold radius (verified inside each cell neighbourhood). The
/// dimensionality/grid parameters mirror Christen's survey grid
/// (dim {15,20}, grid {100,1000}).
class StringMapThreshold : public core::BlockingTechnique {
 public:
  StringMapThreshold(BlockingKeyDef key, double threshold, int grid_size,
                     int dimensions, uint64_t seed = 73);

  std::string name() const override;
  using core::BlockingTechnique::Run;
  void Run(const data::Dataset& dataset,
           core::BlockSink& sink) const override;

 private:
  BlockingKeyDef key_;
  double threshold_;
  int grid_size_;
  int dimensions_;
  uint64_t seed_;
};

/// Nearest-neighbour StringMap blocking ("StMNN", Adly's double-embedding
/// variant simplified to one embedding): for each record, a block is formed
/// with its `num_neighbours` nearest records in the embedded space,
/// searched over an expanding grid neighbourhood.
class StringMapNearestNeighbour : public core::BlockingTechnique {
 public:
  StringMapNearestNeighbour(BlockingKeyDef key, int num_neighbours,
                            int grid_size, int dimensions,
                            uint64_t seed = 73);

  std::string name() const override;
  using core::BlockingTechnique::Run;
  void Run(const data::Dataset& dataset,
           core::BlockSink& sink) const override;

 private:
  BlockingKeyDef key_;
  int num_neighbours_;
  int grid_size_;
  int dimensions_;
  uint64_t seed_;
};

}  // namespace sablock::baselines

#endif  // SABLOCK_BASELINES_STRINGMAP_H_
