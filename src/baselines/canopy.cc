#include "baselines/canopy.h"

#include <algorithm>
#include <functional>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/check.h"
#include "common/random.h"
#include "common/string_util.h"
#include "text/tfidf.h"

namespace sablock::baselines {

namespace {

// Shared candidate-generation machinery: token inverted index + per-record
// sparse vectors (uniform weights for Jaccard, TF-IDF weights for cosine).
class CanopyIndex {
 public:
  CanopyIndex(const data::Dataset& dataset, const BlockingKeyDef& key,
              CanopySimilarity similarity) {
    KeyBuilder keys(dataset, key);
    // Tokenize each BKV exactly once; the word lists feed the inverted
    // index, the Jaccard token sets and the TF-IDF vectors.
    std::vector<std::vector<std::string>> words(dataset.size());
    for (data::RecordId id = 0; id < dataset.size(); ++id) {
      words[id] = sablock::SplitWords(keys.Key(id));
    }
    if (similarity == CanopySimilarity::kTfIdfCosine) {
      vectorizer_.BuildFromWords(words);
    }
    vectors_.resize(dataset.size());
    token_sets_.resize(dataset.size());
    for (data::RecordId id = 0; id < dataset.size(); ++id) {
      std::vector<std::string> tokens = words[id];
      std::sort(tokens.begin(), tokens.end());
      tokens.erase(std::unique(tokens.begin(), tokens.end()), tokens.end());
      for (const std::string& t : tokens) {
        auto [it, inserted] =
            token_ids_.emplace(t, static_cast<uint32_t>(token_ids_.size()));
        token_sets_[id].push_back(it->second);
        if (inserted) postings_.emplace_back();
        postings_[it->second].push_back(id);
      }
      std::sort(token_sets_[id].begin(), token_sets_[id].end());
      if (similarity == CanopySimilarity::kTfIdfCosine) {
        vectors_[id] = vectorizer_.VectorizeWords(words[id]);
      }
    }
    similarity_ = similarity;
  }

  // Records sharing at least one token with `id` (excluding `id`).
  std::vector<data::RecordId> Candidates(data::RecordId id) const {
    std::vector<data::RecordId> cands;
    for (uint32_t token : token_sets_[id]) {
      const auto& posting = postings_[token];
      cands.insert(cands.end(), posting.begin(), posting.end());
    }
    std::sort(cands.begin(), cands.end());
    cands.erase(std::unique(cands.begin(), cands.end()), cands.end());
    cands.erase(std::remove(cands.begin(), cands.end(), id), cands.end());
    return cands;
  }

  double Similarity(data::RecordId a, data::RecordId b) const {
    if (similarity_ == CanopySimilarity::kTfIdfCosine) {
      return text::CosineSimilarity(vectors_[a], vectors_[b]);
    }
    const auto& ta = token_sets_[a];
    const auto& tb = token_sets_[b];
    if (ta.empty() && tb.empty()) return 1.0;
    if (ta.empty() || tb.empty()) return 0.0;
    size_t i = 0;
    size_t j = 0;
    size_t common = 0;
    while (i < ta.size() && j < tb.size()) {
      if (ta[i] == tb[j]) {
        ++common;
        ++i;
        ++j;
      } else if (ta[i] < tb[j]) {
        ++i;
      } else {
        ++j;
      }
    }
    return static_cast<double>(common) /
           static_cast<double>(ta.size() + tb.size() - common);
  }

 private:
  CanopySimilarity similarity_;
  std::unordered_map<std::string, uint32_t> token_ids_;
  std::vector<std::vector<data::RecordId>> postings_;
  std::vector<std::vector<uint32_t>> token_sets_;
  text::TfIdfVectorizer vectorizer_;
  std::vector<text::SparseVector> vectors_;
};

const char* SimilarityLabel(CanopySimilarity s) {
  return s == CanopySimilarity::kJaccard ? "jac" : "tfidf";
}

}  // namespace

CanopyThreshold::CanopyThreshold(BlockingKeyDef key,
                                 CanopySimilarity similarity, double loose,
                                 double tight, uint64_t seed)
    : key_(std::move(key)),
      similarity_(similarity),
      loose_(loose),
      tight_(tight),
      seed_(seed) {
  SABLOCK_CHECK(tight_ >= loose_);
}

std::string CanopyThreshold::name() const {
  return std::string("CaTh(") + SimilarityLabel(similarity_) + "," +
         sablock::FormatDouble(tight_, 2) + "/" +
         sablock::FormatDouble(loose_, 2) + ")";
}

void CanopyThreshold::Run(const data::Dataset& dataset,
                          core::BlockSink& sink) const {
  CanopyIndex index(dataset, key_, similarity_);
  std::vector<bool> removed(dataset.size(), false);
  std::vector<data::RecordId> pool(dataset.size());
  for (data::RecordId id = 0; id < dataset.size(); ++id) pool[id] = id;
  sablock::Rng rng(seed_);
  rng.Shuffle(&pool);

  for (data::RecordId seed_record : pool) {
    if (sink.Done()) return;
    if (removed[seed_record]) continue;
    removed[seed_record] = true;
    core::Block canopy = {seed_record};
    for (data::RecordId cand : index.Candidates(seed_record)) {
      if (removed[cand]) continue;
      double sim = index.Similarity(seed_record, cand);
      if (sim >= loose_) {
        canopy.push_back(cand);
        if (sim >= tight_) removed[cand] = true;
      }
    }
    if (canopy.size() >= 2) sink.Consume(std::move(canopy));
  }
}

CanopyNearestNeighbour::CanopyNearestNeighbour(BlockingKeyDef key,
                                               CanopySimilarity similarity,
                                               int n1, int n2, uint64_t seed)
    : key_(std::move(key)),
      similarity_(similarity),
      n1_(n1),
      n2_(n2),
      seed_(seed) {
  SABLOCK_CHECK(n1_ >= 1 && n2_ >= 1 && n2_ <= n1_);
}

std::string CanopyNearestNeighbour::name() const {
  return std::string("CaNN(") + SimilarityLabel(similarity_) + "," +
         std::to_string(n1_) + "/" + std::to_string(n2_) + ")";
}

void CanopyNearestNeighbour::Run(const data::Dataset& dataset,
                                 core::BlockSink& sink) const {
  CanopyIndex index(dataset, key_, similarity_);
  std::vector<bool> removed(dataset.size(), false);
  std::vector<data::RecordId> pool(dataset.size());
  for (data::RecordId id = 0; id < dataset.size(); ++id) pool[id] = id;
  sablock::Rng rng(seed_);
  rng.Shuffle(&pool);

  for (data::RecordId seed_record : pool) {
    if (sink.Done()) return;
    if (removed[seed_record]) continue;
    removed[seed_record] = true;
    std::vector<std::pair<double, data::RecordId>> scored;
    for (data::RecordId cand : index.Candidates(seed_record)) {
      if (removed[cand]) continue;
      scored.emplace_back(index.Similarity(seed_record, cand), cand);
    }
    size_t keep = std::min<size_t>(scored.size(), static_cast<size_t>(n1_));
    std::partial_sort(scored.begin(),
                      scored.begin() + static_cast<ptrdiff_t>(keep),
                      scored.end(), std::greater<>());
    core::Block canopy = {seed_record};
    for (size_t i = 0; i < keep; ++i) {
      canopy.push_back(scored[i].second);
      if (i < static_cast<size_t>(n2_)) removed[scored[i].second] = true;
    }
    if (canopy.size() >= 2) sink.Consume(std::move(canopy));
  }
}

}  // namespace sablock::baselines
