#include "baselines/blocking_key.h"

#include <algorithm>

#include "common/string_util.h"
#include "text/phonetic.h"

namespace sablock::baselines {

void AppendKeyComponent(const KeyComponent& comp, std::string_view value,
                        std::string* key) {
  if (value.empty()) return;
  switch (comp.encoding) {
    case KeyComponent::Encoding::kExact:
      *key += value;
      break;
    case KeyComponent::Encoding::kPrefix:
      *key += value.substr(
          0, std::min<size_t>(value.size(),
                              static_cast<size_t>(comp.prefix_len)));
      break;
    case KeyComponent::Encoding::kSoundex: {
      std::vector<std::string> words = sablock::SplitWords(value);
      if (!words.empty()) *key += text::Soundex(words.front());
      break;
    }
    case KeyComponent::Encoding::kNysiis: {
      std::vector<std::string> words = sablock::SplitWords(value);
      if (!words.empty()) *key += text::Nysiis(words.front());
      break;
    }
    case KeyComponent::Encoding::kFirstWord: {
      std::vector<std::string> words = sablock::SplitWords(value);
      if (!words.empty()) *key += words.front();
      break;
    }
  }
}

KeyBuilder::KeyBuilder(const data::Dataset& dataset,
                       const BlockingKeyDef& def)
    : def_(def), features_(dataset.features()) {
  columns_.reserve(def.components.size());
  for (const KeyComponent& comp : def.components) {
    // The single-attribute text column is exactly
    // NormalizeForMatching(Value(id, attribute)), cached once per dataset.
    columns_.push_back(features_.TextsFor({comp.attribute}));
  }
}

std::string KeyBuilder::Key(data::RecordId id) const {
  std::string key;
  for (size_t c = 0; c < def_.components.size(); ++c) {
    AppendKeyComponent(def_.components[c], columns_[c].Text(id), &key);
  }
  return key;
}

std::string MakeKey(const data::Dataset& dataset, data::RecordId id,
                    const BlockingKeyDef& def) {
  // One-shot path: compute this record's key directly — building (and
  // permanently caching) full-dataset text columns for a single key
  // would be O(records); that path belongs to KeyBuilder.
  std::string key;
  for (const KeyComponent& comp : def.components) {
    std::string value =
        sablock::NormalizeForMatching(dataset.Value(id, comp.attribute));
    AppendKeyComponent(comp, value, &key);
  }
  return key;
}

std::vector<std::string> MakeAllKeys(const data::Dataset& dataset,
                                     const BlockingKeyDef& def) {
  KeyBuilder builder(dataset, def);
  std::vector<std::string> keys;
  keys.reserve(dataset.size());
  for (data::RecordId id = 0; id < dataset.size(); ++id) {
    keys.push_back(builder.Key(id));
  }
  return keys;
}

BlockingKeyDef ExactKey(const std::vector<std::string>& attributes) {
  BlockingKeyDef def;
  for (const std::string& attr : attributes) {
    def.components.push_back({attr, KeyComponent::Encoding::kExact, 0});
  }
  return def;
}

BlockingKeyDef PhoneticPrefixKey(const std::string& name_attribute,
                                 const std::string& other_attribute,
                                 int prefix_len) {
  BlockingKeyDef def;
  def.components.push_back(
      {name_attribute, KeyComponent::Encoding::kSoundex, 0});
  def.components.push_back(
      {other_attribute, KeyComponent::Encoding::kPrefix, prefix_len});
  return def;
}

}  // namespace sablock::baselines
