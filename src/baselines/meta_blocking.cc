#include "baselines/meta_blocking.h"

#include <algorithm>
#include <utility>

#include "common/flat_map.h"
#include "features/feature_store.h"
#include "pipeline/pipeline.h"
#include "pipeline/stages.h"

namespace sablock::baselines {

TokenBlockingTechnique::TokenBlockingTechnique(
    std::vector<std::string> attributes)
    : attributes_(std::move(attributes)) {}

std::string TokenBlockingTechnique::name() const { return "TokenBlocking"; }

void TokenBlockingTechnique::Run(const data::Dataset& dataset,
                                 core::BlockSink& sink) const {
  // Postings over the interned token ids of the shared token column — no
  // string hashing or tokenization here, just id-indexed appends.
  features::FeatureView::TokenHandle tokens =
      dataset.features().TokensFor(attributes_);
  // Postings keyed by token id in a hash map: its footprint follows the
  // tokens this run actually touches, not token_limit — which covers the
  // whole column even when this run is one small shard slice of it.
  FlatMap<features::TokenId, core::Block> postings;
  for (data::RecordId id = 0; id < dataset.size(); ++id) {
    for (features::TokenId token : tokens.Tokens(id)) {
      postings[token].push_back(id);
    }
  }
  // Emit in canonical content order: downstream pruning should see blocks
  // ordered by what they contain, not by how the vocabulary happened to
  // be discovered. Singleton blocks carry no comparisons and are skipped.
  std::vector<core::Block> kept;
  postings.ForEach([&](features::TokenId, core::Block& block) {
    if (block.size() >= 2) kept.push_back(std::move(block));
  });
  std::sort(kept.begin(), kept.end());
  for (core::Block& block : kept) {
    if (sink.Done()) break;
    sink.Consume(std::move(block));
  }
}

core::BlockCollection TokenBlocking(
    const data::Dataset& dataset, const std::vector<std::string>& attributes,
    size_t max_block_size) {
  core::BlockCollection out;
  pipeline::PurgeStage purge(max_block_size);
  purge.Attach(dataset, out);
  TokenBlockingTechnique(attributes).Run(dataset, purge);
  purge.Flush();
  return out;
}

MetaBlocking::MetaBlocking(std::vector<std::string> attributes,
                           MetaWeighting weighting, MetaPruning pruning,
                           size_t max_block_size)
    : attributes_(std::move(attributes)),
      weighting_(weighting),
      pruning_(pruning),
      max_block_size_(max_block_size) {}

std::string MetaBlocking::name() const {
  return std::string("Meta(") + MetaPruningName(pruning_) + "+" +
         MetaWeightingName(weighting_) + ")";
}

void MetaBlocking::Run(const data::Dataset& dataset,
                       core::BlockSink& sink) const {
  // The baseline is literally the pipeline `token-blocking | purge |
  // meta`: purge streams, meta buffers and runs its graph phase on the
  // flush (which Pipeline::Run stops at the chain boundary — a technique
  // never flushes its caller's sink).
  pipeline::Pipeline stages;
  stages.Add(std::make_unique<pipeline::PurgeStage>(max_block_size_));
  stages.Add(std::make_unique<pipeline::MetaStage>(weighting_, pruning_));
  stages.Run(TokenBlockingTechnique(attributes_), dataset, sink);
}

core::BlockCollection MetaBlocking::Prune(
    const data::Dataset& dataset, const core::BlockCollection& input) const {
  return pipeline::MetaPrune(dataset.size(), input, weighting_, pruning_);
}

}  // namespace sablock::baselines
