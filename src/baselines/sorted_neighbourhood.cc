#include "baselines/sorted_neighbourhood.h"

#include <algorithm>
#include <map>
#include <numeric>

#include "common/check.h"
#include "core/block_utils.h"

namespace sablock::baselines {

void SortedNeighbourhoodArray::Run(const data::Dataset& dataset,
                                   core::BlockSink& sink) const {
  SABLOCK_CHECK(window_size_ >= 2);
  std::vector<std::string> keys = MakeAllKeys(dataset, key_);
  std::vector<data::RecordId> order(dataset.size());
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(),
                   [&keys](data::RecordId a, data::RecordId b) {
                     return keys[a] < keys[b];
                   });

  const size_t n = order.size();
  const size_t w = static_cast<size_t>(window_size_);
  if (n < 2) return;
  if (w >= n) {
    sink.Consume(std::move(order));
    return;
  }
  for (size_t start = 0; start + w <= n; ++start) {
    if (sink.Done()) return;
    sink.Consume(
        core::Block(order.begin() + static_cast<ptrdiff_t>(start),
                    order.begin() + static_cast<ptrdiff_t>(start + w)));
  }
}

void SortedNeighbourhoodInvertedIndex::Run(const data::Dataset& dataset,
                                           core::BlockSink& sink) const {
  SABLOCK_CHECK(window_size_ >= 1);
  std::vector<std::string> keys = MakeAllKeys(dataset, key_);
  std::map<std::string, core::Block> index;  // sorted unique keys
  for (data::RecordId id = 0; id < dataset.size(); ++id) {
    index[keys[id]].push_back(id);
  }
  std::vector<const core::Block*> postings;
  postings.reserve(index.size());
  for (const auto& [key, block] : index) {
    postings.push_back(&block);
  }

  const size_t w = static_cast<size_t>(window_size_);
  for (size_t start = 0; start < postings.size(); ++start) {
    if (sink.Done()) return;
    size_t end = std::min(start + w, postings.size());
    core::Block merged;
    for (size_t i = start; i < end; ++i) {
      merged.insert(merged.end(), postings[i]->begin(), postings[i]->end());
    }
    if (merged.size() >= 2) sink.Consume(std::move(merged));
    if (end == postings.size()) break;
  }
}

MultiPassSortedNeighbourhood::MultiPassSortedNeighbourhood(
    std::vector<BlockingKeyDef> keys, int window_size)
    : keys_(std::move(keys)), window_size_(window_size) {
  SABLOCK_CHECK(!keys_.empty());
  SABLOCK_CHECK(window_size_ >= 2);
}

std::string MultiPassSortedNeighbourhood::name() const {
  return "SorMP(passes=" + std::to_string(keys_.size()) +
         ",w=" + std::to_string(window_size_) + ")";
}

void MultiPassSortedNeighbourhood::Run(const data::Dataset& dataset,
                                       core::BlockSink& sink) const {
  // The transitive closure needs every window pair before any block can be
  // emitted, so the passes materialize into a collection first.
  core::BlockCollection all_windows;
  for (const BlockingKeyDef& key : keys_) {
    SortedNeighbourhoodArray pass(key, window_size_);
    pass.Run(dataset, all_windows);
  }
  core::BlockCollection components =
      core::ConnectedComponents(all_windows, dataset.size());
  components.Drain(sink);
}

}  // namespace sablock::baselines
