#ifndef SABLOCK_BASELINES_ADAPTIVE_SORTED_NEIGHBOURHOOD_H_
#define SABLOCK_BASELINES_ADAPTIVE_SORTED_NEIGHBOURHOOD_H_

#include "baselines/blocking_key.h"
#include "core/blocking.h"
#include "text/similarity.h"

namespace sablock::baselines {

/// Adaptive sorted neighbourhood ("ASor", Yan et al.): instead of a fixed
/// window, the sorted key sequence is split into variable-size blocks at
/// positions where adjacent keys' string similarity drops below a
/// threshold (the "incrementally-adaptive" variant). Records whose keys
/// fall inside one run form a block.
class AdaptiveSortedNeighbourhood : public core::BlockingTechnique {
 public:
  /// `similarity_name` is one of the SimilarityByName comparators
  /// ("jaro_winkler", "bigram", "edit", "lcs"); `threshold` the boundary
  /// similarity; `max_block_size` caps run length (0 = unlimited).
  AdaptiveSortedNeighbourhood(BlockingKeyDef key, std::string similarity_name,
                              double threshold, size_t max_block_size = 0);

  std::string name() const override;
  using core::BlockingTechnique::Run;
  void Run(const data::Dataset& dataset,
           core::BlockSink& sink) const override;

 private:
  BlockingKeyDef key_;
  std::string similarity_name_;
  text::StringSimilarityFn similarity_;
  double threshold_;
  size_t max_block_size_;
};

}  // namespace sablock::baselines

#endif  // SABLOCK_BASELINES_ADAPTIVE_SORTED_NEIGHBOURHOOD_H_
