#include "baselines/suffix_array.h"

#include <algorithm>
#include <map>

#include "common/check.h"
#include "common/string_util.h"
#include "text/similarity.h"

namespace sablock::baselines {

namespace {

// Shared: build suffix (or substring) -> records index, drop oversized
// postings, emit blocks.
using SuffixIndex = std::map<std::string, core::Block>;

void AddSuffixes(const std::string& bkv, data::RecordId id, int min_len,
                 SuffixIndex* index) {
  int len = static_cast<int>(bkv.size());
  if (len < min_len) {
    if (len > 0) (*index)[bkv].push_back(id);
    return;
  }
  for (int start = 0; start + min_len <= len; ++start) {
    core::Block& posting = (*index)[bkv.substr(static_cast<size_t>(start))];
    if (posting.empty() || posting.back() != id) posting.push_back(id);
  }
}

void AddAllSubstrings(const std::string& bkv, data::RecordId id, int min_len,
                      SuffixIndex* index) {
  int len = static_cast<int>(bkv.size());
  if (len < min_len) {
    if (len > 0) (*index)[bkv].push_back(id);
    return;
  }
  for (int start = 0; start < len; ++start) {
    for (int sub_len = min_len; start + sub_len <= len; ++sub_len) {
      core::Block& posting =
          (*index)[bkv.substr(static_cast<size_t>(start),
                              static_cast<size_t>(sub_len))];
      if (posting.empty() || posting.back() != id) posting.push_back(id);
    }
  }
}

void EmitBlocks(SuffixIndex&& index, size_t max_block_size,
                core::BlockSink& sink) {
  for (auto& [suffix, posting] : index) {
    if (sink.Done()) return;
    if (posting.size() < 2 || posting.size() > max_block_size) continue;
    sink.Consume(std::move(posting));
  }
}

}  // namespace

SuffixArrayBlocking::SuffixArrayBlocking(BlockingKeyDef key,
                                         int min_suffix_len,
                                         size_t max_block_size)
    : key_(std::move(key)),
      min_suffix_len_(min_suffix_len),
      max_block_size_(max_block_size) {
  SABLOCK_CHECK(min_suffix_len_ >= 1 && max_block_size_ >= 2);
}

std::string SuffixArrayBlocking::name() const {
  return "SuA(len=" + std::to_string(min_suffix_len_) +
         ",max=" + std::to_string(max_block_size_) + ")";
}

void SuffixArrayBlocking::Run(const data::Dataset& dataset,
                              core::BlockSink& sink) const {
  KeyBuilder keys(dataset, key_);
  SuffixIndex index;
  for (data::RecordId id = 0; id < dataset.size(); ++id) {
    AddSuffixes(keys.Key(id), id, min_suffix_len_, &index);
  }
  EmitBlocks(std::move(index), max_block_size_, sink);
}

SuffixArrayAllSubstrings::SuffixArrayAllSubstrings(BlockingKeyDef key,
                                                   int min_suffix_len,
                                                   size_t max_block_size)
    : key_(std::move(key)),
      min_suffix_len_(min_suffix_len),
      max_block_size_(max_block_size) {
  SABLOCK_CHECK(min_suffix_len_ >= 1 && max_block_size_ >= 2);
}

std::string SuffixArrayAllSubstrings::name() const {
  return "SuAS(len=" + std::to_string(min_suffix_len_) +
         ",max=" + std::to_string(max_block_size_) + ")";
}

void SuffixArrayAllSubstrings::Run(const data::Dataset& dataset,
                                   core::BlockSink& sink) const {
  KeyBuilder keys(dataset, key_);
  SuffixIndex index;
  for (data::RecordId id = 0; id < dataset.size(); ++id) {
    AddAllSubstrings(keys.Key(id), id, min_suffix_len_, &index);
  }
  EmitBlocks(std::move(index), max_block_size_, sink);
}

RobustSuffixArrayBlocking::RobustSuffixArrayBlocking(
    BlockingKeyDef key, int min_suffix_len, size_t max_block_size,
    std::string similarity_name, double similarity_threshold)
    : key_(std::move(key)),
      min_suffix_len_(min_suffix_len),
      max_block_size_(max_block_size),
      similarity_name_(std::move(similarity_name)),
      similarity_threshold_(similarity_threshold) {
  SABLOCK_CHECK(min_suffix_len_ >= 1 && max_block_size_ >= 2);
}

std::string RobustSuffixArrayBlocking::name() const {
  return "RSuA(len=" + std::to_string(min_suffix_len_) +
         ",max=" + std::to_string(max_block_size_) + "," + similarity_name_ +
         "," + sablock::FormatDouble(similarity_threshold_, 2) + ")";
}

void RobustSuffixArrayBlocking::Run(const data::Dataset& dataset,
                                    core::BlockSink& sink) const {
  KeyBuilder keys(dataset, key_);
  SuffixIndex index;
  for (data::RecordId id = 0; id < dataset.size(); ++id) {
    AddSuffixes(keys.Key(id), id, min_suffix_len_, &index);
  }
  text::StringSimilarityFn sim = text::SimilarityByName(similarity_name_);

  // Merge runs of adjacent similar suffixes in the (sorted) index. The
  // std::map iteration order is exactly the sorted suffix order.
  core::Block merged;
  const std::string* prev_suffix = nullptr;
  auto flush = [&]() {
    if (!merged.empty()) {
      std::sort(merged.begin(), merged.end());
      merged.erase(std::unique(merged.begin(), merged.end()), merged.end());
      if (merged.size() >= 2 && merged.size() <= max_block_size_) {
        sink.Consume(merged);
      }
      merged.clear();
    }
  };
  for (const auto& [suffix, posting] : index) {
    if (sink.Done()) return;
    bool mergeable =
        prev_suffix != nullptr &&
        sim(*prev_suffix, suffix) >= similarity_threshold_;
    if (!mergeable) flush();
    merged.insert(merged.end(), posting.begin(), posting.end());
    prev_suffix = &suffix;
  }
  flush();
}

}  // namespace sablock::baselines
