#ifndef SABLOCK_BASELINES_STANDARD_BLOCKING_H_
#define SABLOCK_BASELINES_STANDARD_BLOCKING_H_

#include "baselines/blocking_key.h"
#include "core/blocking.h"

namespace sablock::baselines {

/// Traditional blocking ("TBlo", Fellegi & Sunter): records sharing the
/// exact blocking-key value form a block. The classic limitation the paper
/// motivates against — "Qing Wang" vs "Wang Qing" never share a block.
class StandardBlocking : public core::BlockingTechnique {
 public:
  explicit StandardBlocking(BlockingKeyDef key) : key_(std::move(key)) {}

  std::string name() const override { return "TBlo"; }
  using core::BlockingTechnique::Run;
  void Run(const data::Dataset& dataset,
           core::BlockSink& sink) const override;

 private:
  BlockingKeyDef key_;
};

}  // namespace sablock::baselines

#endif  // SABLOCK_BASELINES_STANDARD_BLOCKING_H_
