#ifndef SABLOCK_BASELINES_SUFFIX_ARRAY_H_
#define SABLOCK_BASELINES_SUFFIX_ARRAY_H_

#include <string>

#include "baselines/blocking_key.h"
#include "core/blocking.h"

namespace sablock::baselines {

/// Suffix-array-based blocking ("SuA", Aizawa & Oyama): every suffix of a
/// record's BKV with length >= `min_suffix_len` becomes an index key; keys
/// whose posting lists exceed `max_block_size` are discarded (they are too
/// frequent to be discriminating). Remaining posting lists are the blocks.
class SuffixArrayBlocking : public core::BlockingTechnique {
 public:
  SuffixArrayBlocking(BlockingKeyDef key, int min_suffix_len,
                      size_t max_block_size);

  std::string name() const override;
  using core::BlockingTechnique::Run;
  void Run(const data::Dataset& dataset,
           core::BlockSink& sink) const override;

 private:
  BlockingKeyDef key_;
  int min_suffix_len_;
  size_t max_block_size_;
};

/// Suffix-array blocking over all substrings ("SuAS"): like SuA but every
/// substring of length >= `min_suffix_len` is indexed, which tolerates
/// errors at the end of the BKV as well as the beginning.
class SuffixArrayAllSubstrings : public core::BlockingTechnique {
 public:
  SuffixArrayAllSubstrings(BlockingKeyDef key, int min_suffix_len,
                           size_t max_block_size);

  std::string name() const override;
  using core::BlockingTechnique::Run;
  void Run(const data::Dataset& dataset,
           core::BlockSink& sink) const override;

 private:
  BlockingKeyDef key_;
  int min_suffix_len_;
  size_t max_block_size_;
};

/// Robust suffix-array blocking ("RSuA", de Vries et al.): the sorted list
/// of distinct suffixes is scanned and adjacent suffixes whose string
/// similarity is at least `similarity_threshold` have their posting lists
/// merged, making the index robust against single-character errors.
class RobustSuffixArrayBlocking : public core::BlockingTechnique {
 public:
  RobustSuffixArrayBlocking(BlockingKeyDef key, int min_suffix_len,
                            size_t max_block_size,
                            std::string similarity_name,
                            double similarity_threshold);

  std::string name() const override;
  using core::BlockingTechnique::Run;
  void Run(const data::Dataset& dataset,
           core::BlockSink& sink) const override;

 private:
  BlockingKeyDef key_;
  int min_suffix_len_;
  size_t max_block_size_;
  std::string similarity_name_;
  double similarity_threshold_;
};

}  // namespace sablock::baselines

#endif  // SABLOCK_BASELINES_SUFFIX_ARRAY_H_
