#include "baselines/qgram_indexing.h"

#include <algorithm>
#include <cmath>
#include <unordered_map>
#include <unordered_set>

#include "common/check.h"
#include "common/hashing.h"
#include "common/string_util.h"
#include "text/qgram.h"

namespace sablock::baselines {

QGramIndexing::QGramIndexing(BlockingKeyDef key, int q, double threshold,
                             size_t max_keys_per_record)
    : key_(std::move(key)),
      q_(q),
      threshold_(threshold),
      max_keys_per_record_(max_keys_per_record) {
  SABLOCK_CHECK(q_ >= 1);
  SABLOCK_CHECK(threshold_ > 0.0 && threshold_ <= 1.0);
}

std::string QGramIndexing::name() const {
  return "QGr(q=" + std::to_string(q_) + ",t=" +
         sablock::FormatDouble(threshold_, 1) + ")";
}

namespace {

// Hash of the concatenation of a gram-hash subsequence identified by the
// indices NOT deleted.
uint64_t SubListKey(const std::vector<uint64_t>& grams,
                    const std::vector<bool>& deleted) {
  uint64_t key = 0x9c9a;
  for (size_t i = 0; i < grams.size(); ++i) {
    if (!deleted[i]) key = sablock::HashCombine(key, grams[i]);
  }
  return key;
}

// Generates keys of all sub-lists obtainable by deleting up to max_del
// grams, breadth-first (fewest deletions first), bounded by max_keys.
void GenerateSubListKeys(const std::vector<uint64_t>& grams, size_t max_del,
                         size_t max_keys, std::vector<uint64_t>* keys) {
  std::vector<bool> deleted(grams.size(), false);
  std::unordered_set<uint64_t> seen;
  keys->push_back(SubListKey(grams, deleted));
  seen.insert(keys->back());
  if (max_del == 0) return;

  // Frontier of deletion masks represented by sorted index vectors.
  std::vector<std::vector<size_t>> frontier = {{}};
  for (size_t depth = 1; depth <= max_del && keys->size() < max_keys;
       ++depth) {
    std::vector<std::vector<size_t>> next;
    for (const std::vector<size_t>& mask : frontier) {
      size_t start = mask.empty() ? 0 : mask.back() + 1;
      for (size_t i = start; i < grams.size(); ++i) {
        std::vector<size_t> extended = mask;
        extended.push_back(i);
        std::fill(deleted.begin(), deleted.end(), false);
        for (size_t d : extended) deleted[d] = true;
        uint64_t key = SubListKey(grams, deleted);
        if (seen.insert(key).second) {
          keys->push_back(key);
          if (keys->size() >= max_keys) return;
        }
        next.push_back(std::move(extended));
      }
    }
    frontier = std::move(next);
  }
}

}  // namespace

void QGramIndexing::Run(const data::Dataset& dataset,
                        core::BlockSink& sink) const {
  KeyBuilder keys(dataset, key_);
  std::unordered_map<uint64_t, core::Block> buckets;
  for (data::RecordId id = 0; id < dataset.size(); ++id) {
    std::string bkv = keys.Key(id);
    if (bkv.empty()) continue;
    // Ordered gram list (not a set): QGr keys preserve gram order.
    std::vector<std::string> gram_strings = text::QGrams(bkv, q_);
    std::vector<uint64_t> grams;
    grams.reserve(gram_strings.size());
    for (const std::string& g : gram_strings) {
      grams.push_back(sablock::HashBytes(g));
    }
    size_t min_len = static_cast<size_t>(
        std::ceil(threshold_ * static_cast<double>(grams.size())));
    if (min_len == 0) min_len = 1;
    size_t max_del = grams.size() > min_len ? grams.size() - min_len : 0;

    std::vector<uint64_t> keys;
    GenerateSubListKeys(grams, max_del, max_keys_per_record_, &keys);
    for (uint64_t key : keys) {
      buckets[key].push_back(id);
    }
  }
  for (auto& [key, block] : buckets) {
    if (sink.Done()) return;
    if (block.size() >= 2) sink.Consume(std::move(block));
  }
}

}  // namespace sablock::baselines
