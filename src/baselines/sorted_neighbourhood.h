#ifndef SABLOCK_BASELINES_SORTED_NEIGHBOURHOOD_H_
#define SABLOCK_BASELINES_SORTED_NEIGHBOURHOOD_H_

#include <vector>

#include "baselines/blocking_key.h"
#include "core/blocking.h"

namespace sablock::baselines {

/// Array-based sorted neighbourhood ("SorA", Hernández & Stolfo): records
/// are sorted by their key; a window of `window_size` records slides over
/// the sorted array and each window position forms a block.
class SortedNeighbourhoodArray : public core::BlockingTechnique {
 public:
  SortedNeighbourhoodArray(BlockingKeyDef key, int window_size)
      : key_(std::move(key)), window_size_(window_size) {}

  std::string name() const override {
    return "SorA(w=" + std::to_string(window_size_) + ")";
  }
  using core::BlockingTechnique::Run;
  void Run(const data::Dataset& dataset,
           core::BlockSink& sink) const override;

 private:
  BlockingKeyDef key_;
  int window_size_;
};

/// Inverted-index-based sorted neighbourhood ("SorII", Christen): the
/// window slides over the sorted *unique key values*; a block is the union
/// of the posting lists of the keys inside the window. Unlike SorA, all
/// records with equal keys are always compared regardless of window size.
class SortedNeighbourhoodInvertedIndex : public core::BlockingTechnique {
 public:
  SortedNeighbourhoodInvertedIndex(BlockingKeyDef key, int window_size)
      : key_(std::move(key)), window_size_(window_size) {}

  std::string name() const override {
    return "SorII(w=" + std::to_string(window_size_) + ")";
  }
  using core::BlockingTechnique::Run;
  void Run(const data::Dataset& dataset,
           core::BlockSink& sink) const override;

 private:
  BlockingKeyDef key_;
  int window_size_;
};

/// Multi-pass sorted neighbourhood (Hernández & Stolfo's merge/purge):
/// one SorA pass per blocking key, followed by the transitive closure of
/// all window pairs. Several cheap passes with small windows outperform a
/// single pass with a large window because different keys make different
/// errors sortable.
class MultiPassSortedNeighbourhood : public core::BlockingTechnique {
 public:
  MultiPassSortedNeighbourhood(std::vector<BlockingKeyDef> keys,
                               int window_size);

  std::string name() const override;
  using core::BlockingTechnique::Run;
  void Run(const data::Dataset& dataset,
           core::BlockSink& sink) const override;

 private:
  std::vector<BlockingKeyDef> keys_;
  int window_size_;
};

}  // namespace sablock::baselines

#endif  // SABLOCK_BASELINES_SORTED_NEIGHBOURHOOD_H_
