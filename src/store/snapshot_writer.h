#ifndef SABLOCK_STORE_SNAPSHOT_WRITER_H_
#define SABLOCK_STORE_SNAPSHOT_WRITER_H_

#include <cstdint>
#include <string>

#include "common/status.h"
#include "data/record.h"

namespace sablock::store {

struct WriteOptions {
  /// Compress the heavyweight sections (varint zigzag-delta for u64
  /// arrays, dictionary front-coding for string tables). Signature
  /// matrices stay raw either way so the loader can mmap-alias them.
  bool compress = true;
  /// Persist every FeatureStore column already built for the dataset
  /// (normalized text, token postings, shingles, minhash signatures),
  /// so a loader starts with a warm cache. Columns are taken from the
  /// store's catalog — run the serving workload once before saving to
  /// capture exactly the columns it needs.
  bool include_features = true;
};

struct WriteInfo {
  uint64_t file_bytes = 0;
  uint32_t sections = 0;
  uint32_t feature_sections = 0;
};

/// Serializes `dataset` (and, optionally, its built feature columns)
/// into a `.sab` snapshot at `path` (see src/store/format.h for the
/// layout). Overwrites any existing file. Returns an error Status on IO
/// failure; never throws.
Status WriteSnapshot(const std::string& path, const data::Dataset& dataset,
                     const WriteOptions& options = {},
                     WriteInfo* info = nullptr);

}  // namespace sablock::store

#endif  // SABLOCK_STORE_SNAPSHOT_WRITER_H_
