#ifndef SABLOCK_STORE_FORMAT_H_
#define SABLOCK_STORE_FORMAT_H_

#include <cstddef>
#include <cstdint>

namespace sablock::store {

// On-disk layout of a `.sab` snapshot (all offsets in bytes):
//
//   [ header   | 48 bytes, fixed                                ]
//   [ table    | section_count * 40 bytes                       ]
//   [ pad to 8 ]
//   [ section payloads, each starting on an 8-byte boundary     ]
//
// Header fields, in order:
//   magic           char[8]  "SABSNAP1"
//   endian_marker   u32      0x01020304 as written by the producer
//   version         u32      kFormatVersion
//   record_count    u64
//   attr_count      u32
//   section_count   u32
//   file_bytes      u64      total file size (truncation check)
//   table_checksum  u64      Checksum64 of the encoded section table
//
// Section table entry fields, in order:
//   id, encoding    u32, u32
//   offset          u64      absolute, 8-aligned
//   stored_bytes    u64      payload bytes on disk
//   item_count      u64      logical element count (kind-specific)
//   checksum        u64      Checksum64 of the stored payload
//
// Fixed-width fields are written in the producer's byte order; the
// endian marker lets a consumer with the opposite byte order refuse the
// file with a clean diagnostic instead of misreading it. Varints are
// byte-order independent.
//
// Version-bump policy: any change to the header, the table entry
// layout, a section payload layout, or an encoding's bit-level meaning
// bumps kFormatVersion; loaders support exactly one version and reject
// others loudly (no silent best-effort reads). Purely *additive*
// section ids do not need a bump — loaders skip unknown section ids.

inline constexpr size_t kMagicBytes = 8;
inline constexpr char kMagic[kMagicBytes + 1] = "SABSNAP1";
inline constexpr uint32_t kEndianMarker = 0x01020304u;
inline constexpr uint32_t kFormatVersion = 1;

inline constexpr size_t kHeaderBytes = 48;
inline constexpr size_t kSectionEntryBytes = 40;

/// Section payload kinds. kSchema..kValueOffsets are the dataset core
/// (each required exactly once); the column sections are optional and
/// repeatable (one per cached FeatureStore column).
enum class SectionId : uint32_t {
  kSchema = 1,           // attribute names
  kEntities = 2,         // ground-truth entity ids, one per record
  kArena = 3,            // all attribute value bytes, row-major
  kValueOffsets = 4,     // record_count*attr_count+1 offsets into kArena
  kTextColumn = 5,       // normalized blocking text per record
  kTokenColumn = 6,      // token strings + per-record local-id postings
  kShingleColumn = 7,    // per-record sorted q-gram hash sets
  kSignatureColumn = 8,  // flat minhash matrix (8-aligned, mmap-aliased)
};

/// Per-section encoding. What "compressed" means is kind-specific:
/// varint zigzag-delta for u64 arrays (entities, value offsets, token
/// postings, shingle hashes) and dictionary front-coding for string
/// tables (normalized text, token strings). Signature matrices are
/// always raw so the loader can alias them straight out of the mapping.
enum class SectionEncoding : uint32_t {
  kRaw = 0,
  kCompressed = 1,
};

/// One decoded section-table entry (see the layout comment above).
struct SectionEntry {
  uint32_t id = 0;
  uint32_t encoding = 0;
  uint64_t offset = 0;
  uint64_t stored_bytes = 0;
  uint64_t item_count = 0;
  uint64_t checksum = 0;
};

/// Word-wise 64-bit mixing checksum over a byte range — the snapshot's
/// integrity checksum (corruption detection, not authentication). Four
/// independent multiply-xor lanes consume 32 bytes per step so the
/// 64-bit multiply latency pipelines instead of serializing (roughly
/// 10x the throughput of byte-wise FNV-1a, which priced the default
/// full-file verify pass at more than the rest of the load combined);
/// a single lane drains the remaining 8-byte words, trailing bytes
/// fold in byte-wise, and a splitmix64 finalizer avalanches the
/// result. Every step is a bijection (xor then odd multiply), so a
/// corruption confined to one lane can never cancel itself out.
inline uint64_t Checksum64(const void* data, size_t n) {
  const auto* p = static_cast<const unsigned char*>(data);
  constexpr uint64_t kM0 = 0x9e3779b185ebca87ULL;
  constexpr uint64_t kM1 = 0xc2b2ae3d27d4eb4fULL;
  constexpr uint64_t kM2 = 0x165667b19e3779f9ULL;
  constexpr uint64_t kM3 = 0x27d4eb2f165667c5ULL;
  auto word = [p](size_t at) {
    uint64_t w;
    __builtin_memcpy(&w, p + at, sizeof w);
    return w;
  };
  uint64_t h = 0x2b992ddfa23249d6ULL ^ (uint64_t{n} * kM0);
  size_t i = 0;
  if (n >= 32) {
    uint64_t h0 = h, h1 = h ^ kM1, h2 = h ^ kM2, h3 = h ^ kM3;
    for (; i + 32 <= n; i += 32) {
      h0 = (h0 ^ word(i)) * kM0;
      h1 = (h1 ^ word(i + 8)) * kM1;
      h2 = (h2 ^ word(i + 16)) * kM2;
      h3 = (h3 ^ word(i + 24)) * kM3;
    }
    h = ((((h0 ^ h1) * kM1 ^ h2) * kM2) ^ h3) * kM3;
  }
  for (; i + 8 <= n; i += 8) h = (h ^ word(i)) * kM0;
  for (; i < n; ++i) h = (h ^ p[i]) * kM1;
  h ^= h >> 30;
  h *= 0xbf58476d1ce4e5b9ULL;
  h ^= h >> 27;
  h *= 0x94d049bb133111ebULL;
  h ^= h >> 31;
  return h;
}

}  // namespace sablock::store

#endif  // SABLOCK_STORE_FORMAT_H_
