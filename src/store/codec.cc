#include "store/codec.h"

#include <algorithm>

namespace sablock::store {

void WriteU64Block(ByteWriter& writer, std::span<const uint64_t> values,
                   bool compressed) {
  writer.PutVarint(values.size());
  if (!compressed) {
    for (uint64_t v : values) writer.PutU64(v);
    return;
  }
  uint64_t prev = 0;
  for (uint64_t v : values) {
    writer.PutVarint(ZigzagEncode(static_cast<int64_t>(v - prev)));
    prev = v;
  }
}

Status ReadU64Block(ByteReader& reader, bool compressed,
                    std::vector<uint64_t>* out) {
  uint64_t count;
  if (!reader.ReadVarint(&count)) {
    return Status::Error("u64 block: truncated count");
  }
  // Every element costs at least one byte (varint) or eight (raw), so a
  // count the remaining bytes cannot possibly hold is corruption — catch
  // it before the allocation, not inside it.
  const uint64_t min_bytes_per = compressed ? 1 : 8;
  if (count > reader.remaining() / min_bytes_per) {
    return Status::Error("u64 block: count exceeds available bytes");
  }
  out->clear();
  out->reserve(count);
  if (!compressed) {
    for (uint64_t i = 0; i < count; ++i) {
      uint64_t v;
      if (!reader.ReadU64(&v)) {
        return Status::Error("u64 block: truncated values");
      }
      out->push_back(v);
    }
    return Status::Ok();
  }
  uint64_t prev = 0;
  for (uint64_t i = 0; i < count; ++i) {
    uint64_t delta;
    if (!reader.ReadVarint(&delta)) {
      return Status::Error("u64 block: truncated varint delta");
    }
    prev += static_cast<uint64_t>(ZigzagDecode(delta));
    out->push_back(prev);
  }
  return Status::Ok();
}

void WriteStringBlock(ByteWriter& writer, std::span<const std::string> strings,
                      bool compressed) {
  writer.PutVarint(strings.size());
  if (!compressed) {
    for (const std::string& s : strings) writer.PutString(s);
    return;
  }
  std::string_view prev;
  for (const std::string& s : strings) {
    size_t limit = std::min(prev.size(), s.size());
    size_t shared = 0;
    while (shared < limit && prev[shared] == s[shared]) ++shared;
    writer.PutVarint(shared);
    writer.PutString(std::string_view(s).substr(shared));
    prev = s;
  }
}

Status ReadStringBlock(ByteReader& reader, bool compressed,
                       std::vector<std::string>* out) {
  uint64_t count;
  if (!reader.ReadVarint(&count)) {
    return Status::Error("string block: truncated count");
  }
  // Raw strings cost >= 1 byte each (the length varint); front-coded
  // strings cost >= 2 (prefix varint + length varint).
  const uint64_t min_bytes_per = compressed ? 2 : 1;
  if (count > reader.remaining() / min_bytes_per) {
    return Status::Error("string block: count exceeds available bytes");
  }
  out->clear();
  out->reserve(count);
  if (!compressed) {
    for (uint64_t i = 0; i < count; ++i) {
      std::string_view s;
      if (!reader.ReadStringView(&s)) {
        return Status::Error("string block: truncated string");
      }
      out->emplace_back(s);
    }
    return Status::Ok();
  }
  std::string prev;
  for (uint64_t i = 0; i < count; ++i) {
    uint64_t shared;
    std::string_view suffix;
    if (!reader.ReadVarint(&shared) || !reader.ReadStringView(&suffix)) {
      return Status::Error("string block: truncated front-coded entry");
    }
    if (shared > prev.size()) {
      return Status::Error("string block: front-coding prefix out of range");
    }
    std::string s = prev.substr(0, shared);
    s.append(suffix);
    out->push_back(s);
    prev = std::move(s);
  }
  return Status::Ok();
}

}  // namespace sablock::store
