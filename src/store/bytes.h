#ifndef SABLOCK_STORE_BYTES_H_
#define SABLOCK_STORE_BYTES_H_

#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>

namespace sablock::store {

/// Appends fixed-width values, varints and length-prefixed strings to a
/// byte buffer. Fixed-width values are written in host byte order; the
/// file header's endian marker guards cross-endian loads (format.h).
class ByteWriter {
 public:
  explicit ByteWriter(std::string* out) : out_(out) {}

  void PutBytes(const void* data, size_t n) {
    out_->append(static_cast<const char*>(data), n);
  }
  void PutU8(uint8_t v) { PutBytes(&v, sizeof v); }
  void PutU32(uint32_t v) { PutBytes(&v, sizeof v); }
  void PutU64(uint64_t v) { PutBytes(&v, sizeof v); }

  /// LEB128 unsigned varint (1..10 bytes).
  void PutVarint(uint64_t v) {
    while (v >= 0x80) {
      PutU8(static_cast<uint8_t>(v) | 0x80);
      v >>= 7;
    }
    PutU8(static_cast<uint8_t>(v));
  }

  /// Varint length prefix + raw bytes.
  void PutString(std::string_view s) {
    PutVarint(s.size());
    PutBytes(s.data(), s.size());
  }

  size_t size() const { return out_->size(); }

 private:
  std::string* out_;
};

/// Bounds-checked reader over an immutable byte range (typically a
/// read-only file mapping). Every accessor returns false instead of
/// reading past the end, so hostile input can never fault — callers
/// turn a false into a clean Status error.
class ByteReader {
 public:
  ByteReader(const void* data, size_t size)
      : data_(static_cast<const char*>(data)), size_(size) {}

  bool ReadBytes(void* out, size_t n) {
    if (n > size_ - pos_) return false;
    std::memcpy(out, data_ + pos_, n);
    pos_ += n;
    return true;
  }
  bool ReadU8(uint8_t* out) { return ReadBytes(out, sizeof *out); }
  bool ReadU32(uint32_t* out) { return ReadBytes(out, sizeof *out); }
  bool ReadU64(uint64_t* out) { return ReadBytes(out, sizeof *out); }

  bool ReadVarint(uint64_t* out) {
    uint64_t value = 0;
    for (int shift = 0; shift < 64; shift += 7) {
      uint8_t byte;
      if (!ReadU8(&byte)) return false;
      value |= static_cast<uint64_t>(byte & 0x7f) << shift;
      if (!(byte & 0x80)) {
        *out = value;
        return true;
      }
      // The 10th byte may only contribute the top bit (shift 63).
      if (shift == 63) return false;
    }
    return false;
  }

  /// Varint length prefix + bytes, returned as a view into the buffer.
  bool ReadStringView(std::string_view* out) {
    uint64_t len;
    if (!ReadVarint(&len)) return false;
    if (len > size_ - pos_) return false;
    *out = {data_ + pos_, static_cast<size_t>(len)};
    pos_ += len;
    return true;
  }

  bool Skip(size_t n) {
    if (n > size_ - pos_) return false;
    pos_ += n;
    return true;
  }

  size_t position() const { return pos_; }
  size_t remaining() const { return size_ - pos_; }
  const char* cursor() const { return data_ + pos_; }

 private:
  const char* data_;
  size_t size_;
  size_t pos_ = 0;
};

inline uint64_t ZigzagEncode(int64_t v) {
  return (static_cast<uint64_t>(v) << 1) ^ static_cast<uint64_t>(v >> 63);
}

inline int64_t ZigzagDecode(uint64_t v) {
  return static_cast<int64_t>(v >> 1) ^ -static_cast<int64_t>(v & 1);
}

}  // namespace sablock::store

#endif  // SABLOCK_STORE_BYTES_H_
