#ifndef SABLOCK_STORE_CODEC_H_
#define SABLOCK_STORE_CODEC_H_

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "common/status.h"
#include "store/bytes.h"

namespace sablock::store {

// Self-framing sub-blocks shared by the snapshot writer and loader.
// Each block carries its own element count, and every reader validates
// that count against the bytes actually available before allocating,
// so a corrupt count can neither over-allocate nor read out of bounds.

/// u64 array: varint count, then either raw host-order values or —
/// compressed — varint zigzag-deltas (wrapping), which shrink sorted
/// sequences (value offsets, token postings, shingle hash sets) to a
/// byte or two per element.
void WriteU64Block(ByteWriter& writer, std::span<const uint64_t> values,
                   bool compressed);
Status ReadU64Block(ByteReader& reader, bool compressed,
                    std::vector<uint64_t>* out);

/// String table: varint count, then either raw length-prefixed strings
/// or — compressed — dictionary front-coding (shared-prefix length with
/// the previous string + suffix), which shrinks sorted-ish text tables.
void WriteStringBlock(ByteWriter& writer, std::span<const std::string> strings,
                      bool compressed);
Status ReadStringBlock(ByteReader& reader, bool compressed,
                       std::vector<std::string>* out);

}  // namespace sablock::store

#endif  // SABLOCK_STORE_CODEC_H_
