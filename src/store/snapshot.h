#ifndef SABLOCK_STORE_SNAPSHOT_H_
#define SABLOCK_STORE_SNAPSHOT_H_

#include <cstdint>
#include <string>

#include "common/status.h"
#include "data/record.h"

namespace sablock::store {

struct LoadOptions {
  /// Verify the Checksum64 digest of every section payload before
  /// decoding it (the header and section table are always validated).
  /// Costs one sequential pass over the file; turn off only for trusted
  /// local files where the page cache is already warm.
  bool verify_checksums = true;
  /// Deserialize precomputed FeatureStore sections and attach them to
  /// the dataset as a pre-warmed cache (signature matrices alias the
  /// mapping zero-copy). Off = dataset core only; features rebuild
  /// lazily on first use.
  bool load_features = true;
};

struct SnapshotInfo {
  uint64_t file_bytes = 0;
  uint64_t records = 0;
  uint32_t attributes = 0;
  uint32_t sections = 0;
  uint32_t feature_sections = 0;
  bool any_compressed = false;
};

/// Loads a `.sab` snapshot written by WriteSnapshot. The file is mapped
/// read-only and the dataset's string arena adopts the mapping, so
/// record bytes (and raw signature matrices) are served zero-copy from
/// the page cache; the mapping lives until the last dataset / feature
/// handle sharing the arena is gone. Mutating the loaded dataset
/// copies-on-write: new bytes intern into fresh heap chunks and the
/// stale-feature version CHECK fires exactly as for a parsed dataset.
///
/// Corrupt, truncated, foreign-endian or wrong-version files return a
/// descriptive error Status — never a crash, never a silently wrong
/// dataset.
Status LoadSnapshot(const std::string& path, const LoadOptions& options,
                    data::Dataset* out, SnapshotInfo* info = nullptr);

}  // namespace sablock::store

#endif  // SABLOCK_STORE_SNAPSHOT_H_
