#include "store/snapshot.h"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cstring>
#include <memory>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "features/feature_store.h"
#include "store/codec.h"
#include "store/format.h"

namespace sablock::store {

namespace {

Status Fail(const std::string& what) {
  return Status::Error("snapshot: " + what);
}

/// RAII read-only file mapping. The loaded dataset's arena (and any
/// adopted signature column) co-owns it via aliasing shared_ptrs, so
/// the mapping outlives every view handed out of the snapshot.
class MappedFile {
 public:
  static Status Map(const std::string& path,
                    std::shared_ptr<MappedFile>* out) {
    int fd = ::open(path.c_str(), O_RDONLY);
    if (fd < 0) return Fail("cannot open " + path);
    struct stat st;
    if (::fstat(fd, &st) != 0 || st.st_size < 0) {
      ::close(fd);
      return Fail("cannot stat " + path);
    }
    size_t size = static_cast<size_t>(st.st_size);
    void* base = nullptr;
    if (size > 0) {
      base = ::mmap(nullptr, size, PROT_READ, MAP_PRIVATE, fd, 0);
      if (base == MAP_FAILED) {
        ::close(fd);
        return Fail("mmap failed for " + path);
      }
    }
    ::close(fd);
    out->reset(new MappedFile(base, size));
    return Status::Ok();
  }

  MappedFile(const MappedFile&) = delete;
  MappedFile& operator=(const MappedFile&) = delete;
  ~MappedFile() {
    if (base_) ::munmap(base_, size_);
  }

  const char* data() const { return static_cast<const char*>(base_); }
  size_t size() const { return size_; }

 private:
  MappedFile(void* base, size_t size) : base_(base), size_(size) {}
  void* base_;
  size_t size_;
};

bool IsCompressed(const SectionEntry& e) {
  return e.encoding == static_cast<uint32_t>(SectionEncoding::kCompressed);
}

/// Preamble attribute lists are always raw (only section bulks carry
/// the per-section encoding).
Status ReadAttrs(ByteReader& r, std::vector<std::string>* attrs) {
  return ReadStringBlock(r, /*compressed=*/false, attrs);
}

Status MarkSeen(std::set<std::string>* seen, std::string key) {
  if (!seen->insert(std::move(key)).second) {
    return Fail("duplicate feature column section");
  }
  return Status::Ok();
}

std::string AttrsKey(const SectionEntry& e,
                     const std::vector<std::string>& attrs) {
  std::string key = std::to_string(e.id) + '|';
  for (const std::string& a : attrs) key += a + '\x1f';
  return key;
}

Status LoadTextColumn(ByteReader& r, const SectionEntry& e, uint64_t n,
                      features::FeatureStore* store,
                      std::set<std::string>* seen) {
  std::vector<std::string> attrs;
  Status s = ReadAttrs(r, &attrs);
  if (!s.ok()) return s;
  features::TextColumn column;
  s = ReadStringBlock(r, IsCompressed(e), &column.texts);
  if (!s.ok()) return s;
  if (column.texts.size() != n || e.item_count != n) {
    return Fail("text column record count mismatch");
  }
  if (r.remaining() != 0) return Fail("text column has trailing bytes");
  s = MarkSeen(seen, AttrsKey(e, attrs));
  if (!s.ok()) return s;
  store->AdoptTexts(attrs, std::move(column));
  return Status::Ok();
}

Status LoadTokenColumn(ByteReader& r, const SectionEntry& e, uint64_t n,
                       features::FeatureStore* store,
                       std::set<std::string>* seen) {
  std::vector<std::string> attrs;
  Status s = ReadAttrs(r, &attrs);
  if (!s.ok()) return s;
  std::vector<std::string> vocabulary;
  std::vector<uint64_t> counts;
  std::vector<uint64_t> flat;
  s = ReadStringBlock(r, IsCompressed(e), &vocabulary);
  if (s.ok()) s = ReadU64Block(r, IsCompressed(e), &counts);
  if (s.ok()) s = ReadU64Block(r, IsCompressed(e), &flat);
  if (!s.ok()) return s;
  if (counts.size() != n || e.item_count != n) {
    return Fail("token column record count mismatch");
  }
  if (r.remaining() != 0) return Fail("token column has trailing bytes");
  if (vocabulary.size() > UINT32_MAX) return Fail("token vocabulary too large");
  uint64_t total = 0;
  for (uint64_t c : counts) {
    if (c > flat.size()) return Fail("token posting counts corrupt");
    total += c;
  }
  if (total != flat.size()) return Fail("token posting counts corrupt");
  std::vector<std::vector<features::TokenId>> per_record(n);
  size_t next = 0;
  for (size_t id = 0; id < n; ++id) {
    std::vector<features::TokenId>& ids = per_record[id];
    ids.reserve(counts[id]);
    for (uint64_t i = 0; i < counts[id]; ++i) {
      uint64_t local = flat[next++];
      if (local >= vocabulary.size()) {
        return Fail("token posting id out of vocabulary range");
      }
      ids.push_back(static_cast<features::TokenId>(local));
    }
  }
  s = MarkSeen(seen, AttrsKey(e, attrs));
  if (!s.ok()) return s;
  store->AdoptTokens(attrs, std::move(vocabulary), std::move(per_record));
  return Status::Ok();
}

Status LoadShingleColumn(ByteReader& r, const SectionEntry& e, uint64_t n,
                         features::FeatureStore* store,
                         std::set<std::string>* seen) {
  std::vector<std::string> attrs;
  Status s = ReadAttrs(r, &attrs);
  if (!s.ok()) return s;
  uint64_t q;
  if (!r.ReadVarint(&q) || q == 0 || q > INT32_MAX) {
    return Fail("shingle column has a corrupt q");
  }
  std::vector<uint64_t> counts;
  std::vector<uint64_t> flat;
  s = ReadU64Block(r, IsCompressed(e), &counts);
  if (s.ok()) s = ReadU64Block(r, IsCompressed(e), &flat);
  if (!s.ok()) return s;
  if (counts.size() != n || e.item_count != n) {
    return Fail("shingle column record count mismatch");
  }
  if (r.remaining() != 0) return Fail("shingle column has trailing bytes");
  uint64_t total = 0;
  for (uint64_t c : counts) {
    if (c > flat.size()) return Fail("shingle counts corrupt");
    total += c;
  }
  if (total != flat.size()) return Fail("shingle counts corrupt");
  features::ShingleColumn column;
  column.sets.resize(n);
  size_t next = 0;
  for (size_t id = 0; id < n; ++id) {
    column.sets[id].assign(flat.begin() + static_cast<ptrdiff_t>(next),
                           flat.begin() + static_cast<ptrdiff_t>(next) +
                               static_cast<ptrdiff_t>(counts[id]));
    next += counts[id];
  }
  s = MarkSeen(seen, AttrsKey(e, attrs) + '\x1e' + std::to_string(q));
  if (!s.ok()) return s;
  store->AdoptShingles(attrs, static_cast<int>(q), std::move(column));
  return Status::Ok();
}

Status LoadSignatureColumn(const std::shared_ptr<MappedFile>& file,
                           ByteReader& r, const SectionEntry& e, uint64_t n,
                           features::FeatureStore* store,
                           std::set<std::string>* seen) {
  std::vector<std::string> attrs;
  Status s = ReadAttrs(r, &attrs);
  if (!s.ok()) return s;
  uint64_t q, num_hashes, seed, count;
  uint8_t pad;
  if (!r.ReadVarint(&q) || !r.ReadVarint(&num_hashes) ||
      !r.ReadVarint(&seed) || !r.ReadVarint(&count) || !r.ReadU8(&pad) ||
      !r.Skip(pad)) {
    return Fail("signature column has a truncated preamble");
  }
  if (q == 0 || q > INT32_MAX || num_hashes == 0 || num_hashes > INT32_MAX) {
    return Fail("signature column has corrupt parameters");
  }
  if (count != n * num_hashes || e.item_count != count) {
    return Fail("signature matrix shape mismatch");
  }
  if (r.position() % 8 != 0) return Fail("signature matrix misaligned");
  if (r.remaining() != count * sizeof(uint64_t)) {
    return Fail("signature matrix size mismatch");
  }
  // The payload starts on an 8-aligned file offset inside a page-aligned
  // mapping and position % 8 == 0, so this cast is aligned.
  const auto* matrix = reinterpret_cast<const uint64_t*>(r.cursor());
  features::SignatureColumn column;
  column.num_hashes = static_cast<uint32_t>(num_hashes);
  column.rows = {matrix, static_cast<size_t>(count)};
  column.retain = std::shared_ptr<const void>(file, matrix);
  Status dup = MarkSeen(seen, AttrsKey(e, attrs) + '\x1e' +
                                  std::to_string(q) + '\x1e' +
                                  std::to_string(num_hashes) + '\x1e' +
                                  std::to_string(seed));
  if (!dup.ok()) return dup;
  store->AdoptSignatures(attrs, static_cast<int>(q),
                         static_cast<int>(num_hashes), seed,
                         std::move(column));
  return Status::Ok();
}

}  // namespace

Status LoadSnapshot(const std::string& path, const LoadOptions& options,
                    data::Dataset* out, SnapshotInfo* info) {
  std::shared_ptr<MappedFile> file;
  Status mapped = MappedFile::Map(path, &file);
  if (!mapped.ok()) return mapped;
  const char* base = file->data();
  const size_t size = file->size();
  if (size < kHeaderBytes) return Fail("file too small to hold a header");

  ByteReader header(base, kHeaderBytes);
  char magic[kMagicBytes];
  header.ReadBytes(magic, kMagicBytes);
  if (std::memcmp(magic, kMagic, kMagicBytes) != 0) {
    return Fail("bad magic (not a .sab snapshot)");
  }
  uint32_t endian = 0, version = 0, attr_count = 0, section_count = 0;
  uint64_t record_count = 0, file_bytes = 0, table_checksum = 0;
  header.ReadU32(&endian);
  header.ReadU32(&version);
  header.ReadU64(&record_count);
  header.ReadU32(&attr_count);
  header.ReadU32(&section_count);
  header.ReadU64(&file_bytes);
  header.ReadU64(&table_checksum);
  if (endian != kEndianMarker) {
    return Fail(endian == __builtin_bswap32(kEndianMarker)
                    ? "byte-order mismatch (snapshot written on a "
                      "foreign-endian machine)"
                    : "corrupt endian marker");
  }
  if (version != kFormatVersion) {
    return Fail("unsupported format version " + std::to_string(version) +
                " (this build reads version " +
                std::to_string(kFormatVersion) + ")");
  }
  if (file_bytes != size) {
    return Fail("truncated or padded file (header claims " +
                std::to_string(file_bytes) + " bytes, file has " +
                std::to_string(size) + ")");
  }
  const uint64_t table_bytes = uint64_t{section_count} * kSectionEntryBytes;
  if (table_bytes > size - kHeaderBytes) {
    return Fail("section table exceeds the file");
  }
  const char* table = base + kHeaderBytes;
  if (Checksum64(table, table_bytes) != table_checksum) {
    return Fail("section table checksum mismatch");
  }

  std::vector<SectionEntry> entries(section_count);
  ByteReader tr(table, table_bytes);
  bool any_compressed = false;
  for (SectionEntry& e : entries) {
    tr.ReadU32(&e.id);
    tr.ReadU32(&e.encoding);
    tr.ReadU64(&e.offset);
    tr.ReadU64(&e.stored_bytes);
    tr.ReadU64(&e.item_count);
    tr.ReadU64(&e.checksum);
    if (e.offset % 8 != 0 || e.offset < kHeaderBytes + table_bytes ||
        e.offset > size || e.stored_bytes > size - e.offset) {
      return Fail("section payload out of bounds");
    }
    if (e.encoding > static_cast<uint32_t>(SectionEncoding::kCompressed)) {
      return Fail("unknown section encoding");
    }
    if (IsCompressed(e)) any_compressed = true;
    if (options.verify_checksums &&
        Checksum64(base + e.offset, e.stored_bytes) != e.checksum) {
      return Fail("section payload checksum mismatch (section id " +
                  std::to_string(e.id) + ")");
    }
  }

  const SectionEntry* schema_sec = nullptr;
  const SectionEntry* entities_sec = nullptr;
  const SectionEntry* arena_sec = nullptr;
  const SectionEntry* offsets_sec = nullptr;
  std::vector<const SectionEntry*> feature_secs;
  for (const SectionEntry& e : entries) {
    switch (static_cast<SectionId>(e.id)) {
      case SectionId::kSchema:
        if (schema_sec) return Fail("duplicate schema section");
        schema_sec = &e;
        break;
      case SectionId::kEntities:
        if (entities_sec) return Fail("duplicate entities section");
        entities_sec = &e;
        break;
      case SectionId::kArena:
        if (arena_sec) return Fail("duplicate arena section");
        arena_sec = &e;
        break;
      case SectionId::kValueOffsets:
        if (offsets_sec) return Fail("duplicate value-offsets section");
        offsets_sec = &e;
        break;
      case SectionId::kTextColumn:
      case SectionId::kTokenColumn:
      case SectionId::kShingleColumn:
      case SectionId::kSignatureColumn:
        feature_secs.push_back(&e);
        break;
      default:
        break;  // additive future section: skip, per the version policy
    }
  }
  if (!schema_sec || !entities_sec || !arena_sec || !offsets_sec) {
    return Fail("missing a required dataset section");
  }

  // --- dataset core ------------------------------------------------------
  std::vector<std::string> names;
  {
    ByteReader r(base + schema_sec->offset, schema_sec->stored_bytes);
    Status s = ReadStringBlock(r, IsCompressed(*schema_sec), &names);
    if (!s.ok()) return s;
    if (names.size() != attr_count || r.remaining() != 0) {
      return Fail("schema does not match the header attribute count");
    }
  }

  std::vector<data::EntityId> entities;
  {
    ByteReader r(base + entities_sec->offset, entities_sec->stored_bytes);
    std::vector<uint64_t> raw;
    Status s = ReadU64Block(r, IsCompressed(*entities_sec), &raw);
    if (!s.ok()) return s;
    if (raw.size() != record_count || r.remaining() != 0) {
      return Fail("entity section does not match the header record count");
    }
    entities.reserve(raw.size());
    for (uint64_t v : raw) {
      if (v > UINT32_MAX) return Fail("entity id out of range");
      entities.push_back(static_cast<data::EntityId>(v));
    }
  }

  if (arena_sec->item_count != arena_sec->stored_bytes) {
    return Fail("arena section is inconsistent");
  }
  std::vector<uint64_t> offsets;
  {
    ByteReader r(base + offsets_sec->offset, offsets_sec->stored_bytes);
    Status s = ReadU64Block(r, IsCompressed(*offsets_sec), &offsets);
    if (!s.ok()) return s;
    if (offsets.size() != record_count * attr_count + 1 ||
        r.remaining() != 0) {
      return Fail("value-offset count does not match the record count");
    }
    if (offsets.front() != 0 || offsets.back() != arena_sec->stored_bytes) {
      return Fail("value offsets do not span the arena");
    }
  }

  const char* blob = base + arena_sec->offset;
  auto arena = std::make_shared<data::StringArena>();
  arena->Adopt(std::shared_ptr<const void>(file, blob),
               arena_sec->stored_bytes);
  std::vector<std::string_view> values;
  values.reserve(offsets.size() - 1);
  for (size_t i = 0; i + 1 < offsets.size(); ++i) {
    uint64_t begin = offsets[i], end = offsets[i + 1];
    if (end < begin || end > arena_sec->stored_bytes) {
      return Fail("value offsets are not monotone");
    }
    values.push_back(end == begin ? std::string_view{}
                                  : std::string_view(blob + begin,
                                                     end - begin));
  }
  *out = data::Dataset::FromColumns(data::Schema(std::move(names)),
                                    std::move(arena), std::move(values),
                                    std::move(entities));

  // --- precomputed feature columns ---------------------------------------
  uint32_t loaded_features = 0;
  if (options.load_features && !feature_secs.empty()) {
    auto store = std::make_shared<features::FeatureStore>(*out);
    std::set<std::string> seen;
    for (const SectionEntry* e : feature_secs) {
      ByteReader r(base + e->offset, e->stored_bytes);
      // Each loader checks the column key against `seen` *before*
      // adopting, so a duplicate file section yields a clean error
      // instead of tripping the Adopt* programming-error CHECK.
      Status s;
      switch (static_cast<SectionId>(e->id)) {
        case SectionId::kTextColumn:
          s = LoadTextColumn(r, *e, record_count, store.get(), &seen);
          break;
        case SectionId::kTokenColumn:
          s = LoadTokenColumn(r, *e, record_count, store.get(), &seen);
          break;
        case SectionId::kShingleColumn:
          s = LoadShingleColumn(r, *e, record_count, store.get(), &seen);
          break;
        case SectionId::kSignatureColumn:
          s = LoadSignatureColumn(file, r, *e, record_count, store.get(),
                                  &seen);
          break;
        default:
          break;
      }
      if (!s.ok()) return s;
      ++loaded_features;
    }
    out->AdoptFeatures(std::move(store));
  }

  if (info) {
    info->file_bytes = size;
    info->records = record_count;
    info->attributes = attr_count;
    info->sections = section_count;
    info->feature_sections = loaded_features;
    info->any_compressed = any_compressed;
  }
  return Status::Ok();
}

}  // namespace sablock::store
