#include "store/snapshot_writer.h"

#include <cstdio>
#include <string>
#include <utility>
#include <vector>

#include "features/feature_store.h"
#include "store/codec.h"
#include "store/format.h"

namespace sablock::store {

namespace {

struct PendingSection {
  SectionId id;
  SectionEncoding encoding;
  uint64_t item_count = 0;
  std::string payload;
};

uint64_t Align8(uint64_t offset) { return (offset + 7) & ~uint64_t{7}; }

void AddSchemaSection(const data::Dataset& dataset,
                      std::vector<PendingSection>* sections) {
  PendingSection s{SectionId::kSchema, SectionEncoding::kRaw,
                   dataset.schema().size(), {}};
  ByteWriter w(&s.payload);
  WriteStringBlock(w, dataset.schema().names(), /*compressed=*/false);
  sections->push_back(std::move(s));
}

void AddEntitiesSection(const data::Dataset& dataset, bool compress,
                        std::vector<PendingSection>* sections) {
  std::vector<uint64_t> entities(dataset.entities().begin(),
                                 dataset.entities().end());
  PendingSection s{SectionId::kEntities,
                   compress ? SectionEncoding::kCompressed
                            : SectionEncoding::kRaw,
                   entities.size(),
                   {}};
  ByteWriter w(&s.payload);
  WriteU64Block(w, entities, compress);
  sections->push_back(std::move(s));
}

void AddValueSections(const data::Dataset& dataset, bool compress,
                      std::vector<PendingSection>* sections) {
  // Re-serialize the value bytes contiguously in row-major order (the
  // live arena may be fragmented across chunks and interleaved with
  // other datasets); the offsets are then a sorted array that varint
  // deltas compress to roughly a byte per value.
  const size_t width = dataset.schema().size();
  const size_t n = dataset.size();
  std::string blob;
  std::vector<uint64_t> offsets;
  offsets.reserve(n * width + 1);
  for (size_t id = 0; id < n; ++id) {
    for (std::string_view v : dataset.Values(static_cast<data::RecordId>(id))) {
      offsets.push_back(blob.size());
      blob.append(v);
    }
  }
  offsets.push_back(blob.size());

  PendingSection off{SectionId::kValueOffsets,
                     compress ? SectionEncoding::kCompressed
                              : SectionEncoding::kRaw,
                     offsets.size(),
                     {}};
  ByteWriter ow(&off.payload);
  WriteU64Block(ow, offsets, compress);
  sections->push_back(std::move(off));

  PendingSection arena{SectionId::kArena, SectionEncoding::kRaw, blob.size(),
                       std::move(blob)};
  sections->push_back(std::move(arena));
}

void WriteAttrs(ByteWriter& w, const std::vector<std::string>& attributes) {
  WriteStringBlock(w, attributes, /*compressed=*/false);
}

void AddTextSection(const features::FeatureStore& store,
                    const features::FeatureStore::ColumnParams& params,
                    bool compress, std::vector<PendingSection>* sections) {
  const features::TextColumn& column = store.Texts(params.attributes);
  PendingSection s{SectionId::kTextColumn,
                   compress ? SectionEncoding::kCompressed
                            : SectionEncoding::kRaw,
                   column.texts.size(),
                   {}};
  ByteWriter w(&s.payload);
  WriteAttrs(w, params.attributes);
  WriteStringBlock(w, column.texts, compress);
  sections->push_back(std::move(s));
}

void AddTokenSection(const features::FeatureStore& store,
                     const features::FeatureStore::ColumnParams& params,
                     bool compress, std::vector<PendingSection>* sections) {
  const features::TokenColumn& column = store.Tokens(params.attributes);
  // The vocabulary travels in local-id order so the loader re-interns it
  // and rebuilds the local->global map; the per-record postings travel
  // as (counts, flat sorted local ids) — both sorted, so deltas bite.
  std::vector<std::string> vocabulary;
  vocabulary.reserve(column.global_ids.size());
  for (features::TokenId global : column.global_ids) {
    vocabulary.push_back(store.Token(global));
  }
  std::vector<uint64_t> counts;
  counts.reserve(column.tokens.size());
  std::vector<uint64_t> flat;
  for (const std::vector<features::TokenId>& ids : column.tokens) {
    counts.push_back(ids.size());
    flat.insert(flat.end(), ids.begin(), ids.end());
  }
  PendingSection s{SectionId::kTokenColumn,
                   compress ? SectionEncoding::kCompressed
                            : SectionEncoding::kRaw,
                   column.tokens.size(),
                   {}};
  ByteWriter w(&s.payload);
  WriteAttrs(w, params.attributes);
  WriteStringBlock(w, vocabulary, compress);
  WriteU64Block(w, counts, compress);
  WriteU64Block(w, flat, compress);
  sections->push_back(std::move(s));
}

void AddShingleSection(const features::FeatureStore& store,
                       const features::FeatureStore::ColumnParams& params,
                       bool compress, std::vector<PendingSection>* sections) {
  const features::ShingleColumn& column =
      store.Shingles(params.attributes, params.q);
  std::vector<uint64_t> counts;
  counts.reserve(column.sets.size());
  std::vector<uint64_t> flat;
  for (const std::vector<uint64_t>& set : column.sets) {
    counts.push_back(set.size());
    flat.insert(flat.end(), set.begin(), set.end());
  }
  PendingSection s{SectionId::kShingleColumn,
                   compress ? SectionEncoding::kCompressed
                            : SectionEncoding::kRaw,
                   column.sets.size(),
                   {}};
  ByteWriter w(&s.payload);
  WriteAttrs(w, params.attributes);
  w.PutVarint(static_cast<uint64_t>(params.q));
  WriteU64Block(w, counts, compress);
  WriteU64Block(w, flat, compress);
  sections->push_back(std::move(s));
}

void AddSignatureSection(const features::FeatureStore& store,
                         const features::FeatureStore::ColumnParams& params,
                         std::vector<PendingSection>* sections) {
  const features::SignatureColumn& column = store.Signatures(
      params.attributes, params.q, params.num_hashes, params.seed);
  // Always raw: the loader serves this matrix zero-copy out of the
  // mapping, so the payload tail is padded to an absolute 8-byte file
  // offset (section payloads start 8-aligned; pad_len re-aligns after
  // the variable-length preamble).
  PendingSection s{SectionId::kSignatureColumn, SectionEncoding::kRaw,
                   column.rows.size(), {}};
  ByteWriter w(&s.payload);
  WriteAttrs(w, params.attributes);
  w.PutVarint(static_cast<uint64_t>(params.q));
  w.PutVarint(static_cast<uint64_t>(params.num_hashes));
  w.PutVarint(params.seed);
  w.PutVarint(column.rows.size());
  uint8_t pad = static_cast<uint8_t>((8 - ((w.size() + 1) % 8)) % 8);
  w.PutU8(pad);
  for (uint8_t i = 0; i < pad; ++i) w.PutU8(0);
  w.PutBytes(column.rows.data(), column.rows.size() * sizeof(uint64_t));
  sections->push_back(std::move(s));
}

}  // namespace

Status WriteSnapshot(const std::string& path, const data::Dataset& dataset,
                     const WriteOptions& options, WriteInfo* info) {
  std::vector<PendingSection> sections;
  AddSchemaSection(dataset, &sections);
  AddEntitiesSection(dataset, options.compress, &sections);
  AddValueSections(dataset, options.compress, &sections);

  uint32_t feature_sections = 0;
  if (options.include_features && !dataset.empty()) {
    features::FeatureView view = dataset.features();
    const features::FeatureStore& store = view.store();
    // Only whole-dataset stores serialize (a slice's view translates
    // record ids into a larger parent snapshot; its columns would not
    // line up with the records written above).
    if (view.offset() == 0 && store.size() == dataset.size()) {
      features::FeatureStore::Catalog catalog = store.catalog();
      for (const auto& params : catalog.texts) {
        AddTextSection(store, params, options.compress, &sections);
      }
      for (const auto& params : catalog.tokens) {
        AddTokenSection(store, params, options.compress, &sections);
      }
      for (const auto& params : catalog.shingles) {
        AddShingleSection(store, params, options.compress, &sections);
      }
      for (const auto& params : catalog.signatures) {
        AddSignatureSection(store, params, &sections);
      }
      feature_sections = static_cast<uint32_t>(
          catalog.texts.size() + catalog.tokens.size() +
          catalog.shingles.size() + catalog.signatures.size());
    }
  }

  // Lay out the file: header, table, 8-aligned payloads.
  const uint64_t table_bytes = sections.size() * kSectionEntryBytes;
  uint64_t cursor = Align8(kHeaderBytes + table_bytes);
  std::vector<SectionEntry> entries;
  entries.reserve(sections.size());
  for (const PendingSection& s : sections) {
    SectionEntry e;
    e.id = static_cast<uint32_t>(s.id);
    e.encoding = static_cast<uint32_t>(s.encoding);
    e.offset = cursor;
    e.stored_bytes = s.payload.size();
    e.item_count = s.item_count;
    e.checksum = Checksum64(s.payload.data(), s.payload.size());
    entries.push_back(e);
    cursor = Align8(cursor + s.payload.size());
  }
  const uint64_t file_bytes =
      entries.empty() ? Align8(kHeaderBytes + table_bytes)
                      : entries.back().offset + sections.back().payload.size();

  std::string table;
  {
    ByteWriter w(&table);
    for (const SectionEntry& e : entries) {
      w.PutU32(e.id);
      w.PutU32(e.encoding);
      w.PutU64(e.offset);
      w.PutU64(e.stored_bytes);
      w.PutU64(e.item_count);
      w.PutU64(e.checksum);
    }
  }

  std::string file;
  file.reserve(file_bytes);
  {
    ByteWriter w(&file);
    w.PutBytes(kMagic, kMagicBytes);
    w.PutU32(kEndianMarker);
    w.PutU32(kFormatVersion);
    w.PutU64(dataset.size());
    w.PutU32(static_cast<uint32_t>(dataset.schema().size()));
    w.PutU32(static_cast<uint32_t>(sections.size()));
    w.PutU64(file_bytes);
    w.PutU64(Checksum64(table.data(), table.size()));
  }
  file.append(table);
  for (size_t i = 0; i < sections.size(); ++i) {
    file.resize(entries[i].offset, '\0');  // alignment padding
    file.append(sections[i].payload);
  }

  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (!f) {
    return Status::Error("snapshot: cannot open " + path + " for writing");
  }
  size_t written = std::fwrite(file.data(), 1, file.size(), f);
  int close_rc = std::fclose(f);
  if (written != file.size() || close_rc != 0) {
    std::remove(path.c_str());
    return Status::Error("snapshot: short write to " + path);
  }

  if (info) {
    info->file_bytes = file.size();
    info->sections = static_cast<uint32_t>(sections.size());
    info->feature_sections = feature_sections;
  }
  return Status::Ok();
}

}  // namespace sablock::store
