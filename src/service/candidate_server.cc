#include "service/candidate_server.h"

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cstring>
#include <string_view>
#include <vector>

#include "common/check.h"
#include "common/timer.h"
#include "obs/export.h"
#include "obs/span.h"

namespace sablock::service {

namespace {

/// Error response with a message.
std::string ErrorResponse(std::string_view message) {
  WireWriter w;
  w.U8(kStatusError);
  w.Str(message);
  return w.bytes();
}

/// Per-op request counter + latency histogram, one pair per wire verb
/// (plus a bucket for garbage opcodes). Resolved on first use, then the
/// dispatch path only touches atomics.
struct OpMetrics {
  obs::Counter* requests;
  obs::Histogram* seconds;

  explicit OpMetrics(const char* op_name) {
    obs::MetricsRegistry& registry = obs::MetricsRegistry::Global();
    requests = registry.GetCounter(
        "service_requests", "requests handled by the candidate server", "op",
        op_name);
    seconds = registry.GetHistogram(
        "service_request_seconds", "candidate-server request handling time",
        obs::Histogram::LatencyBuckets(), "op", op_name);
  }
};

OpMetrics& MetricsFor(uint8_t op) {
  static OpMetrics& insert = *new OpMetrics("insert");
  static OpMetrics& query = *new OpMetrics("query");
  static OpMetrics& batch_query = *new OpMetrics("batch_query");
  static OpMetrics& stats = *new OpMetrics("stats");
  static OpMetrics& remove = *new OpMetrics("remove");
  static OpMetrics& metrics = *new OpMetrics("metrics");
  static OpMetrics& query_progressive = *new OpMetrics("query_progressive");
  static OpMetrics& unknown = *new OpMetrics("unknown");
  switch (static_cast<Op>(op)) {
    case Op::kInsert: return insert;
    case Op::kQuery: return query;
    case Op::kBatchQuery: return batch_query;
    case Op::kStats: return stats;
    case Op::kRemove: return remove;
    case Op::kMetrics: return metrics;
    case Op::kQueryProgressive: return query_progressive;
  }
  return unknown;
}

/// Reads one schema-aligned value list; false (with an untouched reader
/// error state) on malformed input or arity mismatch.
bool ReadValueList(WireReader& r, size_t arity,
                   std::vector<std::string_view>* values) {
  uint32_t count = r.U32();
  if (!r.ok() || count != arity) return false;
  values->clear();
  values->reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    values->push_back(r.Str());
  }
  return r.ok();
}

void AppendIdList(const std::vector<data::RecordId>& ids, WireWriter* w) {
  w->U32(static_cast<uint32_t>(ids.size()));
  for (data::RecordId id : ids) w->U32(id);
}

}  // namespace

CandidateServer::CandidateServer(CandidateService* service,
                                 std::string socket_path, int num_threads)
    : service_(service),
      socket_path_(std::move(socket_path)),
      inflight_(obs::MetricsRegistry::Global().GetGauge(
          "service_inflight_requests",
          "requests currently being handled by the candidate server")),
      pool_(num_threads) {
  SABLOCK_CHECK(service_ != nullptr);
}

CandidateServer::~CandidateServer() { Stop(); }

Status CandidateServer::Start() {
  SABLOCK_CHECK_MSG(!running_, "server already started");
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (socket_path_.size() >= sizeof(addr.sun_path)) {
    return Status::Error("socket path too long: " + socket_path_);
  }
  std::memcpy(addr.sun_path, socket_path_.c_str(), socket_path_.size() + 1);

  listen_fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (listen_fd_ < 0) return Status::Error("socket() failed");
  ::unlink(socket_path_.c_str());  // stale file from a crashed server
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr),
             sizeof(addr)) != 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    return Status::Error("bind() failed for " + socket_path_);
  }
  if (::listen(listen_fd_, 64) != 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    ::unlink(socket_path_.c_str());
    return Status::Error("listen() failed for " + socket_path_);
  }
  running_ = true;
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  return Status::Ok();
}

void CandidateServer::Stop() {
  if (!running_.exchange(false)) return;
  // Wake the accept thread: shutdown makes the blocking accept() fail.
  ::shutdown(listen_fd_, SHUT_RDWR);
  accept_thread_.join();
  ::close(listen_fd_);
  listen_fd_ = -1;
  {
    // Drain, don't sever: shutting down only the read side makes each
    // connection's next ReadFrame see EOF, while a response the worker is
    // mid-writing for an in-flight request still reaches the client.
    std::lock_guard<std::mutex> lock(conn_mu_);
    for (int fd : connections_) ::shutdown(fd, SHUT_RD);
  }
  pool_.Wait();
  ::unlink(socket_path_.c_str());
}

void CandidateServer::AcceptLoop() {
  while (true) {
    int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (!running_) return;
      continue;  // transient (e.g. ECONNABORTED)
    }
    {
      std::lock_guard<std::mutex> lock(conn_mu_);
      connections_.insert(fd);
    }
    pool_.Submit([this, fd] { ServeConnection(fd); });
  }
}

void CandidateServer::ServeConnection(int fd) {
  std::string request;
  while (ReadFrame(fd, &request)) {
    inflight_->Add(1);
    std::string response = Handle(request);
    inflight_->Sub(1);
    if (!WriteFrame(fd, response)) break;
  }
  {
    std::lock_guard<std::mutex> lock(conn_mu_);
    connections_.erase(fd);
  }
  ::close(fd);
}

std::string CandidateServer::Handle(std::string_view request) const {
  WireReader r(request);
  uint8_t op = r.U8();
  if (!r.ok()) return ErrorResponse("empty request");
  obs::TraceId trace = 0;
  if (op & kTracedOpBit) {
    op &= static_cast<uint8_t>(~kTracedOpBit);
    trace = r.U64();
    if (!r.ok()) return ErrorResponse("traced request without trace id");
  }
  obs::ObsSpan span("service.request", trace);
  OpMetrics& op_metrics = MetricsFor(op);
  WallTimer timer;
  const size_t arity = service_->schema().size();
  std::vector<std::string_view> values;
  WireWriter w;

  std::string response = [&]() -> std::string {
  switch (static_cast<Op>(op)) {
    case Op::kInsert: {
      if (!ReadValueList(r, arity, &values) || !r.Finished()) {
        return ErrorResponse("malformed insert (expected " +
                             std::to_string(arity) + " values)");
      }
      data::RecordId id = service_->Insert(values);
      w.U8(kStatusOk);
      w.U32(id);
      return w.bytes();
    }
    case Op::kQuery: {
      if (!ReadValueList(r, arity, &values) || !r.Finished()) {
        return ErrorResponse("malformed query (expected " +
                             std::to_string(arity) + " values)");
      }
      w.U8(kStatusOk);
      AppendIdList(service_->Query(values), &w);
      return w.bytes();
    }
    case Op::kBatchQuery: {
      uint32_t probes = r.U32();
      w.U8(kStatusOk);
      w.U32(probes);
      for (uint32_t i = 0; i < probes; ++i) {
        if (!ReadValueList(r, arity, &values)) {
          return ErrorResponse("malformed batch query probe " +
                               std::to_string(i));
        }
        AppendIdList(service_->Query(values), &w);
      }
      if (!r.Finished()) return ErrorResponse("trailing batch-query bytes");
      return w.bytes();
    }
    case Op::kStats: {
      if (!r.Finished()) return ErrorResponse("trailing stats bytes");
      ServiceStats stats = service_->stats();
      w.U8(kStatusOk);
      w.U64(stats.records);
      w.U64(stats.inserts);
      w.U64(stats.queries);
      w.U64(stats.removes);
      w.Str(stats.index_name);
      return w.bytes();
    }
    case Op::kRemove: {
      uint32_t id = r.U32();
      if (!r.Finished()) return ErrorResponse("malformed remove");
      bool removed = service_->Remove(id);
      w.U8(kStatusOk);
      w.U8(removed ? 1 : 0);
      return w.bytes();
    }
    case Op::kMetrics: {
      if (!r.Finished()) return ErrorResponse("trailing metrics bytes");
      w.U8(kStatusOk);
      w.Str(obs::ToPrometheusText(obs::MetricsRegistry::Global().Snapshot()));
      return w.bytes();
    }
    case Op::kQueryProgressive: {
      if (!ReadValueList(r, arity, &values)) {
        return ErrorResponse("malformed progressive query (expected " +
                             std::to_string(arity) + " values)");
      }
      std::string budget_spec(r.Str());
      if (!r.ok() || !r.Finished()) {
        return ErrorResponse("malformed progressive query budget");
      }
      core::Budget budget;
      Status status = core::Budget::Parse(budget_spec, &budget);
      if (!status.ok()) return ErrorResponse(status.message());
      std::vector<CandidateService::ScoredCandidate> candidates;
      status = service_->QueryProgressive(values, budget, &candidates);
      if (!status.ok()) return ErrorResponse(status.message());
      w.U8(kStatusOk);
      w.U32(static_cast<uint32_t>(candidates.size()));
      for (const CandidateService::ScoredCandidate& c : candidates) {
        w.U32(c.id);
        uint64_t bits;
        static_assert(sizeof(bits) == sizeof(c.score));
        std::memcpy(&bits, &c.score, sizeof(bits));
        w.U64(bits);
      }
      return w.bytes();
    }
  }
  return ErrorResponse("unknown opcode " + std::to_string(op));
  }();

  op_metrics.seconds->Observe(timer.Seconds());
  op_metrics.requests->Add(1);
  return response;
}

}  // namespace sablock::service
