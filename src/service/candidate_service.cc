#include "service/candidate_service.h"

#include <algorithm>
#include <mutex>
#include <set>
#include <utility>

#include "common/check.h"
#include "common/string_util.h"
#include "common/timer.h"
#include "index/index_registry.h"

namespace sablock::service {

Status CandidateService::Make(data::Schema schema,
                              const std::string& index_spec,
                              std::unique_ptr<CandidateService>* out) {
  out->reset();
  std::unique_ptr<index::IncrementalIndex> idx;
  Status s = index::IndexRegistry::Global().Create(index_spec, &idx);
  if (!s.ok()) return s;
  s = idx->Bind(schema);
  if (!s.ok()) return s;
  out->reset(new CandidateService(std::move(schema), std::move(idx)));
  return Status::Ok();
}

CandidateService::CandidateService(
    data::Schema schema, std::unique_ptr<index::IncrementalIndex> idx)
    : schema_(schema), dataset_(std::move(schema)), index_(std::move(idx)) {
  obs::MetricsRegistry& registry = obs::MetricsRegistry::Global();
  insert_seconds_ = registry.GetHistogram(
      "index_insert_seconds", "incremental-index insert latency (lock held)",
      obs::Histogram::LatencyBuckets(), "index", index_->name());
  query_seconds_ = registry.GetHistogram(
      "index_query_seconds", "incremental-index query latency (lock held)",
      obs::Histogram::LatencyBuckets(), "index", index_->name());
}

data::RecordId CandidateService::Insert(
    std::span<const std::string_view> values) {
  SABLOCK_CHECK_MSG(values.size() == schema_.size(),
                    "value count does not match the schema");
  std::unique_lock lock(mu_);
  WallTimer timer;
  data::RecordId id = dataset_.AddRow(values);
  // Index the arena-backed copy, not the caller's views: index-internal
  // state must not outlive the caller's buffers.
  index_->Insert(id, dataset_.Values(id));
  insert_seconds_->Observe(timer.Seconds());
  inserts_.fetch_add(1, std::memory_order_relaxed);
  return id;
}

size_t CandidateService::Preload(const data::Dataset& dataset) {
  SABLOCK_CHECK_MSG(dataset.schema().size() == schema_.size(),
                    "preload dataset schema does not match the service");
  std::unique_lock lock(mu_);
  for (data::RecordId id = 0; id < dataset.size(); ++id) {
    data::RecordId assigned =
        dataset_.AddRow(dataset.Values(id), dataset.entity(id));
    index_->Insert(assigned, dataset_.Values(assigned));
  }
  inserts_.fetch_add(dataset.size(), std::memory_order_relaxed);
  return dataset.size();
}

std::vector<data::RecordId> CandidateService::Query(
    std::span<const std::string_view> values) const {
  SABLOCK_CHECK_MSG(values.size() == schema_.size(),
                    "value count does not match the schema");
  std::shared_lock lock(mu_);
  queries_.fetch_add(1, std::memory_order_relaxed);
  WallTimer timer;
  std::vector<data::RecordId> ids = index_->Query(values);
  query_seconds_->Observe(timer.Seconds());
  return ids;
}

namespace {

/// Normalized token set of a row, the scoring unit of QueryProgressive.
std::set<std::string> TokenSet(std::span<const std::string_view> values) {
  std::set<std::string> tokens;
  for (std::string_view value : values) {
    for (std::string& token : SplitWords(NormalizeForMatching(value))) {
      tokens.insert(std::move(token));
    }
  }
  return tokens;
}

double TokenJaccard(const std::set<std::string>& probe,
                    const std::set<std::string>& row) {
  if (probe.empty() || row.empty()) return 0.0;
  size_t common = 0;
  for (const std::string& token : probe) common += row.count(token);
  size_t unioned = probe.size() + row.size() - common;
  return unioned > 0
             ? static_cast<double>(common) / static_cast<double>(unioned)
             : 0.0;
}

}  // namespace

Status CandidateService::QueryProgressive(
    std::span<const std::string_view> values, const core::Budget& budget,
    std::vector<ScoredCandidate>* out) const {
  SABLOCK_CHECK_MSG(values.size() == schema_.size(),
                    "value count does not match the schema");
  out->clear();
  if (budget.recall_target > 0.0) {
    return Status::Error(
        "budget term 'recall-target' needs ground truth and is eval-only; "
        "use pairs= and/or seconds= for serving");
  }
  std::shared_lock lock(mu_);
  queries_.fetch_add(1, std::memory_order_relaxed);
  WallTimer timer;
  core::BudgetMeter meter(budget);  // arms the seconds deadline
  std::vector<data::RecordId> ids = index_->Query(values);
  const std::set<std::string> probe = TokenSet(values);
  out->reserve(ids.size());
  for (data::RecordId id : ids) {
    if (meter.budget().seconds > 0.0 && meter.Exhausted()) break;
    out->push_back({id, TokenJaccard(probe, TokenSet(dataset_.Values(id)))});
  }
  // Best first, deterministically: the budget keeps the highest-value
  // prefix of the comparison order, which is the whole point.
  std::sort(out->begin(), out->end(),
            [](const ScoredCandidate& x, const ScoredCandidate& y) {
              if (x.score != y.score) return x.score > y.score;
              return x.id < y.id;
            });
  if (out->size() > budget.pairs) {
    out->resize(static_cast<size_t>(budget.pairs));
  }
  query_seconds_->Observe(timer.Seconds());
  return Status::Ok();
}

bool CandidateService::Remove(data::RecordId id) {
  std::unique_lock lock(mu_);
  bool removed = index_->Remove(id);
  if (removed) removes_.fetch_add(1, std::memory_order_relaxed);
  return removed;
}

void CandidateService::EmitBlocks(core::BlockSink& sink) const {
  std::shared_lock lock(mu_);
  index_->EmitBlocks(sink);
}

ServiceStats CandidateService::stats() const {
  std::shared_lock lock(mu_);
  ServiceStats s;
  s.records = index_->size();
  s.inserts = inserts_.load(std::memory_order_relaxed);
  s.queries = queries_.load(std::memory_order_relaxed);
  s.removes = removes_.load(std::memory_order_relaxed);
  s.index_name = index_->name();
  return s;
}

}  // namespace sablock::service
