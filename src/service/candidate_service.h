#ifndef SABLOCK_SERVICE_CANDIDATE_SERVICE_H_
#define SABLOCK_SERVICE_CANDIDATE_SERVICE_H_

#include <atomic>
#include <memory>
#include <shared_mutex>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "core/block_sink.h"
#include "core/budget.h"
#include "data/record.h"
#include "index/incremental_index.h"
#include "obs/metrics.h"
#include "service/protocol.h"

namespace sablock::service {

/// Thread-safe candidate store: a mutable Dataset plus the incremental
/// index over it, behind one reader/writer lock. Inserts take the
/// exclusive side (they mutate dataset and index together); queries,
/// stats and block emission share the read side. This is the in-process
/// core the socket server (and the latency bench) drive.
class CandidateService {
 public:
  /// Builds the service: creates the index from `index_spec` via the
  /// IndexRegistry and binds it to `schema`.
  static Status Make(data::Schema schema, const std::string& index_spec,
                     std::unique_ptr<CandidateService>* out);

  /// Appends the record and indexes it; returns the assigned record id.
  /// `values` must be aligned with schema().
  data::RecordId Insert(std::span<const std::string_view> values);

  /// Bulk-inserts every record of `dataset` (schemas must match) under a
  /// single exclusive lock — the warm-start path for sablock_serve
  /// --snapshot, where per-record locking and per-insert histogram
  /// samples would only slow the startup down. Returns the number of
  /// records inserted.
  size_t Preload(const data::Dataset& dataset);

  /// Candidate ids for a probe (see IncrementalIndex::Query).
  std::vector<data::RecordId> Query(
      std::span<const std::string_view> values) const;

  /// One scored candidate of a progressive query: a record the probe
  /// should be compared against, with the serving-side priority score
  /// (token Jaccard between probe and stored row; higher = likelier).
  struct ScoredCandidate {
    data::RecordId id = 0;
    double score = 0.0;
  };

  /// Budget-aware query: ranks the index's candidates for the probe
  /// best-first and returns at most `budget.pairs` of them (a pair here
  /// is one probe-vs-record comparison), stopping early on a `seconds`
  /// deadline. `recall-target` budgets are eval-only and rejected. Order
  /// is deterministic: score descending, id ascending on ties.
  Status QueryProgressive(std::span<const std::string_view> values,
                          const core::Budget& budget,
                          std::vector<ScoredCandidate>* out) const;

  /// Un-indexes a record; false if not live. The dataset row remains (ids
  /// are append-only positions), it just stops matching probes.
  bool Remove(data::RecordId id);

  /// Streams the index's current blocks into `sink`.
  void EmitBlocks(core::BlockSink& sink) const;

  ServiceStats stats() const;

  const data::Schema& schema() const { return schema_; }

 private:
  CandidateService(data::Schema schema,
                   std::unique_ptr<index::IncrementalIndex> idx);

  data::Schema schema_;
  mutable std::shared_mutex mu_;
  data::Dataset dataset_;                           // guarded by mu_
  std::unique_ptr<index::IncrementalIndex> index_;  // guarded by mu_
  std::atomic<uint64_t> inserts_{0};
  mutable std::atomic<uint64_t> queries_{0};  // counted in const Query
  std::atomic<uint64_t> removes_{0};
  // Per-index latency families, labeled by the bound index's name and
  // resolved once at construction (registry pointers are stable).
  obs::Histogram* insert_seconds_;
  obs::Histogram* query_seconds_;
};

}  // namespace sablock::service

#endif  // SABLOCK_SERVICE_CANDIDATE_SERVICE_H_
