#ifndef SABLOCK_SERVICE_CLIENT_H_
#define SABLOCK_SERVICE_CLIENT_H_

#include <span>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/status.h"
#include "data/record.h"
#include "obs/span.h"
#include "service/protocol.h"

namespace sablock::service {

/// Blocking client for the candidate server: one Unix-socket connection,
/// one in-flight request at a time. Not thread-safe; use one client per
/// thread (the server handles each connection independently).
class CandidateClient {
 public:
  CandidateClient() = default;
  ~CandidateClient();

  CandidateClient(CandidateClient&& other) noexcept;
  CandidateClient& operator=(CandidateClient&& other) noexcept;
  CandidateClient(const CandidateClient&) = delete;
  CandidateClient& operator=(const CandidateClient&) = delete;

  /// Connects to a server's socket path.
  static Status Connect(const std::string& socket_path,
                        CandidateClient* out);

  bool connected() const { return fd_ >= 0; }
  void Close();

  /// Inserts one record; returns the server-assigned record id.
  Status Insert(std::span<const std::string_view> values,
                data::RecordId* id);

  /// Candidate ids for one probe.
  Status Query(std::span<const std::string_view> values,
               std::vector<data::RecordId>* candidates);

  /// Budget-aware query: scored candidates best-first under `budget_spec`
  /// (core::Budget grammar, e.g. "pairs=100"; empty = unlimited). Each
  /// result is (record id, serving-side priority score).
  Status QueryProgressive(
      std::span<const std::string_view> values, const std::string& budget_spec,
      std::vector<std::pair<data::RecordId, double>>* candidates);

  /// Candidate ids for many probes in one round trip.
  Status BatchQuery(
      const std::vector<std::vector<std::string>>& probes,
      std::vector<std::vector<data::RecordId>>* candidates);

  /// Un-indexes a record; `*removed` reports whether it was live.
  Status Remove(data::RecordId id, bool* removed);

  Status Stats(ServiceStats* stats);

  /// The server process's metrics snapshot in Prometheus text format.
  Status Metrics(std::string* text);

  /// When on, every request carries a fresh trace id (kTracedOpBit), so
  /// the server's spans for it are correlatable via last_trace_id().
  /// Off by default — traced opcodes are rejected by pre-tracing servers.
  void EnableTracing(bool on) { tracing_ = on; }

  /// Trace id stamped on the most recent traced request (0 before one).
  obs::TraceId last_trace_id() const { return last_trace_; }

 private:
  /// Writes the opcode (with the trace prefix when tracing) into `w`.
  void BeginRequest(Op op, WireWriter* w);

  /// One request/response round trip; decodes an error response into the
  /// returned status and leaves `*reader` positioned after the ok byte.
  Status Call(const WireWriter& request, std::string* response);

  int fd_ = -1;
  bool tracing_ = false;
  obs::TraceId last_trace_ = 0;
};

}  // namespace sablock::service

#endif  // SABLOCK_SERVICE_CLIENT_H_
