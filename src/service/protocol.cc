#include "service/protocol.h"

#include <sys/socket.h>
#include <sys/types.h>

#include <cstring>

namespace sablock::service {

void WireWriter::U32(uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    buf_.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}

void WireWriter::U64(uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    buf_.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}

void WireWriter::Str(std::string_view s) {
  U32(static_cast<uint32_t>(s.size()));
  buf_.append(s);
}

const unsigned char* WireReader::Take(size_t n) {
  if (!ok_ || data_.size() - pos_ < n) {
    ok_ = false;
    return nullptr;
  }
  const auto* p =
      reinterpret_cast<const unsigned char*>(data_.data()) + pos_;
  pos_ += n;
  return p;
}

uint8_t WireReader::U8() {
  const unsigned char* p = Take(1);
  return p ? p[0] : 0;
}

uint32_t WireReader::U32() {
  const unsigned char* p = Take(4);
  if (!p) return 0;
  uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= static_cast<uint32_t>(p[i]) << (8 * i);
  return v;
}

uint64_t WireReader::U64() {
  const unsigned char* p = Take(8);
  if (!p) return 0;
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= static_cast<uint64_t>(p[i]) << (8 * i);
  return v;
}

std::string_view WireReader::Str() {
  uint32_t len = U32();
  const unsigned char* p = Take(len);
  if (!p) return {};
  return {reinterpret_cast<const char*>(p), len};
}

namespace {

/// send() with MSG_NOSIGNAL so a peer hangup surfaces as EPIPE instead of
/// killing the process; loops over short writes.
bool SendAll(int fd, const char* data, size_t len) {
  while (len > 0) {
    ssize_t n = ::send(fd, data, len, MSG_NOSIGNAL);
    if (n <= 0) return false;
    data += n;
    len -= static_cast<size_t>(n);
  }
  return true;
}

bool RecvAll(int fd, char* data, size_t len) {
  while (len > 0) {
    ssize_t n = ::recv(fd, data, len, 0);
    if (n <= 0) return false;
    data += n;
    len -= static_cast<size_t>(n);
  }
  return true;
}

}  // namespace

bool WriteFrame(int fd, std::string_view payload) {
  if (payload.size() > kMaxFrameBytes) return false;
  char header[4];
  uint32_t len = static_cast<uint32_t>(payload.size());
  for (int i = 0; i < 4; ++i) {
    header[i] = static_cast<char>((len >> (8 * i)) & 0xff);
  }
  return SendAll(fd, header, sizeof(header)) &&
         SendAll(fd, payload.data(), payload.size());
}

bool ReadFrame(int fd, std::string* payload) {
  unsigned char header[4];
  if (!RecvAll(fd, reinterpret_cast<char*>(header), sizeof(header))) {
    return false;
  }
  uint32_t len = 0;
  for (int i = 0; i < 4; ++i) {
    len |= static_cast<uint32_t>(header[i]) << (8 * i);
  }
  if (len > kMaxFrameBytes) return false;
  payload->resize(len);
  return len == 0 || RecvAll(fd, payload->data(), len);
}

}  // namespace sablock::service
