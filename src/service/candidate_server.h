#ifndef SABLOCK_SERVICE_CANDIDATE_SERVER_H_
#define SABLOCK_SERVICE_CANDIDATE_SERVER_H_

#include <atomic>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <thread>

#include "common/status.h"
#include "engine/thread_pool.h"
#include "obs/metrics.h"
#include "service/candidate_service.h"
#include "service/protocol.h"

namespace sablock::service {

/// Long-lived candidate server: listens on a Unix-domain socket, accepts
/// connections on a dedicated thread, and serves each connection's
/// request loop on an engine::ThreadPool worker. All state lives in the
/// wrapped CandidateService; the server only does framing and dispatch.
class CandidateServer {
 public:
  /// `num_threads` sizes the worker pool (and therefore the number of
  /// concurrently served connections; further connections queue).
  CandidateServer(CandidateService* service, std::string socket_path,
                  int num_threads);

  /// Stops the server if still running.
  ~CandidateServer();

  CandidateServer(const CandidateServer&) = delete;
  CandidateServer& operator=(const CandidateServer&) = delete;

  /// Binds the socket (removing a stale file at the path), listens, and
  /// starts the accept thread.
  Status Start();

  /// Shuts down the listener, drains open connections (in-flight
  /// requests finish and their responses are written; only the read side
  /// is shut down), then joins all threads and unlinks the socket file.
  /// Idempotent.
  void Stop();

  const std::string& socket_path() const { return socket_path_; }

 private:
  void AcceptLoop();
  void ServeConnection(int fd);
  /// Builds the response payload for one request payload.
  std::string Handle(std::string_view request) const;

  CandidateService* service_;  // not owned
  std::string socket_path_;
  obs::Gauge* inflight_;  // requests currently being handled
  engine::ThreadPool pool_;
  int listen_fd_ = -1;
  std::thread accept_thread_;
  std::atomic<bool> running_{false};  // written by Stop, read by AcceptLoop

  std::mutex conn_mu_;
  std::set<int> connections_;  // open connection fds, for Stop()
};

}  // namespace sablock::service

#endif  // SABLOCK_SERVICE_CANDIDATE_SERVER_H_
