#include "service/client.h"

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cstring>
#include <utility>

namespace sablock::service {

namespace {

void AppendValueList(std::span<const std::string_view> values,
                     WireWriter* w) {
  w->U32(static_cast<uint32_t>(values.size()));
  for (std::string_view v : values) w->Str(v);
}

Status ReadIdList(WireReader& r, std::vector<data::RecordId>* ids) {
  uint32_t count = r.U32();
  if (!r.ok()) return Status::Error("short candidate list");
  ids->clear();
  ids->reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    ids->push_back(r.U32());
  }
  if (!r.ok()) return Status::Error("short candidate list");
  return Status::Ok();
}

}  // namespace

CandidateClient::~CandidateClient() { Close(); }

CandidateClient::CandidateClient(CandidateClient&& other) noexcept
    : fd_(std::exchange(other.fd_, -1)) {}

CandidateClient& CandidateClient::operator=(
    CandidateClient&& other) noexcept {
  if (this != &other) {
    Close();
    fd_ = std::exchange(other.fd_, -1);
  }
  return *this;
}

void CandidateClient::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

Status CandidateClient::Connect(const std::string& socket_path,
                                CandidateClient* out) {
  out->Close();
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (socket_path.size() >= sizeof(addr.sun_path)) {
    return Status::Error("socket path too long: " + socket_path);
  }
  std::memcpy(addr.sun_path, socket_path.c_str(), socket_path.size() + 1);
  int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) return Status::Error("socket() failed");
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return Status::Error("connect() failed for " + socket_path);
  }
  out->fd_ = fd;
  return Status::Ok();
}

void CandidateClient::BeginRequest(Op op, WireWriter* w) {
  if (!tracing_) {
    w->U8(static_cast<uint8_t>(op));
    return;
  }
  last_trace_ = obs::NextTraceId();
  w->U8(static_cast<uint8_t>(op) | kTracedOpBit);
  w->U64(last_trace_);
}

Status CandidateClient::Call(const WireWriter& request,
                             std::string* response) {
  if (fd_ < 0) return Status::Error("client not connected");
  if (!WriteFrame(fd_, request.bytes())) {
    Close();
    return Status::Error("connection lost while sending");
  }
  if (!ReadFrame(fd_, response)) {
    Close();
    return Status::Error("connection lost while receiving");
  }
  return Status::Ok();
}

/// Consumes the status byte; on an error response, decodes the message.
static Status CheckResponse(WireReader& r) {
  uint8_t status = r.U8();
  if (!r.ok()) return Status::Error("empty response");
  if (status == kStatusOk) return Status::Ok();
  std::string_view message = r.Str();
  return Status::Error("server error: " + std::string(message));
}

Status CandidateClient::Insert(std::span<const std::string_view> values,
                               data::RecordId* id) {
  WireWriter w;
  BeginRequest(Op::kInsert, &w);
  AppendValueList(values, &w);
  std::string response;
  Status s = Call(w, &response);
  if (!s.ok()) return s;
  WireReader r(response);
  s = CheckResponse(r);
  if (!s.ok()) return s;
  *id = r.U32();
  if (!r.Finished()) return Status::Error("malformed insert response");
  return Status::Ok();
}

Status CandidateClient::Query(std::span<const std::string_view> values,
                              std::vector<data::RecordId>* candidates) {
  WireWriter w;
  BeginRequest(Op::kQuery, &w);
  AppendValueList(values, &w);
  std::string response;
  Status s = Call(w, &response);
  if (!s.ok()) return s;
  WireReader r(response);
  s = CheckResponse(r);
  if (!s.ok()) return s;
  s = ReadIdList(r, candidates);
  if (!s.ok()) return s;
  if (!r.Finished()) return Status::Error("malformed query response");
  return Status::Ok();
}

Status CandidateClient::QueryProgressive(
    std::span<const std::string_view> values, const std::string& budget_spec,
    std::vector<std::pair<data::RecordId, double>>* candidates) {
  WireWriter w;
  BeginRequest(Op::kQueryProgressive, &w);
  AppendValueList(values, &w);
  w.Str(budget_spec);
  std::string response;
  Status s = Call(w, &response);
  if (!s.ok()) return s;
  WireReader r(response);
  s = CheckResponse(r);
  if (!s.ok()) return s;
  uint32_t count = r.U32();
  candidates->clear();
  candidates->reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    data::RecordId id = r.U32();
    uint64_t bits = r.U64();
    double score;
    static_assert(sizeof(bits) == sizeof(score));
    std::memcpy(&score, &bits, sizeof(score));
    candidates->emplace_back(id, score);
  }
  if (!r.Finished()) {
    return Status::Error("malformed progressive query response");
  }
  return Status::Ok();
}

Status CandidateClient::BatchQuery(
    const std::vector<std::vector<std::string>>& probes,
    std::vector<std::vector<data::RecordId>>* candidates) {
  WireWriter w;
  BeginRequest(Op::kBatchQuery, &w);
  w.U32(static_cast<uint32_t>(probes.size()));
  for (const std::vector<std::string>& probe : probes) {
    w.U32(static_cast<uint32_t>(probe.size()));
    for (const std::string& v : probe) w.Str(v);
  }
  std::string response;
  Status s = Call(w, &response);
  if (!s.ok()) return s;
  WireReader r(response);
  s = CheckResponse(r);
  if (!s.ok()) return s;
  uint32_t count = r.U32();
  if (!r.ok() || count != probes.size()) {
    return Status::Error("malformed batch-query response");
  }
  candidates->assign(count, {});
  for (uint32_t i = 0; i < count; ++i) {
    s = ReadIdList(r, &(*candidates)[i]);
    if (!s.ok()) return s;
  }
  if (!r.Finished()) return Status::Error("malformed batch-query response");
  return Status::Ok();
}

Status CandidateClient::Remove(data::RecordId id, bool* removed) {
  WireWriter w;
  BeginRequest(Op::kRemove, &w);
  w.U32(id);
  std::string response;
  Status s = Call(w, &response);
  if (!s.ok()) return s;
  WireReader r(response);
  s = CheckResponse(r);
  if (!s.ok()) return s;
  *removed = r.U8() != 0;
  if (!r.Finished()) return Status::Error("malformed remove response");
  return Status::Ok();
}

Status CandidateClient::Stats(ServiceStats* stats) {
  WireWriter w;
  BeginRequest(Op::kStats, &w);
  std::string response;
  Status s = Call(w, &response);
  if (!s.ok()) return s;
  WireReader r(response);
  s = CheckResponse(r);
  if (!s.ok()) return s;
  stats->records = r.U64();
  stats->inserts = r.U64();
  stats->queries = r.U64();
  stats->removes = r.U64();
  stats->index_name = std::string(r.Str());
  if (!r.Finished()) return Status::Error("malformed stats response");
  return Status::Ok();
}

Status CandidateClient::Metrics(std::string* text) {
  WireWriter w;
  BeginRequest(Op::kMetrics, &w);
  std::string response;
  Status s = Call(w, &response);
  if (!s.ok()) return s;
  WireReader r(response);
  s = CheckResponse(r);
  if (!s.ok()) return s;
  *text = std::string(r.Str());
  if (!r.Finished()) return Status::Error("malformed metrics response");
  return Status::Ok();
}

}  // namespace sablock::service
