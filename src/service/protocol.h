#ifndef SABLOCK_SERVICE_PROTOCOL_H_
#define SABLOCK_SERVICE_PROTOCOL_H_

#include <cstdint>
#include <string>
#include <string_view>

namespace sablock::service {

/// Wire protocol of the candidate server, shared by server and client.
///
/// Framing: every message (request or response) is one frame —
///
///   uint32 little-endian payload length | payload bytes
///
/// A request payload starts with a 1-byte opcode followed by the
/// operation body; a response payload starts with a 1-byte status code
/// (0 = ok, 1 = error). All integers are little-endian; strings and
/// attribute values are uint32-length-prefixed byte strings. Record-id
/// lists are a uint32 count followed by that many uint32 ids.
///
/// Tracing: a request whose opcode byte has kTracedOpBit set carries a
/// uint64 trace id between the opcode and the body. The server tags the
/// request's obs spans with it, so one id correlates client-side timing
/// with the server's span timeline. Untraced requests (bit clear) are
/// unchanged — old clients keep working.
///
/// Bodies (request -> ok-response):
///   kInsert:     value list            -> uint32 assigned record id
///   kQuery:      value list            -> record-id list
///   kBatchQuery: uint32 n, n x value list -> n x record-id list
///   kStats:      (empty)               -> uint64 records, inserts,
///                                         queries, removes; index name
///   kRemove:     uint32 record id      -> uint8 removed (0/1)
///   kMetrics:    (empty)               -> string: the server process's
///                                         metrics snapshot in Prometheus
///                                         text exposition format (the
///                                         "STATS" verb of the CLI)
///   kQueryProgressive: value list, budget spec string (core::Budget
///                grammar, e.g. "pairs=100"; empty = unlimited)
///                                       -> uint32 count, count x
///                                         (uint32 id, uint64 score bits —
///                                         an IEEE double, best first)
enum class Op : uint8_t {
  kInsert = 1,
  kQuery = 2,
  kBatchQuery = 3,
  kStats = 4,
  kRemove = 5,
  kMetrics = 6,
  kQueryProgressive = 7,
};

/// Opcode flag marking a traced request (uint64 trace id follows the
/// opcode byte). The low 7 bits remain the Op.
inline constexpr uint8_t kTracedOpBit = 0x80;

/// Response status codes.
inline constexpr uint8_t kStatusOk = 0;
inline constexpr uint8_t kStatusError = 1;

/// Frames larger than this are treated as protocol corruption and close
/// the connection.
inline constexpr uint32_t kMaxFrameBytes = 64u << 20;

/// Counters reported by the kStats operation.
struct ServiceStats {
  uint64_t records = 0;  ///< live (inserted minus removed) records
  uint64_t inserts = 0;
  uint64_t queries = 0;  ///< single probes, batch probes counted each
  uint64_t removes = 0;
  std::string index_name;
};

/// Append-only payload builder.
class WireWriter {
 public:
  void U8(uint8_t v) { buf_.push_back(static_cast<char>(v)); }
  void U32(uint32_t v);
  void U64(uint64_t v);
  void Str(std::string_view s);  // uint32 length + bytes

  const std::string& bytes() const { return buf_; }

 private:
  std::string buf_;
};

/// Cursor over a received payload. Out-of-bounds reads latch !ok() and
/// return zeros/empties; callers validate once at the end.
class WireReader {
 public:
  explicit WireReader(std::string_view data) : data_(data) {}

  uint8_t U8();
  uint32_t U32();
  uint64_t U64();
  std::string_view Str();

  bool ok() const { return ok_; }
  /// True when the payload was fully consumed without under-runs.
  bool Finished() const { return ok_ && pos_ == data_.size(); }

 private:
  const unsigned char* Take(size_t n);

  std::string_view data_;
  size_t pos_ = 0;
  bool ok_ = true;
};

/// Writes one length-prefixed frame to `fd`; false on any write error.
bool WriteFrame(int fd, std::string_view payload);

/// Reads one frame from `fd` into `*payload`. False on clean EOF before
/// a header, any read error, a short frame, or an oversize length.
bool ReadFrame(int fd, std::string* payload);

}  // namespace sablock::service

#endif  // SABLOCK_SERVICE_PROTOCOL_H_
