#include "eval/harness.h"

#include <algorithm>
#include <cstdio>

#include "common/check.h"
#include "common/timer.h"
#include "engine/sharded_executor.h"
#include "engine/thread_pool.h"

namespace sablock::eval {

TechniqueResult RunTechnique(const core::BlockingTechnique& technique,
                             const data::Dataset& dataset) {
  TechniqueResult result;
  result.name = technique.name();
  // Time against a detached feature cache: the harness exists to compare
  // techniques, and a shared warm FeatureStore would bias the time column
  // toward whichever technique runs later (cache reuse is benchmarked
  // explicitly in bench_micro, not implicitly here).
  data::Dataset cold = dataset.ColdCopy();
  sablock::WallTimer timer;
  core::BlockCollection blocks;
  technique.Run(cold, blocks);
  result.seconds = timer.Seconds();
  result.metrics = Evaluate(dataset, blocks);
  return result;
}

TechniqueResult RunTechniqueSharded(const core::BlockingTechnique& technique,
                                    const data::Dataset& dataset,
                                    const engine::ExecutionSpec& spec) {
  TechniqueResult result;
  result.name = technique.name();
  engine::ShardedExecutor executor(spec);
  // Same cold-path timing as RunTechnique; the run's shards still share
  // one feature build through the cold copy's own store.
  data::Dataset cold = dataset.ColdCopy();
  sablock::WallTimer timer;
  core::BlockCollection blocks = executor.ExecuteCollect(technique, cold);
  result.seconds = timer.Seconds();
  result.metrics = Evaluate(dataset, blocks);
  return result;
}

std::vector<TechniqueResult> RunAll(
    const std::vector<std::unique_ptr<core::BlockingTechnique>>& settings,
    const data::Dataset& dataset) {
  std::vector<TechniqueResult> results;
  results.reserve(settings.size());
  for (const auto& technique : settings) {
    results.push_back(RunTechnique(*technique, dataset));
  }
  return results;
}

std::vector<TechniqueResult> RunAllParallel(
    const std::vector<std::unique_ptr<core::BlockingTechnique>>& settings,
    const data::Dataset& dataset, int threads) {
  std::vector<TechniqueResult> results(settings.size());
  engine::ThreadPool pool(threads);
  for (size_t i = 0; i < settings.size(); ++i) {
    const core::BlockingTechnique* technique = settings[i].get();
    TechniqueResult* out = &results[i];
    pool.Submit([technique, &dataset, out] {
      *out = RunTechnique(*technique, dataset);
    });
  }
  pool.Wait();
  return results;
}

size_t BestByFm(const std::vector<TechniqueResult>& results) {
  size_t best = 0;
  for (size_t i = 1; i < results.size(); ++i) {
    if (results[i].metrics.fm > results[best].metrics.fm) best = i;
  }
  return best;
}

TablePrinter::TablePrinter(std::vector<std::string> headers)
    : headers_(std::move(headers)) {}

void TablePrinter::AddRow(std::vector<std::string> cells) {
  // A row wider than the header is a caller bug (the extra cells would
  // vanish from the printed table); short rows are padded with empties.
  SABLOCK_CHECK_MSG(cells.size() <= headers_.size(),
                    "TablePrinter::AddRow: more cells than headers");
  cells.resize(headers_.size());
  rows_.push_back(std::move(cells));
}

void TablePrinter::Print() const {
  std::vector<size_t> widths(headers_.size());
  for (size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
    for (const auto& row : rows_) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto print_row = [&](const std::vector<std::string>& cells) {
    std::string line;
    for (size_t c = 0; c < cells.size(); ++c) {
      line += cells[c];
      line.append(widths[c] - cells[c].size() + 2, ' ');
    }
    std::printf("%s\n", line.c_str());
  };
  print_row(headers_);
  std::string rule;
  for (size_t c = 0; c < headers_.size(); ++c) {
    rule.append(widths[c], '-');
    rule.append(2, ' ');
  }
  std::printf("%s\n", rule.c_str());
  for (const auto& row : rows_) print_row(row);
}

}  // namespace sablock::eval
