#include "eval/harness.h"

#include <algorithm>
#include <cstdio>

#include "common/check.h"
#include "common/timer.h"

namespace sablock::eval {

TechniqueResult RunTechnique(const core::BlockingTechnique& technique,
                             const data::Dataset& dataset) {
  TechniqueResult result;
  result.name = technique.name();
  sablock::WallTimer timer;
  core::BlockCollection blocks = technique.Run(dataset);
  result.seconds = timer.Seconds();
  result.metrics = Evaluate(dataset, blocks);
  return result;
}

std::vector<TechniqueResult> RunAll(
    const std::vector<std::unique_ptr<core::BlockingTechnique>>& settings,
    const data::Dataset& dataset) {
  std::vector<TechniqueResult> results;
  results.reserve(settings.size());
  for (const auto& technique : settings) {
    results.push_back(RunTechnique(*technique, dataset));
  }
  return results;
}

size_t BestByFm(const std::vector<TechniqueResult>& results) {
  size_t best = 0;
  for (size_t i = 1; i < results.size(); ++i) {
    if (results[i].metrics.fm > results[best].metrics.fm) best = i;
  }
  return best;
}

TablePrinter::TablePrinter(std::vector<std::string> headers)
    : headers_(std::move(headers)) {}

void TablePrinter::AddRow(std::vector<std::string> cells) {
  // A row wider than the header is a caller bug (the extra cells would
  // vanish from the printed table); short rows are padded with empties.
  SABLOCK_CHECK_MSG(cells.size() <= headers_.size(),
                    "TablePrinter::AddRow: more cells than headers");
  cells.resize(headers_.size());
  rows_.push_back(std::move(cells));
}

void TablePrinter::Print() const {
  std::vector<size_t> widths(headers_.size());
  for (size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
    for (const auto& row : rows_) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto print_row = [&](const std::vector<std::string>& cells) {
    std::string line;
    for (size_t c = 0; c < cells.size(); ++c) {
      line += cells[c];
      line.append(widths[c] - cells[c].size() + 2, ' ');
    }
    std::printf("%s\n", line.c_str());
  };
  print_row(headers_);
  std::string rule;
  for (size_t c = 0; c < headers_.size(); ++c) {
    rule.append(widths[c], '-');
    rule.append(2, ' ');
  }
  std::printf("%s\n", rule.c_str());
  for (const auto& row : rows_) print_row(row);
}

}  // namespace sablock::eval
