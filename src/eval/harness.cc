#include "eval/harness.h"

#include <algorithm>
#include <cstdio>

#include "common/check.h"
#include "common/timer.h"
#include "engine/sharded_executor.h"
#include "engine/thread_pool.h"

namespace sablock::eval {

namespace {

/// Accumulates the wall time spent in everything downstream of itself
/// (Consume and Flush both count). Interposed after every pipeline step,
/// the difference between consecutive timers is that step's exclusive
/// cost.
class TimedSink : public core::BlockSink {
 public:
  explicit TimedSink(core::BlockSink& next) : next_(&next) {}

  void Consume(core::Block block) override {
    WallTimer timer;
    next_->Consume(std::move(block));
    seconds_ += timer.Seconds();
  }

  bool Done() const override { return next_->Done(); }

  void Flush() override {
    WallTimer timer;
    next_->Flush();
    seconds_ += timer.Seconds();
  }

  double seconds() const { return seconds_; }

 private:
  core::BlockSink* next_;
  double seconds_ = 0.0;
};

PipelineResult RunPipelineImpl(const core::BlockingTechnique& blocker,
                               const pipeline::Pipeline& stages,
                               const data::Dataset& dataset,
                               const engine::ExecutionSpec* spec,
                               bool evaluate) {
  PipelineResult result;
  result.name = blocker.name();
  if (!stages.empty()) result.name += " | " + stages.name();

  // Cold-path timing, like RunTechnique: the run pays the full feature
  // build so pipelines are comparable with plain techniques.
  data::Dataset cold = dataset.ColdCopy();

  // Instrumented chain, wired back-to-front:
  //   blocker -> [count0 timed0] -> stage1 -> [count1 timed1] -> ... ->
  //   stageN -> [countN timedN] -> final
  // count_k observes the stream emitted by step k; timed_k measures
  // everything downstream of step k, so step k's exclusive time is
  // timed_{k-1} - timed_k (and the generator's is total - timed_0).
  const size_t num_stages = stages.size();
  std::vector<std::unique_ptr<pipeline::PipelineStage>> chain(num_stages);
  std::vector<std::unique_ptr<TimedSink>> timers(num_stages + 1);
  std::vector<std::unique_ptr<core::PairCountingSink>> counters(
      num_stages + 1);
  core::BlockSink* next = &result.blocks;
  for (size_t k = num_stages + 1; k-- > 0;) {
    timers[k] = std::make_unique<TimedSink>(*next);
    counters[k] = std::make_unique<core::PairCountingSink>(*timers[k]);
    if (k == 0) break;
    chain[k - 1] = stages.stages()[k - 1]->Clone();
    chain[k - 1]->Attach(cold, *counters[k]);
    next = chain[k - 1].get();
  }
  core::BlockSink& head = *counters[0];

  WallTimer timer;
  if (spec != nullptr) {
    engine::ShardedExecutor(*spec).Execute(blocker, cold, head);
  } else {
    blocker.Run(cold, head);
  }
  head.Flush();
  result.seconds = timer.Seconds();

  result.stages.reserve(num_stages + 1);
  double downstream = result.seconds;
  for (size_t k = 0; k <= num_stages; ++k) {
    StageCounts counts;
    counts.name = k == 0 ? blocker.name() : chain[k - 1]->name();
    counts.blocks = counters[k]->num_blocks();
    counts.comparisons = counters[k]->comparisons();
    counts.max_block_size = counters[k]->max_block_size();
    counts.seconds = std::max(0.0, downstream - timers[k]->seconds());
    downstream = timers[k]->seconds();
    result.stages.push_back(std::move(counts));
  }

  if (evaluate) result.metrics = Evaluate(dataset, result.blocks);
  return result;
}

}  // namespace

PipelineResult RunPipeline(const core::BlockingTechnique& blocker,
                           const pipeline::Pipeline& stages,
                           const data::Dataset& dataset, bool evaluate) {
  return RunPipelineImpl(blocker, stages, dataset, nullptr, evaluate);
}

PipelineResult RunPipelineSharded(const core::BlockingTechnique& blocker,
                                  const pipeline::Pipeline& stages,
                                  const data::Dataset& dataset,
                                  const engine::ExecutionSpec& spec,
                                  bool evaluate) {
  return RunPipelineImpl(blocker, stages, dataset, &spec, evaluate);
}

TechniqueResult RunTechnique(const core::BlockingTechnique& technique,
                             const data::Dataset& dataset) {
  TechniqueResult result;
  result.name = technique.name();
  // Time against a detached feature cache: the harness exists to compare
  // techniques, and a shared warm FeatureStore would bias the time column
  // toward whichever technique runs later (cache reuse is benchmarked
  // explicitly in the micro scenario, not implicitly here).
  data::Dataset cold = dataset.ColdCopy();
  sablock::WallTimer timer;
  core::BlockCollection blocks;
  technique.Run(cold, blocks);
  result.seconds = timer.Seconds();
  result.metrics = Evaluate(dataset, blocks);
  return result;
}

TechniqueResult RunTechniqueSharded(const core::BlockingTechnique& technique,
                                    const data::Dataset& dataset,
                                    const engine::ExecutionSpec& spec) {
  TechniqueResult result;
  result.name = technique.name();
  engine::ShardedExecutor executor(spec);
  // Same cold-path timing as RunTechnique; the run's shards still share
  // one feature build through the cold copy's own store.
  data::Dataset cold = dataset.ColdCopy();
  sablock::WallTimer timer;
  core::BlockCollection blocks = executor.ExecuteCollect(technique, cold);
  result.seconds = timer.Seconds();
  result.metrics = Evaluate(dataset, blocks);
  return result;
}

std::vector<TechniqueResult> RunAll(
    const std::vector<std::unique_ptr<core::BlockingTechnique>>& settings,
    const data::Dataset& dataset) {
  std::vector<TechniqueResult> results;
  results.reserve(settings.size());
  for (const auto& technique : settings) {
    results.push_back(RunTechnique(*technique, dataset));
  }
  return results;
}

std::vector<TechniqueResult> RunAllParallel(
    const std::vector<std::unique_ptr<core::BlockingTechnique>>& settings,
    const data::Dataset& dataset, int threads) {
  std::vector<TechniqueResult> results(settings.size());
  engine::ThreadPool pool(threads);
  for (size_t i = 0; i < settings.size(); ++i) {
    const core::BlockingTechnique* technique = settings[i].get();
    TechniqueResult* out = &results[i];
    pool.Submit([technique, &dataset, out] {
      *out = RunTechnique(*technique, dataset);
    });
  }
  pool.Wait();
  return results;
}

size_t BestByFm(const std::vector<TechniqueResult>& results) {
  size_t best = 0;
  for (size_t i = 1; i < results.size(); ++i) {
    if (results[i].metrics.fm > results[best].metrics.fm) best = i;
  }
  return best;
}

TablePrinter::TablePrinter(std::vector<std::string> headers)
    : headers_(std::move(headers)) {}

void TablePrinter::AddRow(std::vector<std::string> cells) {
  // A row wider than the header is a caller bug (the extra cells would
  // vanish from the printed table); short rows are padded with empties.
  SABLOCK_CHECK_MSG(cells.size() <= headers_.size(),
                    "TablePrinter::AddRow: more cells than headers");
  cells.resize(headers_.size());
  rows_.push_back(std::move(cells));
}

void TablePrinter::Print() const {
  std::vector<size_t> widths(headers_.size());
  for (size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
    for (const auto& row : rows_) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto print_row = [&](const std::vector<std::string>& cells) {
    std::string line;
    for (size_t c = 0; c < cells.size(); ++c) {
      line += cells[c];
      line.append(widths[c] - cells[c].size() + 2, ' ');
    }
    std::printf("%s\n", line.c_str());
  };
  print_row(headers_);
  std::string rule;
  for (size_t c = 0; c < headers_.size(); ++c) {
    rule.append(widths[c], '-');
    rule.append(2, ' ');
  }
  std::printf("%s\n", rule.c_str());
  for (const auto& row : rows_) print_row(row);
}

}  // namespace sablock::eval
