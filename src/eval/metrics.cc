#include "eval/metrics.h"

#include <algorithm>

#include "common/string_util.h"

namespace sablock::eval {

double HarmonicMean(double a, double b) {
  if (a <= 0.0 || b <= 0.0) return 0.0;
  return 2.0 * a * b / (a + b);
}

Metrics Evaluate(const data::Dataset& dataset,
                 const core::BlockCollection& blocks) {
  Metrics m;
  m.num_blocks = blocks.NumBlocks();
  m.max_block_size = blocks.MaxBlockSize();
  m.total_comparisons = blocks.TotalComparisons();
  m.ground_truth_pairs = dataset.CountTrueMatchPairs();
  m.all_pairs = dataset.TotalPairs();

  PairSet pairs = blocks.DistinctPairs();
  m.distinct_pairs = pairs.size();
  uint64_t true_pairs = 0;
  pairs.ForEach([&](uint32_t a, uint32_t b) {
    if (dataset.IsMatch(a, b)) ++true_pairs;
  });
  m.true_pairs = true_pairs;

  if (m.ground_truth_pairs > 0) {
    m.pc = static_cast<double>(m.true_pairs) /
           static_cast<double>(m.ground_truth_pairs);
  }
  if (m.distinct_pairs > 0) {
    m.pq = static_cast<double>(m.true_pairs) /
           static_cast<double>(m.distinct_pairs);
  }
  if (m.all_pairs > 0) {
    m.rr = 1.0 - static_cast<double>(m.distinct_pairs) /
                     static_cast<double>(m.all_pairs);
  }
  if (m.total_comparisons > 0) {
    m.pq_star = static_cast<double>(m.true_pairs) /
                static_cast<double>(m.total_comparisons);
  }
  m.fm = HarmonicMean(m.pc, m.pq);
  m.fm_star = HarmonicMean(m.pc, m.pq_star);
  return m;
}

std::vector<double> DefaultRecallFractions() {
  return {0.01, 0.02, 0.05, 0.1, 0.2, 0.3, 0.5, 0.75, 1.0};
}

RecallCurve RecallAtBudget(const data::Dataset& dataset,
                           const std::vector<core::CandidatePair>& ordered,
                           uint64_t budget_pairs,
                           const std::vector<double>& fractions) {
  RecallCurve curve;
  curve.budget_pairs =
      std::min<uint64_t>(budget_pairs, ordered.size());
  const uint64_t ground_truth = dataset.CountTrueMatchPairs();

  // One pass over the emission order: matches found so far is monotone,
  // so each ascending fraction just extends the walk.
  uint64_t found = 0;
  size_t walked = 0;
  for (double fraction : fractions) {
    uint64_t limit = static_cast<uint64_t>(
        fraction * static_cast<double>(curve.budget_pairs) + 0.5);
    limit = std::min<uint64_t>(limit, curve.budget_pairs);
    while (walked < limit) {
      const core::CandidatePair& pair = ordered[walked];
      if (dataset.IsMatch(pair.a, pair.b)) ++found;
      ++walked;
    }
    double recall = ground_truth > 0 ? static_cast<double>(found) /
                                           static_cast<double>(ground_truth)
                                     : 0.0;
    curve.points.push_back({fraction, recall});
    curve.auc += recall;
  }
  if (!curve.points.empty()) {
    curve.auc /= static_cast<double>(curve.points.size());
  }
  return curve;
}

std::string Summary(const Metrics& m) {
  return "PC=" + sablock::FormatDouble(m.pc, 4) +
         " PQ=" + sablock::FormatDouble(m.pq, 4) +
         " RR=" + sablock::FormatDouble(m.rr, 4) +
         " FM=" + sablock::FormatDouble(m.fm, 4) +
         " pairs=" + std::to_string(m.distinct_pairs) +
         " blocks=" + std::to_string(m.num_blocks);
}

}  // namespace sablock::eval
