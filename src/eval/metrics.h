#ifndef SABLOCK_EVAL_METRICS_H_
#define SABLOCK_EVAL_METRICS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "core/blocking.h"
#include "core/pair_sink.h"
#include "data/record.h"

namespace sablock::eval {

/// The blocking-quality measures of Section 6 ("Evaluation measures").
/// With Γ the distinct candidate pairs, Γ_tp the distinct true matches in
/// Γ, Γ_m the redundancy-counting comparisons, Ω all record pairs and
/// Ω_tp all true-match pairs:
///   PC  = |Γ_tp| / |Ω_tp|         (pair completeness)
///   PQ  = |Γ_tp| / |Γ|            (pair quality)
///   RR  = 1 - |Γ| / |Ω|           (reduction ratio)
///   FM  = 2·PC·PQ / (PC + PQ)     (harmonic mean)
///   PQ* = |Γ_tp| / |Γ_m|          (meta-blocking papers' PQ, Fig. 12)
///   FM* = 2·PC·PQ* / (PC + PQ*)
struct Metrics {
  double pc = 0.0;
  double pq = 0.0;
  double rr = 0.0;
  double fm = 0.0;
  double pq_star = 0.0;
  double fm_star = 0.0;

  uint64_t distinct_pairs = 0;      ///< |Γ|
  uint64_t true_pairs = 0;          ///< |Γ_tp|
  uint64_t total_comparisons = 0;   ///< |Γ_m|
  uint64_t ground_truth_pairs = 0;  ///< |Ω_tp|
  uint64_t all_pairs = 0;           ///< |Ω|
  uint64_t num_blocks = 0;
  uint64_t max_block_size = 0;
};

/// Evaluates a block collection against the dataset's ground truth.
Metrics Evaluate(const data::Dataset& dataset,
                 const core::BlockCollection& blocks);

/// Harmonic mean helper (0 when either input is 0).
double HarmonicMean(double a, double b);

/// One sample of a recall@budget curve: after spending `fraction` of the
/// pair budget (comparing the first ⌈fraction·budget⌉ pairs of the
/// emitted order), `recall` of the ground-truth matches were found.
struct RecallPoint {
  double fraction = 0.0;
  double recall = 0.0;
};

/// The recall@budget curve of one progressive emission order — the
/// pay-as-you-go quality profile progressive blocking is judged on. A
/// better scheduler reaches every recall level with fewer comparisons,
/// i.e. its curve dominates (lies above) a worse scheduler's at every
/// fraction.
struct RecallCurve {
  uint64_t budget_pairs = 0;        ///< pairs covered by fraction=1.0
  double auc = 0.0;                 ///< mean recall across the samples
  std::vector<RecallPoint> points;  ///< ascending fraction
};

/// The default budget-fraction ladder sampled by RecallAtBudget.
std::vector<double> DefaultRecallFractions();

/// Walks `ordered` (a scheduler's best-first emission) and samples recall
/// against `dataset`'s ground truth at each fraction of `budget_pairs`
/// (capped at ordered.size()). Fractions must be ascending in (0, 1].
RecallCurve RecallAtBudget(const data::Dataset& dataset,
                           const std::vector<core::CandidatePair>& ordered,
                           uint64_t budget_pairs,
                           const std::vector<double>& fractions);

/// One-line human-readable rendering: "PC=0.97 PQ=0.42 RR=0.99 FM=0.59".
std::string Summary(const Metrics& m);

}  // namespace sablock::eval

#endif  // SABLOCK_EVAL_METRICS_H_
