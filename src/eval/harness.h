#ifndef SABLOCK_EVAL_HARNESS_H_
#define SABLOCK_EVAL_HARNESS_H_

#include <memory>
#include <string>
#include <vector>

#include "core/blocking.h"
#include "engine/execution_spec.h"
#include "eval/metrics.h"
#include "pipeline/pipeline.h"

namespace sablock::eval {

/// The outcome of running one blocking technique (one parameter setting)
/// on one dataset — a row of the Table 3 / Fig. 11 reproductions.
struct TechniqueResult {
  std::string name;
  Metrics metrics;
  double seconds = 0.0;
};

/// Runs a technique, timing block construction (the Table 3 "Time" column
/// measures block building only, as in the paper). Timing is cold-path:
/// the technique runs against a detached feature cache (Dataset::ColdCopy)
/// so the reported seconds are end-to-end and independent of which
/// technique the harness happened to run first.
TechniqueResult RunTechnique(const core::BlockingTechnique& technique,
                             const data::Dataset& dataset);

/// Runs a technique through the sharded execution engine under `spec`,
/// timing the sharded block construction (slice + per-shard runs + merge).
/// With spec {threads=1, shards=1} this is RunTechnique through the
/// engine's fast path.
TechniqueResult RunTechniqueSharded(const core::BlockingTechnique& technique,
                                    const data::Dataset& dataset,
                                    const engine::ExecutionSpec& spec);

/// Observed block stream at one point of a pipeline — what one step
/// (the generator, or one stage) emitted, plus the wall time spent
/// inside that step alone.
struct StageCounts {
  std::string name;             ///< generator/stage name
  uint64_t blocks = 0;          ///< blocks emitted by this step
  uint64_t comparisons = 0;     ///< Σ|b|(|b|-1)/2 emitted
  uint64_t max_block_size = 0;  ///< largest emitted block
  double seconds = 0.0;         ///< exclusive time spent in this step
};

/// The outcome of one pipeline run: per-step counts (element [0] is the
/// generator, then one entry per stage in chain order), the final block
/// collection, its quality metrics and the end-to-end build time.
struct PipelineResult {
  std::string name;
  std::vector<StageCounts> stages;
  core::BlockCollection blocks;
  Metrics metrics;
  double seconds = 0.0;
};

/// Runs a block generator through a pipeline's stage chain with a
/// PairCountingSink interposed after every step, so the result reports
/// how each stage reshaped the block/pair stream and where the time
/// went. Cold-path timing, like RunTechnique. `evaluate=false` skips the
/// quality-metrics pass (a distinct-pair scan over the final blocks,
/// wasted work on all but the last of a timing loop's repetitions) and
/// leaves `metrics` default.
PipelineResult RunPipeline(const core::BlockingTechnique& blocker,
                           const pipeline::Pipeline& stages,
                           const data::Dataset& dataset,
                           bool evaluate = true);

/// RunPipeline with the generator executed by the sharded engine under
/// `spec`; the stage chain runs once, globally, with barrier stages
/// firing at merge (ShardedExecutor::ExecutePipeline semantics).
PipelineResult RunPipelineSharded(const core::BlockingTechnique& blocker,
                                  const pipeline::Pipeline& stages,
                                  const data::Dataset& dataset,
                                  const engine::ExecutionSpec& spec,
                                  bool evaluate = true);

/// Runs every setting and returns all results.
std::vector<TechniqueResult> RunAll(
    const std::vector<std::unique_ptr<core::BlockingTechnique>>& settings,
    const data::Dataset& dataset);

/// RunAll sweeping the settings across a thread pool: each technique runs
/// single-threaded (unsharded, identical blocks to RunAll) but up to
/// `threads` techniques run concurrently. Results keep the input order.
/// Per-technique wall times include scheduling contention, so prefer
/// RunAll when individual timings are the measurement.
std::vector<TechniqueResult> RunAllParallel(
    const std::vector<std::unique_ptr<core::BlockingTechnique>>& settings,
    const data::Dataset& dataset, int threads);

/// Index of the result with the highest FM (the paper reports each
/// technique at its best-performing setting). Returns 0 for empty input.
size_t BestByFm(const std::vector<TechniqueResult>& results);

/// Fixed-width console table writer used by the bench binaries to print
/// paper-style tables.
class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> headers);

  /// Adds a row. Rows shorter than the header are padded with empty
  /// cells; rows longer than the header CHECK-fail (caller bug).
  void AddRow(std::vector<std::string> cells);

  /// Renders the table with aligned columns to stdout.
  void Print() const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace sablock::eval

#endif  // SABLOCK_EVAL_HARNESS_H_
