// Registers every incremental index with the global IndexRegistry. Spec
// names, aliases, parameter names and defaults deliberately match the
// corresponding batch techniques in api/builtin_blockers.cc — one spec
// string describes both sides, and the parity goldens rely on that.

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "baselines/blocking_key.h"
#include "core/domains.h"
#include "core/lsh_blocker.h"
#include "index/index_registry.h"
#include "index/lsh_index.h"
#include "index/sorted_index.h"
#include "index/token_index.h"

namespace sablock::index {
namespace {

Status RangeError(const std::string& key, const std::string& constraint) {
  return Status::Error("param '" + key + "': must be " + constraint);
}

api::ParamDoc AttrsDoc() {
  return {"attrs", "", "'+'-separated blocking attributes"};
}

core::LshParams LshFromParams(api::ParamMap& p) {
  core::LshParams lsh;
  lsh.k = p.GetInt("k", lsh.k);
  lsh.l = p.GetInt("l", lsh.l);
  lsh.q = p.GetInt("q", lsh.q);
  lsh.attributes = p.GetStringList("attrs", {});
  lsh.seed = p.GetUint64("seed", lsh.seed);
  return lsh;
}

Status CheckLshRanges(const core::LshParams& lsh) {
  if (lsh.k < 1) return RangeError("k", ">= 1");
  if (lsh.l < 1) return RangeError("l", ">= 1");
  if (lsh.q < 1) return RangeError("q", ">= 1");
  return Status::Ok();
}

std::vector<api::ParamDoc> LshDocs() {
  return {{"k", "4", "minhash rows per table"},
          {"l", "63", "number of hash tables"},
          {"q", "3", "q-gram size for shingling"},
          AttrsDoc(),
          {"seed", "7", "hash-family seed"}};
}

}  // namespace

namespace internal {

void RegisterBuiltinIndexes(IndexRegistry& r) {
  r.Register(
      {"lsh", "incremental minhash-LSH banding tables", {"plain-lsh"},
       LshDocs()},
      [](api::ParamMap& p, std::unique_ptr<IncrementalIndex>* out) {
        core::LshParams lsh = LshFromParams(p);
        Status s = CheckLshRanges(lsh);
        if (!s.ok()) return s;
        *out = std::make_unique<LshIndex>(std::move(lsh));
        return Status::Ok();
      });

  {
    std::vector<api::ParamDoc> docs = LshDocs();
    docs.push_back({"w", "5", "semantic hash width (semhash draws/table)"});
    docs.push_back({"mode", "or", "semantic combination (or|and)"});
    docs.push_back({"domain", "bib", "semantic domain (bib|voter)"});
    docs.push_back({"sem-seed", "11", "semantic-function draw seed"});
    r.Register(
        {"sa-lsh",
         "incremental semantic-aware LSH: banding tables gated by a w-way "
         "semantic hash",
         {"salsh"}, std::move(docs)},
        [](api::ParamMap& p, std::unique_ptr<IncrementalIndex>* out) {
          enum class DomainKind { kBib, kVoter };
          DomainKind kind = p.GetEnum<DomainKind>(
              "domain", DomainKind::kBib,
              {{"bib", DomainKind::kBib}, {"voter", DomainKind::kVoter}});
          core::Domain domain = kind == DomainKind::kVoter
                                    ? core::MakeVoterDomain()
                                    : core::MakeBibliographicDomain();
          core::LshParams lsh = LshFromParams(p);
          if (lsh.attributes.empty()) {
            lsh.attributes = domain.blocking_attributes;
          }
          Status s = CheckLshRanges(lsh);
          if (!s.ok()) return s;
          core::SemanticParams sem;
          sem.w = p.GetInt("w", 5);
          sem.mode = p.GetEnum<core::SemanticMode>(
              "mode", core::SemanticMode::kOr,
              {{"or", core::SemanticMode::kOr},
               {"and", core::SemanticMode::kAnd}});
          sem.seed = p.GetUint64("sem-seed", 11);
          if (sem.w < 1) return RangeError("w", ">= 1");
          *out = std::make_unique<SaLshIndex>(std::move(lsh), sem,
                                              domain.semantics);
          return Status::Ok();
        });
  }

  r.Register(
      {"token-blocking", "incremental token-blocking postings", {"token"},
       {AttrsDoc()}},
      [](api::ParamMap& p, std::unique_ptr<IncrementalIndex>* out) {
        *out = std::make_unique<TokenPostingsIndex>(
            p.GetStringList("attrs", {}));
        return Status::Ok();
      });

  r.Register(
      {"sor-a",
       "incremental array-based sorted neighbourhood: fixed window over "
       "key-sorted records",
       {"sorted", "sorn"},
       {AttrsDoc(), {"window", "3", "sliding-window size (>= 2)"}}},
      [](api::ParamMap& p, std::unique_ptr<IncrementalIndex>* out) {
        baselines::BlockingKeyDef key =
            baselines::ExactKey(p.GetStringList("attrs", {}));
        int window = p.GetInt("window", 3);
        if (window < 2) return RangeError("window", ">= 2");
        *out = std::make_unique<SortedWindowIndex>(std::move(key), window);
        return Status::Ok();
      });
}

}  // namespace internal

}  // namespace sablock::index
