#include "index/lsh_index.h"

#include <algorithm>

#include "common/check.h"
#include "common/string_util.h"
#include "index/sorted_ids.h"
#include "text/qgram.h"

namespace sablock::index {

namespace {

/// Resolves the blocking attributes to schema positions; error on any
/// attribute the schema does not have.
Status ResolveAttributes(const data::Schema& schema,
                         const std::vector<std::string>& attributes,
                         std::vector<int>* out) {
  out->clear();
  for (const std::string& attr : attributes) {
    int idx = schema.IndexOf(attr);
    if (idx < 0) {
      return Status::Error("index attribute '" + attr +
                           "' is not in the schema");
    }
    out->push_back(idx);
  }
  return Status::Ok();
}

/// The record's minhash signature, computed exactly as the batch pipeline
/// does: blocking text (non-empty attribute values joined by spaces,
/// normalized) -> distinct q-gram hashes -> minhash rows.
std::vector<uint64_t> RowSignature(std::span<const std::string_view> values,
                                   const std::vector<int>& attr_index, int q,
                                   const core::MinHasher& hasher) {
  std::string joined;
  for (int idx : attr_index) {
    std::string_view v = values[static_cast<size_t>(idx)];
    if (v.empty()) continue;
    if (!joined.empty()) joined.push_back(' ');
    joined.append(v);
  }
  std::vector<uint64_t> shingles =
      text::QGramHashes(NormalizeForMatching(joined), q);
  return hasher.Signature(shingles);
}

/// Streams one table's buckets with >= 2 records in canonical content
/// order (bucket ids are already ascending).
void EmitTableBlocks(
    const std::unordered_map<uint64_t, std::vector<data::RecordId>>& table,
    core::BlockSink& sink) {
  std::vector<core::Block> kept;
  for (const auto& [key, ids] : table) {
    if (ids.size() >= 2) kept.push_back(ids);
  }
  std::sort(kept.begin(), kept.end());
  for (core::Block& block : kept) {
    if (sink.Done()) return;
    sink.Consume(std::move(block));
  }
}

}  // namespace

// ---------------------------------------------------------------- LshIndex

LshIndex::LshIndex(core::LshParams params)
    : params_(std::move(params)),
      hasher_(params_.k * params_.l, params_.seed) {
  SABLOCK_CHECK(params_.k >= 1 && params_.l >= 1 && params_.q >= 1);
  tables_.resize(static_cast<size_t>(params_.l));
}

std::string LshIndex::name() const {
  return "LshIndex(k=" + std::to_string(params_.k) +
         ",l=" + std::to_string(params_.l) + ")";
}

Status LshIndex::Bind(const data::Schema& schema) {
  SABLOCK_CHECK_MSG(!bound_, "index already bound");
  Status s = ResolveAttributes(schema, params_.attributes, &attr_index_);
  if (!s.ok()) return s;
  bound_ = true;
  return Status::Ok();
}

std::vector<uint64_t> LshIndex::SignatureOf(
    std::span<const std::string_view> values) const {
  return RowSignature(values, attr_index_, params_.q, hasher_);
}

void LshIndex::Insert(data::RecordId id,
                      std::span<const std::string_view> values) {
  SABLOCK_CHECK_MSG(bound_, "Bind must precede Insert");
  SABLOCK_CHECK_MSG(record_bands_.count(id) == 0, "record id already live");
  std::vector<uint64_t> sig = SignatureOf(values);
  std::vector<uint64_t> bands;
  if (!core::IsEmptyMinhashSignature(sig)) {
    bands.reserve(static_cast<size_t>(params_.l));
    for (int t = 0; t < params_.l; ++t) {
      uint64_t band = core::LshBandKey(sig, t, params_.k);
      InsertSortedId(&tables_[static_cast<size_t>(t)][band], id);
      bands.push_back(band);
    }
  }
  record_bands_.emplace(id, std::move(bands));
}

bool LshIndex::Remove(data::RecordId id) {
  auto it = record_bands_.find(id);
  if (it == record_bands_.end()) return false;
  for (int t = 0; t < static_cast<int>(it->second.size()); ++t) {
    auto& table = tables_[static_cast<size_t>(t)];
    auto bucket = table.find(it->second[static_cast<size_t>(t)]);
    SABLOCK_CHECK(bucket != table.end());
    EraseSortedId(&bucket->second, id);
    if (bucket->second.empty()) table.erase(bucket);
  }
  record_bands_.erase(it);
  return true;
}

std::vector<data::RecordId> LshIndex::Query(
    std::span<const std::string_view> values) const {
  SABLOCK_CHECK_MSG(bound_, "Bind must precede Query");
  std::vector<uint64_t> sig = SignatureOf(values);
  std::vector<data::RecordId> out;
  if (core::IsEmptyMinhashSignature(sig)) return out;
  for (int t = 0; t < params_.l; ++t) {
    auto it = tables_[static_cast<size_t>(t)].find(
        core::LshBandKey(sig, t, params_.k));
    if (it == tables_[static_cast<size_t>(t)].end()) continue;
    out.insert(out.end(), it->second.begin(), it->second.end());
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

void LshIndex::EmitBlocks(core::BlockSink& sink) const {
  for (const auto& table : tables_) {
    if (sink.Done()) return;
    EmitTableBlocks(table, sink);
  }
}

// -------------------------------------------------------------- SaLshIndex

SaLshIndex::SaLshIndex(
    core::LshParams lsh_params, core::SemanticParams sem_params,
    std::shared_ptr<const core::SemanticFunction> semantics)
    : lsh_params_(std::move(lsh_params)),
      sem_params_(sem_params),
      semantics_(std::move(semantics)),
      hasher_(lsh_params_.k * lsh_params_.l, lsh_params_.seed) {
  SABLOCK_CHECK(lsh_params_.k >= 1 && lsh_params_.l >= 1 &&
                lsh_params_.q >= 1);
  SABLOCK_CHECK(semantics_ != nullptr);
  SABLOCK_CHECK(sem_params_.w >= 1);
  tables_.resize(static_cast<size_t>(lsh_params_.l));
}

std::string SaLshIndex::name() const {
  return "SaLshIndex(k=" + std::to_string(lsh_params_.k) +
         ",l=" + std::to_string(lsh_params_.l) +
         ",w=" + std::to_string(sem_params_.w) +
         (sem_params_.mode == core::SemanticMode::kAnd ? ",AND)" : ",OR)");
}

Status SaLshIndex::Bind(const data::Schema& schema) {
  SABLOCK_CHECK_MSG(!bound_, "index already bound");
  Status s = ResolveAttributes(schema, lsh_params_.attributes, &attr_index_);
  if (!s.ok()) return s;
  schema_ = schema;
  encoder_ = core::SemhashEncoder::Build(semantics_->taxonomy(), {});
  bound_ = true;
  return Status::Ok();
}

std::vector<uint64_t> SaLshIndex::SignatureOf(
    std::span<const std::string_view> values) const {
  return RowSignature(values, attr_index_, lsh_params_.q, hasher_);
}

std::vector<core::ConceptId> SaLshIndex::InterpretRow(
    std::span<const std::string_view> values) const {
  // Semantic functions are record-isolated (Definition 4.2b), so a
  // one-row scratch dataset interprets identically to the full dataset.
  data::Dataset row(schema_);
  row.AddRow(values);
  return semantics_->Interpret(row, 0);
}

void SaLshIndex::TableKeys(int t, const std::vector<uint64_t>& sig,
                           const core::SemSignature& sem,
                           std::vector<uint64_t>* keys) const {
  keys->clear();
  uint64_t band = core::LshBandKey(sig, t, lsh_params_.k);
  if (encoder_.dimension() == 0) {
    // No record has any semantic feature: the batch blocker degenerates
    // to plain textual LSH, and so does the index.
    keys->push_back(band);
    return;
  }
  core::AppendSemanticBucketKeys(band, sem, sem_params_.mode,
                                 chosen_[static_cast<size_t>(t)], keys);
}

void SaLshIndex::RefreshChoices() {
  chosen_.assign(static_cast<size_t>(lsh_params_.l), {});
  if (encoder_.dimension() == 0) return;
  for (int t = 0; t < lsh_params_.l; ++t) {
    chosen_[static_cast<size_t>(t)] =
        core::SemanticTableChoices(sem_params_, encoder_.dimension(), t);
  }
}

void SaLshIndex::InsertIntoTables(data::RecordId id,
                                  const RecordState& state) {
  if (core::IsEmptyMinhashSignature(state.sig)) return;
  core::SemSignature sem =
      encoder_.Encode(semantics_->taxonomy(), state.zeta);
  std::vector<uint64_t> keys;
  for (int t = 0; t < lsh_params_.l; ++t) {
    TableKeys(t, state.sig, sem, &keys);
    for (uint64_t key : keys) {
      InsertSortedId(&tables_[static_cast<size_t>(t)][key], id);
    }
  }
}

void SaLshIndex::RemoveFromTables(data::RecordId id,
                                  const RecordState& state) {
  if (core::IsEmptyMinhashSignature(state.sig)) return;
  core::SemSignature sem =
      encoder_.Encode(semantics_->taxonomy(), state.zeta);
  std::vector<uint64_t> keys;
  for (int t = 0; t < lsh_params_.l; ++t) {
    TableKeys(t, state.sig, sem, &keys);
    auto& table = tables_[static_cast<size_t>(t)];
    for (uint64_t key : keys) {
      auto bucket = table.find(key);
      SABLOCK_CHECK(bucket != table.end());
      EraseSortedId(&bucket->second, id);
      if (bucket->second.empty()) table.erase(bucket);
    }
  }
}

void SaLshIndex::RebuildTables() {
  for (auto& table : tables_) table.clear();
  for (const auto& [id, state] : records_) {
    InsertIntoTables(id, state);
  }
}

void SaLshIndex::Insert(data::RecordId id,
                        std::span<const std::string_view> values) {
  SABLOCK_CHECK_MSG(bound_, "Bind must precede Insert");
  SABLOCK_CHECK_MSG(records_.count(id) == 0, "record id already live");
  RecordState state;
  state.sig = SignatureOf(values);
  state.zeta = InterpretRow(values);

  bool fresh_concepts = false;
  for (core::ConceptId c : state.zeta) {
    if (seen_concepts_.insert(c).second) fresh_concepts = true;
  }
  auto [it, inserted] = records_.emplace(id, std::move(state));
  SABLOCK_CHECK(inserted);

  if (fresh_concepts) {
    // A previously unseen concept can add semhash features. Rebuild the
    // encoder from the live interpretations (Algorithm 1 is a set union,
    // so the result is order-independent and equals the batch encoder);
    // only a grown feature set forces the tables to be rebuilt.
    std::vector<std::vector<core::ConceptId>> zetas;
    zetas.reserve(records_.size());
    for (const auto& [rid, rstate] : records_) zetas.push_back(rstate.zeta);
    core::SemhashEncoder rebuilt =
        core::SemhashEncoder::Build(semantics_->taxonomy(), zetas);
    bool same = rebuilt.dimension() == encoder_.dimension();
    for (uint32_t i = 0; same && i < rebuilt.dimension(); ++i) {
      same = rebuilt.FeatureConcept(i) == encoder_.FeatureConcept(i);
    }
    if (!same) {
      encoder_ = std::move(rebuilt);
      RefreshChoices();
      RebuildTables();
      return;
    }
  }
  InsertIntoTables(id, it->second);
}

bool SaLshIndex::Remove(data::RecordId id) {
  auto it = records_.find(id);
  if (it == records_.end()) return false;
  // Features are never un-selected on removal (see the class comment), so
  // the current encoder is exactly the one the record was bucketed under.
  RemoveFromTables(id, it->second);
  records_.erase(it);
  return true;
}

std::vector<data::RecordId> SaLshIndex::Query(
    std::span<const std::string_view> values) const {
  SABLOCK_CHECK_MSG(bound_, "Bind must precede Query");
  std::vector<data::RecordId> out;
  std::vector<uint64_t> sig = SignatureOf(values);
  if (core::IsEmptyMinhashSignature(sig)) return out;
  // The probe is evaluated under the current feature set; concepts no
  // live record has yet contribute no semhash bit (matching how a batch
  // run without the probe would gate the existing records).
  core::SemSignature sem =
      encoder_.Encode(semantics_->taxonomy(), InterpretRow(values));
  std::vector<uint64_t> keys;
  for (int t = 0; t < lsh_params_.l; ++t) {
    TableKeys(t, sig, sem, &keys);
    const auto& table = tables_[static_cast<size_t>(t)];
    for (uint64_t key : keys) {
      auto it = table.find(key);
      if (it == table.end()) continue;
      out.insert(out.end(), it->second.begin(), it->second.end());
    }
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

void SaLshIndex::EmitBlocks(core::BlockSink& sink) const {
  for (const auto& table : tables_) {
    if (sink.Done()) return;
    EmitTableBlocks(table, sink);
  }
}

}  // namespace sablock::index
