#include "index/sorted_index.h"

#include <algorithm>

#include "common/check.h"
#include "common/string_util.h"
#include "index/sorted_ids.h"

namespace sablock::index {

SortedWindowIndex::SortedWindowIndex(baselines::BlockingKeyDef key,
                                     int window_size)
    : key_(std::move(key)), window_size_(window_size) {
  SABLOCK_CHECK_MSG(window_size_ >= 2, "window size must be >= 2");
}

std::string SortedWindowIndex::name() const {
  return "SortedWindowIndex(w=" + std::to_string(window_size_) + ")";
}

Status SortedWindowIndex::Bind(const data::Schema& schema) {
  SABLOCK_CHECK_MSG(!bound_, "index already bound");
  for (const baselines::KeyComponent& comp : key_.components) {
    if (schema.IndexOf(comp.attribute) < 0) {
      return Status::Error("index attribute '" + comp.attribute +
                           "' is not in the schema");
    }
  }
  schema_ = schema;
  bound_ = true;
  return Status::Ok();
}

std::string SortedWindowIndex::KeyOf(
    std::span<const std::string_view> values) const {
  std::string key;
  for (const baselines::KeyComponent& comp : key_.components) {
    int idx = schema_.IndexOf(comp.attribute);
    std::string value =
        NormalizeForMatching(values[static_cast<size_t>(idx)]);
    baselines::AppendKeyComponent(comp, value, &key);
  }
  return key;
}

std::vector<data::RecordId> SortedWindowIndex::FlattenedOrder() const {
  // Key-ascending, id-ascending within equal keys: exactly the batch
  // technique's stable_sort of records in id order.
  std::vector<data::RecordId> order;
  order.reserve(live_);
  for (const auto& [key, ids] : buckets_) {
    order.insert(order.end(), ids.begin(), ids.end());
  }
  return order;
}

void SortedWindowIndex::Insert(data::RecordId id,
                               std::span<const std::string_view> values) {
  SABLOCK_CHECK_MSG(bound_, "Bind must precede Insert");
  SABLOCK_CHECK_MSG(record_keys_.count(id) == 0, "record id already live");
  std::string key = KeyOf(values);
  InsertSortedId(&buckets_[key], id);
  record_keys_.emplace(id, std::move(key));
  ++live_;
}

bool SortedWindowIndex::Remove(data::RecordId id) {
  auto it = record_keys_.find(id);
  if (it == record_keys_.end()) return false;
  auto bucket = buckets_.find(it->second);
  SABLOCK_CHECK(bucket != buckets_.end());
  EraseSortedId(&bucket->second, id);
  if (bucket->second.empty()) buckets_.erase(bucket);
  record_keys_.erase(it);
  --live_;
  return true;
}

std::vector<data::RecordId> SortedWindowIndex::Query(
    std::span<const std::string_view> values) const {
  SABLOCK_CHECK_MSG(bound_, "Bind must precede Query");
  const size_t n = live_;
  if (n == 0) return {};
  const size_t w = static_cast<size_t>(window_size_);

  // The probe would be appended as the highest id, so the stable sort
  // places it after every live record with an equal key. With it
  // inserted the array has n + 1 entries; every window containing the
  // probe covers the live records within w - 1 positions of the
  // insertion point.
  if (w >= n + 1) {
    std::vector<data::RecordId> all = FlattenedOrder();
    std::sort(all.begin(), all.end());
    return all;
  }

  const std::string probe_key = KeyOf(values);
  size_t p = 0;  // probe position in the merged order
  for (auto it = buckets_.begin();
       it != buckets_.end() && it->first <= probe_key; ++it) {
    p += it->second.size();
  }

  std::vector<data::RecordId> order = FlattenedOrder();
  const size_t lo = p >= w - 1 ? p - (w - 1) : 0;
  const size_t hi = std::min(p + w - 2, n - 1);
  std::vector<data::RecordId> out(order.begin() + static_cast<ptrdiff_t>(lo),
                                  order.begin() + static_cast<ptrdiff_t>(hi) +
                                      1);
  std::sort(out.begin(), out.end());
  return out;
}

void SortedWindowIndex::EmitBlocks(core::BlockSink& sink) const {
  // Byte-identical to SortedNeighbourhoodArray::Run on the equivalent
  // dataset: same order, same window sequence.
  std::vector<data::RecordId> order = FlattenedOrder();
  const size_t n = order.size();
  const size_t w = static_cast<size_t>(window_size_);
  if (n < 2) return;
  if (w >= n) {
    sink.Consume(std::move(order));
    return;
  }
  for (size_t start = 0; start + w <= n; ++start) {
    if (sink.Done()) return;
    sink.Consume(
        core::Block(order.begin() + static_cast<ptrdiff_t>(start),
                    order.begin() + static_cast<ptrdiff_t>(start + w)));
  }
}

}  // namespace sablock::index
