#ifndef SABLOCK_INDEX_INCREMENTAL_INDEX_H_
#define SABLOCK_INDEX_INCREMENTAL_INDEX_H_

#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "core/block_sink.h"
#include "core/blocking.h"
#include "data/record.h"

namespace sablock::index {

/// A blocking technique reorganized as a mutable index: instead of one
/// batch pass over a frozen Dataset, records are inserted (and removed)
/// one at a time and "which records could match this one?" is answerable
/// at any point — the serving-side counterpart of core::BlockingTechnique.
///
/// Contract:
///  - Bind(schema) is called exactly once, before any other call; it
///    resolves attribute positions and reports missing required
///    attributes.
///  - Insert(id, values) indexes one record. `id` is assigned by the
///    caller (the CandidateService uses the backing Dataset's record id)
///    and must be fresh — ids are never reused, and inserts normally
///    arrive in increasing id order (the order the backing store appends).
///  - Remove(id) un-indexes a record; returns false if `id` is not live.
///  - Query(values) returns the sorted distinct ids of the live records
///    that would share a block with the probe if it were inserted next.
///    The probe itself is NOT inserted.
///  - EmitBlocks(sink) streams the current blocks. Parity guarantee:
///    after Bind + Insert of every record of a dataset in id order, the
///    emitted blocks equal (as a multiset of record-id sets) the blocks
///    of the batch technique built from the same spec string — the
///    golden index/batch parity test enforces this for every registered
///    index. Key-ordered indexes (token postings, sorted neighbourhood)
///    reproduce the batch emission byte-identically, sequence included.
///
/// Thread-safety: none. All methods, including Query and EmitBlocks,
/// must be externally serialized; service::CandidateService wraps an
/// index in a reader/writer lock (Query/EmitBlocks are const and take
/// the shared side — implementations must not mutate under const).
class IncrementalIndex {
 public:
  virtual ~IncrementalIndex() = default;

  /// Short identifier, e.g. "lsh-index(k=4,l=63)".
  virtual std::string name() const = 0;

  /// Binds the index to the record schema. Must be called exactly once,
  /// before any Insert/Remove/Query/EmitBlocks.
  virtual Status Bind(const data::Schema& schema) = 0;

  /// Indexes record `id` with the given attribute values (aligned with
  /// the bound schema). `id` must not be live.
  virtual void Insert(data::RecordId id,
                      std::span<const std::string_view> values) = 0;

  /// Un-indexes record `id`; false if it was not live.
  virtual bool Remove(data::RecordId id) = 0;

  /// Candidate ids for a probe record (sorted, distinct, excludes ids
  /// that are not live). The probe is not inserted.
  virtual std::vector<data::RecordId> Query(
      std::span<const std::string_view> values) const = 0;

  /// Streams the current blocks (deterministic order; see the parity
  /// guarantee above).
  virtual void EmitBlocks(core::BlockSink& sink) const = 0;

  /// Number of live (inserted and not removed) records.
  virtual size_t size() const = 0;
};

/// Equivalence bridge, batch side -> index side: binds `index` to the
/// dataset's schema and inserts every record in id order. Aborts on a
/// Bind error (caller bug: the spec's attributes must exist in the
/// schema). After this, EmitBlocks reproduces the batch technique.
void LoadDataset(IncrementalIndex& index, const data::Dataset& dataset);

/// Canonical serialization of a block multiset: every block's ids sorted,
/// blocks sorted lexicographically, rendered one block per line. Two
/// collections with equal canonical bytes contain exactly the same
/// blocks — the representation the index/batch parity goldens compare.
std::string CanonicalBlockBytes(const core::BlockCollection& blocks);

/// Collects EmitBlocks output into a BlockCollection.
core::BlockCollection CollectBlocks(const IncrementalIndex& index);

}  // namespace sablock::index

#endif  // SABLOCK_INDEX_INCREMENTAL_INDEX_H_
