#ifndef SABLOCK_INDEX_SORTED_INDEX_H_
#define SABLOCK_INDEX_SORTED_INDEX_H_

#include <map>
#include <string>
#include <vector>

#include "baselines/blocking_key.h"
#include "index/incremental_index.h"

namespace sablock::index {

/// Incremental sorted-neighbourhood index: records live in a key-ordered
/// structure (ids ascending within equal keys, matching the batch
/// stable sort) and a window of `window_size` positions defines the
/// blocks. EmitBlocks reproduces baselines::SortedNeighbourhoodArray
/// byte-identically; Query returns the records a probe would share a
/// window with if it were inserted next.
class SortedWindowIndex : public IncrementalIndex {
 public:
  SortedWindowIndex(baselines::BlockingKeyDef key, int window_size);

  std::string name() const override;
  Status Bind(const data::Schema& schema) override;
  void Insert(data::RecordId id,
              std::span<const std::string_view> values) override;
  bool Remove(data::RecordId id) override;
  std::vector<data::RecordId> Query(
      std::span<const std::string_view> values) const override;
  void EmitBlocks(core::BlockSink& sink) const override;
  size_t size() const override { return live_; }

 private:
  /// The probe's blocking-key value, computed exactly as the batch
  /// KeyBuilder would (one-row scratch dataset through MakeKey).
  std::string KeyOf(std::span<const std::string_view> values) const;

  /// The sorted record order (key-ascending, id-ascending within key) —
  /// the batch technique's stable_sort result.
  std::vector<data::RecordId> FlattenedOrder() const;

  baselines::BlockingKeyDef key_;
  int window_size_;
  data::Schema schema_;
  bool bound_ = false;

  std::map<std::string, std::vector<data::RecordId>> buckets_;
  std::map<data::RecordId, std::string> record_keys_;
  size_t live_ = 0;
};

}  // namespace sablock::index

#endif  // SABLOCK_INDEX_SORTED_INDEX_H_
