#ifndef SABLOCK_INDEX_LSH_INDEX_H_
#define SABLOCK_INDEX_LSH_INDEX_H_

#include <map>
#include <memory>
#include <set>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/lsh_blocker.h"
#include "core/minhash.h"
#include "index/incremental_index.h"

namespace sablock::index {

/// Incremental minhash-LSH banding tables: l tables keyed by the band key
/// of k signature rows, the index-side counterpart of core::LshBlocker.
/// Records with empty shingle sets are live but enter no table, exactly
/// like the batch blocker excludes them.
class LshIndex : public IncrementalIndex {
 public:
  explicit LshIndex(core::LshParams params);

  std::string name() const override;
  Status Bind(const data::Schema& schema) override;
  void Insert(data::RecordId id,
              std::span<const std::string_view> values) override;
  bool Remove(data::RecordId id) override;
  std::vector<data::RecordId> Query(
      std::span<const std::string_view> values) const override;
  void EmitBlocks(core::BlockSink& sink) const override;
  size_t size() const override { return record_bands_.size(); }

 private:
  std::vector<uint64_t> SignatureOf(
      std::span<const std::string_view> values) const;

  core::LshParams params_;
  core::MinHasher hasher_;       // k*l rows, params_.seed
  std::vector<int> attr_index_;  // schema positions, set by Bind
  bool bound_ = false;

  // tables_[t] maps a band key to the bucket's live ids (ascending).
  std::vector<std::unordered_map<uint64_t, std::vector<data::RecordId>>>
      tables_;
  // Per live record: its l band keys, or empty for records excluded by an
  // empty shingle set. This is all Remove needs — signatures are not kept.
  std::map<data::RecordId, std::vector<uint64_t>> record_bands_;
};

/// Incremental semantic-aware LSH: LshIndex's tables gated by the w-way
/// semantic hash of core::SemanticAwareLshBlocker.
///
/// The semhash feature set is data-dependent (the union of leaf concepts
/// reachable from the indexed records, Algorithm 1), so inserting a record
/// with previously unseen concepts can grow the semantic dimension; the
/// index then rebuilds its tables from the stored per-record state so that
/// EmitBlocks always matches the batch blocker over the same records.
/// Removals shrink the record set but deliberately not the feature set
/// (features are never un-selected), so batch parity is guaranteed after
/// inserts, not after removals.
class SaLshIndex : public IncrementalIndex {
 public:
  SaLshIndex(core::LshParams lsh_params, core::SemanticParams sem_params,
             std::shared_ptr<const core::SemanticFunction> semantics);

  std::string name() const override;
  Status Bind(const data::Schema& schema) override;
  void Insert(data::RecordId id,
              std::span<const std::string_view> values) override;
  bool Remove(data::RecordId id) override;
  std::vector<data::RecordId> Query(
      std::span<const std::string_view> values) const override;
  void EmitBlocks(core::BlockSink& sink) const override;
  size_t size() const override { return records_.size(); }

 private:
  struct RecordState {
    std::vector<uint64_t> sig;          // full k*l minhash signature
    std::vector<core::ConceptId> zeta;  // semantic interpretation
  };

  std::vector<uint64_t> SignatureOf(
      std::span<const std::string_view> values) const;
  std::vector<core::ConceptId> InterpretRow(
      std::span<const std::string_view> values) const;
  /// Bucket keys of one record in table `t` under the current encoder.
  void TableKeys(int t, const std::vector<uint64_t>& sig,
                 const core::SemSignature& sem,
                 std::vector<uint64_t>* keys) const;
  /// Re-derives the per-table semhash draws for the current dimension.
  void RefreshChoices();
  /// Clears and refills every table from records_ (after a dim change).
  void RebuildTables();
  void InsertIntoTables(data::RecordId id, const RecordState& state);
  void RemoveFromTables(data::RecordId id, const RecordState& state);

  core::LshParams lsh_params_;
  core::SemanticParams sem_params_;
  std::shared_ptr<const core::SemanticFunction> semantics_;
  core::MinHasher hasher_;
  std::vector<int> attr_index_;
  data::Schema schema_;  // scratch one-row datasets for Interpret
  bool bound_ = false;

  core::SemhashEncoder encoder_;            // grows with seen concepts
  std::set<core::ConceptId> seen_concepts_;
  std::vector<std::vector<size_t>> chosen_;  // per-table semhash draws
  std::vector<std::unordered_map<uint64_t, std::vector<data::RecordId>>>
      tables_;
  std::map<data::RecordId, RecordState> records_;
};

}  // namespace sablock::index

#endif  // SABLOCK_INDEX_LSH_INDEX_H_
