#ifndef SABLOCK_INDEX_TOKEN_INDEX_H_
#define SABLOCK_INDEX_TOKEN_INDEX_H_

#include <map>
#include <string>
#include <vector>

#include "index/incremental_index.h"

namespace sablock::index {

/// Incremental token-blocking postings: one posting list per distinct
/// normalized whitespace token of the blocking attributes. The index-side
/// counterpart of baselines::TokenBlockingTechnique — EmitBlocks
/// reproduces its output byte-identically (postings with >= 2 live
/// records, emitted in canonical content order).
class TokenPostingsIndex : public IncrementalIndex {
 public:
  explicit TokenPostingsIndex(std::vector<std::string> attributes);

  std::string name() const override;
  Status Bind(const data::Schema& schema) override;
  void Insert(data::RecordId id,
              std::span<const std::string_view> values) override;
  bool Remove(data::RecordId id) override;
  std::vector<data::RecordId> Query(
      std::span<const std::string_view> values) const override;
  void EmitBlocks(core::BlockSink& sink) const override;
  size_t size() const override { return live_; }

 private:
  /// Distinct normalized tokens of one row (sorted).
  std::vector<std::string> TokensOf(
      std::span<const std::string_view> values) const;

  std::vector<std::string> attributes_;
  std::vector<int> attr_index_;  // schema positions, set by Bind
  bool bound_ = false;

  // Postings keyed by token string, ids kept sorted ascending. An
  // ordered map so EmitBlocks needs no per-call vocabulary sort.
  std::map<std::string, std::vector<data::RecordId>> postings_;
  std::map<data::RecordId, std::vector<std::string>> record_tokens_;
  size_t live_ = 0;
};

}  // namespace sablock::index

#endif  // SABLOCK_INDEX_TOKEN_INDEX_H_
