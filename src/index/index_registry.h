#ifndef SABLOCK_INDEX_INDEX_REGISTRY_H_
#define SABLOCK_INDEX_INDEX_REGISTRY_H_

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "api/blocker_spec.h"
#include "api/registry.h"
#include "common/status.h"
#include "index/incremental_index.h"

namespace sablock::index {

/// Maps spec strings to IncrementalIndex factories — the serving-side
/// mirror of api::BlockerRegistry. Registered names reuse the batch spec
/// grammar and parameter names verbatim ("sa-lsh:k=4,l=12,domain=bib"),
/// so one spec string describes both the batch technique and its
/// incremental index; the index/batch parity goldens build both sides
/// from the same string.
class IndexRegistry {
 public:
  using Factory = std::function<Status(
      api::ParamMap& params, std::unique_ptr<IncrementalIndex>* out)>;

  /// The process-wide registry with all built-in indexes registered.
  static IndexRegistry& Global();

  /// Registers an index. Name and alias collisions abort.
  void Register(api::BlockerInfo info, Factory factory);

  /// Parses `spec_string` and builds the index.
  Status Create(const std::string& spec_string,
                std::unique_ptr<IncrementalIndex>* out) const;

  /// Builds the index described by a parsed spec (consumes its params).
  Status Create(api::BlockerSpec spec,
                std::unique_ptr<IncrementalIndex>* out) const;

  /// True if `name` (canonical or alias, any case) is registered.
  bool Contains(const std::string& name) const;

  /// Canonical entries, sorted by name.
  std::vector<api::BlockerInfo> List() const;

 private:
  std::vector<std::pair<api::BlockerInfo, Factory>> entries_;
  std::map<std::string, size_t> index_;  // name or alias -> entries_ index
};

namespace internal {
/// Defined in builtin_indexes.cc; called once by Global().
void RegisterBuiltinIndexes(IndexRegistry& registry);
}  // namespace internal

}  // namespace sablock::index

#endif  // SABLOCK_INDEX_INDEX_REGISTRY_H_
