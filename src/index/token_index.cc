#include "index/token_index.h"

#include <algorithm>

#include "common/check.h"
#include "common/string_util.h"
#include "index/sorted_ids.h"

namespace sablock::index {

TokenPostingsIndex::TokenPostingsIndex(std::vector<std::string> attributes)
    : attributes_(std::move(attributes)) {}

std::string TokenPostingsIndex::name() const { return "TokenIndex"; }

Status TokenPostingsIndex::Bind(const data::Schema& schema) {
  SABLOCK_CHECK_MSG(!bound_, "index already bound");
  attr_index_.clear();
  for (const std::string& attr : attributes_) {
    int idx = schema.IndexOf(attr);
    if (idx < 0) {
      return Status::Error("index attribute '" + attr +
                           "' is not in the schema");
    }
    attr_index_.push_back(idx);
  }
  bound_ = true;
  return Status::Ok();
}

std::vector<std::string> TokenPostingsIndex::TokensOf(
    std::span<const std::string_view> values) const {
  // Exactly Dataset::ConcatenatedValues over the bound attributes (the
  // text the batch technique's token column is built from), then the
  // token column's distinct-sorted tokenization.
  std::string joined;
  for (int idx : attr_index_) {
    std::string_view v = values[static_cast<size_t>(idx)];
    if (v.empty()) continue;
    if (!joined.empty()) joined.push_back(' ');
    joined.append(v);
  }
  std::vector<std::string> tokens =
      SplitWords(NormalizeForMatching(joined));
  std::sort(tokens.begin(), tokens.end());
  tokens.erase(std::unique(tokens.begin(), tokens.end()), tokens.end());
  return tokens;
}

void TokenPostingsIndex::Insert(data::RecordId id,
                                std::span<const std::string_view> values) {
  SABLOCK_CHECK_MSG(bound_, "Bind must precede Insert");
  SABLOCK_CHECK_MSG(record_tokens_.count(id) == 0, "record id already live");
  std::vector<std::string> tokens = TokensOf(values);
  for (const std::string& token : tokens) {
    InsertSortedId(&postings_[token], id);
  }
  record_tokens_.emplace(id, std::move(tokens));
  ++live_;
}

bool TokenPostingsIndex::Remove(data::RecordId id) {
  auto it = record_tokens_.find(id);
  if (it == record_tokens_.end()) return false;
  for (const std::string& token : it->second) {
    auto posting = postings_.find(token);
    SABLOCK_CHECK(posting != postings_.end());
    EraseSortedId(&posting->second, id);
    if (posting->second.empty()) postings_.erase(posting);
  }
  record_tokens_.erase(it);
  --live_;
  return true;
}

std::vector<data::RecordId> TokenPostingsIndex::Query(
    std::span<const std::string_view> values) const {
  SABLOCK_CHECK_MSG(bound_, "Bind must precede Query");
  std::vector<data::RecordId> out;
  for (const std::string& token : TokensOf(values)) {
    auto it = postings_.find(token);
    if (it == postings_.end()) continue;
    out.insert(out.end(), it->second.begin(), it->second.end());
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

void TokenPostingsIndex::EmitBlocks(core::BlockSink& sink) const {
  // Identical to the batch technique's emission: postings with >= 2
  // records, in canonical content order.
  std::vector<core::Block> kept;
  for (const auto& [token, ids] : postings_) {
    if (ids.size() >= 2) kept.push_back(ids);
  }
  std::sort(kept.begin(), kept.end());
  for (core::Block& block : kept) {
    if (sink.Done()) break;
    sink.Consume(std::move(block));
  }
}

}  // namespace sablock::index
