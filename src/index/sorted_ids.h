#ifndef SABLOCK_INDEX_SORTED_IDS_H_
#define SABLOCK_INDEX_SORTED_IDS_H_

#include <algorithm>
#include <vector>

#include "data/record.h"

namespace sablock::index {

/// Inserts `id` into a sorted id vector, keeping ascending order. Ids are
/// never reused, so the caller's live-id contract rules out duplicates.
inline void InsertSortedId(std::vector<data::RecordId>* ids,
                           data::RecordId id) {
  ids->insert(std::upper_bound(ids->begin(), ids->end(), id), id);
}

/// Removes `id` from a sorted id vector; true if it was present.
inline bool EraseSortedId(std::vector<data::RecordId>* ids,
                          data::RecordId id) {
  auto it = std::lower_bound(ids->begin(), ids->end(), id);
  if (it == ids->end() || *it != id) return false;
  ids->erase(it);
  return true;
}

}  // namespace sablock::index

#endif  // SABLOCK_INDEX_SORTED_IDS_H_
