#include "index/incremental_index.h"

#include <algorithm>

#include "common/check.h"

namespace sablock::index {

void LoadDataset(IncrementalIndex& index, const data::Dataset& dataset) {
  Status status = index.Bind(dataset.schema());
  SABLOCK_CHECK_MSG(status.ok(), status.message().c_str());
  for (data::RecordId id = 0; id < dataset.size(); ++id) {
    index.Insert(id, dataset.Values(id));
  }
}

std::string CanonicalBlockBytes(const core::BlockCollection& blocks) {
  std::vector<core::Block> canon = blocks.blocks();
  for (core::Block& block : canon) {
    std::sort(block.begin(), block.end());
  }
  std::sort(canon.begin(), canon.end());
  std::string bytes;
  for (const core::Block& block : canon) {
    for (size_t i = 0; i < block.size(); ++i) {
      if (i > 0) bytes.push_back(' ');
      bytes += std::to_string(block[i]);
    }
    bytes.push_back('\n');
  }
  return bytes;
}

core::BlockCollection CollectBlocks(const IncrementalIndex& index) {
  core::BlockCollection out;
  index.EmitBlocks(out);
  return out;
}

}  // namespace sablock::index
