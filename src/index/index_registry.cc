#include "index/index_registry.h"

#include <algorithm>

#include "common/check.h"
#include "common/string_util.h"

namespace sablock::index {

IndexRegistry& IndexRegistry::Global() {
  static IndexRegistry* registry = [] {
    auto* r = new IndexRegistry();
    internal::RegisterBuiltinIndexes(*r);
    return r;
  }();
  return *registry;
}

void IndexRegistry::Register(api::BlockerInfo info, Factory factory) {
  SABLOCK_CHECK_MSG(!info.name.empty(), "index registry: empty name");
  const size_t slot = entries_.size();
  auto claim = [&](const std::string& name) {
    bool inserted = index_.emplace(ToLower(name), slot).second;
    SABLOCK_CHECK_MSG(inserted, name.c_str());
  };
  claim(info.name);
  for (const std::string& alias : info.aliases) claim(alias);
  entries_.emplace_back(std::move(info), std::move(factory));
}

Status IndexRegistry::Create(const std::string& spec_string,
                             std::unique_ptr<IncrementalIndex>* out) const {
  api::BlockerSpec spec;
  Status status = api::BlockerSpec::Parse(spec_string, &spec);
  if (!status.ok()) return status;
  return Create(std::move(spec), out);
}

Status IndexRegistry::Create(api::BlockerSpec spec,
                             std::unique_ptr<IncrementalIndex>* out) const {
  out->reset();
  auto it = index_.find(ToLower(spec.name));
  if (it == index_.end()) {
    std::string known;
    for (const api::BlockerInfo& info : List()) {
      if (!known.empty()) known += ", ";
      known += info.name;
    }
    return Status::Error("unknown index '" + spec.name +
                         "' (known: " + known + ")");
  }
  const auto& [info, factory] = entries_[it->second];
  Status status = factory(spec.params, out);
  if (!status.ok()) {
    return Status::Error(info.name + ": " + status.message());
  }
  status = spec.params.Finish();
  if (!status.ok()) {
    out->reset();
    return Status::Error(info.name + ": " + status.message());
  }
  SABLOCK_CHECK(*out != nullptr);
  return Status::Ok();
}

bool IndexRegistry::Contains(const std::string& name) const {
  return index_.count(ToLower(name)) > 0;
}

std::vector<api::BlockerInfo> IndexRegistry::List() const {
  std::vector<api::BlockerInfo> infos;
  infos.reserve(entries_.size());
  for (const auto& [info, factory] : entries_) infos.push_back(info);
  std::sort(infos.begin(), infos.end(),
            [](const api::BlockerInfo& a, const api::BlockerInfo& b) {
              return a.name < b.name;
            });
  return infos;
}

}  // namespace sablock::index
