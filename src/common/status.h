#ifndef SABLOCK_COMMON_STATUS_H_
#define SABLOCK_COMMON_STATUS_H_

#include <string>
#include <utility>

namespace sablock {

/// Result of a fallible operation (mainly file IO). The library avoids
/// exceptions; functions that can fail for environmental reasons return a
/// Status (or a value plus a Status out-parameter).
class Status {
 public:
  /// Successful status.
  Status() = default;

  /// Returns an OK status.
  static Status Ok() { return Status(); }

  /// Returns an error status carrying a human-readable message.
  static Status Error(std::string message) {
    Status s;
    s.ok_ = false;
    s.message_ = std::move(message);
    return s;
  }

  /// True if the operation succeeded.
  bool ok() const { return ok_; }

  /// Error message; empty for OK statuses.
  const std::string& message() const { return message_; }

 private:
  bool ok_ = true;
  std::string message_;
};

}  // namespace sablock

#endif  // SABLOCK_COMMON_STATUS_H_
