#ifndef SABLOCK_COMMON_RANDOM_H_
#define SABLOCK_COMMON_RANDOM_H_

#include <cmath>
#include <cstdint>
#include <random>
#include <utility>
#include <vector>

#include "common/check.h"

namespace sablock {

/// Deterministic random source. Every stochastic component in the library
/// (generators, corruption, canopy seeds, w-way hash selection) takes an
/// explicit seed so experiments are reproducible run-to-run.
class Rng {
 public:
  explicit Rng(uint64_t seed) : engine_(seed) {}

  /// Uniform integer in [lo, hi] inclusive.
  int64_t UniformInt(int64_t lo, int64_t hi) {
    SABLOCK_DCHECK(lo <= hi);
    std::uniform_int_distribution<int64_t> dist(lo, hi);
    return dist(engine_);
  }

  /// Uniform size_t index in [0, n).
  size_t UniformIndex(size_t n) {
    SABLOCK_DCHECK(n > 0);
    std::uniform_int_distribution<size_t> dist(0, n - 1);
    return dist(engine_);
  }

  /// Uniform real in [0, 1).
  double UniformReal() {
    std::uniform_real_distribution<double> dist(0.0, 1.0);
    return dist(engine_);
  }

  /// Bernoulli trial with success probability p.
  bool Bernoulli(double p) { return UniformReal() < p; }

  /// Zipf-like skewed index in [0, n): smaller indices are more likely.
  /// Used by the data generators to give word pools realistic frequencies.
  size_t SkewedIndex(size_t n, double skew = 1.0) {
    SABLOCK_DCHECK(n > 0);
    double u = UniformReal();
    // Inverse-CDF of a truncated Pareto-ish distribution.
    double x = (std::pow(static_cast<double>(n) + 1.0, 1.0 - skew) - 1.0) * u;
    double idx = std::pow(x + 1.0, 1.0 / (1.0 - skew)) - 1.0;
    size_t i = static_cast<size_t>(idx);
    return i < n ? i : n - 1;
  }

  /// Picks a uniformly random element of a non-empty vector.
  template <typename T>
  const T& Pick(const std::vector<T>& v) {
    SABLOCK_DCHECK(!v.empty());
    return v[UniformIndex(v.size())];
  }

  /// Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>* v) {
    for (size_t i = v->size(); i > 1; --i) {
      std::swap((*v)[i - 1], (*v)[UniformIndex(i)]);
    }
  }

  /// Samples k distinct indices from [0, n) (k <= n), in random order.
  std::vector<size_t> SampleIndices(size_t n, size_t k) {
    SABLOCK_DCHECK(k <= n);
    std::vector<size_t> all(n);
    for (size_t i = 0; i < n; ++i) all[i] = i;
    for (size_t i = 0; i < k; ++i) {
      std::swap(all[i], all[i + UniformIndex(n - i)]);
    }
    all.resize(k);
    return all;
  }

  /// Underlying engine, for std distributions not wrapped here.
  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

}  // namespace sablock

#endif  // SABLOCK_COMMON_RANDOM_H_
