#include "common/hashing.h"

#include "arch/kernels.h"

namespace sablock {

uint64_t HashBytes(std::string_view bytes, uint64_t seed) {
  uint64_t h = 0xcbf29ce484222325ULL ^ Mix64(seed);
  for (unsigned char c : bytes) {
    h ^= c;
    h *= 0x100000001b3ULL;
  }
  return h;
}

void Mix64Batch(const uint64_t* in, size_t n, uint64_t* out) {
  arch::ActiveKernels().mix64_batch(in, n, out);
}

UniversalHash UniversalHash::FromSeed(uint64_t seed, uint64_t index) {
  UniversalHash h;
  uint64_t s = Mix64(seed + 0x51ed270b * (index + 1));
  // a must be nonzero modulo p.
  h.a_ = (Mix64(s) % (kPrime - 1)) + 1;
  h.b_ = Mix64(s ^ 0xabcdef1234567890ULL) % kPrime;
  return h;
}

}  // namespace sablock
