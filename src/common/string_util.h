#ifndef SABLOCK_COMMON_STRING_UTIL_H_
#define SABLOCK_COMMON_STRING_UTIL_H_

#include <string>
#include <string_view>
#include <vector>

namespace sablock {

/// ASCII lowercase copy.
std::string ToLower(std::string_view s);

/// ASCII uppercase copy.
std::string ToUpper(std::string_view s);

/// Strips leading and trailing ASCII whitespace.
std::string_view Trim(std::string_view s);

/// Splits on a single character; keeps empty fields.
std::vector<std::string> Split(std::string_view s, char sep);

/// Splits on runs of whitespace; drops empty fields.
std::vector<std::string> SplitWords(std::string_view s);

/// Joins with a separator.
std::string Join(const std::vector<std::string>& parts, std::string_view sep);

/// Collapses internal whitespace runs to single spaces and trims the ends.
std::string NormalizeWhitespace(std::string_view s);

/// Lowercases and keeps only [a-z0-9 ]; other characters become spaces and
/// whitespace is normalized. The canonical text normalization applied before
/// q-gram shingling and blocking-key generation.
std::string NormalizeForMatching(std::string_view s);

/// True if `s` starts with `prefix`.
bool StartsWith(std::string_view s, std::string_view prefix);

/// Formats a double with `digits` decimal places (locale-independent).
std::string FormatDouble(double value, int digits);

}  // namespace sablock

#endif  // SABLOCK_COMMON_STRING_UTIL_H_
