#ifndef SABLOCK_COMMON_CHECK_H_
#define SABLOCK_COMMON_CHECK_H_

#include <cstdio>
#include <cstdlib>

/// \file
/// Lightweight invariant-checking macros.
///
/// The library does not use exceptions (see DESIGN.md §8); programming errors
/// and violated invariants abort with a diagnostic instead. `SABLOCK_CHECK`
/// is always on; `SABLOCK_DCHECK` compiles away in NDEBUG builds.

#define SABLOCK_CHECK(cond)                                              \
  do {                                                                   \
    if (!(cond)) {                                                       \
      std::fprintf(stderr, "CHECK failed at %s:%d: %s\n", __FILE__,      \
                   __LINE__, #cond);                                     \
      std::abort();                                                      \
    }                                                                    \
  } while (0)

#define SABLOCK_CHECK_MSG(cond, msg)                                     \
  do {                                                                   \
    if (!(cond)) {                                                       \
      std::fprintf(stderr, "CHECK failed at %s:%d: %s (%s)\n", __FILE__, \
                   __LINE__, #cond, msg);                                \
      std::abort();                                                      \
    }                                                                    \
  } while (0)

#ifdef NDEBUG
#define SABLOCK_DCHECK(cond) \
  do {                       \
  } while (0)
#else
#define SABLOCK_DCHECK(cond) SABLOCK_CHECK(cond)
#endif

#endif  // SABLOCK_COMMON_CHECK_H_
