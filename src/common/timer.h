#ifndef SABLOCK_COMMON_TIMER_H_
#define SABLOCK_COMMON_TIMER_H_

#include <chrono>

namespace sablock {

/// Wall-clock stopwatch used by the benchmark harness to time block
/// construction (Table 3 / Fig. 13 style measurements).
class WallTimer {
 public:
  WallTimer() : start_(Clock::now()) {}

  /// Restarts the stopwatch.
  void Reset() { start_ = Clock::now(); }

  /// Elapsed seconds since construction or the last Reset().
  double Seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Elapsed milliseconds.
  double Millis() const { return Seconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace sablock

#endif  // SABLOCK_COMMON_TIMER_H_
