#ifndef SABLOCK_COMMON_PAIR_SET_H_
#define SABLOCK_COMMON_PAIR_SET_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "common/check.h"
#include "common/hashing.h"

namespace sablock {

/// Open-addressing hash set of unordered record-id pairs, used to count the
/// distinct candidate pairs Γ of a block collection. Millions of inserts are
/// the common case (RR / PQ computation on the NC-Voter-scale data), so this
/// avoids the per-node overhead of std::unordered_set.
///
/// Pairs are canonicalized (min, max) and packed into a 64-bit key; record
/// ids must be < 2^32 and the pair (i, i) is rejected.
class PairSet {
 public:
  explicit PairSet(size_t expected_pairs = 64) {
    size_t cap = 16;
    while (cap < expected_pairs * 2) cap <<= 1;
    slots_.assign(cap, kEmpty);
  }

  /// Inserts the unordered pair {a, b}; returns true if it was new.
  bool Insert(uint32_t a, uint32_t b) {
    SABLOCK_DCHECK(a != b);
    if (a > b) std::swap(a, b);
    uint64_t key = (static_cast<uint64_t>(a) << 32) | b;
    if (InsertKey(key)) {
      if (size_ * 10 >= slots_.size() * 7) Grow();
      return true;
    }
    return false;
  }

  /// True if the unordered pair {a, b} is present.
  bool Contains(uint32_t a, uint32_t b) const {
    if (a > b) std::swap(a, b);
    uint64_t key = (static_cast<uint64_t>(a) << 32) | b;
    size_t mask = slots_.size() - 1;
    size_t i = Mix64(key) & mask;
    while (slots_[i] != kEmpty) {
      if (slots_[i] == key) return true;
      i = (i + 1) & mask;
    }
    return false;
  }

  /// Number of distinct pairs inserted.
  size_t size() const { return size_; }

  /// Invokes fn(a, b) for each stored pair, in unspecified order.
  template <typename Fn>
  void ForEach(Fn&& fn) const {
    for (uint64_t key : slots_) {
      if (key != kEmpty) {
        fn(static_cast<uint32_t>(key >> 32),
           static_cast<uint32_t>(key & 0xffffffffULL));
      }
    }
  }

 private:
  // (0xffffffff, 0xffffffff) is unrepresentable as a canonical pair because
  // a < b always holds after canonicalization, so ~0 is a safe empty marker.
  static constexpr uint64_t kEmpty = ~0ULL;

  bool InsertKey(uint64_t key) {
    size_t mask = slots_.size() - 1;
    size_t i = Mix64(key) & mask;
    while (slots_[i] != kEmpty) {
      if (slots_[i] == key) return false;
      i = (i + 1) & mask;
    }
    slots_[i] = key;
    ++size_;
    return true;
  }

  void Grow() {
    std::vector<uint64_t> old = std::move(slots_);
    slots_.assign(old.size() * 2, kEmpty);
    size_ = 0;
    for (uint64_t key : old) {
      if (key != kEmpty) InsertKey(key);
    }
  }

  std::vector<uint64_t> slots_;
  size_t size_ = 0;
};

}  // namespace sablock

#endif  // SABLOCK_COMMON_PAIR_SET_H_
