#ifndef SABLOCK_COMMON_FLAT_MAP_H_
#define SABLOCK_COMMON_FLAT_MAP_H_

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "common/check.h"
#include "common/hashing.h"

namespace sablock {

/// Default FlatMap hasher: SplitMix64 finalization so that power-of-two
/// masking sees well-mixed bits even for dense integer keys (record ids,
/// packed pair keys, interned token ids).
struct FlatMapHash {
  uint64_t operator()(uint64_t key) const { return Mix64(key); }
};

/// Cache-conscious open-addressing hash map for the blocking hot paths
/// (meta-blocking edge accumulation, token-posting builds): linear
/// probing over one contiguous slot array, power-of-two capacity,
/// tombstone-free — erase() uses backward-shift deletion, so lookups
/// never scan dead entries no matter the insert/erase history.
///
/// Compared to std::unordered_map the probe sequence is a linear walk of
/// adjacent slots (one cache line holds several), there is no per-node
/// allocation, and clear()/rehash keep their memory, which is what the
/// per-table bucket loops want.
///
/// Iteration contract (MetaPrune depends on this): iterating yields the
/// live slots in slot order, which is a pure function of the key hashes
/// and the insert/erase sequence — two identically-populated maps
/// iterate identically, across processes and platforms. It is NOT
/// insertion order and changes when the table grows; consumers that need
/// a canonical order still sort, consumers that need *determinism for a
/// deterministic input* (golden reproducibility) get it for free.
///
/// Keys are held by value and must be trivially copyable integers (or
/// similar cheap-to-copy types); values only need to be movable.
template <typename K, typename V, typename Hash = FlatMapHash>
class FlatMap {
 public:
  struct Slot {
    K key;
    V value;
  };

  FlatMap() = default;
  explicit FlatMap(size_t expected_size) { reserve(expected_size); }

  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  /// Current slot-array capacity (a power of two, 0 before first insert).
  size_t capacity() const { return slots_.size(); }

  /// Pre-sizes the slot array so `n` keys fit without growing.
  void reserve(size_t n) {
    size_t needed = NextPow2(n + n / 2 + 1);  // keep load factor < ~2/3
    if (needed > slots_.size()) Rehash(needed);
  }

  /// Drops every entry but keeps the slot array (hot loops reuse one map
  /// across rounds without re-paying allocation).
  void clear() {
    std::fill(occupied_.begin(), occupied_.end(), uint8_t{0});
    size_ = 0;
  }

  /// The value for `key`, default-constructing it on first access.
  V& operator[](const K& key) { return *TryEmplace(key).first; }

  /// Inserts `key -> V(args...)` if absent; returns the value slot and
  /// whether it was inserted (std::unordered_map::try_emplace shape).
  template <typename... Args>
  std::pair<V*, bool> TryEmplace(const K& key, Args&&... args) {
    if (NeedsGrowth()) Rehash(slots_.empty() ? kMinCapacity
                                             : slots_.size() * 2);
    size_t i = FindSlot(key);
    if (!occupied_[i]) {
      occupied_[i] = 1;
      slots_[i].key = key;
      slots_[i].value = V(std::forward<Args>(args)...);
      ++size_;
      return {&slots_[i].value, true};
    }
    return {&slots_[i].value, false};
  }

  /// Pointer to the value for `key`, nullptr when absent.
  V* Find(const K& key) {
    if (slots_.empty()) return nullptr;
    size_t i = FindSlot(key);
    return occupied_[i] ? &slots_[i].value : nullptr;
  }
  const V* Find(const K& key) const {
    return const_cast<FlatMap*>(this)->Find(key);
  }

  bool Contains(const K& key) const { return Find(key) != nullptr; }

  /// Removes `key` if present (backward-shift deletion: subsequent probe
  /// -chain entries are moved up so no tombstone is left behind).
  bool Erase(const K& key) {
    if (slots_.empty()) return false;
    size_t i = FindSlot(key);
    if (!occupied_[i]) return false;
    const size_t mask = slots_.size() - 1;
    size_t hole = i;
    size_t next = (hole + 1) & mask;
    while (occupied_[next]) {
      size_t home = hash_(static_cast<uint64_t>(slots_[next].key)) & mask;
      // `next` may shift into the hole only if its home position does not
      // lie in the (cyclic) gap (hole, next] — otherwise moving it would
      // break its own probe chain.
      bool movable = ((next - home) & mask) >= ((next - hole) & mask);
      if (movable) {
        slots_[hole] = std::move(slots_[next]);
        hole = next;
      }
      next = (next + 1) & mask;
    }
    occupied_[hole] = 0;
    --size_;
    return true;
  }

  /// Forward iterator over live slots in slot order.
  class const_iterator {
   public:
    const Slot& operator*() const { return map_->slots_[index_]; }
    const Slot* operator->() const { return &map_->slots_[index_]; }
    const_iterator& operator++() {
      ++index_;
      SkipDead();
      return *this;
    }
    bool operator==(const const_iterator& o) const {
      return index_ == o.index_;
    }
    bool operator!=(const const_iterator& o) const { return !(*this == o); }

   private:
    friend class FlatMap;
    const_iterator(const FlatMap* map, size_t index)
        : map_(map), index_(index) {
      SkipDead();
    }
    void SkipDead() {
      while (index_ < map_->slots_.size() && !map_->occupied_[index_]) {
        ++index_;
      }
    }
    const FlatMap* map_;
    size_t index_;
  };

  const_iterator begin() const { return const_iterator(this, 0); }
  const_iterator end() const { return const_iterator(this, slots_.size()); }

  /// Mutable visitation in slot order (the iterator is const-only to keep
  /// keys immutable; values are mutated through the visitor).
  template <typename Fn>
  void ForEach(Fn&& fn) {
    for (size_t i = 0; i < slots_.size(); ++i) {
      if (occupied_[i]) fn(slots_[i].key, slots_[i].value);
    }
  }

 private:
  static constexpr size_t kMinCapacity = 16;

  static size_t NextPow2(size_t n) {
    size_t p = kMinCapacity;
    while (p < n) p <<= 1;
    return p;
  }

  bool NeedsGrowth() const {
    // Grow at 2/3 load: 3·size >= 2·capacity.
    return slots_.empty() || 3 * (size_ + 1) >= 2 * slots_.size();
  }

  size_t FindSlot(const K& key) const {
    const size_t mask = slots_.size() - 1;
    size_t i = hash_(static_cast<uint64_t>(key)) & mask;
    while (occupied_[i] && !(slots_[i].key == key)) {
      i = (i + 1) & mask;
    }
    return i;
  }

  void Rehash(size_t new_capacity) {
    SABLOCK_CHECK((new_capacity & (new_capacity - 1)) == 0);
    std::vector<Slot> old_slots = std::move(slots_);
    std::vector<uint8_t> old_occupied = std::move(occupied_);
    slots_.clear();
    slots_.resize(new_capacity);
    occupied_.assign(new_capacity, 0);
    const size_t mask = new_capacity - 1;
    for (size_t i = 0; i < old_slots.size(); ++i) {
      if (!old_occupied[i]) continue;
      size_t j = hash_(static_cast<uint64_t>(old_slots[i].key)) & mask;
      while (occupied_[j]) j = (j + 1) & mask;
      occupied_[j] = 1;
      slots_[j] = std::move(old_slots[i]);
    }
  }

  std::vector<Slot> slots_;
  std::vector<uint8_t> occupied_;
  size_t size_ = 0;
  Hash hash_;
};

}  // namespace sablock

#endif  // SABLOCK_COMMON_FLAT_MAP_H_
